// Burst predictor: from measurement to proactive control.
//
// The paper's closing argument (Sections 3.3 and 5.1): per-service incast
// degree is stable enough to *predict*, so hosts could prepare for bursts
// instead of reacting to them. This example walks that loop end to end:
//
//   1. collect Millisampler traces from a simulated "aggregator" host;
//   2. reduce them to per-burst flow counts with the BurstDetector;
//   3. train a FlowCountPredictor on the observed bursts;
//   4. derive a cwnd guardrail from the p99 forecast;
//   5. replay an incast with and without the guardrail and compare.
#include <cmath>
#include <cstdio>

#include "core/fleet_experiment.h"
#include "core/incast_experiment.h"
#include "core/predictor.h"
#include "core/report.h"

int main() {
  using namespace incast;
  using namespace incast::sim::literals;

  std::printf("Step 1-2: measuring bursts on an 'aggregator' host (Millisampler + "
              "burst detector)\n");
  core::FleetConfig fleet_cfg;
  fleet_cfg.profile = workload::service_by_name("aggregator");
  fleet_cfg.trace_duration = 1_s;
  fleet_cfg.tcp.cc = tcp::CcAlgorithm::kDctcp;
  fleet_cfg.tcp.rtt.min_rto = 200_ms;
  core::FleetExperiment fleet{fleet_cfg};

  core::FlowCountPredictor predictor;
  int bursts_seen = 0;
  for (int snapshot = 0; snapshot < 3; ++snapshot) {
    const auto trace = fleet.run_host_trace(/*host=*/0, snapshot);
    for (const auto& b : trace.summary.bursts) {
      predictor.observe(b.max_active_flows);
      ++bursts_seen;
    }
  }
  std::printf("  observed %d bursts across 3 snapshots\n", bursts_seen);

  std::printf("\nStep 3: the predictor's view of this service\n");
  std::printf("  mean incast degree: %.0f flows\n", predictor.predict_mean());
  std::printf("  p90: %d   p99: %d flows (the worst case to prepare for)\n",
              predictor.predict_percentile(90), predictor.predict_p99());

  std::printf("\nStep 4: deriving the guardrail\n");
  const std::int64_t bdp = 37'500;       // 10 Gbps x 30 us
  const std::int64_t ecn_k = 65 * 1500;  // marking threshold in bytes
  const std::int64_t cap =
      core::suggest_cwnd_cap_bytes(predictor.predict_p99(), bdp, ecn_k, 1460);
  std::printf("  cwnd cap = (BDP + K) / p99 = %lld bytes (%.1f MSS)\n",
              static_cast<long long>(cap), static_cast<double>(cap) / 1460.0);

  std::printf("\nStep 5: replaying a mean-degree incast with and without the cap\n");
  const int replay_flows = static_cast<int>(std::lround(predictor.predict_mean()));
  auto make_cfg = [&](std::optional<std::int64_t> cwnd_cap) {
    core::IncastExperimentConfig cfg;
    cfg.num_flows = replay_flows;
    cfg.burst_duration = 5_ms;
    cfg.num_bursts = 6;
    cfg.discard_bursts = 1;
    cfg.tcp.cc = tcp::CcAlgorithm::kDctcp;
    cfg.tcp.rtt.min_rto = 200_ms;
    cfg.tcp.cwnd_cap_bytes = cwnd_cap;
    cfg.seed = 3;
    return cfg;
  };
  const auto vanilla = core::run_incast_experiment(make_cfg(std::nullopt));
  const auto guarded = core::run_incast_experiment(make_cfg(cap));

  core::Table t{{"variant", "peak queue (pkts)", "avg queue", "straggler cwnd (MSS)",
                 "drops", "avg BCT (ms)"}};
  t.add_row({"vanilla DCTCP", core::fmt(vanilla.peak_queue_packets, 0),
             core::fmt(vanilla.avg_queue_packets, 0),
             core::fmt(vanilla.end_of_burst_cwnd_max_mss, 1),
             std::to_string(vanilla.queue_drops), core::fmt(vanilla.avg_bct_ms, 2)});
  t.add_row({"with guardrail", core::fmt(guarded.peak_queue_packets, 0),
             core::fmt(guarded.avg_queue_packets, 0),
             core::fmt(guarded.end_of_burst_cwnd_max_mss, 1),
             std::to_string(guarded.queue_drops), core::fmt(guarded.avg_bct_ms, 2)});
  t.print();

  std::printf("\nThe guardrail throttles only the ramp-up headroom — the paper's\n"
              "'predict and prevent' alternative to purely reactive congestion\n"
              "control.\n");
  return 0;
}
