// Quickstart: simulate a DCTCP incast and inspect what happened.
//
// Builds the paper's dumbbell (N senders -> ToR -> 100G -> ToR -> one
// receiver), runs a few cyclic incast bursts with 50 DCTCP flows, and
// prints queue behaviour and per-burst completion times.
//
//   $ ./quickstart
//
// This file is the five-minute tour of the library; the bench/ directory
// holds the full reproductions of the paper's figures.
#include <cstdio>

#include "core/incast_experiment.h"
#include "core/report.h"

int main() {
  using namespace incast;
  using namespace incast::sim::literals;

  // 1. Describe the experiment. Defaults follow the paper's Section 4
  //    setup: 10 Gbps host links, 100 Gbps core, ~30 us RTT, a
  //    1333-packet bottleneck queue marking ECN at 65 packets.
  core::IncastExperimentConfig cfg;
  cfg.num_flows = 50;                         // incast degree
  cfg.burst_duration = 5_ms;                  // demand sized to fill 5 ms
  cfg.num_bursts = 6;                         // bursts 1..5 are measured
  cfg.discard_bursts = 1;                     // burst 0 is slow start
  cfg.tcp.cc = tcp::CcAlgorithm::kDctcp;      // or kRenoEcn / kCubic
  cfg.tcp.rtt.min_rto = 200_ms;               // Linux default
  cfg.seed = 1;

  // 2. Run it. The call owns the whole lifecycle: topology, connections,
  //    workload, telemetry, and the event loop.
  const core::IncastExperimentResult result = core::run_incast_experiment(cfg);

  // 3. Look at the results.
  std::printf("Quickstart: %d-flow DCTCP incast, %s bursts\n", cfg.num_flows,
              cfg.burst_duration.to_string().c_str());
  std::printf("\nPer-burst completion times:\n");
  core::Table bursts{{"burst", "start (ms)", "BCT (ms)"}};
  for (const auto& b : result.bursts) {
    bursts.add_row({std::to_string(b.index) + (b.index == 0 ? " (discarded)" : ""),
                    core::fmt(b.started.ms(), 2),
                    core::fmt(b.completion_time().ms(), 2)});
  }
  bursts.print();

  std::printf("\nBottleneck queue during measured bursts:\n");
  std::printf("  average depth: %.1f packets (ECN threshold K = 65)\n",
              result.avg_queue_packets);
  std::printf("  peak depth:    %.0f packets (capacity 1333)\n", result.peak_queue_packets);
  std::printf("  ECN-marked:    %.0f%% of packets\n", result.marked_fraction() * 100.0);
  std::printf("  drops:         %lld\n", static_cast<long long>(result.queue_drops));
  std::printf("  TCP timeouts:  %lld\n", static_cast<long long>(result.timeouts));

  std::printf("\nBurst-boundary divergence (Section 4.3 of the paper):\n");
  std::printf("  end-of-burst cwnd: mean %.1f MSS, straggler max %.1f MSS\n",
              result.end_of_burst_cwnd_mean_mss, result.end_of_burst_cwnd_max_mss);

  std::printf("\nTry: raise num_flows to 500 (degenerate point) or 1500 (timeouts),\n"
              "or switch cfg.tcp.cc to tcp::CcAlgorithm::kCubic and watch the drops.\n");
  return 0;
}
