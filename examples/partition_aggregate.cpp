// Partition/aggregate: query latency under increasing fan-in.
//
// The traffic pattern behind incast (paper Section 1): a coordinator
// dispatches a query to W workers and waits for all responses. Each worker
// answers with `response_bytes` over its persistent TCP connection, so the
// responses converge on the coordinator's downlink — the incast. This
// example sweeps the fan-in W and reports query-latency percentiles,
// showing how the 99th percentile decouples from the median as the
// response volley overwhelms the ToR queue.
//
// Built directly on the library's building blocks (Dumbbell,
// TcpConnection) rather than the experiment harness, as an application
// would be.
#include <algorithm>
#include <cstdio>
#include <memory>
#include <vector>

#include "analysis/cdf.h"
#include "core/report.h"
#include "net/topology.h"
#include "sim/random.h"
#include "tcp/tcp_connection.h"

namespace {

using namespace incast;
using namespace incast::sim::literals;

class PartitionAggregateApp {
 public:
  PartitionAggregateApp(sim::Simulator& sim, net::Dumbbell& topo, int workers,
                        std::int64_t response_bytes, std::uint64_t seed)
      : sim_{sim}, workers_{workers}, response_bytes_{response_bytes}, rng_{seed} {
    tcp::TcpConfig tcp_cfg;
    tcp_cfg.cc = tcp::CcAlgorithm::kDctcp;
    tcp_cfg.rtt.min_rto = 10_ms;  // a datacenter-tuned RTO
    for (int w = 0; w < workers; ++w) {
      connections_.push_back(std::make_unique<tcp::TcpConnection>(
          sim, topo.sender(w), topo.receiver(0), static_cast<net::FlowId>(w + 1),
          tcp_cfg));
      // The coordinator counts response bytes as they arrive in order.
      connections_.back()->receiver().set_on_data(
          [this](std::int64_t bytes) { on_response_bytes(bytes); });
    }
  }

  // Issues `queries` queries, each started `gap` after the previous one
  // completes; invokes `done` when finished.
  void run_queries(int queries, sim::Time gap, std::function<void()> done) {
    remaining_queries_ = queries;
    gap_ = gap;
    done_ = std::move(done);
    issue_query();
  }

  [[nodiscard]] const analysis::Cdf& latencies() const noexcept { return latencies_; }

 private:
  void issue_query() {
    query_started_ = sim_.now();
    outstanding_bytes_ = response_bytes_ * workers_;
    for (auto& conn : connections_) {
      // Worker think time: the "variations in processing time" that
      // jitter the response volley.
      const sim::Time think = rng_.uniform_time(sim::Time::zero(), 100_us);
      tcp::TcpSender* sender = &conn->sender();
      sim_.schedule_in(think,
                       [sender, bytes = response_bytes_] { sender->add_app_data(bytes); });
    }
  }

  void on_response_bytes(std::int64_t bytes) {
    outstanding_bytes_ -= bytes;
    if (outstanding_bytes_ > 0) return;

    latencies_.add((sim_.now() - query_started_).ms());
    if (--remaining_queries_ > 0) {
      sim_.schedule_in(gap_, [this] { issue_query(); });
    } else if (done_) {
      done_();
    }
  }

  sim::Simulator& sim_;
  int workers_;
  std::int64_t response_bytes_;
  sim::Rng rng_;
  std::vector<std::unique_ptr<tcp::TcpConnection>> connections_;

  int remaining_queries_{0};
  sim::Time gap_{};
  std::function<void()> done_;
  sim::Time query_started_{};
  std::int64_t outstanding_bytes_{0};
  analysis::Cdf latencies_;
};

}  // namespace

int main() {
  std::printf("Partition/aggregate query latency vs fan-in\n");
  std::printf("(each worker responds with 50 KB; 30 queries per fan-in)\n\n");

  incast::core::Table t{
      {"workers", "volley (KB)", "p50 (ms)", "p99 (ms)", "max (ms)", "ideal (ms)"}};

  for (const int workers : {16, 64, 128, 256, 512}) {
    sim::Simulator sim;
    net::DumbbellConfig topo_cfg;
    topo_cfg.num_senders = workers;
    net::Dumbbell topo{sim, topo_cfg};

    const std::int64_t response_bytes = 50'000;
    PartitionAggregateApp app{sim, topo, workers, response_bytes, 7};
    app.run_queries(30, /*gap=*/5_ms, [&sim] { sim.stop(); });
    sim.run_until(30_s);

    // Time to move the whole volley through the 10 Gbps downlink.
    const double ideal_ms =
        static_cast<double>(response_bytes * workers) * 8.0 / 10e9 * 1e3;
    t.add_row({std::to_string(workers),
               incast::core::fmt(static_cast<double>(response_bytes * workers) / 1e3, 0),
               incast::core::fmt(app.latencies().percentile(50), 2),
               incast::core::fmt(app.latencies().percentile(99), 2),
               incast::core::fmt(app.latencies().max(), 2),
               incast::core::fmt(ideal_ms, 2)});
  }
  t.print();

  std::printf("\nReading the table: at low fan-in, query latency tracks the ideal\n"
              "transfer time. At hundreds of workers the response volley overruns\n"
              "the ToR buffer, and the p99/max decouple from the median as some\n"
              "queries pay loss-recovery penalties — the service-level tail-latency\n"
              "cost of incast. Lower tcp_cfg.rtt.min_rto softens the tail; it does\n"
              "not remove the loss.\n");
  return 0;
}
