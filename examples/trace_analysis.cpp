// Trace analysis: the measurement pipeline on a custom workload.
//
// Shows the telemetry/analysis layers standalone: attach a Millisampler to
// any host, drive whatever traffic you like, then reduce the trace to
// per-burst records with the BurstDetector — the same pipeline the paper
// runs on production hosts. Here the workload is a custom bimodal service
// (a hand-built ServiceProfile, not from the catalog) to show that the
// profiles are just data.
#include <cstdio>

#include "analysis/burst_detector.h"
#include "core/report.h"
#include "net/topology.h"
#include "telemetry/millisampler.h"
#include "telemetry/queue_monitor.h"
#include "workload/fleet_traffic.h"

int main() {
  using namespace incast;
  using namespace incast::sim::literals;

  // A custom service: mostly small fan-ins with occasional 300-flow spikes.
  workload::ServiceProfile profile;
  profile.name = "my-service";
  profile.description = "custom bimodal RPC service";
  profile.bursts_per_second = 50.0;
  profile.body_median_flows = 300.0;
  profile.body_sigma = 0.2;
  profile.low_mode_probability = 0.7;  // 70% of bursts are small
  profile.low_mode_min = 4;
  profile.low_mode_max = 16;
  profile.duration_geometric_p = 0.5;
  profile.max_flows = 400;

  sim::Simulator sim;
  net::DumbbellConfig topo_cfg;
  topo_cfg.num_senders = profile.max_flows;
  net::Dumbbell topo{sim, topo_cfg};

  // Instrument the receiver exactly like a production host: a 1 ms
  // ingress sampler on the NIC and a watermark monitor on its ToR queue.
  telemetry::Millisampler sampler{{.bin_duration = 1_ms, .line_rate = topo_cfg.host_link}};
  topo.receiver(0).add_ingress_tap(&sampler);
  telemetry::QueueMonitor qmon{
      sim, topo.bottleneck_queue(),
      {.sample_every = sim::Time::zero(), .watermark_window = 1_ms}};

  tcp::TcpConfig tcp_cfg;
  tcp_cfg.cc = tcp::CcAlgorithm::kDctcp;
  tcp_cfg.rtt.min_rto = 200_ms;
  workload::FleetTrafficGen::Config gen_cfg;
  gen_cfg.profile = profile;
  workload::FleetTrafficGen gen{sim, topo, tcp_cfg, gen_cfg, /*seed=*/99};

  const sim::Time trace_len = 1_s;
  qmon.start(trace_len);
  gen.start(trace_len);
  sim.run_until(trace_len + 50_ms);  // drain in-flight bursts
  sampler.finalize(trace_len);

  // Reduce the raw trace to per-burst records.
  const analysis::BurstDetector detector;
  const auto bursts = detector.detect(sampler, qmon.watermarks());

  std::printf("Trace: %s at 1 ms bins, average utilization %.1f%%\n",
              trace_len.to_string().c_str(), sampler.average_utilization() * 100.0);
  std::printf("Detected %zu bursts (generator emitted %zu)\n\n", bursts.size(),
              gen.burst_log().size());

  core::Table t{{"t (ms)", "dur (ms)", "flows", "incast?", "peak queue", "marked%",
                 "retx%"}};
  std::size_t shown = 0;
  for (const auto& b : bursts) {
    if (shown++ >= 25) break;  // first 25 bursts as a sample
    t.add_row({std::to_string(b.first_bin), std::to_string(b.num_bins),
               std::to_string(b.max_active_flows), detector.is_incast(b) ? "yes" : "no",
               std::to_string(b.peak_queue_packets),
               core::fmt(b.marked_fraction() * 100, 1),
               core::fmt(b.retx_fraction() * 100, 2)});
  }
  t.print();
  if (bursts.size() > shown) {
    std::printf("... (%zu more bursts)\n", bursts.size() - shown);
  }

  // Aggregate view: the bimodality is plainly visible in the flow CDF.
  analysis::Cdf flows;
  for (const auto& b : bursts) flows.add(static_cast<double>(b.max_active_flows));
  std::printf("\n");
  core::print_cdf("Per-burst flow count (note the bimodal cliff)", flows);
  return 0;
}
