// Transport comparison: the same partition/aggregate queries over DCTCP
// and over the receiver-driven credit transport.
//
// Where bench/extension_credit compares the transports on the paper's raw
// burst workload, this example asks the question an application owner
// would: what happens to MY query latency? A coordinator fans a query out
// to W workers (50 KB responses each) and waits for all of them; we sweep
// the fan-in past DCTCP's degenerate point and report per-query latency
// percentiles for both transports.
#include <algorithm>
#include <cstdio>
#include <memory>
#include <vector>

#include "analysis/cdf.h"
#include "core/report.h"
#include "net/topology.h"
#include "rdt/credit_transport.h"
#include "sim/random.h"
#include "tcp/tcp_connection.h"

namespace {

using namespace incast;
using namespace incast::sim::literals;

constexpr std::int64_t kResponseBytes = 50'000;
constexpr int kQueries = 20;

// ---- TCP flavour --------------------------------------------------------------

analysis::Cdf run_tcp(int workers) {
  sim::Simulator sim;
  net::DumbbellConfig topo_cfg;
  topo_cfg.num_senders = workers;
  net::Dumbbell topo{sim, topo_cfg};

  tcp::TcpConfig cfg;
  cfg.cc = tcp::CcAlgorithm::kDctcp;
  cfg.rtt.min_rto = 10_ms;  // datacenter-tuned

  std::vector<std::unique_ptr<tcp::TcpConnection>> conns;
  std::int64_t outstanding = 0;
  sim::Time started;
  analysis::Cdf latencies;
  int remaining_queries = kQueries;
  sim::Rng rng{7};

  std::function<void()> issue = [&] {
    started = sim.now();
    outstanding = static_cast<std::int64_t>(workers) * kResponseBytes;
    for (auto& c : conns) {
      tcp::TcpSender* s = &c->sender();
      sim.schedule_in(rng.uniform_time(sim::Time::zero(), 100_us),
                      [s] { s->add_app_data(kResponseBytes); });
    }
  };

  for (int w = 0; w < workers; ++w) {
    conns.push_back(std::make_unique<tcp::TcpConnection>(
        sim, topo.sender(w), topo.receiver(0), static_cast<net::FlowId>(w + 1), cfg));
    conns.back()->receiver().set_on_data([&](std::int64_t bytes) {
      outstanding -= bytes;
      if (outstanding > 0) return;
      latencies.add((sim.now() - started).ms());
      if (--remaining_queries > 0) {
        sim.schedule_in(5_ms, issue);
      } else {
        sim.stop();
      }
    });
  }

  issue();
  sim.run_until(120_s);
  return latencies;
}

// ---- Credit flavour ------------------------------------------------------------

analysis::Cdf run_credit(int workers) {
  sim::Simulator sim;
  net::DumbbellConfig topo_cfg;
  topo_cfg.num_senders = workers;
  topo_cfg.switch_queue.capacity_packets = 1'000'000;
  topo_cfg.switch_queue.capacity_bytes = 2'000'000;
  topo_cfg.switch_queue.ecn_threshold_packets = 0;
  net::Dumbbell topo{sim, topo_cfg};

  rdt::CreditReceiver receiver{sim, topo.receiver(0), {}};
  std::vector<std::unique_ptr<rdt::CreditSender>> senders;
  for (int w = 0; w < workers; ++w) {
    const auto flow = static_cast<net::FlowId>(w + 1);
    senders.push_back(std::make_unique<rdt::CreditSender>(
        sim, topo.sender(w), topo.receiver(0).id(), flow, rdt::CreditSender::Config{}));
    receiver.accept_flow(flow, topo.sender(w).id());
  }

  analysis::Cdf latencies;
  sim::Time started;
  int flows_done = 0;
  int remaining_queries = kQueries;
  sim::Rng rng{7};

  std::function<void()> issue = [&] {
    started = sim.now();
    flows_done = 0;
    for (auto& s : senders) {
      rdt::CreditSender* sender = s.get();
      sim.schedule_in(rng.uniform_time(sim::Time::zero(), 100_us),
                      [sender] { sender->add_app_data(kResponseBytes); });
    }
  };
  receiver.set_on_flow_complete([&](net::FlowId) {
    if (++flows_done < workers) return;
    latencies.add((sim.now() - started).ms());
    if (--remaining_queries > 0) {
      sim.schedule_in(5_ms, issue);
    } else {
      sim.stop();
    }
  });

  issue();
  sim.run_until(120_s);
  return latencies;
}

}  // namespace

int main() {
  std::printf("Partition/aggregate query latency: DCTCP vs receiver-driven credits\n");
  std::printf("(%d queries per point, 50 KB per worker, 10 ms min RTO for TCP)\n\n",
              kQueries);

  incast::core::Table t{{"workers", "transport", "p50 (ms)", "p99 (ms)", "max (ms)",
                         "ideal (ms)"}};
  for (const int workers : {64, 256, 1024}) {
    const double ideal_ms =
        static_cast<double>(workers) * kResponseBytes * 8.0 / 10e9 * 1e3;
    const auto tcp = run_tcp(workers);
    const auto credit = run_credit(workers);
    t.add_row({std::to_string(workers), "DCTCP", incast::core::fmt(tcp.percentile(50), 2),
               incast::core::fmt(tcp.percentile(99), 2), incast::core::fmt(tcp.max(), 2),
               incast::core::fmt(ideal_ms, 2)});
    t.add_row({std::to_string(workers), "credit",
               incast::core::fmt(credit.percentile(50), 2),
               incast::core::fmt(credit.percentile(99), 2),
               incast::core::fmt(credit.max(), 2), incast::core::fmt(ideal_ms, 2)});
  }
  t.print();

  std::printf("\nBoth transports track the ideal while the fan-in is manageable; past\n"
              "DCTCP's degenerate point the TCP tail detaches (loss recovery), while\n"
              "the credit transport stays glued to the ideal at any fan-in — the\n"
              "receiver simply never lets the volley exceed its own downlink.\n");
  return 0;
}
