#!/usr/bin/env python3
"""CI perf-regression gate for the simulator microbenchmarks.

Compares a google-benchmark JSON run (``micro_simcore
--benchmark_format=json``) against a checked-in baseline and fails when any
benchmark's throughput regresses by more than the threshold.

Throughput is taken from ``items_per_second`` when the benchmark reports it
(our benches count simulator events or queue ops as items) and falls back to
the inverse of ``real_time`` otherwise, so wall-clock-only benches are still
gated.

Usage:
  check_bench_regression.py --baseline tools/bench_baseline.json \
      --current BENCH_micro.json [--threshold 0.25] \
      [--require BM_SimulatorEventDispatch] \
      [--ratio BM_AuditorOverhead/relaxed:BM_AuditorOverhead/off:0.03]
  check_bench_regression.py --baseline tools/bench_baseline.json \
      --current BENCH_scaling.json --memory [--memory-threshold 0.15] \
      [--require BM_ScalingIncast/2000]
  check_bench_regression.py --baseline tools/bench_baseline.json \
      --current BENCH_micro.json --update   # merge the run into the baseline

Exit codes: 0 ok, 1 regression found or required bench missing, 2 bad input.

Benchmarks present in only one of the two files are reported but by default
do not fail the gate (new benches have no baseline yet; retired ones are not
regressions). ``--require NAME`` (repeatable) hardens this for benches that
must never silently disappear: a required bench missing from either file —
e.g. because it errored out, like the dispatch bench does when its
zero-allocation check trips — fails the gate just like a regression.
``--ratio A:B:MAX`` (repeatable) gates a *relative* pair within the current
run only: benchmark A's throughput must be at least (1 - MAX) of benchmark
B's. Unlike the baseline comparison this is machine-independent — it pins an
overhead contract (e.g. relaxed auditing <= 3% over audit-off) rather than
an absolute speed. Either bench missing from the current run fails the gate.

``--memory`` switches the gate from throughput to the deterministic
``peak_bytes_per_flow`` counter that ``bench_report scaling`` embeds in each
``BM_ScalingIncast/<degree>`` entry: any benchmark whose per-flow footprint
*grows* by more than ``--memory-threshold`` (default 0.15) over the baseline
fails. Because the counter is sizeof-based — not RSS — it is byte-identical
across machines, so the memory gate needs no runner-class-matched baseline
refreshes the way the throughput gate does.

Absolute throughput numbers differ across machines — the baseline should be
refreshed (--update) from the CI runner class it gates. ``--update`` merges
by benchmark name: entries from the current run replace same-named baseline
entries and new ones are appended, so the microbenchmark run and the scaling
ladder can both feed one baseline file without clobbering each other.
"""

import argparse
import json
import re
import sys


def load_throughputs(path):
    """Returns {benchmark name: items/sec-equivalent throughput}."""
    try:
        with open(path) as f:
            data = json.load(f)
    except (OSError, ValueError) as e:
        print(f"error: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)
    out = {}
    for bench in data.get("benchmarks", []):
        # Skip aggregate rows (mean/median/stddev of repetitions) and runs
        # that errored out (e.g. the dispatch bench's zero-allocation check
        # tripping) — an errored required bench must read as missing.
        if bench.get("run_type") == "aggregate" or bench.get("error_occurred"):
            continue
        name = bench.get("name")
        if not name:
            continue
        # Benches that pin ->Repetitions(N) grow a "/repeats:N" segment;
        # strip it so gate names stay stable (and free of ':', which the
        # --ratio A:B:MAX syntax reserves).
        name = re.sub(r"/repeats:\d+", "", name)
        items = bench.get("items_per_second")
        if items is None:
            real = bench.get("real_time")
            items = 1e9 / real if real else None  # benches report nanoseconds
        if items:
            # Best-of-N across repetitions: peak throughput is far less
            # noisy than the mean on shared CI runners, and a genuine
            # regression slows every repetition.
            out[name] = max(out.get(name, 0.0), float(items))
    if not out:
        print(f"error: no benchmarks found in {path}", file=sys.stderr)
        sys.exit(2)
    return out


def load_memory(path):
    """Returns {benchmark name: peak_bytes_per_flow} for benches that report it."""
    try:
        with open(path) as f:
            data = json.load(f)
    except (OSError, ValueError) as e:
        print(f"error: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)
    out = {}
    for bench in data.get("benchmarks", []):
        if bench.get("run_type") == "aggregate" or bench.get("error_occurred"):
            continue
        name = bench.get("name")
        bytes_per_flow = bench.get("peak_bytes_per_flow")
        if not name or bytes_per_flow is None:
            continue
        name = re.sub(r"/repeats:\d+", "", name)
        out[name] = float(bytes_per_flow)
    return out


def merge_baseline(current_path, baseline_path):
    """Merges the current run's benchmarks into the baseline by name."""
    with open(current_path) as f:
        current = json.load(f)
    try:
        with open(baseline_path) as f:
            baseline = json.load(f)
    except (OSError, ValueError):
        baseline = {}  # first run for this baseline file: start fresh
    # Replace whole name-groups, not individual entries: a google-benchmark
    # run carries several same-named rows per bench (one per repetition,
    # plus aggregates), and the gate's best-of-N logic needs all of them.
    current_names = {b.get("name") for b in current.get("benchmarks", [])}
    kept = [b for b in baseline.get("benchmarks", [])
            if b.get("name") not in current_names]
    replaced = len(baseline.get("benchmarks", [])) - len(kept)
    appended = len(current.get("benchmarks", []))
    baseline["benchmarks"] = kept + current.get("benchmarks", [])
    # Context (host info, CPU scaling flags) describes the most recent
    # contributing run; keep the current run's.
    if "context" in current:
        baseline["context"] = current["context"]
    with open(baseline_path, "w") as f:
        json.dump(baseline, f, indent=2)
        f.write("\n")
    print(f"baseline updated: {current_path} -> {baseline_path} "
          f"({replaced} entries replaced by {appended}, {len(kept)} kept)")


def check_memory(args):
    """--memory gate: peak_bytes_per_flow must not grow past the threshold."""
    baseline = load_memory(args.baseline)
    current = load_memory(args.current)
    if not current:
        print(f"error: no peak_bytes_per_flow counters in {args.current}",
              file=sys.stderr)
        return 2

    growths = []
    print(f"{'benchmark':<45} {'baseline B/flow':>15} {'current B/flow':>15} "
          f"{'ratio':>7}")
    for name in sorted(baseline):
        if name not in current:
            print(f"{name:<45} {baseline[name]:>15.0f} {'(missing)':>15}")
            continue
        ratio = current[name] / baseline[name] if baseline[name] else float("inf")
        flag = ""
        if ratio > 1.0 + args.memory_threshold:
            growths.append((name, ratio))
            flag = "  <-- MEMORY GROWTH"
        print(f"{name:<45} {baseline[name]:>15.0f} {current[name]:>15.0f} "
              f"{ratio:>6.2f}x{flag}")
    for name in sorted(set(current) - set(baseline)):
        print(f"{name:<45} {'(no baseline)':>15} {current[name]:>15.0f}")

    missing_required = [name for name in args.require
                        if name not in baseline or name not in current]
    if growths or missing_required:
        if growths:
            print(f"\nFAIL: {len(growths)} benchmark(s) grew bytes-per-flow "
                  f"more than {args.memory_threshold:.0%}:", file=sys.stderr)
            for name, ratio in growths:
                print(f"  {name}: {ratio:.2f}x of baseline "
                      f"({(ratio - 1):.0%} larger)", file=sys.stderr)
        for name in missing_required:
            where = "baseline" if name not in baseline else "current run"
            print(f"FAIL: required benchmark {name} missing a "
                  f"peak_bytes_per_flow counter in the {where}",
                  file=sys.stderr)
        return 1
    print(f"\nOK: no benchmark grew bytes-per-flow more than "
          f"{args.memory_threshold:.0%} ({len(baseline)} gated)")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", required=True)
    parser.add_argument("--current", required=True)
    parser.add_argument("--threshold", type=float, default=0.25,
                        help="max tolerated fractional slowdown (default 0.25)")
    parser.add_argument("--update", action="store_true",
                        help="merge the current run into the baseline by "
                             "benchmark name and exit")
    parser.add_argument("--memory", action="store_true",
                        help="gate peak_bytes_per_flow growth instead of "
                             "throughput")
    parser.add_argument("--memory-threshold", type=float, default=0.15,
                        help="max tolerated fractional bytes-per-flow growth "
                             "with --memory (default 0.15)")
    parser.add_argument("--require", action="append", default=[],
                        metavar="NAME",
                        help="benchmark that must be present in both files "
                             "(repeatable); missing = gate failure")
    parser.add_argument("--ratio", action="append", default=[],
                        metavar="A:B:MAX",
                        help="within the current run, bench A must be at most "
                             "MAX (fraction) slower than bench B (repeatable)")
    args = parser.parse_args()

    ratio_gates = []
    for spec in args.ratio:
        parts = spec.rsplit(":", 2)
        try:
            if len(parts) != 3:
                raise ValueError(spec)
            ratio_gates.append((parts[0], parts[1], float(parts[2])))
        except ValueError:
            print(f"error: bad --ratio spec {spec!r} (want A:B:MAX)",
                  file=sys.stderr)
            return 2

    if args.update:
        merge_baseline(args.current, args.baseline)
        return 0

    if args.memory:
        return check_memory(args)

    baseline = load_throughputs(args.baseline)
    current = load_throughputs(args.current)

    regressions = []
    print(f"{'benchmark':<45} {'baseline':>14} {'current':>14} {'ratio':>7}")
    for name in sorted(baseline):
        if name not in current:
            print(f"{name:<45} {baseline[name]:>14.3g} {'(missing)':>14}")
            continue
        ratio = current[name] / baseline[name]
        flag = ""
        if ratio < 1.0 - args.threshold:
            regressions.append((name, ratio))
            flag = "  <-- REGRESSION"
        print(f"{name:<45} {baseline[name]:>14.3g} {current[name]:>14.3g} "
              f"{ratio:>6.2f}x{flag}")
    for name in sorted(set(current) - set(baseline)):
        print(f"{name:<45} {'(no baseline)':>14} {current[name]:>14.3g}")

    missing_required = [name for name in args.require
                        if name not in baseline or name not in current]

    ratio_failures = []
    for num, den, max_slowdown in ratio_gates:
        if num not in current or den not in current:
            missing = num if num not in current else den
            ratio_failures.append(
                f"--ratio {num}:{den}: {missing} missing from current run")
            continue
        ratio = current[num] / current[den]
        verdict = "ok" if ratio >= 1.0 - max_slowdown else "FAIL"
        print(f"ratio {num} / {den} = {ratio:.3f} "
              f"(floor {1.0 - max_slowdown:.3f}) {verdict}")
        if ratio < 1.0 - max_slowdown:
            ratio_failures.append(
                f"{num} is {(1 - ratio):.1%} slower than {den} "
                f"(allowed {max_slowdown:.0%})")

    if regressions or missing_required or ratio_failures:
        if regressions:
            print(f"\nFAIL: {len(regressions)} benchmark(s) regressed more "
                  f"than {args.threshold:.0%}:", file=sys.stderr)
            for name, ratio in regressions:
                print(f"  {name}: {ratio:.2f}x of baseline "
                      f"({(1 - ratio):.0%} slower)", file=sys.stderr)
        for name in missing_required:
            where = "baseline" if name not in baseline else "current run"
            print(f"FAIL: required benchmark {name} missing from {where} "
                  f"(errored out or filtered?)", file=sys.stderr)
        for message in ratio_failures:
            print(f"FAIL: {message}", file=sys.stderr)
        return 1
    print(f"\nOK: no benchmark regressed more than {args.threshold:.0%} "
          f"({len(baseline)} gated)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
