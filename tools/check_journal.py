#!/usr/bin/env python3
"""Validator for incast task journals (the --journal JSONL files).

Checks the invariants the writer (core::TaskJournal) promises and a resume
run depends on:

  * line 1 is a header object: ``journal`` == "incast-task-journal",
    ``version`` == 1, a non-empty ``command``, a ``fingerprint`` string that
    parses as an unsigned 64-bit decimal, and an integer ``tasks`` >= 0;
  * every following line is a record object with ``status`` "ok" or "fail",
    an integer ``task`` in [0, tasks), and a u64-decimal ``seed`` string;
  * "ok" records carry an object ``payload``; "fail" records carry a
    ``category`` from the failure taxonomy (exception/audit/budget/
    cancelled), a string ``message``, and an integer ``attempts`` >= 1;
  * no task index has two "ok" records (the writer skips completed
    indices, so a duplicate means corruption or a mixed-up file);
  * at most the FINAL line may be truncated/unparseable — that is the
    crash-tolerance contract; garbage anywhere else is a hard failure.

``--expect-complete`` additionally requires an "ok" record for every task
index — the post-run check CI uses after an uninterrupted sweep.
``--expect-command CMD`` requires the header's command to be CMD (CI pins
the journal it just wrote to the subcommand that wrote it).

For the known commands (fleet, faults, chaos, scaling, collateral) every
"ok" payload is additionally checked for the keys its deserializer reads —
a missing key there would crash the resume run, so it fails loudly here.

Flight-recorder dumps are Chrome trace-event JSON and are validated by the
sibling ``check_trace.py``; run both in CI.

Usage:  check_journal.py [--expect-complete] J1.journal [J2.journal ...]
Exit codes: 0 all valid, 1 invariant violated, 2 unreadable input.
"""

import argparse
import json
import sys

CATEGORIES = {"exception", "audit", "budget", "cancelled"}
U64_MAX = 2**64 - 1

# Keys each command's C++ payload deserializer reads with at() — absence
# would throw on resume. Kept deliberately to the load-bearing subset so a
# payload extension does not break older validators.
TAIL_AUTOPSY_KEYS = ("fct_rows", "traced_flows", "flow_trace_incomplete")
REQUIRED_PAYLOAD_KEYS = {
    "fleet": ("host", "snapshot", "avg_utilization", "events_processed", "bursts"),
    "faults": ("drop_rate", "flap_duration_ns", "goodput_rel", "mode",
               "events_processed"),
    "chaos": ("description", "seed", "events_processed"),
    "scaling": ("degree", "fct_ms", "optimal_ms", "overhead_pct",
                "completed_flows", "events_processed") + TAIL_AUTOPSY_KEYS,
    "collateral": ("mode", "degree", "victim_goodput_gbps", "incast_avg_bct_ms",
                   "events_processed") + TAIL_AUTOPSY_KEYS,
}


def fail(path, line_no, message):
    print(f"{path}:{line_no}: {message}", file=sys.stderr)
    return False


def is_u64_string(value):
    if not isinstance(value, str) or not value.isdigit():
        return False
    return int(value) <= U64_MAX


def check_header(path, header):
    if not isinstance(header, dict):
        return fail(path, 1, "header is not an object"), 0
    if header.get("journal") != "incast-task-journal":
        return fail(path, 1, "missing journal magic 'incast-task-journal'"), 0
    if header.get("version") != 1:
        return fail(path, 1, f"unsupported version {header.get('version')!r}"), 0
    if not isinstance(header.get("command"), str) or not header["command"]:
        return fail(path, 1, "missing or empty 'command'"), 0
    if not is_u64_string(header.get("fingerprint")):
        return fail(path, 1, "'fingerprint' must be a u64 decimal string"), 0
    tasks = header.get("tasks")
    if not isinstance(tasks, int) or isinstance(tasks, bool) or tasks < 0:
        return fail(path, 1, "'tasks' must be a non-negative integer"), 0
    return True, tasks


def check_payload(path, line_no, command, payload):
    required = REQUIRED_PAYLOAD_KEYS.get(command, ())
    missing = [key for key in required if key not in payload]
    if missing:
        return fail(path, line_no,
                    f"'{command}' payload missing key(s) the resume "
                    f"deserializer reads: {', '.join(missing)}")
    return True


def check_record(path, line_no, record, tasks, command):
    if not isinstance(record, dict):
        return fail(path, line_no, "record is not an object"), None
    task = record.get("task")
    if not isinstance(task, int) or isinstance(task, bool) or task < 0:
        return fail(path, line_no, "'task' must be a non-negative integer"), None
    if task >= tasks:
        return fail(path, line_no,
                    f"task index {task} out of range (header says {tasks})"), None
    if not is_u64_string(record.get("seed")):
        return fail(path, line_no, "'seed' must be a u64 decimal string"), None
    status = record.get("status")
    if status == "ok":
        if not isinstance(record.get("payload"), dict):
            return fail(path, line_no, "'ok' record missing object 'payload'"), None
        if not check_payload(path, line_no, command, record["payload"]):
            return False, None
    elif status == "fail":
        category = record.get("category")
        if category not in CATEGORIES:
            return fail(path, line_no,
                        f"unknown failure category {category!r}"), None
        if not isinstance(record.get("message"), str):
            return fail(path, line_no, "'fail' record missing string 'message'"), None
        attempts = record.get("attempts")
        if not isinstance(attempts, int) or isinstance(attempts, bool) or attempts < 1:
            return fail(path, line_no, "'attempts' must be an integer >= 1"), None
    else:
        return fail(path, line_no, f"unknown status {status!r}"), None
    return True, (task, status)


def check_journal(path, expect_complete, expect_command=None):
    try:
        with open(path) as f:
            # keepends=False; the writer terminates every complete line.
            lines = f.read().splitlines()
    except OSError as e:
        print(f"error: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)

    if not lines:
        return fail(path, 1, "empty file (no header)")

    try:
        header = json.loads(lines[0])
    except ValueError as e:
        return fail(path, 1, f"unparseable header: {e}")
    ok, tasks = check_header(path, header)
    if not ok:
        return False
    if expect_command is not None and header["command"] != expect_command:
        return fail(path, 1, f"--expect-command: header says "
                             f"{header['command']!r}, expected {expect_command!r}")

    completed = set()
    failed = set()
    truncated_tail = False
    for i, line in enumerate(lines[1:], start=2):
        if not line:
            continue
        try:
            record = json.loads(line)
        except ValueError as e:
            if i == len(lines):
                # The crash-tolerance contract: only the final line may be
                # cut short by a kill.
                truncated_tail = True
                continue
            return fail(path, i, f"unparseable record (not the final line): {e}")
        ok, parsed = check_record(path, i, record, tasks, header["command"])
        if not ok:
            return False
        task, status = parsed
        if status == "ok":
            if task in completed:
                return fail(path, i, f"duplicate 'ok' record for task {task}")
            completed.add(task)
        else:
            failed.add(task)

    if expect_complete:
        missing = sorted(set(range(tasks)) - completed)
        if missing:
            shown = ", ".join(map(str, missing[:10]))
            more = "" if len(missing) <= 10 else f" (+{len(missing) - 10} more)"
            return fail(path, len(lines),
                        f"--expect-complete: {len(missing)} task(s) without an "
                        f"'ok' record: {shown}{more}")

    tail = " (truncated final line)" if truncated_tail else ""
    print(f"{path}: OK — {header['command']}, {len(completed)}/{tasks} task(s) "
          f"complete, {len(failed)} distinct failure(s){tail}")
    return True


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--expect-complete", action="store_true",
                        help="require an 'ok' record for every task index")
    parser.add_argument("--expect-command", metavar="CMD",
                        help="require the header's command to be CMD")
    parser.add_argument("journals", nargs="+", metavar="JOURNAL")
    args = parser.parse_args(argv[1:])

    all_ok = True
    for path in args.journals:
        all_ok = check_journal(path, args.expect_complete,
                               args.expect_command) and all_ok
    return 0 if all_ok else 1


if __name__ == "__main__":
    sys.exit(main(sys.argv))
