// bench_report — machine-readable perf reports for the CI perf gate.
//
//   bench_report sweep [--out BENCH_sweep.json] [--jobs N] [--service messaging]
//                      [--hosts 4] [--snapshots 3] [--trace 100ms] [--seed 42]
//       Runs the fleet (host, snapshot) grid once per entry of a jobs
//       ladder (1, 2, ..., N) through sim::SweepRunner and emits JSON with
//       per-rung wall time, simulator events/sec, and speedup vs 1 thread,
//       plus a determinism check: the telemetry of every rung must be
//       byte-identical to the sequential run's. A final sequential run with
//       the event-loop self-profiler enabled contributes an
//       "event_loop_profile" section (events and wall ms per event
//       category) so event-mix regressions are visible next to the raw
//       throughput numbers. CI archives the file as an artifact so the
//       perf trajectory is comparable across commits.
//   bench_report scaling [--out BENCH_scaling.json] [--degrees 64,512,2000]
//                        [--bytes 270000] [--jobs 4] [--seed 1]
//       Runs the incast-degree scaling ladder (core::IncastScalingExperiment
//       on the 432-host fat-tree) sequentially, then re-runs it at --jobs
//       workers and byte-compares the CSVs (exit 1 on divergence). Emits
//       google-benchmark-shaped JSON — one "BM_ScalingIncast/<degree>" entry
//       per rung with events/sec, the deterministic peak bytes-per-flow
//       decomposition, and FCT overhead — so tools/check_bench_regression.py
//       gates both throughput and the --memory bytes-per-flow budget from
//       the same artifact.
//   bench_report parallel [--out BENCH_parallel.json] [--degree 512]
//                         [--domains 8] [--bytes 270000] [--seed 1]
//       The intra-run engine's report: one incast degree on the 432-host
//       fat-tree, run once per rung of a domain ladder (1, 2, 4, ...,
//       --domains) through the conservative windowed engine. Every rung's
//       CSV must be byte-identical to the domains=1 reference (exit 1 on
//       divergence — that is the decomposition-invariance contract). Emits
//       google-benchmark-shaped JSON — one "BM_ParallelPoint/<domains>"
//       entry per rung with wall time, events/sec, windows, packets
//       bridged, and barrier stall — so the speedup trajectory is
//       archivable and diffable across commits like the other reports.
#include <array>
#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "core/cli_args.h"
#include "core/fleet_experiment.h"
#include "core/scaling_experiment.h"
#include "sim/event_category.h"
#include "telemetry/trace_io.h"
#include "workload/service_profile.h"

namespace {

using namespace incast;
using namespace incast::sim::literals;

// The telemetry fingerprint of one sweep: every trace's Millisampler bins
// serialized in task order. Any scheduling-dependent divergence — a stolen
// task changing an Rng draw, a result landing at the wrong index — changes
// these bytes.
std::string sweep_fingerprint(const std::vector<core::HostTraceResult>& results) {
  std::ostringstream out;
  for (const auto& r : results) {
    out << r.host << ',' << r.snapshot << ',' << r.queue_drops << ','
        << r.events_processed << '\n';
    telemetry::write_bins_csv(r.bins, out);
  }
  return out.str();
}

struct Rung {
  int jobs{1};
  double wall_ms{0.0};
  std::uint64_t events{0};
  double events_per_sec{0.0};
};

int run_sweep_report(core::CliArgs& args) {
  const std::string out_path = args.get_or("out", "BENCH_sweep.json");
  const std::string service = args.get_or("service", "messaging");
  const int max_jobs = static_cast<int>(args.int_or("jobs", 0, 0, 1024));

  core::FleetConfig cfg;
  try {
    cfg.profile = workload::service_by_name(service);
  } catch (const std::out_of_range&) {
    std::fprintf(stderr, "error: unknown --service '%s'\n", service.c_str());
    return 2;
  }
  // A modest grid: large enough that per-task cost dwarfs pool overhead,
  // small enough for a CI smoke step.
  cfg.profile.max_flows = 40;
  cfg.profile.body_median_flows = 20.0;
  cfg.num_hosts = static_cast<int>(args.int_or("hosts", 4, 1, 10'000));
  cfg.num_snapshots = static_cast<int>(args.int_or("snapshots", 3, 1, 10'000));
  cfg.trace_duration = args.time_or("trace", 100_ms, 1_ns);
  cfg.base_seed = static_cast<std::uint64_t>(args.int_or("seed", 42));
  cfg.tcp.cc = tcp::CcAlgorithm::kDctcp;
  cfg.tcp.rtt.min_rto = 200_ms;
  args.reject_unknown();
  for (const auto& err : args.errors()) std::fprintf(stderr, "error: %s\n", err.c_str());
  if (!args.errors().empty()) return 2;

  // Jobs ladder: 1, 2, 4, ... up to the requested (or hardware) width.
  const int top = sim::SweepRunner{max_jobs}.jobs();
  std::vector<int> ladder{1};
  for (int j = 2; j < top; j *= 2) ladder.push_back(j);
  if (top > 1) ladder.push_back(top);

  std::string baseline_fingerprint;
  bool identical = true;
  std::vector<Rung> rungs;
  for (const int jobs : ladder) {
    cfg.jobs = jobs;
    core::FleetExperiment exp{cfg};
    exp.set_keep_bins(true);
    const auto results = exp.run_all();
    const auto& sweep = exp.last_sweep();

    Rung rung;
    rung.jobs = jobs;
    rung.wall_ms = sweep.wall_ms;
    rung.events = sweep.total_events;
    rung.events_per_sec = sweep.events_per_second();
    rungs.push_back(rung);

    const std::string fp = sweep_fingerprint(results);
    if (jobs == 1) {
      baseline_fingerprint = fp;
    } else if (fp != baseline_fingerprint) {
      identical = false;
    }
    std::printf("jobs=%d: %.2f ms, %llu events, %.0f events/s\n", jobs, rung.wall_ms,
                static_cast<unsigned long long>(rung.events), rung.events_per_sec);
  }

  const double base_eps = rungs.front().events_per_sec;
  const double top_eps = rungs.back().events_per_sec;
  const double speedup = base_eps > 0.0 ? top_eps / base_eps : 0.0;

  // One extra sequential pass with the self-profiler on: per-category event
  // counts and wall time. Kept out of the timed ladder — the steady_clock
  // read per dispatch is exactly the overhead the ladder must not carry.
  sim::EventCategoryCounts profile_events{};
  std::array<double, sim::kNumEventCategories> profile_wall_ns{};
  {
    cfg.jobs = 1;
    cfg.profile_event_loop = true;
    core::FleetExperiment exp{cfg};
    for (const auto& r : exp.run_all()) {
      for (std::size_t c = 0; c < sim::kNumEventCategories; ++c) {
        profile_events[c] += r.events_by_category[c];
        profile_wall_ns[c] += r.wall_ns_by_category[c];
      }
    }
  }
  std::printf("event-loop profile:");
  for (std::size_t c = 0; c < sim::kNumEventCategories; ++c) {
    if (profile_events[c] == 0) continue;
    std::printf(" %s=%llu (%.2f ms)",
                sim::to_string(static_cast<sim::EventCategory>(c)),
                static_cast<unsigned long long>(profile_events[c]),
                profile_wall_ns[c] / 1e6);
  }
  std::printf("\n");

  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "error: cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(out, "{\n");
  std::fprintf(out, "  \"benchmark\": \"fleet_sweep\",\n");
  std::fprintf(out, "  \"service\": \"%s\",\n", service.c_str());
  std::fprintf(out, "  \"hosts\": %d,\n  \"snapshots\": %d,\n  \"trace_ms\": %.3f,\n",
               cfg.num_hosts, cfg.num_snapshots, cfg.trace_duration.ms());
  std::fprintf(out, "  \"rungs\": [\n");
  for (std::size_t i = 0; i < rungs.size(); ++i) {
    const Rung& r = rungs[i];
    std::fprintf(out,
                 "    {\"jobs\": %d, \"wall_ms\": %.3f, \"events\": %llu, "
                 "\"events_per_sec\": %.1f}%s\n",
                 r.jobs, r.wall_ms, static_cast<unsigned long long>(r.events),
                 r.events_per_sec, i + 1 < rungs.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n");
  std::fprintf(out, "  \"event_loop_profile\": [\n");
  for (std::size_t c = 0; c < sim::kNumEventCategories; ++c) {
    std::fprintf(out,
                 "    {\"category\": \"%s\", \"events\": %llu, \"wall_ms\": %.3f}%s\n",
                 sim::to_string(static_cast<sim::EventCategory>(c)),
                 static_cast<unsigned long long>(profile_events[c]),
                 profile_wall_ns[c] / 1e6, c + 1 < sim::kNumEventCategories ? "," : "");
  }
  std::fprintf(out, "  ],\n");
  std::fprintf(out, "  \"speedup_vs_1\": %.3f,\n", speedup);
  std::fprintf(out, "  \"identical_results\": %s\n", identical ? "true" : "false");
  std::fprintf(out, "}\n");
  std::fclose(out);

  std::printf("speedup at %d jobs vs 1: %.2fx, results identical: %s -> %s\n",
              rungs.back().jobs, speedup, identical ? "yes" : "NO", out_path.c_str());
  // Non-identical parallel results are a correctness failure, not a perf
  // data point; fail loudly so CI catches it.
  return identical ? 0 : 1;
}

int run_scaling_report(core::CliArgs& args) {
  const std::string out_path = args.get_or("out", "BENCH_scaling.json");
  const int check_jobs = static_cast<int>(args.int_or("jobs", 4, 2, 1024));

  core::ScalingConfig cfg;
  cfg.degrees.clear();
  {
    std::istringstream in{args.get_or("degrees", "64,512,2000")};
    std::string field;
    while (std::getline(in, field, ',')) {
      const int v = std::atoi(field.c_str());
      if (v < 1 || v > 100'000) {
        std::fprintf(stderr, "error: --degrees: bad fan-in '%s'\n", field.c_str());
        return 2;
      }
      cfg.degrees.push_back(v);
    }
  }
  cfg.bytes_per_flow = args.int_or("bytes", cfg.bytes_per_flow, 1, 1'000'000'000);
  cfg.seed = static_cast<std::uint64_t>(args.int_or("seed", 1));
  cfg.tcp.cc = tcp::CcAlgorithm::kDctcp;
  cfg.tcp.rtt.min_rto = 200_ms;
  args.reject_unknown();
  for (const auto& err : args.errors()) std::fprintf(stderr, "error: %s\n", err.c_str());
  if (!args.errors().empty()) return 2;

  // Sequential reference run: its per-point wall times are the throughput
  // numbers (no worker contention), its CSV the determinism baseline.
  cfg.jobs = 1;
  const core::ScalingReport report = core::run_scaling_experiment(cfg);
  const std::string sequential_csv = core::scaling_csv(report);

  // The determinism check: the same ladder on a thread pool must produce
  // the identical artifact, byte for byte.
  cfg.jobs = check_jobs;
  const core::ScalingReport parallel = core::run_scaling_experiment(cfg);
  const bool identical = core::scaling_csv(parallel) == sequential_csv;

  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "error: cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(out, "{\n  \"context\": {\"benchmark\": \"incast_scaling\", "
                    "\"bytes_per_flow\": %lld, \"identical_at_jobs_%d\": %s},\n",
               static_cast<long long>(cfg.bytes_per_flow), check_jobs,
               identical ? "true" : "false");
  std::fprintf(out, "  \"benchmarks\": [\n");
  for (std::size_t i = 0; i < report.points.size(); ++i) {
    const core::ScalingPoint& p = report.points[i];
    const double wall_ms = report.sweep.tasks[i].wall_ms;
    const double events_per_sec =
        wall_ms > 0.0 ? static_cast<double>(p.events_processed) / (wall_ms / 1e3) : 0.0;
    std::fprintf(out,
                 "    {\"name\": \"BM_ScalingIncast/%d\", \"run_type\": \"iteration\", "
                 "\"real_time\": %.1f, \"time_unit\": \"ns\", "
                 "\"items_per_second\": %.1f, \"peak_bytes_per_flow\": %llu, "
                 "\"fct_overhead_pct\": %.2f, \"fct_ms\": %.4f, \"events\": %llu}%s\n",
                 p.degree, wall_ms * 1e6, events_per_sec,
                 static_cast<unsigned long long>(p.bytes_per_flow), p.overhead_pct,
                 p.fct_ms, static_cast<unsigned long long>(p.events_processed),
                 i + 1 < report.points.size() ? "," : "");
    std::printf("degree=%d: %.2f ms FCT (%.1f%% overhead), %.0f events/s, "
                "%llu bytes/flow\n",
                p.degree, p.fct_ms, p.overhead_pct, events_per_sec,
                static_cast<unsigned long long>(p.bytes_per_flow));
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);

  std::printf("peak RSS %.1f MiB, results identical at --jobs %d: %s -> %s\n",
              static_cast<double>(report.sweep.peak_rss_bytes) / (1024.0 * 1024.0),
              check_jobs, identical ? "yes" : "NO", out_path.c_str());
  return identical ? 0 : 1;
}

int run_parallel_report(core::CliArgs& args) {
  const std::string out_path = args.get_or("out", "BENCH_parallel.json");
  const int degree = static_cast<int>(args.int_or("degree", 512, 1, 100'000));
  const int max_domains = static_cast<int>(args.int_or("domains", 8, 1, 1024));

  core::ScalingConfig cfg;
  cfg.degrees = {degree};
  cfg.bytes_per_flow = args.int_or("bytes", cfg.bytes_per_flow, 1, 1'000'000'000);
  cfg.seed = static_cast<std::uint64_t>(args.int_or("seed", 1));
  cfg.tcp.cc = tcp::CcAlgorithm::kDctcp;
  cfg.tcp.rtt.min_rto = 200_ms;
  cfg.jobs = 1;  // one point: all parallelism is intra-run
  args.reject_unknown();
  for (const auto& err : args.errors()) std::fprintf(stderr, "error: %s\n", err.c_str());
  if (!args.errors().empty()) return 2;

  // Domain ladder: 1, 2, 4, ... up to the requested width. The domains=1
  // rung is the sequential reference of the windowed engine's determinism
  // contract — every later rung's CSV must match it byte for byte.
  std::vector<int> ladder{1};
  for (int d = 2; d < max_domains; d *= 2) ladder.push_back(d);
  if (max_domains > 1) ladder.push_back(max_domains);

  struct DomainRung {
    int domains{1};
    double wall_ms{0.0};
    core::ScalingPoint point;
  };
  std::string baseline_csv;
  bool identical = true;
  std::vector<DomainRung> rungs;
  for (const int domains : ladder) {
    cfg.domains = domains;
    const core::ScalingReport report = core::run_scaling_experiment(cfg);
    const std::string csv = core::scaling_csv(report);
    if (domains == 1) {
      baseline_csv = csv;
    } else if (csv != baseline_csv) {
      identical = false;
    }
    DomainRung rung;
    rung.domains = domains;
    rung.wall_ms = report.sweep.tasks.front().wall_ms;
    rung.point = report.points.front();
    rungs.push_back(std::move(rung));
    std::printf("domains=%d: %.2f ms wall, %llu windows, %llu bridged, "
                "%.2f ms stalled\n",
                domains, rungs.back().wall_ms,
                static_cast<unsigned long long>(rungs.back().point.windows),
                static_cast<unsigned long long>(rungs.back().point.packets_bridged),
                static_cast<double>(rungs.back().point.barrier_stall_ns) / 1e6);
  }

  const double base_ms = rungs.front().wall_ms;
  const double top_ms = rungs.back().wall_ms;
  const double speedup = top_ms > 0.0 ? base_ms / top_ms : 0.0;

  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "error: cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(out, "{\n  \"context\": {\"benchmark\": \"parallel_fabric\", "
                    "\"degree\": %d, \"bytes_per_flow\": %lld, "
                    "\"speedup_at_%d_domains\": %.3f, \"identical_csv\": %s},\n",
               degree, static_cast<long long>(cfg.bytes_per_flow),
               rungs.back().domains, speedup, identical ? "true" : "false");
  std::fprintf(out, "  \"benchmarks\": [\n");
  for (std::size_t i = 0; i < rungs.size(); ++i) {
    const DomainRung& r = rungs[i];
    const core::ScalingPoint& p = r.point;
    const double events_per_sec =
        r.wall_ms > 0.0 ? static_cast<double>(p.events_processed) / (r.wall_ms / 1e3)
                        : 0.0;
    std::fprintf(out,
                 "    {\"name\": \"BM_ParallelPoint/%d\", \"run_type\": \"iteration\", "
                 "\"real_time\": %.1f, \"time_unit\": \"ns\", "
                 "\"items_per_second\": %.1f, \"windows\": %llu, "
                 "\"packets_bridged\": %llu, \"barrier_stall_ms\": %.3f, "
                 "\"events\": %llu}%s\n",
                 r.domains, r.wall_ms * 1e6, events_per_sec,
                 static_cast<unsigned long long>(p.windows),
                 static_cast<unsigned long long>(p.packets_bridged),
                 static_cast<double>(p.barrier_stall_ns) / 1e6,
                 static_cast<unsigned long long>(p.events_processed),
                 i + 1 < rungs.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);

  std::printf("speedup at %d domains vs 1: %.2fx, CSV identical: %s -> %s\n",
              rungs.back().domains, speedup, identical ? "yes" : "NO",
              out_path.c_str());
  // A diverging CSV is a broken determinism contract, not a perf data
  // point; fail loudly so CI catches it.
  return identical ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const std::string command = argc >= 2 ? argv[1] : "";
    if (command != "sweep" && command != "scaling" && command != "parallel") {
      std::fprintf(stderr,
                   "usage: bench_report sweep [--out BENCH_sweep.json] "
                   "[--jobs N] [--hosts H] [--snapshots S] [--trace 100ms]\n"
                   "       bench_report scaling [--out BENCH_scaling.json] "
                   "[--degrees 64,512,2000] [--bytes 270000] [--jobs 4]\n"
                   "       bench_report parallel [--out BENCH_parallel.json] "
                   "[--degree 512] [--domains 8] [--bytes 270000]\n");
      return 2;
    }
    incast::core::CliArgs args{argc - 1, argv + 1};
    if (command == "sweep") return run_sweep_report(args);
    if (command == "scaling") return run_scaling_report(args);
    return run_parallel_report(args);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
