// incast_sim — command-line driver for custom experiments.
//
// Subcommands:
//
//   incast_sim burst [--flows 500] [--duration 15ms] [--bursts 11]
//                    [--cc dctcp|reno|reno-ecn|cubic|swift|hpcc]
//                    [--ecn-threshold 65] [--queue 1333] [--gap 10ms]
//                    [--min-rto 200ms] [--cwnd-cap-mss 0] [--tlp]
//                    [--schedule completion|period] [--seed 1]
//       Runs the Section 4 cyclic-incast experiment and prints the result.
//
//   incast_sim faults [all burst flags] [--drop-rate 1e-3 | --drop-rates 0,1e-4,1e-3]
//                     [--flap-duration 50ms | --flap-durations 10ms,50ms]
//                     [--flap-at 30ms] [--corrupt-rate 0] [--dup-rate 0]
//                     [--reorder-rate 0] [--reorder-delay 50us]
//                     [--ge-p 0] [--ge-r 0.1] [--ge-loss-bad 1] [--ge-loss-good 0]
//                     [--jobs N]
//       Runs the cyclic incast under injected link faults: a fault-free
//       baseline plus one run per sweep point, reporting goodput
//       degradation, loss attribution (injected vs congestion), recovery
//       time after flaps, and the behavioral DCTCP mode of every point.
//       With every fault knob at zero the fault layer is a strict no-op and
//       the baseline equals the `burst` subcommand's result exactly.
//
//   incast_sim fabric [--flows 96] [--pods 2] [--leaves 2] [--hosts-per-leaf 8]
//                     [--aggs 0] [--spines 2] [--host-link 10Gbps]
//                     [--leaf-uplink 40Gbps] [--spine-link 100Gbps]
//                     [--placement cross|single] [--ecmp-seed 1]
//                     [--export-telemetry prefix]
//                     [all burst workload flags: --cc --duration --bursts
//                      --discard --gap --schedule --queue --ecn-threshold
//                      --min-rto --seed]
//       Runs the cyclic incast across a multi-tier Clos fabric: senders
//       spread over racks, ECMP over the leaf uplinks, Millisampler-style
//       1 ms telemetry at host / leaf / spine vantage points, and per-leaf
//       ECMP collision histograms. --export-telemetry writes one CSV per
//       vantage (prefix + sanitized link name). With 1 pod, 2 leaves,
//       1 spine and --placement single the fabric degenerates to the
//       dumbbell of `burst`.
//
//   incast_sim fleet [--service aggregator] [--hosts 2] [--snapshots 1]
//                    [--trace 1s] [--contention none|modeled|neighbor]
//                    [--export-csv trace.csv] [--seed 42] [--jobs N]
//       Runs Section 3 production-like traces and prints per-burst
//       statistics; optionally exports the first host's Millisampler bins.
//
//   incast_sim collateral [--modes droptail,pfc,trim,credit] [--degrees 64]
//                         [--bursts 4] [--duration 15ms] [--gap 10ms]
//                         [--cc dctcp] [--pfc-cc dcqcn] [--queue 1333]
//                         [--ecn-threshold 65] [--trim-queue 400]
//                         [--shared-buffer 0] [--dt-alpha 1.0]
//                         [--core-link 20Gbps] [--victim-cwnd-cap 131072]
//                         [--min-rto 200ms] [--max-sim-time 30s] [--seed 1]
//                         [--jobs N] [--export-csv points.csv]
//       Runs the htsim "collateral damage" scenario family: one long-lived
//       victim flow beside an incast, across the four queue modes
//       (drop-tail+ECN, PFC lossless + DCQCN, NDP packet trimming, and the
//       rdt:: receiver-driven credit transport). Reports per-point victim
//       throughput, PFC pause time (HoL blocking), trims/NACKs, and incast
//       BCTs. Expected victim-throughput ordering:
//       trim ~ credit > droptail > pfc.
//
//   incast_sim scaling [--degrees 1,2,...,8000] [--bytes 270000]
//                      [--pods 12] [--leaves 6] [--hosts-per-leaf 6]
//                      [--aggs 6] [--spines 36] [--cc dctcp]
//                      [--min-rto 200ms] [--max-sim-time 120s] [--seed 1]
//                      [--jobs N] [--domains N] [--export-csv scaling.csv]
//       Runs the htsim incast_scaling sweep: N senders each push one
//       fixed-size transfer to a single receiver on a 432-host three-tier
//       fat-tree, for N from 1 to 8000. Reports FCT overhead versus the
//       optimal (base RTT + bottleneck serialization) per degree, plus a
//       deterministic bytes-per-flow memory decomposition (flow state,
//       packet pools, routing tables, event-kernel slab).
//       --domains N parallelizes each point *internally*: the fabric is
//       decomposed by rack into N conservatively-synchronized domains (see
//       docs/PARALLELISM.md), producing byte-identical CSVs at any N >= 1
//       (0 = one domain per hardware thread; flag absent = the legacy
//       single-queue engine). Incompatible with the per-event observers
//       (--flow-trace / --trace-out / --flight-recorder).
//
//   --jobs N (fleet, faults, collateral, scaling) runs the independent simulations of a sweep on
//   N worker threads (work-stealing; default: all hardware threads). Seeds
//   derive from (base seed, task index), so any N — including --jobs 1,
//   which reproduces the historical sequential behavior — yields
//   byte-identical results.
//
//   incast_sim trace --input trace.csv [--line-rate 10Gbps]
//       Runs the burst detector on a previously exported trace.
//
//   incast_sim chaos [--configs 25] [--seed 7] [--jobs N]
//                    [--max-events 20000000] [--max-wall-ms 0]
//                    [--journal run.journal]
//       Fuzzes the simulator: K seeded random configurations (bursts,
//       faulty bursts, fleet traces) each run under the strict invariant
//       auditor with an event budget. Any violation or budget blowout is
//       quarantined and reported; exit code 4 if any config failed. The
//       same seed always generates the same configs.
//
//   Run-hardening flags, shared by burst / faults / fabric / fleet / chaos:
//     --audit off|relaxed|strict  invariant auditor mode (default relaxed:
//                                 violations are counted, never fatal;
//                                 strict aborts with exit 4 and dumps the
//                                 flight recorder when one is armed)
//     --max-events N              per-simulation event budget (0 = none)
//     --max-wall-ms MS            per-simulation wall-clock budget (0 = none)
//
//   Sweep fault-isolation flags (faults, fleet, collateral, scaling, chaos):
//     --fail-fast                 abort the whole sweep on the first task
//                                 failure (historical behavior). Default:
//                                 quarantine the failing point, retry it
//                                 --retries times, and keep going.
//     --retries N                 same-seed retry attempts for a failed
//                                 task before quarantining it (default 1;
//                                 ignored under --fail-fast)
//     --journal PATH              append-only checkpoint journal. A killed
//                                 run (crash, ^C, SIGTERM) resumes by
//                                 rerunning the command with the same
//                                 --journal: completed points are skipped,
//                                 and the merged output is byte-identical
//                                 to an uninterrupted run. A journal from a
//                                 different configuration is refused.
//
//   Exit codes: 0 success; 2 bad invocation or config/journal mismatch;
//   3 file I/O failure; 4 audit violation or budget exceeded (strict) or
//   chaos failures; 5 internal error; 130/143 after SIGINT/SIGTERM.
//
//   Observability flags, shared by burst / faults / fabric / fleet:
//     --trace-out FILE          write a Chrome trace-event JSON of the run
//                               (load in Perfetto / chrome://tracing;
//                               validate with tools/check_trace.py)
//     --metrics-out FILE        write the end-of-run metrics registry
//                               snapshot as JSON
//     --flight-recorder SPEC    arm the anomaly flight recorder; SPEC is
//                               rto-storm[:N[:window_ms]] |
//                               queue-collapse[:packets] | mode-shift
//     --flight-recorder-out P   dump filename prefix (default "flight_";
//                               dump n is written to P<n>.json)
//   For faults, the baseline run is the observed one (sweep points run in
//   parallel); for fleet, the (host 0, snapshot 0) cell is. Trace and
//   metrics bytes are identical for every --jobs value.
//
//   Tail-autopsy flags, shared by burst / fabric / collateral / scaling:
//     --flow-trace              sampled per-flow latency attribution: each
//                               sampled flow's FCT is decomposed exactly
//                               into serialization, propagation, per-tier
//                               queueing, PFC pause and sender stall classes
//     --flow-trace-out FILE     write the p50/p99/p999 attribution rows as
//                               fct_breakdown.csv (implies --flow-trace);
//                               byte-identical at any --jobs value
//     --flow-trace-sample N     trace 1 in N flows, hashed by (flow id,
//                               base seed) so the sample set is the same at
//                               every sweep point (default 1 = every flow)
#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "analysis/burst_detector.h"
#include "core/chaos.h"
#include "core/cli_args.h"
#include "core/collateral_experiment.h"
#include "core/error.h"
#include "core/fabric_experiment.h"
#include "core/fleet_experiment.h"
#include "core/incast_experiment.h"
#include "core/report.h"
#include "core/resilience_experiment.h"
#include "core/scaling_experiment.h"
#include "core/task_journal.h"
#include "obs/flow_trace.h"
#include "obs/hub.h"
#include "telemetry/trace_io.h"

namespace {

using namespace incast;
using namespace incast::sim::literals;

// Cooperative cancellation: the signal handler only flips atomics; every
// simulation polls g_cancel through its auditor (every 8192 events) and the
// sweep runner stops handing out tasks, so journals and partial exports are
// flushed through the normal paths before exit.
std::atomic<bool> g_cancel{false};
std::atomic<int> g_signal{0};

extern "C" void handle_signal(int sig) {
  g_signal.store(sig, std::memory_order_relaxed);
  g_cancel.store(true, std::memory_order_relaxed);
}

int usage() {
  std::fprintf(stderr,
               "usage: incast_sim <burst|faults|fabric|fleet|collateral|scaling|trace|chaos> "
               "[--key value ...]\n"
               "       see the header of tools/incast_sim.cc for all flags\n");
  return 2;
}

std::optional<tcp::CcAlgorithm> parse_cc(const std::string& name) {
  if (name == "dctcp") return tcp::CcAlgorithm::kDctcp;
  if (name == "reno") return tcp::CcAlgorithm::kReno;
  if (name == "reno-ecn") return tcp::CcAlgorithm::kRenoEcn;
  if (name == "cubic") return tcp::CcAlgorithm::kCubic;
  if (name == "swift") return tcp::CcAlgorithm::kSwift;
  if (name == "hpcc") return tcp::CcAlgorithm::kHpcc;
  if (name == "dcqcn") return tcp::CcAlgorithm::kDcqcn;
  return std::nullopt;
}

// Validates strictly: unknown flags and out-of-range values are errors, not
// warnings, so a typo'd or nonsensical invocation fails loudly.
int finish(core::CliArgs& args) {
  args.reject_unknown();
  for (const auto& err : args.errors()) std::fprintf(stderr, "error: %s\n", err.c_str());
  return args.errors().empty() ? 0 : 2;
}

// Splits "a,b,c" into fields; empty input yields an empty list.
std::vector<std::string> split_list(const std::string& csv) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= csv.size() && !csv.empty()) {
    const std::size_t comma = csv.find(',', start);
    out.push_back(csv.substr(start, comma - start));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

// The observability flags shared by every simulation subcommand. Parsing
// constructs a Hub only when some flag asks for one, so an unobserved
// invocation never allocates observability state at all.
struct ObsCli {
  std::string trace_out;
  std::string metrics_out;
  std::string trigger_spec;
  std::string dump_prefix;
  std::unique_ptr<obs::Hub> hub;
  int dump_write_errors{0};

  // Must run before finish(args) so the flags are consumed. Returns false
  // (after printing a diagnostic) on a malformed trigger spec.
  bool parse(core::CliArgs& args) {
    trace_out = args.get_or("trace-out", "");
    metrics_out = args.get_or("metrics-out", "");
    trigger_spec = args.get_or("flight-recorder", "");
    dump_prefix = args.get_or("flight-recorder-out", "flight_");
    if (trace_out.empty() && metrics_out.empty() && trigger_spec.empty()) return true;

    hub = std::make_unique<obs::Hub>();
    hub->tracer().set_enabled(!trace_out.empty());
    if (!trigger_spec.empty()) {
      const auto trigger = obs::parse_trigger(trigger_spec);
      if (!trigger) {
        std::fprintf(stderr,
                     "error: bad --flight-recorder spec '%s' "
                     "(rto-storm[:N[:window_ms]] | queue-collapse[:packets] | "
                     "mode-shift)\n",
                     trigger_spec.c_str());
        return false;
      }
      hub->recorder().arm(*trigger);
      hub->recorder().set_dump_sink(
          [this](const std::string& reason, const std::vector<obs::TraceEvent>& ring) {
            const std::string path =
                dump_prefix + std::to_string(hub->recorder().dumps()) + ".json";
            std::ofstream out{path};
            if (!out) {
              std::fprintf(stderr, "error: cannot write flight dump %s\n", path.c_str());
              ++dump_write_errors;
              return;
            }
            hub->write_dump(ring, out);
            std::fprintf(stderr, "flight recorder: %s -> %s (%zu events)\n",
                         reason.c_str(), path.c_str(), ring.size());
          });
    }
    return true;
  }

  // Call after the experiment (its ExperimentObserver snapshots the metrics
  // registry before components unregister). Returns 0, or 1 on I/O failure.
  int write_outputs() {
    if (!hub) return 0;
    if (!trace_out.empty()) {
      std::ofstream out{trace_out};
      if (!out) {
        std::fprintf(stderr, "error: cannot write %s\n", trace_out.c_str());
        return 1;
      }
      hub->write_trace(out);
      std::printf("wrote trace: %zu event(s) (%llu dropped at capacity) to %s\n",
                  hub->tracer().events().size(),
                  static_cast<unsigned long long>(hub->tracer().dropped()),
                  trace_out.c_str());
    }
    if (!metrics_out.empty()) {
      if (!hub->has_final_metrics()) hub->capture_metrics(0);
      std::ofstream out{metrics_out};
      if (!out) {
        std::fprintf(stderr, "error: cannot write %s\n", metrics_out.c_str());
        return 1;
      }
      hub->final_metrics().write_json(out);
      std::printf("wrote metrics: %zu metric(s) to %s\n",
                  hub->final_metrics().entries.size(), metrics_out.c_str());
    }
    if (!trigger_spec.empty()) {
      std::printf("flight recorder (%s): %d dump(s)\n", trigger_spec.c_str(),
                  hub->recorder().dumps());
    }
    return dump_write_errors > 0 ? 1 : 0;
  }
};

// The tail-autopsy flags shared by burst / fabric / collateral / scaling.
// Must run before finish(args) so the flags are consumed.
struct FlowTraceCli {
  bool enabled{false};
  std::uint64_t sample_every{1};
  std::string out_path;

  void parse(core::CliArgs& args) {
    out_path = args.get_or("flow-trace-out", "");
    enabled = args.bool_or("flow-trace", false) || !out_path.empty();
    sample_every =
        static_cast<std::uint64_t>(args.int_or("flow-trace-sample", 1, 1, 1'000'000'000));
  }

  // Writes fct_breakdown.csv when --flow-trace-out was given. Returns 0, or
  // 3 (the documented file-I/O exit code) on failure.
  [[nodiscard]] int write_csv(const std::string& csv) const {
    if (out_path.empty()) return 0;
    std::ofstream out{out_path};
    if (!out) {
      std::fprintf(stderr, "error: cannot write %s\n", out_path.c_str());
      return 3;
    }
    out << csv;
    std::printf("wrote flow-trace breakdown to %s\n", out_path.c_str());
    return 0;
  }
};

// Full tail-autopsy table for the single-point subcommands: one row per
// percentile, every component as its share of that flow's FCT.
void print_fct_attribution(const std::vector<obs::TailAttributionRow>& rows,
                           std::uint64_t traced, std::uint64_t incomplete) {
  std::printf("\ntail autopsy (%llu completed sampled flow(s), %llu incomplete):\n",
              static_cast<unsigned long long>(traced),
              static_cast<unsigned long long>(incomplete));
  if (rows.empty()) {
    std::printf("  no completed sampled flows -- nothing to attribute\n");
    return;
  }
  core::Table t{{"pctl", "FCT", "serial", "prop", "q-host", "q-tor", "q-agg", "q-spine",
                 "pfc", "cwnd", "rto", "fast-rec", "nack-rec", "other"}};
  for (const auto& row : rows) {
    const obs::FlowBreakdown& f = row.flow;
    const auto pct = [&f](std::int64_t ns) {
      return f.fct_ns > 0 ? core::fmt(100.0 * static_cast<double>(ns) /
                                          static_cast<double>(f.fct_ns),
                                      1) + " %"
                          : std::string{"-"};
    };
    t.add_row({row.pctl, core::fmt(static_cast<double>(f.fct_ns) / 1e6, 3) + " ms",
               pct(f.serialization_ns), pct(f.propagation_ns), pct(f.q_host_ns),
               pct(f.q_tor_ns), pct(f.q_agg_ns), pct(f.q_spine_ns), pct(f.pfc_pause_ns),
               pct(f.cwnd_limited_ns), pct(f.rto_wait_ns), pct(f.fast_recovery_ns),
               pct(f.nack_recovery_ns), pct(f.other_ns)});
  }
  t.print();
}

// One p99 cause-share row for the grid subcommands' footer table ("where
// did the p99 flow's time go at this point"). Queue tiers and wire time are
// folded so a row stays readable across a whole mode x degree grid; points
// with no traced flows contribute no row.
void add_p99_row(core::Table& t, const std::string& mode, int degree,
                 const std::vector<obs::TailAttributionRow>& rows) {
  for (const auto& row : rows) {
    if (std::strcmp(row.pctl, "p99") != 0) continue;
    const obs::FlowBreakdown& f = row.flow;
    const auto pct = [&f](std::int64_t ns) {
      return f.fct_ns > 0 ? core::fmt(100.0 * static_cast<double>(ns) /
                                          static_cast<double>(f.fct_ns),
                                      1) + " %"
                          : std::string{"-"};
    };
    const std::int64_t wire = f.serialization_ns + f.propagation_ns;
    const std::int64_t queue = f.q_host_ns + f.q_tor_ns + f.q_agg_ns + f.q_spine_ns;
    t.add_row({mode, std::to_string(degree),
               core::fmt(static_cast<double>(f.fct_ns) / 1e6, 3) + " ms", pct(wire),
               pct(queue), pct(f.pfc_pause_ns), pct(f.cwnd_limited_ns), pct(f.rto_wait_ns),
               pct(f.fast_recovery_ns), pct(f.nack_recovery_ns), pct(f.other_ns)});
    return;
  }
}

// The run-hardening flags shared by every simulation subcommand: auditor
// mode and budgets, plus (for sweeps) quarantine/retry and the checkpoint
// journal. Must run before finish(args) so the flags are consumed.
struct HardeningCli {
  sim::AuditMode audit_mode{sim::AuditMode::kRelaxed};
  sim::Auditor::Config audit{};
  std::string journal_path;
  bool fail_fast{false};
  int max_attempts{2};

  bool parse(core::CliArgs& args, bool sweep_flags) {
    const std::string mode_name = args.get_or("audit", "relaxed");
    if (!sim::parse_audit_mode(mode_name, audit_mode)) {
      std::fprintf(stderr, "error: unknown --audit '%s' (off|relaxed|strict)\n",
                   mode_name.c_str());
      return false;
    }
    audit.max_events =
        static_cast<std::uint64_t>(args.int_or("max-events", 0, 0, 1'000'000'000'000));
    audit.max_wall_ms = args.double_or("max-wall-ms", 0.0, 0.0, 1e9);
    audit.cancel = &g_cancel;
    if (sweep_flags) {
      journal_path = args.get_or("journal", "");
      fail_fast = args.bool_or("fail-fast", false);
      max_attempts = 1 + static_cast<int>(args.int_or("retries", 1, 0, 16));
    }
    return true;
  }

  [[nodiscard]] sim::SweepRunner::Policy policy() const {
    sim::SweepRunner::Policy p;
    p.fail_fast = fail_fast;
    p.max_attempts = max_attempts;
    p.cancel = &g_cancel;
    return p;
  }
};

// Printed after a signal-interrupted sweep so the operator knows the state
// on disk is resumable, then the 128+signo exit happens in main().
void print_resume_hint(const core::TaskJournal& journal) {
  if (g_signal.load(std::memory_order_relaxed) == 0) return;
  if (journal.active()) {
    std::fprintf(stderr,
                 "interrupted: journal %s holds %zu completed task(s); rerun the same "
                 "command to resume\n",
                 journal.path().c_str(), journal.completed_count());
  } else {
    std::fprintf(stderr, "interrupted: no --journal, completed work is discarded\n");
  }
}

// Shared between `burst` and `faults` so the two subcommands agree on every
// default — `faults` with all fault knobs at zero must reproduce `burst`.
bool parse_incast_config(core::CliArgs& args, core::IncastExperimentConfig& cfg,
                         std::string& cc_name) {
  cfg.num_flows = static_cast<int>(args.int_or("flows", 500, 1, 100'000));
  cfg.burst_duration = args.time_or("duration", 15_ms, 1_ns);
  cfg.num_bursts = static_cast<int>(args.int_or("bursts", 11, 1, 10'000));
  cfg.discard_bursts =
      static_cast<int>(args.int_or("discard", 1, 0, cfg.num_bursts - 1));
  cfg.inter_burst_gap = args.time_or("gap", 10_ms, sim::Time::zero());
  cfg.seed = static_cast<std::uint64_t>(args.int_or("seed", 1));
  cfg.max_sim_time = args.time_or("max-sim-time", sim::Time::seconds(60), 1_ns);

  cc_name = args.get_or("cc", "dctcp");
  const auto cc = parse_cc(cc_name);
  if (!cc) {
    std::fprintf(stderr, "error: unknown --cc '%s'\n", cc_name.c_str());
    return false;
  }
  cfg.tcp.cc = *cc;
  cfg.tcp.int_telemetry = *cc == tcp::CcAlgorithm::kHpcc;
  cfg.tcp.rtt.min_rto = args.time_or("min-rto", 200_ms, 1_ns);
  cfg.tcp.tail_loss_probe = args.bool_or("tlp", false);
  cfg.topology.switch_queue.capacity_packets = args.int_or("queue", 1333, 1, 10'000'000);
  cfg.topology.switch_queue.ecn_threshold_packets =
      args.int_or("ecn-threshold", 65, 0, 10'000'000);
  const std::int64_t cap_mss = args.int_or("cwnd-cap-mss", 0, 0, 1'000'000);
  if (cap_mss > 0) cfg.tcp.cwnd_cap_bytes = cap_mss * cfg.tcp.mss_bytes;
  const std::string schedule = args.get_or("schedule", "completion");
  if (schedule != "completion" && schedule != "period") {
    std::fprintf(stderr, "error: unknown --schedule '%s'\n", schedule.c_str());
    return false;
  }
  cfg.schedule = schedule == "period" ? workload::BurstSchedule::kFixedPeriod
                                      : workload::BurstSchedule::kAfterCompletion;
  return true;
}

void print_burst_table(const core::IncastExperimentResult& r) {
  core::Table t{{"metric", "value"}};
  t.add_row({"bursts completed", std::to_string(r.bursts.size())});
  t.add_row({"avg BCT (measured bursts)", core::fmt(r.avg_bct_ms, 2) + " ms"});
  t.add_row({"max BCT", core::fmt(r.max_bct_ms, 2) + " ms"});
  t.add_row({"avg queue during bursts", core::fmt(r.avg_queue_packets, 1) + " pkts"});
  t.add_row({"peak queue", core::fmt(r.peak_queue_packets, 0) + " pkts"});
  t.add_row({"ECN-marked packets", core::fmt(r.marked_fraction() * 100, 1) + " %"});
  t.add_row({"drops", std::to_string(r.queue_drops)});
  t.add_row({"timeouts", std::to_string(r.timeouts)});
  t.add_row({"fast retransmits", std::to_string(r.fast_retransmits)});
  t.add_row({"retransmitted packets", std::to_string(r.retransmitted_packets)});
  t.add_row({"end-of-burst cwnd mean", core::fmt(r.end_of_burst_cwnd_mean_mss, 2) + " MSS"});
  t.add_row({"end-of-burst cwnd max", core::fmt(r.end_of_burst_cwnd_max_mss, 2) + " MSS"});
  t.print();
}

int run_burst(core::CliArgs& args) {
  core::IncastExperimentConfig cfg;
  std::string cc_name;
  if (!parse_incast_config(args, cfg, cc_name)) return 2;
  HardeningCli hard;
  if (!hard.parse(args, /*sweep_flags=*/false)) return 2;
  FlowTraceCli ft;
  ft.parse(args);
  ObsCli obs_cli;
  if (!obs_cli.parse(args)) return 2;
  if (const int rc = finish(args); rc != 0) return rc;
  cfg.hub = obs_cli.hub.get();
  cfg.audit_mode = hard.audit_mode;
  cfg.audit = hard.audit;
  cfg.flow_trace = ft.enabled;
  cfg.flow_trace_sample_every = ft.sample_every;

  std::printf("burst: %d x %s bursts of a %d-flow %s incast (seed %llu)\n",
              cfg.num_bursts, cfg.burst_duration.to_string().c_str(), cfg.num_flows,
              cc_name.c_str(), static_cast<unsigned long long>(cfg.seed));
  const auto r = core::run_incast_experiment(cfg);
  print_burst_table(r);
  if (ft.enabled) {
    print_fct_attribution(r.fct_rows, r.flow_breakdowns.size(), r.flow_trace_incomplete);
    std::string csv = obs::fct_breakdown_csv_header();
    obs::append_fct_breakdown_csv(csv, "burst", cfg.num_flows, r.fct_rows);
    if (const int rc = ft.write_csv(csv); rc != 0) return rc;
  }
  return obs_cli.write_outputs();
}

int run_faults(core::CliArgs& args) {
  core::ResilienceConfig cfg;
  std::string cc_name;
  if (!parse_incast_config(args, cfg.base, cc_name)) return 2;

  // Sweep axes: --drop-rates / --flap-durations (comma lists) override the
  // singular forms.
  const std::string drop_list = args.get_or("drop-rates", "");
  if (!drop_list.empty()) {
    for (const auto& field : split_list(drop_list)) {
      char* end = nullptr;
      const double v = std::strtod(field.c_str(), &end);
      if (end != field.c_str() + field.size() || v < 0.0 || v > 1.0) {
        std::fprintf(stderr, "error: --drop-rates: bad rate '%s'\n", field.c_str());
        return 2;
      }
      cfg.drop_rates.push_back(v);
    }
  } else {
    cfg.drop_rates.push_back(args.double_or("drop-rate", 0.0, 0.0, 1.0));
  }

  const std::string flap_list = args.get_or("flap-durations", "");
  if (!flap_list.empty()) {
    for (const auto& field : split_list(flap_list)) {
      const auto parsed = sim::parse_time(field);
      if (!parsed || *parsed < sim::Time::zero()) {
        std::fprintf(stderr, "error: --flap-durations: bad duration '%s'\n",
                     field.c_str());
        return 2;
      }
      cfg.flap_durations.push_back(*parsed);
    }
  } else {
    const sim::Time d = args.time_or("flap-duration", sim::Time::zero(), sim::Time::zero());
    if (d > sim::Time::zero()) cfg.flap_durations.push_back(d);
  }
  cfg.flap_at = args.time_or("flap-at", 30_ms, sim::Time::zero());

  cfg.fault_template.corrupt_rate = args.double_or("corrupt-rate", 0.0, 0.0, 1.0);
  cfg.fault_template.duplicate_rate = args.double_or("dup-rate", 0.0, 0.0, 1.0);
  cfg.fault_template.reorder_rate = args.double_or("reorder-rate", 0.0, 0.0, 1.0);
  cfg.fault_template.reorder_max_delay = args.time_or("reorder-delay", 50_us, 1_ns);
  cfg.fault_template.ge_good_to_bad = args.double_or("ge-p", 0.0, 0.0, 1.0);
  cfg.fault_template.ge_bad_to_good = args.double_or("ge-r", 0.1, 0.0, 1.0);
  cfg.fault_template.ge_drop_bad = args.double_or("ge-loss-bad", 1.0, 0.0, 1.0);
  cfg.fault_template.ge_drop_good = args.double_or("ge-loss-good", 0.0, 0.0, 1.0);
  cfg.jobs = static_cast<int>(args.int_or("jobs", 0, 0, 1024));
  HardeningCli hard;
  if (!hard.parse(args, /*sweep_flags=*/true)) return 2;
  ObsCli obs_cli;
  if (!obs_cli.parse(args)) return 2;
  if (const int rc = finish(args); rc != 0) return rc;
  // Only the baseline is observed: sweep points run on worker threads and
  // must not share the hub (run_resilience_experiment nulls it for them).
  cfg.base.hub = obs_cli.hub.get();
  cfg.base.audit_mode = hard.audit_mode;
  cfg.base.audit = hard.audit;
  cfg.sweep = hard.policy();

  const std::size_t n_points = cfg.drop_rates.size() + cfg.flap_durations.size();
  core::TaskJournal journal;
  if (!hard.journal_path.empty()) {
    journal.open(hard.journal_path,
                 {"faults", core::fnv1a(core::canonical_config(cfg)), n_points});
    if (journal.completed_count() > 0) {
      std::printf("journal %s: resuming, %zu/%zu point(s) already complete "
                  "(the baseline always re-runs)\n",
                  journal.path().c_str(), journal.completed_count(), n_points);
    }
    cfg.sweep.on_failure = [&journal](const sim::TaskFailure& f) {
      journal.record_failure(f);
    };
    cfg.resume = [&journal](std::size_t index, core::ResiliencePoint& out) {
      const core::Json* payload = journal.payload(index);
      if (payload == nullptr) return false;
      out = core::resilience_point_from_payload(*payload);
      return true;
    };
    cfg.on_result = [&journal](std::size_t index, std::uint64_t seed,
                               const core::ResiliencePoint& point) {
      journal.record_ok(index, seed, core::to_journal_payload(point));
    };
  }

  std::printf("faults: %d-flow %s incast, baseline + %zu fault point(s) (seed %llu)\n",
              cfg.base.num_flows, cc_name.c_str(), n_points,
              static_cast<unsigned long long>(cfg.base.seed));

  const auto report = core::run_resilience_experiment(cfg);

  std::printf("\nbaseline (no faults), mode: %s\n", core::to_string(report.baseline_mode));
  print_burst_table(report.baseline);
  std::printf("events processed (baseline): %llu\n\n",
              static_cast<unsigned long long>(report.baseline.events_processed));

  core::Table t{{"drop-rate", "flap", "avg BCT", "max BCT", "goodput", "timeouts",
                 "fast-rtx", "cong-drops", "inj-drops", "corrupt", "recovery", "mode"}};
  for (std::size_t i = 0; i < report.points.size(); ++i) {
    // Quarantined or never-run points hold default-constructed results;
    // their story is told by the quarantine block below, not a row of zeros.
    if (report.sweep.failed(i) || report.sweep.tasks[i].attempts == 0) continue;
    const auto& p = report.points[i];
    const auto& r = p.result;
    t.add_row({core::fmt(p.drop_rate, 6),
               p.flap_duration > sim::Time::zero() ? p.flap_duration.to_string() : "-",
               core::fmt(r.avg_bct_ms, 2) + " ms", core::fmt(r.max_bct_ms, 2) + " ms",
               core::fmt(p.goodput_rel * 100, 1) + " %", std::to_string(r.timeouts),
               std::to_string(r.fast_retransmits), std::to_string(r.queue_drops),
               std::to_string(r.injected_drops), std::to_string(r.injected_corruptions),
               p.recovery_after_flap_ms > 0.0 ? core::fmt(p.recovery_after_flap_ms, 2) + " ms"
                                              : "-",
               core::to_string(p.mode)});
  }
  t.print();

  for (std::size_t i = 0; i < report.points.size(); ++i) {
    if (report.sweep.failed(i) || report.sweep.tasks[i].attempts == 0) continue;
    const auto& p = report.points[i];
    if (p.mode != report.baseline_mode) {
      std::printf("\nmode boundary shifted: baseline %s -> %s at drop-rate %s%s\n",
                  core::to_string(report.baseline_mode), core::to_string(p.mode),
                  core::fmt(p.drop_rate, 6).c_str(),
                  p.flap_duration > sim::Time::zero()
                      ? (" / flap " + p.flap_duration.to_string()).c_str()
                      : "");
      break;
    }
  }
  std::printf("\n");
  core::print_sweep_stats(report.sweep);
  print_resume_hint(journal);
  return obs_cli.write_outputs();
}

// Link names contain '.' and "->"; CSV filenames should not.
std::string sanitize_for_filename(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (const char c : name) {
    if ((c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')) {
      out.push_back(c);
    } else if (out.empty() || out.back() != '_') {
      out.push_back('_');
    }
  }
  return out;
}

int run_fabric(core::CliArgs& args) {
  core::FabricIncastExperimentConfig cfg;
  cfg.num_flows = static_cast<int>(args.int_or("flows", 96, 1, 100'000));
  cfg.fabric.num_pods = static_cast<int>(args.int_or("pods", 2, 1, 64));
  cfg.fabric.leaves_per_pod = static_cast<int>(args.int_or("leaves", 2, 1, 256));
  cfg.fabric.hosts_per_leaf = static_cast<int>(args.int_or("hosts-per-leaf", 8, 1, 100'000));
  cfg.fabric.aggs_per_pod = static_cast<int>(args.int_or("aggs", 0, 0, 256));
  cfg.fabric.num_spines = static_cast<int>(args.int_or("spines", 2, 1, 256));
  cfg.fabric.host_link =
      args.bandwidth_or("host-link", sim::Bandwidth::gigabits_per_second(10));
  cfg.fabric.leaf_uplink =
      args.bandwidth_or("leaf-uplink", sim::Bandwidth::gigabits_per_second(40));
  cfg.fabric.spine_link =
      args.bandwidth_or("spine-link", sim::Bandwidth::gigabits_per_second(100));
  cfg.fabric.ecmp_seed = static_cast<std::uint64_t>(args.int_or("ecmp-seed", 1));
  cfg.fabric.switch_queue.capacity_packets = args.int_or("queue", 1333, 1, 10'000'000);
  cfg.fabric.switch_queue.ecn_threshold_packets =
      args.int_or("ecn-threshold", 65, 0, 10'000'000);

  const std::string placement = args.get_or("placement", "cross");
  if (placement == "single") {
    cfg.placement = core::FabricIncastExperimentConfig::Placement::kSingleRack;
  } else if (placement != "cross") {
    std::fprintf(stderr, "error: unknown --placement '%s' (cross|single)\n",
                 placement.c_str());
    return 2;
  }

  cfg.burst_duration = args.time_or("duration", 15_ms, 1_ns);
  cfg.num_bursts = static_cast<int>(args.int_or("bursts", 4, 1, 10'000));
  cfg.discard_bursts =
      static_cast<int>(args.int_or("discard", 1, 0, cfg.num_bursts - 1));
  cfg.inter_burst_gap = args.time_or("gap", 10_ms, sim::Time::zero());
  cfg.seed = static_cast<std::uint64_t>(args.int_or("seed", 1));
  cfg.max_sim_time = args.time_or("max-sim-time", sim::Time::seconds(30), 1_ns);

  const std::string cc_name = args.get_or("cc", "dctcp");
  const auto cc = parse_cc(cc_name);
  if (!cc) {
    std::fprintf(stderr, "error: unknown --cc '%s'\n", cc_name.c_str());
    return 2;
  }
  cfg.tcp.cc = *cc;
  cfg.tcp.int_telemetry = *cc == tcp::CcAlgorithm::kHpcc;
  cfg.tcp.rtt.min_rto = args.time_or("min-rto", 200_ms, 1_ns);
  const std::string schedule = args.get_or("schedule", "completion");
  if (schedule != "completion" && schedule != "period") {
    std::fprintf(stderr, "error: unknown --schedule '%s'\n", schedule.c_str());
    return 2;
  }
  cfg.schedule = schedule == "period" ? workload::BurstSchedule::kFixedPeriod
                                      : workload::BurstSchedule::kAfterCompletion;

  const std::string telemetry_prefix = args.get_or("export-telemetry", "");
  HardeningCli hard;
  if (!hard.parse(args, /*sweep_flags=*/false)) return 2;
  FlowTraceCli ft;
  ft.parse(args);
  ObsCli obs_cli;
  if (!obs_cli.parse(args)) return 2;
  if (const int rc = finish(args); rc != 0) return rc;
  cfg.hub = obs_cli.hub.get();
  cfg.audit_mode = hard.audit_mode;
  cfg.audit = hard.audit;
  cfg.flow_trace = ft.enabled;
  cfg.flow_trace_sample_every = ft.sample_every;

  const int num_leaves = cfg.fabric.num_pods * cfg.fabric.leaves_per_pod;
  const int uplinks = cfg.fabric.aggs_per_pod > 0 ? cfg.fabric.aggs_per_pod
                                                  : cfg.fabric.num_spines;
  std::printf(
      "fabric: %s Clos, %d pod(s) x %d leaves x %d hosts, %d spine(s)%s\n"
      "        %d-flow %s incast, %s placement (seed %llu, ecmp-seed %llu)\n",
      cfg.fabric.aggs_per_pod > 0 ? "three-tier" : "two-tier", cfg.fabric.num_pods,
      cfg.fabric.leaves_per_pod, cfg.fabric.hosts_per_leaf, cfg.fabric.num_spines,
      cfg.fabric.aggs_per_pod > 0
          ? (", " + std::to_string(cfg.fabric.aggs_per_pod) + " agg(s)/pod").c_str()
          : "",
      cfg.num_flows, cc_name.c_str(), placement.c_str(),
      static_cast<unsigned long long>(cfg.seed),
      static_cast<unsigned long long>(cfg.fabric.ecmp_seed));
  std::printf("        %d leaves, %d uplink(s)/leaf, oversubscription %.2f:1\n",
              num_leaves, uplinks,
              static_cast<double>(cfg.fabric.hosts_per_leaf) *
                  static_cast<double>(cfg.fabric.host_link.bps()) /
                  (static_cast<double>(uplinks) *
                   static_cast<double>(cfg.fabric.leaf_uplink.bps())));

  const auto r = core::run_fabric_incast_experiment(cfg);

  core::Table t{{"metric", "value"}};
  t.add_row({"bursts completed", std::to_string(r.bursts.size())});
  t.add_row({"avg BCT (measured bursts)", core::fmt(r.avg_bct_ms, 2) + " ms"});
  t.add_row({"max BCT", core::fmt(r.max_bct_ms, 2) + " ms"});
  t.add_row({"avg queue during bursts", core::fmt(r.avg_queue_packets, 1) + " pkts"});
  t.add_row({"peak queue", core::fmt(r.peak_queue_packets, 0) + " pkts"});
  t.add_row({"ECN-marked packets", core::fmt(r.marked_fraction() * 100, 1) + " %"});
  t.add_row({"drops", std::to_string(r.queue_drops)});
  t.add_row({"timeouts", std::to_string(r.timeouts)});
  t.add_row({"fast retransmits", std::to_string(r.fast_retransmits)});
  t.add_row({"ECMP path changes", std::to_string(r.ecmp_path_changes)});
  t.add_row({"mode", core::to_string(r.mode)});
  t.add_row({"events processed", std::to_string(r.events_processed)});
  t.print();

  // Burst visibility per vantage: the same burst, seen at host NIC, leaf
  // uplinks, and spine ports. Peak 1 ms utilization is the figure of merit —
  // a burst that saturates the host NIC can be invisible at the spine.
  std::printf("\nburst visibility by vantage point:\n");
  core::Table vt{{"tier", "vantage", "peak 1ms util", "busiest bin bytes", "peak queue"}};
  for (const auto& v : r.vantages) {
    std::int64_t busiest = 0;
    for (const auto& b : v.bins) busiest = std::max(busiest, b.bytes);
    vt.add_row({v.tier, v.name, core::fmt(v.peak_utilization() * 100, 1) + " %",
                std::to_string(busiest),
                std::to_string(v.peak_queue_packets()) + " pkts"});
  }
  vt.print();

  std::printf("\nECMP flow spread (distinct flow keys per leaf uplink):\n");
  core::Table et{{"leaf", "flows by uplink"}};
  for (const auto& spread : r.leaf_ecmp) {
    std::string hist;
    for (std::size_t i = 0; i < spread.flows_by_uplink.size(); ++i) {
      if (i > 0) hist += " / ";
      hist += std::to_string(spread.flows_by_uplink[i]);
    }
    et.add_row({"l" + std::to_string(spread.global_leaf), hist});
  }
  et.print();

  if (!telemetry_prefix.empty()) {
    int written = 0;
    for (const auto& v : r.vantages) {
      const std::string path = telemetry_prefix + sanitize_for_filename(v.name) + ".csv";
      if (telemetry::write_bins_csv_file(v.bins, path)) {
        ++written;
      } else {
        std::fprintf(stderr, "error: cannot write %s\n", path.c_str());
        return 1;
      }
    }
    std::printf("\nexported %d vantage trace(s) to %s*.csv\n", written,
                telemetry_prefix.c_str());
  }
  if (ft.enabled) {
    print_fct_attribution(r.fct_rows, r.flow_breakdowns.size(), r.flow_trace_incomplete);
    std::string csv = obs::fct_breakdown_csv_header();
    obs::append_fct_breakdown_csv(csv, "fabric", cfg.num_flows, r.fct_rows);
    if (const int rc = ft.write_csv(csv); rc != 0) return rc;
  }
  return obs_cli.write_outputs();
}

int run_fleet(core::CliArgs& args) {
  core::FleetConfig cfg;
  const std::string service = args.get_or("service", "aggregator");
  try {
    cfg.profile = workload::service_by_name(service);
  } catch (const std::out_of_range&) {
    std::fprintf(stderr, "error: unknown --service '%s' (see table1_services)\n",
                 service.c_str());
    return 2;
  }
  cfg.num_hosts = static_cast<int>(args.int_or("hosts", 2, 1, 10'000));
  cfg.num_snapshots = static_cast<int>(args.int_or("snapshots", 1, 1, 10'000));
  cfg.trace_duration = args.time_or("trace", 1_s, 1_ns);
  cfg.base_seed = static_cast<std::uint64_t>(args.int_or("seed", 42));
  cfg.tcp.cc = tcp::CcAlgorithm::kDctcp;
  cfg.tcp.rtt.min_rto = 200_ms;
  const std::string contention = args.get_or("contention", "modeled");
  if (contention == "none") {
    cfg.contention_mode = core::FleetConfig::ContentionMode::kNone;
  } else if (contention == "neighbor") {
    cfg.contention_mode = core::FleetConfig::ContentionMode::kNeighbor;
  } else if (contention != "modeled") {
    std::fprintf(stderr, "error: unknown --contention '%s'\n", contention.c_str());
    return 2;
  }
  const std::string csv_path = args.get_or("export-csv", "");
  cfg.jobs = static_cast<int>(args.int_or("jobs", 0, 0, 1024));
  HardeningCli hard;
  if (!hard.parse(args, /*sweep_flags=*/true)) return 2;
  ObsCli obs_cli;
  if (!obs_cli.parse(args)) return 2;
  if (const int rc = finish(args); rc != 0) return rc;
  // The hub observes the (host 0, snapshot 0) cell only, so trace and
  // metrics output is byte-identical at any --jobs value.
  cfg.hub = obs_cli.hub.get();
  cfg.audit_mode = hard.audit_mode;
  cfg.audit = hard.audit;
  cfg.sweep = hard.policy();

  const auto n_cells =
      static_cast<std::size_t>(cfg.num_hosts) * static_cast<std::size_t>(cfg.num_snapshots);
  core::TaskJournal journal;
  if (!hard.journal_path.empty()) {
    journal.open(hard.journal_path,
                 {"fleet", core::fnv1a(core::canonical_config(cfg)), n_cells});
    if (journal.completed_count() > 0) {
      std::printf("journal %s: resuming, %zu/%zu cell(s) already complete "
                  "(cell 0 always re-runs: it owns the exported trace)\n",
                  journal.path().c_str(), journal.completed_count(), n_cells);
    }
    cfg.sweep.on_failure = [&journal](const sim::TaskFailure& f) {
      journal.record_failure(f);
    };
    cfg.resume = [&journal](std::size_t index, core::HostTraceResult& out) {
      // Cell 0 is the observed/exported cell: its Millisampler bins and any
      // trace/metrics output are not journaled, so it re-runs (determinism
      // makes the re-run free of surprises, and the grid's other N-1 cells
      // are where the time goes).
      if (index == 0) return false;
      const core::Json* payload = journal.payload(index);
      if (payload == nullptr) return false;
      out = core::host_trace_from_payload(*payload);
      return true;
    };
    cfg.on_result = [&journal](std::size_t index, std::uint64_t seed,
                               const core::HostTraceResult& r) {
      journal.record_ok(index, seed, core::to_journal_payload(r));
    };
  }

  std::printf("fleet: %d host(s) x %d snapshot(s) of '%s', %s traces\n", cfg.num_hosts,
              cfg.num_snapshots, service.c_str(), cfg.trace_duration.to_string().c_str());

  core::FleetExperiment exp{cfg};
  exp.set_keep_bins(!csv_path.empty());

  // The grid runs across cfg.jobs workers; results come back ordered by
  // (snapshot, host) index, so the aggregation below — and the exported CSV
  // of trace (host 0, snapshot 0) — is byte-identical at any --jobs value.
  const auto results = exp.run_all();

  const auto& sweep = exp.last_sweep();
  analysis::Cdf freq, dur, flows, marked, retx;
  double util = 0.0;
  std::int64_t drops = 0;
  std::size_t healthy = 0;
  for (std::size_t i = 0; i < results.size(); ++i) {
    // Quarantined or cancelled-before-start cells hold default-constructed
    // results; keep them out of the aggregates.
    if (sweep.failed(i) || sweep.tasks[i].attempts == 0) continue;
    const auto& r = results[i];
    ++healthy;
    util += r.avg_utilization;
    drops += r.queue_drops;
    freq.add(r.summary.bursts_per_second());
    for (const auto& b : r.summary.bursts) {
      dur.add(static_cast<double>(b.num_bins));
      flows.add(static_cast<double>(b.max_active_flows));
      marked.add(b.marked_fraction() * 100);
      retx.add(b.retx_fraction() * 100);
    }
  }
  if (!csv_path.empty() && !results.empty()) {
    if (telemetry::write_bins_csv_file(results.front().bins, csv_path)) {
      // Footer: annotate a partial export so downstream tooling (and
      // humans) can tell "clean sweep" from "some cells missing". '#'
      // lines are skipped by read_bins_csv.
      if (!sweep.failures.empty() || sweep.tasks_not_run > 0) {
        std::ofstream footer{csv_path, std::ios::app};
        footer << "# quarantined: " << sweep.failures.size() << " cell(s) failed, "
               << sweep.tasks_not_run << " not run\n";
        for (const sim::TaskFailure& f : sweep.failures) {
          footer << "# cell " << f.index << " (seed " << f.seed << ") ["
                 << sim::to_string(f.category) << "]: " << f.message << '\n';
        }
      }
      std::printf("exported host 0 trace to %s\n", csv_path.c_str());
    } else {
      std::fprintf(stderr, "error: cannot write %s\n", csv_path.c_str());
    }
  }

  core::Table t{{"metric", "value"}};
  t.add_row({"avg utilization",
             core::fmt(healthy > 0 ? util / static_cast<double>(healthy) * 100 : 0.0, 1) +
             " %"});
  t.add_row({"bursts/second (mean)", core::fmt(freq.mean(), 1)});
  t.add_row({"burst duration p50/p99",
             core::fmt(dur.percentile(50), 0) + " / " + core::fmt(dur.percentile(99), 0) +
                 " ms"});
  t.add_row({"flows p50/p99",
             core::fmt(flows.percentile(50), 0) + " / " + core::fmt(flows.percentile(99), 0)});
  t.add_row({"bursts with no marking", core::fmt(100 * marked.fraction_below(0.5), 0) + " %"});
  t.add_row({"bursts with no retx", core::fmt(100 * retx.fraction_below(0.01), 0) + " %"});
  t.add_row({"worst retx fraction", core::fmt(retx.max(), 2) + " %"});
  t.add_row({"ToR drops", std::to_string(drops)});
  t.print();
  std::printf("\n");
  core::print_sweep_stats(sweep);
  print_resume_hint(journal);
  return obs_cli.write_outputs();
}

int run_collateral(core::CliArgs& args) {
  core::CollateralConfig cfg;

  cfg.modes.clear();
  for (const auto& field : split_list(args.get_or("modes", "droptail,pfc,trim,credit"))) {
    core::QueueMode mode;
    if (!core::parse_queue_mode(field, mode)) {
      std::fprintf(stderr, "error: --modes: unknown mode '%s' (droptail|pfc|trim|credit)\n",
                   field.c_str());
      return 2;
    }
    cfg.modes.push_back(mode);
  }
  cfg.degrees.clear();
  for (const auto& field : split_list(args.get_or("degrees", "64"))) {
    char* end = nullptr;
    const long v = std::strtol(field.c_str(), &end, 10);
    if (end != field.c_str() + field.size() || v < 1 || v > 100'000) {
      std::fprintf(stderr, "error: --degrees: bad fan-in '%s'\n", field.c_str());
      return 2;
    }
    cfg.degrees.push_back(static_cast<int>(v));
  }

  cfg.num_bursts = static_cast<int>(args.int_or("bursts", 4, 1, 10'000));
  cfg.burst_duration = args.time_or("duration", 15_ms, 1_ns);
  cfg.inter_burst_gap = args.time_or("gap", 10_ms, sim::Time::zero());
  cfg.queue_capacity_packets =
      static_cast<int>(args.int_or("queue", 1333, 1, 10'000'000));
  cfg.ecn_threshold_packets =
      static_cast<int>(args.int_or("ecn-threshold", 65, 0, 10'000'000));
  cfg.trim_queue_capacity_packets =
      static_cast<int>(args.int_or("trim-queue", cfg.trim_queue_capacity_packets, 1,
                                   10'000'000));
  cfg.shared_buffer_bytes =
      args.int_or("shared-buffer", cfg.shared_buffer_bytes, 0, 1'000'000'000);
  cfg.shared_buffer_alpha = args.double_or("dt-alpha", cfg.shared_buffer_alpha, 0.01, 64.0);
  cfg.topology.core_link = args.bandwidth_or("core-link", cfg.topology.core_link);
  cfg.victim_cwnd_cap_bytes =
      args.int_or("victim-cwnd-cap", cfg.victim_cwnd_cap_bytes, 0, 1'000'000'000);
  cfg.max_sim_time = args.time_or("max-sim-time", sim::Time::seconds(30), 1_ns);
  cfg.seed = static_cast<std::uint64_t>(args.int_or("seed", 1));
  cfg.jobs = static_cast<int>(args.int_or("jobs", 0, 0, 1024));
  cfg.tcp.rtt.min_rto = args.time_or("min-rto", 200_ms, 1_ns);

  const std::string cc_name = args.get_or("cc", "dctcp");
  const auto cc = parse_cc(cc_name);
  if (!cc) {
    std::fprintf(stderr, "error: unknown --cc '%s'\n", cc_name.c_str());
    return 2;
  }
  cfg.tcp.cc = *cc;
  const std::string pfc_cc_name = args.get_or("pfc-cc", "dcqcn");
  const auto pfc_cc = parse_cc(pfc_cc_name);
  if (!pfc_cc) {
    std::fprintf(stderr, "error: unknown --pfc-cc '%s'\n", pfc_cc_name.c_str());
    return 2;
  }
  cfg.pfc_cc = *pfc_cc;

  const std::string csv_path = args.get_or("export-csv", "");
  HardeningCli hard;
  if (!hard.parse(args, /*sweep_flags=*/true)) return 2;
  FlowTraceCli ft;
  ft.parse(args);
  ObsCli obs_cli;
  if (!obs_cli.parse(args)) return 2;
  if (const int rc = finish(args); rc != 0) return rc;
  cfg.hub = obs_cli.hub.get();
  cfg.audit_mode = hard.audit_mode;
  cfg.audit = hard.audit;
  cfg.sweep = hard.policy();
  cfg.flow_trace = ft.enabled;
  cfg.flow_trace_sample_every = ft.sample_every;

  const std::size_t n_points = cfg.modes.size() * cfg.degrees.size();
  core::TaskJournal journal;
  if (!hard.journal_path.empty()) {
    journal.open(hard.journal_path,
                 {"collateral", core::fnv1a(core::canonical_config(cfg)), n_points});
    if (journal.completed_count() > 0) {
      std::printf("journal %s: resuming, %zu/%zu point(s) already complete\n",
                  journal.path().c_str(), journal.completed_count(), n_points);
    }
    cfg.sweep.on_failure = [&journal](const sim::TaskFailure& f) {
      journal.record_failure(f);
    };
    cfg.resume = [&journal, hub = cfg.hub](std::size_t index, core::CollateralPoint& out) {
      // Point 0 feeds the hub when observability is on; its trace/metrics
      // bytes are not journaled, so it re-runs.
      if (index == 0 && hub != nullptr) return false;
      const core::Json* payload = journal.payload(index);
      if (payload == nullptr) return false;
      out = core::collateral_point_from_payload(*payload);
      return true;
    };
    cfg.on_result = [&journal](std::size_t index, std::uint64_t seed,
                               const core::CollateralPoint& p) {
      journal.record_ok(index, seed, core::to_journal_payload(p));
    };
  }

  std::printf("collateral: victim flow vs %d x %s incast bursts, %zu mode(s) x %zu "
              "degree(s) (seed %llu)\n",
              cfg.num_bursts, cfg.burst_duration.to_string().c_str(), cfg.modes.size(),
              cfg.degrees.size(), static_cast<unsigned long long>(cfg.seed));

  const auto report = core::run_collateral_experiment(cfg);

  core::Table t{{"mode", "degree", "victim", "paused", "v-retx", "v-nacks", "avg BCT",
                 "max BCT", "drops", "trims", "pauses", "audit"}};
  for (std::size_t i = 0; i < report.points.size(); ++i) {
    if (report.sweep.failed(i) || report.sweep.tasks[i].attempts == 0) continue;
    const auto& p = report.points[i];
    t.add_row({core::to_string(p.mode), std::to_string(p.degree),
               core::fmt(p.victim_goodput_gbps, 3) + " Gbps",
               core::fmt(p.victim_paused_ms, 2) + " ms",
               std::to_string(p.victim_retransmits), std::to_string(p.victim_nacks),
               core::fmt(p.incast_avg_bct_ms, 2) + " ms",
               core::fmt(p.incast_max_bct_ms, 2) + " ms", std::to_string(p.queue_drops),
               std::to_string(p.trimmed_packets), std::to_string(p.pfc_pause_frames),
               std::to_string(static_cast<long long>(p.audit_violations))});
  }
  t.print();

  if (ft.enabled) {
    std::printf("\ntail autopsy: p99 cause shares per point "
                "(what fraction of the p99 flow's FCT each cause explains):\n");
    core::Table ft_t{{"mode", "degree", "p99 FCT", "wire", "queue", "pfc", "cwnd", "rto",
                      "fast-rec", "nack-rec", "other"}};
    for (std::size_t i = 0; i < report.points.size(); ++i) {
      if (report.sweep.failed(i) || report.sweep.tasks[i].attempts == 0) continue;
      const auto& p = report.points[i];
      add_p99_row(ft_t, core::to_string(p.mode), p.degree, p.fct_rows);
    }
    ft_t.print();
  }

  std::printf("\n");
  core::print_sweep_stats(report.sweep);
  print_resume_hint(journal);

  if (ft.enabled) {
    if (const int rc = ft.write_csv(core::collateral_fct_csv(report)); rc != 0) return rc;
  }

  if (!csv_path.empty()) {
    std::ofstream out{csv_path};
    if (!out) {
      std::fprintf(stderr, "error: cannot write %s\n", csv_path.c_str());
      return 3;
    }
    out << core::collateral_csv(report);
    std::printf("wrote %zu point(s) to %s\n", report.points.size(), csv_path.c_str());
  }
  return obs_cli.write_outputs();
}

int run_scaling(core::CliArgs& args) {
  core::ScalingConfig cfg;

  cfg.degrees.clear();
  const std::string default_degrees = "1,2,4,8,16,32,64,128,256,512,1024,2000,4000,8000";
  for (const auto& field : split_list(args.get_or("degrees", default_degrees))) {
    char* end = nullptr;
    const long v = std::strtol(field.c_str(), &end, 10);
    if (end != field.c_str() + field.size() || v < 1 || v > 100'000) {
      std::fprintf(stderr, "error: --degrees: bad fan-in '%s'\n", field.c_str());
      return 2;
    }
    cfg.degrees.push_back(static_cast<int>(v));
  }

  cfg.fabric.num_pods = static_cast<int>(args.int_or("pods", cfg.fabric.num_pods, 1, 64));
  cfg.fabric.leaves_per_pod =
      static_cast<int>(args.int_or("leaves", cfg.fabric.leaves_per_pod, 1, 64));
  cfg.fabric.hosts_per_leaf =
      static_cast<int>(args.int_or("hosts-per-leaf", cfg.fabric.hosts_per_leaf, 1, 256));
  cfg.fabric.aggs_per_pod =
      static_cast<int>(args.int_or("aggs", cfg.fabric.aggs_per_pod, 0, 64));
  cfg.fabric.num_spines =
      static_cast<int>(args.int_or("spines", cfg.fabric.num_spines, 1, 256));
  cfg.bytes_per_flow = args.int_or("bytes", cfg.bytes_per_flow, 1, 1'000'000'000);
  cfg.max_sim_time = args.time_or("max-sim-time", sim::Time::seconds(120), 1_ns);
  cfg.seed = static_cast<std::uint64_t>(args.int_or("seed", 1));
  cfg.jobs = static_cast<int>(args.int_or("jobs", 0, 0, 1024));
  // --domains absent: the legacy single-queue engine (byte-identical to
  // every release before the parallel engine). --domains 0: the windowed
  // domain engine, one domain per hardware thread. --domains N: N domains.
  const bool domains_given = args.has("domains");
  const int domains_flag = static_cast<int>(args.int_or("domains", 0, 0, 1024));
  cfg.tcp.rtt.min_rto = args.time_or("min-rto", 200_ms, 1_ns);

  const std::string cc_name = args.get_or("cc", "dctcp");
  const auto cc = parse_cc(cc_name);
  if (!cc) {
    std::fprintf(stderr, "error: unknown --cc '%s'\n", cc_name.c_str());
    return 2;
  }
  cfg.tcp.cc = *cc;

  const std::string csv_path = args.get_or("export-csv", "");
  HardeningCli hard;
  if (!hard.parse(args, /*sweep_flags=*/true)) return 2;
  FlowTraceCli ft;
  ft.parse(args);
  ObsCli obs_cli;
  if (!obs_cli.parse(args)) return 2;
  if (const int rc = finish(args); rc != 0) return rc;
  if (domains_given) {
    // Per-event observability is not sharded across domain queues: the
    // tracer, flow tracer and flight recorder would interleave differently
    // at every N. The N-invariant metrics snapshot (--metrics-out) is fine.
    if (ft.enabled || !obs_cli.trace_out.empty() || !obs_cli.trigger_spec.empty()) {
      std::fprintf(stderr,
                   "error: --domains is incompatible with --flow-trace / --trace-out / "
                   "--flight-recorder (per-event observability is per-engine-queue; "
                   "--metrics-out works on any engine)\n");
      return 2;
    }
    core::Parallelism par;
    std::string perr;
    if (!core::resolve_parallelism(
            cfg.jobs, domains_flag,
            static_cast<int>(std::thread::hardware_concurrency()), par, perr)) {
      std::fprintf(stderr, "error: %s\n", perr.c_str());
      return 2;
    }
    cfg.jobs = par.jobs;
    cfg.domains = par.domains;
  }
  cfg.hub = obs_cli.hub.get();
  cfg.audit_mode = hard.audit_mode;
  cfg.audit = hard.audit;
  cfg.sweep = hard.policy();
  cfg.flow_trace = ft.enabled;
  cfg.flow_trace_sample_every = ft.sample_every;

  core::TaskJournal journal;
  if (!hard.journal_path.empty()) {
    journal.open(hard.journal_path, {"scaling", core::fnv1a(core::canonical_config(cfg)),
                                     cfg.degrees.size()});
    if (journal.completed_count() > 0) {
      std::printf("journal %s: resuming, %zu/%zu degree(s) already complete\n",
                  journal.path().c_str(), journal.completed_count(), cfg.degrees.size());
    }
    cfg.sweep.on_failure = [&journal](const sim::TaskFailure& f) {
      journal.record_failure(f);
    };
    cfg.resume = [&journal, hub = cfg.hub](std::size_t index, core::ScalingPoint& out) {
      // Point 0 feeds the hub when observability is on; its trace/metrics
      // bytes are not journaled, so it re-runs (the ladder's other points
      // are where the time goes, and determinism makes the re-run exact).
      if (index == 0 && hub != nullptr) return false;
      const core::Json* payload = journal.payload(index);
      if (payload == nullptr) return false;
      out = core::scaling_point_from_payload(*payload);
      return true;
    };
    cfg.on_result = [&journal](std::size_t index, std::uint64_t seed,
                               const core::ScalingPoint& p) {
      journal.record_ok(index, seed, core::to_journal_payload(p));
    };
  }

  const int hosts =
      cfg.fabric.num_pods * cfg.fabric.leaves_per_pod * cfg.fabric.hosts_per_leaf;
  std::printf("scaling: %zu degree(s) of %lld-byte incast into 1 of %d hosts "
              "(seed %llu)\n",
              cfg.degrees.size(), static_cast<long long>(cfg.bytes_per_flow), hosts,
              static_cast<unsigned long long>(cfg.seed));

  const auto report = core::run_scaling_experiment(cfg);

  core::Table t{{"degree", "FCT", "optimal", "overhead", "done", "timeouts", "retx",
                 "drops", "B/flow", "audit"}};
  for (std::size_t i = 0; i < report.points.size(); ++i) {
    if (report.sweep.failed(i) || report.sweep.tasks[i].attempts == 0) continue;
    const auto& p = report.points[i];
    t.add_row({std::to_string(p.degree), core::fmt(p.fct_ms, 2) + " ms",
               core::fmt(p.optimal_ms, 2) + " ms", core::fmt(p.overhead_pct, 1) + " %",
               std::to_string(p.completed_flows), std::to_string(p.timeouts),
               std::to_string(p.retransmits), std::to_string(p.queue_drops),
               std::to_string(static_cast<long long>(p.bytes_per_flow)),
               std::to_string(static_cast<long long>(p.audit_violations))});
  }
  t.print();

  if (ft.enabled) {
    std::printf("\ntail autopsy: p99 cause shares per degree "
                "(what fraction of the p99 flow's FCT each cause explains):\n");
    core::Table ft_t{{"mode", "degree", "p99 FCT", "wire", "queue", "pfc", "cwnd", "rto",
                      "fast-rec", "nack-rec", "other"}};
    for (std::size_t i = 0; i < report.points.size(); ++i) {
      if (report.sweep.failed(i) || report.sweep.tasks[i].attempts == 0) continue;
      const auto& p = report.points[i];
      add_p99_row(ft_t, "scaling", p.degree, p.fct_rows);
    }
    ft_t.print();
  }

  if (cfg.domains >= 1) {
    // Execution diagnostics, not results: everything here except `windows`
    // and the histogram varies with --domains and machine load, which is
    // why it goes to stdout instead of the (byte-stable) CSV.
    std::printf("\nparallel engine: %d domain(s) per point, conservative windows:\n",
                cfg.domains);
    core::Table pt{{"degree", "windows", "bridged", "stall", "ev/domain min..max",
                    "windows w/ 0|<=8|>8 events"}};
    for (std::size_t i = 0; i < report.points.size(); ++i) {
      if (report.sweep.failed(i) || report.sweep.tasks[i].attempts == 0) continue;
      const auto& p = report.points[i];
      if (p.parallel_domains == 0) continue;  // resumed from a journal
      std::uint64_t ev_min = 0, ev_max = 0;
      for (const std::uint64_t ev : p.events_per_domain) {
        if (ev_min == 0 || ev < ev_min) ev_min = ev;
        if (ev > ev_max) ev_max = ev;
      }
      // Fold the log2 histogram into empty / small / busy windows.
      std::uint64_t empty = p.window_hist[0], small = 0, busy = 0;
      for (std::size_t b = 1; b < p.window_hist.size(); ++b) {
        (b <= 3 ? small : busy) += p.window_hist[b];
      }
      pt.add_row({std::to_string(p.degree),
                  std::to_string(static_cast<unsigned long long>(p.windows)),
                  std::to_string(static_cast<unsigned long long>(p.packets_bridged)),
                  core::fmt(static_cast<double>(p.barrier_stall_ns) / 1e6, 1) + " ms",
                  std::to_string(static_cast<unsigned long long>(ev_min)) + ".." +
                      std::to_string(static_cast<unsigned long long>(ev_max)),
                  std::to_string(static_cast<unsigned long long>(empty)) + " | " +
                      std::to_string(static_cast<unsigned long long>(small)) + " | " +
                      std::to_string(static_cast<unsigned long long>(busy))});
    }
    pt.print();
  }

  std::printf("\n");
  core::print_sweep_stats(report.sweep);
  print_resume_hint(journal);

  if (ft.enabled) {
    if (const int rc = ft.write_csv(core::scaling_fct_csv(report)); rc != 0) return rc;
  }

  if (!csv_path.empty()) {
    std::ofstream out{csv_path};
    if (!out) {
      std::fprintf(stderr, "error: cannot write %s\n", csv_path.c_str());
      return 3;
    }
    out << core::scaling_csv(report);
    std::printf("wrote %zu point(s) to %s\n", report.points.size(), csv_path.c_str());
  }
  return obs_cli.write_outputs();
}

int run_chaos(core::CliArgs& args) {
  core::ChaosConfig cfg;
  cfg.num_configs = static_cast<int>(args.int_or("configs", 25, 1, 100'000));
  cfg.seed = static_cast<std::uint64_t>(args.int_or("seed", 7));
  cfg.jobs = static_cast<int>(args.int_or("jobs", 0, 0, 1024));
  cfg.max_events_per_run = static_cast<std::uint64_t>(
      args.int_or("max-events", 20'000'000, 1, 1'000'000'000'000));
  cfg.max_wall_ms_per_run = args.double_or("max-wall-ms", 0.0, 0.0, 1e9);
  const std::string journal_path = args.get_or("journal", "");
  if (const int rc = finish(args); rc != 0) return rc;
  cfg.cancel = &g_cancel;

  core::TaskJournal journal;
  if (!journal_path.empty()) {
    // The chaos config is tiny; its canonical string is inlined here.
    std::string canonical = "chaos|seed=" + std::to_string(cfg.seed) +
                            "|configs=" + std::to_string(cfg.num_configs) +
                            "|max_events=" + std::to_string(cfg.max_events_per_run);
    journal.open(journal_path, {"chaos", core::fnv1a(canonical),
                                static_cast<std::uint64_t>(cfg.num_configs)});
    if (journal.completed_count() > 0) {
      std::printf("journal %s: resuming, %zu/%d config(s) already survived\n",
                  journal.path().c_str(), journal.completed_count(), cfg.num_configs);
    }
    cfg.on_failure = [&journal](const sim::TaskFailure& f) { journal.record_failure(f); };
    cfg.resume = [&journal](std::size_t index, core::ChaosRunResult& out) {
      const core::Json* payload = journal.payload(index);
      if (payload == nullptr) return false;
      out.description = payload->at("description").as_string();
      out.seed = std::stoull(payload->at("seed").as_string());
      out.events_processed =
          static_cast<std::uint64_t>(payload->at("events_processed").as_int());
      return true;
    };
    cfg.on_result = [&journal](std::size_t index, std::uint64_t seed,
                               const core::ChaosRunResult& r) {
      core::Json::Object o;
      o["description"] = core::Json{r.description};
      o["seed"] = core::Json{std::to_string(r.seed)};
      o["events_processed"] = core::Json{static_cast<std::int64_t>(r.events_processed)};
      journal.record_ok(index, seed, core::Json{std::move(o)});
    };
  }

  std::printf("chaos: %d random config(s), seed %llu, strict auditor, "
              "budget %llu events/run\n",
              cfg.num_configs, static_cast<unsigned long long>(cfg.seed),
              static_cast<unsigned long long>(cfg.max_events_per_run));

  const core::ChaosReport report = core::run_chaos(cfg);

  for (std::size_t i = 0; i < report.runs.size(); ++i) {
    if (report.sweep.failed(i) || report.sweep.tasks[i].attempts == 0) continue;
    std::printf("  ok   #%-3zu %-90s %llu events\n", i, report.runs[i].description.c_str(),
                static_cast<unsigned long long>(report.runs[i].events_processed));
  }
  for (const sim::TaskFailure& f : report.sweep.failures) {
    std::printf("  FAIL #%-3zu (seed %llu) [%s]: %s\n", f.index,
                static_cast<unsigned long long>(f.seed), sim::to_string(f.category),
                f.message.c_str());
  }
  std::printf("\n");
  core::print_sweep_stats(report.sweep);
  print_resume_hint(journal);

  if (!report.sweep.failures.empty()) {
    std::fprintf(stderr, "chaos: %zu of %d config(s) violated an invariant or budget\n",
                 report.sweep.failures.size(), cfg.num_configs);
    return 4;
  }
  return 0;
}

int run_trace(core::CliArgs& args) {
  const auto input = args.get("input");
  if (!input) {
    std::fprintf(stderr, "error: trace requires --input <csv>\n");
    return 2;
  }
  const sim::Bandwidth line_rate =
      args.bandwidth_or("line-rate", sim::Bandwidth::gigabits_per_second(10));
  if (const int rc = finish(args); rc != 0) return rc;

  // read_bins_csv_file throws std::runtime_error on missing/malformed
  // input; re-categorize as an I/O failure (exit 3) for the top-level
  // handler in main.
  std::vector<telemetry::Millisampler::Bin> bins;
  try {
    bins = telemetry::read_bins_csv_file(*input);
  } catch (const std::runtime_error& e) {
    throw core::Error{core::ErrorCategory::kIo, e.what()};
  }

  const analysis::BurstDetector detector;
  const auto bursts = detector.detect(bins, line_rate.bytes_in(1_ms));
  std::printf("%zu bins, %zu bursts detected\n", bins.size(), bursts.size());
  core::Table t{{"t (ms)", "dur (ms)", "flows", "incast?", "marked%", "retx%"}};
  for (const auto& b : bursts) {
    t.add_row({std::to_string(b.first_bin), std::to_string(b.num_bins),
               std::to_string(b.max_active_flows), detector.is_incast(b) ? "yes" : "no",
               core::fmt(b.marked_fraction() * 100, 1),
               core::fmt(b.retx_fraction() * 100, 2)});
  }
  t.print();
  return 0;
}

int dispatch(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  core::CliArgs args{argc - 1, argv + 1};

  if (command == "burst") return run_burst(args);
  if (command == "faults") return run_faults(args);
  if (command == "fabric") return run_fabric(args);
  if (command == "fleet") return run_fleet(args);
  if (command == "collateral") return run_collateral(args);
  if (command == "scaling") return run_scaling(args);
  if (command == "trace") return run_trace(args);
  if (command == "chaos") return run_chaos(args);
  return usage();
}

}  // namespace

int main(int argc, char** argv) {
  std::signal(SIGINT, handle_signal);
  std::signal(SIGTERM, handle_signal);
  // Anything the subcommands throw becomes a clean diagnostic with a
  // documented exit code instead of std::terminate. See the exit-code table
  // in the header comment.
  try {
    const int rc = dispatch(argc, argv);
    if (const int sig = g_signal.load(std::memory_order_relaxed); sig != 0) {
      return 128 + sig;  // 130 = SIGINT, 143 = SIGTERM
    }
    return rc;
  } catch (const core::Error& e) {
    std::fprintf(stderr, "error [%s]: %s\n", core::to_string(e.category()), e.what());
    return core::exit_code(e.category());
  } catch (const sim::RunCancelled&) {
    const int sig = g_signal.load(std::memory_order_relaxed);
    return sig != 0 ? 128 + sig : core::exit_code(core::ErrorCategory::kAudit);
  } catch (const sim::AuditFailure& e) {
    std::fprintf(stderr, "error [audit]: %s\n", e.what());
    return core::exit_code(core::ErrorCategory::kAudit);
  } catch (const sim::BudgetExceeded& e) {
    std::fprintf(stderr, "error [budget]: %s\n", e.what());
    return core::exit_code(core::ErrorCategory::kAudit);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error [internal]: %s\n", e.what());
    return core::exit_code(core::ErrorCategory::kInternal);
  }
}
