// incast_sim — command-line driver for custom experiments.
//
// Subcommands:
//
//   incast_sim burst [--flows 500] [--duration 15ms] [--bursts 11]
//                    [--cc dctcp|reno|reno-ecn|cubic|swift|hpcc]
//                    [--ecn-threshold 65] [--queue 1333] [--gap 10ms]
//                    [--min-rto 200ms] [--cwnd-cap-mss 0] [--tlp]
//                    [--schedule completion|period] [--seed 1]
//       Runs the Section 4 cyclic-incast experiment and prints the result.
//
//   incast_sim fleet [--service aggregator] [--hosts 2] [--snapshots 1]
//                    [--trace 1s] [--contention none|modeled|neighbor]
//                    [--export-csv trace.csv] [--seed 42]
//       Runs Section 3 production-like traces and prints per-burst
//       statistics; optionally exports the first host's Millisampler bins.
//
//   incast_sim trace --input trace.csv [--line-rate 10Gbps]
//       Runs the burst detector on a previously exported trace.
#include <cstdio>
#include <string>

#include "analysis/burst_detector.h"
#include "core/cli_args.h"
#include "core/fleet_experiment.h"
#include "core/incast_experiment.h"
#include "core/report.h"
#include "telemetry/trace_io.h"

namespace {

using namespace incast;
using namespace incast::sim::literals;

int usage() {
  std::fprintf(stderr,
               "usage: incast_sim <burst|fleet|trace> [--key value ...]\n"
               "       see the header of tools/incast_sim.cc for all flags\n");
  return 2;
}

std::optional<tcp::CcAlgorithm> parse_cc(const std::string& name) {
  if (name == "dctcp") return tcp::CcAlgorithm::kDctcp;
  if (name == "reno") return tcp::CcAlgorithm::kReno;
  if (name == "reno-ecn") return tcp::CcAlgorithm::kRenoEcn;
  if (name == "cubic") return tcp::CcAlgorithm::kCubic;
  if (name == "swift") return tcp::CcAlgorithm::kSwift;
  if (name == "hpcc") return tcp::CcAlgorithm::kHpcc;
  return std::nullopt;
}

int finish(core::CliArgs& args) {
  for (const auto& err : args.errors()) std::fprintf(stderr, "error: %s\n", err.c_str());
  for (const auto& key : args.unused_keys()) {
    std::fprintf(stderr, "warning: unknown flag --%s ignored\n", key.c_str());
  }
  return args.errors().empty() ? 0 : 2;
}

int run_burst(core::CliArgs& args) {
  core::IncastExperimentConfig cfg;
  cfg.num_flows = static_cast<int>(args.int_or("flows", 500));
  cfg.burst_duration = args.time_or("duration", 15_ms);
  cfg.num_bursts = static_cast<int>(args.int_or("bursts", 11));
  cfg.discard_bursts = static_cast<int>(args.int_or("discard", 1));
  cfg.inter_burst_gap = args.time_or("gap", 10_ms);
  cfg.seed = static_cast<std::uint64_t>(args.int_or("seed", 1));
  cfg.max_sim_time = args.time_or("max-sim-time", sim::Time::seconds(60));

  const std::string cc_name = args.get_or("cc", "dctcp");
  const auto cc = parse_cc(cc_name);
  if (!cc) {
    std::fprintf(stderr, "error: unknown --cc '%s'\n", cc_name.c_str());
    return 2;
  }
  cfg.tcp.cc = *cc;
  cfg.tcp.int_telemetry = *cc == tcp::CcAlgorithm::kHpcc;
  cfg.tcp.rtt.min_rto = args.time_or("min-rto", 200_ms);
  cfg.tcp.tail_loss_probe = args.bool_or("tlp", false);
  cfg.topology.switch_queue.capacity_packets = args.int_or("queue", 1333);
  cfg.topology.switch_queue.ecn_threshold_packets = args.int_or("ecn-threshold", 65);
  const std::int64_t cap_mss = args.int_or("cwnd-cap-mss", 0);
  if (cap_mss > 0) cfg.tcp.cwnd_cap_bytes = cap_mss * cfg.tcp.mss_bytes;
  const std::string schedule = args.get_or("schedule", "completion");
  cfg.schedule = schedule == "period" ? workload::BurstSchedule::kFixedPeriod
                                      : workload::BurstSchedule::kAfterCompletion;
  if (const int rc = finish(args); rc != 0) return rc;

  std::printf("burst: %d x %s bursts of a %d-flow %s incast (seed %llu)\n",
              cfg.num_bursts, cfg.burst_duration.to_string().c_str(), cfg.num_flows,
              cc_name.c_str(), static_cast<unsigned long long>(cfg.seed));
  const auto r = core::run_incast_experiment(cfg);

  core::Table t{{"metric", "value"}};
  t.add_row({"bursts completed", std::to_string(r.bursts.size())});
  t.add_row({"avg BCT (measured bursts)", core::fmt(r.avg_bct_ms, 2) + " ms"});
  t.add_row({"max BCT", core::fmt(r.max_bct_ms, 2) + " ms"});
  t.add_row({"avg queue during bursts", core::fmt(r.avg_queue_packets, 1) + " pkts"});
  t.add_row({"peak queue", core::fmt(r.peak_queue_packets, 0) + " pkts"});
  t.add_row({"ECN-marked packets", core::fmt(r.marked_fraction() * 100, 1) + " %"});
  t.add_row({"drops", std::to_string(r.queue_drops)});
  t.add_row({"timeouts", std::to_string(r.timeouts)});
  t.add_row({"fast retransmits", std::to_string(r.fast_retransmits)});
  t.add_row({"retransmitted packets", std::to_string(r.retransmitted_packets)});
  t.add_row({"end-of-burst cwnd mean", core::fmt(r.end_of_burst_cwnd_mean_mss, 2) + " MSS"});
  t.add_row({"end-of-burst cwnd max", core::fmt(r.end_of_burst_cwnd_max_mss, 2) + " MSS"});
  t.print();
  return 0;
}

int run_fleet(core::CliArgs& args) {
  core::FleetConfig cfg;
  const std::string service = args.get_or("service", "aggregator");
  try {
    cfg.profile = workload::service_by_name(service);
  } catch (const std::out_of_range&) {
    std::fprintf(stderr, "error: unknown --service '%s' (see table1_services)\n",
                 service.c_str());
    return 2;
  }
  cfg.num_hosts = static_cast<int>(args.int_or("hosts", 2));
  cfg.num_snapshots = static_cast<int>(args.int_or("snapshots", 1));
  cfg.trace_duration = args.time_or("trace", 1_s);
  cfg.base_seed = static_cast<std::uint64_t>(args.int_or("seed", 42));
  cfg.tcp.cc = tcp::CcAlgorithm::kDctcp;
  cfg.tcp.rtt.min_rto = 200_ms;
  const std::string contention = args.get_or("contention", "modeled");
  if (contention == "none") {
    cfg.contention_mode = core::FleetConfig::ContentionMode::kNone;
  } else if (contention == "neighbor") {
    cfg.contention_mode = core::FleetConfig::ContentionMode::kNeighbor;
  } else if (contention != "modeled") {
    std::fprintf(stderr, "error: unknown --contention '%s'\n", contention.c_str());
    return 2;
  }
  const std::string csv_path = args.get_or("export-csv", "");
  if (const int rc = finish(args); rc != 0) return rc;

  std::printf("fleet: %d host(s) x %d snapshot(s) of '%s', %s traces\n", cfg.num_hosts,
              cfg.num_snapshots, service.c_str(), cfg.trace_duration.to_string().c_str());

  core::FleetExperiment exp{cfg};
  exp.set_keep_bins(!csv_path.empty());

  analysis::Cdf freq, dur, flows, marked, retx;
  double util = 0.0;
  std::int64_t drops = 0;
  bool exported = false;
  for (int s = 0; s < cfg.num_snapshots; ++s) {
    for (int h = 0; h < cfg.num_hosts; ++h) {
      const auto r = exp.run_host_trace(h, s);
      util += r.avg_utilization;
      drops += r.queue_drops;
      freq.add(r.summary.bursts_per_second());
      for (const auto& b : r.summary.bursts) {
        dur.add(static_cast<double>(b.num_bins));
        flows.add(static_cast<double>(b.max_active_flows));
        marked.add(b.marked_fraction() * 100);
        retx.add(b.retx_fraction() * 100);
      }
      if (!exported && !csv_path.empty()) {
        if (telemetry::write_bins_csv_file(r.bins, csv_path)) {
          std::printf("exported host 0 trace to %s\n", csv_path.c_str());
        } else {
          std::fprintf(stderr, "error: cannot write %s\n", csv_path.c_str());
        }
        exported = true;
      }
    }
  }

  core::Table t{{"metric", "value"}};
  t.add_row({"avg utilization",
             core::fmt(util / (cfg.num_hosts * cfg.num_snapshots) * 100, 1) + " %"});
  t.add_row({"bursts/second (mean)", core::fmt(freq.mean(), 1)});
  t.add_row({"burst duration p50/p99",
             core::fmt(dur.percentile(50), 0) + " / " + core::fmt(dur.percentile(99), 0) +
                 " ms"});
  t.add_row({"flows p50/p99",
             core::fmt(flows.percentile(50), 0) + " / " + core::fmt(flows.percentile(99), 0)});
  t.add_row({"bursts with no marking", core::fmt(100 * marked.fraction_below(0.5), 0) + " %"});
  t.add_row({"bursts with no retx", core::fmt(100 * retx.fraction_below(0.01), 0) + " %"});
  t.add_row({"worst retx fraction", core::fmt(retx.max(), 2) + " %"});
  t.add_row({"ToR drops", std::to_string(drops)});
  t.print();
  return 0;
}

int run_trace(core::CliArgs& args) {
  const auto input = args.get("input");
  if (!input) {
    std::fprintf(stderr, "error: trace requires --input <csv>\n");
    return 2;
  }
  const sim::Bandwidth line_rate =
      args.bandwidth_or("line-rate", sim::Bandwidth::gigabits_per_second(10));
  if (const int rc = finish(args); rc != 0) return rc;

  std::vector<telemetry::Millisampler::Bin> bins;
  try {
    bins = telemetry::read_bins_csv_file(*input);
  } catch (const std::runtime_error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }

  const analysis::BurstDetector detector;
  const auto bursts = detector.detect(bins, line_rate.bytes_in(1_ms));
  std::printf("%zu bins, %zu bursts detected\n", bins.size(), bursts.size());
  core::Table t{{"t (ms)", "dur (ms)", "flows", "incast?", "marked%", "retx%"}};
  for (const auto& b : bursts) {
    t.add_row({std::to_string(b.first_bin), std::to_string(b.num_bins),
               std::to_string(b.max_active_flows), detector.is_incast(b) ? "yes" : "no",
               core::fmt(b.marked_fraction() * 100, 1),
               core::fmt(b.retx_fraction() * 100, 2)});
  }
  t.print();
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  core::CliArgs args{argc - 1, argv + 1};

  if (command == "burst") return run_burst(args);
  if (command == "fleet") return run_fleet(args);
  if (command == "trace") return run_trace(args);
  return usage();
}
