#!/usr/bin/env python3
"""Validator for Chrome trace-event JSON exported by the obs tracer.

Checks the invariants the exporter promises (and Perfetto silently
forgives, which is exactly why CI must not):

  * top-level object with a ``traceEvents`` array;
  * every event carries the keys its phase requires (``M`` metadata events
    need name/ph/pid; all others also need cat/ts/tid; async ``b``/``e``
    events need an ``id``);
  * timestamps are monotonically non-decreasing in array order (metadata
    excluded) — the tracer records in sim-time order and the exporter
    appends synthesized closers at the final timestamp, so any inversion
    means a writer bug;
  * sync ``B``/``E`` pairs balance per (pid, tid) as a stack with matching
    names, and no span is left open;
  * async ``b``/``e`` pairs balance per (cat, name, id) with every ``b``
    preceding its ``e``;
  * within one async track (pid, tid, id) the spans obey stack discipline:
    every ``e`` closes the innermost open ``b`` on that track, with a
    matching (cat, name). The flow-trace waterfall relies on this — each
    flow renders on its own track and a component span must never
    straddle the lifecycle span's close.

Usage:  check_trace.py TRACE.json [TRACE2.json ...]
Exit codes: 0 all valid, 1 invariant violated, 2 unreadable input.
"""

import json
import sys

# Phases the exporter emits. Anything else is a schema violation, not a
# forward-compat case: the writer and this checker version together.
KNOWN_PHASES = {"M", "i", "C", "B", "E", "b", "e"}


def fail(path, index, message):
    print(f"{path}: traceEvents[{index}]: {message}", file=sys.stderr)
    return False


def check_event_schema(path, i, ev):
    if not isinstance(ev, dict):
        return fail(path, i, "event is not an object")
    ph = ev.get("ph")
    if ph not in KNOWN_PHASES:
        return fail(path, i, f"unknown or missing phase {ph!r}")
    if not isinstance(ev.get("name"), str) or not ev["name"]:
        return fail(path, i, "missing or empty 'name'")
    if not isinstance(ev.get("pid"), int):
        return fail(path, i, "missing integer 'pid'")
    if ph == "M":
        return True
    if not isinstance(ev.get("cat"), str):
        return fail(path, i, "missing 'cat'")
    if not isinstance(ev.get("ts"), (int, float)):
        return fail(path, i, "missing numeric 'ts'")
    if not isinstance(ev.get("tid"), int):
        return fail(path, i, "missing integer 'tid'")
    if ph in ("b", "e") and not isinstance(ev.get("id"), str):
        return fail(path, i, f"async '{ph}' event missing string 'id'")
    return True


def check_trace(path):
    try:
        with open(path) as f:
            data = json.load(f)
    except (OSError, ValueError) as e:
        print(f"error: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)

    if not isinstance(data, dict) or not isinstance(data.get("traceEvents"), list):
        print(f"{path}: top level must be an object with a 'traceEvents' array",
              file=sys.stderr)
        return False

    events = data["traceEvents"]
    ok = True
    last_ts = None
    sync_stacks = {}   # (pid, tid) -> [(index, name), ...]
    async_open = {}    # (cat, name, id) -> [index, ...]
    async_tracks = {}  # (pid, tid, id) -> [(index, cat, name), ...]
    counts = {}
    for i, ev in enumerate(events):
        if not check_event_schema(path, i, ev):
            ok = False
            continue
        ph = ev["ph"]
        counts[ph] = counts.get(ph, 0) + 1
        if ph == "M":
            continue
        ts = ev["ts"]
        if last_ts is not None and ts < last_ts:
            ok = fail(path, i, f"timestamp went backwards: {ts} after {last_ts}")
        else:
            last_ts = ts

        if ph == "B":
            sync_stacks.setdefault((ev["pid"], ev["tid"]), []).append((i, ev["name"]))
        elif ph == "E":
            stack = sync_stacks.get((ev["pid"], ev["tid"]), [])
            if not stack:
                ok = fail(path, i, f"'E' with no open span on tid {ev['tid']}")
            else:
                _, open_name = stack.pop()
                if open_name != ev["name"]:
                    ok = fail(path, i,
                              f"'E' name {ev['name']!r} closes span {open_name!r}")
        elif ph == "b":
            async_open.setdefault((ev["cat"], ev["name"], ev["id"]), []).append(i)
            async_tracks.setdefault((ev["pid"], ev["tid"], ev["id"]), []).append(
                (i, ev["cat"], ev["name"]))
        elif ph == "e":
            stack = async_open.get((ev["cat"], ev["name"], ev["id"]), [])
            if not stack:
                ok = fail(path, i,
                          f"'e' with no matching 'b' for "
                          f"({ev['cat']}, {ev['name']}, {ev['id']})")
            else:
                stack.pop()
            track = async_tracks.get((ev["pid"], ev["tid"], ev["id"]), [])
            if track:
                _, open_cat, open_name = track.pop()
                if (open_cat, open_name) != (ev["cat"], ev["name"]):
                    ok = fail(path, i,
                              f"async 'e' ({ev['cat']}, {ev['name']}) closes "
                              f"over still-open ({open_cat}, {open_name}) on "
                              f"track (pid={ev['pid']}, tid={ev['tid']}, "
                              f"id={ev['id']}) — spans must nest")

    for (pid, tid), stack in sync_stacks.items():
        for i, name in stack:
            ok = fail(path, i, f"span {name!r} on tid {tid} never closed")
    for (cat, name, span_id), stack in async_open.items():
        for i in stack:
            ok = fail(path, i,
                      f"async span ({cat}, {name}, {span_id}) never closed")

    if ok:
        summary = " ".join(f"{ph}={n}" for ph, n in sorted(counts.items()))
        print(f"{path}: OK — {len(events)} event(s): {summary}")
    return ok


def main(argv):
    if len(argv) < 2:
        print("usage: check_trace.py TRACE.json [TRACE2.json ...]", file=sys.stderr)
        return 2
    all_ok = True
    for path in argv[1:]:
        all_ok = check_trace(path) and all_ok
    return 0 if all_ok else 1


if __name__ == "__main__":
    sys.exit(main(sys.argv))
