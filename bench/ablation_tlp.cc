// Ablation A8 — tail loss probe (RFC 8985) vs Mode 3.
//
// The paper's Mode 3 pins burst completion at the ~200 ms minimum RTO
// because three duplicate ACKs never materialize at 1-MSS windows. Modern
// kernels ship tail loss probes precisely to avoid RTO-bound tail
// recovery, so the natural question is whether Mode 3 survives on a
// TLP-enabled stack. Two experiments answer it:
//
//   (1) an isolated tail loss: TLP converts a 200 ms RTO stall into a
//       ~millisecond probe + fast recovery — the mechanism works;
//   (2) Mode 3 incast: every flow probes into a queue that is full
//       *because of everyone else*; the probes are dropped like everything
//       else, recovery still ends up RTO-bound, and total drops go UP.
//
// Conclusion: Mode 3 is structural overload, not a loss-detection problem
// — supporting the paper's claim that "sender CCAs are ill-equipped to
// address incast on their own".
#include <cstdio>

#include "bench_util.h"
#include "core/incast_experiment.h"
#include "core/report.h"
#include "net/topology.h"
#include "tcp/tcp_connection.h"

namespace {

using namespace incast;
using namespace incast::sim::literals;

// (1) one flow, shallow queue, tail of the window dropped.
void single_flow_table() {
  core::Table t{{"recovery", "timeouts", "TLP probes", "transfer time (ms)"}};
  for (const bool tlp : {false, true}) {
    sim::Simulator sim;
    net::DumbbellConfig topo_cfg;
    topo_cfg.num_senders = 1;
    topo_cfg.switch_queue.capacity_packets = 6;
    topo_cfg.switch_queue.ecn_threshold_packets = 0;
    topo_cfg.receiver_link = sim::Bandwidth::gigabits_per_second(1);
    net::Dumbbell topo{sim, topo_cfg};
    tcp::TcpConfig cfg;
    cfg.cc = tcp::CcAlgorithm::kReno;
    cfg.tail_loss_probe = tlp;
    cfg.min_pto = 1_ms;
    cfg.rtt.min_rto = 200_ms;
    cfg.rtt.initial_rto = 200_ms;
    tcp::TcpConnection conn{sim, topo.sender(0), topo.receiver(0), 1, cfg};
    conn.sender().add_app_data(500'000);
    sim::Time done;
    conn.sender().set_on_all_acked([&] { done = sim.now(); });
    sim.run_until(30_s);
    t.add_row({tlp ? "TLP + SACK" : "RTO only",
               std::to_string(conn.sender().stats().timeouts),
               std::to_string(conn.sender().stats().tlp_probes),
               core::fmt(done.ms(), 1)});
  }
  t.print();
}

}  // namespace

int main() {
  core::print_header("Ablation A8", "Tail loss probe: great for tails, useless for Mode 3");
  bench::print_scale_banner();

  std::printf("\n(1) Isolated tail loss (1 flow, shallow queue, 200 ms min RTO)\n");
  single_flow_table();
  std::printf("TLP recovers in ~SRTT-scale time; the RTO-only stack stalls 200 ms per "
              "tail loss.\n");

  std::printf("\n(2) Mode 3 incast (15 ms bursts, DCTCP, 200 ms min RTO)\n");
  const int bursts = bench::by_scale(3, 4, 11);
  core::Table t{{"flows", "TLP", "drops", "timeouts", "probes", "avg BCT ms"}};
  for (const int flows : {1500, 3000}) {
    for (const bool tlp : {false, true}) {
      core::IncastExperimentConfig cfg;
      cfg.num_flows = flows;
      cfg.burst_duration = 15_ms;
      cfg.num_bursts = bursts;
      cfg.discard_bursts = 1;
      cfg.tcp.cc = tcp::CcAlgorithm::kDctcp;
      cfg.tcp.rtt.min_rto = 200_ms;
      cfg.tcp.tail_loss_probe = tlp;
      cfg.max_sim_time = sim::Time::seconds(60);
      cfg.seed = 7;
      const auto r = core::run_incast_experiment(cfg);
      t.add_row({std::to_string(flows), tlp ? "on" : "off",
                 std::to_string(r.queue_drops), std::to_string(r.timeouts),
                 tlp ? "(storm)" : "-", core::fmt(r.avg_bct_ms, 1)});
    }
  }
  t.print();
  std::printf("\nTLP leaves Mode 3's completion time untouched and *increases* drops:\n"
              "every flow's probe lands in a queue that is full because of everyone\n"
              "else's probes. Faster loss detection cannot fix structural overload —\n"
              "only fewer concurrent flows can (see extension_staged) or sub-packet\n"
              "rates (see extension_swift).\n");
  return 0;
}
