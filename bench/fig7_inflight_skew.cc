// Figure 7 — "Per-flow in-flight data during a 100-flow incast is highly
// skewed."
//
// Section 4.3: within a Mode 1 incast, a long tail of flows carries several
// times the median in-flight data. At the end of each burst the stragglers
// ramp up to claim the freed bandwidth — "unlearning" the correct window —
// and that inflated window causes the queue spike at the start of the next
// burst (burst-boundary divergence).
#include <algorithm>
#include <cstdio>

#include "bench_util.h"
#include "core/incast_experiment.h"
#include "core/report.h"

int main() {
  using namespace incast;
  using namespace incast::sim::literals;

  core::print_header("Figure 7",
                     "Per-flow in-flight skew during a Mode 1 incast (60 flows here ~ "
                     "paper's 100; see note below)");
  bench::print_scale_banner();

  // The paper runs Figure 7 at 100 flows with its degenerate point at
  // ~150 flows (ratio ~0.66). Our more tightly synchronized flows pin to
  // the 1-MSS floor already at ~90 flows (K + BDP), so the equivalent
  // sub-degenerate regime — where DCTCP has headroom and unfairness can
  // develop — is ~60 flows. See EXPERIMENTS.md.
  core::IncastExperimentConfig cfg;
  cfg.num_flows = 60;
  cfg.burst_duration = 15_ms;
  cfg.num_bursts = bench::by_scale(3, 5, 11);
  cfg.discard_bursts = 1;
  cfg.tcp.cc = tcp::CcAlgorithm::kDctcp;
  cfg.tcp.rtt.min_rto = 200_ms;
  cfg.inflight_sample_every = 100_us;
  cfg.seed = 17;
  const auto r = core::run_incast_experiment(cfg);

  std::printf("\nIn-flight bytes across *active* flows (KB), sampled every 100 us.\n");
  std::printf("  t_ms   active   p50    mean    p95    p100\n");
  const std::size_t stride = 5;  // print every 0.5 ms
  for (std::size_t i = 0; i < r.inflight.size(); i += stride) {
    const auto& s = r.inflight[i];
    if (s.active_flows == 0) continue;
    std::printf("  %6.1f %6d %7.2f %7.2f %7.2f %7.2f\n", s.at.ms(), s.active_flows,
                static_cast<double>(s.p50_bytes) / 1e3,
                static_cast<double>(s.mean_bytes) / 1e3,
                static_cast<double>(s.p95_bytes) / 1e3,
                static_cast<double>(s.max_bytes) / 1e3);
  }

  // Skew statistics over all mid-burst samples (>= half the flows active).
  double max_skew = 0.0;
  double sum_skew = 0.0;
  int samples = 0;
  for (const auto& s : r.inflight) {
    if (s.active_flows < cfg.num_flows / 2 || s.p50_bytes <= 0) continue;
    const double skew =
        static_cast<double>(s.max_bytes) / static_cast<double>(s.p50_bytes);
    max_skew = std::max(max_skew, skew);
    sum_skew += skew;
    ++samples;
  }

  std::printf("\nSkew across active flows (p100 / p50 in-flight):\n");
  std::printf("  mean %.1fx, worst %.1fx  (paper: a long tail transmits several times\n"
              "  the median)\n",
              samples > 0 ? sum_skew / samples : 0.0, max_skew);
  std::printf("\nBurst-boundary divergence (Section 4.3):\n");
  std::printf("  end-of-burst cwnd: mean %.1f MSS, straggler max %.1f MSS — the\n"
              "  stragglers 'unlearned' the incast window and will spike the next\n"
              "  burst's queue.\n",
              r.end_of_burst_cwnd_mean_mss, r.end_of_burst_cwnd_max_mss);
  return 0;
}
