// Extension E3 — INT-based congestion control (HPCC-style) under incast.
//
// The paper lists INT-based techniques [HPCC, PowerTCP, Bolt, Poseidon]
// among the approaches that "do consider hundreds or thousands of flows,
// but are challenging to deploy due to their requirements for fine-grained
// timestamping, endpoint stack modifications, or switch features". With
// switch INT stamping and an HPCC-style sender in the stack, we can measure
// what that switch support actually buys — and what it does not:
//
//   (a) single flow / steady incast: near-line-rate goodput with an almost
//       empty queue, the precision INT pays for;
//   (b) the paper's millisecond cyclic bursts: precision does not survive
//       idle periods — burst-start windows are stale regardless of how
//       good the telemetry was a burst ago, so high-degree cyclic incast
//       still collapses. Scheduling (E2), not telemetry, is what removes
//       structural overload.
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_util.h"
#include "core/incast_experiment.h"
#include "core/report.h"
#include "net/topology.h"
#include "sim/random.h"
#include "tcp/tcp_connection.h"

namespace {

using namespace incast;
using namespace incast::sim::literals;

tcp::TcpConfig tcp_config(tcp::CcAlgorithm algo) {
  tcp::TcpConfig cfg;
  cfg.cc = algo;
  cfg.int_telemetry = algo == tcp::CcAlgorithm::kHpcc;
  cfg.cc_config.initial_window_segments = algo == tcp::CcAlgorithm::kSwift ? 1 : 10;
  cfg.rtt.min_rto = 200_ms;
  return cfg;
}

struct SteadyOutcome {
  double avg_queue{0.0};
  std::int64_t drops{0};
  double goodput_gbps{0.0};
};

SteadyOutcome run_steady(tcp::CcAlgorithm algo, int flows, sim::Time duration) {
  sim::Simulator sim;
  net::DumbbellConfig topo_cfg;
  topo_cfg.num_senders = flows;
  net::Dumbbell topo{sim, topo_cfg};
  const tcp::TcpConfig cfg = tcp_config(algo);

  std::vector<std::unique_ptr<tcp::TcpConnection>> conns;
  sim::Rng rng{7};
  for (int i = 0; i < flows; ++i) {
    conns.push_back(std::make_unique<tcp::TcpConnection>(
        sim, topo.sender(i), topo.receiver(0), static_cast<net::FlowId>(i + 1), cfg));
    tcp::TcpSender* s = &conns.back()->sender();
    sim.schedule_in(rng.uniform_time(sim::Time::zero(), 10_ms),
                    [s] { s->add_app_data(1'000'000'000); });
  }

  const sim::Time half = duration / 2.0;
  sim.run_until(half);
  const std::int64_t drops0 = topo.bottleneck_queue().stats().dropped_packets;
  std::int64_t rcv0 = 0;
  for (const auto& c : conns) rcv0 += c->receiver().rcv_nxt();

  std::vector<std::int64_t> depths;
  for (int i = 0; i < 100; ++i) {
    sim.schedule_at(half + (duration - half) * (static_cast<double>(i) / 100.0),
                    [&] { depths.push_back(topo.bottleneck_queue().packets()); });
  }
  sim.run_until(duration);

  SteadyOutcome out;
  out.drops = topo.bottleneck_queue().stats().dropped_packets - drops0;
  for (const auto d : depths) out.avg_queue += static_cast<double>(d);
  out.avg_queue /= static_cast<double>(depths.size());
  std::int64_t rcv1 = 0;
  for (const auto& c : conns) rcv1 += c->receiver().rcv_nxt();
  out.goodput_gbps = static_cast<double>(rcv1 - rcv0) * 8.0 / (duration - half).sec() / 1e9;
  return out;
}

}  // namespace

int main() {
  core::print_header("Extension E3",
                     "HPCC-style INT congestion control: what switch telemetry buys");
  bench::print_scale_banner();
  const sim::Time steady_len = bench::by_scale(300_ms, 600_ms, 2_s);

  std::printf("\n(a) Sustained traffic (%s, second half measured)\n",
              steady_len.to_string().c_str());
  core::Table steady{{"flows", "cca", "avg queue (pkts)", "drops", "goodput (Gbps)"}};
  for (const int flows : {1, 50, 500}) {
    for (const auto algo : {tcp::CcAlgorithm::kDctcp, tcp::CcAlgorithm::kHpcc}) {
      const auto o = run_steady(algo, flows, steady_len);
      steady.add_row({std::to_string(flows), tcp::to_string(algo),
                      core::fmt(o.avg_queue, 0), std::to_string(o.drops),
                      core::fmt(o.goodput_gbps, 2)});
    }
  }
  steady.print();
  std::printf("HPCC's per-hop utilization signal holds the queue near empty at one\n"
              "flow and bounded at hundreds, with zero loss — the INT payoff.\n");

  std::printf("\n(b) The paper's cyclic bursts (15 ms)\n");
  const int nbursts = bench::by_scale(3, 4, 11);
  core::Table bursts{{"flows", "cca", "drops", "timeouts", "avg BCT ms"}};
  for (const int flows : {100, 500}) {
    for (const auto algo : {tcp::CcAlgorithm::kDctcp, tcp::CcAlgorithm::kHpcc}) {
      core::IncastExperimentConfig cfg;
      cfg.num_flows = flows;
      cfg.burst_duration = 15_ms;
      cfg.num_bursts = nbursts;
      cfg.discard_bursts = 1;
      cfg.tcp = tcp_config(algo);
      cfg.max_sim_time = sim::Time::seconds(60);
      cfg.seed = 7;
      const auto r = core::run_incast_experiment(cfg);
      bursts.add_row({std::to_string(flows), tcp::to_string(algo),
                      std::to_string(r.queue_drops), std::to_string(r.timeouts),
                      core::fmt(r.avg_bct_ms, 1)});
    }
  }
  bursts.print();
  std::printf("At Mode-1 scale HPCC stays lossless with a much smaller queue than\n"
              "DCTCP (at a modest completion-time premium). At hundreds of flows the\n"
              "cyclic pattern defeats it: burst-start windows are stale no matter how\n"
              "precise last burst's telemetry was — supporting the paper's view that\n"
              "better sender signals alone do not solve high-degree cyclic incast.\n");
  return 0;
}
