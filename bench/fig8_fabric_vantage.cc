// Figure 8 (extension) — "Where is the burst visible?"
//
// The paper's central measurement problem is that incast bursts saturate
// the last hop for a few milliseconds while fleet-wide monitoring samples
// at seconds: the burst is invisible unless you look at the right place at
// the right granularity. This bench quantifies the "right place" half: the
// same cyclic incast is run across a two-tier Clos fabric and the burst's
// peak 1 ms utilization is reported at three vantage points —
//
//   host   the receiver NIC (where Millisampler runs in production),
//   leaf   every leaf's uplinks toward the spines,
//   spine  the spine ports descending toward the receiver's leaf.
//
// Expected shape: ~100% at the host NIC, a fraction of that at the spine
// tier (the burst converges only at the last hop), and still less per leaf
// uplink (ECMP spreads the senders' traffic). In-network counters at any
// aggregation tier under-observe the burst by an order of magnitude — the
// quantitative argument for host-side millisecond sampling.
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/fabric_experiment.h"
#include "core/report.h"

int main() {
  using namespace incast;
  using namespace incast::sim::literals;

  core::print_header("Figure 8", "Burst visibility at host, leaf, and spine vantage points");
  bench::print_scale_banner();

  const int flows = bench::by_scale(48, 96, 400);
  const int bursts = bench::by_scale(2, 4, 8);

  core::FabricIncastExperimentConfig cfg;
  cfg.num_flows = flows;
  cfg.placement = core::FabricIncastExperimentConfig::Placement::kCrossRack;
  cfg.fabric.num_pods = 2;
  cfg.fabric.leaves_per_pod = 2;
  cfg.fabric.hosts_per_leaf = std::max(8, (flows + 2) / 3);
  cfg.fabric.num_spines = 2;
  cfg.num_bursts = bursts;
  cfg.discard_bursts = 1;
  cfg.burst_duration = 10_ms;
  cfg.tcp.cc = tcp::CcAlgorithm::kDctcp;
  std::printf("flows=%d bursts=%d fabric=2x2 leaves x %d hosts, 2 spines\n\n", flows,
              bursts, cfg.fabric.hosts_per_leaf);

  const auto r = core::run_fabric_incast_experiment(cfg);

  // Per-tier aggregation over vantages: the max is what the best-placed
  // counter at that tier could have seen; the mean is what a randomly
  // sampled port sees.
  struct TierStats {
    std::string tier;
    int vantages{0};
    double max_peak{0.0};
    double sum_peak{0.0};
  };
  std::vector<TierStats> tiers;
  for (const auto& v : r.vantages) {
    auto it = std::find_if(tiers.begin(), tiers.end(),
                           [&](const TierStats& t) { return t.tier == v.tier; });
    if (it == tiers.end()) {
      tiers.push_back(TierStats{v.tier, 0, 0.0, 0.0});
      it = tiers.end() - 1;
    }
    const double peak = v.peak_utilization();
    ++it->vantages;
    it->max_peak = std::max(it->max_peak, peak);
    it->sum_peak += peak;
  }

  core::Table t{{"tier", "vantages", "peak 1ms util (best port)", "peak 1ms util (mean port)"}};
  for (const auto& tier : tiers) {
    t.add_row({tier.tier, std::to_string(tier.vantages),
               core::fmt(tier.max_peak * 100, 1) + " %",
               core::fmt(tier.sum_peak / tier.vantages * 100, 1) + " %"});
  }
  t.print();

  std::printf("\nburst: avg BCT %.2f ms, peak queue %.0f pkts, mode %s\n", r.avg_bct_ms,
              r.peak_queue_packets, core::to_string(r.mode));
  const double host_peak = tiers.empty() ? 0.0 : tiers.front().max_peak;
  for (const auto& tier : tiers) {
    if (tier.tier != "host" && tier.max_peak > 0.0) {
      std::printf("visibility ratio host/%s: %.1fx\n", tier.tier.c_str(),
                  host_peak / tier.max_peak);
    }
  }
  return 0;
}
