// Figure 1 — "Example of incast bursts, measured at a receiver."
//
// A two-second Millisampler trace from one "aggregator" host, at 1 ms
// granularity, reported as the paper's four panels:
//   (a) ingress throughput      — bursts to line rate; low average util
//   (b) active flow count       — jumps to 200+ during bursts
//   (c) ECN-marked ingress rate — all-or-nothing marking
//   (d) retransmitted data rate — rare but severe (up to ~24% of line rate)
//
// The full 2000-bin series is summarized: per-panel headline statistics
// plus a downsampled time series for plotting.
#include <algorithm>
#include <cstdio>

#include "analysis/burst_detector.h"
#include "bench_util.h"
#include "core/fleet_experiment.h"
#include "core/report.h"

int main() {
  using namespace incast;
  using namespace incast::sim::literals;

  core::print_header("Figure 1", "Example of incast bursts, measured at a receiver "
                                 "(2 s of 'aggregator', 1 ms bins)");
  bench::print_scale_banner();

  core::FleetConfig cfg;
  cfg.profile = workload::service_by_name("aggregator");
  cfg.trace_duration = bench::by_scale(500_ms, 2_s, 2_s);
  cfg.tcp.cc = tcp::CcAlgorithm::kDctcp;
  cfg.tcp.rtt.min_rto = 200_ms;
  core::FleetExperiment exp{cfg};
  exp.set_keep_bins(true);
  const auto trace = exp.run_host_trace(/*host=*/0, /*snapshot=*/0);

  const double line_bytes_per_ms =
      static_cast<double>(cfg.nic_rate.bytes_in(1_ms));
  const auto util = [&](std::int64_t bytes) {
    return static_cast<double>(bytes) / line_bytes_per_ms;
  };

  // Headline statistics per panel.
  double peak_util = 0;
  int peak_flows = 0;
  double peak_marked = 0;
  double peak_retx = 0;
  int bins_at_line_rate = 0;
  for (const auto& b : trace.bins) {
    peak_util = std::max(peak_util, util(b.bytes));
    peak_flows = std::max(peak_flows, b.active_flows);
    peak_marked = std::max(peak_marked, util(b.marked_bytes));
    peak_retx = std::max(peak_retx, util(b.retx_bytes));
    if (util(b.bytes) > 0.9) ++bins_at_line_rate;
  }

  const analysis::BurstDetector detector;
  const auto bursts = trace.summary.bursts;
  std::int64_t burst_bytes = 0;
  std::int64_t total_bytes = 0;
  int incasts = 0;
  for (const auto& b : trace.bins) total_bytes += b.bytes;
  for (const auto& b : bursts) {
    burst_bytes += b.bytes;
    if (detector.is_incast(b)) ++incasts;
  }

  std::printf("\nHeadline statistics (paper values in brackets):\n");
  core::Table t{{"panel", "metric", "measured", "paper"}};
  t.add_row({"(a)", "average link utilization", core::fmt(trace.avg_utilization * 100, 1) + "%",
             "10.6%"});
  t.add_row({"(a)", "peak 1ms utilization", core::fmt(peak_util * 100, 0) + "%", "~100%"});
  t.add_row({"(a)", "traffic inside bursts",
             core::fmt(100.0 * static_cast<double>(burst_bytes) /
                           std::max<std::int64_t>(total_bytes, 1),
                       0) +
                 "%",
             "essentially all"});
  t.add_row({"(b)", "peak active flows (1ms)", std::to_string(peak_flows), "200+"});
  t.add_row({"(b)", "bursts that are incasts (>25 flows)",
             std::to_string(incasts) + "/" + std::to_string(bursts.size()), "majority"});
  t.add_row({"(c)", "peak ECN-marked rate", core::fmt(peak_marked * 100, 0) + "%",
             "~line rate when marked"});
  t.add_row({"(d)", "peak retransmission rate", core::fmt(peak_retx * 100, 1) + "%",
             "up to 24%"});
  t.print();

  // Downsampled series: max per 25 ms, which preserves the burst envelope.
  std::printf("\nTime series (per-25ms peaks): t_ms util%% flows marked%% retx%%\n");
  const std::size_t window = 25;
  for (std::size_t start = 0; start < trace.bins.size(); start += window) {
    double u = 0, m = 0, r = 0;
    int f = 0;
    for (std::size_t i = start; i < std::min(start + window, trace.bins.size()); ++i) {
      const auto& b = trace.bins[i];
      u = std::max(u, util(b.bytes));
      m = std::max(m, util(b.marked_bytes));
      r = std::max(r, util(b.retx_bytes));
      f = std::max(f, b.active_flows);
    }
    std::printf("%5zu %6.1f %5d %7.1f %6.2f\n", start, u * 100, f, m * 100, r * 100);
  }
  return 0;
}
