// Figure 2 — "Incast burst characteristics across five production services."
//
//   (a) burst frequency: tens to ~200 bursts per second
//   (b) burst duration: 1-20 ms, ~60% at 1-2 ms
//   (c) active flows per burst: incasts up to ~500 at p99, with low-flow
//       cliffs for "storage" and "aggregator"
//
// Each sample is one burst (panels b, c) or one host-trace (panel a),
// pooled over hosts and snapshots, exactly as in the paper.
#include <cstdio>
#include <vector>

#include "analysis/burst_detector.h"
#include "bench_util.h"
#include "core/fleet_experiment.h"
#include "core/report.h"

int main() {
  using namespace incast;
  using namespace incast::sim::literals;

  core::print_header("Figure 2", "Incast burst characteristics across five services");
  bench::print_scale_banner();

  const int hosts = bench::by_scale(2, 4, 20);
  const int snapshots = bench::by_scale(1, 2, 9);
  const sim::Time trace = bench::by_scale(300_ms, 1_s, 2_s);
  std::printf("hosts/service=%d snapshots=%d trace=%s\n", hosts, snapshots,
              trace.to_string().c_str());

  std::vector<std::string> labels;
  std::vector<analysis::Cdf> freq, dur, flows;
  double short_burst_fraction_total = 0.0;
  std::size_t total_bursts = 0;
  std::size_t incast_bursts = 0;
  const analysis::BurstDetector detector;

  for (const auto& profile : workload::service_catalog()) {
    core::FleetConfig cfg;
    cfg.profile = profile;
    cfg.num_hosts = hosts;
    cfg.num_snapshots = snapshots;
    cfg.trace_duration = trace;
    cfg.tcp.cc = tcp::CcAlgorithm::kDctcp;
    cfg.tcp.rtt.min_rto = 200_ms;
    cfg.jobs = bench::jobs();
    core::FleetExperiment exp{cfg};

    analysis::Cdf f, d, n;
    for (const auto& result : exp.run_all()) {
      f.add(result.summary.bursts_per_second());
      for (const auto& b : result.summary.bursts) {
        d.add(static_cast<double>(b.num_bins));  // 1 bin = 1 ms
        n.add(static_cast<double>(b.max_active_flows));
        ++total_bursts;
        if (detector.is_incast(b)) ++incast_bursts;
      }
    }
    short_burst_fraction_total += d.fraction_below(2.0);
    labels.push_back(profile.name);
    freq.push_back(std::move(f));
    dur.push_back(std::move(d));
    flows.push_back(std::move(n));
  }

  std::printf("\n");
  core::print_cdf_comparison("(a) Burst frequency (bursts/second; one sample per trace)",
                             labels, freq);
  std::printf("\n");
  core::print_cdf_comparison("(b) Burst duration (ms; one sample per burst)", labels, dur);
  std::printf("\n");
  core::print_cdf_comparison("(c) Active flows during burst (one sample per burst)",
                             labels, flows);

  std::printf("\nPaper cross-checks:\n");
  std::printf("  bursts at 1-2 ms: %.0f%% (paper: ~60%%)\n",
              100.0 * short_burst_fraction_total / static_cast<double>(labels.size()));
  std::printf("  bursts that are incasts (>25 flows): %.0f%% (paper: 'the majority')\n",
              100.0 * static_cast<double>(incast_bursts) /
                  static_cast<double>(std::max<std::size_t>(total_bursts, 1)));
  for (std::size_t i = 0; i < labels.size(); ++i) {
    std::printf("  %-10s p99 flows = %.0f (paper: up to 200-500)\n", labels[i].c_str(),
                flows[i].percentile(99));
  }
  std::printf("  low-flow cliff (<20 flows): storage %.0f%%, aggregator %.0f%% "
              "(paper: between 10%% and 45%%)\n",
              100.0 * flows[0].fraction_below(20.0), 100.0 * flows[1].fraction_below(20.0));
  return 0;
}
