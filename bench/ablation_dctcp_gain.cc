// Ablation A2 — DCTCP gain g.
//
// Section 5.1 floats "tune the CCA's parameters, such as g in DCTCP, to
// react more quickly to congestion", calling it brittle. The sweep shows
// why: larger g reacts faster (less queue under bursts) but estimates alpha
// from fewer observations, producing oscillation; tiny g is smooth but
// slow to adapt across burst boundaries. The paper's deployment uses
// g = 1/16 (Equation 15 of the DCTCP paper).
#include <cstdio>

#include "bench_util.h"
#include "core/incast_experiment.h"
#include "core/report.h"

int main() {
  using namespace incast;
  using namespace incast::sim::literals;

  core::print_header("Ablation A2", "DCTCP gain g sweep (100-flow, 15 ms bursts)");
  bench::print_scale_banner();
  const int bursts = bench::by_scale(3, 6, 11);

  core::Table t{{"g", "avg queue", "peak queue", "marked%", "drops", "avg BCT ms",
                 "straggler cwnd (MSS)"}};
  for (const double g : {1.0 / 256, 1.0 / 64, 1.0 / 16, 1.0 / 4, 1.0}) {
    core::IncastExperimentConfig cfg;
    cfg.num_flows = 100;
    cfg.burst_duration = 15_ms;
    cfg.num_bursts = bursts;
    cfg.discard_bursts = 1;
    cfg.tcp.cc = tcp::CcAlgorithm::kDctcp;
    cfg.tcp.cc_config.dctcp_gain = g;
    cfg.tcp.rtt.min_rto = 200_ms;
    cfg.seed = 23;
    const auto r = core::run_incast_experiment(cfg);
    char label[32];
    std::snprintf(label, sizeof(label), "1/%.0f", 1.0 / g);
    t.add_row({label, core::fmt(r.avg_queue_packets, 1), core::fmt(r.peak_queue_packets, 0),
               core::fmt(r.marked_fraction() * 100, 0), std::to_string(r.queue_drops),
               core::fmt(r.avg_bct_ms, 2), core::fmt(r.end_of_burst_cwnd_max_mss, 1)});
  }
  t.print();
  std::printf("\nExpectation: no g value fixes incast — the root cause (hundreds of\n"
              "flows at the 1-MSS floor) is insensitive to the gain, which is the\n"
              "paper's argument that tuning g 'does not address the root cause'.\n");
  return 0;
}
