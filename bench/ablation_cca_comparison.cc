// Ablation A6 — congestion control comparison under incast.
//
// DCTCP (the paper's deployed CCA) against Reno with classic ECN and
// CUBIC (ECN-blind loss-based control). Section 2 motivates DCTCP by its
// short queues in shallow-buffered switches; this shows what the
// alternatives would do under the same incast.
#include <cstdio>

#include "bench_util.h"
#include "core/incast_experiment.h"
#include "core/report.h"

int main() {
  using namespace incast;
  using namespace incast::sim::literals;

  core::print_header("Ablation A6", "CCA comparison under incast (15 ms bursts)");
  bench::print_scale_banner();
  const int bursts = bench::by_scale(3, 6, 11);

  core::Table t{{"flows", "cca", "avg queue", "peak queue", "drops", "timeouts",
                 "retx pkts", "avg BCT ms"}};
  for (const int flows : {100, 500}) {
    for (const auto algo : {tcp::CcAlgorithm::kDctcp, tcp::CcAlgorithm::kRenoEcn,
                            tcp::CcAlgorithm::kCubic}) {
      core::IncastExperimentConfig cfg;
      cfg.num_flows = flows;
      cfg.burst_duration = 15_ms;
      cfg.num_bursts = bursts;
      cfg.discard_bursts = 1;
      cfg.tcp.cc = algo;
      cfg.tcp.rtt.min_rto = 200_ms;
      cfg.seed = 43;
      const auto r = core::run_incast_experiment(cfg);
      t.add_row({std::to_string(flows), tcp::to_string(algo),
                 core::fmt(r.avg_queue_packets, 0), core::fmt(r.peak_queue_packets, 0),
                 std::to_string(r.queue_drops), std::to_string(r.timeouts),
                 std::to_string(r.retransmitted_packets), core::fmt(r.avg_bct_ms, 2)});
    }
  }
  t.print();
  std::printf("\nExpectation: DCTCP holds the queue near K via proportional ECN\n"
              "response; reno-ecn halves on any mark, oscillating deeper; CUBIC\n"
              "ignores ECN entirely and rides the queue to the tail-drop point.\n");
  return 0;
}
