// Ablation A3 — shared switch buffers vs dedicated per-port queues.
//
// Sections 3.4 and 4.1.1: the paper's own simulations give each port a
// dedicated 1333-packet queue, and it repeatedly notes that production
// ToRs share buffer memory across ports, so "the effective queue capacity
// would be lower and bursts would experience loss at lower flow counts".
// This ablation runs the same incast against (i) a dedicated queue, (ii) a
// shared pool with no competing traffic, and (iii) a shared pool under
// rack-level contention — quantifying exactly that claim.
#include <cstdio>
#include <memory>

#include "bench_util.h"
#include "core/incast_experiment.h"
#include "core/report.h"
#include "net/topology.h"
#include "workload/cyclic_incast.h"
#include "workload/rack_contention.h"

namespace {

using namespace incast;
using namespace incast::sim::literals;

struct Outcome {
  std::int64_t drops{0};
  std::int64_t timeouts{0};
  double avg_bct_ms{0.0};
};

Outcome run(int flows, bool shared, bool contended) {
  sim::Simulator sim;
  net::DumbbellConfig topo_cfg;
  topo_cfg.num_senders = flows;
  if (shared) {
    // Pool sized to one full queue: contention directly eats capacity.
    topo_cfg.shared_buffer =
        net::SharedBufferPool::Config{.total_bytes = 1333 * 1500, .alpha = 1.0};
  }
  net::Dumbbell topo{sim, topo_cfg};

  tcp::TcpConfig tcp_cfg;
  tcp_cfg.cc = tcp::CcAlgorithm::kDctcp;
  tcp_cfg.rtt.min_rto = 200_ms;

  workload::CyclicIncastDriver::Config driver_cfg;
  driver_cfg.num_flows = flows;
  driver_cfg.num_bursts = bench::by_scale(3, 6, 11);
  driver_cfg.burst_duration = 15_ms;
  workload::CyclicIncastDriver driver{sim, topo, tcp_cfg, driver_cfg, 29};

  std::unique_ptr<workload::RackContention> contention;
  if (shared && contended) {
    workload::RackContention::Config rc_cfg;
    rc_cfg.mean_on = 10_ms;
    rc_cfg.mean_off = 20_ms;
    contention = std::make_unique<workload::RackContention>(
        sim, *topo.receiver_tor().shared_buffer(), rc_cfg, 31);
    contention->start(10_s);
  }

  // Discard burst 0 (slow start) from the drop/timeout accounting, as the
  // paper does for all its Section 4 statistics.
  std::int64_t drops_at_measure_start = 0;
  std::int64_t timeouts_at_measure_start = 0;
  auto senders = driver.senders();
  driver.set_on_burst_complete([&](int index) {
    if (index != 0) return;
    drops_at_measure_start = topo.bottleneck_queue().stats().dropped_packets;
    for (const auto* s : senders) timeouts_at_measure_start += s->stats().timeouts;
  });

  driver.start();
  sim.run_until(10_s);

  Outcome out;
  out.drops = topo.bottleneck_queue().stats().dropped_packets - drops_at_measure_start;
  for (const auto* s : senders) out.timeouts += s->stats().timeouts;
  out.timeouts -= timeouts_at_measure_start;
  double bct = 0.0;
  int n = 0;
  for (const auto& b : driver.bursts()) {
    if (b.index == 0) continue;
    bct += b.completion_time().ms();
    ++n;
  }
  out.avg_bct_ms = n > 0 ? bct / n : 0.0;
  return out;
}

}  // namespace

int main() {
  core::print_header("Ablation A3", "Shared buffer vs dedicated per-port queues");
  bench::print_scale_banner();

  core::Table t{{"flows", "buffer", "drops", "timeouts", "avg BCT ms"}};
  for (const int flows : {300, 500, 800}) {
    const Outcome dedicated = run(flows, /*shared=*/false, /*contended=*/false);
    const Outcome shared = run(flows, /*shared=*/true, /*contended=*/false);
    const Outcome contended = run(flows, /*shared=*/true, /*contended=*/true);
    t.add_row({std::to_string(flows), "dedicated 1333 pkts", std::to_string(dedicated.drops),
               std::to_string(dedicated.timeouts), core::fmt(dedicated.avg_bct_ms, 1)});
    t.add_row({std::to_string(flows), "shared pool (idle rack)", std::to_string(shared.drops),
               std::to_string(shared.timeouts), core::fmt(shared.avg_bct_ms, 1)});
    t.add_row({std::to_string(flows), "shared pool + contention",
               std::to_string(contended.drops), std::to_string(contended.timeouts),
               core::fmt(contended.avg_bct_ms, 1)});
  }
  t.print();
  std::printf("\nExpectation: with a dedicated queue these flow counts ride Mode 2\n"
              "losslessly; buffer sharing under rack contention produces the losses\n"
              "the paper observes in production at a few hundred flows.\n");
  return 0;
}
