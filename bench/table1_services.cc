// Table 1 — "Five example services."
//
// Prints the service catalog with its Table 1 descriptions, plus the
// generative parameters each profile uses to reproduce that service's
// Section 3 distributions (for transparency: these numbers are the model,
// the figures are its output).
#include <cstdio>

#include "core/report.h"
#include "workload/service_profile.h"

int main() {
  using namespace incast;

  core::print_header("Table 1", "Five example services");
  core::Table table{{"Service", "Description"}};
  for (const auto& p : workload::service_catalog()) {
    table.add_row({p.name, p.description});
  }
  table.print();

  std::printf("\nGenerative model parameters (this reproduction):\n");
  core::Table params{{"Service", "bursts/s", "median flows", "sigma", "low-mode p",
                      "alt median", "dur p", "util range"}};
  for (const auto& p : workload::service_catalog()) {
    params.add_row({p.name, core::fmt(p.bursts_per_second, 0),
                    core::fmt(p.body_median_flows, 0), core::fmt(p.body_sigma, 2),
                    core::fmt(p.low_mode_probability, 2),
                    p.alt_median_flows > 0 ? core::fmt(p.alt_median_flows, 0) : "-",
                    core::fmt(p.duration_geometric_p, 2),
                    core::fmt(p.util_lo, 2) + "-" + core::fmt(p.util_hi, 2)});
  }
  params.print();
  return 0;
}
