// Shared helpers for the figure/table reproduction benches.
//
// Every bench accepts a scale via the INCAST_BENCH_SCALE environment
// variable: "quick" (CI smoke), "default", or "full" (paper-scale host and
// snapshot counts; minutes of CPU). Benches print which scale is active so
// output files are self-describing.
#ifndef INCAST_BENCH_BENCH_UTIL_H_
#define INCAST_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

namespace incast::bench {

enum class Scale { kQuick, kDefault, kFull };

inline Scale bench_scale() {
  const char* env = std::getenv("INCAST_BENCH_SCALE");
  if (env == nullptr) return Scale::kDefault;
  if (std::strcmp(env, "quick") == 0) return Scale::kQuick;
  if (std::strcmp(env, "full") == 0) return Scale::kFull;
  return Scale::kDefault;
}

inline const char* scale_name(Scale s) {
  switch (s) {
    case Scale::kQuick:
      return "quick";
    case Scale::kDefault:
      return "default";
    case Scale::kFull:
      return "full";
  }
  return "?";
}

// Picks a value by scale.
template <typename T>
T by_scale(T quick, T normal, T full) {
  switch (bench_scale()) {
    case Scale::kQuick:
      return quick;
    case Scale::kDefault:
      return normal;
    case Scale::kFull:
      return full;
  }
  return normal;
}

inline void print_scale_banner() {
  std::printf("[scale: %s — set INCAST_BENCH_SCALE=quick|default|full]\n",
              scale_name(bench_scale()));
}

}  // namespace incast::bench

#endif  // INCAST_BENCH_BENCH_UTIL_H_
