// Shared helpers for the figure/table reproduction benches.
//
// Every bench accepts a scale via the INCAST_BENCH_SCALE environment
// variable: "quick" (CI smoke), "default", or "full" (paper-scale host and
// snapshot counts; minutes of CPU). Benches print which scale is active so
// output files are self-describing.
//
// INCAST_JOBS controls how many worker threads the fleet-grid sweeps use
// (sim::SweepRunner); unset or 0 means all hardware threads, 1 is the
// historical sequential path. Output is byte-identical either way.
#ifndef INCAST_BENCH_BENCH_UTIL_H_
#define INCAST_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

namespace incast::bench {

enum class Scale { kQuick, kDefault, kFull };

inline Scale bench_scale() {
  const char* env = std::getenv("INCAST_BENCH_SCALE");
  if (env == nullptr) return Scale::kDefault;
  if (std::strcmp(env, "quick") == 0) return Scale::kQuick;
  if (std::strcmp(env, "full") == 0) return Scale::kFull;
  return Scale::kDefault;
}

inline const char* scale_name(Scale s) {
  switch (s) {
    case Scale::kQuick:
      return "quick";
    case Scale::kDefault:
      return "default";
    case Scale::kFull:
      return "full";
  }
  return "?";
}

// Picks a value by scale.
template <typename T>
T by_scale(T quick, T normal, T full) {
  switch (bench_scale()) {
    case Scale::kQuick:
      return quick;
    case Scale::kDefault:
      return normal;
    case Scale::kFull:
      return full;
  }
  return normal;
}

// Worker-thread count for sweep-shaped benches: INCAST_JOBS, or 0 (= all
// hardware threads) when unset/unparsable.
inline int jobs() {
  const char* env = std::getenv("INCAST_JOBS");
  if (env == nullptr) return 0;
  const int v = std::atoi(env);
  return v > 0 ? v : 0;
}

inline void print_scale_banner() {
  std::printf("[scale: %s — set INCAST_BENCH_SCALE=quick|default|full; "
              "INCAST_JOBS=N for N sweep threads]\n",
              scale_name(bench_scale()));
}

}  // namespace incast::bench

#endif  // INCAST_BENCH_BENCH_UTIL_H_
