// Figure 6 — "Queue behavior during 2 ms incast bursts."
//
// Section 4.2: 60% of production bursts last <= 2 ms. Short bursts are
// dominated by the initial window spike — there is no time for the
// oscillatory steady state of Figure 5 — so the queue is deep for most of
// the burst's life and DCTCP gets little chance to react before the burst
// is over.
#include <cstdio>

#include "bench_util.h"
#include "core/incast_experiment.h"
#include "core/report.h"

int main() {
  using namespace incast;
  using namespace incast::sim::literals;

  core::print_header("Figure 6", "Queue behavior during 2 ms incast bursts");
  bench::print_scale_banner();
  const int bursts = bench::by_scale(4, 11, 11);

  core::Table summary{{"flows", "avg queue", "peak queue", "time>K %", "marked%", "drops",
                       "avg BCT ms"}};

  for (const int flows : {100, 200, 500, 1000}) {
    core::IncastExperimentConfig cfg;
    cfg.num_flows = flows;
    cfg.burst_duration = 2_ms;
    cfg.num_bursts = bursts;
    cfg.discard_bursts = 1;
    cfg.tcp.cc = tcp::CcAlgorithm::kDctcp;
    cfg.tcp.rtt.min_rto = 200_ms;
    cfg.queue_sample_every = 10_us;
    cfg.seed = 13;
    const auto r = core::run_incast_experiment(cfg);

    // Fraction of burst time the queue spends above the marking threshold.
    int above = 0;
    int total = 0;
    for (const double q : r.mean_queue_by_offset) {
      ++total;
      if (q > 65.0) ++above;
    }

    std::printf("\n%d flows — queue vs time since burst start (100 us steps):\n", flows);
    const std::size_t stride = 10;  // 10 x 10us
    for (std::size_t i = 0; i < r.mean_queue_by_offset.size(); i += stride) {
      std::printf("  %5.2f ms %7.1f pkts\n", static_cast<double>(i) * 0.01,
                  r.mean_queue_by_offset[i]);
    }

    summary.add_row(
        {std::to_string(flows), core::fmt(r.avg_queue_packets, 0),
         core::fmt(r.peak_queue_packets, 0),
         core::fmt(total > 0 ? 100.0 * above / total : 0.0, 0),
         core::fmt(r.marked_fraction() * 100, 0), std::to_string(r.queue_drops),
         core::fmt(r.avg_bct_ms, 2)});
  }

  std::printf("\nSummary:\n");
  summary.print();
  std::printf("\nPaper comparison: short bursts are dominated by the initial spike of\n"
              "roughly one window per flow; higher flow counts push the whole 2 ms\n"
              "burst above the marking threshold, leaving DCTCP no time to converge.\n");
  return 0;
}
