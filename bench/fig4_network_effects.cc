// Figure 4 — "Negative effects of incast bursts on the network."
//
//   (a) peak ToR queue occupancy per burst, as a fraction of queue
//       capacity, joined from production-style coarse watermarks (the
//       paper's switches report a per-minute high watermark; we use a
//       window scaled to our trace length): median 20-100%.
//   (b) fraction of the burst's bytes that were ECN-marked: ~50% of
//       bursts see none at all; p90 > 60% for aggregator/video.
//   (c) fraction of the burst's bytes that were retransmissions: zero for
//       ~95% of bursts; the top 0.1% reach ~8% of volume.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "core/fleet_experiment.h"
#include "core/report.h"

int main() {
  using namespace incast;
  using namespace incast::sim::literals;

  core::print_header("Figure 4", "Negative effects of incast bursts on the network");
  bench::print_scale_banner();

  const int hosts = bench::by_scale(2, 4, 20);
  const int snapshots = bench::by_scale(1, 2, 9);
  const sim::Time trace = bench::by_scale(300_ms, 1_s, 2_s);
  // Production watermarks cover a minute; scale the window to our traces.
  const std::size_t watermark_window_ms = bench::by_scale(50, 100, 1000);
  std::printf("hosts/service=%d snapshots=%d trace=%s watermark-window=%zums\n", hosts,
              snapshots, trace.to_string().c_str(), watermark_window_ms);

  std::vector<std::string> labels;
  std::vector<analysis::Cdf> queue, marked, retx;

  for (const auto& profile : workload::service_catalog()) {
    core::FleetConfig cfg;
    cfg.profile = profile;
    cfg.num_hosts = hosts;
    cfg.num_snapshots = snapshots;
    cfg.trace_duration = trace;
    cfg.tcp.cc = tcp::CcAlgorithm::kDctcp;
    cfg.tcp.rtt.min_rto = 200_ms;
    cfg.jobs = bench::jobs();
    core::FleetExperiment exp{cfg};

    analysis::Cdf q, m, r;
    for (const auto& result : exp.run_all()) {
      // Coarsen the 1 ms watermarks to production-style windows; each
      // burst reports the watermark of the window containing it.
      const auto& wm = result.queue_watermarks;
      std::vector<std::int64_t> coarse((wm.size() + watermark_window_ms - 1) /
                                           std::max<std::size_t>(watermark_window_ms, 1),
                                       0);
      for (std::size_t i = 0; i < wm.size(); ++i) {
        auto& slot = coarse[i / watermark_window_ms];
        slot = std::max(slot, wm[i]);
      }
      for (const auto& b : result.summary.bursts) {
        if (!coarse.empty()) {
          const std::size_t w = std::min(b.first_bin / watermark_window_ms,
                                         coarse.size() - 1);
          q.add(100.0 * static_cast<double>(coarse[w]) /
                static_cast<double>(cfg.queue_capacity_packets));
        }
        m.add(100.0 * b.marked_fraction());
        r.add(100.0 * b.retx_fraction());
      }
    }
    labels.push_back(profile.name);
    queue.push_back(std::move(q));
    marked.push_back(std::move(m));
    retx.push_back(std::move(r));
  }

  std::printf("\n");
  core::print_cdf_comparison("(a) Peak queue occupancy per burst (% of capacity)", labels,
                             queue);
  std::printf("\n");
  core::print_cdf_comparison("(b) ECN-marked fraction of burst bytes (%)", labels, marked,
                             {50, 75, 90, 95, 99, 100});
  std::printf("\n");
  core::print_cdf_comparison("(c) Retransmitted fraction of burst bytes (%)", labels, retx,
                             {95, 99, 99.9, 100});

  std::printf("\nPaper cross-checks:\n");
  for (std::size_t i = 0; i < labels.size(); ++i) {
    std::printf("  %-10s unmarked bursts: %2.0f%% (paper: ~50%%)   p90 marked: %3.0f%%   "
                "retx-free bursts: %2.0f%% (paper: ~95%%)   worst retx: %.1f%%\n",
                labels[i].c_str(), 100.0 * marked[i].fraction_below(0.5),
                marked[i].percentile(90), 100.0 * retx[i].fraction_below(0.01),
                retx[i].max());
  }
  return 0;
}
