// Ablation A10 — burst arrival discipline: pile-up vs containment.
//
// The paper's cyclic workload has an inter-burst gap, but production
// coordinators issue queries on their own schedule — they do not wait for
// the previous incast to finish. This ablation runs the same 11-burst
// workload two ways:
//
//   completion-gated — burst i+1 starts `gap` after burst i completes
//                      (each burst's damage is contained);
//   fixed-period     — burst i starts at i * (duration + gap) regardless
//                      (when a burst overruns its period, the next one
//                      lands on the backlog).
//
// The contrast shows how loss episodes propagate: completion gating
// quarantines the slow-start catastrophe of burst 0 (the reason the paper
// discards it), while fixed-period arrivals pile every subsequent burst
// onto its unfinished backlog, which then amortizes only at the schedule's
// spare capacity — tens of bursts each inheriting hundreds of ms of
// latency from one bad episode.
#include <cstdio>

#include "bench_util.h"
#include "core/incast_experiment.h"
#include "core/report.h"

int main() {
  using namespace incast;
  using namespace incast::sim::literals;

  core::print_header("Ablation A10",
                     "Burst arrival discipline: completion-gated vs fixed-period");
  bench::print_scale_banner();
  const int bursts = bench::by_scale(4, 8, 11);

  for (const int flows : {500, 1500}) {
    std::printf("\n%d flows, 15 ms bursts, 10 ms gap/period slack:\n", flows);
    core::Table t{{"schedule", "burst#", "BCT (ms)"}};
    for (const auto schedule :
         {workload::BurstSchedule::kAfterCompletion, workload::BurstSchedule::kFixedPeriod}) {
      core::IncastExperimentConfig cfg;
      cfg.num_flows = flows;
      cfg.burst_duration = 15_ms;
      cfg.num_bursts = bursts;
      cfg.discard_bursts = 1;
      cfg.schedule = schedule;
      cfg.tcp.cc = tcp::CcAlgorithm::kDctcp;
      cfg.tcp.rtt.min_rto = 200_ms;
      cfg.max_sim_time = sim::Time::seconds(120);
      cfg.seed = 7;
      const auto r = core::run_incast_experiment(cfg);

      const char* name = schedule == workload::BurstSchedule::kAfterCompletion
                             ? "completion-gated"
                             : "fixed-period";
      for (const auto& b : r.bursts) {
        if (b.index == 0) continue;
        t.add_row({name, std::to_string(b.index),
                   core::fmt(b.completion_time().ms(), 1)});
      }
    }
    t.print();
  }

  std::printf("\nReading the table: completion gating quarantines burst 0's slow-start\n"
              "losses — at 500 flows every later burst is a clean 15.4 ms. Under the\n"
              "fixed period the same burst-0 episode leaves a ~200 ms backlog that\n"
              "every subsequent burst inherits, draining only ~14 ms per 25 ms period\n"
              "of spare capacity — dozens of queries pay for one loss event. At 1500\n"
              "flows (past the degenerate point) each burst adds its own RTO stalls\n"
              "on top, and the inherited latency starts at ~577 ms. This amplification\n"
              "is why the paper's 'catastrophic but rare' retransmission tail matters\n"
              "far beyond the bursts that actually lose packets.\n");
  return 0;
}
