// Extension E4 — receiver-driven credit transport vs TCP under incast.
//
// Section 5 surveys "receiver-based" designs (ExpressPass, pHost, NDP,
// Homa) that "address incast with thousands of flows, but necessitate
// replacing TCP, a significant deployment hurdle". With a working credit
// transport in the stack (rdt::), the benefit side of that trade can be
// measured on the paper's own workload: because the receiver paces one
// credit per segment at line rate, the incast *cannot* overflow the
// bottleneck queue, at any flow count — the scaling wall that defines
// DCTCP's Modes 2 and 3 simply does not exist.
//
// The costs are visible in the same table: ~1 RTT of RTS/grant signaling
// per burst, a grant packet per segment of reverse bandwidth, and a wire
// protocol that is not TCP.
#include <cstdio>

#include "bench_util.h"
#include "core/incast_experiment.h"
#include "core/report.h"
#include "net/topology.h"
#include "rdt/credit_incast.h"

namespace {

using namespace incast;
using namespace incast::sim::literals;

struct Outcome {
  double avg_bct_ms{0.0};
  std::int64_t drops{0};
  std::int64_t timeouts{0};       // TCP only
  std::int64_t control_packets{0};  // rdt only: RTS + grants
  double overhead_pct{0.0};         // control bytes / data bytes
};

Outcome run_tcp(int flows, int bursts) {
  core::IncastExperimentConfig cfg;
  cfg.num_flows = flows;
  cfg.burst_duration = 15_ms;
  cfg.num_bursts = bursts;
  cfg.discard_bursts = 1;
  cfg.tcp.cc = tcp::CcAlgorithm::kDctcp;
  cfg.tcp.rtt.min_rto = 200_ms;
  cfg.max_sim_time = sim::Time::seconds(120);
  cfg.seed = 7;
  const auto r = core::run_incast_experiment(cfg);
  return Outcome{r.avg_bct_ms, r.queue_drops, r.timeouts, 0, 0.0};
}

Outcome run_credit(int flows, int bursts) {
  sim::Simulator sim;
  net::DumbbellConfig topo_cfg;
  topo_cfg.num_senders = flows;
  // Byte-buffered queues (2 MB), matching the paper's 2 MB per-port memory.
  topo_cfg.switch_queue.capacity_packets = 1'000'000;
  topo_cfg.switch_queue.capacity_bytes = 2'000'000;
  topo_cfg.switch_queue.ecn_threshold_packets = 0;
  net::Dumbbell topo{sim, topo_cfg};

  rdt::CreditIncastDriver::Config cfg;
  cfg.num_flows = flows;
  cfg.num_bursts = bursts;
  cfg.burst_duration = 15_ms;
  rdt::CreditIncastDriver driver{sim, topo, cfg, 7};
  driver.start();
  sim.run_until(sim::Time::seconds(120));

  Outcome out;
  double bct = 0.0;
  int n = 0;
  for (const auto& b : driver.bursts()) {
    if (b.index == 0) continue;
    bct += b.completion_time().ms();
    ++n;
  }
  out.avg_bct_ms = n > 0 ? bct / n : -1.0;
  out.drops = topo.bottleneck_queue().stats().dropped_packets;
  out.control_packets = driver.total_rts() + driver.receiver().grants_sent();
  const double data_bytes =
      static_cast<double>(driver.receiver().total_received_bytes());
  out.overhead_pct =
      100.0 * static_cast<double>(out.control_packets) * net::kHeaderBytes / data_bytes;
  return out;
}

}  // namespace

int main() {
  core::print_header("Extension E4",
                     "Receiver-driven credit transport vs DCTCP (15 ms bursts)");
  bench::print_scale_banner();
  const int bursts = bench::by_scale(2, 3, 11);

  core::Table t{{"flows", "transport", "avg BCT ms", "drops", "timeouts",
                 "control pkts", "signal overhead"}};
  for (const int flows : {500, 1500, 5000}) {
    const Outcome tcp = run_tcp(flows, bursts);
    const Outcome rdt = run_credit(flows, bursts);
    t.add_row({std::to_string(flows), "DCTCP", core::fmt(tcp.avg_bct_ms, 1),
               std::to_string(tcp.drops), std::to_string(tcp.timeouts), "-", "-"});
    t.add_row({std::to_string(flows), "credit (rdt)", core::fmt(rdt.avg_bct_ms, 1),
               std::to_string(rdt.drops), "-", std::to_string(rdt.control_packets),
               core::fmt(rdt.overhead_pct, 1) + "%"});
  }
  t.print();

  std::printf("\nExpectation: DCTCP hits its wall (Mode 2's standing queue, then Mode\n"
              "3's RTO-bound collapse past ~1300 flows). The credit transport is flat:\n"
              "~15.5-18 ms at every flow count with zero loss, because the receiver\n"
              "never credits more than its downlink can carry. The price is the\n"
              "signaling column — and that it is not TCP, which is the paper's whole\n"
              "deployment objection to this class.\n");
  return 0;
}
