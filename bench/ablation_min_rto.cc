// Ablation A7 — minimum RTO sensitivity in Mode 3.
//
// Mode 3's ~200 ms burst completion time is the Linux default min RTO, not
// a law of nature: with windows at 1 MSS, fast retransmit cannot engage
// (no three duplicate ACKs fit), so every loss costs one full RTO. This
// sweep shows BCT tracking min_rto almost linearly — and why datacenter
// operators tune min RTO down even though it does not fix the loss itself.
#include <cstdio>

#include "bench_util.h"
#include "core/incast_experiment.h"
#include "core/report.h"

int main() {
  using namespace incast;
  using namespace incast::sim::literals;

  core::print_header("Ablation A7", "min RTO sensitivity (Mode 3: 1500-flow, 15 ms bursts)");
  bench::print_scale_banner();
  const int bursts = bench::by_scale(3, 5, 11);

  core::Table t{{"min RTO", "drops", "timeouts", "avg BCT ms", "max BCT ms"}};
  for (const sim::Time min_rto : {1_ms, 5_ms, 20_ms, 50_ms, 200_ms}) {
    core::IncastExperimentConfig cfg;
    cfg.num_flows = 1500;
    cfg.burst_duration = 15_ms;
    cfg.num_bursts = bursts;
    cfg.discard_bursts = 1;
    cfg.tcp.cc = tcp::CcAlgorithm::kDctcp;
    cfg.tcp.rtt.min_rto = min_rto;
    cfg.tcp.rtt.initial_rto = min_rto;
    cfg.seed = 47;
    const auto r = core::run_incast_experiment(cfg);
    t.add_row({min_rto.to_string(), std::to_string(r.queue_drops),
               std::to_string(r.timeouts), core::fmt(r.avg_bct_ms, 1),
               core::fmt(r.max_bct_ms, 1)});
  }
  t.print();
  std::printf("\nExpectation: losses are roughly constant (the overflow is structural),\n"
              "but BCT collapses from ~200 ms toward the burst length as min RTO\n"
              "shrinks — recovery latency, not loss volume, dominates Mode 3.\n");
  return 0;
}
