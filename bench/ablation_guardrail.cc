// Ablation A4 — the Section 5.1 guardrail proposal.
//
// "Hosts could predict the scale of congestion and adjust their rates
// proactively" (Section 1) — and Section 5.1 suggests "simple guardrails
// that prevent TCP from ramping up excessively during incast". We
// implement exactly that: a FlowCountPredictor learns the service's
// per-burst flow-count distribution (stable per Section 3.3), and each
// sender caps its cwnd so the p99-predicted incast fits BDP + K. This
// bench compares vanilla DCTCP against the guardrail across flow counts.
#include <cmath>
#include <cstdio>

#include "bench_util.h"
#include "core/incast_experiment.h"
#include "core/predictor.h"
#include "core/report.h"

namespace {

using namespace incast;
using namespace incast::sim::literals;

core::IncastExperimentConfig config(int flows, std::optional<std::int64_t> cap,
                                    int bursts) {
  core::IncastExperimentConfig cfg;
  cfg.num_flows = flows;
  cfg.burst_duration = 15_ms;
  cfg.num_bursts = bursts;
  cfg.discard_bursts = 1;
  cfg.tcp.cc = tcp::CcAlgorithm::kDctcp;
  cfg.tcp.rtt.min_rto = 200_ms;
  cfg.tcp.cwnd_cap_bytes = cap;
  cfg.seed = 37;
  return cfg;
}

}  // namespace

int main() {
  core::print_header("Ablation A4", "Predictor-driven cwnd guardrail vs vanilla DCTCP");
  bench::print_scale_banner();
  const int bursts = bench::by_scale(3, 6, 11);

  constexpr std::int64_t kBdp = 37'500;          // 10 Gbps x 30 us
  constexpr std::int64_t kEcn = 65 * 1500;       // marking threshold in bytes
  constexpr std::int64_t kMss = 1460;

  core::Table t{{"flows", "variant", "cap (MSS)", "peak queue", "avg queue",
                 "straggler cwnd", "drops", "avg BCT ms"}};
  for (const int flows : {50, 100, 200}) {
    // The predictor observes a history drawn around the true flow count,
    // as a host would from past bursts of its service.
    sim::Rng rng{static_cast<std::uint64_t>(flows)};
    core::FlowCountPredictor predictor;
    for (int i = 0; i < 300; ++i) {
      predictor.observe(
          static_cast<int>(rng.lognormal(std::log(static_cast<double>(flows)), 0.2)));
    }
    const std::int64_t cap =
        core::suggest_cwnd_cap_bytes(predictor.predict_p99(), kBdp, kEcn, kMss);

    const auto vanilla = core::run_incast_experiment(config(flows, std::nullopt, bursts));
    const auto guarded = core::run_incast_experiment(config(flows, cap, bursts));

    t.add_row({std::to_string(flows), "vanilla DCTCP", "-",
               core::fmt(vanilla.peak_queue_packets, 0),
               core::fmt(vanilla.avg_queue_packets, 0),
               core::fmt(vanilla.end_of_burst_cwnd_max_mss, 1),
               std::to_string(vanilla.queue_drops), core::fmt(vanilla.avg_bct_ms, 2)});
    t.add_row({std::to_string(flows), "guardrail (p99 forecast)",
               core::fmt(static_cast<double>(cap) / kMss, 1),
               core::fmt(guarded.peak_queue_packets, 0),
               core::fmt(guarded.avg_queue_packets, 0),
               core::fmt(guarded.end_of_burst_cwnd_max_mss, 1),
               std::to_string(guarded.queue_drops), core::fmt(guarded.avg_bct_ms, 2)});
  }
  t.print();
  std::printf("\nExpectation: the guardrail removes the straggler ramp-up (end-of-burst\n"
              "cwnd pinned at the cap) and with it the start-of-burst queue spike,\n"
              "while completion times stay near optimal — TCP remains responsive\n"
              "because only the ceiling, not the control law, changed.\n");
  return 0;
}
