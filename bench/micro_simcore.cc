// M1 — microbenchmarks of the simulator core (google-benchmark).
//
// These do not reproduce a paper figure; they characterize the substrate's
// raw speed so users can budget experiment sizes: event queue throughput,
// RNG draws, queue operations, and end-to-end packets/second through the
// dumbbell with a real TCP flow.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <memory>
#include <new>

#include "core/fabric_experiment.h"
#include "core/fleet_experiment.h"
#include "core/incast_experiment.h"
#include "core/scaling_experiment.h"
#include "sim/domain.h"
#include "net/topology.h"
#include "obs/hub.h"
#include "sim/auditor.h"
#include "sim/event_queue.h"
#include "sim/random.h"
#include "sim/simulator.h"
#include "sim/sweep.h"
#include "tcp/tcp_connection.h"
#include "workload/service_profile.h"

// Every global heap allocation in this binary bumps this counter, letting
// the dispatch benchmark assert the kernel's zero-allocation steady-state
// contract instead of just timing it. The replacement operators must live at
// global scope; array and nothrow forms route through these by default.
std::atomic<std::uint64_t> g_heap_allocs{0};

void* operator new(std::size_t size) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc{};
}

void* operator new(std::size_t size, std::align_val_t align) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  void* p = nullptr;
  const auto al = std::max(static_cast<std::size_t>(align), sizeof(void*));
  if (posix_memalign(&p, al, size ? size : 1) != 0) throw std::bad_alloc{};
  return p;
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace {

using namespace incast;
using namespace incast::sim::literals;

void BM_EventQueuePushPop(benchmark::State& state) {
  sim::EventQueue q;
  std::int64_t t = 0;
  for (auto _ : state) {
    for (int i = 0; i < 64; ++i) {
      q.push(sim::Time::nanoseconds(t + (i * 37) % 1000), [] {});
    }
    while (!q.empty()) {
      benchmark::DoNotOptimize(q.pop());
    }
    t += 1000;
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_EventQueuePushPop);

// Self-rescheduling plain functor for BM_SimulatorEventDispatch: a 16-byte
// capture, well under the kernel's inline budget.
struct Tick {
  sim::Simulator* sim;
  int* count;
  void operator()() const {
    if (++*count < 10'000) {
      sim->schedule_in(sim::Time::nanoseconds(100), Tick{sim, count});
    }
  }
};

void BM_SimulatorEventDispatch(benchmark::State& state) {
  // 10k chained timer events through the full kernel hot path. Beyond
  // timing, this asserts the zero-allocation contract: after a short
  // warm-up lets the heap and slab reach working depth, the remaining
  // ~9900 events must not touch the global heap at all.
  std::uint64_t steady_allocs = 0;
  for (auto _ : state) {
    sim::Simulator sim;
    int count = 0;
    sim.schedule_in(100_ns, Tick{&sim, &count});
    sim.run_until(sim::Time::microseconds(10));  // warm-up: ~100 events
    const std::uint64_t before = g_heap_allocs.load(std::memory_order_relaxed);
    sim.run();
    steady_allocs += g_heap_allocs.load(std::memory_order_relaxed) - before;
    benchmark::DoNotOptimize(count);
  }
  state.SetItemsProcessed(state.iterations() * 10'000);
  state.counters["steady_allocs"] = static_cast<double>(steady_allocs);
  if (steady_allocs != 0) {
    state.SkipWithError("steady-state dispatch allocated on the heap");
  }
}
BENCHMARK(BM_SimulatorEventDispatch);

void BM_EventQueueCancelHeavy(benchmark::State& state) {
  // The TCP RTO pattern: every ACK cancels the pending retransmission
  // timer and schedules a replacement further out, so most scheduled
  // events die before they fire. Generation-stamped slots make each
  // cancel O(1) with no hashing; the dead heap entries are skipped lazily
  // when they surface at the root.
  sim::EventQueue q;
  q.reserve(128);
  std::int64_t t = 0;
  for (auto _ : state) {
    sim::EventId rto = sim::kInvalidEventId;
    for (int i = 0; i < 64; ++i) {
      if (rto != sim::kInvalidEventId) q.cancel(rto);
      rto = q.push(sim::Time::nanoseconds(t + 1'000'000 + i), [] {});
      q.push(sim::Time::nanoseconds(t + i), [] {});
    }
    while (!q.empty()) benchmark::DoNotOptimize(q.pop());
    t += 2'000'000;
  }
  state.SetItemsProcessed(state.iterations() * 128);
}
BENCHMARK(BM_EventQueueCancelHeavy);

void BM_RngLognormal(benchmark::State& state) {
  sim::Rng rng{7};
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.lognormal(5.0, 0.4));
  }
}
BENCHMARK(BM_RngLognormal);

void BM_QueueEnqueueDequeue(benchmark::State& state) {
  net::DropTailQueue q{{.capacity_packets = 1333, .ecn_threshold_packets = 65}};
  const net::Packet p = net::make_data_packet(0, 1, 1, 0, 1460);
  for (auto _ : state) {
    for (int i = 0; i < 64; ++i) (void)q.enqueue(p);
    while (auto out = q.dequeue()) benchmark::DoNotOptimize(*out);
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_QueueEnqueueDequeue);

void BM_CompositeQueueTrim(benchmark::State& state) {
  // The trimming hot path: a CompositeQueue whose data ring is kept full,
  // so half of every batch is admitted and half is trimmed onto the
  // strict-priority header ring. Covers the admission check, the trim
  // (payload cut + CE mark), and the two-ring dequeue order.
  net::DropTailQueue::Config cfg;
  cfg.capacity_packets = 32;
  cfg.ecn_threshold_packets = 0;
  cfg.discipline = net::QueueDiscipline::kTrimming;
  net::CompositeQueue q{cfg};
  const net::Packet p = net::make_data_packet(0, 1, 1, 0, 1460);
  for (auto _ : state) {
    for (int i = 0; i < 64; ++i) (void)q.enqueue(p);
    while (auto out = q.dequeue()) benchmark::DoNotOptimize(*out);
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_CompositeQueueTrim);

void BM_EndToEndTcpTransfer(benchmark::State& state) {
  // Packets/second through the full stack: dumbbell topology, DCTCP flow,
  // 1 MB transfers.
  for (auto _ : state) {
    sim::Simulator sim;
    net::Dumbbell topo{sim, net::DumbbellConfig{.num_senders = 1}};
    tcp::TcpConfig cfg;
    cfg.cc = tcp::CcAlgorithm::kDctcp;
    tcp::TcpConnection conn{sim, topo.sender(0), topo.receiver(0), 1, cfg};
    conn.sender().add_app_data(1'000'000);
    sim.run();
    benchmark::DoNotOptimize(conn.receiver().rcv_nxt());
  }
  // ~685 data packets + as many ACKs per iteration.
  state.SetItemsProcessed(state.iterations() * 1370);
}
BENCHMARK(BM_EndToEndTcpTransfer);

void BM_IncastBurst100Flows(benchmark::State& state) {
  // Cost of one complete 100-flow, 2 ms incast experiment (2 bursts).
  for (auto _ : state) {
    core::IncastExperimentConfig cfg;
    cfg.num_flows = 100;
    cfg.burst_duration = 2_ms;
    cfg.num_bursts = 2;
    cfg.discard_bursts = 1;
    cfg.queue_sample_every = 100_us;
    cfg.tcp.cc = tcp::CcAlgorithm::kDctcp;
    benchmark::DoNotOptimize(core::run_incast_experiment(cfg));
  }
}
BENCHMARK(BM_IncastBurst100Flows)->Unit(benchmark::kMillisecond);

void BM_PfcIncast(benchmark::State& state) {
  // The lossless data path under load: the same incast shape as
  // BM_IncastBurst100Flows but on a PFC-enabled dumbbell with DCQCN, so
  // every hop charges VIQs, emits pause/resume frames, and rides the
  // strict-priority control path. Events/sec here prices the per-packet
  // PFC accounting against the drop-tail rows.
  std::uint64_t events = 0;
  for (auto _ : state) {
    core::IncastExperimentConfig cfg;
    cfg.num_flows = 64;
    cfg.burst_duration = 2_ms;
    cfg.num_bursts = 2;
    cfg.discard_bursts = 1;
    cfg.queue_sample_every = 100_us;
    cfg.topology.pfc = net::LosslessInputQueue::Config{};
    cfg.topology.switch_queue.capacity_packets = 100'000;
    cfg.tcp.cc = tcp::CcAlgorithm::kDcqcn;
    const auto r = core::run_incast_experiment(cfg);
    events += r.events_processed;
    benchmark::DoNotOptimize(r.avg_bct_ms);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(events));
}
BENCHMARK(BM_PfcIncast)->Unit(benchmark::kMillisecond);

void BM_TracerOverhead(benchmark::State& state, bool traced) {
  // The same 100-flow incast as BM_IncastBurst100Flows, with the
  // observability hub detached (off) or fully tracing (on). The off row
  // must match BM_IncastBurst100Flows: a null hub pointer is the entire
  // disabled path, so observability stays free when unused. The on/off
  // ratio is the honest price of full tracing.
  for (auto _ : state) {
    std::unique_ptr<obs::Hub> hub;
    if (traced) {
      hub = std::make_unique<obs::Hub>();
      hub->tracer().set_enabled(true);
    }
    core::IncastExperimentConfig cfg;
    cfg.num_flows = 100;
    cfg.burst_duration = 2_ms;
    cfg.num_bursts = 2;
    cfg.discard_bursts = 1;
    cfg.queue_sample_every = 100_us;
    cfg.tcp.cc = tcp::CcAlgorithm::kDctcp;
    cfg.hub = hub.get();
    benchmark::DoNotOptimize(core::run_incast_experiment(cfg));
    if (hub) benchmark::DoNotOptimize(hub->tracer().events().size());
  }
}
BENCHMARK_CAPTURE(BM_TracerOverhead, off, false)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_TracerOverhead, on, true)->Unit(benchmark::kMillisecond);

void BM_AuditorOverhead(benchmark::State& state, bool audited) {
  // The always-on price of the invariant auditor on the kernel's hottest
  // path: the same 10k chained timer events as BM_SimulatorEventDispatch,
  // with a relaxed-mode auditor attached (relaxed) or none (off). The
  // relaxed/off throughput ratio is gated in CI at <= 3% slowdown — the
  // auditor must stay cheap enough to leave on everywhere.
  //
  // A 3% signal drowns in run-to-run frequency/thermal noise if the two
  // rows execute at different times, so BOTH modes run in every iteration
  // of BOTH rows, back to back, and each row manually reports only its own
  // mode's time — the pair always shares one noise environment.
  //
  // Like the dispatch bench, the relaxed row also asserts the
  // zero-allocation contract: relaxed-mode checks are counter updates and
  // compares, never heap traffic.
  sim::Auditor auditor;
  std::uint64_t steady_allocs = 0;
  for (auto _ : state) {
    double elapsed[2] = {0.0, 0.0};
    for (int pass = 0; pass < 2; ++pass) {  // 0 = off, 1 = relaxed
      sim::Simulator sim;
#if INCAST_AUDIT_ENABLED
      if (pass == 1) sim.set_auditor(&auditor);
#endif
      int count = 0;
      sim.schedule_in(100_ns, Tick{&sim, &count});
      sim.run_until(sim::Time::microseconds(10));  // warm-up: ~100 events
      const std::uint64_t before = g_heap_allocs.load(std::memory_order_relaxed);
      const auto t0 = std::chrono::steady_clock::now();
      sim.run();
      const auto t1 = std::chrono::steady_clock::now();
      if (pass == 1) {
        steady_allocs += g_heap_allocs.load(std::memory_order_relaxed) - before;
      }
      elapsed[pass] = std::chrono::duration<double>(t1 - t0).count();
      benchmark::DoNotOptimize(count);
    }
    state.SetIterationTime(elapsed[audited ? 1 : 0]);
  }
  state.SetItemsProcessed(state.iterations() * 10'000);
  state.counters["steady_allocs"] = static_cast<double>(steady_allocs);
  if (audited && steady_allocs != 0) {
    state.SkipWithError("relaxed auditing allocated on the heap");
  }
}
// Pinned repetitions (overriding --benchmark_repetitions): the CI gate
// compares these two rows against each other, and best-of-7 lets both
// rows' maxima converge to their true peak so the ratio is not at the
// mercy of one noisy repetition window.
BENCHMARK_CAPTURE(BM_AuditorOverhead, off, false)
    ->UseManualTime()
    ->Repetitions(7);
BENCHMARK_CAPTURE(BM_AuditorOverhead, relaxed, true)
    ->UseManualTime()
    ->Repetitions(7);

void BM_FlowTraceOverhead(benchmark::State& state, int variant) {
  // The tail autopsy's price at its three operating points, on the same
  // 100-flow incast as BM_IncastBurst100Flows:
  //
  //   off  — no tracer attached: every hook is a cached-nullptr branch
  //   idle — tracer attached but sampling 1-in-1e9: senders cache nullptr
  //          at construction, ports test a false `flow_traced` bit per
  //          packet — the cost a sampled production run pays for the flows
  //          it does NOT trace
  //   on   — every flow traced: the honest price of full attribution
  //
  // CI gates idle within 3% of off (check_bench_regression.py --ratio), so
  // enabling sampled tracing fleet-wide stays effectively free. Like
  // BM_AuditorOverhead, a 3% signal drowns in frequency/thermal noise if
  // the rows run at different times — so ALL THREE variants run in every
  // iteration of every row, back to back, each row manually reporting only
  // its own variant's time.
  for (auto _ : state) {
    double elapsed[3] = {0.0, 0.0, 0.0};
    for (int pass = 0; pass < 3; ++pass) {  // 0 = off, 1 = idle, 2 = on
      core::IncastExperimentConfig cfg;
      cfg.num_flows = 100;
      cfg.burst_duration = 2_ms;
      cfg.num_bursts = 2;
      cfg.discard_bursts = 1;
      cfg.queue_sample_every = 100_us;
      cfg.tcp.cc = tcp::CcAlgorithm::kDctcp;
      cfg.flow_trace = pass > 0;
      cfg.flow_trace_sample_every = pass == 1 ? 1'000'000'000 : 1;
      const auto t0 = std::chrono::steady_clock::now();
      const auto r = core::run_incast_experiment(cfg);
      const auto t1 = std::chrono::steady_clock::now();
      elapsed[pass] = std::chrono::duration<double>(t1 - t0).count();
      benchmark::DoNotOptimize(r.avg_bct_ms);
    }
    state.SetIterationTime(elapsed[variant]);
  }
}
BENCHMARK_CAPTURE(BM_FlowTraceOverhead, off, 0)
    ->Unit(benchmark::kMillisecond)
    ->UseManualTime()
    ->Repetitions(7);
BENCHMARK_CAPTURE(BM_FlowTraceOverhead, idle, 1)
    ->Unit(benchmark::kMillisecond)
    ->UseManualTime()
    ->Repetitions(7);
BENCHMARK_CAPTURE(BM_FlowTraceOverhead, on, 2)
    ->Unit(benchmark::kMillisecond)
    ->UseManualTime()
    ->Repetitions(7);

// Terminal node for BM_SwitchEcmpRoute: counts arrivals, drops the packet.
struct SinkNode final : net::Node {
  using net::Node::Node;
  std::int64_t received{0};
  void receive(net::Packet /*p*/, std::size_t /*in_port*/) override { ++received; }
};

void BM_SwitchEcmpRoute(benchmark::State& state) {
  // The switch routing hot path: receive() over a 6-way ECMP group, flat
  // route tables + the open-addressed flow table. Beyond timing, this
  // asserts the routing zero-allocation contract at two levels:
  //
  //  * new_flow_allocs — after reserve_flows(), even the FIRST packet of a
  //    never-seen flow routes without heap traffic. This is exactly where
  //    the old unordered_map ECMP state allocated a node per flow.
  //  * steady_allocs   — the timed loop (warm table, warm pools, warm
  //    slab) must never allocate at all.
  constexpr int kPorts = 6;
  constexpr int kFlows = 4096;
  constexpr net::NodeId kSinkId = 1;

  sim::Simulator sim;
  net::Switch sw{sim, 0, "sw"};
  SinkNode sink{sim, kSinkId, "sink"};
  (void)sink.add_port(sim::Bandwidth::gigabits_per_second(100), 100_ns,
                      {.capacity_packets = 1 << 20});
  std::vector<std::size_t> uplinks;
  for (int i = 0; i < kPorts; ++i) {
    const std::size_t p = sw.add_port(sim::Bandwidth::gigabits_per_second(100), 100_ns,
                                      {.capacity_packets = 1 << 20});
    sw.port(p).connect(sink, 0);
    uplinks.push_back(p);
  }
  sw.set_ecmp_route(kSinkId, uplinks);
  sw.reserve_flows(2 * kFlows);

  auto pump = [&](net::FlowId flow_base) {
    for (int f = 0; f < kFlows; ++f) {
      sw.receive(net::make_data_packet(static_cast<net::NodeId>(100 + f), kSinkId,
                                       flow_base + static_cast<net::FlowId>(f), 0, 1460),
                 0);
    }
    sim.run();
  };

  pump(1);  // warm-up: packet pools, queue rings, event slab, first kFlows flows
  const std::uint64_t before = g_heap_allocs.load(std::memory_order_relaxed);
  pump(kFlows + 1);  // kFlows previously-unseen flows through the warm switch
  const std::uint64_t new_flow_allocs =
      g_heap_allocs.load(std::memory_order_relaxed) - before;

  std::uint64_t steady_allocs = 0;
  for (auto _ : state) {
    const std::uint64_t b = g_heap_allocs.load(std::memory_order_relaxed);
    pump(1);
    steady_allocs += g_heap_allocs.load(std::memory_order_relaxed) - b;
  }
  benchmark::DoNotOptimize(sink.received);
  state.SetItemsProcessed(state.iterations() * kFlows);
  state.counters["new_flow_allocs"] = static_cast<double>(new_flow_allocs);
  state.counters["steady_allocs"] = static_cast<double>(steady_allocs);
  if (new_flow_allocs != 0) {
    state.SkipWithError("routing a fresh flow allocated on the heap");
  }
  if (steady_allocs != 0) {
    state.SkipWithError("steady-state ECMP routing allocated on the heap");
  }
}
BENCHMARK(BM_SwitchEcmpRoute);

void BM_FatTreeIncast(benchmark::State& state) {
  // Events/second through a small two-tier fat-tree (2x2 leaves x 8 hosts,
  // 2 spines) running a cross-rack incast — the fabric substrate's
  // end-to-end cost including ECMP hashing and per-tier telemetry.
  std::uint64_t events = 0;
  for (auto _ : state) {
    core::FabricIncastExperimentConfig cfg;
    cfg.num_flows = 24;
    cfg.fabric.num_pods = 2;
    cfg.fabric.leaves_per_pod = 2;
    cfg.fabric.hosts_per_leaf = 8;
    cfg.fabric.num_spines = 2;
    cfg.burst_duration = 2_ms;
    cfg.num_bursts = 2;
    cfg.discard_bursts = 1;
    cfg.queue_sample_every = 100_us;
    cfg.tcp.cc = tcp::CcAlgorithm::kDctcp;
    const auto r = core::run_fabric_incast_experiment(cfg);
    events += r.events_processed;
    benchmark::DoNotOptimize(r.avg_bct_ms);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(events));
}
BENCHMARK(BM_FatTreeIncast)->Unit(benchmark::kMillisecond);

void BM_SweepRunnerScaling(benchmark::State& state) {
  // Fleet-grid throughput by worker count: a 12-trace (host, snapshot)
  // sweep run on state.range(0) SweepRunner threads. items/sec counts
  // simulator events, so comparing the Arg(1) and Arg(4) rows gives the
  // parallel speedup on this machine (results are byte-identical across
  // rows; only wall time changes).
  core::FleetConfig cfg;
  cfg.profile = workload::service_by_name("messaging");
  cfg.profile.max_flows = 40;
  cfg.profile.body_median_flows = 20.0;
  cfg.num_hosts = 4;
  cfg.num_snapshots = 3;
  cfg.trace_duration = sim::Time::milliseconds(100);
  cfg.tcp.cc = tcp::CcAlgorithm::kDctcp;
  cfg.tcp.rtt.min_rto = 200_ms;
  cfg.jobs = static_cast<int>(state.range(0));
  const core::FleetExperiment exp{cfg};

  std::uint64_t events = 0;
  for (auto _ : state) {
    const auto results = exp.run_all();
    events += exp.last_sweep().total_events;
    benchmark::DoNotOptimize(results.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(events));
  state.counters["jobs"] = static_cast<double>(cfg.jobs <= 0 ? 0 : cfg.jobs);
}
BENCHMARK(BM_SweepRunnerScaling)->Arg(1)->Arg(2)->Arg(4)->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()->UseRealTime();

void BM_ParallelFabric(benchmark::State& state) {
  // One fixed degree-24 incast point on the PR-2 smoke fabric (2x2 leaves x
  // 8 hosts, 2 spines), run on the engine state.range(0) selects: 0 = the
  // legacy single-queue engine, N >= 1 = the conservative windowed engine
  // with N rack domains (sim/parallel_simulator.h). Rows 0 vs 1 price the
  // windowed engine's sequential overhead (keyed heap, window bookkeeping,
  // barrier machinery at domain count one); rows 1 vs 2 give the intra-run
  // speedup on this machine — real_time falls while process_time holds.
  // items/sec counts simulator events. Byte identity across rows >= 1 is
  // gated by the ParallelFabricDeterminism suite and the CI cmp smoke, not
  // here; this bench only prices the decomposition.
  core::ScalingConfig cfg;
  cfg.fabric.num_pods = 2;
  cfg.fabric.leaves_per_pod = 2;
  cfg.fabric.hosts_per_leaf = 8;
  cfg.fabric.aggs_per_pod = 0;
  cfg.fabric.num_spines = 2;
  cfg.bytes_per_flow = 27'000;
  cfg.tcp.cc = tcp::CcAlgorithm::kDctcp;
  cfg.seed = 11;
  cfg.domains = static_cast<int>(state.range(0));

  std::uint64_t events = 0;
  std::uint64_t bridged = 0;
  for (auto _ : state) {
    const core::ScalingPoint p =
        core::run_scaling_point(cfg, /*degree=*/24, cfg.seed, nullptr);
    events += p.events_processed;
    bridged += p.packets_bridged;
    benchmark::DoNotOptimize(p.fct_ms);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(events));
  state.counters["domains"] = static_cast<double>(cfg.domains);
  state.counters["bridged"] = benchmark::Counter(
      static_cast<double>(bridged), benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_ParallelFabric)->Arg(0)->Arg(1)->Arg(2)->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()->UseRealTime();

void BM_DomainMailbox(benchmark::State& state) {
  // The cross-domain handoff in isolation: during a window each producer
  // domain appends to its private (src, dst) mailbox — a plain vector push,
  // no locks — and at the barrier the coordinator walks and clears every
  // box. state.range(0) is the domain count; 64 entries per directed pair
  // approximates a saturated window on the smoke fabric. items/sec counts
  // entries through the full post -> walk -> clear round trip, so this is
  // the ceiling on mailbox throughput the fabric bridge can ever see.
  struct Entry {
    sim::Time at;
    std::uint64_t key;
    std::uint64_t payload;
  };
  const int domains = static_cast<int>(state.range(0));
  sim::MailboxGrid<Entry> grid{domains};
  constexpr std::uint64_t kPerPair = 64;

  std::uint64_t moved = 0;
  for (auto _ : state) {
    for (int src = 0; src < domains; ++src) {
      for (int dst = 0; dst < domains; ++dst) {
        if (src == dst) continue;  // diagonal stays on the direct path
        for (std::uint64_t i = 0; i < kPerPair; ++i) {
          grid.box(src, dst).post(
              {sim::Time::nanoseconds(static_cast<std::int64_t>(i)),
               sim::make_event_key(static_cast<std::uint64_t>(src) + 1, i), i});
        }
      }
    }
    std::uint64_t checksum = 0;
    for (int src = 0; src < domains; ++src) {
      for (int dst = 0; dst < domains; ++dst) {
        if (src == dst) continue;
        auto& box = grid.box(src, dst);
        for (const Entry& e : box.entries()) checksum += e.key;
        moved += box.entries().size();
        box.clear();
      }
    }
    benchmark::DoNotOptimize(checksum);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(moved));
  state.counters["domains"] = static_cast<double>(domains);
}
BENCHMARK(BM_DomainMailbox)->Arg(2)->Arg(8)->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
