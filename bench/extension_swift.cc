// Extension E1 — Swift-style delay-based control vs DCTCP (Section 5.2).
//
// The paper argues that Swift's pacing mode "enables O(10k) incast" but
// "is useful only for long incasts": for 5000 flows Swift presents a
// 20-second experiment, whereas production incast bursts complete in
// milliseconds. With SwiftCc and sub-MSS pacing in the stack, both halves
// of that argument can be measured:
//
//   (a) long sustained incast — Swift holds a tiny queue with zero loss
//       at flow counts where window-based DCTCP is pinned at the
//       degenerate point or overflowing;
//   (b) millisecond bursts — Swift's infrequent probing has no time to
//       converge, and completion times blow out versus DCTCP.
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_util.h"
#include "core/incast_experiment.h"
#include "core/report.h"
#include "net/topology.h"
#include "sim/random.h"
#include "tcp/tcp_connection.h"

namespace {

using namespace incast;
using namespace incast::sim::literals;

tcp::TcpConfig tcp_config(tcp::CcAlgorithm algo) {
  tcp::TcpConfig cfg;
  cfg.cc = algo;
  cfg.cc_config.initial_window_segments = algo == tcp::CcAlgorithm::kSwift ? 1 : 10;
  cfg.rtt.min_rto = 200_ms;
  return cfg;
}

struct SteadyOutcome {
  std::int64_t drops{0};
  double avg_queue{0.0};
  double goodput_gbps{0.0};
};

// Sustained incast: every flow has continuous demand; measure the second
// half of the run (post-convergence).
SteadyOutcome run_steady(tcp::CcAlgorithm algo, int flows, sim::Time duration) {
  sim::Simulator sim;
  net::DumbbellConfig topo_cfg;
  topo_cfg.num_senders = flows;
  net::Dumbbell topo{sim, topo_cfg};
  const tcp::TcpConfig cfg = tcp_config(algo);

  std::vector<std::unique_ptr<tcp::TcpConnection>> conns;
  sim::Rng rng{7};
  for (int i = 0; i < flows; ++i) {
    conns.push_back(std::make_unique<tcp::TcpConnection>(
        sim, topo.sender(i), topo.receiver(0), static_cast<net::FlowId>(i + 1), cfg));
    tcp::TcpSender* s = &conns.back()->sender();
    sim.schedule_in(rng.uniform_time(sim::Time::zero(), 10_ms),
                    [s] { s->add_app_data(1'000'000'000); });
  }

  const sim::Time half = duration / 2.0;
  sim.run_until(half);
  const std::int64_t drops0 = topo.bottleneck_queue().stats().dropped_packets;
  std::int64_t rcv0 = 0;
  for (const auto& c : conns) rcv0 += c->receiver().rcv_nxt();

  std::vector<std::int64_t> depths;
  for (int i = 0; i < 200; ++i) {
    sim.schedule_at(half + (duration - half) * (static_cast<double>(i) / 200.0),
                    [&] { depths.push_back(topo.bottleneck_queue().packets()); });
  }
  sim.run_until(duration);

  SteadyOutcome out;
  out.drops = topo.bottleneck_queue().stats().dropped_packets - drops0;
  for (const auto d : depths) out.avg_queue += static_cast<double>(d);
  out.avg_queue /= static_cast<double>(depths.size());
  std::int64_t rcv1 = 0;
  for (const auto& c : conns) rcv1 += c->receiver().rcv_nxt();
  out.goodput_gbps = static_cast<double>(rcv1 - rcv0) * 8.0 / (duration - half).sec() / 1e9;
  return out;
}

}  // namespace

int main() {
  core::print_header("Extension E1", "Swift (delay-based, paced) vs DCTCP under incast");
  bench::print_scale_banner();
  const sim::Time steady_len = bench::by_scale(400_ms, 1_s, 2_s);
  const std::vector<int> steady_flows =
      bench::by_scale(std::vector<int>{500}, std::vector<int>{500, 2000},
                      std::vector<int>{500, 2000, 5000});

  std::printf("\n(a) Sustained incast (%s, second half measured)\n",
              steady_len.to_string().c_str());
  core::Table steady{{"flows", "cca", "avg queue (pkts)", "drops", "goodput (Gbps)"}};
  for (const int flows : steady_flows) {
    for (const auto algo : {tcp::CcAlgorithm::kDctcp, tcp::CcAlgorithm::kSwift}) {
      const auto o = run_steady(algo, flows, steady_len);
      steady.add_row({std::to_string(flows), tcp::to_string(algo),
                      core::fmt(o.avg_queue, 0), std::to_string(o.drops),
                      core::fmt(o.goodput_gbps, 2)});
    }
  }
  steady.print();
  std::printf("Expectation: Swift's sub-MSS pacing keeps the queue near its delay\n"
              "target with zero loss even at thousands of flows; DCTCP's 1-MSS floor\n"
              "pins the queue at (flows - BDP) and overflows past ~1300 flows.\n");

  std::printf("\n(b) Millisecond bursts (15 ms, paper Section 4 workload)\n");
  core::Table bursts{{"flows", "cca", "drops", "timeouts", "avg BCT ms"}};
  const int nbursts = bench::by_scale(3, 4, 11);
  for (const int flows : {500, 1500}) {
    for (const auto algo : {tcp::CcAlgorithm::kDctcp, tcp::CcAlgorithm::kSwift}) {
      core::IncastExperimentConfig cfg;
      cfg.num_flows = flows;
      cfg.burst_duration = 15_ms;
      cfg.num_bursts = nbursts;
      cfg.discard_bursts = 1;
      cfg.tcp = tcp_config(algo);
      cfg.max_sim_time = sim::Time::seconds(60);
      cfg.seed = 7;
      const auto r = core::run_incast_experiment(cfg);
      bursts.add_row({std::to_string(flows), tcp::to_string(algo),
                      std::to_string(r.queue_drops), std::to_string(r.timeouts),
                      core::fmt(r.avg_bct_ms, 1)});
    }
  }
  bursts.print();
  std::printf("Expectation: the tables invert. On millisecond bursts Swift's paced,\n"
              "infrequent probing cannot converge before the burst ends (stale\n"
              "feedback, RTO-bound recovery), while DCTCP completes near-optimally up\n"
              "to its degenerate point — the paper's Section 5.2 argument, measured.\n");
  return 0;
}
