// Extension E2 — staged incast scheduling (the Section 5.2 proposal).
//
// "Divide, or schedule, a large incast into a series of smaller incasts
// where only a manageable number of flows are active at once. With fewer
// flows, each would operate in a healthier CWND regime, both for TCP and
// the receiving host."
//
// StagedIncastDriver admits at most G flows concurrently (a sliding
// window, as a receiver-driven puller would). Aggregate demand and the
// bottleneck are identical to the unstaged workload, so the ideal
// completion time is unchanged; the question is purely how much loss and
// recovery latency the schedule removes.
#include <cstdio>

#include "bench_util.h"
#include "core/report.h"
#include "net/topology.h"
#include "workload/cyclic_incast.h"
#include "workload/staged_incast.h"

namespace {

using namespace incast;
using namespace incast::sim::literals;

tcp::TcpConfig tcp_config() {
  tcp::TcpConfig cfg;
  cfg.cc = tcp::CcAlgorithm::kDctcp;
  cfg.rtt.min_rto = 200_ms;
  return cfg;
}

struct Outcome {
  std::int64_t drops{0};
  std::int64_t timeouts{0};
  double avg_bct_ms{0.0};
};

template <typename Driver, typename Config>
Outcome run(int flows, Config cfg, std::uint64_t seed) {
  sim::Simulator sim;
  net::DumbbellConfig topo_cfg;
  topo_cfg.num_senders = flows;
  net::Dumbbell topo{sim, topo_cfg};
  Driver driver{sim, topo, tcp_config(), cfg, seed};

  // Frame the measurement after burst 0 (slow start), as everywhere else.
  std::int64_t drops0 = 0;
  std::int64_t timeouts0 = 0;
  auto senders = driver.senders();
  driver.start();
  sim.run_until(sim::Time::seconds(120));

  Outcome out;
  const auto& bursts = driver.bursts();
  double bct = 0.0;
  int n = 0;
  for (const auto& b : bursts) {
    if (b.index == 0) continue;
    bct += b.completion_time().ms();
    ++n;
  }
  out.avg_bct_ms = n > 0 ? bct / n : -1.0;
  out.drops = topo.bottleneck_queue().stats().dropped_packets - drops0;
  for (const auto* s : senders) out.timeouts += s->stats().timeouts;
  out.timeouts -= timeouts0;
  return out;
}

}  // namespace

int main() {
  core::print_header("Extension E2",
                     "Staged incast scheduling vs all-at-once (15 ms bursts, DCTCP)");
  bench::print_scale_banner();
  const int nbursts = bench::by_scale(2, 3, 11);

  core::Table t{{"flows", "schedule", "drops (all bursts)", "timeouts", "avg BCT ms",
                 "vs ideal 15 ms"}};
  for (const int flows : {500, 1500, 3000}) {
    workload::CyclicIncastDriver::Config un;
    un.num_flows = flows;
    un.num_bursts = nbursts;
    un.burst_duration = 15_ms;
    const Outcome unstaged = run<workload::CyclicIncastDriver>(flows, un, 31);

    workload::StagedIncastDriver::Config st;
    st.num_flows = flows;
    st.group_size = 60;  // below the degenerate point: 60 < K + BDP = 90
    st.num_bursts = nbursts;
    st.burst_duration = 15_ms;
    const Outcome staged = run<workload::StagedIncastDriver>(flows, st, 31);

    t.add_row({std::to_string(flows), "all-at-once", std::to_string(unstaged.drops),
               std::to_string(unstaged.timeouts), core::fmt(unstaged.avg_bct_ms, 1),
               core::fmt(unstaged.avg_bct_ms / 15.0, 1) + "x"});
    t.add_row({std::to_string(flows), "staged (G=60)", std::to_string(staged.drops),
               std::to_string(staged.timeouts), core::fmt(staged.avg_bct_ms, 1),
               core::fmt(staged.avg_bct_ms / 15.0, 1) + "x"});
  }
  t.print();

  std::printf("\nExpectation: aggregate demand and the bottleneck are identical, so\n"
              "staging costs almost nothing in completion time — but it removes the\n"
              "overflow entirely: each 60-flow stage runs in DCTCP's healthy Mode 1\n"
              "regime. This is why the paper argues scheduling 'need only serve as\n"
              "an enhancement rather than a replacement to TCP'.\n");
  return 0;
}
