// Figure 5 — "DCTCP operating modes, in terms of ToR queue length."
//
// The Section 4 dumbbell, 15 ms bursts, 11 bursts with the first
// discarded. Three flow counts show the three modes:
//   (a) 100 flows  — healthy: queue oscillates around K = 65 packets
//   (b) 500 flows  — degenerate point: standing queue ~ flows - BDP
//   (c) high count — overflow: drops, RTO-driven recovery, BCT ~ min RTO
//
// Note: the paper demonstrates mode 3 at 1000 flows, where its straggler
// ramp-up inflates the start-of-burst spike past capacity. Our completions
// are more synchronized, so the loss boundary sits at the paper's own
// steady-state formula K > queue + BDP (~1330 flows); we therefore run
// mode 3 at 1500 flows (see EXPERIMENTS.md).
#include <cstdio>
#include <cstring>

#include "bench_util.h"
#include "core/incast_experiment.h"
#include "core/report.h"

namespace {

using namespace incast;
using namespace incast::sim::literals;

core::IncastExperimentConfig mode_config(int flows, int bursts) {
  core::IncastExperimentConfig cfg;
  cfg.num_flows = flows;
  cfg.burst_duration = 15_ms;
  cfg.num_bursts = bursts;
  cfg.discard_bursts = 1;
  cfg.tcp.cc = tcp::CcAlgorithm::kDctcp;
  cfg.tcp.rtt.min_rto = 200_ms;
  cfg.queue_sample_every = 20_us;
  cfg.seed = 11;
  return cfg;
}

void print_queue_series(const core::IncastExperimentResult& r, sim::Time step) {
  // Queue length vs time since burst start, averaged over measured bursts,
  // printed at 250 us resolution.
  const std::size_t stride =
      static_cast<std::size_t>(sim::Time::microseconds(250).ns() / step.ns());
  std::printf("  t_ms  queue_pkts (mean over measured bursts)\n");
  for (std::size_t i = 0; i < r.mean_queue_by_offset.size(); i += stride) {
    std::printf("  %6.2f %7.1f\n", static_cast<double>(i) * step.ms(),
                r.mean_queue_by_offset[i]);
  }
}

}  // namespace

int main() {
  core::print_header("Figure 5",
                     "DCTCP operating modes, ToR queue length (capacity = 1333 pkts)");
  bench::print_scale_banner();
  const int bursts = bench::by_scale(4, 11, 11);

  struct Mode {
    const char* title;
    int flows;
    const char* expectation;
  };
  const Mode modes[] = {
      {"(a') Mode 1 | 60 flows | healthy; periodic (sub-degenerate regime)", 60,
       "queue oscillates around K=65 with unmarked dips; BCT ~ 15 ms"},
      {"(a) Mode 1 | 100 flows | near the degenerate point in this reproduction", 100,
       "queue holds just above K; BCT ~ 15 ms; no drops"},
      {"(b) Mode 2 | 500 flows | degenerate point", 500,
       "standing queue ~ flows - BDP = 475 pkts (~480us delay); BCT ~ 15 ms"},
      {"(c) Mode 3 | 1500 flows | timeouts", 1500,
       "overflow drops; recovery via RTO; BCT ~ 200 ms"},
  };

  core::Table summary{{"mode", "flows", "avg queue", "peak queue", "marked%", "drops",
                       "timeouts", "avg BCT ms", "max BCT ms"}};
  for (const Mode& mode : modes) {
    const auto cfg = mode_config(mode.flows, bursts);
    const auto r = core::run_incast_experiment(cfg);

    std::printf("\n%s\n  expectation: %s\n", mode.title, mode.expectation);
    print_queue_series(r, cfg.queue_sample_every);

    const std::string label{mode.title + 1, std::strchr(mode.title, ')') - mode.title - 1};
    summary.add_row({label, std::to_string(mode.flows),
                     core::fmt(r.avg_queue_packets, 0), core::fmt(r.peak_queue_packets, 0),
                     core::fmt(r.marked_fraction() * 100, 0),
                     std::to_string(r.queue_drops), std::to_string(r.timeouts),
                     core::fmt(r.avg_bct_ms, 1), core::fmt(r.max_bct_ms, 1)});
  }

  std::printf("\nSummary (averages over the measured bursts):\n");
  summary.print();
  std::printf("\nPaper comparison: Mode 1 oscillates near K=65 with near-optimal BCT;\n"
              "Mode 2 holds a standing queue of ~(flows - 25) packets with ~0.5 ms of\n"
              "added delay; Mode 3 overflows the queue, recovers only via ~200 ms RTOs,\n"
              "and stretches BCT by >10x.\n");
  return 0;
}
