// Ablation A1 — ECN marking threshold K.
//
// Section 2: production uses a threshold of 6.7% of queue capacity —
// higher than the DCTCP paper's recommendation — "to avoid underutilization
// when faced with host burstiness". This sweep shows the trade-off: small K
// keeps the queue (and latency) low but throttles the burst; large K admits
// more standing queue before DCTCP reacts.
#include <cstdio>

#include "bench_util.h"
#include "core/incast_experiment.h"
#include "core/report.h"

int main() {
  using namespace incast;
  using namespace incast::sim::literals;

  core::print_header("Ablation A1", "ECN marking threshold sweep (100-flow, 15 ms bursts)");
  bench::print_scale_banner();
  const int bursts = bench::by_scale(3, 6, 11);

  core::Table t{{"K (pkts)", "avg queue", "peak queue", "marked%", "drops", "avg BCT ms"}};
  for (const std::int64_t k : {5LL, 20LL, 65LL, 90LL, 200LL, 600LL}) {
    core::IncastExperimentConfig cfg;
    cfg.num_flows = 100;
    cfg.burst_duration = 15_ms;
    cfg.num_bursts = bursts;
    cfg.discard_bursts = 1;
    cfg.tcp.cc = tcp::CcAlgorithm::kDctcp;
    cfg.tcp.rtt.min_rto = 200_ms;
    cfg.topology.switch_queue.ecn_threshold_packets = k;
    cfg.seed = 19;
    const auto r = core::run_incast_experiment(cfg);
    t.add_row({std::to_string(k), core::fmt(r.avg_queue_packets, 1),
               core::fmt(r.peak_queue_packets, 0), core::fmt(r.marked_fraction() * 100, 0),
               std::to_string(r.queue_drops), core::fmt(r.avg_bct_ms, 2)});
  }
  t.print();
  std::printf("\nExpectation: the standing queue tracks K (DCTCP oscillates around the\n"
              "threshold); very small K sacrifices some completion time, very large K\n"
              "buys latency for nothing. The paper's simulation value is K=65.\n");
  return 0;
}
