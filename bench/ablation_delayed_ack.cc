// Ablation A5 — delayed ACKs on vs off.
//
// Section 4: "We disable the commonly used aggregation feature of TCP
// delayed ACKs because it exacerbates burstiness and masks the impact of
// DCTCP's congestion control algorithm." This ablation turns them back on
// (with the RFC 8257 receiver state machine keeping ECE accounting exact)
// and measures the difference.
#include <cstdio>

#include "bench_util.h"
#include "core/incast_experiment.h"
#include "core/report.h"

int main() {
  using namespace incast;
  using namespace incast::sim::literals;

  core::print_header("Ablation A5", "Delayed ACKs on/off (DCTCP incast)");
  bench::print_scale_banner();
  const int bursts = bench::by_scale(3, 6, 11);

  core::Table t{{"flows", "delayed ACK", "avg queue", "peak queue", "marked%", "drops",
                 "avg BCT ms"}};
  for (const int flows : {100, 500}) {
    for (const bool delack : {false, true}) {
      core::IncastExperimentConfig cfg;
      cfg.num_flows = flows;
      cfg.burst_duration = 15_ms;
      cfg.num_bursts = bursts;
      cfg.discard_bursts = 1;
      cfg.tcp.cc = tcp::CcAlgorithm::kDctcp;
      cfg.tcp.rtt.min_rto = 200_ms;
      cfg.tcp.delayed_ack = delack;
      cfg.tcp.ack_every_n_segments = 2;
      cfg.tcp.delayed_ack_timeout = 500_us;
      cfg.seed = 41;
      const auto r = core::run_incast_experiment(cfg);
      t.add_row({std::to_string(flows), delack ? "on" : "off",
                 core::fmt(r.avg_queue_packets, 1), core::fmt(r.peak_queue_packets, 0),
                 core::fmt(r.marked_fraction() * 100, 0), std::to_string(r.queue_drops),
                 core::fmt(r.avg_bct_ms, 2)});
    }
  }
  t.print();
  std::printf("\nExpectation: coalesced ACKs release sender windows in clumps, so\n"
              "queue excursions grow and DCTCP's feedback loop coarsens — the reason\n"
              "the paper disables the feature for its analysis.\n");
  return 0;
}
