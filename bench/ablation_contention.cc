// Ablation A9 — what rack-level contention does to a measured host.
//
// Section 3.4: "simultaneous burst events to other hosts on the same rack
// ... can consume shared switch memory and likely exacerbates a subset of
// incast bursts." The fleet harness supports three contention models; this
// ablation runs the same "aggregator" traces under each:
//
//   none      — the measured host owns the ToR buffer;
//   modeled   — a Markov on/off process pins 50-90% of the shared pool
//               ~10% of the time (the default used by the Figure 2-4
//               benches; cheap);
//   neighbor  — a second receiver on the rack runs the same service for
//               real, competing for the pool packet by packet.
#include <cstdio>

#include "bench_util.h"
#include "core/fleet_experiment.h"
#include "core/report.h"

int main() {
  using namespace incast;
  using namespace incast::sim::literals;

  core::print_header("Ablation A9", "Rack-level contention models ('aggregator' traces)");
  bench::print_scale_banner();

  const int hosts = bench::by_scale(1, 3, 8);
  const sim::Time trace = bench::by_scale(300_ms, 1_s, 2_s);

  core::Table t{{"contention", "bursts", "drops", "retx-free bursts", "p99 retx%",
                 "worst retx%", "unmarked bursts"}};

  using Mode = core::FleetConfig::ContentionMode;
  const struct {
    Mode mode;
    const char* name;
  } modes[] = {{Mode::kNone, "none"}, {Mode::kModeled, "modeled"},
               {Mode::kNeighbor, "neighbor"}};

  for (const auto& m : modes) {
    core::FleetConfig cfg;
    cfg.profile = workload::service_by_name("aggregator");
    cfg.num_hosts = hosts;
    cfg.num_snapshots = 1;
    cfg.trace_duration = trace;
    cfg.tcp.cc = tcp::CcAlgorithm::kDctcp;
    cfg.tcp.rtt.min_rto = 200_ms;
    cfg.contention_mode = m.mode;
    core::FleetExperiment exp{cfg};

    analysis::Cdf retx, marked;
    std::int64_t drops = 0;
    for (const auto& r : exp.run_all()) {
      drops += r.queue_drops;
      for (const auto& b : r.summary.bursts) {
        retx.add(b.retx_fraction() * 100.0);
        marked.add(b.marked_fraction() * 100.0);
      }
    }
    t.add_row({m.name, std::to_string(retx.count()), std::to_string(drops),
               core::fmt(100.0 * retx.fraction_below(0.01), 0) + "%",
               core::fmt(retx.percentile(99), 2), core::fmt(retx.max(), 1),
               core::fmt(100.0 * marked.fraction_below(0.5), 0) + "%"});
  }
  t.print();

  std::printf("\nExpectation: without contention, only the largest incasts overrun the\n"
              "Dynamic-Threshold self-limit. The modeled process — representing the\n"
              "aggregate footprint of *all* the ToR's other ports — produces the\n"
              "paper's rare-but-heavy loss tail. The single real neighbor barely\n"
              "moves the needle: one more ~10%-utilized host rarely bursts at the\n"
              "same instant, which is itself informative — rack-level contention is\n"
              "a many-port phenomenon, not a two-host one (add more neighbors for a\n"
              "first-principles version of the modeled curve).\n");
  return 0;
}
