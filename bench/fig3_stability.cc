// Figure 3 — "Within a service, the distribution of flow count during a
// burst is stable over time and across hosts."
//
//   (a) average flow count per snapshot over "18 hours" of periodic
//       snapshots: each service oscillates around its own operating point;
//       "video" switches between ~225 and ~275 as its scheduler changes
//       worker pools.
//   (b) per-host mean and p99 flow count for "aggregator": hosts look
//       alike.
#include <cstdio>

#include "analysis/stability.h"
#include "bench_util.h"
#include "core/fleet_experiment.h"
#include "core/report.h"

namespace {

using namespace incast;
using namespace incast::sim::literals;

core::FleetConfig base_config(const workload::ServiceProfile& profile) {
  core::FleetConfig cfg;
  cfg.profile = profile;
  cfg.tcp.cc = tcp::CcAlgorithm::kDctcp;
  cfg.tcp.rtt.min_rto = 200_ms;
  cfg.jobs = bench::jobs();
  return cfg;
}

}  // namespace

int main() {
  core::print_header("Figure 3", "Flow-count stability over time and across hosts");
  bench::print_scale_banner();

  const int snapshots = bench::by_scale(4, 12, 108);  // paper: 18 h / 10 min
  const int hosts_a = bench::by_scale(1, 2, 20);
  const int hosts_b = bench::by_scale(4, 8, 20);
  const sim::Time trace = bench::by_scale(200_ms, 500_ms, 2_s);

  // ---- (a) mean flow count per snapshot, per service -----------------------
  std::printf("\n(a) Average flow count per snapshot (columns: services)\n");
  std::printf("    snapshots=%d, hosts/snapshot=%d, trace=%s\n", snapshots, hosts_a,
              trace.to_string().c_str());

  std::vector<std::string> labels;
  // means[service][snapshot]
  std::vector<std::vector<double>> means;
  for (const auto& profile : workload::service_catalog()) {
    core::FleetConfig cfg = base_config(profile);
    cfg.num_hosts = hosts_a;
    cfg.num_snapshots = snapshots;
    cfg.trace_duration = trace;
    core::FleetExperiment exp{cfg};

    // One parallel sweep over the whole (snapshot, host) grid; run_all
    // returns snapshot-major order, so each snapshot's traces are a
    // contiguous run of hosts_a results.
    const auto results = exp.run_all();
    std::vector<double> service_means;
    for (int s = 0; s < snapshots; ++s) {
      analysis::Cdf counts;
      for (int h = 0; h < hosts_a; ++h) {
        const auto& r = results[static_cast<std::size_t>(s * hosts_a + h)];
        for (const auto& b : r.summary.bursts) {
          counts.add(static_cast<double>(b.max_active_flows));
        }
      }
      service_means.push_back(counts.mean());
    }
    labels.push_back(profile.name);
    means.push_back(std::move(service_means));
  }

  core::Table series{[&] {
    std::vector<std::string> h{"snapshot"};
    h.insert(h.end(), labels.begin(), labels.end());
    return h;
  }()};
  for (int s = 0; s < snapshots; ++s) {
    std::vector<std::string> row{std::to_string(s)};
    for (const auto& m : means) row.push_back(core::fmt(m[static_cast<std::size_t>(s)], 0));
    series.add_row(std::move(row));
  }
  series.print();

  std::printf("\nStability (coefficient of variation of per-snapshot means; "
              "small = stable operating point):\n");
  for (std::size_t i = 0; i < labels.size(); ++i) {
    std::printf("  %-10s CoV = %.3f%s\n", labels[i].c_str(),
                analysis::coefficient_of_variation(means[i]),
                labels[i] == "video" ? "  (regime switching ~225 <-> ~275 expected)" : "");
  }

  // ---- (b) per-host mean and p99 for "aggregator" --------------------------
  std::printf("\n(b) Per-host flow counts for 'aggregator' (%d hosts pooled over %d "
              "snapshots)\n",
              hosts_b, snapshots);
  core::FleetConfig cfg = base_config(workload::service_by_name("aggregator"));
  cfg.num_hosts = hosts_b;
  cfg.num_snapshots = snapshots;
  cfg.trace_duration = trace;
  core::FleetExperiment exp{cfg};

  std::vector<analysis::FlowCountGroup> groups(static_cast<std::size_t>(hosts_b));
  for (int h = 0; h < hosts_b; ++h) {
    groups[static_cast<std::size_t>(h)].index = static_cast<std::size_t>(h);
  }
  for (const auto& r : exp.run_all()) {
    for (const auto& b : r.summary.bursts) {
      groups[static_cast<std::size_t>(r.host)].flow_counts.add(
          static_cast<double>(b.max_active_flows));
    }
  }
  const auto report = analysis::analyze_stability(groups);

  core::Table hosts_table{{"host", "bursts", "mean flows", "p99 flows"}};
  for (const auto& g : report.groups) {
    hosts_table.add_row({std::to_string(g.index), std::to_string(g.bursts),
                         core::fmt(g.mean, 0), core::fmt(g.p99, 0)});
  }
  hosts_table.print();
  std::printf("cross-host spread: mean %.1f%%, p99 %.1f%% of the grand mean "
              "(paper: 'similar average and p99 flow counts')\n",
              report.mean_relative_spread * 100.0, report.p99_relative_spread * 100.0);
  return 0;
}
