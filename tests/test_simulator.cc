// Tests for the Simulator event loop.
#include "sim/simulator.h"

#include <gtest/gtest.h>

#include <vector>

namespace incast::sim {
namespace {

using namespace incast::sim::literals;

TEST(Simulator, StartsAtZero) {
  Simulator sim;
  EXPECT_EQ(sim.now(), Time::zero());
  EXPECT_EQ(sim.events_processed(), 0u);
}

TEST(Simulator, RunAdvancesTimeToEachEvent) {
  Simulator sim;
  std::vector<Time> seen;
  sim.schedule_at(10_us, [&] { seen.push_back(sim.now()); });
  sim.schedule_at(5_us, [&] { seen.push_back(sim.now()); });
  sim.run();
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0], 5_us);
  EXPECT_EQ(seen[1], 10_us);
  EXPECT_EQ(sim.now(), 10_us);
  EXPECT_EQ(sim.events_processed(), 2u);
}

TEST(Simulator, ScheduleInIsRelative) {
  Simulator sim;
  Time fired_at;
  sim.schedule_at(5_us, [&] {
    sim.schedule_in(3_us, [&] { fired_at = sim.now(); });
  });
  sim.run();
  EXPECT_EQ(fired_at, 8_us);
}

TEST(Simulator, EventsCanScheduleMoreEvents) {
  Simulator sim;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 100) sim.schedule_in(1_us, recurse);
  };
  sim.schedule_in(1_us, recurse);
  sim.run();
  EXPECT_EQ(depth, 100);
  EXPECT_EQ(sim.now(), Time::microseconds(100));
}

TEST(Simulator, RunUntilStopsAtDeadlineAndSetsNow) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(1_ms, [&] { ++fired; });
  sim.schedule_at(3_ms, [&] { ++fired; });
  sim.run_until(2_ms);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), 2_ms);
  EXPECT_EQ(sim.events_pending(), 1u);
  // Resume picks up the remaining event.
  sim.run_until(5_ms);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(sim.now(), 5_ms);
}

TEST(Simulator, RunUntilIncludesEventsAtDeadline) {
  Simulator sim;
  bool fired = false;
  sim.schedule_at(2_ms, [&] { fired = true; });
  sim.run_until(2_ms);
  EXPECT_TRUE(fired);
}

TEST(Simulator, StopHaltsTheLoop) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(1_us, [&] {
    ++fired;
    sim.stop();
  });
  sim.schedule_at(2_us, [&] { ++fired; });
  sim.run();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.events_pending(), 1u);
  // A subsequent run resumes.
  sim.run();
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, CancelledEventDoesNotFire) {
  Simulator sim;
  bool fired = false;
  const EventId id = sim.schedule_at(1_us, [&] { fired = true; });
  sim.cancel(id);
  sim.run();
  EXPECT_FALSE(fired);
}

TEST(Simulator, SameTimeEventsFifoAcrossNesting) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(1_us, [&] {
    order.push_back(1);
    // Scheduled at the *current* time: runs after already-queued events at
    // the same timestamp.
    sim.schedule_at(1_us, [&] { order.push_back(3); });
  });
  sim.schedule_at(1_us, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Simulator, RunUntilWithEmptyQueueAdvancesClock) {
  Simulator sim;
  sim.run_until(7_ms);
  EXPECT_EQ(sim.now(), 7_ms);
}

}  // namespace
}  // namespace incast::sim
