// PFC lossless-Ethernet tests: LosslessInputQueue XOFF/XON hysteresis and
// headroom accounting, Port pause auto-expiry (the deadlock watchdog), the
// strict-priority control-frame path, and an end-to-end run where resume
// frames are lost on the wire yet the fabric never deadlocks.
#include <gtest/gtest.h>

#include <vector>

#include "net/host.h"
#include "net/node.h"
#include "net/pfc.h"
#include "net/topology.h"
#include "tcp/tcp_connection.h"

namespace incast::net {
namespace {

using sim::Simulator;
using sim::Time;
using namespace incast::sim::literals;

using Action = LosslessInputQueue::Action;

LosslessInputQueue::Config small_pfc() {
  LosslessInputQueue::Config cfg;
  cfg.xoff_bytes = 10'000;
  cfg.xon_bytes = 6'000;
  cfg.headroom_bytes = 5'000;
  cfg.pause_ns = 100'000;
  return cfg;
}

TEST(PfcViq, ArrivalsBelowXoffAreSilent) {
  LosslessInputQueue q{small_pfc()};
  EXPECT_EQ(q.on_arrival(4'000), Action::kNone);
  EXPECT_EQ(q.on_arrival(4'000), Action::kNone);
  EXPECT_EQ(q.bytes(), 8'000);
  EXPECT_FALSE(q.paused_upstream());
  EXPECT_EQ(q.stats().pause_frames, 0);
}

TEST(PfcViq, CrossingXoffPausesAndEveryFurtherArrivalRefreshes) {
  LosslessInputQueue q{small_pfc()};
  EXPECT_EQ(q.on_arrival(9'000), Action::kNone);
  // This charge lands at 10'500 >= XOFF: pause.
  EXPECT_EQ(q.on_arrival(1'500), Action::kSendPause);
  EXPECT_TRUE(q.paused_upstream());
  // PFC quanta expire upstream, so every in-flight arrival at/above XOFF
  // re-arms the pause — a single stale frame must not be the only thing
  // holding the congestion tree up.
  EXPECT_EQ(q.on_arrival(1'500), Action::kSendPause);
  EXPECT_EQ(q.on_arrival(1'500), Action::kSendPause);
  EXPECT_EQ(q.stats().pause_frames, 3);
}

TEST(PfcViq, ResumeFiresOnceCrossingXon) {
  LosslessInputQueue q{small_pfc()};
  EXPECT_EQ(q.on_arrival(12'000), Action::kSendPause);
  // Draining from 12'000: still above XON at 8'000, nothing yet.
  EXPECT_EQ(q.on_departure(4'000), Action::kNone);
  EXPECT_TRUE(q.paused_upstream());
  // Crossing below XON = 6'000: exactly one resume.
  EXPECT_EQ(q.on_departure(4'000), Action::kSendResume);
  EXPECT_FALSE(q.paused_upstream());
  EXPECT_EQ(q.on_departure(2'000), Action::kNone);
  EXPECT_EQ(q.stats().resume_frames, 1);
  // The hysteresis band re-arms: fill back up and it pauses again.
  EXPECT_EQ(q.on_arrival(9'000), Action::kSendPause);
  EXPECT_EQ(q.stats().pause_frames, 2);
}

TEST(PfcViq, HeadroomAbsorbsInFlightBytesAfterPause) {
  LosslessInputQueue q{small_pfc()};
  EXPECT_EQ(q.on_arrival(10'000), Action::kSendPause);
  // Bytes already serialized upstream keep landing; headroom absorbs them
  // up to xoff + headroom = 15'000.
  EXPECT_EQ(q.on_arrival(5'000), Action::kSendPause);
  EXPECT_EQ(q.bytes(), 15'000);
  EXPECT_EQ(q.stats().overflow_dropped_packets, 0);
  EXPECT_EQ(q.stats().peak_bytes, 15'000);
}

TEST(PfcViq, HeadroomOverflowDropsWithoutCharging) {
  LosslessInputQueue q{small_pfc()};
  EXPECT_EQ(q.on_arrival(15'000), Action::kSendPause);
  // Beyond xoff + headroom the lossless guarantee is broken: the packet is
  // dropped and NOT charged to the queue.
  EXPECT_EQ(q.on_arrival(1'500), Action::kDropOverflow);
  EXPECT_EQ(q.bytes(), 15'000);
  EXPECT_EQ(q.stats().overflow_dropped_packets, 1);
  EXPECT_EQ(q.stats().overflow_dropped_bytes, 1'500);
  // Draining afterwards still balances to zero: the drop never entered.
  EXPECT_EQ(q.on_departure(15'000), Action::kSendResume);
  EXPECT_EQ(q.bytes(), 0);
}

// ---------------------------------------------------------------------------
// Port-level pause behaviour.

class SinkNode final : public Node {
 public:
  using Node::Node;
  void receive(Packet p, std::size_t) override {
    arrivals.push_back({sim_.now(), std::move(p)});
  }
  struct Arrival {
    Time at;
    Packet packet;
  };
  std::vector<Arrival> arrivals;
};

class SourceNode final : public Node {
 public:
  using Node::Node;
  void receive(Packet, std::size_t) override {}
};

struct PauseFixture {
  Simulator sim;
  SourceNode src{sim, 0, "src"};
  SinkNode dst{sim, 1, "dst"};

  // 10 Gbps, 1 us propagation: 1500 B serializes in 1.2 us.
  PauseFixture() {
    src.add_port(sim::Bandwidth::gigabits_per_second(10), 1_us,
                 DropTailQueue::Config{.capacity_packets = 100, .ecn_threshold_packets = 0});
    src.port(0).connect(dst, 0);
  }
};

TEST(PfcPort, PauseHoldsDataUntilAutoExpiry) {
  PauseFixture f;
  f.src.port(0).pause_for(Time::microseconds(50));
  f.src.port(0).send(make_data_packet(0, 1, 1, 0, 1460));
  EXPECT_TRUE(f.src.port(0).pfc_paused());
  f.sim.run();
  // No resume frame ever arrived; the quantum expired on its own and the
  // packet went out at 50 us (+1.2 us serialization, +1 us propagation).
  ASSERT_EQ(f.dst.arrivals.size(), 1u);
  EXPECT_EQ(f.dst.arrivals[0].at, Time::microseconds(52.2));
  EXPECT_FALSE(f.src.port(0).pfc_paused());
  EXPECT_EQ(f.src.port(0).pause_count(), 1);
  EXPECT_EQ(f.src.port(0).paused_ns(), 50'000);
}

TEST(PfcPort, RepeatedPauseFramesExtendTheQuantum) {
  PauseFixture f;
  f.src.port(0).pause_for(Time::microseconds(20));
  // A refresh at t=10 us re-arms expiry to 10 + 20 = 30 us; the stale
  // expiry at 20 us must not resume the port early.
  f.sim.schedule_at(10_us, [&] { f.src.port(0).pause_for(Time::microseconds(20)); });
  f.src.port(0).send(make_data_packet(0, 1, 1, 0, 1460));
  f.sim.run();
  ASSERT_EQ(f.dst.arrivals.size(), 1u);
  EXPECT_EQ(f.dst.arrivals[0].at, Time::microseconds(32.2));
  // One contiguous paused interval, even though two frames arrived.
  EXPECT_EQ(f.src.port(0).pause_count(), 1);
  EXPECT_EQ(f.src.port(0).paused_ns(), 30'000);
}

TEST(PfcPort, ResumeFrameLiftsPauseEarly) {
  PauseFixture f;
  f.src.port(0).pause_for(Time::microseconds(100));
  f.src.port(0).send(make_data_packet(0, 1, 1, 0, 1460));
  f.sim.schedule_at(5_us, [&] { f.src.port(0).resume(); });
  f.sim.run();
  ASSERT_EQ(f.dst.arrivals.size(), 1u);
  EXPECT_EQ(f.dst.arrivals[0].at, Time::microseconds(7.2));
  EXPECT_EQ(f.src.port(0).paused_ns(), 5'000);
}

TEST(PfcPort, ControlFramesBypassAPausedPort) {
  PauseFixture f;
  f.src.port(0).pause_for(Time::microseconds(100));
  f.src.port(0).send(make_data_packet(0, 1, 1, 0, 1460));
  f.src.port(0).send_control(make_resume_frame(0, 1));
  f.sim.run_until(50_us);
  // The control frame went out despite the pause; the data did not.
  ASSERT_EQ(f.dst.arrivals.size(), 1u);
  EXPECT_EQ(f.dst.arrivals[0].packet.ctrl.type, CtrlType::kPfcResume);
  f.sim.run();
  ASSERT_EQ(f.dst.arrivals.size(), 2u);
  EXPECT_TRUE(f.dst.arrivals[1].packet.is_data());
}

// ---------------------------------------------------------------------------
// Deadlock watchdog: resume frames lost on the wire must degrade into
// shorter pauses, never a hang.

// Drops every PFC resume frame, passes everything else untouched.
class ResumeEater final : public LinkHook {
 public:
  Verdict on_transmit(const Packet& p, Time) override {
    if (p.ctrl.type == CtrlType::kPfcResume) {
      ++eaten;
      return {.drop = true};
    }
    return {};
  }
  std::int64_t eaten{0};
};

TEST(PfcPort, LostResumeFramesDoNotDeadlockTheFabric) {
  Simulator sim;
  net::DumbbellConfig cfg;
  cfg.num_senders = 8;
  cfg.pfc = LosslessInputQueue::Config{};
  // PFC backpressure, not tail drop, is the binding constraint.
  cfg.switch_queue.capacity_packets = 100'000;
  cfg.switch_queue.ecn_threshold_packets = 65;
  net::Dumbbell topo{sim, cfg};

  // Eat every resume frame the receiver ToR sends back up the core link.
  // The sender ToR's uplink then un-pauses only via quantum expiry.
  ResumeEater eater;
  topo.core_link_rx().set_link_hook(&eater);

  tcp::TcpConfig tcp;
  tcp.cc = tcp::CcAlgorithm::kDcqcn;
  tcp.rtt.min_rto = 10_ms;
  std::vector<std::unique_ptr<tcp::TcpConnection>> conns;
  for (int i = 0; i < 8; ++i) {
    conns.push_back(std::make_unique<tcp::TcpConnection>(
        sim, topo.sender(i), topo.receiver(0), static_cast<FlowId>(i + 1), tcp));
    conns.back()->sender().add_app_data(500'000);
  }
  sim.run_until(5_s);

  // The incast congested the receiver ToR hard enough to pause upstream
  // and to strand at least one resume in the eater...
  EXPECT_GT(eater.eaten, 0);
  EXPECT_GT(topo.core_link_tx().pause_count(), 0);
  // ...yet every transfer still completed: auto-expiry is the watchdog.
  for (const auto& c : conns) {
    EXPECT_TRUE(c->sender().all_acked());
    EXPECT_EQ(c->receiver().rcv_nxt(), 500'000);
  }
  // Nothing was dropped along the lossless path.
  for (net::Switch* sw : topo.switches()) {
    for (std::size_t i = 0; i < sw->num_ports(); ++i) {
      EXPECT_EQ(sw->port(i).queue().stats().dropped_packets, 0);
    }
  }
}

}  // namespace
}  // namespace incast::net
