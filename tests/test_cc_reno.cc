// Tests for NewReno congestion control (with and without classic ECN).
#include <gtest/gtest.h>

#include "tcp/cc/reno.h"

namespace incast::tcp {
namespace {

using sim::Time;
using namespace incast::sim::literals;

constexpr std::int64_t kMss = 1460;

CcConfig config() {
  CcConfig c;
  c.mss_bytes = kMss;
  c.initial_window_segments = 10;
  return c;
}

AckEvent ack(std::int64_t acked, bool ece = false, std::int64_t snd_una = 0,
             std::int64_t snd_nxt = 1'000'000) {
  AckEvent ev;
  ev.newly_acked_bytes = acked;
  ev.ece = ece;
  ev.snd_una = snd_una;
  ev.snd_nxt = snd_nxt;
  ev.now = 1_ms;
  return ev;
}

TEST(RenoCc, StartsAtInitialWindow) {
  RenoCc cc{config(), false};
  EXPECT_EQ(cc.cwnd_bytes(), 10 * kMss);
  EXPECT_TRUE(cc.in_slow_start());
  EXPECT_EQ(cc.name(), "reno");
}

TEST(RenoCc, SlowStartGrowsOneMssPerMssAcked) {
  RenoCc cc{config(), false};
  const std::int64_t before = cc.cwnd_bytes();
  cc.on_ack(ack(kMss));
  EXPECT_EQ(cc.cwnd_bytes(), before + kMss);
}

TEST(RenoCc, SlowStartDoublesPerWindow) {
  RenoCc cc{config(), false};
  const std::int64_t start = cc.cwnd_bytes();
  // Ack one full window's worth of segments.
  for (int i = 0; i < 10; ++i) cc.on_ack(ack(kMss));
  EXPECT_EQ(cc.cwnd_bytes(), 2 * start);
}

TEST(RenoCc, SlowStartIncreaseCappedAtOneMssPerAck) {
  RenoCc cc{config(), false};
  const std::int64_t before = cc.cwnd_bytes();
  // A jumbo cumulative ACK (e.g. after coalescing) still grows at most 1
  // MSS (ABC with L=1).
  cc.on_ack(ack(5 * kMss));
  EXPECT_EQ(cc.cwnd_bytes(), before + kMss);
}

TEST(RenoCc, CongestionAvoidanceGrowsOneMssPerRtt) {
  RenoCc cc{config(), false};
  cc.on_loss(20 * kMss);  // exit slow start: cwnd = ssthresh = 10 MSS
  cc.on_recovery_exit();
  EXPECT_FALSE(cc.in_slow_start());
  const std::int64_t w = cc.cwnd_bytes();
  const int segments_per_window = static_cast<int>(w / kMss);
  // One window of ACKs -> ~1 MSS growth.
  for (int i = 0; i < segments_per_window; ++i) cc.on_ack(ack(kMss));
  EXPECT_EQ(cc.cwnd_bytes(), w + kMss);
}

TEST(RenoCc, LossHalvesToHalfFlightSize) {
  RenoCc cc{config(), false};
  cc.on_loss(10 * kMss);
  EXPECT_EQ(cc.ssthresh_bytes(), 5 * kMss);
  cc.on_recovery_exit();
  EXPECT_EQ(cc.cwnd_bytes(), 5 * kMss);
}

TEST(RenoCc, LossFloorsAtTwoMss) {
  RenoCc cc{config(), false};
  cc.on_loss(kMss);
  cc.on_recovery_exit();
  EXPECT_EQ(cc.cwnd_bytes(), 2 * kMss);
}

TEST(RenoCc, TimeoutCollapsesToOneMss) {
  RenoCc cc{config(), false};
  cc.on_timeout();
  EXPECT_EQ(cc.cwnd_bytes(), kMss);
  EXPECT_EQ(cc.ssthresh_bytes(), 5 * kMss);
  EXPECT_TRUE(cc.in_slow_start());
}

TEST(RenoCc, EcnIgnoredWhenDisabled) {
  RenoCc cc{config(), /*ecn_enabled=*/false};
  const std::int64_t before = cc.cwnd_bytes();
  cc.on_ack(ack(kMss, /*ece=*/true));
  EXPECT_GT(cc.cwnd_bytes(), before);  // grew, no reduction
}

TEST(RenoCc, EcnHalvesOncePerWindow) {
  RenoCc cc{config(), /*ecn_enabled=*/true};
  const std::int64_t before = cc.cwnd_bytes();
  cc.on_ack(ack(kMss, true, /*snd_una=*/kMss, /*snd_nxt=*/10 * kMss));
  EXPECT_EQ(cc.cwnd_bytes(), before / 2);
  // Further ECE within the same window: no additional reduction.
  cc.on_ack(ack(kMss, true, 2 * kMss, 10 * kMss));
  EXPECT_GE(cc.cwnd_bytes(), before / 2);
  // Past the recorded snd_nxt, a new ECE reduces again.
  const std::int64_t w = cc.cwnd_bytes();
  cc.on_ack(ack(kMss, true, 11 * kMss, 20 * kMss));
  EXPECT_EQ(cc.cwnd_bytes(), w / 2 < kMss ? kMss : w / 2);
}

TEST(RenoCc, ResetToInitialWindow) {
  RenoCc cc{config(), false};
  cc.on_timeout();
  cc.reset_to_initial_window();
  EXPECT_EQ(cc.cwnd_bytes(), 10 * kMss);
}

}  // namespace
}  // namespace incast::tcp
