// ECMP determinism tests: a seed fully determines every flow's path, the
// assignment is stable within a run, data and ACKs traverse consistent
// paths, and distinct seeds produce distinct collision patterns.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <sstream>
#include <vector>

#include "core/fabric_experiment.h"
#include "fabric/fat_tree.h"
#include "net/switch.h"
#include "sim/simulator.h"
#include "telemetry/trace_io.h"

namespace incast {
namespace {

using namespace incast::sim::literals;

fabric::FatTreeConfig small_fabric(std::uint64_t ecmp_seed) {
  fabric::FatTreeConfig cfg;
  cfg.num_pods = 2;
  cfg.leaves_per_pod = 2;
  cfg.hosts_per_leaf = 4;
  cfg.num_spines = 4;
  cfg.ecmp_seed = ecmp_seed;
  return cfg;
}

// Path fingerprint: the uplink choice of every (src, dst, flow) triple at
// the source leaf, sampled via the pure route_port query.
std::vector<std::size_t> uplink_choices(fabric::FatTree& ft, int flows_per_pair) {
  std::vector<std::size_t> choices;
  for (int src = 0; src < ft.num_hosts(); ++src) {
    for (int dst = 0; dst < ft.num_hosts(); ++dst) {
      if (ft.leaf_of_host(src) == ft.leaf_of_host(dst)) continue;
      for (int f = 1; f <= flows_per_pair; ++f) {
        const auto port = ft.leaf(ft.leaf_of_host(src))
                              .route_port(ft.host(src).id(), ft.host(dst).id(), f);
        choices.push_back(port.value());
      }
    }
  }
  return choices;
}

TEST(Ecmp, SameSeedSamePaths) {
  sim::Simulator sim_a, sim_b;
  fabric::FatTree a{sim_a, small_fabric(42)};
  fabric::FatTree b{sim_b, small_fabric(42)};
  EXPECT_EQ(uplink_choices(a, 3), uplink_choices(b, 3));
}

TEST(Ecmp, DifferentSeedsDifferentCollisionPatterns) {
  sim::Simulator sim_a, sim_b;
  fabric::FatTree a{sim_a, small_fabric(1)};
  fabric::FatTree b{sim_b, small_fabric(2)};
  // With 4-way groups and hundreds of sampled triples, two seeds agreeing
  // everywhere would mean the seed does not reach the hash.
  EXPECT_NE(uplink_choices(a, 3), uplink_choices(b, 3));
}

// In a two-tier fabric the forward choice at the source leaf and the
// reverse choice at the destination leaf must land on the same spine (group
// member order is spine order at every leaf, and the hash is symmetric in
// src/dst) — so a flow's ACKs traverse the same spine as its data.
TEST(Ecmp, PathSymmetryDataAndAcksShareTheSpine) {
  sim::Simulator sim;
  fabric::FatTreeConfig cfg;
  cfg.num_pods = 1;
  cfg.leaves_per_pod = 2;
  cfg.hosts_per_leaf = 4;
  cfg.num_spines = 4;
  fabric::FatTree ft{sim, cfg};
  for (int src = 0; src < ft.num_hosts(); ++src) {
    for (int dst = 0; dst < ft.num_hosts(); ++dst) {
      const int src_leaf = ft.leaf_of_host(src);
      const int dst_leaf = ft.leaf_of_host(dst);
      if (src_leaf == dst_leaf) continue;
      for (int f = 1; f <= 5; ++f) {
        const auto fwd = ft.leaf(src_leaf)
                             .route_port(ft.host(src).id(), ft.host(dst).id(), f)
                             .value();
        const auto rev = ft.leaf(dst_leaf)
                             .route_port(ft.host(dst).id(), ft.host(src).id(), f)
                             .value();
        // Map the chosen port to its position in the uplink group = spine
        // index.
        const auto& fwd_uplinks = ft.leaf_uplink_port_indices(src_leaf);
        const auto& rev_uplinks = ft.leaf_uplink_port_indices(dst_leaf);
        const auto fwd_spine =
            std::find(fwd_uplinks.begin(), fwd_uplinks.end(), fwd) - fwd_uplinks.begin();
        const auto rev_spine =
            std::find(rev_uplinks.begin(), rev_uplinks.end(), rev) - rev_uplinks.begin();
        EXPECT_EQ(fwd_spine, rev_spine)
            << "src=" << src << " dst=" << dst << " flow=" << f;
      }
    }
  }
}

TEST(Ecmp, RoutePortMatchesActualForwarding) {
  // The pure route_port query must predict what receive() does: run real
  // traffic and compare the recorded per-port flow counts against the
  // prediction.
  sim::Simulator sim;
  fabric::FatTree ft{sim, small_fabric(7)};

  class Sink final : public net::PacketHandler {
   public:
    void handle_packet(net::Packet) override {}
  };
  Sink sink;
  const int dst = ft.num_hosts() - 1;
  ft.host(dst).register_flow(100, &sink);
  std::vector<std::int64_t> predicted(ft.leaf(0).num_ports(), 0);
  for (int f = 1; f <= 32; ++f) {
    // All from host 0 (leaf 0) to the last host; distinct flow ids.
    ft.host(0).register_flow(f, &sink);
    const auto port = ft.leaf(0).route_port(ft.host(0).id(), ft.host(dst).id(), f);
    ++predicted[port.value()];
    net::Packet p = net::make_data_packet(ft.host(0).id(), ft.host(dst).id(), f, 0, 100);
    ft.host(dst).register_flow(f, &sink);
    ft.host(0).send(std::move(p));
  }
  sim.run();
  EXPECT_EQ(ft.leaf(0).ecmp_flows_by_port(), predicted);
  EXPECT_EQ(ft.leaf(0).ecmp_path_changes(), 0);
}

TEST(Ecmp, ExperimentIsDeterministicIncludingTelemetryCsv) {
  core::FabricIncastExperimentConfig cfg;
  cfg.num_flows = 12;  // cross-rack capacity of the small fabric
  cfg.fabric = small_fabric(5);
  cfg.num_bursts = 2;
  cfg.discard_bursts = 0;
  cfg.burst_duration = 3_ms;
  cfg.seed = 11;

  const auto a = core::run_fabric_incast_experiment(cfg);
  const auto b = core::run_fabric_incast_experiment(cfg);

  EXPECT_EQ(a.events_processed, b.events_processed);
  EXPECT_EQ(a.avg_bct_ms, b.avg_bct_ms);
  EXPECT_EQ(a.ecmp_path_changes, 0);
  EXPECT_EQ(b.ecmp_path_changes, 0);
  ASSERT_EQ(a.leaf_ecmp.size(), b.leaf_ecmp.size());
  for (std::size_t i = 0; i < a.leaf_ecmp.size(); ++i) {
    EXPECT_EQ(a.leaf_ecmp[i].flows_by_uplink, b.leaf_ecmp[i].flows_by_uplink);
  }

  // Byte-identical Millisampler CSVs at every vantage point.
  ASSERT_EQ(a.vantages.size(), b.vantages.size());
  for (std::size_t i = 0; i < a.vantages.size(); ++i) {
    std::ostringstream csv_a, csv_b;
    telemetry::write_bins_csv(a.vantages[i].bins, csv_a);
    telemetry::write_bins_csv(b.vantages[i].bins, csv_b);
    EXPECT_EQ(csv_a.str(), csv_b.str()) << a.vantages[i].name;
  }
}

TEST(Ecmp, DifferentEcmpSeedsChangeTheExperimentCollisions) {
  core::FabricIncastExperimentConfig cfg;
  cfg.num_flows = 12;  // cross-rack capacity of the small fabric
  cfg.fabric = small_fabric(1);
  cfg.num_bursts = 2;
  cfg.discard_bursts = 0;
  cfg.burst_duration = 3_ms;

  const auto a = core::run_fabric_incast_experiment(cfg);
  cfg.fabric.ecmp_seed = 2;
  const auto b = core::run_fabric_incast_experiment(cfg);

  // Same workload seed, different hash seed: the per-uplink flow histograms
  // must differ somewhere.
  ASSERT_EQ(a.leaf_ecmp.size(), b.leaf_ecmp.size());
  bool any_difference = false;
  for (std::size_t i = 0; i < a.leaf_ecmp.size(); ++i) {
    if (a.leaf_ecmp[i].flows_by_uplink != b.leaf_ecmp[i].flows_by_uplink) {
      any_difference = true;
    }
  }
  EXPECT_TRUE(any_difference);
}

}  // namespace
}  // namespace incast
