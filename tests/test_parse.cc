// Tests for string -> Time / Bandwidth parsing.
#include "sim/parse.h"

#include <gtest/gtest.h>

namespace incast::sim {
namespace {

using namespace incast::sim::literals;

TEST(ParseTime, AllUnits) {
  EXPECT_EQ(parse_time("5ns"), Time::nanoseconds(5));
  EXPECT_EQ(parse_time("30us"), 30_us);
  EXPECT_EQ(parse_time("15ms"), 15_ms);
  EXPECT_EQ(parse_time("2s"), 2_s);
}

TEST(ParseTime, FractionalValues) {
  EXPECT_EQ(parse_time("1.5ms"), Time::microseconds(1500));
  EXPECT_EQ(parse_time("0.5s"), 500_ms);
}

TEST(ParseTime, WhitespaceAndCaseTolerated) {
  EXPECT_EQ(parse_time(" 15 ms "), 15_ms);
  EXPECT_EQ(parse_time("15MS"), 15_ms);
  EXPECT_EQ(parse_time("2S"), 2_s);
}

TEST(ParseTime, BareZeroNeedsNoUnit) {
  EXPECT_EQ(parse_time("0"), Time::zero());
  EXPECT_EQ(parse_time("0ms"), Time::zero());
}

TEST(ParseTime, Malformed) {
  EXPECT_FALSE(parse_time("").has_value());
  EXPECT_FALSE(parse_time("15").has_value());
  EXPECT_FALSE(parse_time("ms").has_value());
  EXPECT_FALSE(parse_time("15 lightyears").has_value());
  EXPECT_FALSE(parse_time("abc ms").has_value());
  EXPECT_FALSE(parse_time("1.2.3ms").has_value());
}

TEST(ParseBandwidth, AllUnits) {
  EXPECT_EQ(parse_bandwidth("100bps"), Bandwidth::bits_per_second(100));
  EXPECT_EQ(parse_bandwidth("5kbps"), Bandwidth::kilobits_per_second(5));
  EXPECT_EQ(parse_bandwidth("250Mbps"), Bandwidth::megabits_per_second(250));
  EXPECT_EQ(parse_bandwidth("10Gbps"), Bandwidth::gigabits_per_second(10));
}

TEST(ParseBandwidth, FractionalAndCase) {
  EXPECT_EQ(parse_bandwidth("2.5gbps"), Bandwidth::gigabits_per_second(2.5));
  EXPECT_EQ(parse_bandwidth("10GBPS"), Bandwidth::gigabits_per_second(10));
}

TEST(ParseBandwidth, Malformed) {
  EXPECT_FALSE(parse_bandwidth("").has_value());
  EXPECT_FALSE(parse_bandwidth("10").has_value());
  EXPECT_FALSE(parse_bandwidth("Gbps").has_value());
  EXPECT_FALSE(parse_bandwidth("10 Tbps").has_value());
}

}  // namespace
}  // namespace incast::sim
