// CompositeQueue (NDP packet trimming) tests: trim-on-overflow, the
// strict-priority header queue, CE marking of trimmed headers, and the
// end-to-end trim -> NACK -> immediate-retransmit recovery path.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "net/queue.h"
#include "net/topology.h"
#include "tcp/tcp_connection.h"

namespace incast::net {
namespace {

using sim::Simulator;
using sim::Time;
using namespace incast::sim::literals;

Packet data_packet(std::int64_t seq) { return make_data_packet(1, 2, 1, seq, 1460); }

DropTailQueue::Config trim_config(std::int64_t capacity) {
  return DropTailQueue::Config{.capacity_packets = capacity,
                               .ecn_threshold_packets = 0,
                               .discipline = QueueDiscipline::kTrimming};
}

TEST(CompositeQueue, TrimsInsteadOfDroppingWhenDataRingIsFull) {
  CompositeQueue q{trim_config(2)};
  EXPECT_TRUE(q.enqueue(data_packet(0)));
  EXPECT_TRUE(q.enqueue(data_packet(1460)));
  // Third arrival exceeds capacity: trimmed to a 64 B header, not dropped.
  EXPECT_TRUE(q.enqueue(data_packet(2920)));
  EXPECT_EQ(q.data_packets(), 2);
  EXPECT_EQ(q.header_packets(), 1);
  EXPECT_EQ(q.stats().trimmed_packets, 1);
  EXPECT_EQ(q.stats().trimmed_bytes, 1500 - 64);
  EXPECT_EQ(q.stats().dropped_packets, 0);
  // Totals cover both rings.
  EXPECT_EQ(q.packets(), 3);
  EXPECT_EQ(q.bytes(), 2 * 1500 + 64);
}

TEST(CompositeQueue, HeadersDequeueBeforeQueuedData) {
  CompositeQueue q{trim_config(2)};
  EXPECT_TRUE(q.enqueue(data_packet(0)));
  EXPECT_TRUE(q.enqueue(data_packet(1460)));
  EXPECT_TRUE(q.enqueue(data_packet(2920)));  // trimmed

  // Strict priority: the header queued last comes out first.
  auto first = q.dequeue();
  ASSERT_TRUE(first.has_value());
  EXPECT_TRUE(first->trimmed);
  EXPECT_EQ(first->size_bytes, 64);
  EXPECT_EQ(first->payload_bytes, 0);
  EXPECT_EQ(first->tcp.seq, 2920);

  // Then the data ring drains in FIFO order.
  auto second = q.dequeue();
  ASSERT_TRUE(second.has_value());
  EXPECT_FALSE(second->trimmed);
  EXPECT_EQ(second->tcp.seq, 0);
  auto third = q.dequeue();
  ASSERT_TRUE(third.has_value());
  EXPECT_EQ(third->tcp.seq, 1460);
  EXPECT_FALSE(q.dequeue().has_value());
}

TEST(CompositeQueue, TrimmedEctPacketIsCeMarked) {
  CompositeQueue q{trim_config(1)};
  EXPECT_TRUE(q.enqueue(data_packet(0)));
  Packet ect = data_packet(1460);
  ect.ecn = Ecn::kEct0;
  EXPECT_TRUE(q.enqueue(std::move(ect)));
  auto header = q.dequeue();
  ASSERT_TRUE(header.has_value());
  EXPECT_TRUE(header->trimmed);
  // Trimming is itself a congestion signal; ECT headers carry it as CE.
  EXPECT_EQ(header->ecn, Ecn::kCe);
}

TEST(CompositeQueue, TrimmedNonEctPacketStaysUnmarked) {
  CompositeQueue q{trim_config(1)};
  EXPECT_TRUE(q.enqueue(data_packet(0)));
  // make_data_packet defaults to ECT0 (DCTCP); force a non-ECN sender.
  Packet not_ect = data_packet(1460);
  not_ect.ecn = Ecn::kNotEct;
  EXPECT_TRUE(q.enqueue(std::move(not_ect)));
  auto header = q.dequeue();
  ASSERT_TRUE(header.has_value());
  EXPECT_TRUE(header->trimmed);
  EXPECT_EQ(header->ecn, Ecn::kNotEct);
}

TEST(CompositeQueue, HeaderOnlyTrafficRidesThePriorityQueue) {
  CompositeQueue q{trim_config(10)};
  EXPECT_TRUE(q.enqueue(data_packet(0)));
  // An ACK (no payload) joins the header ring even though the data ring
  // has room — header-only traffic must never sit behind full frames.
  EXPECT_TRUE(q.enqueue(make_ack_packet(2, 1, 1, 1460, false)));
  EXPECT_EQ(q.data_packets(), 1);
  EXPECT_EQ(q.header_packets(), 1);
  auto first = q.dequeue();
  ASSERT_TRUE(first.has_value());
  EXPECT_FALSE(first->is_data());
}

TEST(CompositeQueue, HeaderQueueOverflowIsARealDrop) {
  DropTailQueue::Config cfg = trim_config(1);
  cfg.header_capacity_packets = 2;
  CompositeQueue q{cfg};
  EXPECT_TRUE(q.enqueue(make_ack_packet(2, 1, 1, 0, false)));
  EXPECT_TRUE(q.enqueue(make_ack_packet(2, 1, 1, 1460, false)));
  EXPECT_FALSE(q.enqueue(make_ack_packet(2, 1, 1, 2920, false)));
  EXPECT_EQ(q.header_packets(), 2);
  EXPECT_EQ(q.stats().dropped_packets, 1);
}

TEST(CompositeQueue, EcnMarksOnTheDataRingBelowTheTrimPoint) {
  DropTailQueue::Config cfg = trim_config(8);
  cfg.ecn_threshold_packets = 1;
  CompositeQueue q{cfg};
  Packet first = data_packet(0);
  first.ecn = Ecn::kEct0;
  EXPECT_TRUE(q.enqueue(std::move(first)));
  Packet second = data_packet(1460);
  second.ecn = Ecn::kEct0;
  // Occupancy 1 >= K=1 at arrival: marked, yet still queued as full data —
  // senders see ECN pressure well before payloads start getting cut.
  EXPECT_TRUE(q.enqueue(std::move(second)));
  EXPECT_EQ(q.data_packets(), 2);
  EXPECT_EQ(q.stats().ecn_marked_packets, 1);
  EXPECT_EQ(q.stats().trimmed_packets, 0);
}

TEST(CompositeQueue, MakeQueueBuildsTheConfiguredDiscipline) {
  auto trim = make_queue(trim_config(4));
  ASSERT_NE(dynamic_cast<CompositeQueue*>(trim.get()), nullptr);
  auto plain = make_queue(DropTailQueue::Config{});
  EXPECT_EQ(dynamic_cast<CompositeQueue*>(plain.get()), nullptr);
}

// ---------------------------------------------------------------------------
// End-to-end recovery: trimmed segments are NACKed by the receiver and
// retransmitted immediately — loss recovery without waiting out an RTO.

TEST(TrimRecovery, NackRetransmitDeliversEverythingWithoutRto) {
  Simulator sim;
  net::DumbbellConfig cfg;
  cfg.num_senders = 6;
  // A tiny trimming queue with ECN disabled: nothing restrains the senders
  // except trims, so recovery has to carry the whole transfer.
  cfg.switch_queue = DropTailQueue::Config{.capacity_packets = 16,
                                           .ecn_threshold_packets = 0,
                                           .discipline = QueueDiscipline::kTrimming};
  net::Dumbbell topo{sim, cfg};

  tcp::TcpConfig tcp;
  tcp.cc = tcp::CcAlgorithm::kDctcp;
  tcp.rtt.min_rto = 200_ms;
  const std::int64_t per_flow = 300'000;
  std::vector<std::unique_ptr<tcp::TcpConnection>> conns;
  for (int i = 0; i < 6; ++i) {
    conns.push_back(std::make_unique<tcp::TcpConnection>(
        sim, topo.sender(i), topo.receiver(0), static_cast<FlowId>(i + 1), tcp));
    conns.back()->sender().add_app_data(per_flow);
  }
  sim.run_until(150_ms);

  std::int64_t nacks_sent = 0, nacks_received = 0, nack_retransmits = 0;
  for (const auto& c : conns) {
    EXPECT_TRUE(c->sender().all_acked());
    EXPECT_EQ(c->receiver().rcv_nxt(), per_flow);
    // Everything finished inside min_rto: recovery never leaned on the
    // retransmission timer.
    EXPECT_EQ(c->sender().stats().timeouts, 0);
    nacks_sent += c->receiver().stats().nacks_sent;
    nacks_received += c->sender().stats().nacks_received;
    nack_retransmits += c->sender().stats().nack_retransmits;
  }
  // The queue really trimmed, the receivers really NACKed, and every NACK
  // that arrived turned into an immediate retransmit.
  EXPECT_GT(topo.bottleneck_queue().stats().trimmed_packets, 0);
  EXPECT_GT(nacks_sent, 0);
  EXPECT_GT(nacks_received, 0);
  EXPECT_GT(nack_retransmits, 0);
}

}  // namespace
}  // namespace incast::net
