// Tests for the anomaly flight recorder: trigger grammar, exactly-once
// firing per anomaly, and ring/dump contents.
#include "obs/flight_recorder.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace incast::obs {
namespace {

TraceEvent rto_at(std::int64_t ts_ns) {
  TraceEvent ev;
  ev.ts_ns = ts_ns;
  ev.phase = TraceEvent::Phase::kInstant;
  ev.category = TraceCategory::kTcp;
  ev.tid = kFlowTidBase;
  ev.name = "rto";
  return ev;
}

constexpr std::int64_t kMs = 1'000'000;

TEST(ObsFlightRecorder, ParseTriggerGrammar) {
  auto cfg = parse_trigger("rto-storm");
  ASSERT_TRUE(cfg.has_value());
  EXPECT_EQ(cfg->kind, TriggerConfig::Kind::kRtoStorm);
  EXPECT_EQ(cfg->rto_threshold, 10);
  EXPECT_EQ(cfg->rto_window, sim::Time::milliseconds(10));

  cfg = parse_trigger("rto-storm:5:2");
  ASSERT_TRUE(cfg.has_value());
  EXPECT_EQ(cfg->rto_threshold, 5);
  EXPECT_EQ(cfg->rto_window, sim::Time::milliseconds(2));

  cfg = parse_trigger("queue-collapse:800");
  ASSERT_TRUE(cfg.has_value());
  EXPECT_EQ(cfg->kind, TriggerConfig::Kind::kQueueCollapse);
  EXPECT_EQ(cfg->queue_threshold_packets, 800);

  cfg = parse_trigger("mode-shift");
  ASSERT_TRUE(cfg.has_value());
  EXPECT_EQ(cfg->kind, TriggerConfig::Kind::kModeShift);

  for (const char* bad : {"", "bogus", "rto-storm:0", "rto-storm:x",
                          "rto-storm:1:2:3", "queue-collapse:1:2", "mode-shift:1",
                          "queue-collapse:-5"}) {
    EXPECT_FALSE(parse_trigger(bad).has_value()) << bad;
  }
}

TEST(ObsFlightRecorder, RtoStormFiresOncePerStormAndRearmsAfterDrain) {
  FlightRecorder rec;
  auto cfg = parse_trigger("rto-storm:3:10");
  ASSERT_TRUE(cfg.has_value());
  rec.arm(*cfg);
  std::vector<std::string> reasons;
  rec.set_dump_sink([&](const std::string& reason, const std::vector<TraceEvent>&) {
    reasons.push_back(reason);
  });

  // Three RTOs inside the 10 ms window: exactly one dump at the third.
  rec.on_event(rto_at(0));
  rec.on_event(rto_at(1 * kMs));
  EXPECT_EQ(rec.dumps(), 0);
  rec.on_event(rto_at(2 * kMs));
  EXPECT_EQ(rec.dumps(), 1);

  // The storm continues: still the same anomaly, no further dumps.
  rec.on_event(rto_at(3 * kMs));
  rec.on_event(rto_at(4 * kMs));
  EXPECT_EQ(rec.dumps(), 1);

  // The window drains (quiet > 10 ms), then a second storm: second dump.
  rec.on_event(rto_at(50 * kMs));
  rec.on_event(rto_at(51 * kMs));
  rec.on_event(rto_at(52 * kMs));
  EXPECT_EQ(rec.dumps(), 2);
  ASSERT_EQ(reasons.size(), 2u);
  EXPECT_EQ(reasons[0], "rto-storm");
  EXPECT_EQ(rec.last_reason(), "rto-storm");
}

TEST(ObsFlightRecorder, QueueCollapseLatchesWithHysteresis) {
  FlightRecorder rec;
  auto cfg = parse_trigger("queue-collapse:1000");
  ASSERT_TRUE(cfg.has_value());
  rec.arm(*cfg);

  rec.observe_queue_depth(1 * kMs, 999);
  EXPECT_EQ(rec.dumps(), 0);
  rec.observe_queue_depth(2 * kMs, 1000);
  EXPECT_EQ(rec.dumps(), 1);
  // A sustained standing queue must not fire on every sample...
  rec.observe_queue_depth(3 * kMs, 1200);
  rec.observe_queue_depth(4 * kMs, 1000);
  EXPECT_EQ(rec.dumps(), 1);
  // ...and draining to just above threshold/2 does not re-arm yet.
  rec.observe_queue_depth(5 * kMs, 600);
  rec.observe_queue_depth(6 * kMs, 1100);
  EXPECT_EQ(rec.dumps(), 1);
  // Below half the threshold the latch releases; a new collapse fires.
  rec.observe_queue_depth(7 * kMs, 499);
  rec.observe_queue_depth(8 * kMs, 1000);
  EXPECT_EQ(rec.dumps(), 2);
}

TEST(ObsFlightRecorder, DumpIsRingOldestFirstEndingWithTriggerMarker) {
  FlightRecorder rec{4};
  auto cfg = parse_trigger("queue-collapse:100");
  ASSERT_TRUE(cfg.has_value());
  rec.arm(*cfg);

  // Overfill the 4-slot ring: events 0..5, so 0..2 must be evicted by the
  // time the trigger marker (the 7th push) lands.
  for (int i = 0; i < 6; ++i) rec.on_event(rto_at(i * kMs));
  rec.observe_queue_depth(6 * kMs, 100);

  ASSERT_EQ(rec.dumps(), 1);
  const auto& dump = rec.last_dump();
  ASSERT_EQ(dump.size(), 4u);
  EXPECT_EQ(dump.front().ts_ns, 3 * kMs);
  EXPECT_EQ(dump[2].ts_ns, 5 * kMs);
  EXPECT_EQ(dump.back().name, "trigger: queue-collapse");
  EXPECT_EQ(dump.back().ts_ns, 6 * kMs);
}

TEST(ObsFlightRecorder, ModeShiftFiresWithTransitionReason) {
  FlightRecorder rec;
  auto cfg = parse_trigger("mode-shift");
  ASSERT_TRUE(cfg.has_value());
  rec.arm(*cfg);

  rec.notify_mode_shift(5 * kMs, "safe", "collapse");
  EXPECT_EQ(rec.dumps(), 1);
  EXPECT_EQ(rec.last_reason(), "mode-shift:safe->collapse");

  // Unarmed recorders ignore every feed.
  FlightRecorder idle;
  idle.on_event(rto_at(0));
  idle.observe_queue_depth(0, 1'000'000);
  idle.notify_mode_shift(0, "safe", "collapse");
  EXPECT_EQ(idle.dumps(), 0);
  EXPECT_TRUE(idle.ring_snapshot().empty());
}

}  // namespace
}  // namespace incast::obs
