// Tests for the discrete-event pending set: ordering, ties, cancellation.
#include "sim/event_queue.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace incast::sim {
namespace {

using namespace incast::sim::literals;

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> fired;
  q.push(3_us, [&] { fired.push_back(3); });
  q.push(1_us, [&] { fired.push_back(1); });
  q.push(2_us, [&] { fired.push_back(2); });
  while (!q.empty()) q.pop().cb();
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, EqualTimestampsFireInInsertionOrder) {
  EventQueue q;
  std::vector<int> fired;
  for (int i = 0; i < 10; ++i) {
    q.push(5_us, [&fired, i] { fired.push_back(i); });
  }
  while (!q.empty()) q.pop().cb();
  ASSERT_EQ(fired.size(), 10u);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(fired[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, CancelPreventsExecution) {
  EventQueue q;
  bool fired = false;
  const EventId id = q.push(1_us, [&] { fired = true; });
  q.cancel(id);
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(fired);
}

TEST(EventQueue, CancelMiddleEventOnly) {
  EventQueue q;
  std::vector<int> fired;
  q.push(1_us, [&] { fired.push_back(1); });
  const EventId id = q.push(2_us, [&] { fired.push_back(2); });
  q.push(3_us, [&] { fired.push_back(3); });
  q.cancel(id);
  EXPECT_EQ(q.size(), 2u);
  while (!q.empty()) q.pop().cb();
  EXPECT_EQ(fired, (std::vector<int>{1, 3}));
}

TEST(EventQueue, CancelInvalidIdIsNoop) {
  EventQueue q;
  q.cancel(kInvalidEventId);
  q.cancel(12345);  // never issued
  q.push(1_us, [] {});
  EXPECT_EQ(q.size(), 1u);
}

TEST(EventQueue, DoubleCancelIsHarmless) {
  EventQueue q;
  const EventId id = q.push(1_us, [] {});
  q.push(2_us, [] {});
  q.cancel(id);
  q.cancel(id);
  EXPECT_EQ(q.size(), 1u);
}

TEST(EventQueue, CancellingAFiredIdIsATrueNoop) {
  EventQueue q;
  const EventId fired = q.push(1_us, [] {});
  q.push(2_us, [] {});
  (void)q.pop();     // `fired` executes
  q.cancel(fired);   // stale cancel: must not disturb accounting
  EXPECT_EQ(q.size(), 1u);
  EXPECT_FALSE(q.empty());
  EXPECT_EQ(q.pop().at, 2_us);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, NextTimeSkipsCancelled) {
  EventQueue q;
  const EventId id = q.push(1_us, [] {});
  q.push(5_us, [] {});
  q.cancel(id);
  EXPECT_EQ(q.next_time(), 5_us);
}

TEST(EventQueue, NextTimeOnEmptyIsInfinity) {
  EventQueue q;
  EXPECT_TRUE(q.next_time().is_infinite());
}

TEST(EventQueue, SizeTracksLiveEvents) {
  EventQueue q;
  EXPECT_EQ(q.size(), 0u);
  const EventId a = q.push(1_us, [] {});
  q.push(2_us, [] {});
  EXPECT_EQ(q.size(), 2u);
  q.cancel(a);
  EXPECT_EQ(q.size(), 1u);
  (void)q.pop();
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, PendingIdsAreUnique) {
  EventQueue q;
  std::set<EventId> ids;
  for (int i = 0; i < 100; ++i) {
    const EventId id = q.push(1_us, [] {});
    EXPECT_NE(id, kInvalidEventId);
    EXPECT_TRUE(ids.insert(id).second) << "duplicate id among pending events";
  }
}

TEST(EventQueue, ReusedSlotGetsAFreshGeneration) {
  // Fire an event, then schedule another: the slab reuses the slot, but the
  // bumped generation must yield a different id, so the stale id cannot
  // cancel the newcomer.
  EventQueue q;
  const EventId stale = q.push(1_us, [] {});
  (void)q.pop();
  const EventId fresh = q.push(2_us, [] {});
  EXPECT_NE(fresh, stale);
  q.cancel(stale);  // must not touch the slot's new occupant
  EXPECT_EQ(q.size(), 1u);
  EXPECT_EQ(q.pop().at, 2_us);
}

TEST(EventQueue, GenerationSurvivesManyReuses) {
  // Hammer one slot through many fire/reschedule cycles; a stale id from
  // any earlier cycle must stay dead.
  EventQueue q;
  std::vector<EventId> history;
  for (int i = 0; i < 1000; ++i) {
    history.push_back(q.push(Time::microseconds(i), [] {}));
    (void)q.pop();
  }
  const EventId live = q.push(5_ms, [] {});
  for (const EventId old : history) q.cancel(old);
  EXPECT_EQ(q.size(), 1u);
  EXPECT_EQ(q.pop().id, live);
}

TEST(EventQueue, KeyedPushOrdersEqualTimestampsByKeyNotInsertion) {
  // The parallel engine's merge primitive: equal-time events fire in key
  // order regardless of the order they entered the queue, so a mailbox
  // drain lands cross-domain arrivals in exactly their global rank.
  EventQueue q;
  std::vector<int> fired;
  const std::uint64_t keys[] = {7, 2, 9, 0, 5};
  for (int i = 0; i < 5; ++i) {
    q.push_keyed(5_us, keys[i], [&fired, k = static_cast<int>(keys[i])] {
      fired.push_back(k);
    });
  }
  while (!q.empty()) q.pop().cb();
  EXPECT_EQ(fired, (std::vector<int>{0, 2, 5, 7, 9}));
}

TEST(EventQueue, KeyedPushStillOrdersByTimeFirst) {
  EventQueue q;
  std::vector<int> fired;
  q.push_keyed(2_us, 0, [&] { fired.push_back(2); });
  q.push_keyed(1_us, 99, [&] { fired.push_back(1); });
  q.push_keyed(1_us, 3, [&] { fired.push_back(10); });
  while (!q.empty()) q.pop().cb();
  EXPECT_EQ(fired, (std::vector<int>{10, 1, 2}));
}

TEST(EventQueue, StressInterleavedPushPopCancel) {
  EventQueue q;
  int fired = 0;
  std::vector<EventId> ids;
  for (int round = 0; round < 50; ++round) {
    for (int i = 0; i < 20; ++i) {
      ids.push_back(q.push(Time::microseconds(round * 100 + i), [&] { ++fired; }));
    }
    // Cancel every third id ever issued (some already fired: harmless).
    for (std::size_t i = 0; i < ids.size(); i += 3) q.cancel(ids[i]);
    for (int i = 0; i < 10 && !q.empty(); ++i) q.pop().cb();
  }
  while (!q.empty()) q.pop().cb();
  EXPECT_GT(fired, 0);
  EXPECT_LT(fired, 1000);
}

}  // namespace
}  // namespace incast::sim
