// Tests for the resilience experiment: strict no-op when faults are
// disabled, goodput degradation and loss attribution under injected loss,
// and flap recovery accounting.
#include "core/resilience_experiment.h"

#include <gtest/gtest.h>

namespace incast::core {
namespace {

using sim::Time;
using namespace incast::sim::literals;

// Small but congested enough to mark packets; fast enough for CI.
IncastExperimentConfig small_incast() {
  IncastExperimentConfig cfg;
  cfg.num_flows = 40;
  cfg.num_bursts = 3;
  cfg.discard_bursts = 1;
  cfg.burst_duration = 5_ms;
  cfg.inter_burst_gap = 5_ms;
  cfg.seed = 7;
  return cfg;
}

TEST(Resilience, DisabledFaultLayerIsAStrictNoOp) {
  // The same config with an all-zero fault profile must be bit-for-bit
  // identical to a run that never heard of faults: same event count, same
  // burst timings, same queue counters.
  IncastExperimentConfig plain = small_incast();
  const auto base = run_incast_experiment(plain);

  IncastExperimentConfig with_profile = small_incast();
  with_profile.faults = FaultProfile{};  // present but everything disabled
  const auto gated = run_incast_experiment(with_profile);

  EXPECT_EQ(base.events_processed, gated.events_processed);
  EXPECT_EQ(base.avg_bct_ms, gated.avg_bct_ms);
  EXPECT_EQ(base.queue_enqueues, gated.queue_enqueues);
  EXPECT_EQ(base.queue_ecn_marks, gated.queue_ecn_marks);
  EXPECT_EQ(base.injected_drops, 0);
  EXPECT_EQ(gated.injected_drops, 0);
  ASSERT_EQ(base.bursts.size(), gated.bursts.size());
  for (std::size_t i = 0; i < base.bursts.size(); ++i) {
    EXPECT_EQ(base.bursts[i].completed, gated.bursts[i].completed);
  }
}

TEST(Resilience, ZeroRateSweepPointReproducesBaseline) {
  ResilienceConfig cfg;
  cfg.base = small_incast();
  cfg.drop_rates = {0.0};
  const auto report = run_resilience_experiment(cfg);

  ASSERT_EQ(report.points.size(), 1u);
  const auto& p = report.points[0];
  EXPECT_EQ(p.result.events_processed, report.baseline.events_processed);
  EXPECT_EQ(p.result.avg_bct_ms, report.baseline.avg_bct_ms);
  EXPECT_DOUBLE_EQ(p.goodput_rel, 1.0);
  EXPECT_EQ(p.mode, report.baseline_mode);
}

TEST(Resilience, InjectedLossDegradesGoodputAndStaysAttributable) {
  ResilienceConfig cfg;
  cfg.base = small_incast();
  // Shallow queue so congestion loss happens too: both drop classes must
  // appear, separately counted.
  cfg.base.topology.switch_queue.capacity_packets = 30;
  cfg.base.topology.switch_queue.ecn_threshold_packets = 0;
  cfg.base.tcp.rtt.min_rto = 10_ms;
  cfg.drop_rates = {2e-3};
  const auto report = run_resilience_experiment(cfg);

  ASSERT_EQ(report.points.size(), 1u);
  const auto& p = report.points[0];
  EXPECT_GT(p.result.injected_drops, 0);
  EXPECT_GT(p.result.queue_drops, 0);  // congestion loss, counted apart
  EXPECT_LT(p.goodput_rel, 1.0);

  // The per-window attribution series exist and sum consistently.
  ASSERT_FALSE(p.result.injected_drops_by_window.empty());
  ASSERT_EQ(p.result.injected_drops_by_window.size(),
            p.result.congestion_drops_by_window.size());
  // Each series is a cumulative count sampled at window ends: monotone, and
  // never exceeding the whole-run totals.
  EXPECT_GT(p.result.injected_drops_by_window.back(), 0);
  EXPECT_LE(p.result.injected_drops_by_window.back(), p.result.injected_drops);
  for (std::size_t i = 1; i < p.result.injected_drops_by_window.size(); ++i) {
    EXPECT_GE(p.result.injected_drops_by_window[i],
              p.result.injected_drops_by_window[i - 1]);
  }
}

TEST(Resilience, FlapPointReportsRecoveryAndShiftsMode) {
  ResilienceConfig cfg;
  cfg.base = small_incast();
  cfg.base.tcp.rtt.min_rto = 10_ms;
  cfg.base.tcp.rtt.initial_rto = 10_ms;
  // Flap in the middle of the measured bursts, long enough to force RTOs.
  cfg.flap_at = 12_ms;
  cfg.flap_durations = {20_ms};
  const auto report = run_resilience_experiment(cfg);

  EXPECT_EQ(report.baseline_mode, DctcpMode::kSafe);
  ASSERT_EQ(report.points.size(), 1u);
  const auto& p = report.points[0];
  EXPECT_GT(p.result.injected_flap_drops, 0);
  EXPECT_GT(p.result.timeouts, 0);
  EXPECT_EQ(p.mode, DctcpMode::kCollapse);  // RTO-bound recovery
  EXPECT_GT(p.recovery_after_flap_ms, 0.0);
  EXPECT_LT(p.goodput_rel, 1.0);
}

TEST(Resilience, ReportIsDeterministic) {
  ResilienceConfig cfg;
  cfg.base = small_incast();
  cfg.drop_rates = {1e-3};
  cfg.flap_durations = {10_ms};
  cfg.flap_at = 12_ms;

  const auto a = run_resilience_experiment(cfg);
  const auto b = run_resilience_experiment(cfg);
  ASSERT_EQ(a.points.size(), b.points.size());
  EXPECT_EQ(a.baseline.events_processed, b.baseline.events_processed);
  for (std::size_t i = 0; i < a.points.size(); ++i) {
    EXPECT_EQ(a.points[i].result.events_processed, b.points[i].result.events_processed);
    EXPECT_EQ(a.points[i].result.injected_drops, b.points[i].result.injected_drops);
    EXPECT_EQ(a.points[i].result.avg_bct_ms, b.points[i].result.avg_bct_ms);
  }
}

TEST(Resilience, ClassifyModeMatchesPaperSignatures) {
  IncastExperimentResult r;
  r.queue_enqueues = 100;
  r.queue_ecn_marks = 10;
  EXPECT_EQ(classify_mode(r), DctcpMode::kSafe);
  r.queue_ecn_marks = 90;
  EXPECT_EQ(classify_mode(r), DctcpMode::kDegenerate);
  r.timeouts = 1;
  EXPECT_EQ(classify_mode(r), DctcpMode::kCollapse);
}

}  // namespace
}  // namespace incast::core
