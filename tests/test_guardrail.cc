// Tests for the Section 5.1 guardrail: predictor-driven cwnd caps tame the
// start-of-burst spike without hurting completion time.
#include <gtest/gtest.h>

#include <cmath>

#include "core/incast_experiment.h"
#include "core/predictor.h"

namespace incast::core {
namespace {

using sim::Time;
using namespace incast::sim::literals;

IncastExperimentConfig config(int flows, std::optional<std::int64_t> cap) {
  IncastExperimentConfig cfg;
  cfg.num_flows = flows;
  cfg.burst_duration = 5_ms;
  cfg.num_bursts = 4;
  cfg.discard_bursts = 1;
  cfg.tcp.cc = tcp::CcAlgorithm::kDctcp;
  cfg.tcp.rtt.min_rto = 200_ms;
  cfg.tcp.cwnd_cap_bytes = cap;
  cfg.seed = 21;
  return cfg;
}

TEST(Guardrail, CapReducesPeakQueueInMode1) {
  const int flows = 100;
  const auto uncapped = run_incast_experiment(config(flows, std::nullopt));

  // The paper's suggestion: cap each flow so the predicted worst-case
  // incast fits the BDP + marking threshold.
  const std::int64_t cap =
      suggest_cwnd_cap_bytes(flows, 37'500, 65 * 1500, 1460);
  const auto capped = run_incast_experiment(config(flows, cap));

  EXPECT_LT(capped.peak_queue_packets, uncapped.peak_queue_packets);
  // Completion time does not collapse: still close to optimal.
  EXPECT_LT(capped.avg_bct_ms, uncapped.avg_bct_ms * 1.5);
  EXPECT_EQ(capped.queue_drops, 0);
}

TEST(Guardrail, CapLimitsEndOfBurstRampUp) {
  const int flows = 100;
  const std::int64_t cap = suggest_cwnd_cap_bytes(flows, 37'500, 65 * 1500, 1460);
  const auto capped = run_incast_experiment(config(flows, cap));
  // No straggler can ramp beyond the cap (in MSS units).
  EXPECT_LE(capped.end_of_burst_cwnd_max_mss,
            static_cast<double>(cap) / 1460.0 + 0.01);
}

TEST(Guardrail, PredictorDrivenCapEndToEnd) {
  // Feed the predictor a history resembling a stable service, derive the
  // cap from its p99 forecast, and verify the resulting experiment is
  // healthy (no drops, no timeouts).
  sim::Rng rng{5};
  FlowCountPredictor predictor;
  for (int i = 0; i < 300; ++i) {
    predictor.observe(static_cast<int>(rng.lognormal(std::log(100.0), 0.25)));
  }
  ASSERT_TRUE(predictor.ready());
  const int predicted = predictor.predict_p99();
  EXPECT_GT(predicted, 100);

  const std::int64_t cap =
      suggest_cwnd_cap_bytes(predicted, 37'500, 65 * 1500, 1460);
  const auto result = run_incast_experiment(config(100, cap));
  EXPECT_EQ(result.queue_drops, 0);
  EXPECT_EQ(result.timeouts, 0);
  EXPECT_LT(result.avg_bct_ms, 8.0);
}

TEST(Guardrail, RuntimeCapAdjustmentTakesEffect) {
  // set_cwnd_cap on a live sender clamps effective_cwnd immediately.
  sim::Simulator sim;
  net::Dumbbell topo{sim, net::DumbbellConfig{.num_senders = 1}};
  tcp::TcpConfig tc;
  tc.cc = tcp::CcAlgorithm::kDctcp;
  tcp::TcpConnection conn{sim, topo.sender(0), topo.receiver(0), 1, tc};
  conn.sender().add_app_data(5'000'000);
  sim.run_until(3_ms);
  EXPECT_GT(conn.sender().effective_cwnd(), 4 * tc.mss_bytes);
  conn.sender().set_cwnd_cap(2 * tc.mss_bytes);
  EXPECT_EQ(conn.sender().effective_cwnd(), 2 * tc.mss_bytes);
  conn.sender().set_cwnd_cap(std::nullopt);
  EXPECT_GT(conn.sender().effective_cwnd(), 4 * tc.mss_bytes);
  sim.run();
}

}  // namespace
}  // namespace incast::core
