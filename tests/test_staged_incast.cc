// Tests for the staged-incast scheduler (the Section 5.2 proposal).
#include "workload/staged_incast.h"

#include <gtest/gtest.h>

#include "telemetry/queue_monitor.h"
#include "workload/cyclic_incast.h"

namespace incast::workload {
namespace {

using sim::Simulator;
using sim::Time;
using namespace incast::sim::literals;

tcp::TcpConfig tcp_config() {
  tcp::TcpConfig c;
  c.cc = tcp::CcAlgorithm::kDctcp;
  c.rtt.min_rto = 200_ms;
  return c;
}

TEST(StagedIncast, CompletesAllBursts) {
  Simulator sim;
  net::Dumbbell topo{sim, net::DumbbellConfig{.num_senders = 50}};
  StagedIncastDriver::Config cfg;
  cfg.num_flows = 50;
  cfg.group_size = 10;
  cfg.num_bursts = 2;
  cfg.burst_duration = 2_ms;
  StagedIncastDriver driver{sim, topo, tcp_config(), cfg, 1};
  driver.start();
  sim.run_until(5_s);
  EXPECT_TRUE(driver.finished());
  ASSERT_EQ(driver.bursts().size(), 2u);
  for (auto* s : driver.senders()) EXPECT_TRUE(s->all_acked());
}

TEST(StagedIncast, ConcurrencyNeverExceedsGroupSize) {
  Simulator sim;
  net::Dumbbell topo{sim, net::DumbbellConfig{.num_senders = 60}};
  StagedIncastDriver::Config cfg;
  cfg.num_flows = 60;
  cfg.group_size = 8;
  cfg.num_bursts = 1;
  cfg.burst_duration = 5_ms;
  StagedIncastDriver driver{sim, topo, tcp_config(), cfg, 2};

  // Poll concurrency: flows with supplied-but-unacked demand.
  auto senders = driver.senders();
  int max_active = 0;
  std::function<void()> poll = [&] {
    int active = 0;
    for (auto* s : senders) {
      if (s->app_limit() > 0 && !s->all_acked()) ++active;
    }
    max_active = std::max(max_active, active);
    if (!driver.finished()) sim.schedule_in(50_us, poll);
  };
  sim.schedule_in(50_us, poll);

  driver.start();
  sim.run_until(5_s);
  ASSERT_TRUE(driver.finished());
  EXPECT_LE(max_active, cfg.group_size);
  EXPECT_GE(max_active, cfg.group_size / 2);  // the window actually fills
}

TEST(StagedIncast, AvoidsMode3WhereUnstagedCollapses) {
  // 1500 flows past the degenerate point: unstaged -> overflow + RTOs and
  // ~200 ms completion; staged at 60 concurrent -> lossless and near the
  // ideal 15 ms (this is the paper's Section 5.2 claim, quantified).
  const int flows = 1500;

  Simulator sim_a;
  net::Dumbbell topo_a{sim_a, net::DumbbellConfig{.num_senders = flows}};
  CyclicIncastDriver::Config un_cfg;
  un_cfg.num_flows = flows;
  un_cfg.num_bursts = 2;
  un_cfg.burst_duration = 15_ms;
  CyclicIncastDriver unstaged{sim_a, topo_a, tcp_config(), un_cfg, 3};
  unstaged.start();
  sim_a.run_until(10_s);
  ASSERT_TRUE(unstaged.finished());
  std::int64_t unstaged_timeouts = 0;
  for (auto* s : unstaged.senders()) unstaged_timeouts += s->stats().timeouts;

  Simulator sim_b;
  net::Dumbbell topo_b{sim_b, net::DumbbellConfig{.num_senders = flows}};
  StagedIncastDriver::Config st_cfg;
  st_cfg.num_flows = flows;
  st_cfg.group_size = 60;
  st_cfg.num_bursts = 2;
  st_cfg.burst_duration = 15_ms;
  StagedIncastDriver staged{sim_b, topo_b, tcp_config(), st_cfg, 3};
  staged.start();
  sim_b.run_until(10_s);
  ASSERT_TRUE(staged.finished());
  std::int64_t staged_timeouts = 0;
  for (auto* s : staged.senders()) staged_timeouts += s->stats().timeouts;

  // Unstaged: burst 1 (measured) suffers drops/timeouts; BCT ~ min RTO.
  EXPECT_GT(unstaged_timeouts, 0);
  EXPECT_GT(unstaged.bursts()[1].completion_time().ms(), 100.0);
  // Staged: no drops at all and BCT within 2x of the ideal burst length.
  EXPECT_EQ(topo_b.bottleneck_queue().stats().dropped_packets, 0);
  EXPECT_EQ(staged_timeouts, 0);
  EXPECT_LT(staged.bursts()[1].completion_time().ms(), 30.0);
}

TEST(StagedIncast, GroupSizeOneIsFullySerial) {
  Simulator sim;
  net::Dumbbell topo{sim, net::DumbbellConfig{.num_senders = 5}};
  StagedIncastDriver::Config cfg;
  cfg.num_flows = 5;
  cfg.group_size = 1;
  cfg.num_bursts = 1;
  cfg.burst_duration = 1_ms;
  StagedIncastDriver driver{sim, topo, tcp_config(), cfg, 4};
  driver.start();
  sim.run_until(5_s);
  EXPECT_TRUE(driver.finished());
}

TEST(StagedIncast, DemandMatchesCyclicDriver) {
  Simulator sim;
  net::Dumbbell topo{sim, net::DumbbellConfig{.num_senders = 100}};
  StagedIncastDriver::Config cfg;
  cfg.num_flows = 100;
  cfg.burst_duration = 15_ms;
  StagedIncastDriver driver{sim, topo, tcp_config(), cfg, 5};
  // Same equal-demand split as the unstaged workload: 18.75 MB / 100.
  EXPECT_EQ(driver.demand_per_flow_bytes(), 187'500);
}

}  // namespace
}  // namespace incast::workload
