// Tests for the run-hardening invariant auditor (sim/auditor.h): every
// invariant violated in isolation, both modes, the execution budgets, and
// end-to-end byte conservation through real experiments (clean, faulty,
// and fleet traces).
#include "sim/auditor.h"

#include <gtest/gtest.h>

#include <atomic>

#include "core/fleet_experiment.h"
#include "core/incast_experiment.h"
#include "sim/simulator.h"
#include "workload/service_profile.h"

namespace incast::sim {
namespace {

using namespace incast::sim::literals;

#if INCAST_AUDIT_ENABLED

// --- Per-invariant injection (unit level: feed the hooks directly) --------

TEST(Auditor, TimeMonotonicViolationThrowsInStrict) {
  Auditor::Config cfg;
  cfg.strict = true;
  Auditor a{cfg};
  EXPECT_NO_THROW(a.on_dispatch(5_us, 5_us));
  try {
    a.on_dispatch(10_us, 5_us);
    FAIL() << "expected AuditFailure";
  } catch (const AuditFailure& e) {
    EXPECT_STREQ(e.invariant(), "time_monotonic");
  }
}

TEST(Auditor, TimeMonotonicViolationCountsInRelaxed) {
  Auditor a;
  a.on_dispatch(10_us, 5_us);
  EXPECT_EQ(a.violations(AuditInvariant::kTimeMonotonic), 1u);
  EXPECT_EQ(a.total_violations(), 1u);
}

TEST(Auditor, LivelockWatchdogFiresAfterStuckWindow) {
  Auditor::Config cfg;
  cfg.livelock_event_limit = 10;
  Auditor a{cfg};
  // Livelock is detected at window granularity: the timestamp is sampled
  // every 8192 events, and a window whose boundary timestamp did not
  // advance counts 8192 stuck events. With a limit of 10, the first full
  // stuck window (events 8193..16384 at the same timestamp) trips it.
  for (int i = 0; i < 8192; ++i) a.on_dispatch(1_us, 1_us);
  EXPECT_EQ(a.violations(AuditInvariant::kLivelock), 0u);
  for (int i = 0; i < 8192; ++i) a.on_dispatch(1_us, 1_us);
  EXPECT_EQ(a.violations(AuditInvariant::kLivelock), 1u);
  // Advancing time re-arms the watchdog: the next boundary sees a new
  // timestamp and resets the stuck-window count.
  for (int i = 0; i < 8192; ++i) a.on_dispatch(1_us, 2_us);
  EXPECT_EQ(a.violations(AuditInvariant::kLivelock), 1u);
}

TEST(Auditor, LivelockNotTrippedByAdvancingTime) {
  Auditor::Config cfg;
  cfg.livelock_event_limit = 4;
  Auditor a{cfg};
  // Time advances by 1ns per event across several 8192-event windows, so
  // every boundary sees a fresh timestamp and the watchdog stays quiet.
  for (int i = 1; i <= 3 * 8192; ++i) {
    a.on_dispatch(Time::nanoseconds(i), Time::nanoseconds(i));
  }
  EXPECT_EQ(a.violations(AuditInvariant::kLivelock), 0u);
}

TEST(Auditor, EventBudgetThrows) {
  Auditor::Config cfg;
  cfg.max_events = 5;
  Auditor a{cfg};
  for (int i = 0; i < 5; ++i) a.on_dispatch(1_us, 2_us);
  EXPECT_THROW(a.on_dispatch(1_us, 2_us), BudgetExceeded);
}

TEST(Auditor, WallBudgetThrowsAtPeriodicCheck) {
  Auditor::Config cfg;
  cfg.max_wall_ms = 1e-9;  // any elapsed time exceeds this
  Auditor a{cfg};
  // First periodic boundary captures the start; the second must throw.
  auto spin = [&] {
    for (int i = 0; i < 8192; ++i) a.on_dispatch(1_us, 2_us);
  };
  EXPECT_NO_THROW(spin());
  EXPECT_THROW(spin(), BudgetExceeded);
}

TEST(Auditor, CancellationFlagThrowsRunCancelled) {
  std::atomic<bool> cancel{false};
  Auditor::Config cfg;
  cfg.cancel = &cancel;
  Auditor a{cfg};
  for (int i = 0; i < 8192; ++i) a.on_dispatch(1_us, 2_us);
  cancel.store(true);
  auto spin = [&] {
    for (int i = 0; i < 8192; ++i) a.on_dispatch(1_us, 2_us);
  };
  EXPECT_THROW(spin(), RunCancelled);
}

TEST(Auditor, ConservationBalancedIsClean) {
  Auditor::Config cfg;
  cfg.strict = true;
  Auditor a{cfg};
  a.on_bytes_injected(1000);
  a.on_bytes_delivered(400);
  a.on_bytes_dropped(100);
  EXPECT_NO_THROW(a.check_conservation(500));
  EXPECT_EQ(a.total_violations(), 0u);
}

TEST(Auditor, ConservationImbalanceViolates) {
  Auditor a;
  a.on_bytes_injected(1000);
  a.on_bytes_delivered(400);
  a.check_conservation(0);
  EXPECT_EQ(a.violations(AuditInvariant::kConservation), 1u);
}

TEST(Auditor, NegativeDepthViolates) {
  Auditor a;
  a.record_depth("test.queue", -1, 5);
  a.record_depth("test.wire", 0, -42);
  a.record_depth("test.ok", 0, 0);
  EXPECT_EQ(a.violations(AuditInvariant::kNegativeDepth), 2u);
}

TEST(Auditor, CwndBoundsViolations) {
  Auditor::Config cfg;
  cfg.max_cwnd_bytes = 1'000'000;
  Auditor a{cfg};
  a.check_cwnd(1, 1460);       // fine
  a.check_cwnd(2, 0);          // non-positive
  a.check_cwnd(3, -5);         // negative
  a.check_cwnd(4, 2'000'000);  // above cap
  EXPECT_EQ(a.violations(AuditInvariant::kCwndBounds), 3u);
}

TEST(Auditor, RtoBoundsViolations) {
  Auditor::Config cfg;
  cfg.min_rto = 1_ms;
  cfg.max_rto = 10_s;
  Auditor a{cfg};
  a.check_rto(1, 200_ms);  // fine
  a.check_rto(2, 1_us);    // below floor
  a.check_rto(3, 60_s);    // above cap
  EXPECT_EQ(a.violations(AuditInvariant::kRtoBounds), 2u);
}

TEST(Auditor, ViolationSinkSeesEveryViolation) {
  std::vector<AuditInvariant> seen;
  Auditor a;
  a.set_violation_sink([&seen](const Auditor::Violation& v) {
    seen.push_back(v.invariant);
  });
  a.record_depth("q", -1, 0);
  a.check_cwnd(1, -1);
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0], AuditInvariant::kNegativeDepth);
  EXPECT_EQ(seen[1], AuditInvariant::kCwndBounds);
}

TEST(Auditor, StrictSinkRunsBeforeThrow) {
  Auditor::Config cfg;
  cfg.strict = true;
  Auditor a{cfg};
  bool sank = false;
  a.set_violation_sink([&sank](const Auditor::Violation&) { sank = true; });
  EXPECT_THROW(a.record_depth("q", -1, 0), AuditFailure);
  EXPECT_TRUE(sank);
}

// --- Simulator integration ----------------------------------------------

TEST(Auditor, SimulatorFeedsDispatchHook) {
  Simulator sim;
  Auditor a;
  sim.set_auditor(&a);
  int fired = 0;
  for (int i = 1; i <= 5; ++i) {
    sim.schedule_at(Time::microseconds(i), [&fired] { ++fired; });
  }
  sim.run();
  EXPECT_EQ(fired, 5);
  EXPECT_EQ(a.events_seen(), 5u);
  EXPECT_EQ(a.total_violations(), 0u);
}

TEST(Auditor, SimulatorLivelockDetected) {
  Simulator sim;
  Auditor::Config cfg;
  cfg.strict = true;
  cfg.livelock_event_limit = 100;
  Auditor a{cfg};
  sim.set_auditor(&a);
  // A component that reschedules itself at now() forever.
  struct Respawn {
    Simulator& sim;
    void operator()() const { sim.schedule_at(sim.now(), Respawn{sim}); }
  };
  sim.schedule_at(1_us, Respawn{sim});
  EXPECT_THROW(sim.run(), AuditFailure);
}

// --- Experiment-level conservation (the ledger must balance end to end) --

core::IncastExperimentConfig small_incast(sim::AuditMode mode) {
  core::IncastExperimentConfig cfg;
  cfg.num_flows = 8;
  cfg.num_bursts = 2;
  cfg.discard_bursts = 1;
  cfg.burst_duration = 1_ms;
  cfg.audit_mode = mode;
  return cfg;
}

TEST(Auditor, CleanIncastRunConservesBytes) {
  // Strict mode: any ledger imbalance (or other invariant breach) throws.
  const auto result = core::run_incast_experiment(small_incast(AuditMode::kStrict));
  EXPECT_EQ(result.audit_violations, 0u);
  EXPECT_GT(result.events_processed, 0u);
}

TEST(Auditor, FaultyIncastRunConservesBytes) {
  // Drops, corruption, and duplication all reshape the ledger; it must
  // still balance (duplicates count as fresh injections, corrupt frames as
  // delivered, faulted frames as dropped).
  auto cfg = small_incast(AuditMode::kStrict);
  cfg.faults.forward.drop_rate = 0.05;
  cfg.faults.forward.corrupt_rate = 0.02;
  cfg.faults.forward.duplicate_rate = 0.02;
  cfg.faults.reverse.drop_rate = 0.02;
  const auto result = core::run_incast_experiment(cfg);
  EXPECT_EQ(result.audit_violations, 0u);
  EXPECT_GT(result.injected_drops, 0);
}

TEST(Auditor, RelaxedModeMatchesOffModeByteForByte) {
  auto strict = small_incast(AuditMode::kRelaxed);
  auto off = small_incast(AuditMode::kOff);
  const auto r1 = core::run_incast_experiment(strict);
  const auto r2 = core::run_incast_experiment(off);
  // The auditor observes; it must never perturb the simulation.
  EXPECT_EQ(r1.events_processed, r2.events_processed);
  EXPECT_EQ(r1.avg_bct_ms, r2.avg_bct_ms);
  EXPECT_EQ(r1.queue_drops, r2.queue_drops);
}

TEST(Auditor, FleetTraceConservesBytes) {
  core::FleetConfig cfg;
  cfg.profile = workload::service_by_name("messaging");
  cfg.profile.max_flows = 60;
  cfg.profile.body_median_flows = 30.0;
  cfg.num_hosts = 1;
  cfg.num_snapshots = 1;
  cfg.trace_duration = 100_ms;
  cfg.audit_mode = AuditMode::kStrict;
  const core::FleetExperiment exp{cfg};
  const auto result = exp.run_host_trace(0, 0);
  EXPECT_EQ(result.audit_violations, 0u);
}

TEST(Auditor, EventBudgetAbortsExperiment) {
  auto cfg = small_incast(AuditMode::kRelaxed);
  cfg.audit.max_events = 500;  // far fewer than a full run needs
  EXPECT_THROW(core::run_incast_experiment(cfg), BudgetExceeded);
}

TEST(Auditor, LookaheadViolationThrowsInStrictCountsInRelaxed) {
  Auditor relaxed;
  relaxed.report_lookahead(/*entry_ns=*/100, /*window_end_ns=*/200);
  EXPECT_EQ(relaxed.violations(AuditInvariant::kLookahead), 1u);
  EXPECT_STREQ(to_string(AuditInvariant::kLookahead), "lookahead");

  Auditor strict{Auditor::Config{.strict = true}};
  try {
    strict.report_lookahead(100, 200);
    FAIL() << "expected AuditFailure";
  } catch (const AuditFailure& e) {
    EXPECT_STREQ(e.invariant(), "lookahead");
  }
}

TEST(Auditor, MergeFromFoldsLedgersViolationsAndEventCounts) {
  // The parallel engine's teardown path: per-domain ledgers must fold into
  // one exact global ledger, so strict conservation holds fabric-wide even
  // though no single domain's books balance on their own.
  Auditor a;
  Auditor b;
  a.on_bytes_injected(1000);      // domain A injects...
  b.on_bytes_delivered(600);      // ...domain B receives
  b.on_bytes_dropped(150);
  b.on_bytes_trimmed(50);
  a.on_control_injected(64);
  b.on_control_consumed(64);
  b.report_lookahead(1, 2);
  a.on_dispatch(Time::zero(), 1_us);
  b.on_dispatch(Time::zero(), 1_us);

  Auditor merged;
  merged.merge_from(a);
  merged.merge_from(b);
  EXPECT_EQ(merged.injected_bytes(), 1000);
  EXPECT_EQ(merged.delivered_bytes(), 600);
  EXPECT_EQ(merged.dropped_bytes(), 150);
  EXPECT_EQ(merged.trimmed_bytes(), 50);
  EXPECT_EQ(merged.control_injected_bytes(), 64);
  EXPECT_EQ(merged.control_consumed_bytes(), 64);
  EXPECT_EQ(merged.violations(AuditInvariant::kLookahead), 1u);
  EXPECT_EQ(merged.events_seen(), 2u);
  // 1000 + 64 == 600 + 64 + 150 + 50 + residual 200: books balance.
  merged.check_conservation(/*residual_bytes=*/200);
  EXPECT_EQ(merged.violations(AuditInvariant::kConservation), 0u);
}

#endif  // INCAST_AUDIT_ENABLED

TEST(Auditor, ParseAuditMode) {
  AuditMode mode{};
  EXPECT_TRUE(parse_audit_mode("off", mode));
  EXPECT_EQ(mode, AuditMode::kOff);
  EXPECT_TRUE(parse_audit_mode("relaxed", mode));
  EXPECT_EQ(mode, AuditMode::kRelaxed);
  EXPECT_TRUE(parse_audit_mode("strict", mode));
  EXPECT_EQ(mode, AuditMode::kStrict);
  EXPECT_FALSE(parse_audit_mode("bogus", mode));
  EXPECT_STREQ(to_string(AuditMode::kStrict), "strict");
  EXPECT_STREQ(to_string(AuditInvariant::kConservation), "conservation");
}

}  // namespace
}  // namespace incast::sim
