// Tests for the flow-count stability analysis (Section 3.3 / Figure 3).
#include "analysis/stability.h"

#include <gtest/gtest.h>

namespace incast::analysis {
namespace {

FlowCountGroup group(std::size_t index, const std::vector<double>& samples) {
  FlowCountGroup g;
  g.index = index;
  for (const double s : samples) g.flow_counts.add(s);
  return g;
}

TEST(Stability, EmptyInput) {
  const auto report = analyze_stability({});
  EXPECT_TRUE(report.groups.empty());
  EXPECT_DOUBLE_EQ(report.grand_mean, 0.0);
}

TEST(Stability, SingleGroupHasZeroSpread) {
  const auto report = analyze_stability({group(0, {100, 110, 90})});
  ASSERT_EQ(report.groups.size(), 1u);
  EXPECT_DOUBLE_EQ(report.groups[0].mean, 100.0);
  EXPECT_DOUBLE_EQ(report.mean_relative_spread, 0.0);
  EXPECT_DOUBLE_EQ(report.grand_mean, 100.0);
}

TEST(Stability, IdenticalGroupsAreStable) {
  std::vector<FlowCountGroup> groups;
  for (std::size_t i = 0; i < 5; ++i) {
    groups.push_back(group(i, {100, 200, 150, 120, 180}));
  }
  const auto report = analyze_stability(groups);
  EXPECT_DOUBLE_EQ(report.mean_relative_spread, 0.0);
  EXPECT_DOUBLE_EQ(report.p99_relative_spread, 0.0);
  EXPECT_NEAR(report.grand_mean, 150.0, 1e-9);
}

TEST(Stability, DivergentGroupsShowSpread) {
  const auto report = analyze_stability({
      group(0, {100, 100, 100}),
      group(1, {300, 300, 300}),
  });
  // means 100 and 300; grand mean 200; spread = 200/200 = 1.
  EXPECT_NEAR(report.mean_relative_spread, 1.0, 1e-9);
  EXPECT_NEAR(report.grand_mean, 200.0, 1e-9);
}

TEST(Stability, GrandMeanWeightsByBurstCount) {
  const auto report = analyze_stability({
      group(0, {100}),
      group(1, {200, 200, 200}),
  });
  // (100*1 + 200*3) / 4 = 175.
  EXPECT_NEAR(report.grand_mean, 175.0, 1e-9);
}

TEST(Stability, EmptyGroupsIgnoredInSpread) {
  const auto report = analyze_stability({
      group(0, {100, 100}),
      group(1, {}),
      group(2, {100, 100}),
  });
  ASSERT_EQ(report.groups.size(), 3u);
  EXPECT_EQ(report.groups[1].bursts, 0u);
  EXPECT_DOUBLE_EQ(report.mean_relative_spread, 0.0);
}

TEST(Stability, ReportsP99PerGroup) {
  std::vector<double> samples;
  for (int i = 1; i <= 100; ++i) samples.push_back(static_cast<double>(i));
  const auto report = analyze_stability({group(0, samples)});
  EXPECT_NEAR(report.groups[0].p99, 99.0, 0.1);
}

TEST(CoefficientOfVariation, ZeroForConstantSeries) {
  EXPECT_DOUBLE_EQ(coefficient_of_variation({5, 5, 5, 5}), 0.0);
}

TEST(CoefficientOfVariation, KnownValue) {
  // Values {8, 12}: mean 10, sample stddev = sqrt(8) ~= 2.828 -> CoV 0.283.
  EXPECT_NEAR(coefficient_of_variation({8, 12}), 0.2828, 0.001);
}

TEST(CoefficientOfVariation, DegenerateInputs) {
  EXPECT_DOUBLE_EQ(coefficient_of_variation({}), 0.0);
  EXPECT_DOUBLE_EQ(coefficient_of_variation({7}), 0.0);
  EXPECT_DOUBLE_EQ(coefficient_of_variation({0, 0}), 0.0);  // zero mean
}

}  // namespace
}  // namespace incast::analysis
