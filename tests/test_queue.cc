// Tests for DropTailQueue: FIFO order, tail drop, ECN marking, watermarks.
#include "net/queue.h"

#include <gtest/gtest.h>

namespace incast::net {
namespace {

Packet data_packet(std::int64_t seq = 0) { return make_data_packet(1, 2, 1, seq, 1460); }

TEST(DropTailQueue, FifoOrder) {
  DropTailQueue q{{.capacity_packets = 10, .ecn_threshold_packets = 0}};
  for (int i = 0; i < 3; ++i) EXPECT_TRUE(q.enqueue(data_packet(i * 1460)));
  for (int i = 0; i < 3; ++i) {
    const auto p = q.dequeue();
    ASSERT_TRUE(p.has_value());
    EXPECT_EQ(p->tcp.seq, i * 1460);
  }
  EXPECT_FALSE(q.dequeue().has_value());
}

TEST(DropTailQueue, TailDropAtCapacity) {
  DropTailQueue q{{.capacity_packets = 2, .ecn_threshold_packets = 0}};
  EXPECT_TRUE(q.enqueue(data_packet()));
  EXPECT_TRUE(q.enqueue(data_packet()));
  EXPECT_FALSE(q.enqueue(data_packet()));
  EXPECT_EQ(q.packets(), 2);
  EXPECT_EQ(q.stats().dropped_packets, 1);
  EXPECT_EQ(q.stats().dropped_bytes, 1500);
}

TEST(DropTailQueue, DropFreesSlotAfterDequeue) {
  DropTailQueue q{{.capacity_packets = 1, .ecn_threshold_packets = 0}};
  EXPECT_TRUE(q.enqueue(data_packet()));
  EXPECT_FALSE(q.enqueue(data_packet()));
  (void)q.dequeue();
  EXPECT_TRUE(q.enqueue(data_packet()));
}

TEST(DropTailQueue, EcnMarksWhenOccupancyAtThreshold) {
  DropTailQueue q{{.capacity_packets = 100, .ecn_threshold_packets = 3}};
  // Packets 1-3 arrive with occupancy 0,1,2 -> unmarked.
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(q.enqueue(data_packet()));
  }
  // Packet 4 arrives with occupancy 3 >= K -> marked CE.
  EXPECT_TRUE(q.enqueue(data_packet()));
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(q.dequeue()->ecn, Ecn::kEct0);
  }
  EXPECT_EQ(q.dequeue()->ecn, Ecn::kCe);
  EXPECT_EQ(q.stats().ecn_marked_packets, 1);
}

TEST(DropTailQueue, EcnDisabledNeverMarks) {
  DropTailQueue q{{.capacity_packets = 100, .ecn_threshold_packets = 0}};
  for (int i = 0; i < 50; ++i) EXPECT_TRUE(q.enqueue(data_packet()));
  EXPECT_EQ(q.stats().ecn_marked_packets, 0);
  while (auto p = q.dequeue()) EXPECT_NE(p->ecn, Ecn::kCe);
}

TEST(DropTailQueue, NonEctPacketsAreNotMarked) {
  DropTailQueue q{{.capacity_packets = 100, .ecn_threshold_packets = 1}};
  EXPECT_TRUE(q.enqueue(data_packet()));
  Packet ack = make_ack_packet(1, 2, 1, 0, false);
  EXPECT_TRUE(q.enqueue(ack));  // occupancy 1 >= K but NotEct
  (void)q.dequeue();
  EXPECT_EQ(q.dequeue()->ecn, Ecn::kNotEct);
  EXPECT_EQ(q.stats().ecn_marked_packets, 0);
}

TEST(DropTailQueue, BytesTracked) {
  DropTailQueue q{{.capacity_packets = 10, .ecn_threshold_packets = 0}};
  EXPECT_EQ(q.bytes(), 0);
  EXPECT_TRUE(q.enqueue(data_packet()));
  EXPECT_EQ(q.bytes(), 1500);
  EXPECT_TRUE(q.enqueue(make_ack_packet(1, 2, 1, 0, false)));
  EXPECT_EQ(q.bytes(), 1540);
  (void)q.dequeue();
  EXPECT_EQ(q.bytes(), 40);
}

TEST(DropTailQueue, WatermarkTracksPeakSinceLastRead) {
  DropTailQueue q{{.capacity_packets = 10, .ecn_threshold_packets = 0}};
  for (int i = 0; i < 5; ++i) (void)q.enqueue(data_packet());
  for (int i = 0; i < 4; ++i) (void)q.dequeue();
  EXPECT_EQ(q.peak_packets(), 5);
  EXPECT_EQ(q.take_watermark(), 5);
  // After reading, the watermark restarts from the current occupancy (1).
  EXPECT_EQ(q.peak_packets(), 1);
  (void)q.enqueue(data_packet());
  EXPECT_EQ(q.take_watermark(), 2);
}

TEST(DropTailQueue, StatsCountEnqueuesAndDequeues) {
  DropTailQueue q{{.capacity_packets = 2, .ecn_threshold_packets = 0}};
  (void)q.enqueue(data_packet());
  (void)q.enqueue(data_packet());
  (void)q.enqueue(data_packet());  // dropped
  (void)q.dequeue();
  EXPECT_EQ(q.stats().enqueued_packets, 2);
  EXPECT_EQ(q.stats().dropped_packets, 1);
  EXPECT_EQ(q.stats().dequeued_packets, 1);
  EXPECT_EQ(q.stats().dequeued_bytes, 1500);
}

TEST(DropTailQueue, ByteCapacityLimitsMixedSizes) {
  // 10,000-packet slot budget but only 5 KB of memory: three MTU frames
  // fit, the fourth tail-drops on bytes.
  DropTailQueue q{{.capacity_packets = 10'000, .capacity_bytes = 5'000,
                   .ecn_threshold_packets = 0}};
  EXPECT_TRUE(q.enqueue(data_packet()));
  EXPECT_TRUE(q.enqueue(data_packet()));
  EXPECT_TRUE(q.enqueue(data_packet()));
  EXPECT_FALSE(q.enqueue(data_packet()));  // 6000 > 5000
  // Small packets still fit in the remaining bytes.
  EXPECT_TRUE(q.enqueue(make_ack_packet(1, 2, 1, 0, false)));
  EXPECT_EQ(q.stats().dropped_packets, 1);
}

TEST(DropTailQueue, ByteCapacityDisabledByDefault) {
  DropTailQueue q{{.capacity_packets = 2, .ecn_threshold_packets = 0}};
  EXPECT_EQ(q.config().capacity_bytes, 0);
  EXPECT_TRUE(q.enqueue(data_packet()));
  EXPECT_TRUE(q.enqueue(data_packet()));
  EXPECT_FALSE(q.enqueue(data_packet()));  // packet cap still applies
}

// Property sweep: occupancy never exceeds capacity for any capacity.
class QueueCapacityProperty : public ::testing::TestWithParam<int> {};

TEST_P(QueueCapacityProperty, OccupancyNeverExceedsCapacity) {
  const int capacity = GetParam();
  DropTailQueue q{{.capacity_packets = capacity, .ecn_threshold_packets = 5}};
  for (int i = 0; i < capacity * 3 + 7; ++i) {
    (void)q.enqueue(data_packet());
    ASSERT_LE(q.packets(), capacity);
  }
  EXPECT_EQ(q.packets(), capacity);
  EXPECT_EQ(q.stats().dropped_packets, capacity * 2 + 7);
}

INSTANTIATE_TEST_SUITE_P(Capacities, QueueCapacityProperty,
                         ::testing::Values(1, 2, 3, 10, 65, 1333));

}  // namespace
}  // namespace incast::net
