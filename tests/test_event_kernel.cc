// Golden-determinism contract of the rebuilt event kernel.
//
// The kernel rewrite (inline callbacks, slab-backed 4-ary heap,
// generation-stamped cancellation) must be invisible to every experiment:
// same FIFO order at equal timestamps, same cancel semantics, and — the
// strongest form — byte-identical experiment output. The fingerprint tests
// hash a fleet CSV export and a faults sweep report with FNV-1a and compare
// against hashes committed here, at --jobs 1, 4, and 16: a regression in
// ordering, seeding, or cancellation anywhere in the kernel moves the hash.
//
// Suite names contain "Sweep" so the TSan CI leg (ctest -R 'Sweep') races
// the kernel under the multi-threaded sweep pool as well.
#include <gtest/gtest.h>

#include <cstdint>
#include <iomanip>
#include <sstream>
#include <string>
#include <vector>

#include "core/fleet_experiment.h"
#include "core/resilience_experiment.h"
#include "sim/simulator.h"
#include "telemetry/trace_io.h"
#include "workload/service_profile.h"

namespace incast {
namespace {

using namespace incast::sim::literals;

// ---- kernel-level ordering and cancellation --------------------------------

TEST(EventKernel, EqualTimestampsFireInScheduleOrderThroughSimulator) {
  sim::Simulator sim;
  std::vector<int> fired;
  // Schedule from outside and from within callbacks: insertion order must
  // win at equal timestamps either way.
  for (int i = 0; i < 5; ++i) {
    sim.schedule_at(sim::Time::microseconds(10), [&fired, i] { fired.push_back(i); });
  }
  sim.schedule_at(5_us, [&] {
    for (int i = 5; i < 8; ++i) {
      sim.schedule_at(sim::Time::microseconds(10), [&fired, i] { fired.push_back(i); });
    }
  });
  sim.run();
  EXPECT_EQ(fired, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7}));
}

TEST(EventKernel, CancelAfterFireIsANoOp) {
  sim::Simulator sim;
  int fired = 0;
  const sim::EventId early = sim.schedule_at(1_us, [&] { ++fired; });
  sim.schedule_at(2_us, [&] {
    sim.cancel(early);  // already fired: must not disturb anything pending
    ++fired;
  });
  sim.schedule_at(3_us, [&] { ++fired; });
  sim.run();
  EXPECT_EQ(fired, 3);
}

TEST(EventKernel, StaleIdsNeverCancelASlotsNewOccupant) {
  // The RTO pattern at simulator level: a timer is cancelled and
  // rescheduled many times, recycling slab slots. Cancelling every stale id
  // afterwards must leave the live timer untouched.
  sim::Simulator sim;
  std::vector<sim::EventId> stale;
  int fired = 0;
  for (int i = 0; i < 500; ++i) {
    const sim::EventId id =
        sim.schedule_at(sim::Time::milliseconds(100 + i), [&] { ++fired; });
    stale.push_back(id);
    sim.cancel(id);
  }
  const sim::EventId live = sim.schedule_at(50_ms, [&] { ++fired; });
  for (const sim::EventId id : stale) sim.cancel(id);  // all true no-ops
  (void)live;
  sim.run();
  EXPECT_EQ(fired, 1);
}

TEST(EventKernel, ReserveIsInvisibleToResults) {
  auto run_chain = [](std::size_t reserve) {
    sim::Simulator sim;
    if (reserve > 0) sim.reserve_events(reserve);
    std::vector<std::int64_t> stamps;
    for (int i = 0; i < 50; ++i) {
      sim.schedule_at(sim::Time::microseconds(100 - i),
                      [&stamps, &sim] { stamps.push_back(sim.now().ns()); });
    }
    sim.run();
    return stamps;
  };
  EXPECT_EQ(run_chain(0), run_chain(4096));
}

TEST(EventKernel, FootprintCountersTrackTheRun) {
  sim::Simulator sim;
  for (int i = 0; i < 32; ++i) {
    sim.schedule_at(sim::Time::microseconds(1 + i), [] {});
  }
  sim.run();
  EXPECT_EQ(sim.peak_events_pending(), 32u);
  EXPECT_EQ(sim.slab_high_water(), 32u);
  EXPECT_EQ(sim.events_processed(), 32u);
}

// ---- golden fingerprints ---------------------------------------------------

std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const unsigned char c : s) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

// The exact bytes `incast_sim fleet --export-csv` would write for each
// trace, plus the scalar outcomes — equality of this string is equality of
// everything the fleet experiment observes.
std::string fleet_export(int jobs) {
  core::FleetConfig cfg;
  cfg.profile = workload::service_by_name("messaging");
  cfg.profile.max_flows = 30;
  cfg.profile.body_median_flows = 15.0;
  cfg.num_hosts = 2;
  cfg.num_snapshots = 2;
  cfg.trace_duration = 60_ms;
  cfg.base_seed = 11;
  cfg.tcp.cc = tcp::CcAlgorithm::kDctcp;
  cfg.tcp.rtt.min_rto = 200_ms;
  cfg.jobs = jobs;
  core::FleetExperiment exp{cfg};
  exp.set_keep_bins(true);
  std::ostringstream out;
  for (const auto& r : exp.run_all()) {
    out << r.host << ',' << r.snapshot << ',' << r.queue_drops << ','
        << r.generated_bursts << ',' << r.events_processed << ','
        << r.summary.bursts.size() << '\n';
    telemetry::write_bins_csv(r.bins, out);
    for (const auto wm : r.queue_watermarks) out << wm << ',';
    out << '\n';
  }
  return out.str();
}

// The faults sweep reduced to its deterministic outcome fields (doubles at
// full round-trip precision).
std::string faults_export(int jobs) {
  core::ResilienceConfig cfg;
  cfg.base.num_flows = 30;
  cfg.base.burst_duration = 2_ms;
  cfg.base.num_bursts = 2;
  cfg.base.discard_bursts = 1;
  cfg.base.tcp.cc = tcp::CcAlgorithm::kDctcp;
  cfg.drop_rates = {0.0, 5e-2};
  cfg.flap_durations = {5_ms};
  cfg.jobs = jobs;
  const auto report = core::run_resilience_experiment(cfg);
  std::ostringstream out;
  out << std::setprecision(17);
  out << core::to_string(report.baseline_mode) << ','
      << report.baseline.events_processed << '\n';
  for (const auto& p : report.points) {
    out << core::to_string(p.mode) << ',' << p.drop_rate << ','
        << p.flap_duration.ns() << ',' << p.result.events_processed << ','
        << p.result.timeouts << ',' << p.result.injected_drops << ','
        << p.result.avg_bct_ms << ',' << p.goodput_rel << ','
        << p.recovery_after_flap_ms << '\n';
  }
  return out.str();
}

// Committed golden fingerprints. If a kernel change moves one of these, the
// change altered observable simulation behavior — that is a determinism
// regression unless the new behavior is intentional, reviewed, and these
// constants are updated in the same commit.
constexpr std::uint64_t kFleetGoldenFnv = 0x3898e3d2316d4688ULL;
constexpr std::uint64_t kFaultsGoldenFnv = 0x3a2f640f903ee7d1ULL;

TEST(EventKernelSweepDeterminism, FleetExportMatchesCommittedGoldenAtAnyJobs) {
  for (const int jobs : {1, 4, 16}) {
    const std::string csv = fleet_export(jobs);
    ASSERT_GT(csv.size(), 1000u);
    EXPECT_EQ(fnv1a(csv), kFleetGoldenFnv) << "jobs=" << jobs;
  }
}

TEST(EventKernelSweepDeterminism, FaultsExportMatchesCommittedGoldenAtAnyJobs) {
  for (const int jobs : {1, 4, 16}) {
    const std::string report = faults_export(jobs);
    ASSERT_GT(report.size(), 100u);
    EXPECT_EQ(fnv1a(report), kFaultsGoldenFnv) << "jobs=" << jobs;
  }
}

}  // namespace
}  // namespace incast
