// The observability determinism contract: the hub observes exactly one cell
// of the fleet grid (host 0, snapshot 0), and trace timestamps are sim-time
// only, so --trace-out and --metrics-out must be byte-identical no matter
// how many SweepRunner workers execute the grid.
//
// The suite name contains "Sweep" so the TSan CI leg (ctest -R 'Sweep')
// races the hub-carrying task against the rest of the pool.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "core/fleet_experiment.h"
#include "obs/hub.h"
#include "workload/service_profile.h"

namespace incast {
namespace {

struct ObsOutput {
  std::string trace;
  std::string metrics;
};

ObsOutput run_fleet_with_hub(int jobs) {
  obs::Hub hub;
  hub.tracer().set_enabled(true);

  core::FleetConfig cfg;
  cfg.profile = workload::service_by_name("messaging");
  cfg.profile.max_flows = 30;
  cfg.profile.body_median_flows = 15.0;
  cfg.num_hosts = 3;
  cfg.num_snapshots = 2;
  cfg.trace_duration = sim::Time::milliseconds(40);
  cfg.base_seed = 7;
  cfg.tcp.cc = tcp::CcAlgorithm::kDctcp;
  cfg.jobs = jobs;
  cfg.hub = &hub;
  const core::FleetExperiment exp{cfg};
  (void)exp.run_all();

  ObsOutput out;
  std::ostringstream trace;
  hub.write_trace(trace);
  out.trace = trace.str();
  EXPECT_TRUE(hub.has_final_metrics());
  out.metrics = hub.final_metrics().to_json();
  return out;
}

TEST(ObsSweepDeterminism, TraceAndMetricsAreByteIdenticalAcrossJobs) {
#if !INCAST_OBS_ENABLED
  GTEST_SKIP() << "observability compiled out (-DINCAST_OBS=OFF)";
#endif
  const ObsOutput sequential = run_fleet_with_hub(1);
  // A trivially empty capture would make the identity check vacuous.
  ASSERT_GT(sequential.trace.size(), 100u);
  EXPECT_NE(sequential.metrics.find("net.queue.tor_r->receiver0.drops"),
            std::string::npos);

  for (const int jobs : {4, 16}) {
    const ObsOutput parallel = run_fleet_with_hub(jobs);
    EXPECT_EQ(sequential.trace, parallel.trace) << "jobs=" << jobs;
    EXPECT_EQ(sequential.metrics, parallel.metrics) << "jobs=" << jobs;
  }
}

}  // namespace
}  // namespace incast
