// Tests for tail loss probe (RFC 8985-lite).
#include <gtest/gtest.h>

#include "net/topology.h"
#include "tcp/tcp_connection.h"

namespace incast::tcp {
namespace {

using sim::Simulator;
using sim::Time;
using namespace incast::sim::literals;

constexpr std::int64_t kMss = 1460;

TcpConfig tlp_config() {
  TcpConfig c;
  c.cc = CcAlgorithm::kReno;
  c.tail_loss_probe = true;
  c.min_pto = 1_ms;
  c.rtt.min_rto = 200_ms;  // the RTO TLP is supposed to save us from
  c.rtt.initial_rto = 200_ms;
  return c;
}

// A sender whose ACKs we fabricate by hand (nothing real is connected for
// the flow, so the network stays silent unless we speak).
struct Fixture {
  Simulator sim;
  net::Dumbbell topo{sim, net::DumbbellConfig{.num_senders = 1}};
  TcpSender sender;

  explicit Fixture(const TcpConfig& cfg = tlp_config())
      : sender{sim, topo.sender(0), topo.receiver(0).id(), 1, cfg} {}

  void ack(std::int64_t cum) {
    sender.handle_packet(
        net::make_ack_packet(topo.receiver(0).id(), topo.sender(0).id(), 1, cum, false));
  }

  // Establishes an SRTT (~30 us) so the PTO is min_pto-bound rather than
  // falling back to 2x the initial RTO.
  void prime_srtt() {
    sender.add_app_data(kMss);
    sim.run_until(sim.now() + 30_us);
    ack(sender.snd_una() + kMss);
    ASSERT_TRUE(sender.rtt_estimator().has_sample());
  }
};

TEST(TailLossProbe, ProbeFiresBeforeRto) {
  Fixture f;
  f.prime_srtt();
  f.sender.add_app_data(5 * kMss);
  // Silence: no further ACKs. The PTO (min_pto = 1 ms with a ~30 us SRTT)
  // must fire long before the 200 ms RTO.
  f.sim.run_until(150_ms);
  EXPECT_GE(f.sender.stats().tlp_probes, 1);
  EXPECT_EQ(f.sender.stats().timeouts, 0);
}

TEST(TailLossProbe, OneProbePerQuietEpisode) {
  Fixture f;
  f.prime_srtt();
  f.sender.add_app_data(5 * kMss);
  f.sim.run_until(150_ms);
  // Without any forward progress, exactly one probe is sent; the RTO
  // remains the backstop.
  EXPECT_EQ(f.sender.stats().tlp_probes, 1);
}

TEST(TailLossProbe, NewAckReopensProbeBudget) {
  Fixture f;
  f.prime_srtt();
  f.sender.add_app_data(20 * kMss);
  f.sim.run_until(f.sim.now() + 5_ms);
  EXPECT_EQ(f.sender.stats().tlp_probes, 1);
  f.ack(f.sender.snd_una() + 2 * kMss);  // progress: probe budget resets, PTO re-arms
  f.sim.run_until(100_ms);
  EXPECT_EQ(f.sender.stats().tlp_probes, 2);
}

TEST(TailLossProbe, DisabledByDefault) {
  TcpConfig cfg;
  EXPECT_FALSE(cfg.tail_loss_probe);
  cfg.cc = CcAlgorithm::kReno;
  cfg.rtt.min_rto = 50_ms;
  cfg.rtt.initial_rto = 50_ms;
  Fixture f{cfg};
  f.sender.add_app_data(5 * kMss);
  f.sim.run_until(40_ms);
  EXPECT_EQ(f.sender.stats().tlp_probes, 0);
}

TEST(TailLossProbe, ProbeRetransmitsLastSegmentWhenNoNewData) {
  Fixture f;
  f.prime_srtt();
  f.sender.add_app_data(3 * kMss);  // IW10 covers it: everything sent at once
  f.sim.run_until(f.sim.now() + 10_ms);
  ASSERT_GE(f.sender.stats().tlp_probes, 1);
  // No new data existed, so the probe was a retransmission.
  EXPECT_GE(f.sender.stats().retransmitted_packets, 1);
}

TEST(TailLossProbe, ProbeSendsNewDataWhenAvailable) {
  TcpConfig cfg = tlp_config();
  cfg.cc_config.initial_window_segments = 2;  // leave unsent data behind
  Fixture f{cfg};
  f.prime_srtt();
  f.sender.add_app_data(10 * kMss);
  const std::int64_t nxt_before = f.sender.snd_nxt();
  f.sim.run_until(f.sim.now() + 10_ms);
  ASSERT_GE(f.sender.stats().tlp_probes, 1);
  // The probe advanced snd_nxt (new data) instead of retransmitting.
  EXPECT_GT(f.sender.snd_nxt(), nxt_before);
  EXPECT_EQ(f.sender.stats().retransmitted_packets, 0);
}

TEST(TailLossProbe, ConvertsTailLossIntoFastRecovery) {
  // End-to-end: a shallow queue drops the tail of a window. With TLP the
  // probe elicits SACK feedback and fast recovery repairs the hole; the
  // 200 ms RTO never fires. Without TLP the same scenario needs the RTO.
  auto run = [](bool tlp) {
    Simulator sim;
    net::DumbbellConfig topo_cfg;
    topo_cfg.num_senders = 1;
    topo_cfg.switch_queue.capacity_packets = 6;
    topo_cfg.switch_queue.ecn_threshold_packets = 0;
    topo_cfg.receiver_link = sim::Bandwidth::gigabits_per_second(1);
    net::Dumbbell topo{sim, topo_cfg};
    TcpConfig cfg;
    cfg.cc = CcAlgorithm::kReno;
    cfg.tail_loss_probe = tlp;
    cfg.min_pto = 1_ms;
    cfg.rtt.min_rto = 200_ms;
    cfg.rtt.initial_rto = 200_ms;
    TcpConnection conn{sim, topo.sender(0), topo.receiver(0), 1, cfg};

    conn.sender().add_app_data(500'000);
    Time done;
    conn.sender().set_on_all_acked([&] { done = sim.now(); });
    sim.run_until(10_s);
    EXPECT_TRUE(conn.sender().all_acked());
    return std::tuple{done, conn.sender().stats().timeouts,
                      conn.sender().stats().tlp_probes};
  };

  const auto [done_tlp, rtos_tlp, probes_tlp] = run(true);
  const auto [done_rto, rtos_rto, probes_rto] = run(false);

  EXPECT_GT(probes_tlp, 0);
  EXPECT_EQ(probes_rto, 0);
  EXPECT_LT(rtos_tlp, rtos_rto);
  // TLP completes the transfer dramatically sooner than RTO-based recovery.
  EXPECT_LT(done_tlp + 100_ms, done_rto);
}

}  // namespace
}  // namespace incast::tcp
