// Tests for the flow-count predictor and the guardrail cap rule.
#include "core/predictor.h"

#include <gtest/gtest.h>

#include <cmath>

#include "sim/random.h"

namespace incast::core {
namespace {

TEST(FlowCountPredictor, NotReadyWithoutHistory) {
  FlowCountPredictor p{{.window_bursts = 100, .min_history = 10}};
  EXPECT_FALSE(p.ready());
  EXPECT_EQ(p.predict_p99(), 0);
  EXPECT_DOUBLE_EQ(p.predict_mean(), 0.0);
  for (int i = 0; i < 9; ++i) p.observe(50);
  EXPECT_FALSE(p.ready());
  p.observe(50);
  EXPECT_TRUE(p.ready());
}

TEST(FlowCountPredictor, PredictsPercentilesOfHistory) {
  FlowCountPredictor p{{.window_bursts = 1000, .min_history = 10}};
  for (int i = 1; i <= 100; ++i) p.observe(i);
  EXPECT_NEAR(p.predict_percentile(50), 50, 1);
  EXPECT_NEAR(p.predict_p99(), 99, 1);
  EXPECT_NEAR(p.predict_mean(), 50.5, 0.01);
}

TEST(FlowCountPredictor, SlidingWindowForgetsOldBursts) {
  FlowCountPredictor p{{.window_bursts = 50, .min_history = 10}};
  for (int i = 0; i < 50; ++i) p.observe(100);
  EXPECT_EQ(p.predict_p99(), 100);
  // A regime change: new observations displace the old within a window.
  for (int i = 0; i < 50; ++i) p.observe(300);
  EXPECT_EQ(p.predict_p99(), 300);
  EXPECT_DOUBLE_EQ(p.predict_mean(), 300.0);
  EXPECT_EQ(p.history_size(), 50u);
}

TEST(FlowCountPredictor, StablePredictionForStationaryService) {
  // Section 3.3: stable distributions make the p99 forecast reliable.
  sim::Rng rng{42};
  FlowCountPredictor p;
  for (int i = 0; i < 500; ++i) {
    p.observe(static_cast<int>(rng.lognormal(std::log(150.0), 0.3)));
  }
  const int first = p.predict_p99();
  for (int i = 0; i < 500; ++i) {
    p.observe(static_cast<int>(rng.lognormal(std::log(150.0), 0.3)));
  }
  const int second = p.predict_p99();
  EXPECT_NEAR(first, second, first * 0.15);
}

TEST(GuardrailCap, BudgetSplitAcrossPredictedFlows) {
  // BDP 37.5 KB + threshold 65 pkts * 1500 B = 135 KB budget.
  const std::int64_t bdp = 37'500;
  const std::int64_t ecn = 65 * 1500;
  const std::int64_t mss = 1460;
  EXPECT_EQ(suggest_cwnd_cap_bytes(10, bdp, ecn, mss), (bdp + ecn) / 10);
  EXPECT_EQ(suggest_cwnd_cap_bytes(50, bdp, ecn, mss), (bdp + ecn) / 50);
}

TEST(GuardrailCap, FloorsAtOneMss) {
  const std::int64_t mss = 1460;
  // 1000 predicted flows: budget/1000 is below one MSS -> floor.
  EXPECT_EQ(suggest_cwnd_cap_bytes(1000, 37'500, 97'500, mss), mss);
}

TEST(GuardrailCap, DegenerateInputs) {
  const std::int64_t mss = 1460;
  EXPECT_EQ(suggest_cwnd_cap_bytes(0, 37'500, 97'500, mss), mss);
  EXPECT_EQ(suggest_cwnd_cap_bytes(-5, 37'500, 97'500, mss), mss);
}

}  // namespace
}  // namespace incast::core
