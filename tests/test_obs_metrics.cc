// Tests for the central metrics registry.
#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

namespace incast::obs {
namespace {

TEST(ObsMetrics, SnapshotListsEntriesSortedByName) {
  MetricsRegistry reg;
  std::int64_t drops = 7;
  double depth = 2.5;
  reg.register_counter("net.queue.l0.drops", [&] { return drops; });
  reg.register_gauge("net.queue.l0.depth", [&] { return depth; });
  reg.register_counter("fault.injected.drops", [] { return std::int64_t{3}; });

  const auto snap = reg.snapshot(1234);
  EXPECT_EQ(snap.at_ns, 1234);
  ASSERT_EQ(snap.entries.size(), 3u);
  EXPECT_EQ(snap.entries[0].name, "fault.injected.drops");
  EXPECT_EQ(snap.entries[1].name, "net.queue.l0.depth");
  EXPECT_EQ(snap.entries[2].name, "net.queue.l0.drops");
  EXPECT_EQ(snap.entries[2].counter, 7);
  EXPECT_DOUBLE_EQ(snap.entries[1].gauge, 2.5);

  // Pull model: the source is re-read at snapshot time, not registration.
  drops = 11;
  EXPECT_EQ(reg.snapshot(0).entries[2].counter, 11);
}

TEST(ObsMetrics, NameCollisionThrows) {
  MetricsRegistry reg;
  reg.register_counter("tcp.sender.1.rto_count", [] { return std::int64_t{0}; });
  EXPECT_THROW(reg.register_counter("tcp.sender.1.rto_count", [] { return std::int64_t{0}; }),
               std::invalid_argument);
  // Collisions are rejected across kinds too — a gauge cannot shadow a
  // counter.
  EXPECT_THROW(reg.register_gauge("tcp.sender.1.rto_count", [] { return 0.0; }),
               std::invalid_argument);
  EXPECT_THROW(reg.register_histogram("tcp.sender.1.rto_count", {1.0}),
               std::invalid_argument);
  EXPECT_THROW(reg.register_counter("", [] { return std::int64_t{0}; }),
               std::invalid_argument);
  EXPECT_EQ(reg.size(), 1u);
}

TEST(ObsMetrics, UnregisterPrefixRemovesComponentSubtree) {
  MetricsRegistry reg;
  reg.register_counter("tcp.sender.1.rto_count", [] { return std::int64_t{0}; });
  reg.register_counter("tcp.sender.2.rto_count", [] { return std::int64_t{0}; });
  reg.register_counter("net.queue.l0.drops", [] { return std::int64_t{0}; });

  EXPECT_EQ(reg.unregister_prefix("tcp.sender."), 2u);
  EXPECT_EQ(reg.size(), 1u);
  EXPECT_FALSE(reg.contains("tcp.sender.1.rto_count"));
  EXPECT_TRUE(reg.contains("net.queue.l0.drops"));
  // Re-registering a removed name is allowed (component restarted).
  reg.register_counter("tcp.sender.1.rto_count", [] { return std::int64_t{5}; });
  EXPECT_EQ(reg.unregister_prefix("nomatch."), 0u);
}

TEST(ObsMetrics, HistogramBucketsByUpperBound) {
  MetricsRegistry reg;
  Histogram& h = reg.register_histogram("core.incast.bct_ms", {1.0, 5.0, 10.0});
  h.record(0.5);   // <= 1
  h.record(5.0);   // <= 5 (bounds are inclusive)
  h.record(7.0);   // <= 10
  h.record(100.0); // overflow
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 112.5);
  ASSERT_EQ(h.bucket_counts().size(), 4u);
  EXPECT_EQ(h.bucket_counts()[0], 1u);
  EXPECT_EQ(h.bucket_counts()[1], 1u);
  EXPECT_EQ(h.bucket_counts()[2], 1u);
  EXPECT_EQ(h.bucket_counts()[3], 1u);
}

TEST(ObsMetrics, JsonExportIsDeterministic) {
  MetricsRegistry reg;
  reg.register_counter("b.count", [] { return std::int64_t{2}; });
  reg.register_gauge("a.depth", [] { return 1.5; });

  const std::string json = reg.snapshot(42).to_json();
  // Sorted name order, fixed shape.
  EXPECT_NE(json.find("\"at_ns\": 42"), std::string::npos) << json;
  const auto a = json.find("a.depth");
  const auto b = json.find("b.count");
  ASSERT_NE(a, std::string::npos) << json;
  ASSERT_NE(b, std::string::npos) << json;
  EXPECT_LT(a, b);
  EXPECT_EQ(json, reg.snapshot(42).to_json());
}

}  // namespace
}  // namespace incast::obs
