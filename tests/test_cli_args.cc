// Tests for the CLI argument parser.
#include "core/cli_args.h"

#include <gtest/gtest.h>

#include <vector>

namespace incast::core {
namespace {

using namespace incast::sim::literals;

CliArgs make(std::initializer_list<const char*> argv) {
  std::vector<const char*> full{"prog"};
  full.insert(full.end(), argv.begin(), argv.end());
  return CliArgs{static_cast<int>(full.size()), full.data()};
}

TEST(CliArgs, KeyValueForms) {
  auto args = make({"--flows", "500", "--duration=15ms", "--verbose"});
  EXPECT_EQ(args.get("flows"), "500");
  EXPECT_EQ(args.get("duration"), "15ms");
  EXPECT_EQ(args.get("verbose"), "true");  // bare flag
  EXPECT_FALSE(args.get("missing").has_value());
}

TEST(CliArgs, PositionalArguments) {
  auto args = make({"burst", "--flows", "10", "extra"});
  ASSERT_EQ(args.positional().size(), 2u);
  EXPECT_EQ(args.positional()[0], "burst");
  EXPECT_EQ(args.positional()[1], "extra");
}

TEST(CliArgs, TypedGetters) {
  auto args = make({"--n", "42", "--x", "2.5", "--on", "yes", "--t", "15ms", "--bw",
                    "10Gbps"});
  EXPECT_EQ(args.int_or("n", 0), 42);
  EXPECT_DOUBLE_EQ(args.double_or("x", 0.0), 2.5);
  EXPECT_TRUE(args.bool_or("on", false));
  EXPECT_EQ(args.time_or("t", sim::Time::zero()), 15_ms);
  EXPECT_EQ(args.bandwidth_or("bw", sim::Bandwidth::zero()),
            sim::Bandwidth::gigabits_per_second(10));
  EXPECT_TRUE(args.errors().empty());
}

TEST(CliArgs, DefaultsWhenAbsent) {
  auto args = make({});
  EXPECT_EQ(args.int_or("n", 7), 7);
  EXPECT_DOUBLE_EQ(args.double_or("x", 1.5), 1.5);
  EXPECT_FALSE(args.bool_or("on", false));
  EXPECT_EQ(args.time_or("t", 5_ms), 5_ms);
  EXPECT_EQ(args.get_or("s", "dflt"), "dflt");
  EXPECT_TRUE(args.errors().empty());
}

TEST(CliArgs, MalformedValuesCollectErrors) {
  auto args = make({"--n", "abc", "--t", "fast", "--on", "maybe", "--bw", "much"});
  EXPECT_EQ(args.int_or("n", 7), 7);
  EXPECT_EQ(args.time_or("t", 5_ms), 5_ms);
  EXPECT_FALSE(args.bool_or("on", false));
  EXPECT_EQ(args.bandwidth_or("bw", sim::Bandwidth::zero()), sim::Bandwidth::zero());
  EXPECT_EQ(args.errors().size(), 4u);
}

TEST(CliArgs, UnusedKeysDetected) {
  auto args = make({"--used", "1", "--typo", "2"});
  (void)args.int_or("used", 0);
  const auto unused = args.unused_keys();
  ASSERT_EQ(unused.size(), 1u);
  EXPECT_EQ(unused[0], "typo");
}

TEST(CliArgs, RangeCheckedGettersAcceptInRangeValues) {
  auto args = make({"--flows", "500", "--rate", "0.25", "--gap", "10ms"});
  EXPECT_EQ(args.int_or("flows", 1, 1, 100'000), 500);
  EXPECT_DOUBLE_EQ(args.double_or("rate", 0.0, 0.0, 1.0), 0.25);
  EXPECT_EQ(args.time_or("gap", sim::Time::zero(), sim::Time::zero()), 10_ms);
  // Boundary values are in range.
  auto edge = make({"--flows", "1", "--rate", "1"});
  EXPECT_EQ(edge.int_or("flows", 5, 1, 100'000), 1);
  EXPECT_DOUBLE_EQ(edge.double_or("rate", 0.0, 0.0, 1.0), 1.0);
  EXPECT_TRUE(args.errors().empty());
  EXPECT_TRUE(edge.errors().empty());
}

TEST(CliArgs, RangeCheckedGettersRejectOutOfRangeValues) {
  auto args = make({"--flows", "0", "--rate", "1.5", "--gap", "-3ms"});
  EXPECT_EQ(args.int_or("flows", 10, 1, 100'000), 10);      // fallback returned
  EXPECT_DOUBLE_EQ(args.double_or("rate", 0.0, 0.0, 1.0), 0.0);
  EXPECT_EQ(args.time_or("gap", 5_ms, sim::Time::zero()), 5_ms);
  EXPECT_EQ(args.errors().size(), 3u);
}

TEST(CliArgs, RejectUnknownTurnsTyposIntoErrors) {
  auto args = make({"--flows", "10", "--flws", "20"});
  (void)args.int_or("flows", 0);
  EXPECT_TRUE(args.errors().empty());
  args.reject_unknown();
  ASSERT_EQ(args.errors().size(), 1u);
  EXPECT_NE(args.errors()[0].find("flws"), std::string::npos);
  EXPECT_NE(args.errors()[0].find("unknown"), std::string::npos);
}

TEST(CliArgs, RejectUnknownIsQuietWhenEverythingWasRead) {
  auto args = make({"--flows", "10"});
  (void)args.int_or("flows", 0);
  args.reject_unknown();
  EXPECT_TRUE(args.errors().empty());
}

TEST(CliArgs, NegativeNumbersAreValuesNotFlags) {
  // "--delta -5" : "-5" does not start with "--", so it is the value.
  auto args = make({"--delta", "-5"});
  EXPECT_EQ(args.int_or("delta", 0), -5);
}

TEST(CliArgs, FlagFollowedByFlagIsBare) {
  auto args = make({"--a", "--b", "7"});
  EXPECT_EQ(args.get("a"), "true");
  EXPECT_EQ(args.int_or("b", 0), 7);
}

TEST(ResolveParallelism, AutoDomainsTakeEveryHardwareThread) {
  Parallelism p;
  std::string err;
  ASSERT_TRUE(resolve_parallelism(/*jobs=*/0, /*domains=*/0, /*hw=*/8, p, err));
  EXPECT_EQ(p.domains, 8);
  EXPECT_EQ(p.jobs, 1);  // 8 / 8 leaves nothing over
}

TEST(ResolveParallelism, AutoJobsTakeWhatTheDomainsLeaveOver) {
  Parallelism p;
  std::string err;
  ASSERT_TRUE(resolve_parallelism(0, /*domains=*/2, /*hw=*/8, p, err));
  EXPECT_EQ(p.domains, 2);
  EXPECT_EQ(p.jobs, 4);
}

TEST(ResolveParallelism, AutoJobsNeverDropBelowOne) {
  Parallelism p;
  std::string err;
  ASSERT_TRUE(resolve_parallelism(0, /*domains=*/16, /*hw=*/4, p, err));
  EXPECT_EQ(p.domains, 16);
  EXPECT_EQ(p.jobs, 1);
}

TEST(ResolveParallelism, ZeroHardwareThreadsMeansOne) {
  // std::thread::hardware_concurrency() may legitimately return 0.
  Parallelism p;
  std::string err;
  ASSERT_TRUE(resolve_parallelism(0, 0, /*hw=*/0, p, err));
  EXPECT_EQ(p.domains, 1);
  EXPECT_EQ(p.jobs, 1);
}

TEST(ResolveParallelism, ExplicitOversubscriptionIsRejected) {
  Parallelism p;
  std::string err;
  EXPECT_FALSE(resolve_parallelism(/*jobs=*/4, /*domains=*/4, /*hw=*/8, p, err));
  EXPECT_NE(err.find("oversubscribes"), std::string::npos);
  EXPECT_NE(err.find("16"), std::string::npos);  // the offending product
}

TEST(ResolveParallelism, ExplicitFitIsAccepted) {
  Parallelism p;
  std::string err;
  ASSERT_TRUE(resolve_parallelism(/*jobs=*/2, /*domains=*/4, /*hw=*/8, p, err));
  EXPECT_EQ(p.jobs, 2);
  EXPECT_EQ(p.domains, 4);
}

TEST(ResolveParallelism, SerialSideStaysPermissive) {
  // jobs=1 means the sweep is serial: a large explicit --domains is fine
  // even past the hardware count (the engine's threads block at barriers,
  // they do not thrash), and vice versa for --jobs with one domain.
  Parallelism p;
  std::string err;
  ASSERT_TRUE(resolve_parallelism(/*jobs=*/1, /*domains=*/64, /*hw=*/4, p, err));
  EXPECT_EQ(p.domains, 64);
  ASSERT_TRUE(resolve_parallelism(/*jobs=*/64, /*domains=*/1, /*hw=*/4, p, err));
  EXPECT_EQ(p.jobs, 64);
}

TEST(ResolveParallelism, NegativeValuesAreRejected) {
  Parallelism p;
  std::string err;
  EXPECT_FALSE(resolve_parallelism(-1, 0, 8, p, err));
  EXPECT_FALSE(resolve_parallelism(0, -2, 8, p, err));
}

}  // namespace
}  // namespace incast::core
