// Integration test: a mid-transfer link blackhole (flap) forces the sender
// into RTO-driven recovery with exponential backoff, and the transfer
// completes once the link is restored.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "fault/fault_injector.h"
#include "net/topology.h"
#include "tcp/tcp_connection.h"

namespace incast::tcp {
namespace {

using sim::Simulator;
using sim::Time;
using namespace incast::sim::literals;

TEST(TcpBlackhole, RtoBackoffDoublesAndTransferCompletesAfterRestore) {
  Simulator sim;
  net::DumbbellConfig topo_cfg;
  topo_cfg.num_senders = 1;
  net::Dumbbell topo{sim, topo_cfg};

  // Blackhole both directions of the inter-ToR link for [2 ms, 102 ms) —
  // long enough for several RTO doublings at a 10 ms min RTO.
  fault::FaultInjector injector{sim, 1};
  fault::LinkFault& fwd = injector.install(topo.core_link_tx(), {});
  fault::LinkFault& rev = injector.install(topo.core_link_rx(), {});
  injector.schedule_flap(fwd, 2_ms, 100_ms);
  injector.schedule_flap(rev, 2_ms, 100_ms);

  TcpConfig cfg;
  cfg.cc = CcAlgorithm::kReno;
  cfg.rtt.min_rto = 10_ms;
  cfg.rtt.initial_rto = 10_ms;
  TcpConnection conn{sim, topo.sender(0), topo.receiver(0), 1, cfg};

  const std::int64_t total = 5'000'000;
  conn.sender().add_app_data(total);
  sim.run_until(5_s);

  // The transfer survived the outage.
  EXPECT_TRUE(conn.sender().all_acked());
  EXPECT_EQ(conn.receiver().rcv_nxt(), total);

  // Recovery was RTO-bound: every retransmission during the outage was
  // blackholed, so each timeout doubled the RTO before the next attempt.
  EXPECT_GE(conn.sender().stats().timeouts, 2);

  // Reconstruct the retransmission schedule from the fault trace: the
  // distinct times at which retransmitted data died in the blackhole.
  std::vector<Time> retx_times;
  for (const auto& e : fwd.trace()) {
    if (e.type == fault::FaultType::kFlapDrop && e.data && e.retransmit) {
      if (retx_times.empty() || e.at > retx_times.back()) retx_times.push_back(e.at);
    }
  }
  ASSERT_GE(retx_times.size(), 2u) << "expected repeated RTO retransmissions into the hole";

  // Consecutive RTO retransmissions must spread apart exponentially:
  // each gap roughly double the previous one.
  std::vector<double> gaps_ms;
  for (std::size_t i = 1; i < retx_times.size(); ++i) {
    gaps_ms.push_back((retx_times[i] - retx_times[i - 1]).ms());
  }
  for (std::size_t i = 1; i < gaps_ms.size(); ++i) {
    const double ratio = gaps_ms[i] / gaps_ms[i - 1];
    EXPECT_GT(ratio, 1.5) << "gap " << i << " did not back off";
    EXPECT_LT(ratio, 3.0) << "gap " << i << " backed off more than doubling";
  }

  // Nothing was injected besides the flap window.
  EXPECT_EQ(fwd.counters().random_drops, 0);
  EXPECT_EQ(fwd.counters().injected_drops(), fwd.counters().flap_drops);
  EXPECT_GT(fwd.counters().flap_drops, 0);
}

TEST(TcpBlackhole, FlapDuringIdleGapIsHarmless) {
  // The outage ends before the app writes any data: no timeouts, no drops
  // of consequence, identical delivery.
  Simulator sim;
  net::DumbbellConfig topo_cfg;
  topo_cfg.num_senders = 1;
  net::Dumbbell topo{sim, topo_cfg};

  fault::FaultInjector injector{sim, 1};
  fault::LinkFault& fwd = injector.install(topo.core_link_tx(), {});
  injector.schedule_flap(fwd, 1_ms, 5_ms);

  TcpConfig cfg;
  cfg.cc = CcAlgorithm::kReno;
  cfg.rtt.min_rto = 10_ms;
  cfg.rtt.initial_rto = 10_ms;
  TcpConnection conn{sim, topo.sender(0), topo.receiver(0), 1, cfg};

  sim.schedule_at(20_ms, [&conn] { conn.sender().add_app_data(1'000'000); });
  sim.run_until(5_s);

  EXPECT_TRUE(conn.sender().all_acked());
  EXPECT_EQ(fwd.counters().flap_drops, 0);
  EXPECT_EQ(conn.sender().stats().timeouts, 0);
}

}  // namespace
}  // namespace incast::tcp
