// Tests for the TimeSeries reductions.
#include "analysis/timeseries.h"

#include <gtest/gtest.h>

namespace incast::analysis {
namespace {

using sim::Time;
using namespace incast::sim::literals;

TimeSeries ramp() {
  TimeSeries ts;
  for (int i = 0; i < 10; ++i) {
    ts.add(Time::microseconds(static_cast<double>(i) * 10), static_cast<double>(i));
  }
  return ts;
}

TEST(TimeSeries, EmptyDefaults) {
  TimeSeries ts;
  EXPECT_TRUE(ts.empty());
  EXPECT_DOUBLE_EQ(ts.min(), 0.0);
  EXPECT_DOUBLE_EQ(ts.max(), 0.0);
  EXPECT_DOUBLE_EQ(ts.mean(), 0.0);
  EXPECT_DOUBLE_EQ(ts.time_weighted_mean(), 0.0);
}

TEST(TimeSeries, BasicStats) {
  const TimeSeries ts = ramp();
  EXPECT_EQ(ts.size(), 10u);
  EXPECT_DOUBLE_EQ(ts.min(), 0.0);
  EXPECT_DOUBLE_EQ(ts.max(), 9.0);
  EXPECT_DOUBLE_EQ(ts.mean(), 4.5);
  EXPECT_EQ(ts.argmax(), 90_us);
}

TEST(TimeSeries, TimeWeightedMeanHonorsHoldTimes) {
  // Value 0 held for 90 us, then 10 held for 10 us:
  // area = 0*90 + 10*10 = 100 over 100 us -> 1.0.
  TimeSeries ts;
  ts.add(Time::zero(), 0.0);
  ts.add(90_us, 10.0);
  ts.add(100_us, 0.0);
  EXPECT_DOUBLE_EQ(ts.time_weighted_mean(), 1.0);
  // Unweighted mean would say 3.33 — the difference is the point.
  EXPECT_NEAR(ts.mean(), 3.33, 0.01);
}

TEST(TimeSeries, ResampleMean) {
  const TimeSeries ts = ramp();  // samples at 0,10,...,90 us
  // 20 us bins: {0,1}, {2,3}, {4,5}, {6,7}, {8,9} -> means.
  const auto bins = ts.resample(Time::zero(), 20_us, 5, TimeSeries::Reduce::kMean);
  ASSERT_EQ(bins.size(), 5u);
  EXPECT_DOUBLE_EQ(bins[0], 0.5);
  EXPECT_DOUBLE_EQ(bins[2], 4.5);
  EXPECT_DOUBLE_EQ(bins[4], 8.5);
}

TEST(TimeSeries, ResampleMaxAndLast) {
  const TimeSeries ts = ramp();
  const auto mx = ts.resample(Time::zero(), 20_us, 5, TimeSeries::Reduce::kMax);
  EXPECT_DOUBLE_EQ(mx[0], 1.0);
  EXPECT_DOUBLE_EQ(mx[4], 9.0);
  const auto last = ts.resample(Time::zero(), 20_us, 5, TimeSeries::Reduce::kLast);
  EXPECT_DOUBLE_EQ(last[0], 1.0);
  EXPECT_DOUBLE_EQ(last[4], 9.0);
}

TEST(TimeSeries, ResampleHoldsThroughEmptyBins) {
  TimeSeries ts;
  ts.add(5_us, 7.0);
  // Bins of 10 us: bin 0 has the sample; bins 1-3 are empty -> hold 7.
  const auto bins = ts.resample(Time::zero(), 10_us, 4);
  EXPECT_DOUBLE_EQ(bins[0], 7.0);
  EXPECT_DOUBLE_EQ(bins[1], 7.0);
  EXPECT_DOUBLE_EQ(bins[3], 7.0);
}

TEST(TimeSeries, ResampleIgnoresOutOfRangeSamples) {
  TimeSeries ts;
  ts.add(Time::zero(), 1.0);
  ts.add(100_us, 50.0);  // beyond the window
  const auto bins = ts.resample(Time::zero(), 10_us, 3);
  EXPECT_DOUBLE_EQ(bins[0], 1.0);
  EXPECT_DOUBLE_EQ(bins[2], 1.0);  // held, not 50
}

TEST(TimeSeries, EwmaSmoothing) {
  TimeSeries ts;
  ts.add(Time::zero(), 10.0);
  ts.add(1_us, 0.0);
  ts.add(2_us, 0.0);
  const TimeSeries smooth = ts.ewma(0.5);
  ASSERT_EQ(smooth.size(), 3u);
  EXPECT_DOUBLE_EQ(smooth.points()[0].value, 10.0);
  EXPECT_DOUBLE_EQ(smooth.points()[1].value, 5.0);
  EXPECT_DOUBLE_EQ(smooth.points()[2].value, 2.5);
}

TEST(TimeSeries, EwmaWeightOneIsIdentity) {
  const TimeSeries ts = ramp();
  const TimeSeries same = ts.ewma(1.0);
  for (std::size_t i = 0; i < ts.size(); ++i) {
    EXPECT_DOUBLE_EQ(same.points()[i].value, ts.points()[i].value);
  }
}

}  // namespace
}  // namespace incast::analysis
