// Tests for the CyclicIncastDriver (Section 4 workload shape).
#include "workload/cyclic_incast.h"

#include <gtest/gtest.h>

namespace incast::workload {
namespace {

using sim::Simulator;
using sim::Time;
using namespace incast::sim::literals;

tcp::TcpConfig tcp_config() {
  tcp::TcpConfig c;
  c.cc = tcp::CcAlgorithm::kDctcp;
  c.rtt.min_rto = 200_ms;
  return c;
}

CyclicIncastDriver::Config driver_config(int flows, int bursts, Time duration) {
  CyclicIncastDriver::Config c;
  c.num_flows = flows;
  c.num_bursts = bursts;
  c.burst_duration = duration;
  c.inter_burst_gap = 5_ms;
  return c;
}

TEST(CyclicIncast, DemandSplitsBurstEvenly) {
  Simulator sim;
  net::Dumbbell topo{sim, net::DumbbellConfig{.num_senders = 10}};
  CyclicIncastDriver driver{sim, topo, tcp_config(), driver_config(10, 1, 15_ms), 1};
  // 10 Gbps x 15 ms = 18.75 MB over 10 flows = 1.875 MB each.
  EXPECT_EQ(driver.demand_per_flow_bytes(), 1'875'000);
}

TEST(CyclicIncast, CompletesRequestedBursts) {
  Simulator sim;
  net::Dumbbell topo{sim, net::DumbbellConfig{.num_senders = 8}};
  CyclicIncastDriver driver{sim, topo, tcp_config(), driver_config(8, 3, 2_ms), 1};
  driver.start();
  sim.run_until(1_s);

  EXPECT_TRUE(driver.finished());
  ASSERT_EQ(driver.bursts().size(), 3u);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(driver.bursts()[static_cast<std::size_t>(i)].index, i);
  }
}

TEST(CyclicIncast, BurstCompletionTimesNearOptimal) {
  Simulator sim;
  net::Dumbbell topo{sim, net::DumbbellConfig{.num_senders = 20}};
  CyclicIncastDriver driver{sim, topo, tcp_config(), driver_config(20, 3, 5_ms), 1};
  driver.start();
  sim.run_until(1_s);

  ASSERT_TRUE(driver.finished());
  // Skip burst 0 (slow start); the rest complete near the optimal 5 ms.
  for (std::size_t i = 1; i < driver.bursts().size(); ++i) {
    const double bct_ms = driver.bursts()[i].completion_time().ms();
    EXPECT_GT(bct_ms, 4.5);
    EXPECT_LT(bct_ms, 8.0);
  }
}

TEST(CyclicIncast, AfterCompletionLeavesGapBetweenBursts) {
  Simulator sim;
  net::Dumbbell topo{sim, net::DumbbellConfig{.num_senders = 4}};
  auto cfg = driver_config(4, 2, 2_ms);
  cfg.schedule = BurstSchedule::kAfterCompletion;
  cfg.inter_burst_gap = 7_ms;
  CyclicIncastDriver driver{sim, topo, tcp_config(), cfg, 1};
  driver.start();
  sim.run_until(1_s);

  ASSERT_EQ(driver.bursts().size(), 2u);
  const Time gap = driver.bursts()[1].started - driver.bursts()[0].completed;
  EXPECT_EQ(gap, 7_ms);
}

TEST(CyclicIncast, FixedPeriodStartsOnSchedule) {
  Simulator sim;
  net::Dumbbell topo{sim, net::DumbbellConfig{.num_senders = 4}};
  auto cfg = driver_config(4, 3, 2_ms);
  cfg.schedule = BurstSchedule::kFixedPeriod;
  cfg.inter_burst_gap = 8_ms;  // period = 10 ms
  CyclicIncastDriver driver{sim, topo, tcp_config(), cfg, 1};
  driver.start();
  sim.run_until(1_s);

  ASSERT_EQ(driver.bursts().size(), 3u);
  EXPECT_EQ(driver.bursts()[0].started, Time::zero());
  EXPECT_EQ(driver.bursts()[1].started, 10_ms);
  EXPECT_EQ(driver.bursts()[2].started, 20_ms);
}

TEST(CyclicIncast, PersistentConnectionsKeepCongestionState) {
  Simulator sim;
  net::Dumbbell topo{sim, net::DumbbellConfig{.num_senders = 4}};
  CyclicIncastDriver driver{sim, topo, tcp_config(), driver_config(4, 2, 2_ms), 1};
  driver.start();
  sim.run_until(1_s);

  // After two bursts the connections have sent both bursts' bytes — no
  // new connections were made (stats are cumulative on the same sender).
  for (auto* s : driver.senders()) {
    EXPECT_EQ(s->app_limit(), 2 * driver.demand_per_flow_bytes());
    EXPECT_TRUE(s->all_acked());
  }
}

TEST(CyclicIncast, StartJitterSpreadsFlowStarts) {
  Simulator sim;
  net::Dumbbell topo{sim, net::DumbbellConfig{.num_senders = 50}};
  auto cfg = driver_config(50, 1, 2_ms);
  cfg.start_jitter_max = 100_us;
  CyclicIncastDriver driver{sim, topo, tcp_config(), cfg, 99};
  driver.start();
  // Immediately after start, nothing has been handed to the senders yet;
  // after 100 us of simulated time, every flow must have demand.
  sim.run_until(100_us);
  int with_demand = 0;
  for (auto* s : driver.senders()) {
    if (s->app_limit() > 0) ++with_demand;
  }
  EXPECT_EQ(with_demand, 50);
  sim.run_until(1_s);
  EXPECT_TRUE(driver.finished());
}

TEST(CyclicIncast, BurstCompleteCallbackFiresInOrder) {
  Simulator sim;
  net::Dumbbell topo{sim, net::DumbbellConfig{.num_senders = 4}};
  CyclicIncastDriver driver{sim, topo, tcp_config(), driver_config(4, 3, 1_ms), 1};
  std::vector<int> completed;
  driver.set_on_burst_complete([&](int index) { completed.push_back(index); });
  driver.start();
  sim.run_until(1_s);
  EXPECT_EQ(completed, (std::vector<int>{0, 1, 2}));
}

}  // namespace
}  // namespace incast::workload
