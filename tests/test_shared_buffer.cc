// Tests for the SharedBufferPool (Dynamic Threshold buffer sharing).
#include "net/shared_buffer.h"

#include <gtest/gtest.h>

#include "net/queue.h"

namespace incast::net {
namespace {

TEST(SharedBufferPool, ReserveAndRelease) {
  SharedBufferPool pool{{.total_bytes = 10'000, .alpha = 1.0}};
  EXPECT_TRUE(pool.try_reserve(4'000, 0));
  EXPECT_EQ(pool.used_bytes(), 4'000);
  EXPECT_EQ(pool.free_bytes(), 6'000);
  pool.release(4'000);
  EXPECT_EQ(pool.used_bytes(), 0);
}

TEST(SharedBufferPool, RejectsWhenPoolExhausted) {
  SharedBufferPool pool{{.total_bytes = 3'000, .alpha = 10.0}};
  EXPECT_TRUE(pool.try_reserve(1'500, 0));
  EXPECT_TRUE(pool.try_reserve(1'500, 1'500));
  EXPECT_FALSE(pool.try_reserve(1'500, 3'000));
  EXPECT_EQ(pool.used_bytes(), 3'000);
}

TEST(SharedBufferPool, DynamicThresholdCapsQueue) {
  // alpha = 1: a queue may hold at most as much as remains free. With
  // 10 KB total and the queue already holding 5 KB, free = 5 KB, so the
  // queue (at 5 KB) may grow only to ~5 KB more.
  SharedBufferPool pool{{.total_bytes = 10'000, .alpha = 1.0}};
  std::int64_t queue_bytes = 0;
  while (pool.try_reserve(1'000, queue_bytes)) {
    queue_bytes += 1'000;
  }
  // cap(q) = alpha * (total - used): growth stops when q > free.
  EXPECT_EQ(queue_bytes, 5'000);
}

TEST(SharedBufferPool, SmallAlphaIsStricter) {
  SharedBufferPool pool{{.total_bytes = 10'000, .alpha = 0.25}};
  std::int64_t queue_bytes = 0;
  while (pool.try_reserve(500, queue_bytes)) {
    queue_bytes += 500;
  }
  // q <= 0.25 * (10'000 - q)  =>  q <= 2'000.
  EXPECT_EQ(queue_bytes, 2'000);
}

TEST(SharedBufferPool, ExternalUsageShrinksHeadroom) {
  SharedBufferPool pool{{.total_bytes = 10'000, .alpha = 1.0}};
  pool.set_external_usage(8'000);
  EXPECT_EQ(pool.free_bytes(), 2'000);
  std::int64_t queue_bytes = 0;
  while (pool.try_reserve(500, queue_bytes)) {
    queue_bytes += 500;
  }
  EXPECT_EQ(queue_bytes, 1'000);
  // Releasing the external pressure restores capacity.
  pool.set_external_usage(0);
  EXPECT_EQ(pool.free_bytes(), 10'000 - queue_bytes);
  EXPECT_TRUE(pool.try_reserve(500, queue_bytes));
}

TEST(SharedBufferPool, ExternalUsageIsLevelNotDelta) {
  SharedBufferPool pool{{.total_bytes = 10'000, .alpha = 1.0}};
  pool.set_external_usage(4'000);
  pool.set_external_usage(4'000);  // idempotent
  EXPECT_EQ(pool.used_bytes(), 4'000);
  pool.set_external_usage(6'000);
  EXPECT_EQ(pool.used_bytes(), 6'000);
  pool.set_external_usage(0);
  EXPECT_EQ(pool.used_bytes(), 0);
}

TEST(SharedBufferPool, QueueIntegrationDropsWhenPoolRejects) {
  // A queue with a huge per-queue cap still tail-drops when the pool's
  // dynamic threshold kicks in.
  SharedBufferPool pool{{.total_bytes = 6'000, .alpha = 1.0}};
  DropTailQueue q{{.capacity_packets = 1'000, .ecn_threshold_packets = 0}};
  q.attach_pool(&pool);

  int admitted = 0;
  for (int i = 0; i < 10; ++i) {
    if (q.enqueue(make_data_packet(1, 2, 1, 0, 1460))) ++admitted;
  }
  // cap = total/2 at alpha=1: 3'000 B = 2 packets.
  EXPECT_EQ(admitted, 2);
  EXPECT_EQ(q.stats().dropped_packets, 8);
  EXPECT_EQ(pool.used_bytes(), 2 * 1500);

  // Dequeue releases the pool memory.
  while (q.dequeue().has_value()) {
  }
  EXPECT_EQ(pool.used_bytes(), 0);
}

TEST(SharedBufferPool, QueuePerQueueCapDropDoesNotLeakPoolMemory) {
  SharedBufferPool pool{{.total_bytes = 1'000'000, .alpha = 1.0}};
  DropTailQueue q{{.capacity_packets = 2, .ecn_threshold_packets = 0}};
  q.attach_pool(&pool);
  for (int i = 0; i < 5; ++i) (void)q.enqueue(make_data_packet(1, 2, 1, 0, 1460));
  EXPECT_EQ(q.packets(), 2);
  // Only the two admitted packets hold pool memory.
  EXPECT_EQ(pool.used_bytes(), 2 * 1500);
}

}  // namespace
}  // namespace incast::net
