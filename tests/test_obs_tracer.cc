// Tests for the bounded event tracer and its Chrome-trace export.
#include "obs/trace.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>

namespace incast::obs {
namespace {

TraceEvent make_event(std::int64_t ts_ns, TraceEvent::Phase ph, std::string name,
                      std::uint32_t tid = kWorkloadTid, std::uint64_t id = 0) {
  return TraceEvent{ts_ns, ph, TraceCategory::kSim, tid, id, std::move(name),
                    nullptr, 0, nullptr, 0};
}

std::size_t count_occurrences(const std::string& haystack, const std::string& needle) {
  std::size_t n = 0;
  for (std::size_t pos = haystack.find(needle); pos != std::string::npos;
       pos = haystack.find(needle, pos + needle.size())) {
    ++n;
  }
  return n;
}

TEST(ObsTracer, KeepsPrefixAndCountsDropsAtCapacity) {
  Tracer t{2};
  t.set_enabled(true);
  t.record(make_event(1, TraceEvent::Phase::kInstant, "a"));
  t.record(make_event(2, TraceEvent::Phase::kInstant, "b"));
  t.record(make_event(3, TraceEvent::Phase::kInstant, "c"));
  // The earliest events survive; later ones are dropped (a consistent
  // prefix, not an evicting ring — the flight recorder is the ring).
  ASSERT_EQ(t.events().size(), 2u);
  EXPECT_EQ(t.events()[0].name, "a");
  EXPECT_EQ(t.events()[1].name, "b");
  EXPECT_EQ(t.dropped(), 1u);

  std::ostringstream out;
  t.write_chrome_trace(out);
  EXPECT_NE(out.str().find("\"dropped_events\": \"1\""), std::string::npos);
}

TEST(ObsTracer, DisabledRecordsNothing) {
  Tracer t;
  EXPECT_FALSE(t.enabled());
  t.record(make_event(1, TraceEvent::Phase::kInstant, "a"));
  EXPECT_TRUE(t.events().empty());
  EXPECT_EQ(t.dropped(), 0u);
}

TEST(ObsTracer, ExportSynthesizesClosersForOpenSpans) {
  Tracer t;
  t.set_enabled(true);
  t.record(make_event(10, TraceEvent::Phase::kBegin, "burst"));
  t.record(make_event(20, TraceEvent::Phase::kAsyncBegin, "flow", kFlowTidBase, 7));
  // Recording ends mid-burst: neither span is closed.
  std::ostringstream out;
  t.write_chrome_trace(out);
  const std::string json = out.str();
  EXPECT_EQ(count_occurrences(json, "\"ph\":\"B\""), 1u);
  EXPECT_EQ(count_occurrences(json, "\"ph\":\"E\""), 1u);
  EXPECT_EQ(count_occurrences(json, "\"ph\":\"b\""), 1u);
  EXPECT_EQ(count_occurrences(json, "\"ph\":\"e\""), 1u);
  // Closers are flagged so a reader can tell them from real events.
  EXPECT_EQ(count_occurrences(json, "\"synthesized\":1"), 2u);
}

TEST(ObsTracer, ExportSkipsUnmatchedSpanEnds) {
  Tracer t;
  t.set_enabled(true);
  t.record(make_event(5, TraceEvent::Phase::kEnd, "orphan"));
  t.record(make_event(6, TraceEvent::Phase::kAsyncEnd, "orphan-async", kWorkloadTid, 1));
  std::ostringstream out;
  t.write_chrome_trace(out);
  const std::string json = out.str();
  EXPECT_EQ(count_occurrences(json, "\"ph\":\"E\""), 0u);
  EXPECT_EQ(count_occurrences(json, "\"ph\":\"e\""), 0u);
}

TEST(ObsTracer, ExportIsByteDeterministic) {
  const auto render = [] {
    Tracer t;
    t.set_enabled(true);
    t.set_thread_name(kFlowTidBase + 3, "flow3");
    t.record(make_event(1, TraceEvent::Phase::kInstant, "rto", kFlowTidBase + 3));
    TraceEvent c = make_event(2, TraceEvent::Phase::kCounter, "cwnd.f3", kFlowTidBase + 3);
    c.arg1_key = "value";
    c.arg1_value = 14600;
    t.record(c);
    std::ostringstream out;
    t.write_chrome_trace(out);
    return out.str();
  };
  const std::string a = render();
  EXPECT_EQ(a, render());
  EXPECT_NE(a.find("\"name\":\"flow3\""), std::string::npos);
  EXPECT_NE(a.find("\"cwnd.f3\""), std::string::npos);
}

}  // namespace
}  // namespace incast::obs
