// Integration tests: full TCP transfers over the dumbbell topology.
#include <gtest/gtest.h>

#include "net/topology.h"
#include "tcp/tcp_connection.h"

namespace incast::tcp {
namespace {

using sim::Simulator;
using sim::Time;
using namespace incast::sim::literals;

TcpConfig dctcp_config() {
  TcpConfig c;
  c.cc = CcAlgorithm::kDctcp;
  c.rtt.min_rto = 200_ms;
  return c;
}

struct TransferFixture {
  Simulator sim;
  net::DumbbellConfig topo_cfg;
  net::Dumbbell topo;

  explicit TransferFixture(int senders = 2)
      : topo_cfg{make_topo(senders)}, topo{sim, topo_cfg} {}

  static net::DumbbellConfig make_topo(int senders) {
    net::DumbbellConfig cfg;
    cfg.num_senders = senders;
    return cfg;
  }
};

TEST(TcpTransfer, SingleFlowDeliversAllBytesInOrder) {
  TransferFixture f;
  TcpConnection conn{f.sim, f.topo.sender(0), f.topo.receiver(0), 1, dctcp_config()};

  const std::int64_t total = 1'000'000;
  conn.sender().add_app_data(total);
  f.sim.run();

  EXPECT_EQ(conn.receiver().rcv_nxt(), total);
  EXPECT_TRUE(conn.sender().all_acked());
  EXPECT_EQ(conn.sender().stats().timeouts, 0);
  EXPECT_EQ(conn.sender().stats().retransmitted_packets, 0);
}

TEST(TcpTransfer, SingleFlowAchievesNearLineRate) {
  TransferFixture f;
  TcpConnection conn{f.sim, f.topo.sender(0), f.topo.receiver(0), 1, dctcp_config()};

  // 10 MB at 10 Gbps is ~8 ms at line rate.
  const std::int64_t total = 10'000'000;
  Time done{};
  conn.sender().set_on_all_acked([&] { done = f.sim.now(); });
  conn.sender().add_app_data(total);
  f.sim.run();

  ASSERT_GT(done, Time::zero());
  const double goodput_gbps = static_cast<double>(total) * 8.0 / done.sec() * 1e-9;
  // Line rate is 10 Gbps; expect at least 80% after slow start.
  EXPECT_GT(goodput_gbps, 8.0);
  EXPECT_LE(goodput_gbps, 10.0);
}

TEST(TcpTransfer, RttEstimateMatchesPathRtt) {
  TransferFixture f;
  TcpConnection conn{f.sim, f.topo.sender(0), f.topo.receiver(0), 1, dctcp_config()};
  conn.sender().add_app_data(200'000);
  f.sim.run();

  const Time base = f.topo.base_rtt(1500);
  ASSERT_TRUE(conn.sender().rtt_estimator().has_sample());
  const Time srtt = conn.sender().rtt_estimator().srtt();
  // Measured RTT includes queueing; it must be at least the base RTT and
  // within a small multiple of it for a single uncontended flow.
  EXPECT_GE(srtt, base * 0.9);
  EXPECT_LT(srtt, base * 10.0);
}

TEST(TcpTransfer, TwoFlowsShareFairly) {
  TransferFixture f{2};
  TcpConnection a{f.sim, f.topo.sender(0), f.topo.receiver(0), 1, dctcp_config()};
  TcpConnection b{f.sim, f.topo.sender(1), f.topo.receiver(0), 2, dctcp_config()};

  const std::int64_t total = 5'000'000;
  a.sender().add_app_data(total);
  b.sender().add_app_data(total);
  f.sim.run_until(1_s);

  EXPECT_TRUE(a.sender().all_acked());
  EXPECT_TRUE(b.sender().all_acked());
  // Both finished; DCTCP kept the bottleneck queue controlled.
  EXPECT_EQ(a.receiver().rcv_nxt(), total);
  EXPECT_EQ(b.receiver().rcv_nxt(), total);
}

TEST(TcpTransfer, DctcpKeepsQueueNearMarkingThreshold) {
  TransferFixture f{4};
  std::vector<std::unique_ptr<TcpConnection>> conns;
  for (int i = 0; i < 4; ++i) {
    conns.push_back(std::make_unique<TcpConnection>(f.sim, f.topo.sender(i),
                                                    f.topo.receiver(0),
                                                    static_cast<net::FlowId>(i + 1),
                                                    dctcp_config()));
    conns.back()->sender().add_app_data(20'000'000);
  }
  // Let the flows reach steady state, then sample the bottleneck queue.
  std::vector<std::int64_t> depths;
  for (int i = 0; i < 400; ++i) {
    f.sim.schedule_at(5_ms + Time::microseconds(10.0 * i),
                      [&] { depths.push_back(f.topo.bottleneck_queue().packets()); });
  }
  f.sim.run_until(20_ms);

  double mean = 0.0;
  for (const auto d : depths) mean += static_cast<double>(d);
  mean /= static_cast<double>(depths.size());
  // K = 65 packets: the queue should oscillate in its vicinity, far from
  // both empty and capacity (1333).
  EXPECT_GT(mean, 5.0);
  EXPECT_LT(mean, 300.0);
  // And no drops: DCTCP controlled the queue.
  EXPECT_EQ(f.topo.bottleneck_queue().stats().dropped_packets, 0);
}

TEST(TcpTransfer, EcnMarkingProducesEceAcks) {
  TransferFixture f{4};
  std::vector<std::unique_ptr<TcpConnection>> conns;
  for (int i = 0; i < 4; ++i) {
    conns.push_back(std::make_unique<TcpConnection>(f.sim, f.topo.sender(i),
                                                    f.topo.receiver(0),
                                                    static_cast<net::FlowId>(i + 1),
                                                    dctcp_config()));
    conns.back()->sender().add_app_data(5'000'000);
  }
  f.sim.run_until(100_ms);
  std::int64_t ece = 0;
  for (const auto& c : conns) ece += c->sender().stats().ece_acks_received;
  EXPECT_GT(ece, 0);
  EXPECT_GT(f.topo.bottleneck_queue().stats().ecn_marked_packets, 0);
}

TEST(TcpTransfer, MultipleBurstsOnPersistentConnection) {
  TransferFixture f;
  TcpConnection conn{f.sim, f.topo.sender(0), f.topo.receiver(0), 1, dctcp_config()};

  int completions = 0;
  conn.sender().set_on_all_acked([&] { ++completions; });

  conn.sender().add_app_data(100'000);
  f.sim.run();
  f.sim.schedule_in(5_ms, [&] { conn.sender().add_app_data(100'000); });
  f.sim.run();

  EXPECT_EQ(completions, 2);
  EXPECT_EQ(conn.receiver().rcv_nxt(), 200'000);
}

TEST(TcpTransfer, ByteConservation) {
  // Delivered bytes never exceed sent bytes; everything supplied is
  // eventually delivered exactly once (in-order rcv_nxt accounting).
  TransferFixture f{3};
  std::vector<std::unique_ptr<TcpConnection>> conns;
  const std::int64_t per_flow = 777'777;  // not MSS-aligned on purpose
  for (int i = 0; i < 3; ++i) {
    conns.push_back(std::make_unique<TcpConnection>(f.sim, f.topo.sender(i),
                                                    f.topo.receiver(0),
                                                    static_cast<net::FlowId>(i + 1),
                                                    dctcp_config()));
    conns.back()->sender().add_app_data(per_flow);
  }
  f.sim.run();
  for (const auto& c : conns) {
    EXPECT_EQ(c->receiver().rcv_nxt(), per_flow);
    EXPECT_TRUE(c->sender().all_acked());
    EXPECT_GE(c->sender().stats().data_bytes_sent, per_flow);
  }
}

TEST(TcpTransfer, GuardrailCapsEffectiveWindow) {
  TransferFixture f;
  TcpConfig cfg = dctcp_config();
  cfg.cwnd_cap_bytes = 2 * cfg.mss_bytes;
  TcpConnection conn{f.sim, f.topo.sender(0), f.topo.receiver(0), 1, cfg};
  conn.sender().add_app_data(1'000'000);

  bool checked = false;
  f.sim.schedule_at(2_ms, [&] {
    EXPECT_LE(conn.sender().in_flight_bytes(), 2 * cfg.mss_bytes);
    EXPECT_LE(conn.sender().effective_cwnd(), 2 * cfg.mss_bytes);
    checked = true;
  });
  f.sim.run();
  EXPECT_TRUE(checked);
  EXPECT_EQ(conn.receiver().rcv_nxt(), 1'000'000);
}

}  // namespace
}  // namespace incast::tcp
