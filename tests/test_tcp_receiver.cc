// Unit tests for TcpReceiver: reassembly, duplicate ACKs, ECE echoing,
// delayed-ACK behaviour.
#include "tcp/tcp_receiver.h"

#include <gtest/gtest.h>

#include <vector>

#include "net/node.h"

namespace incast::tcp {
namespace {

using sim::Simulator;
using sim::Time;
using namespace incast::sim::literals;

constexpr net::FlowId kFlow = 1;

// Two directly connected hosts; ACKs emitted by the receiver under test are
// captured at the peer by a recording handler.
struct ReceiverFixture {
  Simulator sim;
  net::Host peer;
  net::Host local;

  struct AckLog final : public net::PacketHandler {
    void handle_packet(net::Packet p) override { acks.push_back(std::move(p)); }
    std::vector<net::Packet> acks;
  };
  AckLog ack_log;

  explicit ReceiverFixture()
      : peer{sim, 0, "peer"}, local{sim, 1, "local"} {
    const net::DropTailQueue::Config q{.capacity_packets = 1000, .ecn_threshold_packets = 0};
    peer.add_nic(sim::Bandwidth::gigabits_per_second(10), 1_us, q);
    local.add_nic(sim::Bandwidth::gigabits_per_second(10), 1_us, q);
    net::connect_duplex(peer, 0, local, 0);
    peer.register_flow(kFlow, &ack_log);
  }

  net::Packet data(std::int64_t seq, std::int64_t len, bool ce = false) {
    net::Packet p = net::make_data_packet(peer.id(), local.id(), kFlow, seq, len);
    if (ce) p.ecn = net::Ecn::kCe;
    return p;
  }
};

TcpConfig immediate_ack_config() {
  TcpConfig c;
  c.delayed_ack = false;
  return c;
}

TEST(TcpReceiver, InOrderDataAdvancesRcvNxtAndAcks) {
  ReceiverFixture f;
  TcpReceiver rx{f.sim, f.local, f.peer.id(), kFlow, immediate_ack_config()};
  rx.handle_packet(f.data(0, 1460));
  rx.handle_packet(f.data(1460, 1460));
  f.sim.run();
  EXPECT_EQ(rx.rcv_nxt(), 2920);
  ASSERT_EQ(f.ack_log.acks.size(), 2u);
  EXPECT_EQ(f.ack_log.acks[0].tcp.ack, 1460);
  EXPECT_EQ(f.ack_log.acks[1].tcp.ack, 2920);
}

TEST(TcpReceiver, OutOfOrderTriggersDuplicateAck) {
  ReceiverFixture f;
  TcpReceiver rx{f.sim, f.local, f.peer.id(), kFlow, immediate_ack_config()};
  rx.handle_packet(f.data(0, 1460));
  // Gap: segment 2 skipped.
  rx.handle_packet(f.data(2920, 1460));
  rx.handle_packet(f.data(4380, 1460));
  f.sim.run();
  EXPECT_EQ(rx.rcv_nxt(), 1460);
  ASSERT_EQ(f.ack_log.acks.size(), 3u);
  // Both out-of-order arrivals re-ACK 1460.
  EXPECT_EQ(f.ack_log.acks[1].tcp.ack, 1460);
  EXPECT_EQ(f.ack_log.acks[2].tcp.ack, 1460);
  EXPECT_EQ(rx.stats().out_of_order_packets, 2);
  EXPECT_EQ(rx.stats().dup_acks_sent, 2);
}

TEST(TcpReceiver, FillingGapDeliversBufferedData) {
  ReceiverFixture f;
  TcpReceiver rx{f.sim, f.local, f.peer.id(), kFlow, immediate_ack_config()};
  std::int64_t delivered = 0;
  rx.set_on_data([&](std::int64_t d) { delivered += d; });

  rx.handle_packet(f.data(1460, 1460));
  rx.handle_packet(f.data(2920, 1460));
  EXPECT_EQ(rx.rcv_nxt(), 0);
  rx.handle_packet(f.data(0, 1460));  // fills the gap
  f.sim.run();
  EXPECT_EQ(rx.rcv_nxt(), 4380);
  EXPECT_EQ(delivered, 4380);
  // The gap-filling ACK acknowledges everything at once.
  EXPECT_EQ(f.ack_log.acks.back().tcp.ack, 4380);
}

TEST(TcpReceiver, OverlappingRetransmissionHandled) {
  ReceiverFixture f;
  TcpReceiver rx{f.sim, f.local, f.peer.id(), kFlow, immediate_ack_config()};
  rx.handle_packet(f.data(0, 1460));
  rx.handle_packet(f.data(0, 1460));  // spurious retransmission
  f.sim.run();
  EXPECT_EQ(rx.rcv_nxt(), 1460);
  // The duplicate still produced an ACK so the sender can progress.
  EXPECT_EQ(f.ack_log.acks.size(), 2u);
  EXPECT_EQ(f.ack_log.acks[1].tcp.ack, 1460);
}

TEST(TcpReceiver, DisjointOutOfOrderRangesMergeCorrectly) {
  ReceiverFixture f;
  TcpReceiver rx{f.sim, f.local, f.peer.id(), kFlow, immediate_ack_config()};
  // Arrive: [2], [4], [3], then [1] (1460-byte segments by index).
  rx.handle_packet(f.data(2 * 1460, 1460));
  rx.handle_packet(f.data(4 * 1460, 1460));
  rx.handle_packet(f.data(3 * 1460, 1460));
  rx.handle_packet(f.data(0, 1460));
  rx.handle_packet(f.data(1460, 1460));
  f.sim.run();
  EXPECT_EQ(rx.rcv_nxt(), 5 * 1460);
}

TEST(TcpReceiver, EceEchoesCeWithImmediateAcks) {
  ReceiverFixture f;
  TcpReceiver rx{f.sim, f.local, f.peer.id(), kFlow, immediate_ack_config()};
  rx.handle_packet(f.data(0, 1460, /*ce=*/false));
  rx.handle_packet(f.data(1460, 1460, /*ce=*/true));
  rx.handle_packet(f.data(2920, 1460, /*ce=*/false));
  f.sim.run();
  ASSERT_EQ(f.ack_log.acks.size(), 3u);
  EXPECT_FALSE(f.ack_log.acks[0].tcp.ece);
  EXPECT_TRUE(f.ack_log.acks[1].tcp.ece);
  EXPECT_FALSE(f.ack_log.acks[2].tcp.ece);
  EXPECT_EQ(rx.stats().ce_packets_received, 1);
}

TEST(TcpReceiver, DelayedAckCoalescesSegments) {
  ReceiverFixture f;
  TcpConfig cfg;
  cfg.delayed_ack = true;
  cfg.ack_every_n_segments = 2;
  cfg.delayed_ack_timeout = 500_us;
  TcpReceiver rx{f.sim, f.local, f.peer.id(), kFlow, cfg};

  rx.handle_packet(f.data(0, 1460));
  rx.handle_packet(f.data(1460, 1460));
  f.sim.run();
  // One ACK for two segments.
  ASSERT_EQ(f.ack_log.acks.size(), 1u);
  EXPECT_EQ(f.ack_log.acks[0].tcp.ack, 2920);
}

TEST(TcpReceiver, DelayedAckTimerFlushesSingleSegment) {
  ReceiverFixture f;
  TcpConfig cfg;
  cfg.delayed_ack = true;
  cfg.ack_every_n_segments = 2;
  cfg.delayed_ack_timeout = 500_us;
  TcpReceiver rx{f.sim, f.local, f.peer.id(), kFlow, cfg};

  rx.handle_packet(f.data(0, 1460));
  f.sim.run();  // timer fires at 500 us
  ASSERT_EQ(f.ack_log.acks.size(), 1u);
  EXPECT_EQ(f.ack_log.acks[0].tcp.ack, 1460);
}

TEST(TcpReceiver, DctcpCeStateChangeForcesImmediateAck) {
  // RFC 8257 §3.2: on a CE transition with segments pending, emit an
  // immediate ACK carrying the *old* ECE state.
  ReceiverFixture f;
  TcpConfig cfg;
  cfg.delayed_ack = true;
  cfg.ack_every_n_segments = 4;  // would otherwise coalesce all three
  cfg.delayed_ack_timeout = 10_ms;
  TcpReceiver rx{f.sim, f.local, f.peer.id(), kFlow, cfg};

  rx.handle_packet(f.data(0, 1460, /*ce=*/false));
  rx.handle_packet(f.data(1460, 1460, /*ce=*/true));  // CE flips: flush
  f.sim.run_until(1_ms);
  ASSERT_GE(f.ack_log.acks.size(), 1u);
  EXPECT_EQ(f.ack_log.acks[0].tcp.ack, 1460);
  EXPECT_FALSE(f.ack_log.acks[0].tcp.ece);  // old state

  rx.handle_packet(f.data(2920, 1460, /*ce=*/true));
  rx.handle_packet(f.data(4380, 1460, /*ce=*/true));
  rx.handle_packet(f.data(5840, 1460, /*ce=*/true));
  f.sim.run_until(2_ms);
  // ack_every_n reached (4 pending CE segments): coalesced ACK with ECE set.
  ASSERT_GE(f.ack_log.acks.size(), 2u);
  EXPECT_TRUE(f.ack_log.acks[1].tcp.ece);
  EXPECT_EQ(f.ack_log.acks[1].tcp.ack, 7300);
}

TEST(TcpReceiver, IgnoresPureAcks) {
  ReceiverFixture f;
  TcpReceiver rx{f.sim, f.local, f.peer.id(), kFlow, immediate_ack_config()};
  rx.handle_packet(net::make_ack_packet(f.peer.id(), f.local.id(), kFlow, 999, false));
  f.sim.run();
  EXPECT_EQ(rx.rcv_nxt(), 0);
  EXPECT_TRUE(f.ack_log.acks.empty());
  EXPECT_EQ(rx.stats().data_packets_received, 0);
}

}  // namespace
}  // namespace incast::tcp
