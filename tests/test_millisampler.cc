// Tests for the Millisampler telemetry tap.
#include "telemetry/millisampler.h"

#include <gtest/gtest.h>

namespace incast::telemetry {
namespace {

using sim::Time;
using namespace incast::sim::literals;

Millisampler::Config config() {
  return {.bin_duration = 1_ms,
          .line_rate = sim::Bandwidth::gigabits_per_second(10)};
}

net::Packet data(net::FlowId flow, std::int64_t bytes, bool ce = false, bool retx = false) {
  net::Packet p = net::make_data_packet(0, 1, flow, 0, bytes - net::kHeaderBytes);
  if (ce) p.ecn = net::Ecn::kCe;
  p.is_retransmit = retx;
  return p;
}

TEST(Millisampler, BinsByArrivalTime) {
  Millisampler s{config()};
  s.on_ingress(data(1, 1000), Time::microseconds(100));
  s.on_ingress(data(1, 1000), Time::microseconds(900));
  s.on_ingress(data(1, 1000), Time::milliseconds(1.5));
  s.finalize(3_ms);

  ASSERT_EQ(s.bins().size(), 3u);
  EXPECT_EQ(s.bins()[0].bytes, 2000);
  EXPECT_EQ(s.bins()[1].bytes, 1000);
  EXPECT_EQ(s.bins()[2].bytes, 0);
}

TEST(Millisampler, CountsDistinctActiveFlowsPerBin) {
  Millisampler s{config()};
  s.on_ingress(data(1, 1000), 100_us);
  s.on_ingress(data(2, 1000), 200_us);
  s.on_ingress(data(1, 1000), 300_us);  // repeat flow 1
  s.on_ingress(data(3, 1000), Time::milliseconds(1.2));
  s.finalize(2_ms);

  ASSERT_EQ(s.bins().size(), 2u);
  EXPECT_EQ(s.bins()[0].active_flows, 2);
  EXPECT_EQ(s.bins()[1].active_flows, 1);
}

TEST(Millisampler, PureAcksDoNotCountAsActiveFlows) {
  Millisampler s{config()};
  s.on_ingress(net::make_ack_packet(0, 1, 7, 0, false), 100_us);
  s.finalize(1_ms);
  ASSERT_EQ(s.bins().size(), 1u);
  EXPECT_EQ(s.bins()[0].active_flows, 0);
  EXPECT_EQ(s.bins()[0].bytes, net::kHeaderBytes);  // bytes still counted
}

TEST(Millisampler, TracksMarkedAndRetransmittedBytes) {
  Millisampler s{config()};
  s.on_ingress(data(1, 1500, /*ce=*/true), 100_us);
  s.on_ingress(data(1, 1500, /*ce=*/false, /*retx=*/true), 200_us);
  s.on_ingress(data(1, 1500), 300_us);
  s.finalize(1_ms);

  const auto& b = s.bins()[0];
  EXPECT_EQ(b.bytes, 4500);
  EXPECT_EQ(b.marked_bytes, 1500);
  EXPECT_EQ(b.retx_bytes, 1500);
}

TEST(Millisampler, UtilizationFractions) {
  Millisampler s{config()};
  // 10 Gbps x 1 ms = 1.25 MB per bin at line rate.
  const std::int64_t half_line = 625'000;
  for (int i = 0; i < 5; ++i) {
    net::Packet p = data(1, half_line / 5, i < 2);
    s.on_ingress(p, Time::microseconds(100 + i));
  }
  s.finalize(1_ms);
  EXPECT_NEAR(s.utilization(0), 0.5, 0.01);
  EXPECT_NEAR(s.marked_utilization(0), 0.2, 0.01);
  EXPECT_NEAR(s.retx_utilization(0), 0.0, 1e-9);
}

TEST(Millisampler, AverageUtilization) {
  Millisampler s{config()};
  s.on_ingress(data(1, 1'250'000), 100_us);  // bin 0 at line rate
  s.finalize(4_ms);                          // bins 1-3 empty
  EXPECT_NEAR(s.average_utilization(), 0.25, 0.01);
}

TEST(Millisampler, FinalizePadsEmptyTrailingBins) {
  Millisampler s{config()};
  s.on_ingress(data(1, 1000), 100_us);
  s.finalize(10_ms);
  EXPECT_EQ(s.bins().size(), 10u);
  for (std::size_t i = 1; i < 10; ++i) {
    EXPECT_EQ(s.bins()[i].bytes, 0);
    EXPECT_EQ(s.bins()[i].active_flows, 0);
  }
}

TEST(Millisampler, FinalizeClipsPacketsBeyondTraceEnd) {
  Millisampler s{config()};
  s.on_ingress(data(1, 1000), 500_us);
  s.on_ingress(data(1, 1000), Time::milliseconds(5.5));  // past the end
  s.finalize(2_ms);
  EXPECT_EQ(s.bins().size(), 2u);
  EXPECT_EQ(s.bins()[0].bytes, 1000);
}

TEST(Millisampler, RestartBeginsFreshTrace) {
  Millisampler s{config()};
  s.on_ingress(data(1, 1000), 100_us);
  s.finalize(1_ms);
  EXPECT_EQ(s.bins().size(), 1u);

  s.restart(10_ms);
  s.on_ingress(data(2, 2000), Time::milliseconds(10.2));
  s.finalize(11_ms);
  ASSERT_EQ(s.bins().size(), 1u);
  EXPECT_EQ(s.bins()[0].bytes, 2000);
  EXPECT_EQ(s.bins()[0].active_flows, 1);
}

TEST(Millisampler, EmptyTraceAverageIsZero) {
  Millisampler s{config()};
  EXPECT_DOUBLE_EQ(s.average_utilization(), 0.0);
}

}  // namespace
}  // namespace incast::telemetry
