// Tests for the CUBIC congestion control baseline.
#include <gtest/gtest.h>

#include "tcp/cc/cubic.h"

namespace incast::tcp {
namespace {

using sim::Time;
using namespace incast::sim::literals;

constexpr std::int64_t kMss = 1460;

CcConfig config() {
  CcConfig c;
  c.mss_bytes = kMss;
  c.initial_window_segments = 10;
  return c;
}

AckEvent ack(std::int64_t acked, Time now) {
  AckEvent ev;
  ev.newly_acked_bytes = acked;
  ev.snd_una = 0;
  ev.snd_nxt = 1'000'000;
  ev.now = now;
  return ev;
}

TEST(CubicCc, StartsInSlowStart) {
  CubicCc cc{config()};
  EXPECT_EQ(cc.cwnd_bytes(), 10 * kMss);
  EXPECT_TRUE(cc.in_slow_start());
  EXPECT_EQ(cc.name(), "cubic");
}

TEST(CubicCc, SlowStartGrowth) {
  CubicCc cc{config()};
  const std::int64_t before = cc.cwnd_bytes();
  cc.on_ack(ack(kMss, 1_ms));
  EXPECT_EQ(cc.cwnd_bytes(), before + kMss);
}

TEST(CubicCc, LossReducesByBeta) {
  CubicCc cc{config()};
  const std::int64_t before = cc.cwnd_bytes();
  cc.on_loss(before);
  cc.on_recovery_exit();
  // beta = 0.7 multiplicative decrease (exact rounding aside).
  EXPECT_NEAR(static_cast<double>(cc.cwnd_bytes()), static_cast<double>(before) * 0.7,
              static_cast<double>(kMss));
  EXPECT_LT(cc.cwnd_bytes(), before);
}

TEST(CubicCc, GrowsBackTowardWmaxAfterLoss) {
  CubicCc cc{config()};
  const std::int64_t w_max = cc.cwnd_bytes();
  cc.on_loss(w_max);
  cc.on_recovery_exit();
  const std::int64_t reduced = cc.cwnd_bytes();
  // Feed ACKs across ~2.5 s of simulated time (K = cbrt(W_max * 0.3 / C)
  // is ~2 s for a 10-MSS W_max); cwnd climbs back toward w_max.
  Time now = 1_ms;
  for (int i = 0; i < 2000; ++i) {
    now += Time::microseconds(1250);
    cc.on_ack(ack(kMss, now));
  }
  EXPECT_GT(cc.cwnd_bytes(), reduced);
  EXPECT_GE(cc.cwnd_bytes(), static_cast<std::int64_t>(0.9 * static_cast<double>(w_max)));
}

TEST(CubicCc, ConcaveNearWmax) {
  // Right after the post-loss epoch starts, growth per unit time should
  // slow as cwnd approaches W_max (concave region of the cubic).
  CubicCc cc{config()};
  cc.on_loss(cc.cwnd_bytes());
  cc.on_recovery_exit();
  Time now = 1_ms;
  std::int64_t prev = cc.cwnd_bytes();
  std::int64_t first_delta = -1;
  std::int64_t late_delta = -1;
  for (int step = 0; step < 20; ++step) {
    for (int i = 0; i < 50; ++i) {
      now += Time::microseconds(50);
      cc.on_ack(ack(kMss, now));
    }
    const std::int64_t delta = cc.cwnd_bytes() - prev;
    if (step == 0) first_delta = delta;
    if (step == 19) late_delta = delta;
    prev = cc.cwnd_bytes();
  }
  EXPECT_GE(first_delta, 0);
  EXPECT_GE(late_delta, 0);
}

TEST(CubicCc, TimeoutCollapsesToOneMss) {
  CubicCc cc{config()};
  cc.on_timeout();
  EXPECT_EQ(cc.cwnd_bytes(), kMss);
  EXPECT_TRUE(cc.in_slow_start());
}

TEST(CubicCc, DuplicateAcksDoNotGrow) {
  CubicCc cc{config()};
  const std::int64_t before = cc.cwnd_bytes();
  cc.on_ack(ack(0, 1_ms));
  EXPECT_EQ(cc.cwnd_bytes(), before);
}

TEST(CubicCc, FactorySelection) {
  const auto cc = make_congestion_control(CcAlgorithm::kCubic, config());
  EXPECT_EQ(cc->name(), "cubic");
  const auto dctcp = make_congestion_control(CcAlgorithm::kDctcp, config());
  EXPECT_EQ(dctcp->name(), "dctcp");
  const auto reno = make_congestion_control(CcAlgorithm::kReno, config());
  EXPECT_EQ(reno->name(), "reno");
  const auto reno_ecn = make_congestion_control(CcAlgorithm::kRenoEcn, config());
  EXPECT_EQ(reno_ecn->name(), "reno-ecn");
}

TEST(CubicCc, AlgorithmNames) {
  EXPECT_STREQ(to_string(CcAlgorithm::kDctcp), "dctcp");
  EXPECT_STREQ(to_string(CcAlgorithm::kCubic), "cubic");
  EXPECT_STREQ(to_string(CcAlgorithm::kReno), "reno");
  EXPECT_STREQ(to_string(CcAlgorithm::kRenoEcn), "reno-ecn");
}

}  // namespace
}  // namespace incast::tcp
