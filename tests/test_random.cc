// Tests for the deterministic Rng and its distributions.
#include "sim/random.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

namespace incast::sim {
namespace {

using namespace incast::sim::literals;

TEST(Rng, SameSeedSameSequence) {
  Rng a{42};
  Rng b{42};
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDifferentSequences) {
  Rng a{1};
  Rng b{2};
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, ZeroSeedIsUsable) {
  Rng rng{0};
  // SplitMix64 seeding must avoid an all-zero state.
  bool nonzero = false;
  for (int i = 0; i < 10; ++i) {
    if (rng.next_u64() != 0) nonzero = true;
  }
  EXPECT_TRUE(nonzero);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng{7};
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanIsHalf) {
  Rng rng{7};
  double total = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) total += rng.uniform();
  EXPECT_NEAR(total / n, 0.5, 0.01);
}

TEST(Rng, UniformIntCoversInclusiveRange) {
  Rng rng{9};
  std::vector<int> hits(6, 0);
  for (int i = 0; i < 6000; ++i) {
    const std::int64_t v = rng.uniform_int(10, 15);
    ASSERT_GE(v, 10);
    ASSERT_LE(v, 15);
    ++hits[static_cast<std::size_t>(v - 10)];
  }
  for (const int h : hits) EXPECT_GT(h, 0);
}

TEST(Rng, UniformIntDegenerateRange) {
  Rng rng{3};
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniform_int(5, 5), 5);
}

TEST(Rng, UniformTimeWithinBounds) {
  Rng rng{11};
  for (int i = 0; i < 1000; ++i) {
    const Time t = rng.uniform_time(10_us, 100_us);
    ASSERT_GE(t, 10_us);
    ASSERT_LT(t, 100_us);
  }
  // Empty range returns the lower bound.
  EXPECT_EQ(rng.uniform_time(5_us, 5_us), 5_us);
}

TEST(Rng, BernoulliExtremes) {
  Rng rng{13};
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, BernoulliRate) {
  Rng rng{13};
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (rng.bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, ExponentialMean) {
  Rng rng{17};
  double total = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) total += rng.exponential(2.5);
  EXPECT_NEAR(total / n, 2.5, 0.05);
}

TEST(Rng, NormalMoments) {
  Rng rng{19};
  double total = 0.0;
  double sq = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.normal(10.0, 3.0);
    total += v;
    sq += v * v;
  }
  const double mean = total / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.05);
  EXPECT_NEAR(std::sqrt(var), 3.0, 0.05);
}

TEST(Rng, LognormalMedian) {
  Rng rng{23};
  std::vector<double> values;
  const int n = 20001;
  values.reserve(n);
  for (int i = 0; i < n; ++i) values.push_back(rng.lognormal(std::log(100.0), 0.4));
  std::sort(values.begin(), values.end());
  // Median of lognormal(mu, sigma) is exp(mu).
  EXPECT_NEAR(values[n / 2], 100.0, 5.0);
}

TEST(Rng, PoissonMeanSmall) {
  Rng rng{29};
  double total = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) total += static_cast<double>(rng.poisson(4.0));
  EXPECT_NEAR(total / n, 4.0, 0.1);
}

TEST(Rng, PoissonMeanLargeUsesNormalApprox) {
  Rng rng{31};
  double total = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) total += static_cast<double>(rng.poisson(1000.0));
  EXPECT_NEAR(total / n, 1000.0, 5.0);
}

TEST(Rng, PoissonZeroMean) {
  Rng rng{37};
  EXPECT_EQ(rng.poisson(0.0), 0);
  EXPECT_EQ(rng.poisson(-1.0), 0);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng parent{41};
  Rng child = parent.fork();
  // The child differs from a same-seed copy of the parent.
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (parent.next_u64() == child.next_u64()) ++same;
  }
  EXPECT_LT(same, 3);
}

}  // namespace
}  // namespace incast::sim
