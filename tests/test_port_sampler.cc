// Tests for PortSampler: switch-port telemetry binned exactly like the
// host-side Millisampler, so traces from different vantage points are
// directly comparable.
#include "telemetry/port_sampler.h"

#include <gtest/gtest.h>

#include <sstream>

#include "net/topology.h"
#include "telemetry/millisampler.h"
#include "telemetry/trace_io.h"

namespace incast::telemetry {
namespace {

using namespace incast::sim::literals;

class Sink final : public net::PacketHandler {
 public:
  void handle_packet(net::Packet p) override { packets.push_back(std::move(p)); }
  std::vector<net::Packet> packets;
};

TEST(PortSampler, CountsTransmittedBytesPerBin) {
  sim::Simulator sim;
  net::Dumbbell d{sim, net::DumbbellConfig{.num_senders = 1}};

  PortSampler sampler{"tor_r->receiver0", Millisampler::Config{}};
  sampler.attach(d.link("tor_r->receiver0"));

  Sink sink;
  d.receiver(0).register_flow(1, &sink);
  // Three packets in bin 0, one ~2 ms later in bin 2.
  for (int i = 0; i < 3; ++i) {
    d.sender(0).send(
        net::make_data_packet(d.sender(0).id(), d.receiver(0).id(), 1, i * 1460, 1460));
  }
  sim.schedule_in(2_ms, [&] {
    d.sender(0).send(
        net::make_data_packet(d.sender(0).id(), d.receiver(0).id(), 1, 3 * 1460, 1460));
  });
  sim.run();
  // finalize keeps whole bins only; pad past the last packet so its bin
  // (index 2) is complete.
  sampler.finalize(sim.now() + 1_ms);

  ASSERT_EQ(sink.packets.size(), 4u);
  const std::int64_t wire_bytes = sink.packets[0].size_bytes;
  ASSERT_EQ(sampler.bins().size(), 3u);
  EXPECT_EQ(sampler.bins()[0].bytes, 3 * wire_bytes);
  EXPECT_EQ(sampler.bins()[1].bytes, 0);
  EXPECT_EQ(sampler.bins()[2].bytes, wire_bytes);
  EXPECT_EQ(sampler.bins()[0].active_flows, 1);
}

TEST(PortSampler, AdoptsThePortLineRate) {
  sim::Simulator sim;
  net::DumbbellConfig cfg;
  cfg.num_senders = 1;
  cfg.core_link = sim::Bandwidth::gigabits_per_second(100);
  net::Dumbbell d{sim, cfg};

  PortSampler sampler{"tor_s->tor_r", Millisampler::Config{}};
  sampler.attach(d.link("tor_s->tor_r"));
  EXPECT_EQ(sampler.sampler().config().line_rate.bps(),
            sim::Bandwidth::gigabits_per_second(100).bps());
}

TEST(PortSampler, TraceMatchesHostMillisamplerAtTheSamePoint) {
  // A PortSampler on the receiver downlink and a Millisampler on the
  // receiver host observe the same packet stream; their CSVs must agree
  // byte for byte (the port tap fires when serialization completes, the
  // host tap one propagation delay later — sub-bin, so bins align).
  sim::Simulator sim;
  net::Dumbbell d{sim, net::DumbbellConfig{.num_senders = 2}};

  PortSampler port_sampler{"tor_r->receiver0", Millisampler::Config{}};
  port_sampler.attach(d.link("tor_r->receiver0"));
  Millisampler host_sampler{Millisampler::Config{}};
  d.receiver(0).add_ingress_tap(&host_sampler);

  Sink sink;
  d.receiver(0).register_flow(1, &sink);
  d.receiver(0).register_flow(2, &sink);
  for (int i = 0; i < 20; ++i) {
    d.sender(0).send(
        net::make_data_packet(d.sender(0).id(), d.receiver(0).id(), 1, i * 1460, 1460));
    d.sender(1).send(
        net::make_data_packet(d.sender(1).id(), d.receiver(0).id(), 2, i * 1460, 1460));
  }
  sim.run();
  const sim::Time end = sim.now() + 1_ms;
  port_sampler.finalize(end);
  host_sampler.finalize(end);

  std::ostringstream port_csv, host_csv;
  write_bins_csv(port_sampler.bins(), port_csv);
  write_bins_csv(host_sampler.bins(), host_csv);
  EXPECT_EQ(port_csv.str(), host_csv.str());
  EXPECT_GT(port_sampler.bins().at(0).bytes, 0);
  EXPECT_EQ(port_sampler.bins().at(0).active_flows, 2);
}

}  // namespace
}  // namespace incast::telemetry
