// Tests for the FatTree fabric builder: shape, reachability, named links,
// and loud unrouted-packet detection.
#include "fabric/fat_tree.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "net/host.h"
#include "net/switch.h"
#include "sim/simulator.h"

namespace incast::fabric {
namespace {

using namespace incast::sim::literals;

class RecordingHandler final : public net::PacketHandler {
 public:
  void handle_packet(net::Packet p) override { packets.push_back(std::move(p)); }
  std::vector<net::Packet> packets;
};

TEST(FatTree, BuildsTwoTierShape) {
  sim::Simulator sim;
  FatTreeConfig cfg;
  cfg.num_pods = 2;
  cfg.leaves_per_pod = 2;
  cfg.hosts_per_leaf = 4;
  cfg.aggs_per_pod = 0;
  cfg.num_spines = 3;
  FatTree ft{sim, cfg};

  EXPECT_FALSE(ft.three_tier());
  EXPECT_EQ(ft.num_leaves(), 4);
  EXPECT_EQ(ft.num_hosts(), 16);
  // Leaf: one downlink per host + one uplink per spine.
  EXPECT_EQ(ft.leaf(0).num_ports(), 7u);
  // Spine: one port per leaf.
  EXPECT_EQ(ft.spine(0).num_ports(), 4u);
  EXPECT_EQ(ft.switches().size(), 4u + 3u);
  // 16 host links + 4*3 uplinks, both directions each.
  EXPECT_EQ(ft.link_names().size(), 2u * (16u + 12u));
}

TEST(FatTree, BuildsThreeTierShape) {
  sim::Simulator sim;
  FatTreeConfig cfg;
  cfg.num_pods = 2;
  cfg.leaves_per_pod = 2;
  cfg.hosts_per_leaf = 2;
  cfg.aggs_per_pod = 2;
  cfg.num_spines = 2;
  FatTree ft{sim, cfg};

  EXPECT_TRUE(ft.three_tier());
  // Leaf: hosts + one uplink per pod agg.
  EXPECT_EQ(ft.leaf(0).num_ports(), 4u);
  // Agg: one downlink per pod leaf + one uplink per spine.
  EXPECT_EQ(ft.agg(0, 0).num_ports(), 4u);
  // Spine: one port per agg fabric-wide.
  EXPECT_EQ(ft.spine(0).num_ports(), 4u);
  EXPECT_EQ(ft.switches().size(), 4u + 4u + 2u);
}

TEST(FatTree, InvalidConfigThrows) {
  sim::Simulator sim;
  FatTreeConfig cfg;
  cfg.num_pods = 0;
  EXPECT_THROW((FatTree{sim, cfg}), std::invalid_argument);
  cfg = FatTreeConfig{};
  cfg.num_spines = 0;
  EXPECT_THROW((FatTree{sim, cfg}), std::invalid_argument);
  cfg = FatTreeConfig{};
  cfg.aggs_per_pod = -1;
  EXPECT_THROW((FatTree{sim, cfg}), std::invalid_argument);
}

TEST(FatTree, CrossRackDeliveryTwoTier) {
  sim::Simulator sim;
  FatTreeConfig cfg;
  cfg.num_pods = 2;
  cfg.leaves_per_pod = 2;
  cfg.hosts_per_leaf = 2;
  cfg.num_spines = 2;
  FatTree ft{sim, cfg};

  // Every host sends one packet to the last host (cross-pod for most).
  RecordingHandler sink;
  const int dst = ft.num_hosts() - 1;
  ft.host(dst).register_flow(3, &sink);
  for (int src = 0; src < ft.num_hosts() - 1; ++src) {
    ft.host(src).send(
        net::make_data_packet(ft.host(src).id(), ft.host(dst).id(), 3, 0, 1460));
  }
  sim.run();
  EXPECT_EQ(sink.packets.size(), static_cast<std::size_t>(ft.num_hosts() - 1));
  EXPECT_NO_THROW(net::check_no_unrouted(ft.switches()));
}

TEST(FatTree, CrossRackDeliveryThreeTier) {
  sim::Simulator sim;
  FatTreeConfig cfg;
  cfg.num_pods = 2;
  cfg.leaves_per_pod = 2;
  cfg.hosts_per_leaf = 2;
  cfg.aggs_per_pod = 2;
  cfg.num_spines = 2;
  FatTree ft{sim, cfg};

  // All-pairs: every host reaches every other host through up/down routing.
  std::vector<RecordingHandler> sinks(static_cast<std::size_t>(ft.num_hosts()));
  for (int h = 0; h < ft.num_hosts(); ++h) {
    ft.host(h).register_flow(7, &sinks[static_cast<std::size_t>(h)]);
  }
  int sent = 0;
  for (int src = 0; src < ft.num_hosts(); ++src) {
    for (int dst = 0; dst < ft.num_hosts(); ++dst) {
      if (src == dst) continue;
      ft.host(src).send(
          net::make_data_packet(ft.host(src).id(), ft.host(dst).id(), 7, 0, 100));
      ++sent;
    }
  }
  sim.run();
  int received = 0;
  for (const auto& s : sinks) received += static_cast<int>(s.packets.size());
  EXPECT_EQ(received, sent);
  EXPECT_NO_THROW(net::check_no_unrouted(ft.switches()));
}

TEST(FatTree, LinkNamesAddressEveryLink) {
  sim::Simulator sim;
  FatTreeConfig cfg;
  cfg.num_pods = 1;
  cfg.leaves_per_pod = 2;
  cfg.hosts_per_leaf = 1;
  cfg.num_spines = 1;
  FatTree ft{sim, cfg};

  EXPECT_NE(ft.find_link("p0.l0->s0"), nullptr);
  EXPECT_NE(ft.find_link("s0->p0.l1"), nullptr);
  EXPECT_NE(ft.find_link("p0.l0.h0->p0.l0"), nullptr);
  EXPECT_EQ(ft.find_link("p9.l9->s9"), nullptr);
  EXPECT_NO_THROW(ft.link("p0.l1->s0"));
  EXPECT_THROW(ft.link("no-such-link"), std::out_of_range);
}

TEST(FatTree, UnroutedPacketsFailLoudlyWithDestination) {
  sim::Simulator sim;
  FatTreeConfig cfg;
  cfg.num_pods = 1;
  cfg.leaves_per_pod = 2;
  cfg.hosts_per_leaf = 1;
  cfg.num_spines = 1;
  FatTree ft{sim, cfg};

  // A destination no switch knows: the leaf must count it, and the teardown
  // check must name both the switch and the destination.
  const net::NodeId bogus = 9999;
  ft.host(0).send(net::make_data_packet(ft.host(0).id(), bogus, 1, 0, 1460));
  sim.run();
  EXPECT_EQ(ft.leaf(0).unrouted_packets(), 1);
  try {
    net::check_no_unrouted(ft.switches());
    FAIL() << "check_no_unrouted did not throw";
  } catch (const std::runtime_error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("p0.l0"), std::string::npos) << msg;
    EXPECT_NE(msg.find("9999"), std::string::npos) << msg;
  }
}

TEST(FatTree, OversubscriptionRatio) {
  sim::Simulator sim;
  FatTreeConfig cfg;
  cfg.num_pods = 1;
  cfg.leaves_per_pod = 2;
  cfg.hosts_per_leaf = 8;
  cfg.num_spines = 2;
  cfg.host_link = sim::Bandwidth::gigabits_per_second(10);
  cfg.leaf_uplink = sim::Bandwidth::gigabits_per_second(40);
  FatTree ft{sim, cfg};
  // 8 x 10G offered vs 2 x 40G uplink = 1:1.
  EXPECT_DOUBLE_EQ(ft.oversubscription(), 1.0);

  cfg.hosts_per_leaf = 16;
  sim::Simulator sim2;
  FatTree ft2{sim2, cfg};
  EXPECT_DOUBLE_EQ(ft2.oversubscription(), 2.0);
}

TEST(FatTree, DownlinkQueueIsTheLeafEgressToThatHost) {
  sim::Simulator sim;
  FatTreeConfig cfg;
  cfg.num_pods = 1;
  cfg.leaves_per_pod = 2;
  cfg.hosts_per_leaf = 2;
  cfg.num_spines = 1;
  cfg.switch_queue = {.capacity_packets = 777, .ecn_threshold_packets = 33};
  FatTree ft{sim, cfg};
  EXPECT_EQ(ft.downlink_queue(3).config().capacity_packets, 777);
  EXPECT_EQ(ft.downlink_queue(3).config().ecn_threshold_packets, 33);
  EXPECT_TRUE(ft.downlink_queue(3).empty());
}

}  // namespace
}  // namespace incast::fabric
