// Tests for sim::Bandwidth and the bandwidth-delay product helper.
#include "sim/units.h"

#include <gtest/gtest.h>

namespace incast::sim {
namespace {

using namespace incast::sim::literals;

TEST(Bandwidth, NamedConstructorsAgree) {
  EXPECT_EQ(Bandwidth::gigabits_per_second(1).bps(), 1'000'000'000);
  EXPECT_EQ(Bandwidth::megabits_per_second(1000), Bandwidth::gigabits_per_second(1));
  EXPECT_EQ(Bandwidth::kilobits_per_second(1000), Bandwidth::megabits_per_second(1));
}

TEST(Bandwidth, SerializationTime) {
  const auto g10 = Bandwidth::gigabits_per_second(10);
  // 1500 B at 10 Gbps = 1.2 us.
  EXPECT_EQ(g10.serialization_time(1500), Time::nanoseconds(1200));
  // 40 B ACK at 10 Gbps = 32 ns.
  EXPECT_EQ(g10.serialization_time(40), Time::nanoseconds(32));
  // 1500 B at 100 Gbps = 120 ns.
  EXPECT_EQ(Bandwidth::gigabits_per_second(100).serialization_time(1500),
            Time::nanoseconds(120));
}

TEST(Bandwidth, BytesIn) {
  const auto g10 = Bandwidth::gigabits_per_second(10);
  // 10 Gbps for 1 ms = 1.25 MB.
  EXPECT_EQ(g10.bytes_in(1_ms), 1'250'000);
  EXPECT_EQ(g10.bytes_in(Time::zero()), 0);
}

TEST(Bandwidth, PaperBdpIs37500Bytes) {
  // Section 4: "BDP ... is 10 Gbps x 30 us = 37.5 KB".
  const auto bdp =
      bandwidth_delay_product_bytes(Bandwidth::gigabits_per_second(10), 30_us);
  EXPECT_EQ(bdp, 37'500);
}

TEST(Bandwidth, ScalingAndRatios) {
  const auto g10 = Bandwidth::gigabits_per_second(10);
  EXPECT_EQ(g10 * 0.5, Bandwidth::gigabits_per_second(5));
  EXPECT_DOUBLE_EQ(Bandwidth::gigabits_per_second(100) / g10, 10.0);
}

TEST(Bandwidth, ToString) {
  EXPECT_EQ(Bandwidth::gigabits_per_second(10).to_string(), "10Gbps");
  EXPECT_EQ(Bandwidth::megabits_per_second(250).to_string(), "250Mbps");
  EXPECT_EQ(Bandwidth::bits_per_second(999).to_string(), "999bps");
}

TEST(Bandwidth, SerializationTimeRoundTripsWithBytesIn) {
  const auto g25 = Bandwidth::gigabits_per_second(25);
  const std::int64_t bytes = 123'456;
  const Time t = g25.serialization_time(bytes);
  // bytes_in(serialization_time(b)) == b up to integer truncation.
  EXPECT_NEAR(static_cast<double>(g25.bytes_in(t)), static_cast<double>(bytes), 4.0);
}

}  // namespace
}  // namespace incast::sim
