// Tests for the fleet traffic generator and FleetExperiment (Section 3
// pipeline, scaled down for test speed).
#include <gtest/gtest.h>

#include "core/fleet_experiment.h"
#include "workload/fleet_traffic.h"

namespace incast::core {
namespace {

using sim::Time;
using namespace incast::sim::literals;

workload::ServiceProfile small_profile() {
  workload::ServiceProfile p = workload::service_by_name("messaging");
  p.max_flows = 60;  // keep the per-test topology small
  p.body_median_flows = 30.0;
  return p;
}

tcp::TcpConfig tcp_config() {
  tcp::TcpConfig c;
  c.cc = tcp::CcAlgorithm::kDctcp;
  c.rtt.min_rto = 200_ms;
  return c;
}

TEST(FleetTrafficGen, GeneratesBurstsAtRoughlyTheConfiguredRate) {
  sim::Simulator sim;
  net::DumbbellConfig topo_cfg;
  topo_cfg.num_senders = 60;
  net::Dumbbell topo{sim, topo_cfg};

  workload::FleetTrafficGen::Config cfg;
  cfg.profile = small_profile();
  cfg.profile.bursts_per_second = 100.0;
  workload::FleetTrafficGen gen{sim, topo, tcp_config(), cfg, 11};
  gen.start(500_ms);
  sim.run_until(600_ms);

  // Poisson(100/s * 0.5 s) = ~50 expected bursts.
  const auto n = gen.burst_log().size();
  EXPECT_GT(n, 25u);
  EXPECT_LT(n, 85u);
}

TEST(FleetTrafficGen, BurstsDriveReceiverNearLineRate) {
  sim::Simulator sim;
  net::DumbbellConfig topo_cfg;
  topo_cfg.num_senders = 60;
  net::Dumbbell topo{sim, topo_cfg};

  telemetry::Millisampler sampler{
      {.bin_duration = 1_ms, .line_rate = topo.config().host_link}};
  topo.receiver(0).add_ingress_tap(&sampler);

  workload::FleetTrafficGen::Config cfg;
  cfg.profile = small_profile();
  cfg.profile.bursts_per_second = 60.0;
  workload::FleetTrafficGen gen{sim, topo, tcp_config(), cfg, 5};
  gen.start(300_ms);
  sim.run_until(350_ms);
  sampler.finalize(300_ms);

  // At least one bin at >50% utilization (a detectable burst).
  bool has_hot_bin = false;
  double max_util = 0.0;
  for (std::size_t i = 0; i < sampler.bins().size(); ++i) {
    max_util = std::max(max_util, sampler.utilization(i));
    if (sampler.utilization(i) > 0.5) has_hot_bin = true;
  }
  EXPECT_TRUE(has_hot_bin) << "max utilization " << max_util;
  EXPECT_LE(max_util, 1.05);  // cannot exceed line rate (+rounding)
}

FleetConfig tiny_fleet_config() {
  FleetConfig cfg;
  cfg.profile = small_profile();
  cfg.profile.bursts_per_second = 80.0;
  cfg.num_hosts = 2;
  cfg.num_snapshots = 2;
  cfg.trace_duration = 200_ms;
  cfg.tcp = tcp_config();
  return cfg;
}

TEST(FleetExperiment, ProducesBurstSummariesPerHostTrace) {
  FleetExperiment exp{tiny_fleet_config()};
  const auto result = exp.run_host_trace(0, 0);

  EXPECT_EQ(result.host, 0);
  EXPECT_EQ(result.snapshot, 0);
  EXPECT_GT(result.generated_bursts, 0);
  EXPECT_GT(result.summary.bursts.size(), 0u);
  EXPECT_GT(result.avg_utilization, 0.0);
  EXPECT_LT(result.avg_utilization, 1.0);
  // Bins are not retained by default.
  EXPECT_TRUE(result.bins.empty());
}

TEST(FleetExperiment, KeepBinsRetainsRawSeries) {
  FleetExperiment exp{tiny_fleet_config()};
  exp.set_keep_bins(true);
  const auto result = exp.run_host_trace(0, 0);
  EXPECT_EQ(result.bins.size(), 200u);  // 200 ms at 1 ms bins
  EXPECT_EQ(result.queue_watermarks.size(), 200u);
}

TEST(FleetExperiment, DetectedBurstsCarryQueueWatermarks) {
  FleetExperiment exp{tiny_fleet_config()};
  const auto result = exp.run_host_trace(0, 0);
  int with_queue = 0;
  for (const auto& b : result.summary.bursts) {
    if (b.peak_queue_packets >= 0) ++with_queue;
  }
  EXPECT_EQ(with_queue, static_cast<int>(result.summary.bursts.size()));
}

TEST(FleetExperiment, DeterministicForSameSeed) {
  FleetExperiment exp{tiny_fleet_config()};
  const auto a = exp.run_host_trace(1, 1);
  const auto b = exp.run_host_trace(1, 1);
  EXPECT_EQ(a.summary.bursts.size(), b.summary.bursts.size());
  EXPECT_DOUBLE_EQ(a.avg_utilization, b.avg_utilization);
  EXPECT_EQ(a.queue_drops, b.queue_drops);
}

TEST(FleetExperiment, DifferentHostsDifferentTraffic) {
  FleetExperiment exp{tiny_fleet_config()};
  const auto a = exp.run_host_trace(0, 0);
  const auto b = exp.run_host_trace(1, 0);
  // Same service, different hosts: traces differ in detail.
  EXPECT_NE(a.avg_utilization, b.avg_utilization);
}

TEST(FleetExperiment, RunAllCoversHostSnapshotGrid) {
  FleetExperiment exp{tiny_fleet_config()};
  const auto results = exp.run_all();
  ASSERT_EQ(results.size(), 4u);  // 2 hosts x 2 snapshots
  EXPECT_EQ(results[0].snapshot, 0);
  EXPECT_EQ(results[3].snapshot, 1);
}

TEST(FleetExperiment, NeighborContentionRunsRealCrossTraffic) {
  FleetConfig cfg = tiny_fleet_config();
  cfg.contention_mode = FleetConfig::ContentionMode::kNeighbor;
  FleetExperiment exp{cfg};
  const auto r = exp.run_host_trace(0, 0);
  // The measured host still sees its own service's bursts...
  EXPECT_GT(r.summary.bursts.size(), 0u);
  // ...and the run is deterministic like every other mode.
  const auto r2 = exp.run_host_trace(0, 0);
  EXPECT_DOUBLE_EQ(r.avg_utilization, r2.avg_utilization);
  EXPECT_EQ(r.queue_drops, r2.queue_drops);
}

TEST(FleetExperiment, ContentionModesProduceDistinctTraces) {
  FleetConfig none_cfg = tiny_fleet_config();
  none_cfg.contention_mode = FleetConfig::ContentionMode::kNone;
  FleetConfig nbr_cfg = tiny_fleet_config();
  nbr_cfg.contention_mode = FleetConfig::ContentionMode::kNeighbor;
  const auto none = FleetExperiment{none_cfg}.run_host_trace(0, 0);
  const auto nbr = FleetExperiment{nbr_cfg}.run_host_trace(0, 0);
  // Same generator seed drives the measured host, so its offered load is
  // identical; only the rack environment differs.
  EXPECT_EQ(none.generated_bursts, nbr.generated_bursts);
}

TEST(FleetExperiment, AltRegimeFollowsSnapshotBlocks) {
  FleetConfig cfg = tiny_fleet_config();
  cfg.profile.alt_median_flows = 40.0;
  cfg.regime_block_snapshots = 1;  // alternate every snapshot
  cfg.num_snapshots = 2;
  FleetExperiment exp{cfg};
  EXPECT_FALSE(exp.run_host_trace(0, 0).alt_regime);
  EXPECT_TRUE(exp.run_host_trace(0, 1).alt_regime);
}

}  // namespace
}  // namespace incast::core
