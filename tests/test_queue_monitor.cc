// Tests for the QueueMonitor (time series + windowed watermarks).
#include "telemetry/queue_monitor.h"

#include <gtest/gtest.h>

namespace incast::telemetry {
namespace {

using sim::Simulator;
using sim::Time;
using namespace incast::sim::literals;

net::Packet pkt() { return net::make_data_packet(0, 1, 1, 0, 1460); }

TEST(QueueMonitor, SamplesAtRequestedPeriod) {
  Simulator sim;
  net::DropTailQueue q{{.capacity_packets = 100, .ecn_threshold_packets = 0}};
  QueueMonitor mon{sim, q, {.sample_every = 10_us, .watermark_window = Time::zero()}};
  mon.start(100_us);
  sim.run();

  // Samples at 0, 10, ..., 100 us.
  ASSERT_EQ(mon.samples().size(), 11u);
  EXPECT_EQ(mon.samples()[0].at, Time::zero());
  EXPECT_EQ(mon.samples()[10].at, 100_us);
  EXPECT_TRUE(mon.watermarks().empty());
}

TEST(QueueMonitor, SamplesReflectOccupancy) {
  Simulator sim;
  net::DropTailQueue q{{.capacity_packets = 100, .ecn_threshold_packets = 0}};
  QueueMonitor mon{sim, q, {.sample_every = 10_us, .watermark_window = Time::zero()}};
  mon.start(50_us);

  sim.schedule_at(15_us, [&] {
    (void)q.enqueue(pkt());
    (void)q.enqueue(pkt());
  });
  sim.schedule_at(35_us, [&] { (void)q.dequeue(); });
  sim.run();

  EXPECT_EQ(mon.samples()[1].packets, 0);  // t=10us
  EXPECT_EQ(mon.samples()[2].packets, 2);  // t=20us
  EXPECT_EQ(mon.samples()[4].packets, 1);  // t=40us
}

TEST(QueueMonitor, WatermarksCapturePeakWithinWindow) {
  Simulator sim;
  net::DropTailQueue q{{.capacity_packets = 100, .ecn_threshold_packets = 0}};
  QueueMonitor mon{sim, q, {.sample_every = Time::zero(), .watermark_window = 1_ms}};
  mon.start(3_ms);

  // Spike to 5 packets inside window 0, then drain fully.
  sim.schedule_at(200_us, [&] {
    for (int i = 0; i < 5; ++i) (void)q.enqueue(pkt());
  });
  sim.schedule_at(400_us, [&] {
    while (q.dequeue().has_value()) {
    }
  });
  // Window 2: a smaller spike that persists.
  sim.schedule_at(Time::milliseconds(2.5), [&] {
    (void)q.enqueue(pkt());
    (void)q.enqueue(pkt());
  });
  sim.run();

  ASSERT_EQ(mon.watermarks().size(), 3u);
  EXPECT_EQ(mon.watermarks()[0], 5);  // the transient spike was captured
  EXPECT_EQ(mon.watermarks()[1], 0);
  EXPECT_EQ(mon.watermarks()[2], 2);
}

TEST(QueueMonitor, DropsAreCumulativeAtWindowEnds) {
  Simulator sim;
  net::DropTailQueue q{{.capacity_packets = 1, .ecn_threshold_packets = 0}};
  QueueMonitor mon{sim, q, {.sample_every = Time::zero(), .watermark_window = 1_ms}};
  mon.start(2_ms);

  sim.schedule_at(100_us, [&] {
    (void)q.enqueue(pkt());
    (void)q.enqueue(pkt());  // dropped
    (void)q.enqueue(pkt());  // dropped
  });
  sim.schedule_at(Time::milliseconds(1.5), [&] {
    (void)q.enqueue(pkt());  // dropped (still full)
  });
  sim.run();

  ASSERT_EQ(mon.drops_at_window_end().size(), 2u);
  EXPECT_EQ(mon.drops_at_window_end()[0], 2);
  EXPECT_EQ(mon.drops_at_window_end()[1], 3);
}

TEST(QueueMonitor, BothModesSimultaneously) {
  Simulator sim;
  net::DropTailQueue q{{.capacity_packets = 100, .ecn_threshold_packets = 0}};
  QueueMonitor mon{sim, q, {.sample_every = 100_us, .watermark_window = 1_ms}};
  mon.start(2_ms);
  sim.run();
  EXPECT_EQ(mon.samples().size(), 21u);
  EXPECT_EQ(mon.watermarks().size(), 2u);
}

}  // namespace
}  // namespace incast::telemetry
