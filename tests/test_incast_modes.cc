// Integration tests reproducing Section 4.1's DCTCP operating modes (in
// abbreviated form; the full Figure 5 reproduction is bench/fig5_dctcp_modes).
#include <gtest/gtest.h>

#include "core/incast_experiment.h"

namespace incast::core {
namespace {

using sim::Time;
using namespace incast::sim::literals;

IncastExperimentConfig base_config(int flows) {
  IncastExperimentConfig cfg;
  cfg.num_flows = flows;
  cfg.burst_duration = 15_ms;
  cfg.num_bursts = 4;  // abbreviated from the paper's 11 for test speed
  cfg.discard_bursts = 1;
  cfg.tcp.cc = tcp::CcAlgorithm::kDctcp;
  cfg.tcp.rtt.min_rto = 200_ms;
  cfg.seed = 7;
  return cfg;
}

TEST(IncastModes, Mode1HealthyOscillationAroundEcnThreshold) {
  // 100 flows: DCTCP converges; the queue oscillates around K = 65 packets
  // and the burst finishes near the optimal 15 ms.
  const auto result = run_incast_experiment(base_config(100));

  ASSERT_EQ(result.bursts.size(), 4u);
  EXPECT_EQ(result.timeouts, 0);
  EXPECT_EQ(result.queue_drops, 0);
  // Queue near the marking threshold, far below capacity (1333).
  EXPECT_GT(result.avg_queue_packets, 20.0);
  EXPECT_LT(result.avg_queue_packets, 250.0);
  EXPECT_LT(result.peak_queue_packets, 1000.0);
  // BCT near optimal.
  EXPECT_GT(result.avg_bct_ms, 14.0);
  EXPECT_LT(result.avg_bct_ms, 20.0);
}

TEST(IncastModes, Mode2DegeneratePointQueueFloor) {
  // 500 flows: every flow is pinned at cwnd = 1 MSS, so the queue cannot
  // drain below ~(flows - BDP) packets. BCT stays near optimal but the
  // standing queue means ~480 us of added delay.
  const auto result = run_incast_experiment(base_config(500));

  EXPECT_EQ(result.queue_drops, 0);  // 1333-packet queue absorbs 500 flows
  EXPECT_EQ(result.timeouts, 0);
  // Standing queue close to flows - BDP (475); allow slack for stragglers
  // and jitter.
  EXPECT_GT(result.avg_queue_packets, 350.0);
  EXPECT_LT(result.avg_queue_packets, 600.0);
  EXPECT_GT(result.avg_bct_ms, 14.0);
  EXPECT_LT(result.avg_bct_ms, 25.0);
  // Essentially all traffic is ECN-marked: the queue sits far above K.
  EXPECT_GT(result.marked_fraction(), 0.8);
}

TEST(IncastModes, Mode3TimeoutsAndOverflow) {
  // Past the degenerate point, flows at cwnd = 1 MSS collectively overrun
  // the 1333-packet queue; fast retransmit cannot engage at such tiny
  // windows, so recovery requires RTOs and the BCT explodes toward
  // min_rto. The paper sees this at 1000 flows (its stragglers inflate the
  // start-of-burst spike); our more synchronized completions put the
  // boundary at the paper's own steady-state formula, K > queue + BDP
  // (~1330), so we exercise Mode 3 at 1500 flows.
  const auto result = run_incast_experiment(base_config(1500));

  EXPECT_GT(result.queue_drops, 0);
  EXPECT_GT(result.timeouts, 0);
  EXPECT_GT(result.max_bct_ms, 100.0);  // ~200 ms with the Linux min RTO
  // Fast retransmit is essentially absent: windows are too small for three
  // duplicate ACKs.
  EXPECT_LT(result.fast_retransmits, result.timeouts / 10 + 5);
}

TEST(IncastModes, QueueNeverExceedsCapacity) {
  const auto result = run_incast_experiment(base_config(1500));
  for (const auto& s : result.queue_series) {
    ASSERT_LE(s.packets, 1333);
  }
}

TEST(IncastModes, BurstBoundaryDivergence) {
  // Section 4.3: at the end of a burst, stragglers ramp up, so the maximum
  // end-of-burst cwnd far exceeds the mean.
  const auto result = run_incast_experiment(base_config(100));
  EXPECT_GT(result.end_of_burst_cwnd_max_mss, 2.0 * result.end_of_burst_cwnd_mean_mss);
}

TEST(IncastModes, DeterministicAcrossRuns) {
  const auto a = run_incast_experiment(base_config(100));
  const auto b = run_incast_experiment(base_config(100));
  ASSERT_EQ(a.bursts.size(), b.bursts.size());
  for (std::size_t i = 0; i < a.bursts.size(); ++i) {
    EXPECT_EQ(a.bursts[i].completed.ns(), b.bursts[i].completed.ns());
  }
  EXPECT_EQ(a.queue_ecn_marks, b.queue_ecn_marks);
  EXPECT_EQ(a.timeouts, b.timeouts);
}

TEST(IncastModes, ShortBurstsDominatedByInitialSpike) {
  // Section 4.2: 2 ms bursts spend most of their life in the initial
  // window spike; the average queue is high relative to the duration.
  auto cfg = base_config(500);
  cfg.burst_duration = 2_ms;
  const auto result = run_incast_experiment(cfg);
  EXPECT_GT(result.peak_queue_packets, 400.0);
  EXPECT_GT(result.avg_bct_ms, 1.5);
}

}  // namespace
}  // namespace incast::core
