// Tests for SACK (RFC 2018 blocks, RFC 6675-lite scoreboard) and limited
// transmit (RFC 3042).
#include <gtest/gtest.h>

#include <vector>

#include "net/topology.h"
#include "tcp/tcp_connection.h"

namespace incast::tcp {
namespace {

using sim::Simulator;
using sim::Time;
using namespace incast::sim::literals;

constexpr net::FlowId kFlow = 1;
constexpr std::int64_t kMss = 1460;

TcpConfig sack_config() {
  TcpConfig c;
  c.cc = CcAlgorithm::kReno;
  c.sack_enabled = true;
  c.rtt.min_rto = 1_s;  // timeouts would fail the fast-path tests
  c.rtt.initial_rto = 1_s;
  return c;
}

// --- Receiver-side SACK generation ----------------------------------------

struct ReceiverFixture {
  Simulator sim;
  net::Host peer;
  net::Host local;

  struct AckLog final : public net::PacketHandler {
    void handle_packet(net::Packet p) override { acks.push_back(std::move(p)); }
    std::vector<net::Packet> acks;
  };
  AckLog ack_log;

  ReceiverFixture() : peer{sim, 0, "peer"}, local{sim, 1, "local"} {
    const net::DropTailQueue::Config q{.capacity_packets = 1000, .ecn_threshold_packets = 0};
    peer.add_nic(sim::Bandwidth::gigabits_per_second(10), 1_us, q);
    local.add_nic(sim::Bandwidth::gigabits_per_second(10), 1_us, q);
    net::connect_duplex(peer, 0, local, 0);
    peer.register_flow(kFlow, &ack_log);
  }

  net::Packet data(std::int64_t segment_index) {
    return net::make_data_packet(peer.id(), local.id(), kFlow, segment_index * kMss, kMss);
  }
};

TEST(SackReceiver, DupAckCarriesTheOutOfOrderBlock) {
  ReceiverFixture f;
  TcpReceiver rx{f.sim, f.local, f.peer.id(), kFlow, sack_config()};
  rx.handle_packet(f.data(0));
  rx.handle_packet(f.data(2));  // gap at segment 1
  f.sim.run();

  ASSERT_EQ(f.ack_log.acks.size(), 2u);
  const auto& dup = f.ack_log.acks[1];
  EXPECT_EQ(dup.tcp.ack, kMss);
  ASSERT_EQ(dup.tcp.num_sack, 1);
  EXPECT_EQ(dup.tcp.sack[0], (net::SackBlock{2 * kMss, 3 * kMss}));
}

TEST(SackReceiver, MostRecentBlockReportedFirst) {
  ReceiverFixture f;
  TcpReceiver rx{f.sim, f.local, f.peer.id(), kFlow, sack_config()};
  rx.handle_packet(f.data(0));
  rx.handle_packet(f.data(2));  // block A
  rx.handle_packet(f.data(4));  // block B (most recent)
  f.sim.run();

  const auto& dup = f.ack_log.acks.back();
  ASSERT_EQ(dup.tcp.num_sack, 2);
  EXPECT_EQ(dup.tcp.sack[0], (net::SackBlock{4 * kMss, 5 * kMss}));
  EXPECT_EQ(dup.tcp.sack[1], (net::SackBlock{2 * kMss, 3 * kMss}));
}

TEST(SackReceiver, AdjacentSegmentsMergeIntoOneBlock) {
  ReceiverFixture f;
  TcpReceiver rx{f.sim, f.local, f.peer.id(), kFlow, sack_config()};
  rx.handle_packet(f.data(0));
  rx.handle_packet(f.data(2));
  rx.handle_packet(f.data(3));
  f.sim.run();

  const auto& dup = f.ack_log.acks.back();
  ASSERT_EQ(dup.tcp.num_sack, 1);
  EXPECT_EQ(dup.tcp.sack[0], (net::SackBlock{2 * kMss, 4 * kMss}));
}

TEST(SackReceiver, AtMostThreeBlocks) {
  ReceiverFixture f;
  TcpReceiver rx{f.sim, f.local, f.peer.id(), kFlow, sack_config()};
  rx.handle_packet(f.data(0));
  for (const int seg : {2, 4, 6, 8, 10}) rx.handle_packet(f.data(seg));
  f.sim.run();

  const auto& dup = f.ack_log.acks.back();
  EXPECT_EQ(dup.tcp.num_sack, net::kMaxSackBlocks);
  // Most recent first: 10, 8, 6.
  EXPECT_EQ(dup.tcp.sack[0].start, 10 * kMss);
  EXPECT_EQ(dup.tcp.sack[1].start, 8 * kMss);
  EXPECT_EQ(dup.tcp.sack[2].start, 6 * kMss);
}

TEST(SackReceiver, DisabledProducesNoBlocks) {
  ReceiverFixture f;
  TcpConfig cfg = sack_config();
  cfg.sack_enabled = false;
  TcpReceiver rx{f.sim, f.local, f.peer.id(), kFlow, cfg};
  rx.handle_packet(f.data(0));
  rx.handle_packet(f.data(2));
  f.sim.run();
  EXPECT_EQ(f.ack_log.acks.back().tcp.num_sack, 0);
}

// --- Sender-side scoreboard -------------------------------------------------

struct SenderFixture {
  Simulator sim;
  net::Dumbbell topo{sim, net::DumbbellConfig{.num_senders = 1}};
  TcpSender sender;

  explicit SenderFixture(const TcpConfig& cfg = sack_config())
      : sender{sim, topo.sender(0), topo.receiver(0).id(), kFlow, cfg} {}

  // Delivers a crafted ACK with SACK blocks straight to the sender.
  void ack(std::int64_t cum_ack, std::vector<net::SackBlock> blocks = {}) {
    net::Packet p = net::make_ack_packet(topo.receiver(0).id(), topo.sender(0).id(), kFlow,
                                         cum_ack, false);
    for (const auto& b : blocks) {
      ASSERT_LT(p.tcp.num_sack, net::kMaxSackBlocks);
      p.tcp.sack[p.tcp.num_sack++] = b;
    }
    sender.handle_packet(std::move(p));
  }
};

TEST(SackSender, ScoreboardTracksSackedBytes) {
  SenderFixture f;
  f.sender.add_app_data(20 * kMss);  // IW10: 10 segments go out
  f.sim.run_until(10_us);
  ASSERT_GE(f.sender.snd_nxt(), 10 * kMss);

  f.ack(0, {{2 * kMss, 3 * kMss}});
  EXPECT_EQ(f.sender.sacked_bytes(), kMss);
  // Pipe excludes the sacked segment.
  EXPECT_EQ(f.sender.pipe_bytes(), f.sender.in_flight_bytes() - kMss);

  // Overlapping and adjacent blocks merge without double counting.
  f.ack(0, {{2 * kMss, 4 * kMss}});
  f.ack(0, {{4 * kMss, 5 * kMss}});
  EXPECT_EQ(f.sender.sacked_bytes(), 3 * kMss);
}

TEST(SackSender, CumulativeAckDropsCoveredRanges) {
  SenderFixture f;
  f.sender.add_app_data(20 * kMss);
  f.sim.run_until(10_us);

  f.ack(0, {{2 * kMss, 5 * kMss}});
  EXPECT_EQ(f.sender.sacked_bytes(), 3 * kMss);
  f.ack(3 * kMss);  // cumulative ACK past part of the sacked range
  EXPECT_EQ(f.sender.sacked_bytes(), 2 * kMss);
  f.ack(10 * kMss);
  EXPECT_EQ(f.sender.sacked_bytes(), 0);
}

TEST(SackSender, BlocksOutsideFlightAreIgnored) {
  SenderFixture f;
  f.sender.add_app_data(20 * kMss);
  f.sim.run_until(10_us);
  f.ack(5 * kMss);  // advance snd_una
  // Entirely below snd_una and entirely above snd_nxt: both ignored.
  f.ack(5 * kMss, {{0, 5 * kMss}});
  f.ack(5 * kMss, {{100 * kMss, 200 * kMss}});
  EXPECT_EQ(f.sender.sacked_bytes(), 0);
  // A block straddling snd_una is clamped to the in-flight part.
  f.ack(5 * kMss, {{4 * kMss, 7 * kMss}});
  EXPECT_EQ(f.sender.sacked_bytes(), 2 * kMss);
}

TEST(SackSender, SackEvidenceTriggersEarlyRecovery) {
  SenderFixture f;
  f.sender.add_app_data(20 * kMss);
  f.sim.run_until(10_us);

  // One duplicate ACK whose SACK already covers 3 segments: RFC 6675
  // enters recovery without waiting for three dupacks.
  f.ack(0, {{kMss, 4 * kMss}});
  EXPECT_TRUE(f.sender.in_recovery());
  EXPECT_EQ(f.sender.stats().fast_retransmits, 1);
  EXPECT_GE(f.sender.stats().retransmitted_packets, 1);
}

TEST(SackSender, RetransmitsTheHoleNotTheSackedData) {
  SenderFixture f;
  f.sender.add_app_data(20 * kMss);
  f.sim.run_until(10_us);

  // Segment 0 arrived; segment 1 lost; 2-4 sacked.
  f.ack(kMss, {{2 * kMss, 5 * kMss}});
  f.ack(kMss, {{2 * kMss, 5 * kMss}});
  f.ack(kMss, {{2 * kMss, 5 * kMss}});
  ASSERT_TRUE(f.sender.in_recovery());

  // The retransmission must target the hole [1*kMss, 2*kMss): capture it
  // by draining the network and checking what arrives at the receiver...
  // simpler: the retransmit accounting says exactly one segment was
  // retransmitted, and the hole cursor moved past it, so a partial ACK at
  // 2*kMss (the hole filled) must NOT produce another retransmission of
  // sacked data.
  const std::int64_t retx_after_entry = f.sender.stats().retransmitted_packets;
  EXPECT_GE(retx_after_entry, 1);
  f.ack(5 * kMss);  // hole filled: cumulative ACK jumps past sacked range
  EXPECT_EQ(f.sender.stats().retransmitted_packets, retx_after_entry);
}

TEST(SackSender, TimeoutClearsScoreboard) {
  TcpConfig cfg = sack_config();
  cfg.rtt.min_rto = 1_ms;
  cfg.rtt.initial_rto = 1_ms;
  SenderFixture f{cfg};
  f.sender.add_app_data(20 * kMss);
  f.sim.run_until(10_us);
  f.ack(0, {{2 * kMss, 5 * kMss}});
  EXPECT_GT(f.sender.sacked_bytes(), 0);

  f.sim.run_until(5_ms);  // RTO fires (ACKs never arrive)
  EXPECT_GT(f.sender.stats().timeouts, 0);
  EXPECT_EQ(f.sender.sacked_bytes(), 0);
}

// --- Limited transmit --------------------------------------------------------

TEST(LimitedTransmit, FirstTwoDupacksReleaseNewSegments) {
  TcpConfig cfg = sack_config();
  cfg.sack_enabled = false;  // isolate RFC 3042 from SACK early entry
  cfg.limited_transmit = true;
  SenderFixture f{cfg};
  f.sender.add_app_data(40 * kMss);
  f.sim.run_until(10_us);
  const std::int64_t nxt_before = f.sender.snd_nxt();

  f.ack(0);  // dupack 1
  f.ack(0);  // dupack 2
  EXPECT_EQ(f.sender.stats().limited_transmits, 2);
  EXPECT_EQ(f.sender.snd_nxt(), nxt_before + 2 * kMss);
  EXPECT_FALSE(f.sender.in_recovery());

  f.ack(0);  // dupack 3: recovery, no further limited transmit
  EXPECT_TRUE(f.sender.in_recovery());
  EXPECT_EQ(f.sender.stats().limited_transmits, 2);
}

TEST(LimitedTransmit, DisabledSendsNothingOnDupacks) {
  TcpConfig cfg = sack_config();
  cfg.sack_enabled = false;
  cfg.limited_transmit = false;
  SenderFixture f{cfg};
  f.sender.add_app_data(40 * kMss);
  f.sim.run_until(10_us);
  const std::int64_t nxt_before = f.sender.snd_nxt();
  f.ack(0);
  f.ack(0);
  EXPECT_EQ(f.sender.stats().limited_transmits, 0);
  EXPECT_EQ(f.sender.snd_nxt(), nxt_before);
}

// --- End-to-end: SACK avoids timeouts that NewReno needs ---------------------

TEST(SackEndToEnd, SackRecoversBurstLossWithoutRto) {
  // A shallow queue drops a clump of segments from one window. With SACK,
  // recovery fills all holes via fast retransmission; without it, NewReno
  // retransmits one hole per RTT and may run out of dupacks, falling back
  // to the RTO.
  auto run = [](bool sack) {
    Simulator sim;
    net::DumbbellConfig topo_cfg;
    topo_cfg.num_senders = 1;
    topo_cfg.switch_queue.capacity_packets = 12;
    topo_cfg.switch_queue.ecn_threshold_packets = 0;
    topo_cfg.receiver_link = sim::Bandwidth::gigabits_per_second(1);
    net::Dumbbell topo{sim, topo_cfg};
    TcpConfig cfg;
    cfg.cc = CcAlgorithm::kReno;
    cfg.sack_enabled = sack;
    cfg.rtt.min_rto = 50_ms;
    cfg.rtt.initial_rto = 50_ms;
    TcpConnection conn{sim, topo.sender(0), topo.receiver(0), 1, cfg};
    conn.sender().add_app_data(3'000'000);
    sim.run_until(30_s);
    EXPECT_TRUE(conn.sender().all_acked());
    return std::pair{conn.sender().stats().timeouts,
                     conn.sender().stats().sack_blocks_processed};
  };

  const auto [timeouts_sack, blocks_sack] = run(true);
  const auto [timeouts_newreno, blocks_newreno] = run(false);
  EXPECT_GT(blocks_sack, 0);
  EXPECT_EQ(blocks_newreno, 0);
  EXPECT_LE(timeouts_sack, timeouts_newreno);
}

}  // namespace
}  // namespace incast::tcp
