// Tests for the HPCC-style INT-based CCA and the INT telemetry plumbing.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "net/topology.h"
#include "sim/random.h"
#include "tcp/cc/hpcc.h"
#include "tcp/tcp_connection.h"

namespace incast::tcp {
namespace {

using sim::Time;
using namespace incast::sim::literals;

constexpr std::int64_t kMss = 1460;

// --- INT plumbing -------------------------------------------------------------

TEST(IntTelemetry, SwitchesStampIntEnabledDataPackets) {
  sim::Simulator sim;
  net::Dumbbell topo{sim, net::DumbbellConfig{.num_senders = 1}};

  class Tap final : public net::IngressTap {
   public:
    void on_ingress(const net::Packet& p, Time) override {
      if (p.is_data()) stacks.push_back(p.int_stack);
    }
    std::vector<net::IntStack> stacks;
  };
  Tap tap;
  topo.receiver(0).add_ingress_tap(&tap);

  TcpConfig cfg;
  cfg.cc = CcAlgorithm::kDctcp;
  cfg.int_telemetry = true;
  TcpConnection conn{sim, topo.sender(0), topo.receiver(0), 1, cfg};
  conn.sender().add_app_data(10 * kMss);
  sim.run();

  ASSERT_FALSE(tap.stacks.empty());
  for (const auto& stack : tap.stacks) {
    EXPECT_TRUE(stack.enabled);
    // Sender ToR egress (uplink) + receiver ToR egress (downlink) = 2 hops
    // (host NICs do not stamp).
    ASSERT_EQ(stack.num_hops, 2);
    EXPECT_EQ(stack.hops[0].link_bps, 100'000'000'000);  // inter-ToR uplink
    EXPECT_EQ(stack.hops[1].link_bps, 10'000'000'000);   // receiver downlink
    EXPECT_GE(stack.hops[1].qlen_bytes, 0);
    EXPECT_GT(stack.hops[1].tx_bytes, 0);
  }
}

TEST(IntTelemetry, DisabledFlowsAreNotStamped) {
  sim::Simulator sim;
  net::Dumbbell topo{sim, net::DumbbellConfig{.num_senders = 1}};

  class Tap final : public net::IngressTap {
   public:
    void on_ingress(const net::Packet& p, Time) override {
      if (p.is_data() && p.int_stack.num_hops > 0) ++stamped;
    }
    int stamped{0};
  };
  Tap tap;
  topo.receiver(0).add_ingress_tap(&tap);

  TcpConfig cfg;  // int_telemetry defaults to false
  TcpConnection conn{sim, topo.sender(0), topo.receiver(0), 1, cfg};
  conn.sender().add_app_data(10 * kMss);
  sim.run();
  EXPECT_EQ(tap.stamped, 0);
}

TEST(IntTelemetry, ReceiverEchoesIntOnAcks) {
  sim::Simulator sim;
  net::Dumbbell topo{sim, net::DumbbellConfig{.num_senders = 1}};

  class AckTap final : public net::IngressTap {
   public:
    void on_ingress(const net::Packet& p, Time) override {
      if (p.tcp.has_ack && !p.is_data() && p.int_stack.num_hops > 0) ++echoed;
    }
    int echoed{0};
  };
  AckTap tap;
  topo.sender(0).add_ingress_tap(&tap);  // watch ACKs arriving at the sender

  TcpConfig cfg;
  cfg.cc = CcAlgorithm::kDctcp;
  cfg.int_telemetry = true;
  TcpConnection conn{sim, topo.sender(0), topo.receiver(0), 1, cfg};
  conn.sender().add_app_data(10 * kMss);
  sim.run();
  EXPECT_GT(tap.echoed, 5);
}

// --- HpccCc unit behaviour ----------------------------------------------------

HpccConfig config() {
  HpccConfig c;
  c.mss_bytes = kMss;
  c.initial_window_segments = 10;
  c.base_rtt = 30_us;
  return c;
}

net::IntHopRecord hop(std::int64_t qlen, std::int64_t tx, std::int64_t t_ns,
                      std::int64_t bps = 10'000'000'000) {
  return {.qlen_bytes = qlen, .tx_bytes = tx, .link_bps = bps, .timestamp_ns = t_ns};
}

AckEvent ack_with_int(const net::IntHopRecord& rec, Time now,
                      bool app_limited = false) {
  AckEvent ev;
  ev.newly_acked_bytes = kMss;
  ev.now = now;
  ev.app_limited = app_limited;
  ev.int_stack.enabled = true;
  EXPECT_TRUE(ev.int_stack.push(rec));
  return ev;
}

TEST(HpccCc, IgnoresAcksWithoutInt) {
  HpccCc cc{config()};
  const std::int64_t before = cc.cwnd_bytes();
  AckEvent ev;
  ev.newly_acked_bytes = kMss;
  ev.now = 1_ms;
  cc.on_ack(ev);
  EXPECT_EQ(cc.cwnd_bytes(), before);
  EXPECT_EQ(cc.name(), "hpcc");
}

TEST(HpccCc, FirstSamplePrimesNoReaction) {
  HpccCc cc{config()};
  const std::int64_t before = cc.cwnd_bytes();
  // First INT record of a hop: no tx-rate estimate yet, so no update.
  cc.on_ack(ack_with_int(hop(0, 1'000'000, 1'000'000), 1_ms));
  EXPECT_EQ(cc.cwnd_bytes(), before);
}

TEST(HpccCc, HighUtilizationShrinksWindow) {
  HpccCc cc{config()};
  const std::int64_t before = cc.cwnd_bytes();
  // Two samples 30 us apart, link running at ~line rate with a deep queue:
  // U >> eta.
  cc.on_ack(ack_with_int(hop(200'000, 1'000'000, 1'000'000), 1_ms));
  cc.on_ack(ack_with_int(hop(200'000, 1'112'500, 1'030'000), Time::milliseconds(1.03)));
  EXPECT_LT(cc.cwnd_bytes(), before / 2);
  EXPECT_GT(cc.last_utilization(), 2.0);
}

TEST(HpccCc, LowUtilizationGrowsWindowMultiplicatively) {
  HpccCc cc{config()};
  // Idle-ish link: tiny queue, ~half line rate.
  cc.on_ack(ack_with_int(hop(0, 1'000'000, 1'000'000), 1_ms));
  const std::int64_t before = cc.cwnd_bytes();
  cc.on_ack(ack_with_int(hop(0, 1'018'750, 1'030'000), Time::milliseconds(1.03)));
  // U ~ 0.5 -> target ~ Wc * 0.95/0.5 ~ 1.9x, clamped by max_cwnd.
  EXPECT_GT(cc.cwnd_bytes(), before);
  EXPECT_NEAR(cc.last_utilization(), 0.5, 0.05);
}

TEST(HpccCc, WindowClampedAtMax) {
  HpccConfig cfg = config();
  cfg.max_cwnd_segments = 16.0;
  HpccCc cc{cfg};
  cc.on_ack(ack_with_int(hop(0, 1'000'000, 1'000'000), 1_ms));
  for (int i = 0; i < 20; ++i) {
    // Persistently near-idle: multiplicative growth would explode.
    cc.on_ack(ack_with_int(hop(0, 1'000'000 + i * 100, 1'030'000 + i * 30'000),
                           1_ms + Time::microseconds(30.0 * (i + 1))));
  }
  EXPECT_LE(cc.cwnd_bytes(), 16 * kMss);
}

TEST(HpccCc, AppLimitedAcksNeverGrowTheWindow) {
  HpccCc cc{config()};
  cc.on_ack(ack_with_int(hop(0, 1'000'000, 1'000'000), 1_ms));
  const std::int64_t before = cc.cwnd_bytes();
  // Near-idle link but the flow has nothing to send: growth suppressed.
  cc.on_ack(ack_with_int(hop(0, 1'000'200, 1'030'000), Time::milliseconds(1.03),
                         /*app_limited=*/true));
  EXPECT_LE(cc.cwnd_bytes(), before);
}

TEST(HpccCc, WindowCanFallBelowOneMss) {
  HpccCc cc{config()};
  Time now = 1_ms;
  std::int64_t tx = 1'000'000;
  cc.on_ack(ack_with_int(hop(500'000, tx, now.ns()), now));
  for (int i = 0; i < 30; ++i) {
    now += 30_us;
    tx += 37'500;  // line rate
    cc.on_ack(ack_with_int(hop(500'000, tx, now.ns()), now));
  }
  EXPECT_LT(cc.cwnd_bytes(), kMss);
  EXPECT_GE(cc.cwnd_bytes(), static_cast<std::int64_t>(0.01 * kMss) - 1);
}

// --- End to end ----------------------------------------------------------------

TEST(HpccEndToEnd, SingleFlowNearLineRateWithEmptyQueue) {
  sim::Simulator sim;
  net::Dumbbell topo{sim, net::DumbbellConfig{.num_senders = 1}};
  TcpConfig cfg;
  cfg.cc = CcAlgorithm::kHpcc;
  cfg.int_telemetry = true;
  TcpConnection conn{sim, topo.sender(0), topo.receiver(0), 1, cfg};
  const std::int64_t total = 20'000'000;
  conn.sender().add_app_data(total);
  Time done;
  conn.sender().set_on_all_acked([&] { done = sim.now(); });
  sim.run_until(10_s);

  ASSERT_TRUE(conn.sender().all_acked());
  const double gbps = static_cast<double>(total) * 8.0 / done.sec() * 1e-9;
  // HPCC's headline: ~95% utilization with a near-empty queue.
  EXPECT_GT(gbps, 8.5);
  EXPECT_LE(topo.bottleneck_queue().take_watermark(), 30);
  EXPECT_EQ(topo.bottleneck_queue().stats().dropped_packets, 0);
}

TEST(HpccEndToEnd, ModestIncastConvergesWithoutLoss) {
  // 50 flows, sustained: HPCC shares the link losslessly with a bounded
  // queue (far below what DCTCP's 1-MSS floor would pin).
  sim::Simulator sim;
  const int flows = 50;
  net::DumbbellConfig topo_cfg;
  topo_cfg.num_senders = flows;
  net::Dumbbell topo{sim, topo_cfg};
  TcpConfig cfg;
  cfg.cc = CcAlgorithm::kHpcc;
  cfg.int_telemetry = true;
  cfg.rtt.min_rto = 200_ms;

  std::vector<std::unique_ptr<TcpConnection>> conns;
  sim::Rng rng{9};
  for (int i = 0; i < flows; ++i) {
    conns.push_back(std::make_unique<TcpConnection>(sim, topo.sender(i), topo.receiver(0),
                                                    static_cast<net::FlowId>(i + 1), cfg));
    TcpSender* s = &conns.back()->sender();
    sim.schedule_in(rng.uniform_time(Time::zero(), 2_ms),
                    [s] { s->add_app_data(30'000'000); });
  }
  sim.run_until(100_ms);
  const auto converged_drops = topo.bottleneck_queue().stats().dropped_packets;
  (void)topo.bottleneck_queue().take_watermark();
  sim.run_until(200_ms);

  EXPECT_EQ(topo.bottleneck_queue().stats().dropped_packets, converged_drops);
  EXPECT_LT(topo.bottleneck_queue().take_watermark(), 400);
}

TEST(HpccEndToEnd, FactoryRequiresNothingSpecial) {
  CcConfig cc_config;
  const auto cc = make_congestion_control(CcAlgorithm::kHpcc, cc_config);
  EXPECT_EQ(cc->name(), "hpcc");
  EXPECT_STREQ(to_string(CcAlgorithm::kHpcc), "hpcc");
}

}  // namespace
}  // namespace incast::tcp
