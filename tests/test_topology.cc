// Tests for the Dumbbell topology builder.
#include "net/topology.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>
#include <vector>

namespace incast::net {
namespace {

using sim::Simulator;
using sim::Time;
using namespace incast::sim::literals;

class RecordingHandler final : public PacketHandler {
 public:
  void handle_packet(Packet p) override { packets.push_back(std::move(p)); }
  std::vector<Packet> packets;
};

TEST(Dumbbell, BuildsRequestedShape) {
  Simulator sim;
  DumbbellConfig cfg;
  cfg.num_senders = 4;
  cfg.num_receivers = 2;
  Dumbbell d{sim, cfg};
  EXPECT_EQ(d.num_senders(), 4);
  EXPECT_EQ(d.num_receivers(), 2);
  // ToR_s: 4 host ports + 1 uplink; ToR_r: 1 uplink + 2 downlinks.
  EXPECT_EQ(d.sender_tor().num_ports(), 5u);
  EXPECT_EQ(d.receiver_tor().num_ports(), 3u);
}

TEST(Dumbbell, SenderToReceiverDelivery) {
  Simulator sim;
  DumbbellConfig cfg;
  cfg.num_senders = 3;
  Dumbbell d{sim, cfg};

  RecordingHandler sink;
  d.receiver(0).register_flow(5, &sink);
  d.sender(2).send(make_data_packet(d.sender(2).id(), d.receiver(0).id(), 5, 0, 1460));
  sim.run();
  ASSERT_EQ(sink.packets.size(), 1u);
  EXPECT_EQ(d.sender_tor().unrouted_packets(), 0);
  EXPECT_EQ(d.receiver_tor().unrouted_packets(), 0);
}

TEST(Dumbbell, ReverseDelivery) {
  Simulator sim;
  DumbbellConfig cfg;
  cfg.num_senders = 2;
  Dumbbell d{sim, cfg};

  RecordingHandler sink;
  d.sender(1).register_flow(9, &sink);
  d.receiver(0).send(make_ack_packet(d.receiver(0).id(), d.sender(1).id(), 9, 0, false));
  sim.run();
  EXPECT_EQ(sink.packets.size(), 1u);
}

TEST(Dumbbell, BaseRttIsAboutThirtyMicroseconds) {
  Simulator sim;
  Dumbbell d{sim, DumbbellConfig{.num_senders = 1}};
  // Paper Section 4: "The round-trip time (RTT) is 30 us".
  const Time rtt = d.base_rtt(1500);
  EXPECT_GT(rtt, 28_us);
  EXPECT_LT(rtt, 32_us);
}

TEST(Dumbbell, MeasuredRttMatchesComputedBaseRtt) {
  Simulator sim;
  DumbbellConfig cfg;
  cfg.num_senders = 1;
  Dumbbell d{sim, cfg};

  // Echo a data packet off the receiver and time the round trip.
  class Echo final : public PacketHandler {
   public:
    Echo(Host& host, NodeId peer) : host_{host}, peer_{peer} {}
    void handle_packet(Packet p) override {
      host_.send(make_ack_packet(host_.id(), peer_, p.tcp.flow_id, 0, false));
    }

   private:
    Host& host_;
    NodeId peer_;
  };
  class Timer final : public PacketHandler {
   public:
    explicit Timer(Simulator& sim) : sim_{sim} {}
    void handle_packet(Packet) override { at = sim_.now(); }
    Time at{};

   private:
    Simulator& sim_;
  };

  Echo echo{d.receiver(0), d.sender(0).id()};
  Timer timer{sim};
  d.receiver(0).register_flow(1, &echo);
  d.sender(0).register_flow(1, &timer);

  d.sender(0).send(make_data_packet(d.sender(0).id(), d.receiver(0).id(), 1, 0, 1460));
  sim.run();

  const Time expected = d.base_rtt(1500);
  EXPECT_EQ(timer.at, expected);
}

TEST(Dumbbell, BottleneckQueueIsReceiverDownlink) {
  Simulator sim;
  DumbbellConfig cfg;
  cfg.num_senders = 2;
  cfg.switch_queue = {.capacity_packets = 1333, .ecn_threshold_packets = 65};
  Dumbbell d{sim, cfg};
  EXPECT_EQ(d.bottleneck_queue(0).config().capacity_packets, 1333);
  EXPECT_EQ(d.bottleneck_queue(0).config().ecn_threshold_packets, 65);
  EXPECT_TRUE(d.bottleneck_queue(0).empty());
}

TEST(Dumbbell, SharedBufferOnReceiverTorOnly) {
  Simulator sim;
  DumbbellConfig cfg;
  cfg.num_senders = 1;
  cfg.shared_buffer = SharedBufferPool::Config{.total_bytes = 1'000'000, .alpha = 1.0};
  Dumbbell d{sim, cfg};
  EXPECT_NE(d.receiver_tor().shared_buffer(), nullptr);
  EXPECT_EQ(d.sender_tor().shared_buffer(), nullptr);
}

TEST(Dumbbell, NamedLinksCoverEveryLink) {
  sim::Simulator sim;
  DumbbellConfig cfg;
  cfg.num_senders = 2;
  cfg.num_receivers = 1;
  Dumbbell d{sim, cfg};

  // 2 sender links + core + 1 receiver link, both directions each.
  EXPECT_EQ(d.link_names().size(), 8u);
  // The named core link is the same port the deprecated accessors expose.
  EXPECT_EQ(&d.link("tor_s->tor_r"), &d.core_link_tx());
  EXPECT_EQ(&d.link("tor_r->tor_s"), &d.core_link_rx());
  EXPECT_NE(d.find_link("sender0->tor_s"), nullptr);
  EXPECT_NE(d.find_link("tor_r->receiver0"), nullptr);
  EXPECT_EQ(d.find_link("bogus"), nullptr);
  EXPECT_THROW(d.link("bogus"), std::out_of_range);
}

TEST(Dumbbell, NodeIdsAreDistinct) {
  Simulator sim;
  DumbbellConfig cfg;
  cfg.num_senders = 3;
  cfg.num_receivers = 2;
  Dumbbell d{sim, cfg};
  std::vector<NodeId> ids;
  for (int i = 0; i < 3; ++i) ids.push_back(d.sender(i).id());
  for (int i = 0; i < 2; ++i) ids.push_back(d.receiver(i).id());
  ids.push_back(d.sender_tor().id());
  ids.push_back(d.receiver_tor().id());
  std::sort(ids.begin(), ids.end());
  EXPECT_EQ(std::adjacent_find(ids.begin(), ids.end()), ids.end());
}

}  // namespace
}  // namespace incast::net
