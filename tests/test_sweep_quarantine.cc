// Tests for SweepRunner fault isolation: quarantine, retries, cancellation,
// and the determinism of healthy results when one sweep point fails —
// exercised at jobs 1, 4, and 16 (suite name contains "Sweep" so the TSan
// CI leg picks it up).
#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <thread>
#include <vector>

#include "core/fleet_experiment.h"
#include "sim/auditor.h"
#include "sim/sweep.h"
#include "workload/service_profile.h"

namespace incast::sim {
namespace {

using namespace incast::sim::literals;

SweepRunner::Policy quarantine_policy(int max_attempts = 1) {
  SweepRunner::Policy p;
  p.fail_fast = false;
  p.max_attempts = max_attempts;
  p.seed_of = [](std::size_t i) { return derive_task_seed(42, i); };
  return p;
}

TEST(SweepQuarantine, FailingTaskIsQuarantinedOthersComplete) {
  for (const int jobs : {1, 4, 16}) {
    SweepRunner runner{jobs};
    runner.set_policy(quarantine_policy());
    const auto results = runner.run<int>(
        20, [](std::size_t index, SweepRunner::TaskStats&) -> int {
          if (index == 7) throw std::runtime_error{"boom"};
          return static_cast<int>(index) * 10;
        });
    const auto& stats = runner.last_run();
    ASSERT_EQ(stats.failures.size(), 1u) << "jobs=" << jobs;
    EXPECT_EQ(stats.failures[0].index, 7u);
    EXPECT_EQ(stats.failures[0].category, FailureCategory::kException);
    EXPECT_EQ(stats.failures[0].message, "boom");
    EXPECT_EQ(stats.failures[0].seed, derive_task_seed(42, 7));
    EXPECT_TRUE(stats.failed(7));
    for (std::size_t i = 0; i < 20; ++i) {
      if (i == 7) continue;
      EXPECT_FALSE(stats.failed(i));
      EXPECT_EQ(results[i], static_cast<int>(i) * 10) << "jobs=" << jobs;
    }
  }
}

TEST(SweepQuarantine, FailFastStillRethrows) {
  SweepRunner runner{4};
  // Default policy: historical fail-fast behavior.
  EXPECT_THROW(runner.run<int>(8,
                               [](std::size_t index, SweepRunner::TaskStats&) -> int {
                                 if (index == 3) throw std::runtime_error{"fatal"};
                                 return 0;
                               }),
               std::runtime_error);
}

TEST(SweepQuarantine, RetriesTransientFailuresBeforeQuarantine) {
  // One task fails on its first attempt only; with max_attempts=2 the sweep
  // ends clean but records the retry.
  for (const int jobs : {1, 4}) {
    std::atomic<int> tries{0};
    SweepRunner runner{jobs};
    runner.set_policy(quarantine_policy(2));
    const auto results = runner.run<int>(
        8, [&tries](std::size_t index, SweepRunner::TaskStats&) -> int {
          if (index == 2 && tries.fetch_add(1) == 0) {
            throw std::runtime_error{"transient"};
          }
          return 1;
        });
    const auto& stats = runner.last_run();
    EXPECT_TRUE(stats.failures.empty()) << "jobs=" << jobs;
    EXPECT_EQ(stats.retries, 1u);
    EXPECT_EQ(stats.tasks[2].attempts, 2);
    EXPECT_EQ(results[2], 1);
  }
}

TEST(SweepQuarantine, DeterministicFailureExhaustsAttempts) {
  SweepRunner runner{4};
  runner.set_policy(quarantine_policy(3));
  runner.run<int>(8, [](std::size_t index, SweepRunner::TaskStats&) -> int {
    if (index == 5) throw std::runtime_error{"always"};
    return 0;
  });
  const auto& stats = runner.last_run();
  ASSERT_EQ(stats.failures.size(), 1u);
  EXPECT_EQ(stats.failures[0].attempts, 3);
  EXPECT_EQ(stats.retries, 2u);
}

TEST(SweepQuarantine, ClassifiesFailureTaxonomy) {
  SweepRunner runner{1};
  runner.set_policy(quarantine_policy());
  runner.run<int>(4, [](std::size_t index, SweepRunner::TaskStats&) -> int {
    switch (index) {
      case 0: throw AuditFailure{"conservation", "ledger imbalance"};
      case 1: throw BudgetExceeded{"too many events"};
      case 2: throw RunCancelled{};
      default: throw 42;  // not even a std::exception
    }
  });
  const auto& stats = runner.last_run();
  ASSERT_EQ(stats.failures.size(), 4u);
  EXPECT_EQ(stats.failures[0].category, FailureCategory::kAudit);
  EXPECT_EQ(stats.failures[1].category, FailureCategory::kBudget);
  EXPECT_EQ(stats.failures[2].category, FailureCategory::kCancelled);
  EXPECT_EQ(stats.failures[3].category, FailureCategory::kException);
  EXPECT_EQ(stats.failures[3].message, "unknown exception");
}

TEST(SweepQuarantine, CancelledTasksAreNeverRetried) {
  SweepRunner runner{1};
  runner.set_policy(quarantine_policy(5));
  runner.run<int>(2, [](std::size_t index, SweepRunner::TaskStats&) -> int {
    if (index == 0) throw RunCancelled{};
    return 0;
  });
  const auto& stats = runner.last_run();
  ASSERT_EQ(stats.failures.size(), 1u);
  EXPECT_EQ(stats.failures[0].attempts, 1);
  EXPECT_EQ(stats.retries, 0u);
}

TEST(SweepQuarantine, CancellationFlagStopsPickingUpWork) {
  for (const int jobs : {1, 4}) {
    std::atomic<bool> cancel{false};
    SweepRunner runner{jobs};
    auto policy = quarantine_policy();
    policy.cancel = &cancel;
    runner.set_policy(policy);
    std::atomic<int> ran{0};
    runner.run<int>(64, [&](std::size_t index, SweepRunner::TaskStats&) -> int {
      ran.fetch_add(1);
      if (index == 0) {
        cancel.store(true);
      } else {
        // Hold the worker until cancellation is visible: otherwise all 64
        // trivial tasks can drain before the flag set by task 0 propagates,
        // and the not-run assertion below becomes a race. At most `jobs`
        // tasks are in flight when the flag flips, so the rest stay unrun.
        while (!cancel.load()) std::this_thread::yield();
      }
      return 0;
    });
    const auto& stats = runner.last_run();
    EXPECT_GT(stats.tasks_not_run, 0u) << "jobs=" << jobs;
    EXPECT_LT(ran.load(), 64) << "jobs=" << jobs;
    EXPECT_EQ(static_cast<std::size_t>(ran.load()) + stats.tasks_not_run, 64u)
        << "jobs=" << jobs;
  }
}

TEST(SweepQuarantine, OnFailureCallbackSeesEachQuarantine) {
  std::vector<std::size_t> seen;
  SweepRunner runner{4};
  auto policy = quarantine_policy();
  policy.on_failure = [&seen](const TaskFailure& f) { seen.push_back(f.index); };
  runner.set_policy(policy);
  runner.run<int>(16, [](std::size_t index, SweepRunner::TaskStats&) -> int {
    if (index % 5 == 0) throw std::runtime_error{"x"};
    return 0;
  });
  EXPECT_EQ(seen.size(), 4u);  // 0, 5, 10, 15 (order unspecified)
}

// --- End-to-end: one poisoned fleet cell, healthy results identical at any
// --- job count (the acceptance bar for fault isolation).

core::FleetConfig small_fleet(int jobs) {
  core::FleetConfig cfg;
  cfg.profile = workload::service_by_name("messaging");
  cfg.profile.max_flows = 40;
  cfg.profile.body_median_flows = 20.0;
  cfg.num_hosts = 3;
  cfg.num_snapshots = 2;
  cfg.trace_duration = 40_ms;
  cfg.jobs = jobs;
  return cfg;
}

TEST(SweepQuarantine, FleetPoisonedCellDoesNotPerturbHealthyCells) {
  // Reference run: no failures, sequential.
  const auto reference = core::FleetExperiment{small_fleet(1)}.run_all();

  for (const int jobs : {1, 4, 16}) {
    auto cfg = small_fleet(jobs);
    cfg.fail_cell_for_test = 4;
    cfg.sweep.fail_fast = false;  // quarantine instead of aborting the sweep
    core::FleetExperiment exp{cfg};

    const auto results = exp.run_all();
    const auto& sweep = exp.last_sweep();
    ASSERT_EQ(sweep.failures.size(), 1u) << "jobs=" << jobs;
    EXPECT_EQ(sweep.failures[0].index, 4u);
    EXPECT_EQ(sweep.failures[0].category, FailureCategory::kException);
    EXPECT_NE(sweep.failures[0].seed, 0u);

    for (std::size_t i = 0; i < results.size(); ++i) {
      if (i == 4) continue;
      EXPECT_EQ(results[i].events_processed, reference[i].events_processed)
          << "jobs=" << jobs << " cell=" << i;
      EXPECT_EQ(results[i].queue_drops, reference[i].queue_drops);
      EXPECT_EQ(results[i].summary.bursts.size(), reference[i].summary.bursts.size());
    }
  }
}

}  // namespace
}  // namespace incast::sim
