// Determinism contract for the collateral-damage experiment: the whole
// (mode x degree) grid runs on a SweepRunner, every point is an independent
// simulation, and the CSV artifact must be byte-identical at any --jobs.
//
// The suite name contains "Sweep" so the TSan CI leg (ctest -R 'Sweep')
// races the grid across a real worker pool.
#include <gtest/gtest.h>

#include <string>

#include "core/collateral_experiment.h"

namespace incast {
namespace {

core::CollateralConfig small_grid() {
  core::CollateralConfig cfg;
  // All four queue modes at a small fan-in: fast enough for CI, large
  // enough that every mechanism (pauses, trims, NACKs, credits) fires.
  cfg.degrees = {8};
  cfg.num_bursts = 2;
  cfg.burst_duration = sim::Time::milliseconds(3);
  cfg.inter_burst_gap = sim::Time::milliseconds(2);
  // A shallow trim queue so even a degree-8 burst actually trims.
  cfg.trim_queue_capacity_packets = 100;
  cfg.max_sim_time = sim::Time::seconds(5);
  cfg.audit_mode = sim::AuditMode::kStrict;
  cfg.seed = 11;
  return cfg;
}

TEST(CollateralSweepDeterminism, CsvIsByteIdenticalAcrossJobCounts) {
  core::CollateralConfig cfg = small_grid();
  cfg.jobs = 1;
  const core::CollateralReport sequential = core::run_collateral_experiment(cfg);
  const std::string baseline = core::collateral_csv(sequential);
  ASSERT_EQ(sequential.points.size(), 4u);
  // A vacuously empty run would make the identity check meaningless.
  for (const auto& p : sequential.points) {
    EXPECT_GT(p.victim_delivered_bytes, 0) << core::to_string(p.mode);
  }

  for (const int jobs : {4, 16}) {
    cfg.jobs = jobs;
    const std::string csv = core::collateral_csv(core::run_collateral_experiment(cfg));
    EXPECT_EQ(baseline, csv) << "jobs=" << jobs;
  }
}

TEST(CollateralSweepDeterminism, EveryModeRunsCleanUnderTheStrictAuditor) {
  const core::CollateralReport report = core::run_collateral_experiment(small_grid());
  ASSERT_EQ(report.points.size(), 4u);
  for (const auto& p : report.points) {
    EXPECT_EQ(p.audit_violations, 0u) << core::to_string(p.mode);
  }
  EXPECT_TRUE(report.sweep.failures.empty());
}

TEST(CollateralSweepDeterminism, EachModeExercisesItsMechanism) {
  const core::CollateralReport report = core::run_collateral_experiment(small_grid());
  ASSERT_EQ(report.points.size(), 4u);
  for (const auto& p : report.points) {
    switch (p.mode) {
      case core::QueueMode::kDropTail:
      case core::QueueMode::kCredit:
        EXPECT_EQ(p.pfc_pause_frames, 0) << core::to_string(p.mode);
        EXPECT_EQ(p.trimmed_packets, 0) << core::to_string(p.mode);
        break;
      case core::QueueMode::kPfc:
        // Lossless: backpressure instead of loss.
        EXPECT_GT(p.pfc_pause_frames, 0);
        EXPECT_EQ(p.queue_drops, 0);
        EXPECT_EQ(p.pfc_overflow_drops, 0);
        break;
      case core::QueueMode::kTrim:
        EXPECT_GT(p.trimmed_packets, 0);
        EXPECT_GT(p.incast_nacks + p.victim_nacks, 0);
        break;
    }
  }
}

}  // namespace
}  // namespace incast
