// Tests for DCTCP congestion control: alpha estimation and proportional
// decrease (RFC 8257 / Alizadeh et al.).
#include <gtest/gtest.h>

#include <cmath>

#include "tcp/cc/dctcp.h"

namespace incast::tcp {
namespace {

using namespace incast::sim::literals;

constexpr std::int64_t kMss = 1460;

CcConfig config(double g = 1.0 / 16.0, double alpha0 = 1.0) {
  CcConfig c;
  c.mss_bytes = kMss;
  c.initial_window_segments = 10;
  c.dctcp_gain = g;
  c.dctcp_initial_alpha = alpha0;
  return c;
}

AckEvent ack(std::int64_t acked, bool ece, std::int64_t snd_una, std::int64_t snd_nxt) {
  AckEvent ev;
  ev.newly_acked_bytes = acked;
  ev.ece = ece;
  ev.snd_una = snd_una;
  ev.snd_nxt = snd_nxt;
  ev.now = 1_ms;
  return ev;
}

// Reference model of the alpha recurrence, mirroring the documented
// windowing rule: a window closes when snd_una reaches the snd_nxt recorded
// at the previous close (initially the stream origin).
struct AlphaRef {
  double alpha;
  double g;
  std::int64_t acked{0};
  std::int64_t marked{0};
  std::int64_t window_end{0};

  void on_ack(std::int64_t bytes, bool ece, std::int64_t una, std::int64_t nxt) {
    acked += bytes;
    if (ece) marked += bytes;
    if (una >= window_end) {
      if (acked > 0) {
        alpha = (1.0 - g) * alpha +
                g * static_cast<double>(marked) / static_cast<double>(acked);
      }
      acked = marked = 0;
      window_end = nxt;
    }
  }
};

// Feeds `segments` ACKs, the first `marked` of them with ECE. The sender is
// modelled as always having one more window outstanding.
void feed_window(DctcpCc& cc, AlphaRef* ref, int segments, int marked, std::int64_t& una) {
  for (int i = 0; i < segments; ++i) {
    una += kMss;
    const std::int64_t nxt = una + segments * kMss;
    cc.on_ack(ack(kMss, i < marked, una, nxt));
    if (ref != nullptr) ref->on_ack(kMss, i < marked, una, nxt);
  }
}

TEST(DctcpCc, InitialAlphaFromConfig) {
  DctcpCc cc{config(1.0 / 16.0, 1.0)};
  EXPECT_DOUBLE_EQ(cc.alpha(), 1.0);
  EXPECT_EQ(cc.name(), "dctcp");
}

TEST(DctcpCc, AlphaDecaysMonotonicallyWithoutMarks) {
  DctcpCc cc{config()};
  std::int64_t una = 0;
  double prev = cc.alpha();
  for (int w = 0; w < 40; ++w) {
    feed_window(cc, nullptr, 10, 0, una);
    EXPECT_LE(cc.alpha(), prev);
    prev = cc.alpha();
  }
  EXPECT_LT(cc.alpha(), 0.1);  // decayed by (1-g) per window
}

TEST(DctcpCc, AlphaMatchesReferenceRecurrence) {
  DctcpCc cc{config(1.0 / 16.0, 1.0)};
  AlphaRef ref{1.0, 1.0 / 16.0};
  std::int64_t una = 0;
  // A varied marking pattern across many windows.
  for (int w = 0; w < 30; ++w) {
    feed_window(cc, &ref, 10, w % 11, una);
    ASSERT_NEAR(cc.alpha(), ref.alpha, 1e-12) << "window " << w;
  }
}

TEST(DctcpCc, AlphaConvergesToMarkingFraction) {
  DctcpCc cc{config(/*g=*/0.25, /*alpha0=*/0.0)};
  std::int64_t una = 0;
  // 40% of bytes marked, many windows: alpha -> ~0.4.
  for (int w = 0; w < 80; ++w) feed_window(cc, nullptr, 10, 4, una);
  EXPECT_NEAR(cc.alpha(), 0.4, 0.05);
}

TEST(DctcpCc, FullMarkingDrivesAlphaToOne) {
  DctcpCc cc{config(1.0 / 16.0, 0.0)};
  std::int64_t una = 0;
  for (int w = 0; w < 200; ++w) feed_window(cc, nullptr, 10, 10, una);
  EXPECT_NEAR(cc.alpha(), 1.0, 0.01);
}

TEST(DctcpCc, ProportionalDecreaseUsesAlpha) {
  // With alpha = 1 the reduction is the full Reno halving; with small
  // alpha it is gentle — DCTCP's defining behaviour.
  DctcpCc gentle{config(1.0 / 16.0, /*alpha0=*/0.2)};
  const std::int64_t before = gentle.cwnd_bytes();
  gentle.on_ack(ack(kMss, true, kMss, 20 * kMss));
  // One window closes first (alpha' = 0.2*(15/16) + (1/16)*1 = 0.25),
  // then cwnd *= (1 - alpha'/2).
  const double alpha1 = 0.2 * (15.0 / 16.0) + 1.0 / 16.0;
  EXPECT_EQ(gentle.cwnd_bytes(),
            static_cast<std::int64_t>(static_cast<double>(before) * (1.0 - alpha1 / 2.0)));

  DctcpCc harsh{config(1.0 / 16.0, /*alpha0=*/1.0)};
  const std::int64_t b2 = harsh.cwnd_bytes();
  harsh.on_ack(ack(kMss, true, kMss, 20 * kMss));
  EXPECT_EQ(b2, 10 * kMss);
  EXPECT_EQ(harsh.cwnd_bytes(), b2 / 2);
}

TEST(DctcpCc, AtMostOneDecreasePerWindow) {
  DctcpCc cc{config(1.0 / 16.0, 1.0)};
  cc.on_ack(ack(kMss, true, kMss, 10 * kMss));
  const std::int64_t after_first = cc.cwnd_bytes();
  // More ECE inside the same window: no further decrease.
  cc.on_ack(ack(kMss, true, 2 * kMss, 10 * kMss));
  cc.on_ack(ack(kMss, true, 3 * kMss, 10 * kMss));
  EXPECT_GE(cc.cwnd_bytes(), after_first);
  // Next window: decrease allowed again.
  cc.on_ack(ack(kMss, true, 11 * kMss, 20 * kMss));
  EXPECT_LT(cc.cwnd_bytes(), after_first);
}

TEST(DctcpCc, CwndFloorsAtOneMss) {
  DctcpCc cc{config(1.0 / 16.0, 1.0)};
  std::int64_t una = 0;
  // Hammer with marked windows; cwnd must never go below 1 MSS — the
  // "degenerate point" of Section 4.1.2.
  for (int w = 0; w < 50; ++w) {
    una += 10 * kMss;
    cc.on_ack(ack(kMss, true, una, una + 10 * kMss));
    ASSERT_GE(cc.cwnd_bytes(), kMss);
  }
  EXPECT_EQ(cc.cwnd_bytes(), kMss);
}

TEST(DctcpCc, GrowsLikeRenoWithoutEce) {
  DctcpCc cc{config()};
  const std::int64_t before = cc.cwnd_bytes();
  cc.on_ack(ack(kMss, false, kMss, 20 * kMss));
  EXPECT_EQ(cc.cwnd_bytes(), before + kMss);  // slow start
}

TEST(DctcpCc, LossFallsBackToRenoHalving) {
  DctcpCc cc{config()};
  cc.on_loss(10 * kMss);
  EXPECT_EQ(cc.ssthresh_bytes(), 5 * kMss);
}

TEST(DctcpCc, TimeoutCollapsesToOneMss) {
  DctcpCc cc{config()};
  cc.on_timeout();
  EXPECT_EQ(cc.cwnd_bytes(), kMss);
}

// Property sweep over the gain g: the implementation matches the reference
// recurrence for every gain.
class DctcpGainSweep : public ::testing::TestWithParam<double> {};

TEST_P(DctcpGainSweep, AlphaTracksReferenceForAnyGain) {
  const double g = GetParam();
  DctcpCc cc{config(g, /*alpha0=*/0.5)};
  AlphaRef ref{0.5, g};
  std::int64_t una = 0;
  for (int w = 0; w < 20; ++w) {
    feed_window(cc, &ref, 8, (w * 3) % 9, una);
    ASSERT_NEAR(cc.alpha(), ref.alpha, 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(Gains, DctcpGainSweep,
                         ::testing::Values(1.0 / 256, 1.0 / 64, 1.0 / 16, 1.0 / 4, 1.0));

}  // namespace
}  // namespace incast::tcp
