// Property-style integration tests: invariants that must hold across
// randomized scenarios (seeds, queue sizes, CCAs, loss regimes).
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "net/topology.h"
#include "sim/random.h"
#include "tcp/tcp_connection.h"

namespace incast::tcp {
namespace {

using sim::Simulator;
using sim::Time;
using namespace incast::sim::literals;

struct Scenario {
  std::uint64_t seed;
  int flows;
  std::int64_t queue_packets;
  std::int64_t ecn_threshold;
  CcAlgorithm cc;
};

std::string scenario_name(const ::testing::TestParamInfo<Scenario>& info) {
  const Scenario& s = info.param;
  std::string cc{to_string(s.cc)};
  // gtest parameter names must be alphanumeric.
  std::erase(cc, '-');
  return cc + "_f" + std::to_string(s.flows) + "_q" + std::to_string(s.queue_packets) +
         "_s" + std::to_string(s.seed);
}

class TcpInvariants : public ::testing::TestWithParam<Scenario> {};

TEST_P(TcpInvariants, EveryByteDeliveredExactlyOnceDespiteLoss) {
  const Scenario& sc = GetParam();

  Simulator sim;
  net::DumbbellConfig topo_cfg;
  topo_cfg.num_senders = sc.flows;
  topo_cfg.switch_queue.capacity_packets = sc.queue_packets;
  topo_cfg.switch_queue.ecn_threshold_packets = sc.ecn_threshold;
  net::Dumbbell topo{sim, topo_cfg};

  TcpConfig cfg;
  cfg.cc = sc.cc;
  cfg.rtt.min_rto = 5_ms;
  cfg.rtt.initial_rto = 5_ms;

  sim::Rng rng{sc.seed};
  std::vector<std::unique_ptr<TcpConnection>> conns;
  std::vector<std::int64_t> demands;
  for (int i = 0; i < sc.flows; ++i) {
    conns.push_back(std::make_unique<TcpConnection>(sim, topo.sender(i), topo.receiver(0),
                                                    static_cast<net::FlowId>(i + 1), cfg));
    // Odd-sized demands supplied in 1-3 randomly timed application writes.
    const std::int64_t demand = rng.uniform_int(10'000, 400'000);
    demands.push_back(demand);
    const int writes = static_cast<int>(rng.uniform_int(1, 3));
    std::int64_t remaining = demand;
    for (int w = 0; w < writes; ++w) {
      const std::int64_t chunk = w + 1 == writes ? remaining : remaining / 2;
      remaining -= chunk;
      TcpSender* s = &conns.back()->sender();
      sim.schedule_in(rng.uniform_time(Time::zero(), 2_ms),
                      [s, chunk] { s->add_app_data(chunk); });
    }
  }

  // In-run invariants, polled throughout the transfer.
  bool invariants_ok = true;
  std::function<void()> poll = [&] {
    for (const auto& c : conns) {
      const auto& s = c->sender();
      if (s.snd_una() > s.snd_nxt() || s.pipe_bytes() < 0 ||
          s.in_flight_bytes() < 0 || s.sacked_bytes() < 0 ||
          s.congestion_control().cwnd_bytes() < 1) {
        invariants_ok = false;
      }
      // The receiver can never hold bytes that were never transmitted.
      // (rcv_nxt may exceed snd_nxt after an RTO's go-back-N, because the
      // receiver keeps pre-RTO out-of-order data.)
      if (c->receiver().rcv_nxt() > s.max_sent()) invariants_ok = false;
    }
    if (sim.events_pending() > 0) sim.schedule_in(500_us, poll);
  };
  sim.schedule_in(500_us, poll);

  sim.run_until(60_s);

  EXPECT_TRUE(invariants_ok);
  for (int i = 0; i < sc.flows; ++i) {
    const auto& c = *conns[static_cast<std::size_t>(i)];
    // Exactly-once, in-order delivery of the full demand.
    ASSERT_EQ(c.receiver().rcv_nxt(), demands[static_cast<std::size_t>(i)])
        << "flow " << i;
    EXPECT_TRUE(c.sender().all_acked());
    // Conservation: what was sent is at least the demand (retransmissions
    // may add to it, never subtract).
    EXPECT_GE(c.sender().stats().data_bytes_sent, demands[static_cast<std::size_t>(i)]);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Scenarios, TcpInvariants,
    ::testing::Values(
        // Clean network, various CCAs.
        Scenario{1, 4, 1333, 65, CcAlgorithm::kDctcp},
        Scenario{2, 4, 1333, 0, CcAlgorithm::kCubic},
        Scenario{3, 4, 1333, 65, CcAlgorithm::kRenoEcn},
        Scenario{4, 2, 1333, 65, CcAlgorithm::kSwift},
        // Brutal queues: heavy loss, recovery via every mechanism.
        Scenario{5, 4, 8, 0, CcAlgorithm::kReno},
        Scenario{6, 4, 8, 0, CcAlgorithm::kDctcp},
        Scenario{7, 8, 3, 0, CcAlgorithm::kReno},
        Scenario{8, 8, 3, 0, CcAlgorithm::kCubic},
        Scenario{9, 16, 20, 5, CcAlgorithm::kDctcp},
        Scenario{10, 2, 1, 0, CcAlgorithm::kReno},
        // Same chaos, different seeds (different loss patterns).
        Scenario{11, 8, 5, 0, CcAlgorithm::kDctcp},
        Scenario{12, 8, 5, 0, CcAlgorithm::kDctcp},
        Scenario{13, 8, 5, 0, CcAlgorithm::kSwift}),
    scenario_name);

class DeterminismProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DeterminismProperty, IdenticalSeedsProduceIdenticalRuns) {
  const std::uint64_t seed = GetParam();

  auto run = [&]() {
    Simulator sim;
    net::DumbbellConfig topo_cfg;
    topo_cfg.num_senders = 6;
    topo_cfg.switch_queue.capacity_packets = 30;
    net::Dumbbell topo{sim, topo_cfg};
    TcpConfig cfg;
    cfg.cc = CcAlgorithm::kDctcp;
    cfg.rtt.min_rto = 5_ms;
    sim::Rng rng{seed};
    std::vector<std::unique_ptr<TcpConnection>> conns;
    for (int i = 0; i < 6; ++i) {
      conns.push_back(std::make_unique<TcpConnection>(
          sim, topo.sender(i), topo.receiver(0), static_cast<net::FlowId>(i + 1), cfg));
      TcpSender* s = &conns.back()->sender();
      sim.schedule_in(rng.uniform_time(Time::zero(), 1_ms),
                      [s] { s->add_app_data(200'000); });
    }
    sim.run_until(30_s);
    // Fingerprint the run: final clock, event count, per-flow stats.
    std::vector<std::int64_t> fp{sim.now().ns(),
                                 static_cast<std::int64_t>(sim.events_processed()),
                                 topo.bottleneck_queue().stats().ecn_marked_packets,
                                 topo.bottleneck_queue().stats().dropped_packets};
    for (const auto& c : conns) {
      fp.push_back(c->sender().stats().data_packets_sent);
      fp.push_back(c->sender().stats().retransmitted_packets);
      fp.push_back(c->sender().stats().timeouts);
    }
    return fp;
  };

  EXPECT_EQ(run(), run());
}

INSTANTIATE_TEST_SUITE_P(Seeds, DeterminismProperty, ::testing::Values(1u, 42u, 777u));

}  // namespace
}  // namespace incast::tcp
