// Tests for sim::SweepRunner and the sweep determinism contract: any
// --jobs value must produce byte-identical experiment output.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "core/fleet_experiment.h"
#include "core/resilience_experiment.h"
#include "sim/sweep.h"
#include "telemetry/trace_io.h"
#include "workload/service_profile.h"

namespace incast {
namespace {

using namespace incast::sim::literals;

// ---- seed derivation -------------------------------------------------------

TEST(SweepSeedDerivation, DistinctTasksNeverShareASeed) {
  std::set<std::uint64_t> seeds;
  for (std::uint64_t base : {0ULL, 1ULL, 42ULL, 0xFFFFFFFFFFFFFFFFULL}) {
    seeds.clear();
    for (std::uint64_t index = 0; index < 10'000; ++index) {
      seeds.insert(sim::derive_task_seed(base, index));
    }
    EXPECT_EQ(seeds.size(), 10'000u) << "collision under base " << base;
  }
}

TEST(SweepSeedDerivation, DependsOnlyOnBaseAndIndex) {
  EXPECT_EQ(sim::derive_task_seed(42, 7), sim::derive_task_seed(42, 7));
  EXPECT_NE(sim::derive_task_seed(42, 7), sim::derive_task_seed(43, 7));
  EXPECT_NE(sim::derive_task_seed(42, 7), sim::derive_task_seed(42, 8));
}

TEST(SweepSeedDerivation, AdjacentIndicesAreWellMixed) {
  // Adjacent grid cells must not share bit structure: over 64 consecutive
  // indices every output bit should flip at least once.
  std::uint64_t ored_diff = 0;
  std::uint64_t prev = sim::derive_task_seed(1, 0);
  for (std::uint64_t index = 1; index < 64; ++index) {
    const std::uint64_t next = sim::derive_task_seed(1, index);
    ored_diff |= prev ^ next;
    prev = next;
  }
  EXPECT_EQ(ored_diff, ~0ULL);
}

// ---- SweepRunner mechanics -------------------------------------------------

TEST(SweepRunner, ResultsLandAtTheirTaskIndex) {
  sim::SweepRunner runner{4};
  const auto results = runner.run<int>(
      100, [](std::size_t i, sim::SweepRunner::TaskStats&) {
        return static_cast<int>(i) * 3;
      });
  ASSERT_EQ(results.size(), 100u);
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i], static_cast<int>(i) * 3);
  }
}

TEST(SweepRunner, RunsEveryTaskExactlyOnce) {
  std::atomic<int> calls{0};
  sim::SweepRunner runner{8};
  (void)runner.run<int>(257, [&](std::size_t, sim::SweepRunner::TaskStats&) {
    return calls.fetch_add(1);
  });
  EXPECT_EQ(calls.load(), 257);
}

TEST(SweepRunner, DefaultsToHardwareConcurrency) {
  const unsigned hw = std::thread::hardware_concurrency();
  sim::SweepRunner runner{0};
  EXPECT_EQ(runner.jobs(), hw > 0 ? static_cast<int>(hw) : 1);
  EXPECT_EQ(sim::SweepRunner{-3}.jobs(), runner.jobs());
  EXPECT_EQ(sim::SweepRunner{5}.jobs(), 5);
}

TEST(SweepRunner, CollectsPerTaskStats) {
  sim::SweepRunner runner{2};
  (void)runner.run<int>(6, [](std::size_t i, sim::SweepRunner::TaskStats& stats) {
    stats.events = i + 1;
    return 0;
  });
  const auto& stats = runner.last_run();
  EXPECT_EQ(stats.jobs, 2);
  ASSERT_EQ(stats.tasks.size(), 6u);
  EXPECT_EQ(stats.total_events, 1u + 2 + 3 + 4 + 5 + 6);
  for (const auto& task : stats.tasks) {
    EXPECT_GE(task.worker, 0);
    EXPECT_LT(task.worker, 2);
    EXPECT_GE(task.wall_ms, 0.0);
  }
  EXPECT_GT(stats.wall_ms, 0.0);
}

TEST(SweepRunner, EmptySweepIsANoOp) {
  sim::SweepRunner runner{4};
  const auto results = runner.run<int>(
      0, [](std::size_t, sim::SweepRunner::TaskStats&) { return 1; });
  EXPECT_TRUE(results.empty());
  EXPECT_EQ(runner.last_run().total_events, 0u);
}

TEST(SweepRunner, PropagatesTaskExceptions) {
  sim::SweepRunner runner{4};
  EXPECT_THROW(
      (void)runner.run<int>(16,
                            [](std::size_t i, sim::SweepRunner::TaskStats&) {
                              if (i == 11) throw std::runtime_error{"task 11 failed"};
                              return 0;
                            }),
      std::runtime_error);
}

TEST(SweepRunner, MoreJobsThanTasksIsFine) {
  sim::SweepRunner runner{16};
  const auto results = runner.run<int>(
      3, [](std::size_t i, sim::SweepRunner::TaskStats&) { return static_cast<int>(i); });
  EXPECT_EQ(results, (std::vector<int>{0, 1, 2}));
}

// ---- determinism across thread counts --------------------------------------

core::FleetConfig small_fleet_config() {
  core::FleetConfig cfg;
  cfg.profile = workload::service_by_name("messaging");
  cfg.profile.max_flows = 40;
  cfg.profile.body_median_flows = 20.0;
  cfg.profile.bursts_per_second = 80.0;
  cfg.num_hosts = 3;
  cfg.num_snapshots = 2;
  cfg.trace_duration = 100_ms;
  cfg.tcp.cc = tcp::CcAlgorithm::kDctcp;
  cfg.tcp.rtt.min_rto = 200_ms;
  return cfg;
}

// Serializes every trace of a fleet sweep to the CSV interchange format —
// the exact bytes `incast_sim fleet --export-csv` would write — plus the
// scalar outcomes, so equality here is equality of everything observable.
std::string fleet_csv_export(int jobs) {
  core::FleetConfig cfg = small_fleet_config();
  cfg.jobs = jobs;
  core::FleetExperiment exp{cfg};
  exp.set_keep_bins(true);
  std::ostringstream out;
  for (const auto& r : exp.run_all()) {
    out << r.host << ',' << r.snapshot << ',' << r.queue_drops << ','
        << r.generated_bursts << ',' << r.events_processed << ','
        << r.summary.bursts.size() << '\n';
    telemetry::write_bins_csv(r.bins, out);
    for (const auto wm : r.queue_watermarks) out << wm << ',';
    out << '\n';
  }
  return out.str();
}

TEST(SweepDeterminism, FleetCsvExportsAreByteIdenticalAcrossJobCounts) {
  const std::string sequential = fleet_csv_export(1);
  EXPECT_EQ(fleet_csv_export(4), sequential);
  EXPECT_EQ(fleet_csv_export(16), sequential);
}

core::ResilienceConfig small_resilience_config() {
  core::ResilienceConfig cfg;
  cfg.base.num_flows = 40;
  cfg.base.burst_duration = 2_ms;
  cfg.base.num_bursts = 3;
  cfg.base.discard_bursts = 1;
  cfg.base.tcp.cc = tcp::CcAlgorithm::kDctcp;
  cfg.drop_rates = {0.0, 1e-3, 5e-2};
  cfg.flap_durations = {5_ms, 40_ms};
  return cfg;
}

TEST(SweepDeterminism, ResilienceModesAndCountersIdenticalAcrossJobCounts) {
  core::ResilienceConfig cfg = small_resilience_config();
  cfg.jobs = 1;
  const auto sequential = core::run_resilience_experiment(cfg);

  for (const int jobs : {4, 16}) {
    cfg.jobs = jobs;
    const auto parallel = core::run_resilience_experiment(cfg);
    ASSERT_EQ(parallel.points.size(), sequential.points.size());
    EXPECT_EQ(parallel.baseline_mode, sequential.baseline_mode);
    EXPECT_EQ(parallel.baseline.events_processed, sequential.baseline.events_processed);
    for (std::size_t i = 0; i < sequential.points.size(); ++i) {
      const auto& s = sequential.points[i];
      const auto& p = parallel.points[i];
      EXPECT_EQ(p.mode, s.mode) << "point " << i << " at jobs " << jobs;
      EXPECT_EQ(p.drop_rate, s.drop_rate);
      EXPECT_EQ(p.flap_duration, s.flap_duration);
      EXPECT_EQ(p.result.events_processed, s.result.events_processed);
      EXPECT_EQ(p.result.timeouts, s.result.timeouts);
      EXPECT_EQ(p.result.injected_drops, s.result.injected_drops);
      EXPECT_DOUBLE_EQ(p.result.avg_bct_ms, s.result.avg_bct_ms);
      EXPECT_DOUBLE_EQ(p.goodput_rel, s.goodput_rel);
    }
  }
}

TEST(SweepDeterminism, FleetSweepStatsCoverEveryTask) {
  core::FleetConfig cfg = small_fleet_config();
  cfg.jobs = 4;
  core::FleetExperiment exp{cfg};
  (void)exp.run_all();
  const auto& sweep = exp.last_sweep();
  EXPECT_EQ(sweep.tasks.size(), 6u);  // 3 hosts x 2 snapshots
  EXPECT_GT(sweep.total_events, 0u);
  for (const auto& task : sweep.tasks) EXPECT_GT(task.events, 0u);
}

}  // namespace
}  // namespace incast
