// Tests for the burst detector (the paper's Section 3.1 definition).
#include "analysis/burst_detector.h"

#include <gtest/gtest.h>

namespace incast::analysis {
namespace {

using sim::Time;
using namespace incast::sim::literals;

constexpr std::int64_t kLineBytesPerMs = 1'250'000;  // 10 Gbps x 1 ms

// Builds a sampler whose bins have the given utilization fractions.
telemetry::Millisampler make_trace(const std::vector<double>& utils,
                                   const std::vector<int>& flows = {}) {
  telemetry::Millisampler s{
      {.bin_duration = 1_ms, .line_rate = sim::Bandwidth::gigabits_per_second(10)}};
  for (std::size_t i = 0; i < utils.size(); ++i) {
    const auto bytes = static_cast<std::int64_t>(utils[i] * kLineBytesPerMs);
    if (bytes <= 0) continue;
    const int nflows = i < flows.size() ? flows[i] : 1;
    const std::int64_t per_flow = std::max<std::int64_t>(bytes / std::max(nflows, 1), 1);
    for (int f = 0; f < nflows; ++f) {
      net::Packet p = net::make_data_packet(0, 1, static_cast<net::FlowId>(f + 1), 0,
                                            per_flow - net::kHeaderBytes);
      s.on_ingress(p, Time::milliseconds(static_cast<double>(i) + 0.1));
    }
  }
  s.finalize(Time::milliseconds(static_cast<double>(utils.size())));
  return s;
}

TEST(BurstDetector, FindsSingleBurst) {
  const auto s = make_trace({0.1, 0.9, 0.95, 0.2});
  const auto bursts = BurstDetector{}.detect(s);
  ASSERT_EQ(bursts.size(), 1u);
  EXPECT_EQ(bursts[0].first_bin, 1u);
  EXPECT_EQ(bursts[0].num_bins, 2u);
}

TEST(BurstDetector, ThresholdIsStrictlyGreaterThanHalf) {
  // Exactly 50% does not qualify; just above does.
  const auto s = make_trace({0.5, 0.51});
  const auto bursts = BurstDetector{}.detect(s);
  ASSERT_EQ(bursts.size(), 1u);
  EXPECT_EQ(bursts[0].first_bin, 1u);
  EXPECT_EQ(bursts[0].num_bins, 1u);
}

TEST(BurstDetector, SeparatesBurstsAcrossQuietBins) {
  const auto s = make_trace({0.9, 0.1, 0.9, 0.9, 0.0, 0.8});
  const auto bursts = BurstDetector{}.detect(s);
  ASSERT_EQ(bursts.size(), 3u);
  EXPECT_EQ(bursts[0].num_bins, 1u);
  EXPECT_EQ(bursts[1].num_bins, 2u);
  EXPECT_EQ(bursts[2].num_bins, 1u);
}

TEST(BurstDetector, BurstTouchingTraceEndIsClosed) {
  const auto s = make_trace({0.1, 0.9, 0.9});
  const auto bursts = BurstDetector{}.detect(s);
  ASSERT_EQ(bursts.size(), 1u);
  EXPECT_EQ(bursts[0].num_bins, 2u);
}

TEST(BurstDetector, EmptyTraceHasNoBursts) {
  const auto s = make_trace({0.0, 0.0, 0.0});
  EXPECT_TRUE(BurstDetector{}.detect(s).empty());
}

TEST(BurstDetector, AggregatesBytesAndFlows) {
  const auto s = make_trace({0.9, 0.9, 0.1}, {30, 50, 2});
  const auto bursts = BurstDetector{}.detect(s);
  ASSERT_EQ(bursts.size(), 1u);
  EXPECT_EQ(bursts[0].max_active_flows, 50);  // peak per-bin count
  EXPECT_GT(bursts[0].bytes, kLineBytesPerMs);
}

TEST(BurstDetector, IncastClassificationUsesFlowThreshold) {
  BurstDetector det{{.utilization_threshold = 0.5, .incast_flow_threshold = 25}};
  Burst small;
  small.max_active_flows = 25;
  Burst large;
  large.max_active_flows = 26;
  EXPECT_FALSE(det.is_incast(small));
  EXPECT_TRUE(det.is_incast(large));
}

TEST(BurstDetector, JoinsQueueWatermarks) {
  const auto s = make_trace({0.9, 0.9, 0.1, 0.9});
  const std::vector<std::int64_t> watermarks{120, 300, 5, 80};
  const auto bursts = BurstDetector{}.detect(s, watermarks);
  ASSERT_EQ(bursts.size(), 2u);
  EXPECT_EQ(bursts[0].peak_queue_packets, 300);
  EXPECT_EQ(bursts[1].peak_queue_packets, 80);
}

TEST(BurstDetector, MissingWatermarksReportedAsMinusOne) {
  const auto s = make_trace({0.9});
  const auto bursts = BurstDetector{}.detect(s);
  ASSERT_EQ(bursts.size(), 1u);
  EXPECT_EQ(bursts[0].peak_queue_packets, -1);
}

TEST(BurstDetector, MarkedAndRetxFractions) {
  telemetry::Millisampler s{
      {.bin_duration = 1_ms, .line_rate = sim::Bandwidth::gigabits_per_second(10)}};
  // One hot bin: 1 MB total, 0.4 MB CE-marked, 0.1 MB retransmitted.
  auto add = [&](std::int64_t bytes, bool ce, bool retx) {
    net::Packet p = net::make_data_packet(0, 1, 1, 0, bytes - net::kHeaderBytes);
    if (ce) p.ecn = net::Ecn::kCe;
    p.is_retransmit = retx;
    s.on_ingress(p, 100_us);
  };
  add(500'000, false, false);
  add(400'000, true, false);
  add(100'000, false, true);
  s.finalize(1_ms);

  const auto bursts = BurstDetector{}.detect(s);
  ASSERT_EQ(bursts.size(), 1u);
  EXPECT_NEAR(bursts[0].marked_fraction(), 0.4, 0.01);
  EXPECT_NEAR(bursts[0].retx_fraction(), 0.1, 0.01);
}

TEST(BurstDetector, CustomUtilizationThreshold) {
  const auto s = make_trace({0.3, 0.4, 0.6});
  BurstDetector det{{.utilization_threshold = 0.25, .incast_flow_threshold = 25}};
  const auto bursts = det.detect(s);
  ASSERT_EQ(bursts.size(), 1u);
  EXPECT_EQ(bursts[0].num_bins, 3u);
}

TEST(BurstDetector, TraceSummaryFrequency) {
  TraceBurstSummary summary;
  summary.trace_seconds = 2.0;
  summary.bursts.resize(100);
  EXPECT_DOUBLE_EQ(summary.bursts_per_second(), 50.0);
  TraceBurstSummary empty;
  EXPECT_DOUBLE_EQ(empty.bursts_per_second(), 0.0);
}

}  // namespace
}  // namespace incast::analysis
