// The scaling experiment's two contracts.
//
// ScalingFlatRouting (unit): the flat next-hop/ECMP tables must reproduce
// the documented seeded symmetric flow hash exactly. The test recomputes
// the published contract — key = mix64(mix64(seed ^ sorted_pair) ^ flow),
// member = key % group_size, group in spine order — from scratch and checks
// Switch::route_port against it for every cross-rack (src, dst, flow)
// triple on the PR 2 fat-tree, so a refactor of the routing storage can
// never silently move a flow to a different path.
//
// ScalingSweepDeterminism (experiment): the incast-degree ladder runs every
// point as an independent simulation on a SweepRunner and the CSV artifact
// must be byte-identical at any --jobs — pinned here both by cross-jobs
// comparison and by a committed FNV-1a fingerprint, so a platform- or
// scheduling-dependent divergence fails even when it is self-consistent
// within the run. The suite name contains "Sweep" so the TSan CI leg
// (ctest -R 'Sweep') races the ladder across a real worker pool.
#include <gtest/gtest.h>

#include <cstdint>
#include <ios>
#include <string>

#include "core/scaling_experiment.h"
#include "fabric/fat_tree.h"
#include "sim/simulator.h"

namespace incast {
namespace {

// Independent recomputation of the ECMP hash contract (net/switch.cc's
// mix64 — the SplitMix64 finalizer). Deliberately not shared with the
// implementation: the test must break if the shipped hash drifts.
constexpr std::uint64_t golden_mix64(std::uint64_t x) noexcept {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

constexpr std::uint64_t golden_flow_key(std::uint64_t seed, net::NodeId src,
                                        net::NodeId dst, net::FlowId flow) noexcept {
  const net::NodeId lo = src < dst ? src : dst;
  const net::NodeId hi = src < dst ? dst : src;
  const std::uint64_t pair =
      (static_cast<std::uint64_t>(hi) << 32) | static_cast<std::uint64_t>(lo);
  return golden_mix64(golden_mix64(seed ^ pair) ^ flow);
}

// FNV-1a, the repo's standard artifact fingerprint (tests/test_event_kernel.cc).
std::uint64_t fnv1a(const std::string& s) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const unsigned char c : s) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

// The PR 2 smoke fabric: 2 pods x 2 leaves x 8 hosts, two-tier over 2
// spines — the topology the fabric experiment suite has always pinned.
fabric::FatTreeConfig pr2_fabric() {
  fabric::FatTreeConfig cfg;
  cfg.num_pods = 2;
  cfg.leaves_per_pod = 2;
  cfg.hosts_per_leaf = 8;
  cfg.aggs_per_pod = 0;
  cfg.num_spines = 2;
  cfg.ecmp_seed = 42;
  return cfg;
}

TEST(ScalingFlatRouting, ReproducesSeededEcmpHashForEveryCrossRackTriple) {
  sim::Simulator sim;
  fabric::FatTree tree{sim, pr2_fabric()};

  for (int l = 0; l < tree.num_leaves(); ++l) {
    net::Switch& leaf = tree.leaf(l);
    const auto& uplinks = tree.leaf_uplink_port_indices(l);
    ASSERT_EQ(uplinks.size(), 2u);
    for (int src_host = 0; src_host < tree.num_hosts(); ++src_host) {
      if (tree.leaf_of_host(src_host) != l) continue;
      const net::NodeId src = tree.host(src_host).id();
      for (int dst_host = 0; dst_host < tree.num_hosts(); ++dst_host) {
        if (dst_host == src_host) continue;
        const net::NodeId dst = tree.host(dst_host).id();
        for (const net::FlowId flow : {net::FlowId{1}, net::FlowId{7}, net::FlowId{123}}) {
          const auto port = leaf.route_port(src, dst, flow);
          ASSERT_TRUE(port.has_value()) << "leaf " << l << " cannot route host "
                                        << src_host << " -> " << dst_host;
          if (tree.leaf_of_host(dst_host) == l) {
            // Local destination: a single-port route straight down. The
            // downlink must not depend on the flow hash (or source) at all.
            EXPECT_EQ(*port, *leaf.route_port(src, dst, flow ^ 0x5555));
            EXPECT_EQ(*port, *leaf.route_port(src ^ 1, dst, flow));
          } else {
            const std::uint64_t key =
                golden_flow_key(leaf.ecmp_seed(), src, dst, flow);
            const std::size_t member = key % uplinks.size();
            EXPECT_EQ(*port, uplinks[member])
                << "leaf " << l << ", " << src_host << " -> " << dst_host
                << ", flow " << flow;
            // Symmetry: the ACK direction climbs the remote leaf toward the
            // same spine — the same member index of its uplink group.
            const int rl = tree.leaf_of_host(dst_host);
            EXPECT_EQ(tree.leaf(rl).route_port(dst, src, flow),
                      tree.leaf_uplink_port_indices(rl)[member]);
          }
        }
      }
    }
  }
}

TEST(ScalingFlatRouting, ReserveFlowsDoesNotPerturbRouteChoice) {
  sim::Simulator sim1;
  sim::Simulator sim2;
  fabric::FatTree plain{sim1, pr2_fabric()};
  fabric::FatTree reserved{sim2, pr2_fabric()};
  for (net::Switch* sw : reserved.switches()) sw->reserve_flows(4096);

  const net::NodeId src = plain.host(0).id();
  for (int dst_host = 8; dst_host < plain.num_hosts(); ++dst_host) {
    const net::NodeId dst = plain.host(dst_host).id();
    for (net::FlowId flow = 1; flow <= 64; ++flow) {
      EXPECT_EQ(plain.leaf(0).route_port(src, dst, flow),
                reserved.leaf(0).route_port(src, dst, flow))
          << "dst_host " << dst_host << ", flow " << flow;
    }
  }
  EXPECT_GT(reserved.leaf(0).routing_bytes(), plain.leaf(0).routing_bytes());
}

// The small-ladder config every determinism test below shares: PR 2 fabric,
// three degrees, short flows. Any change here moves the committed golden.
core::ScalingConfig small_ladder() {
  core::ScalingConfig cfg;
  cfg.degrees = {1, 2, 8};
  cfg.fabric = pr2_fabric();
  cfg.bytes_per_flow = 27'000;
  cfg.seed = 11;
  return cfg;
}

// Committed fingerprint of scaling_csv(small_ladder()) — regenerate with a
// jobs=1 run and update deliberately when the experiment's math or CSV
// schema changes; an unexplained move is a determinism regression.
// Last move: net::Packet grew the flow-trace stamp fields (flow_traced,
// trace_enqueue_ns, trace_paused_ns), which shifts packet_pool_bytes.
constexpr std::uint64_t kScalingGoldenFnv = 0xee8641e90029d778ULL;

TEST(ScalingSweepDeterminism, CsvIsByteIdenticalAcrossJobCountsAndMatchesGolden) {
  core::ScalingConfig cfg = small_ladder();
  cfg.jobs = 1;
  const core::ScalingReport sequential = core::run_scaling_experiment(cfg);
  const std::string baseline = core::scaling_csv(sequential);
  ASSERT_EQ(sequential.points.size(), 3u);
  EXPECT_EQ(fnv1a(baseline), kScalingGoldenFnv)
      << "scaling CSV fingerprint moved: 0x" << std::hex << fnv1a(baseline)
      << "; csv:\n" << baseline;

  for (const int jobs : {4, 16}) {
    cfg.jobs = jobs;
    const std::string csv = core::scaling_csv(core::run_scaling_experiment(cfg));
    EXPECT_EQ(baseline, csv) << "jobs=" << jobs;
  }
}

TEST(ScalingSweepDeterminism, EveryPointCompletesAndDecomposesItsMemory) {
  const core::ScalingReport report = core::run_scaling_experiment(small_ladder());
  ASSERT_EQ(report.points.size(), 3u);
  for (const core::ScalingPoint& p : report.points) {
    EXPECT_EQ(p.completed_flows, p.degree);
    EXPECT_EQ(p.audit_violations, 0u) << "degree " << p.degree;
    EXPECT_GT(p.fct_ms, 0.0);
    // optimal_ms is the htsim reference (base RTT + full serialization),
    // not a strict lower bound: a pipelined small-degree incast can finish
    // marginally under it, so only pin it positive here.
    EXPECT_GT(p.optimal_ms, 0.0);
    // The decomposition is the gate's input: every component must be live
    // and the per-flow figure their exact sum.
    EXPECT_GT(p.flow_state_bytes, 0u);
    EXPECT_GT(p.packet_pool_bytes, 0u);
    EXPECT_GT(p.routing_bytes, 0u);
    EXPECT_GT(p.event_bytes, 0u);
    EXPECT_EQ(p.bytes_per_flow,
              (p.flow_state_bytes + p.packet_pool_bytes + p.routing_bytes +
               p.event_bytes) /
                  static_cast<std::uint64_t>(p.degree));
  }
  EXPECT_TRUE(report.sweep.failures.empty());
  // Amortization: per-flow footprint at degree 8 must be well under the
  // degree-1 figure — the whole point of the arena/SoA layouts.
  EXPECT_LT(report.points.back().bytes_per_flow, report.points.front().bytes_per_flow);
}

}  // namespace
}  // namespace incast
