// Feature-matrix sweep: every combination of the TCP stack's optional
// mechanisms must deliver every byte exactly once under heavy loss.
//
// The mechanisms interact (SACK changes what dupacks mean, delayed ACKs
// change when they are emitted, limited transmit and TLP both inject
// segments outside the window, pacing changes when segments leave), so the
// product of the flags — not each flag alone — is what needs exercising.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "net/topology.h"
#include "sim/random.h"
#include "tcp/tcp_connection.h"

namespace incast::tcp {
namespace {

using sim::Simulator;
using sim::Time;
using namespace incast::sim::literals;

struct Combo {
  bool sack;
  bool delayed_ack;
  bool limited_transmit;
  bool tlp;
};

std::string combo_name(const ::testing::TestParamInfo<Combo>& info) {
  const Combo& c = info.param;
  std::string out;
  out += c.sack ? "Sack" : "NoSack";
  out += c.delayed_ack ? "DelAck" : "";
  out += c.limited_transmit ? "LimTx" : "";
  out += c.tlp ? "Tlp" : "";
  return out.empty() ? "Plain" : out;
}

class TcpFeatureMatrix : public ::testing::TestWithParam<Combo> {};

TEST_P(TcpFeatureMatrix, ExactDeliveryUnderHeavyLoss) {
  const Combo& combo = GetParam();

  Simulator sim;
  net::DumbbellConfig topo_cfg;
  topo_cfg.num_senders = 6;
  topo_cfg.switch_queue.capacity_packets = 10;  // brutal: constant loss
  topo_cfg.switch_queue.ecn_threshold_packets = 0;
  net::Dumbbell topo{sim, topo_cfg};

  TcpConfig cfg;
  cfg.cc = CcAlgorithm::kReno;
  cfg.sack_enabled = combo.sack;
  cfg.delayed_ack = combo.delayed_ack;
  cfg.limited_transmit = combo.limited_transmit;
  cfg.tail_loss_probe = combo.tlp;
  cfg.min_pto = 1_ms;
  cfg.rtt.min_rto = 5_ms;
  cfg.rtt.initial_rto = 5_ms;

  sim::Rng rng{99};
  std::vector<std::unique_ptr<TcpConnection>> conns;
  std::vector<std::int64_t> demands;
  for (int i = 0; i < 6; ++i) {
    conns.push_back(std::make_unique<TcpConnection>(sim, topo.sender(i), topo.receiver(0),
                                                    static_cast<net::FlowId>(i + 1), cfg));
    const std::int64_t demand = rng.uniform_int(50'000, 300'000);
    demands.push_back(demand);
    TcpSender* s = &conns.back()->sender();
    sim.schedule_in(rng.uniform_time(Time::zero(), 1_ms),
                    [s, demand] { s->add_app_data(demand); });
  }

  sim.run_until(120_s);

  EXPECT_GT(topo.bottleneck_queue().stats().dropped_packets, 0)
      << "scenario failed to generate loss; weaken the queue";
  for (int i = 0; i < 6; ++i) {
    ASSERT_EQ(conns[static_cast<std::size_t>(i)]->receiver().rcv_nxt(),
              demands[static_cast<std::size_t>(i)])
        << "flow " << i;
    EXPECT_TRUE(conns[static_cast<std::size_t>(i)]->sender().all_acked()) << "flow " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(AllCombos, TcpFeatureMatrix,
                         ::testing::Values(Combo{false, false, false, false},
                                           Combo{true, false, false, false},
                                           Combo{false, true, false, false},
                                           Combo{false, false, true, false},
                                           Combo{false, false, false, true},
                                           Combo{true, true, false, false},
                                           Combo{true, false, true, false},
                                           Combo{true, false, false, true},
                                           Combo{false, true, true, false},
                                           Combo{false, true, false, true},
                                           Combo{false, false, true, true},
                                           Combo{true, true, true, false},
                                           Combo{true, true, false, true},
                                           Combo{true, false, true, true},
                                           Combo{false, true, true, true},
                                           Combo{true, true, true, true}),
                         combo_name);

}  // namespace
}  // namespace incast::tcp
