// Tests for the table / CDF report printers.
#include "core/report.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>

namespace incast::core {
namespace {

TEST(Table, RendersAlignedColumns) {
  Table t{{"service", "flows"}};
  t.add_row({"storage", "60"});
  t.add_row({"aggregator", "160"});
  const std::string out = t.render();
  // Header, rule, two rows.
  EXPECT_NE(out.find("service"), std::string::npos);
  EXPECT_NE(out.find("aggregator  160"), std::string::npos);
  EXPECT_NE(out.find("----"), std::string::npos);
  // Four lines.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
}

TEST(Table, ColumnWidthTracksWidestCell) {
  Table t{{"a", "b"}};
  t.add_row({"xxxxxxxxxx", "1"});
  const std::string out = t.render();
  // Header cell "a" must be padded out to the width of "xxxxxxxxxx".
  EXPECT_NE(out.find("a           b"), std::string::npos);
}

TEST(Fmt, FormatsWithRequestedDigits) {
  EXPECT_EQ(fmt(3.14159, 2), "3.14");
  EXPECT_EQ(fmt(3.14159, 0), "3");
  EXPECT_EQ(fmt(10.0, 1), "10.0");
  EXPECT_EQ(fmt(-2.5, 2), "-2.50");
}

TEST(PrintCdf, WritesPercentileRows) {
  analysis::Cdf cdf;
  for (int i = 1; i <= 100; ++i) cdf.add(static_cast<double>(i));

  std::FILE* tmp = std::tmpfile();
  ASSERT_NE(tmp, nullptr);
  print_cdf("test distribution", cdf, {50, 99}, tmp);
  std::rewind(tmp);
  char buffer[4096] = {};
  const std::size_t n = std::fread(buffer, 1, sizeof(buffer) - 1, tmp);
  std::fclose(tmp);
  const std::string out{buffer, n};

  EXPECT_NE(out.find("test distribution (n=100)"), std::string::npos);
  EXPECT_NE(out.find("50"), std::string::npos);
  EXPECT_NE(out.find("99"), std::string::npos);
}

TEST(PrintCdfComparison, OneColumnPerLabel) {
  analysis::Cdf a;
  analysis::Cdf b;
  for (int i = 1; i <= 10; ++i) {
    a.add(static_cast<double>(i));
    b.add(static_cast<double>(i * 100));
  }

  std::FILE* tmp = std::tmpfile();
  ASSERT_NE(tmp, nullptr);
  print_cdf_comparison("figure", {"alpha", "beta"}, {a, b}, {50}, tmp);
  std::rewind(tmp);
  char buffer[4096] = {};
  const std::size_t n = std::fread(buffer, 1, sizeof(buffer) - 1, tmp);
  std::fclose(tmp);
  const std::string out{buffer, n};

  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("beta"), std::string::npos);
  EXPECT_NE(out.find("n: alpha=10 beta=10"), std::string::npos);
}

TEST(PrintHeader, ContainsIdAndCaption) {
  std::FILE* tmp = std::tmpfile();
  ASSERT_NE(tmp, nullptr);
  print_header("Figure 5", "DCTCP operating modes", tmp);
  std::rewind(tmp);
  char buffer[1024] = {};
  const std::size_t n = std::fread(buffer, 1, sizeof(buffer) - 1, tmp);
  std::fclose(tmp);
  const std::string out{buffer, n};
  EXPECT_NE(out.find("Figure 5 — DCTCP operating modes"), std::string::npos);
}

}  // namespace
}  // namespace incast::core
