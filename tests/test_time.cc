// Tests for sim::Time arithmetic and formatting.
#include "sim/time.h"

#include <gtest/gtest.h>

namespace incast::sim {
namespace {

using namespace incast::sim::literals;

TEST(Time, NamedConstructorsAgree) {
  EXPECT_EQ(Time::seconds(1).ns(), 1'000'000'000);
  EXPECT_EQ(Time::milliseconds(1).ns(), 1'000'000);
  EXPECT_EQ(Time::microseconds(1).ns(), 1'000);
  EXPECT_EQ(Time::nanoseconds(1).ns(), 1);
  EXPECT_EQ(Time::seconds(1), Time::milliseconds(1000));
  EXPECT_EQ(Time::milliseconds(0.5), Time::microseconds(500));
}

TEST(Time, Literals) {
  EXPECT_EQ(1_s, Time::seconds(1));
  EXPECT_EQ(15_ms, Time::milliseconds(15));
  EXPECT_EQ(30_us, Time::microseconds(30));
  EXPECT_EQ(7_ns, Time::nanoseconds(7));
}

TEST(Time, DefaultIsZero) {
  const Time t;
  EXPECT_EQ(t, Time::zero());
  EXPECT_EQ(t.ns(), 0);
}

TEST(Time, Comparisons) {
  EXPECT_LT(1_us, 1_ms);
  EXPECT_GT(1_s, 999_ms);
  EXPECT_LE(5_ms, 5_ms);
  EXPECT_NE(1_ns, 2_ns);
}

TEST(Time, Arithmetic) {
  EXPECT_EQ(1_ms + 500_us, Time::microseconds(1500));
  EXPECT_EQ(1_ms - 1_us, Time::microseconds(999));
  EXPECT_EQ((10_us) * 3.0, 30_us);
  EXPECT_EQ(3.0 * (10_us), 30_us);
  EXPECT_EQ((30_us) / 3.0, 10_us);
  EXPECT_DOUBLE_EQ((2_ms) / (1_ms), 2.0);
}

TEST(Time, CompoundAssignment) {
  Time t = 1_ms;
  t += 1_ms;
  EXPECT_EQ(t, 2_ms);
  t -= 500_us;
  EXPECT_EQ(t, Time::microseconds(1500));
}

TEST(Time, UnitAccessors) {
  const Time t = Time::milliseconds(1.5);
  EXPECT_DOUBLE_EQ(t.ms(), 1.5);
  EXPECT_DOUBLE_EQ(t.us(), 1500.0);
  EXPECT_DOUBLE_EQ(t.sec(), 0.0015);
}

TEST(Time, Infinity) {
  EXPECT_TRUE(Time::infinity().is_infinite());
  EXPECT_FALSE(Time::zero().is_infinite());
  EXPECT_GT(Time::infinity(), Time::seconds(1e9));
}

TEST(Time, ToStringSelectsUnit) {
  EXPECT_EQ(Time::zero().to_string(), "0s");
  EXPECT_EQ((2_s).to_string(), "2s");
  EXPECT_EQ((15_ms).to_string(), "15ms");
  EXPECT_EQ((30_us).to_string(), "30us");
  EXPECT_EQ((7_ns).to_string(), "7ns");
  EXPECT_EQ(Time::infinity().to_string(), "inf");
  // Non-round values fall back to the finest unit.
  EXPECT_EQ(Time::nanoseconds(1001).to_string(), "1001ns");
}

TEST(Time, NegativeDurationsBehave) {
  const Time d = 1_us - 2_us;
  EXPECT_LT(d, Time::zero());
  EXPECT_EQ(d + 2_us, 1_us);
}

}  // namespace
}  // namespace incast::sim
