// Tests for the Table 1 service profiles and their samplers.
#include "workload/service_profile.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

namespace incast::workload {
namespace {

TEST(ServiceCatalog, HasTheFiveTable1Services) {
  const auto& catalog = service_catalog();
  ASSERT_EQ(catalog.size(), 5u);
  std::set<std::string> names;
  for (const auto& p : catalog) names.insert(p.name);
  EXPECT_EQ(names, (std::set<std::string>{"storage", "aggregator", "indexer", "messaging",
                                          "video"}));
}

TEST(ServiceCatalog, DescriptionsMatchTable1) {
  EXPECT_EQ(service_by_name("storage").description, "Distributed key-value store");
  EXPECT_EQ(service_by_name("aggregator").description,
            "Collects content to display on a page");
  EXPECT_EQ(service_by_name("indexer").description, "Indexing service for recommendations");
  EXPECT_EQ(service_by_name("messaging").description,
            "Distributed real-time messaging system");
  EXPECT_EQ(service_by_name("video").description, "Video analytics service");
}

TEST(ServiceCatalog, LookupUnknownThrows) {
  EXPECT_THROW(service_by_name("nope"), std::out_of_range);
}

TEST(ServiceProfile, FlowCountsWithinBounds) {
  sim::Rng rng{1};
  for (const auto& p : service_catalog()) {
    for (int i = 0; i < 2000; ++i) {
      const int flows = sample_flow_count(p, rng, false, 1.0);
      ASSERT_GE(flows, p.min_flows) << p.name;
      ASSERT_LE(flows, p.max_flows) << p.name;
    }
  }
}

TEST(ServiceProfile, BodyMedianApproximatelyHonored) {
  const auto& p = service_by_name("video");  // no low mode: clean body
  sim::Rng rng{2};
  std::vector<int> samples;
  for (int i = 0; i < 20001; ++i) samples.push_back(sample_flow_count(p, rng, false, 1.0));
  std::sort(samples.begin(), samples.end());
  EXPECT_NEAR(samples[samples.size() / 2], p.body_median_flows,
              p.body_median_flows * 0.05);
}

TEST(ServiceProfile, AltRegimeShiftsMedian) {
  const auto& p = service_by_name("video");
  ASSERT_GT(p.alt_median_flows, p.body_median_flows);
  sim::Rng rng{3};
  double normal_total = 0;
  double alt_total = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) normal_total += sample_flow_count(p, rng, false, 1.0);
  for (int i = 0; i < n; ++i) alt_total += sample_flow_count(p, rng, true, 1.0);
  EXPECT_GT(alt_total / n, normal_total / n + 20.0);
}

TEST(ServiceProfile, LowFlowModeCreatesBimodalCliff) {
  const auto& p = service_by_name("storage");
  sim::Rng rng{4};
  int low = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (sample_flow_count(p, rng, false, 1.0) <= p.low_mode_max) ++low;
  }
  const double low_fraction = static_cast<double>(low) / n;
  // Figure 2c: between 10% and 45% of storage/aggregator bursts are
  // low-flow. Storage models the 45% cliff.
  EXPECT_NEAR(low_fraction, p.low_mode_probability, 0.05);
}

TEST(ServiceProfile, DurationsAreOneToTwentyMilliseconds) {
  sim::Rng rng{5};
  for (const auto& p : service_catalog()) {
    for (int i = 0; i < 2000; ++i) {
      const sim::Time d = sample_burst_duration(p, rng);
      ASSERT_GE(d, sim::Time::milliseconds(1)) << p.name;
      ASSERT_LE(d, sim::Time::milliseconds(p.max_duration_ms)) << p.name;
      // Whole milliseconds, as measured at 1 ms granularity.
      ASSERT_EQ(d.ns() % 1'000'000, 0) << p.name;
    }
  }
}

TEST(ServiceProfile, MostBurstsAreShort) {
  // Figure 2b: "about 60% of bursts being either 1 or 2 ms" across
  // services. Verify the catalog-wide average is in that regime.
  sim::Rng rng{6};
  int short_bursts = 0;
  int total = 0;
  for (const auto& p : service_catalog()) {
    for (int i = 0; i < 4000; ++i) {
      if (sample_burst_duration(p, rng) <= sim::Time::milliseconds(2)) ++short_bursts;
      ++total;
    }
  }
  const double fraction = static_cast<double>(short_bursts) / total;
  EXPECT_GT(fraction, 0.45);
  EXPECT_LT(fraction, 0.80);
}

TEST(ServiceProfile, UtilizationWithinConfiguredBand) {
  sim::Rng rng{7};
  for (const auto& p : service_catalog()) {
    for (int i = 0; i < 500; ++i) {
      const double u = sample_burst_utilization(p, rng);
      ASSERT_GE(u, p.util_lo);
      ASSERT_LT(u, p.util_hi);
    }
  }
}

TEST(ServiceProfile, HostFactorIsDeterministicAndTight) {
  const auto& p = service_by_name("aggregator");
  for (int h = 0; h < 20; ++h) {
    const double f1 = host_factor(p, h);
    const double f2 = host_factor(p, h);
    EXPECT_DOUBLE_EQ(f1, f2);
    // Hosts of one service look alike (Figure 3b): within ~20% of 1.
    EXPECT_GT(f1, 0.75);
    EXPECT_LT(f1, 1.3);
  }
  // Different hosts are not all identical.
  EXPECT_NE(host_factor(p, 0), host_factor(p, 1));
}

TEST(ServiceProfile, HostFactorVariesByService) {
  EXPECT_NE(host_factor(service_by_name("storage"), 0),
            host_factor(service_by_name("video"), 0));
}

TEST(ServiceProfile, FlowCountP99ReachesHundreds) {
  // Figure 2c: p99 flow counts reach 200-500 for the big services.
  sim::Rng rng{8};
  const auto& video = service_by_name("video");
  std::vector<int> samples;
  for (int i = 0; i < 20000; ++i) samples.push_back(sample_flow_count(video, rng, false, 1.0));
  std::sort(samples.begin(), samples.end());
  const int p99 = samples[samples.size() * 99 / 100];
  EXPECT_GE(p99, 400);
  EXPECT_LE(p99, 500);
}

}  // namespace
}  // namespace incast::workload
