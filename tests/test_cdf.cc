// Tests for the empirical CDF helper.
#include "analysis/cdf.h"

#include <gtest/gtest.h>

namespace incast::analysis {
namespace {

TEST(Cdf, EmptyReturnsZero) {
  Cdf cdf;
  EXPECT_TRUE(cdf.empty());
  EXPECT_DOUBLE_EQ(cdf.percentile(50), 0.0);
  EXPECT_DOUBLE_EQ(cdf.mean(), 0.0);
  EXPECT_DOUBLE_EQ(cdf.fraction_below(1.0), 0.0);
}

TEST(Cdf, SingleSample) {
  Cdf cdf;
  cdf.add(42.0);
  EXPECT_DOUBLE_EQ(cdf.min(), 42.0);
  EXPECT_DOUBLE_EQ(cdf.median(), 42.0);
  EXPECT_DOUBLE_EQ(cdf.max(), 42.0);
  EXPECT_DOUBLE_EQ(cdf.mean(), 42.0);
}

TEST(Cdf, PercentilesOfUniformSequence) {
  Cdf cdf;
  for (int i = 1; i <= 100; ++i) cdf.add(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(cdf.min(), 1.0);
  EXPECT_DOUBLE_EQ(cdf.max(), 100.0);
  EXPECT_NEAR(cdf.median(), 50.5, 0.01);
  EXPECT_NEAR(cdf.percentile(99), 99.01, 0.01);
  EXPECT_NEAR(cdf.percentile(25), 25.75, 0.01);
  EXPECT_DOUBLE_EQ(cdf.mean(), 50.5);
}

TEST(Cdf, InterpolatesBetweenOrderStatistics) {
  Cdf cdf;
  cdf.add(0.0);
  cdf.add(10.0);
  EXPECT_DOUBLE_EQ(cdf.percentile(50), 5.0);
  EXPECT_DOUBLE_EQ(cdf.percentile(25), 2.5);
}

TEST(Cdf, UnsortedInsertionOrderIrrelevant) {
  Cdf a;
  Cdf b;
  const std::vector<double> values{5, 1, 9, 3, 7};
  for (const double v : values) a.add(v);
  for (auto it = values.rbegin(); it != values.rend(); ++it) b.add(*it);
  for (const double p : {0.0, 10.0, 50.0, 90.0, 100.0}) {
    EXPECT_DOUBLE_EQ(a.percentile(p), b.percentile(p));
  }
}

TEST(Cdf, AddAll) {
  Cdf cdf;
  cdf.add_all({1.0, 2.0, 3.0});
  EXPECT_EQ(cdf.count(), 3u);
  EXPECT_DOUBLE_EQ(cdf.mean(), 2.0);
}

TEST(Cdf, FractionBelow) {
  Cdf cdf;
  for (int i = 1; i <= 10; ++i) cdf.add(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(cdf.fraction_below(5.0), 0.5);   // 1..5 of 10
  EXPECT_DOUBLE_EQ(cdf.fraction_below(0.5), 0.0);
  EXPECT_DOUBLE_EQ(cdf.fraction_below(10.0), 1.0);
  EXPECT_DOUBLE_EQ(cdf.fraction_below(100.0), 1.0);
}

TEST(Cdf, OutOfRangePercentilesClamp) {
  Cdf cdf;
  cdf.add(1.0);
  cdf.add(2.0);
  EXPECT_DOUBLE_EQ(cdf.percentile(-5), 1.0);
  EXPECT_DOUBLE_EQ(cdf.percentile(150), 2.0);
}

TEST(Cdf, MixingAddAndQuery) {
  Cdf cdf;
  cdf.add(1.0);
  EXPECT_DOUBLE_EQ(cdf.median(), 1.0);
  cdf.add(3.0);  // re-sorts lazily on next query
  EXPECT_DOUBLE_EQ(cdf.median(), 2.0);
  cdf.add(2.0);
  EXPECT_DOUBLE_EQ(cdf.median(), 2.0);
}

}  // namespace
}  // namespace incast::analysis
