// Tail-autopsy contract: the FlowTracer's exact-conservation interval
// machine, jobs-invariant sampling, the drain split, and the
// fct_breakdown.csv artifact the determinism suite byte-compares.
//
// The experiment-scale suite's name contains "Sweep" so the TSan CI leg
// (ctest -R 'Sweep') races flow-traced grids across a real worker pool.
#include "obs/flow_trace.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/collateral_experiment.h"
#include "core/incast_experiment.h"
#include "net/packet.h"

namespace incast {
namespace {

using BlockReason = obs::FlowTracer::BlockReason;
using UnblockCause = obs::FlowTracer::UnblockCause;

TEST(FlowTrace, DrainSplitsOverHopResidencyAndConservesExactly) {
  obs::FlowTracer tracer{{.seed = 1, .sample_every = 1}};
  // App hands data at t=100; cwnd-limited until the ACK at t=400; then the
  // final window drains until t=1000.
  tracer.on_period_start(7, 100);
  tracer.on_unblocked(7, 100, UnblockCause::kApp);
  tracer.on_blocked(7, 100, BlockReason::kCwndLimited);
  tracer.on_unblocked(7, 400, UnblockCause::kAck);
  tracer.on_blocked(7, 400, BlockReason::kDrain);
  // Hop residency: host queue 50, ToR queue 100, wire 2 x (10 ser + 20 prop).
  tracer.on_hop(7, obs::HopTier::kHost, 50, 0, 10, 20);
  tracer.on_hop(7, obs::HopTier::kTor, 100, 0, 10, 20);
  tracer.on_unblocked(7, 1000, UnblockCause::kAck);
  tracer.on_flow_complete(7, 1000);

  const auto flows = tracer.finalize(1000);
  ASSERT_EQ(flows.size(), 1u);
  const obs::FlowBreakdown& f = flows[0];
  EXPECT_EQ(f.flow, 7u);
  EXPECT_EQ(f.fct_ns, 900);
  EXPECT_EQ(f.cwnd_limited_ns, 300);
  // 600 ns of drain split over weights {ser 20, prop 40, host 50, tor 100}
  // (total 210) by floor division; the 2 ns remainder lands in other.
  EXPECT_EQ(f.serialization_ns, 600 * 20 / 210);
  EXPECT_EQ(f.propagation_ns, 600 * 40 / 210);
  EXPECT_EQ(f.q_host_ns, 600 * 50 / 210);
  EXPECT_EQ(f.q_tor_ns, 600 * 100 / 210);
  EXPECT_EQ(f.q_agg_ns, 0);
  EXPECT_EQ(f.q_spine_ns, 0);
  EXPECT_EQ(f.pfc_pause_ns, 0);
  EXPECT_EQ(f.other_ns, 2);
  EXPECT_EQ(f.component_sum(), f.fct_ns);  // the invariant, exactly
}

TEST(FlowTrace, RecoveryCausesWinOverTheStoredBlockReason) {
  obs::FlowTracer tracer{{.seed = 1, .sample_every = 1}};
  tracer.on_period_start(3, 0);
  tracer.on_unblocked(3, 0, UnblockCause::kApp);
  tracer.on_blocked(3, 0, BlockReason::kCwndLimited);
  // The RTO fires: the whole wait was spent reaching it, regardless of why
  // the sender originally blocked.
  tracer.on_unblocked(3, 5000, UnblockCause::kRto);
  tracer.on_blocked(3, 5000, BlockReason::kDrain);
  tracer.on_unblocked(3, 5600, UnblockCause::kNack);
  tracer.on_blocked(3, 5600, BlockReason::kFastRecovery);
  tracer.on_unblocked(3, 5900, UnblockCause::kAck);
  tracer.on_flow_complete(3, 5900);

  const auto flows = tracer.finalize(5900);
  ASSERT_EQ(flows.size(), 1u);
  const obs::FlowBreakdown& f = flows[0];
  EXPECT_EQ(f.rto_wait_ns, 5000);
  EXPECT_EQ(f.nack_recovery_ns, 600);
  EXPECT_EQ(f.fast_recovery_ns, 300);
  EXPECT_EQ(f.component_sum(), f.fct_ns);
}

TEST(FlowTrace, UnknownTierResidencyLandsInOther) {
  obs::FlowTracer tracer{{.seed = 1, .sample_every = 1}};
  tracer.on_period_start(1, 0);
  tracer.on_unblocked(1, 0, UnblockCause::kApp);
  tracer.on_blocked(1, 0, BlockReason::kDrain);
  tracer.on_hop(1, obs::HopTier::kUnknown, 80, 0, 0, 0);
  tracer.on_unblocked(1, 500, UnblockCause::kAck);
  tracer.on_flow_complete(1, 500);

  const auto flows = tracer.finalize(500);
  ASSERT_EQ(flows.size(), 1u);
  // All residency is unknown-tier: no named component may claim the drain.
  EXPECT_EQ(flows[0].other_ns, 500);
  EXPECT_EQ(flows[0].component_sum(), flows[0].fct_ns);
}

TEST(FlowTrace, IncompleteFlowsAreCountedAndExcluded) {
  obs::FlowTracer tracer{{.seed = 1, .sample_every = 1}};
  tracer.on_period_start(9, 0);
  tracer.on_unblocked(9, 0, UnblockCause::kApp);
  tracer.on_blocked(9, 0, BlockReason::kCwndLimited);
  // max_sim_time cuts the run: the flow never completes.
  EXPECT_TRUE(tracer.finalize(10'000).empty());
  EXPECT_EQ(tracer.incomplete_flows(), 1u);
}

TEST(FlowTrace, SamplingIsAPureHashOfFlowAndSeed) {
  const obs::FlowTracer all{{.seed = 42, .sample_every = 1}};
  const obs::FlowTracer some{{.seed = 42, .sample_every = 4}};
  const obs::FlowTracer same{{.seed = 42, .sample_every = 4}};
  const obs::FlowTracer other_seed{{.seed = 43, .sample_every = 4}};
  int sampled = 0;
  bool seed_matters = false;
  for (std::uint64_t flow = 1; flow <= 4096; ++flow) {
    EXPECT_TRUE(all.sampled(flow));
    EXPECT_EQ(some.sampled(flow), same.sampled(flow));
    if (some.sampled(flow)) ++sampled;
    seed_matters |= some.sampled(flow) != other_seed.sampled(flow);
  }
  // 1-in-4 hash sampling over 4096 flows: comfortably between the extremes.
  EXPECT_GT(sampled, 4096 / 8);
  EXPECT_LT(sampled, 4096 / 2);
  EXPECT_TRUE(seed_matters);
}

TEST(FlowTrace, TailAttributionUsesNearestRank) {
  std::vector<obs::FlowBreakdown> flows;
  for (int i = 1; i <= 100; ++i) {
    obs::FlowBreakdown b;
    b.flow = static_cast<std::uint64_t>(i);
    b.fct_ns = i;
    b.other_ns = i;
    flows.push_back(b);
  }
  const auto rows = obs::tail_attribution(std::move(flows));
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_STREQ(rows[0].pctl, "p50");
  EXPECT_EQ(rows[0].flow.fct_ns, 50);
  EXPECT_STREQ(rows[1].pctl, "p99");
  EXPECT_EQ(rows[1].flow.fct_ns, 99);
  EXPECT_STREQ(rows[2].pctl, "p999");
  EXPECT_EQ(rows[2].flow.fct_ns, 100);
  for (const auto& r : rows) EXPECT_EQ(r.flows, 100);
}

TEST(FlowTrace, CsvFormatIsStable) {
  obs::FlowBreakdown b;
  b.flow = 5;
  b.fct_ns = 100;
  b.q_tor_ns = 60;
  b.cwnd_limited_ns = 40;
  std::string csv = obs::fct_breakdown_csv_header();
  obs::append_fct_breakdown_csv(csv, "burst", 64, {{"p99", 12, b}});
  EXPECT_EQ(csv,
            "mode,degree,pctl,flows,fct_ns,serialization_ns,propagation_ns,"
            "q_host_ns,q_tor_ns,q_agg_ns,q_spine_ns,pfc_pause_ns,cwnd_limited_ns,"
            "rto_wait_ns,fast_recovery_ns,nack_recovery_ns,other_ns\n"
            "burst,64,p99,12,100,0,0,0,60,0,0,0,40,0,0,0,0\n");
}

TEST(FlowTrace, IntStackPushReportsOverflowInsteadOfDroppingSilently) {
  net::IntStack stack;
  for (int i = 0; i < net::kMaxIntHops; ++i) {
    EXPECT_TRUE(stack.push(net::IntHopRecord{.qlen_bytes = i}));
  }
  EXPECT_EQ(stack.num_hops, net::kMaxIntHops);
  // The seventh hop of a six-deep stack: refused, caller counts it.
  EXPECT_FALSE(stack.push(net::IntHopRecord{}));
  EXPECT_EQ(stack.num_hops, net::kMaxIntHops);
  // The deepest recorded hops are intact, not overwritten.
  EXPECT_EQ(stack.hops[net::kMaxIntHops - 1].qlen_bytes, net::kMaxIntHops - 1);
}

// --- Experiment-scale determinism + conservation ---------------------

core::CollateralConfig traced_grid() {
  core::CollateralConfig cfg;
  // The three TCP-transported modes: each exercises a distinct stall class
  // (droptail: cwnd/ECN; pfc: pause; trim: NACK recovery). Credit's incast
  // runs on the rdt transport, which has no sender timeline to trace.
  cfg.modes = {core::QueueMode::kDropTail, core::QueueMode::kPfc, core::QueueMode::kTrim};
  cfg.degrees = {8};
  cfg.num_bursts = 2;
  cfg.burst_duration = sim::Time::milliseconds(3);
  cfg.inter_burst_gap = sim::Time::milliseconds(2);
  cfg.trim_queue_capacity_packets = 100;
  cfg.max_sim_time = sim::Time::seconds(5);
  cfg.audit_mode = sim::AuditMode::kStrict;
  cfg.flow_trace = true;
  cfg.seed = 11;
  return cfg;
}

TEST(FlowTraceSweepDeterminism, FctCsvIsByteIdenticalAcrossJobCounts) {
  core::CollateralConfig cfg = traced_grid();
  cfg.jobs = 1;
  const core::CollateralReport sequential = core::run_collateral_experiment(cfg);
  const std::string baseline = core::collateral_fct_csv(sequential);
  ASSERT_EQ(sequential.points.size(), 3u);
  // A vacuously empty artifact would make the identity check meaningless.
  EXPECT_GT(baseline.size(), obs::fct_breakdown_csv_header().size());
  for (const auto& p : sequential.points) {
    EXPECT_GT(p.traced_flows, 0u) << core::to_string(p.mode);
  }

  for (const int jobs : {4, 16}) {
    cfg.jobs = jobs;
    const std::string csv =
        core::collateral_fct_csv(core::run_collateral_experiment(cfg));
    EXPECT_EQ(baseline, csv) << "jobs=" << jobs;
  }
}

TEST(FlowTraceSweepDeterminism, EveryBreakdownConservesUnderTheStrictAuditor) {
  // Strict audit aborts the point on the first violated invariant, so a
  // clean report proves every sampled flow's components summed to its FCT
  // across all three queue disciplines.
  const core::CollateralReport report = core::run_collateral_experiment(traced_grid());
  ASSERT_EQ(report.points.size(), 3u);
  EXPECT_TRUE(report.sweep.failures.empty());
  for (const auto& p : report.points) {
    EXPECT_EQ(p.audit_violations, 0u) << core::to_string(p.mode);
    ASSERT_FALSE(p.fct_rows.empty()) << core::to_string(p.mode);
    for (const auto& row : p.fct_rows) {
      EXPECT_EQ(row.flow.component_sum(), row.flow.fct_ns)
          << core::to_string(p.mode) << " " << row.pctl;
    }
  }
}

TEST(FlowTraceSweepDeterminism, IncastBreakdownsConserveAndSamplingSubsets) {
  core::IncastExperimentConfig cfg;
  cfg.num_flows = 40;
  cfg.num_bursts = 2;
  cfg.discard_bursts = 0;
  cfg.burst_duration = sim::Time::milliseconds(2);
  cfg.inter_burst_gap = sim::Time::milliseconds(1);
  cfg.audit_mode = sim::AuditMode::kStrict;
  cfg.flow_trace = true;
  cfg.seed = 7;

  const auto all = core::run_incast_experiment(cfg);
  EXPECT_EQ(all.audit_violations, 0u);
  ASSERT_EQ(all.flow_breakdowns.size(), 40u);
  for (const auto& f : all.flow_breakdowns) {
    EXPECT_EQ(f.component_sum(), f.fct_ns) << "flow " << f.flow;
    EXPECT_GT(f.fct_ns, 0) << "flow " << f.flow;
  }

  // 1-in-4 sampling: a proper, deterministic subset of the full run's ids.
  cfg.flow_trace_sample_every = 4;
  const auto sampled = core::run_incast_experiment(cfg);
  const auto resampled = core::run_incast_experiment(cfg);
  ASSERT_EQ(sampled.flow_breakdowns.size(), resampled.flow_breakdowns.size());
  EXPECT_GT(sampled.flow_breakdowns.size(), 0u);
  EXPECT_LT(sampled.flow_breakdowns.size(), all.flow_breakdowns.size());
  for (std::size_t i = 0; i < sampled.flow_breakdowns.size(); ++i) {
    EXPECT_EQ(sampled.flow_breakdowns[i].flow, resampled.flow_breakdowns[i].flow);
  }
}

}  // namespace
}  // namespace incast
