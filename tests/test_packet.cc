// Tests for Packet construction helpers and field semantics.
#include "net/packet.h"

#include <gtest/gtest.h>

namespace incast::net {
namespace {

TEST(Packet, DataPacketFields) {
  const Packet p = make_data_packet(/*src=*/1, /*dst=*/2, /*flow=*/7, /*seq=*/1460,
                                    /*payload_bytes=*/1460);
  EXPECT_EQ(p.src, 1u);
  EXPECT_EQ(p.dst, 2u);
  EXPECT_EQ(p.tcp.flow_id, 7u);
  EXPECT_EQ(p.tcp.seq, 1460);
  EXPECT_EQ(p.payload_bytes, 1460);
  EXPECT_EQ(p.size_bytes, 1460 + kHeaderBytes);
  EXPECT_TRUE(p.is_data());
  EXPECT_FALSE(p.tcp.has_ack);
  EXPECT_FALSE(p.is_retransmit);
}

TEST(Packet, DataPacketsAreEcnCapable) {
  const Packet p = make_data_packet(1, 2, 7, 0, 100);
  EXPECT_EQ(p.ecn, Ecn::kEct0);
  EXPECT_TRUE(is_ect(p.ecn));
}

TEST(Packet, MtuSizedSegment) {
  // 1460 B MSS + 40 B headers = 1500 B MTU, the paper's configuration.
  const Packet p = make_data_packet(0, 1, 1, 0, 1460);
  EXPECT_EQ(p.size_bytes, 1500);
}

TEST(Packet, AckPacketFields) {
  const Packet a = make_ack_packet(/*src=*/2, /*dst=*/1, /*flow=*/7, /*ack=*/2920,
                                   /*ece=*/true);
  EXPECT_EQ(a.src, 2u);
  EXPECT_EQ(a.dst, 1u);
  EXPECT_EQ(a.tcp.flow_id, 7u);
  EXPECT_EQ(a.tcp.ack, 2920);
  EXPECT_TRUE(a.tcp.has_ack);
  EXPECT_TRUE(a.tcp.ece);
  EXPECT_EQ(a.payload_bytes, 0);
  EXPECT_EQ(a.size_bytes, kHeaderBytes);
  EXPECT_FALSE(a.is_data());
}

TEST(Packet, PureAcksAreNotEcnCapable) {
  const Packet a = make_ack_packet(2, 1, 7, 0, false);
  EXPECT_EQ(a.ecn, Ecn::kNotEct);
  EXPECT_FALSE(is_ect(a.ecn));
}

TEST(Packet, EcnPredicates) {
  EXPECT_FALSE(is_ect(Ecn::kNotEct));
  EXPECT_TRUE(is_ect(Ecn::kEct0));
  EXPECT_TRUE(is_ect(Ecn::kEct1));
  EXPECT_TRUE(is_ect(Ecn::kCe));
}

TEST(Packet, IntStackPushStopsAtCapacity) {
  IntStack stack;
  stack.enabled = true;
  for (int i = 0; i < kMaxIntHops + 3; ++i) {
    stack.push(IntHopRecord{.qlen_bytes = i, .tx_bytes = 0, .link_bps = 1, .timestamp_ns = 0});
  }
  EXPECT_EQ(stack.num_hops, kMaxIntHops);
  // The first kMaxIntHops records survive; overflow is silently dropped
  // (as a fixed-size INT header would).
  EXPECT_EQ(stack.hops[0].qlen_bytes, 0);
  EXPECT_EQ(stack.hops[kMaxIntHops - 1].qlen_bytes, kMaxIntHops - 1);
}

TEST(Packet, FreshPacketCarriesNoOptions) {
  const Packet p = make_data_packet(0, 1, 1, 0, 100);
  EXPECT_EQ(p.tcp.num_sack, 0);
  EXPECT_FALSE(p.int_stack.enabled);
  EXPECT_EQ(p.int_stack.num_hops, 0);
  EXPECT_EQ(p.rdt.type, RdtType::kNone);
}

TEST(Packet, ToStringMentionsKeyFields) {
  Packet p = make_data_packet(1, 2, 7, 1460, 1460);
  p.ecn = Ecn::kCe;
  const std::string s = p.to_string();
  EXPECT_NE(s.find("flow=7"), std::string::npos);
  EXPECT_NE(s.find("seq=1460"), std::string::npos);
  EXPECT_NE(s.find("CE"), std::string::npos);
}

}  // namespace
}  // namespace incast::net
