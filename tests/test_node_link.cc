// Tests for Port/Link timing: serialization, propagation, back-to-back
// transmission, and queue interaction.
#include <gtest/gtest.h>

#include <vector>

#include "net/host.h"
#include "net/node.h"

namespace incast::net {
namespace {

using sim::Simulator;
using sim::Time;
using namespace incast::sim::literals;

// A node that records every delivered packet with its arrival time.
class SinkNode final : public Node {
 public:
  using Node::Node;

  void receive(Packet p, std::size_t in_port) override {
    arrivals.push_back({sim_.now(), std::move(p), in_port});
  }

  struct Arrival {
    Time at;
    Packet packet;
    std::size_t in_port;
  };
  std::vector<Arrival> arrivals;
};

class SourceNode final : public Node {
 public:
  using Node::Node;
  void receive(Packet, std::size_t) override {}
};

struct LinkFixture {
  Simulator sim;
  SourceNode src{sim, 0, "src"};
  SinkNode dst{sim, 1, "dst"};

  // 10 Gbps, 5 us propagation.
  LinkFixture() {
    src.add_port(sim::Bandwidth::gigabits_per_second(10), 5_us,
                 DropTailQueue::Config{.capacity_packets = 100, .ecn_threshold_packets = 0});
    src.port(0).connect(dst, 3);
  }
};

TEST(Link, DeliveryTimeIsSerializationPlusPropagation) {
  LinkFixture f;
  f.src.port(0).send(make_data_packet(0, 1, 1, 0, 1460));
  f.sim.run();
  ASSERT_EQ(f.dst.arrivals.size(), 1u);
  // 1500 B at 10 Gbps = 1.2 us serialization + 5 us propagation.
  EXPECT_EQ(f.dst.arrivals[0].at, Time::microseconds(6.2));
  EXPECT_EQ(f.dst.arrivals[0].in_port, 3u);
}

TEST(Link, BackToBackPacketsAreSpacedBySerializationTime) {
  LinkFixture f;
  for (int i = 0; i < 3; ++i) {
    f.src.port(0).send(make_data_packet(0, 1, 1, i * 1460, 1460));
  }
  f.sim.run();
  ASSERT_EQ(f.dst.arrivals.size(), 3u);
  // Pipeline: arrivals at 6.2, 7.4, 8.6 us.
  EXPECT_EQ(f.dst.arrivals[0].at, Time::microseconds(6.2));
  EXPECT_EQ(f.dst.arrivals[1].at, Time::microseconds(7.4));
  EXPECT_EQ(f.dst.arrivals[2].at, Time::microseconds(8.6));
  // FIFO order preserved.
  EXPECT_EQ(f.dst.arrivals[0].packet.tcp.seq, 0);
  EXPECT_EQ(f.dst.arrivals[2].packet.tcp.seq, 2 * 1460);
}

TEST(Link, SmallPacketsSerializeFaster) {
  LinkFixture f;
  f.src.port(0).send(make_ack_packet(0, 1, 1, 0, false));
  f.sim.run();
  ASSERT_EQ(f.dst.arrivals.size(), 1u);
  // 40 B at 10 Gbps = 32 ns + 5 us.
  EXPECT_EQ(f.dst.arrivals[0].at, 5_us + Time::nanoseconds(32));
}

TEST(Link, TransmitterIdlesAndRestartsBetweenPackets) {
  LinkFixture f;
  f.src.port(0).send(make_data_packet(0, 1, 1, 0, 1460));
  f.sim.run();
  EXPECT_FALSE(f.src.port(0).busy());
  // A later packet starts a fresh serialization from its send time.
  f.sim.schedule_at(100_us, [&] { f.src.port(0).send(make_data_packet(0, 1, 1, 0, 1460)); });
  f.sim.run();
  ASSERT_EQ(f.dst.arrivals.size(), 2u);
  EXPECT_EQ(f.dst.arrivals[1].at, 100_us + Time::microseconds(6.2));
}

TEST(Link, QueueOverflowDropsAreNotDelivered) {
  Simulator sim;
  SourceNode src{sim, 0, "src"};
  SinkNode dst{sim, 1, "dst"};
  src.add_port(sim::Bandwidth::gigabits_per_second(10), 1_us,
               DropTailQueue::Config{.capacity_packets = 2, .ecn_threshold_packets = 0});
  src.port(0).connect(dst, 0);

  // 10 sends while the transmitter is busy with the first: one in flight,
  // two queued, rest dropped.
  for (int i = 0; i < 10; ++i) src.port(0).send(make_data_packet(0, 1, 1, 0, 1460));
  sim.run();
  EXPECT_EQ(dst.arrivals.size(), 3u);
  EXPECT_EQ(src.port(0).queue().stats().dropped_packets, 7);
}

TEST(Link, ConnectDuplexWiresBothDirections) {
  Simulator sim;
  SinkNode a{sim, 0, "a"};
  SinkNode b{sim, 1, "b"};
  const DropTailQueue::Config qcfg{.capacity_packets = 10, .ecn_threshold_packets = 0};
  a.add_port(sim::Bandwidth::gigabits_per_second(10), 1_us, qcfg);
  b.add_port(sim::Bandwidth::gigabits_per_second(10), 1_us, qcfg);
  connect_duplex(a, 0, b, 0);

  a.port(0).send(make_data_packet(0, 1, 1, 0, 100));
  b.port(0).send(make_data_packet(1, 0, 2, 0, 100));
  sim.run();
  ASSERT_EQ(a.arrivals.size(), 1u);
  ASSERT_EQ(b.arrivals.size(), 1u);
  EXPECT_EQ(a.arrivals[0].packet.tcp.flow_id, 2u);
  EXPECT_EQ(b.arrivals[0].packet.tcp.flow_id, 1u);
}

TEST(Node, PortAccessorsAndMetadata) {
  Simulator sim;
  SourceNode n{sim, 42, "node42"};
  EXPECT_EQ(n.id(), 42u);
  EXPECT_EQ(n.name(), "node42");
  EXPECT_EQ(n.num_ports(), 0u);
  const std::size_t i = n.add_port(
      sim::Bandwidth::gigabits_per_second(100), 2_us,
      DropTailQueue::Config{.capacity_packets = 5, .ecn_threshold_packets = 0});
  EXPECT_EQ(i, 0u);
  EXPECT_EQ(n.num_ports(), 1u);
  EXPECT_EQ(n.port(0).bandwidth(), sim::Bandwidth::gigabits_per_second(100));
  EXPECT_EQ(n.port(0).propagation_delay(), 2_us);
  EXPECT_FALSE(n.port(0).connected());
}

}  // namespace
}  // namespace incast::net
