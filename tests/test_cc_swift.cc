// Tests for the Swift-like delay-based CCA and sub-MSS pacing.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "net/topology.h"
#include "sim/random.h"
#include "tcp/cc/swift.h"
#include "tcp/tcp_connection.h"

namespace incast::tcp {
namespace {

using sim::Time;
using namespace incast::sim::literals;

constexpr std::int64_t kMss = 1460;

SwiftConfig config() {
  SwiftConfig c;
  c.mss_bytes = kMss;
  c.initial_window_segments = 10;
  c.target_delay = 60_us;
  return c;
}

AckEvent ack(std::int64_t acked, Time rtt, Time now) {
  AckEvent ev;
  ev.newly_acked_bytes = acked;
  ev.rtt_valid = true;
  ev.rtt = rtt;
  ev.now = now;
  return ev;
}

TEST(SwiftCc, GrowsBelowTargetDelay) {
  SwiftCc cc{config()};
  const std::int64_t before = cc.cwnd_bytes();
  cc.on_ack(ack(kMss, 30_us, 1_ms));
  EXPECT_GT(cc.cwnd_bytes(), before);
  EXPECT_EQ(cc.name(), "swift");
}

TEST(SwiftCc, AdditiveIncreaseIsOneSegmentPerRtt) {
  SwiftCc cc{config()};
  const std::int64_t w = cc.cwnd_bytes();
  const int segments = static_cast<int>(w / kMss);
  Time now = 1_ms;
  for (int i = 0; i < segments; ++i) {
    now += 10_us;
    cc.on_ack(ack(kMss, 30_us, now));
  }
  // One full window of ACKs below target: ~ai (1 MSS) of growth.
  EXPECT_NEAR(static_cast<double>(cc.cwnd_bytes() - w), static_cast<double>(kMss),
              static_cast<double>(kMss) * 0.25);
}

TEST(SwiftCc, DecreasesAboveTargetProportionally) {
  SwiftCc cc{config()};
  const std::int64_t before = cc.cwnd_bytes();
  // Delay 120us vs target 60us: factor = 1 - 0.8 * 0.5 = 0.6.
  cc.on_ack(ack(kMss, 120_us, 1_ms));
  EXPECT_NEAR(static_cast<double>(cc.cwnd_bytes()), static_cast<double>(before) * 0.6,
              2.0);
}

TEST(SwiftCc, DecreaseCappedByMaxMdf) {
  SwiftCc cc{config()};
  const std::int64_t before = cc.cwnd_bytes();
  // Enormous delay: raw factor would be ~0, but max_mdf caps at 0.5.
  cc.on_ack(ack(kMss, 10_ms, 1_ms));
  EXPECT_NEAR(static_cast<double>(cc.cwnd_bytes()), static_cast<double>(before) * 0.5,
              2.0);
}

TEST(SwiftCc, AtMostOneDecreasePerRtt) {
  SwiftCc cc{config()};
  cc.on_ack(ack(kMss, 120_us, 1_ms));
  const std::int64_t after_first = cc.cwnd_bytes();
  // More congested ACKs within one RTT: no further decrease.
  cc.on_ack(ack(kMss, 120_us, 1_ms + 20_us));
  cc.on_ack(ack(kMss, 120_us, 1_ms + 40_us));
  EXPECT_EQ(cc.cwnd_bytes(), after_first);
  // After an RTT has elapsed, decrease is allowed again.
  cc.on_ack(ack(kMss, 120_us, 1_ms + 200_us));
  EXPECT_LT(cc.cwnd_bytes(), after_first);
}

TEST(SwiftCc, CwndDropsBelowOnePacket) {
  SwiftCc cc{config()};
  Time now = 1_ms;
  for (int i = 0; i < 50; ++i) {
    now += 1_ms;
    cc.on_ack(ack(kMss, 10_ms, now));
  }
  EXPECT_LT(cc.cwnd_bytes(), kMss);  // below one packet: the whole point
  // Floor: min_cwnd_segments * mss.
  EXPECT_GE(cc.cwnd_bytes(), static_cast<std::int64_t>(0.01 * kMss) - 1);
}

TEST(SwiftCc, RecoversFromSubPacketRegime) {
  SwiftCc cc{config()};
  Time now = 1_ms;
  for (int i = 0; i < 50; ++i) {
    now += 1_ms;
    cc.on_ack(ack(kMss, 10_ms, now));
  }
  ASSERT_LT(cc.cwnd_bytes(), kMss);
  // Delay back under target: growth resumes.
  cc.on_ack(ack(kMss, 30_us, now + 1_ms));
  EXPECT_GE(cc.cwnd_bytes(), kMss);
}

TEST(SwiftCc, LossDecreasesImmediately) {
  SwiftCc cc{config()};
  const std::int64_t before = cc.cwnd_bytes();
  cc.on_loss(before);
  EXPECT_NEAR(static_cast<double>(cc.cwnd_bytes()), static_cast<double>(before) * 0.5,
              2.0);
}

TEST(SwiftCc, FactoryBuildsSwift) {
  CcConfig cc_config;
  cc_config.swift_target_delay = 100_us;
  const auto cc = make_congestion_control(CcAlgorithm::kSwift, cc_config);
  EXPECT_EQ(cc->name(), "swift");
  EXPECT_STREQ(to_string(CcAlgorithm::kSwift), "swift");
}

// --- Pacing integration -----------------------------------------------------

TEST(SwiftPacing, SubMssWindowStillCompletesTransfer) {
  sim::Simulator sim;
  net::Dumbbell topo{sim, net::DumbbellConfig{.num_senders = 1}};
  TcpConfig cfg;
  cfg.cc = CcAlgorithm::kSwift;
  // Impossible target: the flow is forced to the sub-MSS pacing regime.
  cfg.cc_config.swift_target_delay = sim::Time::nanoseconds(1);
  cfg.rtt.min_rto = 500_ms;  // pacing, not RTOs, must carry the transfer
  TcpConnection conn{sim, topo.sender(0), topo.receiver(0), 1, cfg};
  conn.sender().add_app_data(30 * kMss);
  sim.run_until(10_s);

  EXPECT_TRUE(conn.sender().all_acked());
  EXPECT_EQ(conn.sender().stats().timeouts, 0);
  EXPECT_LT(conn.sender().congestion_control().cwnd_bytes(), kMss);
}

TEST(SwiftPacing, PacedPacketsAreSpacedOut) {
  sim::Simulator sim;
  net::Dumbbell topo{sim, net::DumbbellConfig{.num_senders = 1}};
  TcpConfig cfg;
  cfg.cc = CcAlgorithm::kSwift;
  cfg.cc_config.swift_target_delay = sim::Time::nanoseconds(1);

  // Record data-packet arrival times at the receiver.
  class ArrivalTap final : public net::IngressTap {
   public:
    void on_ingress(const net::Packet& p, Time now) override {
      if (p.is_data()) arrivals.push_back(now);
    }
    std::vector<Time> arrivals;
  };
  ArrivalTap tap;
  topo.receiver(0).add_ingress_tap(&tap);

  TcpConnection conn{sim, topo.sender(0), topo.receiver(0), 1, cfg};
  conn.sender().add_app_data(60 * kMss);
  sim.run_until(30_s);
  ASSERT_TRUE(conn.sender().all_acked());

  // The window halves once per RTT until it collapses below one packet;
  // the tail of the transfer must then be paced at multi-RTT spacing
  // (base RTT ~30 us).
  ASSERT_GT(tap.arrivals.size(), 40u);
  for (std::size_t i = tap.arrivals.size() - 5; i < tap.arrivals.size(); ++i) {
    EXPECT_GT(tap.arrivals[i] - tap.arrivals[i - 1], 60_us);
  }
}

TEST(SwiftPacing, ManyFlowsSteadyStateHoldsLowQueueWithoutLoss) {
  // The headline Swift property: hundreds of flows in sustained incast,
  // sub-MSS windows, near-zero queue, no drops (cf. bench E1 at scale).
  sim::Simulator sim;
  const int flows = 200;
  net::DumbbellConfig topo_cfg;
  topo_cfg.num_senders = flows;
  net::Dumbbell topo{sim, topo_cfg};
  TcpConfig cfg;
  cfg.cc = CcAlgorithm::kSwift;
  cfg.cc_config.initial_window_segments = 1;
  cfg.rtt.min_rto = 200_ms;

  std::vector<std::unique_ptr<TcpConnection>> conns;
  sim::Rng rng{3};
  for (int i = 0; i < flows; ++i) {
    conns.push_back(std::make_unique<TcpConnection>(sim, topo.sender(i), topo.receiver(0),
                                                    static_cast<net::FlowId>(i + 1), cfg));
    TcpSender* s = &conns.back()->sender();
    sim.schedule_in(rng.uniform_time(Time::zero(), 5_ms),
                    [s] { s->add_app_data(50'000'000); });
  }
  sim.run_until(300_ms);
  const auto drops_at_convergence = topo.bottleneck_queue().stats().dropped_packets;

  std::vector<std::int64_t> depths;
  for (int i = 0; i < 100; ++i) {
    sim.schedule_at(300_ms + Time::milliseconds(2.0 * i),
                    [&] { depths.push_back(topo.bottleneck_queue().packets()); });
  }
  sim.run_until(500_ms);

  double mean = 0;
  for (const auto d : depths) mean += static_cast<double>(d);
  mean /= static_cast<double>(depths.size());
  // DCTCP at 200 flows would hold ~175 packets (flows - BDP); Swift's
  // delay target keeps it far lower.
  EXPECT_LT(mean, 120.0);
  EXPECT_EQ(topo.bottleneck_queue().stats().dropped_packets, drops_at_convergence);
}

}  // namespace
}  // namespace incast::tcp
