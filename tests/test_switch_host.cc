// Tests for Switch routing and Host demultiplexing / ingress taps.
#include <gtest/gtest.h>

#include <vector>

#include "net/host.h"
#include "net/switch.h"

namespace incast::net {
namespace {

using sim::Simulator;
using sim::Time;
using namespace incast::sim::literals;

constexpr DropTailQueue::Config kQ{.capacity_packets = 100, .ecn_threshold_packets = 0};

class RecordingHandler final : public PacketHandler {
 public:
  void handle_packet(Packet p) override { packets.push_back(std::move(p)); }
  std::vector<Packet> packets;
};

class RecordingTap final : public IngressTap {
 public:
  void on_ingress(const Packet& p, Time now) override {
    count += 1;
    last_at = now;
    bytes += p.size_bytes;
  }
  int count{0};
  std::int64_t bytes{0};
  Time last_at{};
};

// Two hosts hanging off one switch.
struct StarFixture {
  Simulator sim;
  Switch sw{sim, 100, "sw"};
  Host h1{sim, 1, "h1"};
  Host h2{sim, 2, "h2"};

  StarFixture() {
    const auto bw = sim::Bandwidth::gigabits_per_second(10);
    h1.add_nic(bw, 1_us, kQ);
    h2.add_nic(bw, 1_us, kQ);
    const std::size_t p1 = sw.add_port(bw, 1_us, kQ);
    const std::size_t p2 = sw.add_port(bw, 1_us, kQ);
    connect_duplex(h1, 0, sw, p1);
    connect_duplex(h2, 0, sw, p2);
    sw.set_route(h1.id(), p1);
    sw.set_route(h2.id(), p2);
  }
};

TEST(Switch, RoutesByDestination) {
  StarFixture f;
  RecordingHandler sink;
  f.h2.register_flow(7, &sink);

  f.h1.send(make_data_packet(f.h1.id(), f.h2.id(), 7, 0, 1000));
  f.sim.run();
  ASSERT_EQ(sink.packets.size(), 1u);
  EXPECT_EQ(sink.packets[0].tcp.flow_id, 7u);
  EXPECT_EQ(f.sw.unrouted_packets(), 0);
}

TEST(Switch, CountsUnroutedPackets) {
  StarFixture f;
  f.h1.send(make_data_packet(f.h1.id(), /*dst=*/99, 7, 0, 1000));
  f.sim.run();
  EXPECT_EQ(f.sw.unrouted_packets(), 1);
}

TEST(Switch, SharedBufferAttachesToAllPorts) {
  // An asymmetric star: h1 feeds the switch at 100 Gbps while the egress
  // toward h2 drains at 10 Gbps, so a burst piles up in the egress queue
  // until the 3 KB shared pool rejects further packets.
  Simulator sim;
  Switch sw{sim, 100, "sw"};
  Host h1{sim, 1, "h1"};
  Host h2{sim, 2, "h2"};
  const auto fast = sim::Bandwidth::gigabits_per_second(100);
  const auto slow = sim::Bandwidth::gigabits_per_second(10);
  h1.add_nic(fast, 1_us, kQ);
  h2.add_nic(slow, 1_us, kQ);
  const std::size_t p1 = sw.add_port(fast, 1_us, kQ);
  const std::size_t p2 = sw.add_port(slow, 1_us, kQ);
  connect_duplex(h1, 0, sw, p1);
  connect_duplex(h2, 0, sw, p2);
  sw.set_route(h1.id(), p1);
  sw.set_route(h2.id(), p2);

  SharedBufferPool& pool = sw.enable_shared_buffer({.total_bytes = 3'000, .alpha = 10.0});
  EXPECT_EQ(sw.shared_buffer(), &pool);

  RecordingHandler sink;
  h2.register_flow(7, &sink);
  for (int i = 0; i < 10; ++i) {
    h1.send(make_data_packet(h1.id(), h2.id(), 7, i * 1000, 1000));
  }
  sim.run();
  EXPECT_LT(sink.packets.size(), 10u);
  EXPECT_GT(sw.port(p2).queue().stats().dropped_packets, 0);
}

TEST(Host, DemuxesByFlowId) {
  StarFixture f;
  RecordingHandler flow_a;
  RecordingHandler flow_b;
  f.h2.register_flow(1, &flow_a);
  f.h2.register_flow(2, &flow_b);

  f.h1.send(make_data_packet(f.h1.id(), f.h2.id(), 1, 0, 100));
  f.h1.send(make_data_packet(f.h1.id(), f.h2.id(), 2, 0, 100));
  f.h1.send(make_data_packet(f.h1.id(), f.h2.id(), 1, 100, 100));
  f.sim.run();
  EXPECT_EQ(flow_a.packets.size(), 2u);
  EXPECT_EQ(flow_b.packets.size(), 1u);
}

TEST(Host, UnclaimedPacketsAreCounted) {
  StarFixture f;
  f.h1.send(make_data_packet(f.h1.id(), f.h2.id(), 9, 0, 100));
  f.sim.run();
  EXPECT_EQ(f.h2.unclaimed_packets(), 1);
}

TEST(Host, UnregisterStopsDelivery) {
  StarFixture f;
  RecordingHandler sink;
  f.h2.register_flow(1, &sink);
  f.h2.unregister_flow(1);
  f.h1.send(make_data_packet(f.h1.id(), f.h2.id(), 1, 0, 100));
  f.sim.run();
  EXPECT_TRUE(sink.packets.empty());
  EXPECT_EQ(f.h2.unclaimed_packets(), 1);
}

TEST(Host, IngressTapsSeeEveryPacketIncludingUnclaimed) {
  StarFixture f;
  RecordingTap tap;
  f.h2.add_ingress_tap(&tap);
  RecordingHandler sink;
  f.h2.register_flow(1, &sink);

  f.h1.send(make_data_packet(f.h1.id(), f.h2.id(), 1, 0, 1000));
  f.h1.send(make_data_packet(f.h1.id(), f.h2.id(), 99, 0, 500));  // unclaimed
  f.sim.run();
  EXPECT_EQ(tap.count, 2);
  EXPECT_EQ(tap.bytes, 1000 + kHeaderBytes + 500 + kHeaderBytes);
  EXPECT_GT(tap.last_at, Time::zero());
}

TEST(Host, MultipleTapsAllInvoked) {
  StarFixture f;
  RecordingTap t1;
  RecordingTap t2;
  f.h2.add_ingress_tap(&t1);
  f.h2.add_ingress_tap(&t2);
  f.h1.send(make_data_packet(f.h1.id(), f.h2.id(), 5, 0, 100));
  f.sim.run();
  EXPECT_EQ(t1.count, 1);
  EXPECT_EQ(t2.count, 1);
}

TEST(Host, NicBandwidthReported) {
  StarFixture f;
  EXPECT_EQ(f.h1.nic_bandwidth(), sim::Bandwidth::gigabits_per_second(10));
}

}  // namespace
}  // namespace incast::net
