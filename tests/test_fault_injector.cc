// Tests for the fault-injection layer: determinism, Gilbert-Elliott burst
// loss, flap edge cases, and corruption accounting end to end.
#include "fault/fault_injector.h"

#include <gtest/gtest.h>

#include <vector>

#include "net/topology.h"
#include "sim/random.h"
#include "tcp/tcp_connection.h"
#include "telemetry/millisampler.h"

namespace incast::fault {
namespace {

using sim::Simulator;
using sim::Time;
using namespace incast::sim::literals;

tcp::TcpConfig tcp_config(Time min_rto = 10_ms) {
  tcp::TcpConfig c;
  c.cc = tcp::CcAlgorithm::kReno;
  c.rtt.min_rto = min_rto;
  c.rtt.initial_rto = min_rto;
  return c;
}

// One TCP transfer over a dumbbell whose inter-ToR data direction carries
// the given faults. Returns the installed LinkFault for inspection.
struct FaultyRun {
  Simulator sim;
  net::Dumbbell topo;
  FaultInjector injector;
  LinkFault& fwd;
  tcp::TcpConnection conn;

  FaultyRun(const LinkFaultConfig& cfg, std::uint64_t seed)
      : topo{sim, net::DumbbellConfig{}},
        injector{sim, seed},
        fwd{injector.install(topo.core_link_tx(), cfg)},
        conn{sim, topo.sender(0), topo.receiver(0), 1, tcp_config()} {}
};

TEST(FaultInjector, SameSeedSameTraceAndCounters) {
  const LinkFaultConfig cfg{.drop_rate = 2e-3, .corrupt_rate = 1e-3,
                            .duplicate_rate = 1e-3, .reorder_rate = 1e-3};
  auto run_once = [&cfg](std::uint64_t seed) {
    FaultyRun r{cfg, seed};
    r.conn.sender().add_app_data(3'000'000);
    r.sim.run_until(5_s);
    EXPECT_TRUE(r.conn.sender().all_acked());
    return std::tuple{r.fwd.trace(), r.fwd.counters().packets_seen,
                      r.sim.events_processed()};
  };

  const auto [trace_a, seen_a, events_a] = run_once(42);
  const auto [trace_b, seen_b, events_b] = run_once(42);
  EXPECT_FALSE(trace_a.empty());  // the faults actually fired
  EXPECT_EQ(trace_a, trace_b);
  EXPECT_EQ(seen_a, seen_b);
  EXPECT_EQ(events_a, events_b);

  // A different seed damages different packets.
  const auto [trace_c, seen_c, events_c] = run_once(43);
  EXPECT_NE(trace_a, trace_c);
}

TEST(FaultInjector, RandomDropRateIsRoughlyHonored) {
  FaultyRun r{LinkFaultConfig{.drop_rate = 0.01}, 7};
  r.conn.sender().add_app_data(5'000'000);
  r.sim.run_until(10_s);

  EXPECT_TRUE(r.conn.sender().all_acked());
  const FaultCounters& c = r.fwd.counters();
  EXPECT_GT(c.packets_seen, 1'000);
  const double observed =
      static_cast<double>(c.random_drops) / static_cast<double>(c.packets_seen);
  EXPECT_GT(observed, 0.003);
  EXPECT_LT(observed, 0.03);
  // Only the configured fault type fired.
  EXPECT_EQ(c.burst_drops, 0);
  EXPECT_EQ(c.corrupted, 0);
  EXPECT_EQ(c.duplicated, 0);
  EXPECT_EQ(c.reordered, 0);
}

TEST(FaultInjector, GilbertElliottAlternatesDeterministically) {
  // p = r = 1 makes the chain flip state on every packet; drop_bad = 1 and
  // drop_good = 0 then drop exactly the packets seen in the bad state:
  // starting from good, packets 0, 2, 4, ... transition to bad and die.
  const LinkFaultConfig cfg{.ge_good_to_bad = 1.0, .ge_bad_to_good = 1.0,
                            .ge_drop_good = 0.0, .ge_drop_bad = 1.0};
  LinkFault link{cfg, sim::Rng{1}};

  const net::Packet p = net::make_data_packet(0, 1, 1, 0, 1000);
  std::vector<bool> dropped;
  for (int i = 0; i < 6; ++i) {
    dropped.push_back(link.on_transmit(p, Time::microseconds(i)).drop);
  }
  EXPECT_EQ(dropped, (std::vector<bool>{true, false, true, false, true, false}));
  EXPECT_EQ(link.counters().burst_drops, 3);
  // After an even number of transitions the chain is back in good state.
  EXPECT_FALSE(link.ge_in_bad_state());
}

TEST(FaultInjector, GilbertElliottProducesLossBursts) {
  // Sticky chain: rare entry into a very lossy bad state that persists for
  // ~10 packets. Loss must arrive in runs, not singletons.
  const LinkFaultConfig cfg{.ge_good_to_bad = 0.005, .ge_bad_to_good = 0.1,
                            .ge_drop_good = 0.0, .ge_drop_bad = 1.0};
  LinkFault link{cfg, sim::Rng{99}};

  const net::Packet p = net::make_data_packet(0, 1, 1, 0, 1000);
  int longest_run = 0;
  int run = 0;
  for (int i = 0; i < 20'000; ++i) {
    if (link.on_transmit(p, Time::microseconds(i)).drop) {
      longest_run = std::max(longest_run, ++run);
    } else {
      run = 0;
    }
  }
  EXPECT_GT(link.counters().burst_drops, 100);
  EXPECT_GE(longest_run, 5);  // bursty, not i.i.d.
}

TEST(FaultInjector, DisabledFaultsConsumeNoRngDraws) {
  // Two configs that share a seed and an i.i.d. drop rate; one also has
  // corruption disabled-by-zero vs enabled. The drop decisions must be
  // identical: a disabled fault type draws nothing, and each type draws
  // only when its own gate is open.
  const net::Packet p = net::make_data_packet(0, 1, 1, 0, 1000);
  LinkFault plain{LinkFaultConfig{.drop_rate = 0.1}, sim::Rng{5}};
  LinkFault with_zero{LinkFaultConfig{.drop_rate = 0.1, .corrupt_rate = 0.0},
                      sim::Rng{5}};
  for (int i = 0; i < 1'000; ++i) {
    const Time t = Time::microseconds(i);
    EXPECT_EQ(plain.on_transmit(p, t).drop, with_zero.on_transmit(p, t).drop);
  }
  EXPECT_EQ(plain.counters().random_drops, with_zero.counters().random_drops);
}

TEST(FaultInjector, FlapBlackholesExactWindow) {
  Simulator sim;
  net::Dumbbell topo{sim, net::DumbbellConfig{}};
  FaultInjector injector{sim, 3};
  LinkFault& fwd = injector.install(topo.core_link_tx(), LinkFaultConfig{});
  injector.schedule_flap(fwd, 1_ms, 2_ms);

  // Probe the link state across the window boundaries.
  std::vector<std::pair<Time, bool>> observed;
  for (const Time t : {Time::microseconds(500), Time::microseconds(1'500),
                       Time::microseconds(2'999), Time::microseconds(3'500)}) {
    sim.schedule_at(t, [&observed, &fwd, t] { observed.emplace_back(t, fwd.link_up()); });
  }
  sim.run_until(10_ms);

  ASSERT_EQ(observed.size(), 4u);
  EXPECT_TRUE(observed[0].second);   // before the flap
  EXPECT_FALSE(observed[1].second);  // inside
  EXPECT_FALSE(observed[2].second);  // still inside
  EXPECT_TRUE(observed[3].second);   // restored
}

TEST(FaultInjector, OverlappingFlapsComposeAsUnion) {
  Simulator sim;
  net::Dumbbell topo{sim, net::DumbbellConfig{}};
  FaultInjector injector{sim, 3};
  LinkFault& fwd = injector.install(topo.core_link_tx(), LinkFaultConfig{});
  // [1, 4) and [2, 6): the link must stay down across the seam at 4 ms and
  // come back only at 6 ms.
  injector.schedule_flap(fwd, 1_ms, 3_ms);
  injector.schedule_flap(fwd, 2_ms, 4_ms);

  std::vector<bool> up;
  for (const Time t : {Time::microseconds(4'500), Time::microseconds(5'999),
                       Time::microseconds(6'500)}) {
    sim.schedule_at(t, [&up, &fwd] { up.push_back(fwd.link_up()); });
  }
  sim.run_until(10_ms);
  EXPECT_EQ(up, (std::vector<bool>{false, false, true}));
}

TEST(FaultInjector, ZeroDurationFlapIsIgnored) {
  Simulator sim;
  net::Dumbbell topo{sim, net::DumbbellConfig{}};
  FaultInjector injector{sim, 3};
  LinkFault& fwd = injector.install(topo.core_link_tx(), LinkFaultConfig{});
  injector.schedule_flap(fwd, 1_ms, Time::zero());
  injector.schedule_flap(fwd, 1_ms, Time::microseconds(-5));

  bool probed_up = false;
  sim.schedule_at(Time::microseconds(1'001), [&] { probed_up = fwd.link_up(); });
  sim.run_until(2_ms);
  EXPECT_TRUE(probed_up);
  EXPECT_EQ(fwd.counters().flap_drops, 0);
}

TEST(FaultInjector, FlapOutsideRunWindowHasNoEffect) {
  // A flap scheduled after the transfer finishes must not disturb it.
  FaultyRun r{LinkFaultConfig{}, 11};
  r.injector.schedule_flap(r.fwd, Time::seconds(60), 100_ms);
  r.conn.sender().add_app_data(1'000'000);
  r.sim.run_until(5_s);

  EXPECT_TRUE(r.conn.sender().all_acked());
  EXPECT_EQ(r.fwd.counters().flap_drops, 0);
  EXPECT_EQ(r.conn.sender().stats().timeouts, 0);
}

TEST(FaultInjector, FlapDropsConsumeNoRngDraws) {
  // Same seed, same packets: a run where a flap swallows a prefix of the
  // stream must make identical random-drop decisions on the packets after
  // the flap, because blackholed packets draw nothing.
  const net::Packet p = net::make_data_packet(0, 1, 1, 0, 1000);
  LinkFault flapped{LinkFaultConfig{.drop_rate = 0.1}, sim::Rng{5}};
  LinkFault plain{LinkFaultConfig{.drop_rate = 0.1}, sim::Rng{5}};

  flapped.begin_flap();
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(flapped.on_transmit(p, Time::microseconds(i)).drop);
  }
  flapped.end_flap();
  EXPECT_EQ(flapped.counters().flap_drops, 100);

  for (int i = 0; i < 1'000; ++i) {
    const Time t = Time::microseconds(100 + i);
    EXPECT_EQ(flapped.on_transmit(p, t).drop, plain.on_transmit(p, t).drop);
  }
}

TEST(FaultInjector, CorruptedFramesDropAtNicAndShowInMillisampler) {
  Simulator sim;
  net::Dumbbell topo{sim, net::DumbbellConfig{}};
  FaultInjector injector{sim, 21};
  LinkFault& fwd =
      injector.install(topo.core_link_tx(), LinkFaultConfig{.corrupt_rate = 0.005});

  telemetry::Millisampler sampler{{}};
  topo.receiver(0).add_ingress_tap(&sampler);

  tcp::TcpConnection conn{sim, topo.sender(0), topo.receiver(0), 1, tcp_config()};
  conn.sender().add_app_data(3'000'000);
  sim.run_until(5_s);
  sampler.finalize(sim.now());

  // Corruption fired, every mangled frame died at the receiver NIC, and the
  // transport still delivered everything via SACK/RTO recovery.
  EXPECT_TRUE(conn.sender().all_acked());
  const std::int64_t corrupted = fwd.counters().corrupted;
  EXPECT_GT(corrupted, 0);
  EXPECT_EQ(topo.receiver(0).corrupt_dropped_packets(), corrupted);
  EXPECT_GT(conn.sender().stats().retransmitted_packets, 0);

  // The rx_crc_errors analogue: corrupt bytes are visible in the host bins.
  std::int64_t corrupt_bytes = 0;
  for (const auto& bin : sampler.bins()) corrupt_bytes += bin.corrupt_bytes;
  EXPECT_GT(corrupt_bytes, 0);
}

TEST(FaultInjector, DuplicationAndReorderingDoNotBreakDelivery) {
  FaultyRun r{LinkFaultConfig{.duplicate_rate = 0.01, .reorder_rate = 0.01}, 17};
  r.conn.sender().add_app_data(3'000'000);
  r.sim.run_until(5_s);

  EXPECT_TRUE(r.conn.sender().all_acked());
  EXPECT_EQ(r.conn.receiver().rcv_nxt(), 3'000'000);
  EXPECT_GT(r.fwd.counters().duplicated, 0);
  EXPECT_GT(r.fwd.counters().reordered, 0);
  EXPECT_EQ(r.fwd.counters().injected_drops(), 0);
}

TEST(FaultInjector, PerLinkStreamsAreIndependent) {
  // Installing a second (unused) faulty link must not change the first
  // link's decisions: each install forks its own child stream.
  auto drops_on_fwd = [](bool install_reverse) {
    Simulator sim;
    net::Dumbbell topo{sim, net::DumbbellConfig{}};
    FaultInjector injector{sim, 77};
    LinkFault& fwd =
        injector.install(topo.core_link_tx(), LinkFaultConfig{.drop_rate = 5e-3});
    if (install_reverse) {
      injector.install(topo.core_link_rx(), LinkFaultConfig{.drop_rate = 5e-3});
    }
    tcp::TcpConnection conn{sim, topo.sender(0), topo.receiver(0), 1, tcp_config()};
    conn.sender().add_app_data(2'000'000);
    sim.run_until(5_s);
    EXPECT_TRUE(conn.sender().all_acked());
    return fwd.trace();
  };

  const auto without = drops_on_fwd(false);
  const auto with = drops_on_fwd(true);
  EXPECT_FALSE(without.empty());
  // The forward link's fault sequence is identical even though the ACK path
  // now loses packets (which shifts *when* packets flow, so compare only
  // that the same prefix of per-packet decisions holds by uid).
  ASSERT_FALSE(with.empty());
  EXPECT_EQ(without.front().packet_uid, with.front().packet_uid);
}

}  // namespace
}  // namespace incast::fault
