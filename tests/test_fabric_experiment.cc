// Tests for the fabric incast experiment — most importantly the acceptance
// criterion that a 1-pod / 2-leaf / 1-spine fat-tree reproduces the
// dumbbell's DCTCP mode classification for the same sweep points.
#include <gtest/gtest.h>

#include <stdexcept>

#include "core/fabric_experiment.h"
#include "core/incast_experiment.h"
#include "core/resilience_experiment.h"

namespace incast::core {
namespace {

using namespace incast::sim::literals;

IncastExperimentConfig dumbbell_config(int flows) {
  IncastExperimentConfig cfg;
  cfg.num_flows = flows;
  cfg.burst_duration = 15_ms;
  cfg.num_bursts = 3;  // abbreviated for test speed
  cfg.discard_bursts = 1;
  cfg.tcp.cc = tcp::CcAlgorithm::kDctcp;
  cfg.tcp.rtt.min_rto = 200_ms;
  cfg.seed = 7;
  return cfg;
}

// The automated equivalence sweep: safe (100 flows), degenerate (500), and
// collapse (1500) on the dumbbell must classify identically on the
// degenerate fat-tree, which differs only by one extra switch hop.
class DumbbellEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(DumbbellEquivalence, FabricDegenerateCaseReproducesDumbbellMode) {
  const IncastExperimentConfig base = dumbbell_config(GetParam());
  const auto dumbbell = run_incast_experiment(base);

  const FabricIncastExperimentConfig fabric_cfg = dumbbell_equivalent_config(base);
  ASSERT_EQ(fabric_cfg.fabric.num_pods, 1);
  ASSERT_EQ(fabric_cfg.fabric.num_spines, 1);
  const auto fabric = run_fabric_incast_experiment(fabric_cfg);

  EXPECT_EQ(classify_mode(dumbbell), fabric.mode)
      << "dumbbell: timeouts=" << dumbbell.timeouts
      << " marked=" << dumbbell.marked_fraction()
      << " | fabric: timeouts=" << fabric.timeouts
      << " marked=" << fabric.marked_fraction();
  // The single-spine fabric has exactly one path: ECMP must never engage.
  EXPECT_EQ(fabric.ecmp_path_changes, 0);
}

INSTANTIATE_TEST_SUITE_P(ModeSweep, DumbbellEquivalence,
                         ::testing::Values(100, 500, 1500));

TEST(FabricExperiment, CrossRackRunsEndToEnd) {
  FabricIncastExperimentConfig cfg;
  cfg.num_flows = 24;
  cfg.fabric.num_pods = 2;
  cfg.fabric.leaves_per_pod = 2;
  cfg.fabric.hosts_per_leaf = 8;
  cfg.fabric.num_spines = 2;
  cfg.num_bursts = 2;
  cfg.discard_bursts = 0;
  cfg.burst_duration = 3_ms;

  const auto r = run_fabric_incast_experiment(cfg);

  ASSERT_EQ(r.bursts.size(), 2u);
  EXPECT_EQ(r.sender_hosts.size(), 24u);
  // Receiver sits on the last leaf; no sender shares it.
  for (const int h : r.sender_hosts) EXPECT_NE(h / 8, 3) << "sender on receiver leaf";
  EXPECT_GT(r.avg_bct_ms, 0.0);
  EXPECT_GT(r.queue_enqueues, 0);

  // All three tiers produced traces and the host trace carries the burst.
  bool saw_host = false, saw_leaf = false, saw_spine = false;
  for (const auto& v : r.vantages) {
    if (v.tier == "host") {
      saw_host = true;
      EXPECT_GT(v.peak_utilization(), 0.5);
    }
    if (v.tier == "leaf") saw_leaf = true;
    if (v.tier == "spine") saw_spine = true;
  }
  EXPECT_TRUE(saw_host);
  EXPECT_TRUE(saw_leaf);
  EXPECT_TRUE(saw_spine);

  // The leaf-tier ECMP spread accounts for traffic (senders' data and the
  // receiver's ACKs all cross leaf uplinks).
  std::int64_t spread_total = 0;
  for (const auto& s : r.leaf_ecmp) {
    for (const std::int64_t n : s.flows_by_uplink) spread_total += n;
  }
  EXPECT_GT(spread_total, 0);
  EXPECT_EQ(r.ecmp_path_changes, 0);
}

TEST(FabricExperiment, ThreeTierRunsEndToEnd) {
  FabricIncastExperimentConfig cfg;
  cfg.num_flows = 12;
  cfg.fabric.num_pods = 2;
  cfg.fabric.leaves_per_pod = 2;
  cfg.fabric.hosts_per_leaf = 4;
  cfg.fabric.aggs_per_pod = 2;
  cfg.fabric.num_spines = 2;
  cfg.num_bursts = 2;
  cfg.discard_bursts = 0;
  cfg.burst_duration = 3_ms;

  const auto r = run_fabric_incast_experiment(cfg);
  ASSERT_EQ(r.bursts.size(), 2u);
  EXPECT_GT(r.avg_bct_ms, 0.0);
  EXPECT_EQ(r.timeouts, 0);
}

TEST(FabricExperiment, PlacementOverflowThrows) {
  FabricIncastExperimentConfig cfg;
  cfg.fabric.num_pods = 1;
  cfg.fabric.leaves_per_pod = 2;
  cfg.fabric.hosts_per_leaf = 4;
  cfg.fabric.num_spines = 1;
  // Cross-rack capacity is one leaf x 4 hosts = 4 senders.
  cfg.num_flows = 5;
  EXPECT_THROW((void)run_fabric_incast_experiment(cfg), std::invalid_argument);

  cfg.placement = FabricIncastExperimentConfig::Placement::kSingleRack;
  EXPECT_THROW((void)run_fabric_incast_experiment(cfg), std::invalid_argument);
  cfg.num_flows = 4;
  EXPECT_NO_THROW((void)run_fabric_incast_experiment(cfg));
}

TEST(FabricExperiment, NamedLinkFaultInjectsDrops) {
  FabricIncastExperimentConfig cfg;
  cfg.num_flows = 8;
  cfg.fabric.num_pods = 1;
  cfg.fabric.leaves_per_pod = 2;
  cfg.fabric.hosts_per_leaf = 8;
  cfg.fabric.num_spines = 2;
  cfg.num_bursts = 2;
  cfg.discard_bursts = 0;
  cfg.burst_duration = 3_ms;

  const auto clean = run_fabric_incast_experiment(cfg);
  EXPECT_EQ(clean.injected_drops, 0);

  // Lossy uplink, addressed by its LinkDirectory name — the uniform fault
  // pathway works on fabric links exactly as on the dumbbell's core link.
  NamedLinkFault nf;
  nf.link = "p0.l0->s0";
  nf.config.drop_rate = 0.05;
  cfg.link_faults.push_back(nf);
  const auto lossy = run_fabric_incast_experiment(cfg);
  EXPECT_GT(lossy.injected_drops, 0);
  EXPECT_GT(lossy.retransmitted_packets, clean.retransmitted_packets);
}

}  // namespace
}  // namespace incast::core
