// Tests for the receiver-driven credit transport.
#include "rdt/credit_incast.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

namespace incast::rdt {
namespace {

using sim::Simulator;
using sim::Time;
using namespace incast::sim::literals;

constexpr std::int64_t kMss = 1460;

net::DumbbellConfig rdt_topology(int senders) {
  net::DumbbellConfig cfg;
  cfg.num_senders = senders;
  // Byte-buffered switch queues (2 MB), as real ToRs account their memory;
  // ECN is irrelevant to the credit transport.
  cfg.switch_queue.capacity_packets = 1'000'000;
  cfg.switch_queue.capacity_bytes = 2'000'000;
  cfg.switch_queue.ecn_threshold_packets = 0;
  return cfg;
}

struct Pair {
  Simulator sim;
  net::Dumbbell topo;
  CreditReceiver receiver;
  CreditSender sender;

  explicit Pair(CreditReceiver::Config rcfg = {}, CreditSender::Config scfg = {})
      : topo{sim, rdt_topology(1)},
        receiver{sim, topo.receiver(0), rcfg},
        sender{sim, topo.sender(0), topo.receiver(0).id(), 1, scfg} {
    receiver.accept_flow(1, topo.sender(0).id());
  }
};

TEST(CreditTransport, SingleFlowDeliversExactDemand) {
  Pair p;
  p.sender.add_app_data(100'000);
  p.sim.run_until(1_s);
  EXPECT_EQ(p.receiver.received_bytes(1), 100'000);
  EXPECT_EQ(p.receiver.total_received_bytes(), 100'000);
  // Grants: ceil(100000/1460) = 69, no regrants on a clean path.
  EXPECT_EQ(p.receiver.grants_sent(), 69);
  EXPECT_EQ(p.receiver.regrants_sent(), 0);
  EXPECT_EQ(p.sender.data_packets_sent(), 69);
}

TEST(CreditTransport, CompletionCallbackFiresOncePerDemandLevel) {
  Pair p;
  int completions = 0;
  p.receiver.set_on_flow_complete([&](net::FlowId) { ++completions; });
  p.sender.add_app_data(10 * kMss);
  p.sim.run_until(100_ms);
  EXPECT_EQ(completions, 1);

  // Second burst on the same flow: completes again at the new level.
  p.sender.add_app_data(5 * kMss);
  p.sim.run_until(200_ms);
  EXPECT_EQ(completions, 2);
  EXPECT_EQ(p.receiver.received_bytes(1), 15 * kMss);
}

TEST(CreditTransport, GrantsArePacedAtLineRate) {
  // 10 Gbps, 1500 B wire size -> one grant per 1.2 us; 100 segments of
  // demand should take ~120 us of granting + ~1 RTT of signaling.
  Pair p;
  p.sender.add_app_data(100 * kMss);
  sim::Time done;
  p.receiver.set_on_flow_complete([&](net::FlowId) { done = p.sim.now(); });
  p.sim.run_until(100_ms);
  ASSERT_GT(done, Time::zero());
  EXPECT_GT(done, 120_us);
  EXPECT_LT(done, 250_us);
}

TEST(CreditTransport, QueueStaysTinyUnderMassiveIncast) {
  // 800 simultaneous flows: the defining property — the bottleneck queue
  // holds control chatter only, no data standing queue, zero loss.
  Simulator sim;
  net::Dumbbell topo{sim, rdt_topology(800)};
  CreditIncastDriver::Config cfg;
  cfg.num_flows = 800;
  cfg.num_bursts = 2;
  cfg.burst_duration = 5_ms;
  CreditIncastDriver driver{sim, topo, cfg, 7};
  driver.start();
  sim.run_until(5_s);

  ASSERT_TRUE(driver.finished());
  EXPECT_EQ(topo.bottleneck_queue().stats().dropped_packets, 0);
  for (const auto& b : driver.bursts()) {
    EXPECT_LT(b.completion_time().ms(), 7.0);
  }
  // Data bytes in the queue never exceed a handful of MTUs; the packet
  // watermark is dominated by 40-byte RTS/control packets.
  EXPECT_LT(topo.bottleneck_queue().take_watermark() * 40 + 10 * 1500, 200'000);
}

TEST(CreditTransport, RegrantRepairsLostData) {
  // Squeeze the bottleneck to force data drops: the receiver re-grants
  // unanswered credits and the transfer still completes exactly.
  Simulator sim;
  net::DumbbellConfig topo_cfg = rdt_topology(1);
  topo_cfg.switch_queue.capacity_bytes = 8'000;  // ~5 MTU frames
  topo_cfg.receiver_link = sim::Bandwidth::gigabits_per_second(1);
  net::Dumbbell topo{sim, topo_cfg};
  CreditReceiver::Config rcfg;
  rcfg.line_rate = sim::Bandwidth::gigabits_per_second(1);
  rcfg.overcommit = 3.0;  // deliberately overdrive to provoke loss
  CreditReceiver receiver{sim, topo.receiver(0), rcfg};
  CreditSender sender{sim, topo.sender(0), topo.receiver(0).id(), 1, {}};
  receiver.accept_flow(1, topo.sender(0).id());

  sender.add_app_data(500'000);
  sim.run_until(5_s);
  EXPECT_EQ(receiver.received_bytes(1), 500'000);
  EXPECT_GT(topo.bottleneck_queue().stats().dropped_packets, 0);
  EXPECT_GT(receiver.regrants_sent(), 0);
}

TEST(CreditTransport, RtsRetryRecoversLostAnnouncement) {
  // Drop the very first packets by briefly zeroing the queue via a 1-byte
  // cap, then restore: the sender's RTS watchdog must re-announce.
  Simulator sim;
  net::DumbbellConfig topo_cfg = rdt_topology(1);
  net::Dumbbell topo{sim, topo_cfg};
  CreditReceiver receiver{sim, topo.receiver(0), {}};
  CreditSender::Config scfg;
  scfg.rts_retry_base = 500_us;
  CreditSender sender{sim, topo.sender(0), topo.receiver(0).id(), 1, scfg};
  receiver.accept_flow(1, topo.sender(0).id());

  // Simulate the RTS being lost: deliver demand directly but suppress the
  // first RTS by... simply sending before the receiver knows the flow is
  // there is not possible here, so instead verify the watchdog fires when
  // grants are withheld: use a second, unregistered flow id.
  CreditSender orphan{sim, topo.sender(0), topo.receiver(0).id(), 99, scfg};
  orphan.add_app_data(10 * kMss);
  sim.run_until(20_ms);
  // Never granted (receiver ignores flow 99): the watchdog kept retrying
  // with backoff rather than once or unboundedly.
  EXPECT_GE(orphan.rts_sent(), 3);
  EXPECT_LE(orphan.rts_sent(), 12);
}

TEST(CreditTransport, RoundRobinSharesEvenly) {
  Simulator sim;
  net::Dumbbell topo{sim, rdt_topology(4)};
  CreditReceiver receiver{sim, topo.receiver(0), {}};
  std::vector<std::unique_ptr<CreditSender>> senders;
  for (int i = 0; i < 4; ++i) {
    const auto flow = static_cast<net::FlowId>(i + 1);
    senders.push_back(std::make_unique<CreditSender>(sim, topo.sender(i),
                                                     topo.receiver(0).id(), flow,
                                                     CreditSender::Config{}));
    receiver.accept_flow(flow, topo.sender(i).id());
  }
  for (auto& s : senders) s->add_app_data(1'000'000);

  // Mid-transfer, the four flows should have received nearly equal bytes.
  sim.run_until(2_ms);
  std::vector<std::int64_t> got;
  for (int i = 0; i < 4; ++i) got.push_back(receiver.received_bytes(i + 1));
  const auto [lo, hi] = std::minmax_element(got.begin(), got.end());
  EXPECT_GT(*lo, 0);
  EXPECT_LE(*hi - *lo, 2 * kMss);

  sim.run_until(10_s);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(receiver.received_bytes(i + 1), 1'000'000);
}

TEST(CreditTransport, DriverIsDeterministic) {
  auto run = [] {
    Simulator sim;
    net::Dumbbell topo{sim, rdt_topology(50)};
    CreditIncastDriver::Config cfg;
    cfg.num_flows = 50;
    cfg.num_bursts = 2;
    cfg.burst_duration = 2_ms;
    CreditIncastDriver driver{sim, topo, cfg, 3};
    driver.start();
    sim.run_until(5_s);
    std::vector<std::int64_t> fp;
    for (const auto& b : driver.bursts()) fp.push_back(b.completed.ns());
    fp.push_back(driver.receiver().grants_sent());
    fp.push_back(driver.total_rts());
    return fp;
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace incast::rdt
