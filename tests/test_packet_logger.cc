// Tests for the per-packet event logger.
#include "telemetry/packet_logger.h"

#include <gtest/gtest.h>

#include <sstream>

#include "net/topology.h"
#include "obs/hub.h"
#include "tcp/tcp_connection.h"

namespace incast::telemetry {
namespace {

using sim::Time;
using namespace incast::sim::literals;

TEST(PacketLogger, RecordsFieldsOfEachPacket) {
  PacketLogger log;
  net::Packet p = net::make_data_packet(0, 1, 7, 1460, 1460);
  p.ecn = net::Ecn::kCe;
  p.is_retransmit = true;
  log.on_ingress(p, 5_us);
  log.on_ingress(net::make_ack_packet(1, 0, 7, 2920, false), 6_us);

  // events() returns a copy (the ring is unwrapped oldest-first).
  const auto evs = log.events();
  ASSERT_EQ(evs.size(), 2u);
  const auto& d = evs[0];
  EXPECT_EQ(d.at, 5_us);
  EXPECT_EQ(d.flow, 7u);
  EXPECT_EQ(d.seq, 1460);
  EXPECT_EQ(d.payload_bytes, 1460);
  EXPECT_TRUE(d.ce);
  EXPECT_TRUE(d.retransmit);
  EXPECT_FALSE(d.is_ack);
  const auto& a = evs[1];
  EXPECT_TRUE(a.is_ack);
  EXPECT_EQ(a.ack, 2920);
}

TEST(PacketLogger, RingEvictsOldestBeyondCapacity) {
  PacketLogger log{3};
  for (int i = 0; i < 5; ++i) {
    log.on_ingress(net::make_data_packet(0, 1, static_cast<net::FlowId>(i), 0, 100),
                   Time::microseconds(static_cast<double>(i)));
  }
  EXPECT_EQ(log.total_observed(), 5u);
  EXPECT_EQ(log.evicted(), 2u);
  const auto evs = log.events();
  ASSERT_EQ(evs.size(), 3u);
  EXPECT_EQ(evs.front().flow, 2u);  // 0 and 1 evicted
  EXPECT_EQ(evs.back().flow, 4u);
}

TEST(PacketLogger, MirrorsPacketsIntoTracerWhenHubAttached) {
  obs::Hub hub;
  hub.tracer().set_enabled(true);
  PacketLogger log;
  log.set_hub(&hub);
  log.on_ingress(net::make_data_packet(0, 1, 7, 1460, 1460), 5_us);
  log.on_ingress(net::make_ack_packet(1, 0, 7, 2920, false), 6_us);

  const auto& traced = hub.tracer().events();
  ASSERT_EQ(traced.size(), 2u);
  EXPECT_EQ(traced[0].name, "pkt.data");
  EXPECT_EQ(traced[0].tid, obs::kFlowTidBase + 7u);
  EXPECT_EQ(traced[0].arg1_value, 1460);  // seq
  EXPECT_EQ(traced[1].name, "pkt.ack");

  // A disabled tracer mirrors nothing (zero-overhead path).
  hub.tracer().set_enabled(false);
  log.on_ingress(net::make_data_packet(0, 1, 7, 2920, 1460), 7_us);
  EXPECT_EQ(hub.tracer().events().size(), 2u);
  EXPECT_EQ(log.total_observed(), 3u);
}

TEST(PacketLogger, ClearResets) {
  PacketLogger log;
  log.on_ingress(net::make_data_packet(0, 1, 1, 0, 100), 1_us);
  log.clear();
  EXPECT_TRUE(log.events().empty());
  EXPECT_EQ(log.total_observed(), 0u);
}

TEST(PacketLogger, CsvFormat) {
  PacketLogger log;
  net::Packet p = net::make_data_packet(0, 1, 3, 2920, 1460);
  p.ecn = net::Ecn::kCe;
  log.on_ingress(p, Time::nanoseconds(1234));
  std::stringstream ss;
  log.write_csv(ss);
  std::string line;
  std::getline(ss, line);
  EXPECT_EQ(line, "t_ns,flow,seq,ack,payload,is_ack,ce,retx");
  std::getline(ss, line);
  EXPECT_EQ(line, "1234,3,2920,0,1460,0,1,0");
}

TEST(PacketLogger, CapturesALiveConnection) {
  sim::Simulator sim;
  net::Dumbbell topo{sim, net::DumbbellConfig{.num_senders = 1}};
  PacketLogger log;
  topo.receiver(0).add_ingress_tap(&log);

  tcp::TcpConfig cfg;
  cfg.cc = tcp::CcAlgorithm::kDctcp;
  tcp::TcpConnection conn{sim, topo.sender(0), topo.receiver(0), 1, cfg};
  conn.sender().add_app_data(100 * 1460);
  sim.run();

  // Exactly the 100 data segments arrive at the receiver (no loss here),
  // in order.
  EXPECT_EQ(log.total_observed(), 100u);
  std::int64_t prev_seq = -1;
  for (const auto& e : log.events()) {
    EXPECT_GT(e.seq, prev_seq);
    prev_seq = e.seq;
  }
}

}  // namespace
}  // namespace incast::telemetry
