// Tests for sim::InlineFunction: the kernel's allocation-free callback.
#include "sim/inline_function.h"

#include <gtest/gtest.h>

#include <cstddef>
#include <utility>

namespace incast::sim {
namespace {

TEST(InlineFunction, DefaultIsEmpty) {
  InlineFunction f;
  EXPECT_FALSE(f);
}

TEST(InlineFunction, CallsTheStoredCallable) {
  int hits = 0;
  InlineFunction f{[&hits] { ++hits; }};
  ASSERT_TRUE(f);
  f();
  f();
  EXPECT_EQ(hits, 2);
}

TEST(InlineFunction, MoveTransfersOwnership) {
  int hits = 0;
  InlineFunction a{[&hits] { ++hits; }};
  InlineFunction b{std::move(a)};
  EXPECT_FALSE(a);  // NOLINT(bugprone-use-after-move): the contract under test
  ASSERT_TRUE(b);
  b();
  EXPECT_EQ(hits, 1);
}

TEST(InlineFunction, MoveAssignReplacesAndDestroysTheOldTarget) {
  int destroyed = 0;
  struct CountsDestruction {
    int* destroyed;
    bool moved_from{false};
    CountsDestruction(int* d) : destroyed{d} {}
    CountsDestruction(CountsDestruction&& o) noexcept
        : destroyed{o.destroyed} {
      o.moved_from = true;
    }
    ~CountsDestruction() {
      if (!moved_from) ++*destroyed;
    }
    void operator()() const {}
  };
  {
    InlineFunction a{CountsDestruction{&destroyed}};
    ASSERT_EQ(destroyed, 0);
    a = InlineFunction{[] {}};  // old target must be destroyed exactly once
    EXPECT_EQ(destroyed, 1);
  }
  EXPECT_EQ(destroyed, 1);
}

TEST(InlineFunction, ResetReleasesTheTarget) {
  int destroyed = 0;
  struct CountsDestruction {
    int* destroyed;
    bool moved_from{false};
    CountsDestruction(int* d) : destroyed{d} {}
    CountsDestruction(CountsDestruction&& o) noexcept
        : destroyed{o.destroyed} {
      o.moved_from = true;
    }
    ~CountsDestruction() {
      if (!moved_from) ++*destroyed;
    }
    void operator()() const {}
  };
  InlineFunction f{CountsDestruction{&destroyed}};
  f.reset();
  EXPECT_FALSE(f);
  EXPECT_EQ(destroyed, 1);
  f.reset();  // idempotent
  EXPECT_EQ(destroyed, 1);
}

TEST(InlineFunction, HoldsACaptureUpToTheBudget) {
  // A capture of exactly kCaptureBudget bytes must fit (the static_assert
  // rejects anything larger at compile time).
  struct Fat {
    std::byte payload[InlineFunction::kCaptureBudget - sizeof(int*)];
    int* out;
    void operator()() const { *out = 42; }
  };
  static_assert(sizeof(Fat) == InlineFunction::kCaptureBudget);
  int result = 0;
  InlineFunction f{Fat{{}, &result}};
  f();
  EXPECT_EQ(result, 42);
}

TEST(InlineFunction, SelfContainedStateSurvivesTheMove) {
  // The stored callable's state lives inside the buffer, so a moved
  // function must carry it along (relocate, not re-reference).
  struct Counter {
    int count{0};
    int* out;
    void operator()() { *out = ++count; }
  };
  int out = 0;
  InlineFunction a{Counter{0, &out}};
  a();
  EXPECT_EQ(out, 1);
  InlineFunction b{std::move(a)};
  b();
  EXPECT_EQ(out, 2);  // count continued from the moved state
}

}  // namespace
}  // namespace incast::sim
