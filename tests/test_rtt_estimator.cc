// Tests for the RFC 6298 RTT estimator.
#include "tcp/rtt_estimator.h"

#include <gtest/gtest.h>

namespace incast::tcp {
namespace {

using sim::Time;
using namespace incast::sim::literals;

RttEstimator::Config loose() {
  return {.initial_rto = 1_ms, .min_rto = Time::microseconds(1), .max_rto = 120_s};
}

TEST(RttEstimator, InitialRtoBeforeAnySample) {
  RttEstimator est{{.initial_rto = 3_ms, .min_rto = 1_ms, .max_rto = 120_s}};
  EXPECT_FALSE(est.has_sample());
  EXPECT_EQ(est.rto(), 3_ms);
}

TEST(RttEstimator, FirstSampleInitializesSrttAndRttvar) {
  RttEstimator est{loose()};
  est.add_sample(100_us);
  EXPECT_TRUE(est.has_sample());
  EXPECT_EQ(est.srtt(), 100_us);
  EXPECT_EQ(est.rttvar(), 50_us);
  // RTO = SRTT + 4 * RTTVAR = 100 + 200 = 300 us.
  EXPECT_EQ(est.rto(), 300_us);
}

TEST(RttEstimator, EwmaConvergesToConstantRtt) {
  RttEstimator est{loose()};
  for (int i = 0; i < 100; ++i) est.add_sample(200_us);
  EXPECT_NEAR(est.srtt().us(), 200.0, 1.0);
  EXPECT_NEAR(est.rttvar().us(), 0.0, 2.0);
  EXPECT_NEAR(est.rto().us(), 200.0, 10.0);
}

TEST(RttEstimator, SecondSampleFollowsRfcFormulas) {
  RttEstimator est{loose()};
  est.add_sample(100_us);
  est.add_sample(200_us);
  // RTTVAR = 0.75*50 + 0.25*|100-200| = 62.5 us
  // SRTT   = 0.875*100 + 0.125*200 = 112.5 us
  EXPECT_NEAR(est.rttvar().us(), 62.5, 0.01);
  EXPECT_NEAR(est.srtt().us(), 112.5, 0.01);
}

TEST(RttEstimator, MinRtoClampsUpward) {
  // The Linux-style 200 ms floor: with datacenter RTTs of tens of us, the
  // RTO is dominated by min_rto — the Mode 3 effect.
  RttEstimator est{{.initial_rto = 1_ms, .min_rto = 200_ms, .max_rto = 120_s}};
  for (int i = 0; i < 50; ++i) est.add_sample(30_us);
  EXPECT_EQ(est.rto(), 200_ms);
}

TEST(RttEstimator, MaxRtoClampsDownward) {
  RttEstimator est{{.initial_rto = 1_ms, .min_rto = 1_ms, .max_rto = 2_s}};
  for (int i = 0; i < 5; ++i) est.add_sample(10_s);
  EXPECT_EQ(est.rto(), 2_s);
}

TEST(RttEstimator, VariableSamplesInflateRto) {
  RttEstimator est{loose()};
  for (int i = 0; i < 50; ++i) est.add_sample(i % 2 == 0 ? 100_us : 300_us);
  // High variance keeps RTO well above the mean RTT.
  EXPECT_GT(est.rto(), 400_us);
}

TEST(RttEstimator, InitialRtoRespectsClamps) {
  RttEstimator est{{.initial_rto = 1_ms, .min_rto = 5_ms, .max_rto = 120_s}};
  EXPECT_EQ(est.rto(), 5_ms);
}

}  // namespace
}  // namespace incast::tcp
