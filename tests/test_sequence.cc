// Tests for wrap-safe 32-bit sequence arithmetic.
#include "tcp/sequence.h"

#include <gtest/gtest.h>

#include <cstdint>

namespace incast::tcp {
namespace {

TEST(SeqNum32, BasicOrdering) {
  const SeqNum32 a{100};
  const SeqNum32 b{200};
  EXPECT_LT(a, b);
  EXPECT_GT(b, a);
  EXPECT_LE(a, a);
  EXPECT_GE(b, b);
  EXPECT_EQ(a, SeqNum32{100});
}

TEST(SeqNum32, OrderingAcrossWrap) {
  const SeqNum32 before_wrap{0xFFFFFFF0u};
  const SeqNum32 after_wrap{0x10u};
  // 0x10 is "ahead of" 0xFFFFFFF0 in serial-number arithmetic.
  EXPECT_LT(before_wrap, after_wrap);
  EXPECT_GT(after_wrap, before_wrap);
}

TEST(SeqNum32, AdditionWraps) {
  const SeqNum32 s{0xFFFFFFFEu};
  EXPECT_EQ((s + 4u).raw(), 2u);
}

TEST(SeqNum32, DifferenceIsSigned) {
  const SeqNum32 a{100};
  const SeqNum32 b{200};
  EXPECT_EQ(b - a, 100);
  EXPECT_EQ(a - b, -100);
  // Across the wrap point.
  const SeqNum32 hi{0xFFFFFFFFu};
  const SeqNum32 lo{0x0u};
  EXPECT_EQ(lo - hi, 1);
  EXPECT_EQ(hi - lo, -1);
}

TEST(SeqNum32, InWindow) {
  const SeqNum32 lo{1000};
  EXPECT_TRUE(SeqNum32{1000}.in_window(lo, 10));
  EXPECT_TRUE(SeqNum32{1009}.in_window(lo, 10));
  EXPECT_FALSE(SeqNum32{1010}.in_window(lo, 10));
  EXPECT_FALSE(SeqNum32{999}.in_window(lo, 10));
}

TEST(SeqNum32, InWindowAcrossWrap) {
  const SeqNum32 lo{0xFFFFFFFCu};
  EXPECT_TRUE(SeqNum32{0xFFFFFFFDu}.in_window(lo, 16));
  EXPECT_TRUE(SeqNum32{0x5u}.in_window(lo, 16));
  EXPECT_FALSE(SeqNum32{0x20u}.in_window(lo, 16));
}

TEST(SeqNum32, WireConversionRoundTrip) {
  const std::int64_t offset = 123'456'789;
  const SeqNum32 wire = to_wire_seq(offset, /*isn=*/777);
  EXPECT_EQ(from_wire_seq(wire, /*reference=*/offset - 1000, 777), offset);
}

TEST(SeqNum32, WireConversionRoundTripBeyond32Bits) {
  // Stream offsets past 4 GiB still unwrap correctly given a nearby
  // reference.
  const std::int64_t offset = (1LL << 33) + 98'765;
  const SeqNum32 wire = to_wire_seq(offset);
  EXPECT_EQ(from_wire_seq(wire, offset - 12'345), offset);
  EXPECT_EQ(from_wire_seq(wire, offset + 12'345), offset);
}

// Property sweep: for many (offset, delta) pairs, unwrapping recovers the
// original offset as long as the reference is within 2^31.
class SeqRoundTrip : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(SeqRoundTrip, RecoversOffsetNearReference) {
  const std::int64_t offset = GetParam();
  for (const std::int64_t drift :
       {-2'000'000'000LL, -1'000'000LL, -1LL, 0LL, 1LL, 1'000'000LL, 2'000'000'000LL}) {
    const std::int64_t reference = offset + drift;
    if (reference < 0) continue;
    const SeqNum32 wire = to_wire_seq(offset, 42);
    ASSERT_EQ(from_wire_seq(wire, reference, 42), offset)
        << "offset=" << offset << " drift=" << drift;
  }
}

INSTANTIATE_TEST_SUITE_P(Offsets, SeqRoundTrip,
                         ::testing::Values(0LL, 1LL, 1460LL, 0x7FFFFFFFLL, 0x80000000LL,
                                           0xFFFFFFFFLL, 0x100000000LL, 0x123456789ALL));

}  // namespace
}  // namespace incast::tcp
