// Physics sweep: the paper's "queue law" for DCTCP incast, as a
// parameterized property over the flow count N.
//
// With K = 65 packets and BDP = 25 packets on the Section 4 dumbbell:
//   N <~ K + BDP      — healthy: the queue sits near K;
//   K+BDP <~ N <~ ~800 — degenerate point: standing queue ~= N - BDP
//                       (Section 4.1.2's closed form), lossless;
//   N ~ 1000+         — overflow: drops appear (Mode 3). (For these short
//                       5 ms bursts the start-of-burst spike moves the
//                       overflow boundary below the steady-state queue +
//                       BDP bound that holds for 15 ms bursts.)
// Throughout the lossless range, completion time stays near the optimal
// burst length.
#include <gtest/gtest.h>

#include "core/incast_experiment.h"

namespace incast::core {
namespace {

using namespace incast::sim::literals;

constexpr double kBdpPackets = 25.0;
constexpr double kCapacity = 1333.0;

class QueueLaw : public ::testing::TestWithParam<int> {};

TEST_P(QueueLaw, StandingQueueFollowsTheClosedForm) {
  const int flows = GetParam();

  IncastExperimentConfig cfg;
  cfg.num_flows = flows;
  cfg.burst_duration = 5_ms;
  cfg.num_bursts = 3;
  cfg.discard_bursts = 1;
  cfg.tcp.cc = tcp::CcAlgorithm::kDctcp;
  cfg.tcp.rtt.min_rto = 200_ms;
  cfg.seed = 3;
  const auto r = run_incast_experiment(cfg);

  if (flows <= 80) {
    // Healthy regime: near the marking threshold, give or take the
    // oscillation amplitude; no drops; optimal completion.
    EXPECT_GT(r.avg_queue_packets, 30.0) << flows;
    EXPECT_LT(r.avg_queue_packets, 130.0) << flows;
    EXPECT_EQ(r.queue_drops, 0) << flows;
    EXPECT_LT(r.avg_bct_ms, 6.5) << flows;
  } else if (flows <= 800) {
    // Degenerate point: every flow pinned at 1 MSS, standing queue
    // ~= flows - BDP (within 15%), still lossless and near-optimal BCT.
    const double expected = static_cast<double>(flows) - kBdpPackets;
    EXPECT_GT(r.avg_queue_packets, expected * 0.85) << flows;
    EXPECT_LT(r.avg_queue_packets, expected * 1.15) << flows;
    EXPECT_EQ(r.queue_drops, 0) << flows;
    EXPECT_EQ(r.timeouts, 0) << flows;
    EXPECT_LT(r.avg_bct_ms, 6.5) << flows;
  } else {
    // Past capacity + BDP: overflow and RTO-bound recovery.
    EXPECT_GT(r.queue_drops, 0) << flows;
    EXPECT_GT(r.timeouts, 0) << flows;
    EXPECT_GT(r.max_bct_ms, 100.0) << flows;
  }

  // Universal invariants.
  EXPECT_LE(r.peak_queue_packets, kCapacity);
  EXPECT_GE(r.avg_queue_packets, 0.0);
}

INSTANTIATE_TEST_SUITE_P(FlowCounts, QueueLaw,
                         ::testing::Values(40, 60, 150, 300, 500, 800, 1000, 1500),
                         ::testing::PrintToStringParamName());

}  // namespace
}  // namespace incast::core
