// Tests for the crash-safe checkpoint/resume layer: core::Json round-trips,
// config fingerprints, TaskJournal load/append semantics (truncation
// tolerance, corruption refusal, fingerprint refusal), and the end-to-end
// guarantee — a sweep killed mid-run and resumed from its journal produces
// results identical to an uninterrupted run. The resume suite is named
// "SweepJournal" so the TSan CI leg exercises the journal's worker-thread
// appends.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/error.h"
#include "core/fleet_experiment.h"
#include "core/json.h"
#include "core/resilience_experiment.h"
#include "core/task_journal.h"
#include "workload/service_profile.h"

namespace incast::core {
namespace {

using namespace incast::sim::literals;

std::string temp_path(const char* name) {
  const std::string path = ::testing::TempDir() + "/" + name;
  std::remove(path.c_str());
  return path;
}

std::string read_file(const std::string& path) {
  std::ifstream in{path};
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

// --- Json ---

TEST(Json, RoundTripsScalarsAndContainers) {
  Json::Object o;
  o["null"] = Json{};
  o["t"] = Json{true};
  o["f"] = Json{false};
  o["int"] = Json{std::int64_t{-9223372036854775807LL}};
  o["pi"] = Json{3.141592653589793};
  o["s"] = Json{"quote\" slash\\ tab\t newline\n"};
  o["arr"] = Json{Json::Array{Json{1}, Json{"two"}, Json{Json::Array{}}}};
  const Json original{std::move(o)};

  const Json reparsed = Json::parse(original.dump());
  EXPECT_EQ(reparsed.dump(), original.dump());
  EXPECT_TRUE(reparsed.at("null").is_null());
  EXPECT_TRUE(reparsed.at("t").as_bool());
  EXPECT_EQ(reparsed.at("int").as_int(), -9223372036854775807LL);
  EXPECT_DOUBLE_EQ(reparsed.at("pi").as_double(), 3.141592653589793);
  EXPECT_EQ(reparsed.at("s").as_string(), "quote\" slash\\ tab\t newline\n");
  EXPECT_EQ(reparsed.at("arr").as_array().size(), 3u);
}

TEST(Json, ObjectKeysSerializeSorted) {
  Json::Object o;
  o["zebra"] = Json{1};
  o["alpha"] = Json{2};
  o["mid"] = Json{3};
  EXPECT_EQ(Json{std::move(o)}.dump(), R"({"alpha":2,"mid":3,"zebra":1})");
}

TEST(Json, IntegralDoublesStayDoublesAcrossRoundTrip) {
  // 2.0 must not reparse as the integer 2 — the dump appends ".0".
  const Json d{2.0};
  EXPECT_EQ(d.dump(), "2.0");
  EXPECT_TRUE(Json::parse(d.dump()).is_double());
}

TEST(Json, ParseRejectsGarbage) {
  EXPECT_THROW((void)Json::parse("{\"a\":1} trailing"), std::runtime_error);
  EXPECT_THROW((void)Json::parse("{\"a\":"), std::runtime_error);
  EXPECT_THROW((void)Json::parse("{\"unterminated"), std::runtime_error);
  EXPECT_THROW((void)Json::parse(""), std::runtime_error);
  EXPECT_THROW((void)Json::parse("nul"), std::runtime_error);
}

TEST(Json, CheckedAccessorsThrowOnMismatch) {
  const Json s{"text"};
  EXPECT_THROW((void)s.as_int(), std::runtime_error);
  EXPECT_THROW((void)s.at("key"), std::runtime_error);
  const Json o{Json::Object{}};
  EXPECT_THROW((void)o.at("absent"), std::runtime_error);
  EXPECT_EQ(o.find("absent"), nullptr);
}

// --- Fingerprints ---

TEST(TaskJournalFingerprint, StableForIdenticalConfigsSensitiveToKnobs) {
  FleetConfig a;
  a.profile = workload::service_by_name("messaging");
  FleetConfig b = a;
  EXPECT_EQ(fnv1a(canonical_config(a)), fnv1a(canonical_config(b)));

  // Result-determining knob: fingerprint must move.
  b.base_seed += 1;
  EXPECT_NE(fnv1a(canonical_config(a)), fnv1a(canonical_config(b)));

  // Execution knobs: fingerprint must NOT move (resuming at a different
  // --jobs or retry policy is explicitly supported).
  FleetConfig c = a;
  c.jobs = 16;
  c.sweep.fail_fast = false;
  c.sweep.max_attempts = 5;
  c.fail_cell_for_test = 3;
  EXPECT_EQ(fnv1a(canonical_config(a)), fnv1a(canonical_config(c)));
}

TEST(TaskJournalFingerprint, ResilienceCoversSweepAxes) {
  ResilienceConfig a;
  a.drop_rates = {0.0, 0.001};
  ResilienceConfig b = a;
  EXPECT_EQ(fnv1a(canonical_config(a)), fnv1a(canonical_config(b)));
  b.drop_rates.push_back(0.01);
  EXPECT_NE(fnv1a(canonical_config(a)), fnv1a(canonical_config(b)));
  ResilienceConfig c = a;
  c.flap_durations = {2_ms};
  EXPECT_NE(fnv1a(canonical_config(a)), fnv1a(canonical_config(c)));
}

// --- TaskJournal file semantics ---

JournalHeader test_header(std::uint64_t fingerprint = 123, std::uint64_t tasks = 4) {
  JournalHeader h;
  h.command = "fleet";
  h.fingerprint = fingerprint;
  h.tasks = tasks;
  return h;
}

Json payload_with(int marker) {
  Json::Object o;
  o["marker"] = Json{marker};
  return Json{std::move(o)};
}

TEST(TaskJournal, RecordsPersistAcrossReopen) {
  const std::string path = temp_path("journal_reopen.jsonl");
  {
    TaskJournal j;
    j.open(path, test_header());
    EXPECT_TRUE(j.active());
    EXPECT_EQ(j.completed_count(), 0u);
    j.record_ok(1, 777, payload_with(11));
    j.record_ok(3, 778, payload_with(33));
    sim::TaskFailure f;
    f.index = 2;
    f.seed = 779;
    f.category = sim::FailureCategory::kAudit;
    f.message = "conservation: ledger imbalance";
    f.attempts = 1;
    j.record_failure(f);
  }
  TaskJournal j;
  j.open(path, test_header());
  EXPECT_EQ(j.completed_count(), 2u);
  EXPECT_TRUE(j.completed(1));
  EXPECT_TRUE(j.completed(3));
  // Failed tasks are NOT completed: a resume run retries them.
  EXPECT_FALSE(j.completed(2));
  EXPECT_FALSE(j.completed(0));
  ASSERT_NE(j.payload(1), nullptr);
  EXPECT_EQ(j.payload(1)->at("marker").as_int(), 11);
  EXPECT_EQ(j.payload(0), nullptr);
  std::remove(path.c_str());
}

TEST(TaskJournal, ToleratesTruncatedFinalLine) {
  const std::string path = temp_path("journal_truncated.jsonl");
  {
    TaskJournal j;
    j.open(path, test_header());
    j.record_ok(0, 1, payload_with(0));
    j.record_ok(1, 2, payload_with(1));
  }
  {
    // Chop the file mid-way through the last record, as a kill -9 would.
    std::string contents = read_file(path);
    contents.resize(contents.size() - 10);
    std::ofstream out{path, std::ios::trunc};
    out << contents;
  }
  {
    TaskJournal j;
    j.open(path, test_header());
    EXPECT_EQ(j.completed_count(), 1u);
    EXPECT_TRUE(j.completed(0));
    EXPECT_FALSE(j.completed(1));
    // Appending after a truncated tail must start on a fresh line, not fuse
    // onto the partial record.
    j.record_ok(1, 2, payload_with(1));
  }
  TaskJournal j;
  j.open(path, test_header());
  EXPECT_EQ(j.completed_count(), 2u);
  EXPECT_TRUE(j.completed(1));
  std::remove(path.c_str());
}

TEST(TaskJournal, RefusesFingerprintMismatch) {
  const std::string path = temp_path("journal_mismatch.jsonl");
  {
    TaskJournal j;
    j.open(path, test_header(/*fingerprint=*/123));
    j.record_ok(0, 1, payload_with(0));
  }
  TaskJournal j;
  try {
    j.open(path, test_header(/*fingerprint=*/456));
    FAIL() << "expected core::Error";
  } catch (const Error& e) {
    EXPECT_EQ(e.category(), ErrorCategory::kConfig);
  }
  // Different task count is also a config mismatch.
  TaskJournal j2;
  try {
    j2.open(path, test_header(/*fingerprint=*/123, /*tasks=*/9));
    FAIL() << "expected core::Error";
  } catch (const Error& e) {
    EXPECT_EQ(e.category(), ErrorCategory::kConfig);
  }
  std::remove(path.c_str());
}

TEST(TaskJournal, RefusesCorruptMidFileRecord) {
  const std::string path = temp_path("journal_corrupt.jsonl");
  {
    TaskJournal j;
    j.open(path, test_header());
    j.record_ok(0, 1, payload_with(0));
    j.record_ok(1, 2, payload_with(1));
  }
  {
    // Corrupt the middle record — unlike a truncated tail, this means the
    // file is damaged and silently skipping it could merge wrong results.
    std::string contents = read_file(path);
    const std::size_t second_line = contents.find('\n') + 1;
    contents[second_line + 5] = '\xff';
    std::ofstream out{path, std::ios::trunc};
    out << contents;
  }
  TaskJournal j;
  try {
    j.open(path, test_header());
    FAIL() << "expected core::Error";
  } catch (const Error& e) {
    EXPECT_EQ(e.category(), ErrorCategory::kIo);
  }
  std::remove(path.c_str());
}

TEST(TaskJournal, RecordOkOnCompletedIndexIsNoOp) {
  const std::string path = temp_path("journal_noop.jsonl");
  {
    TaskJournal j;
    j.open(path, test_header());
    j.record_ok(0, 1, payload_with(0));
  }
  const std::string before = read_file(path);
  {
    // A resume run deliberately re-runs some tasks (fleet cell 0); their
    // record_ok must not grow the journal.
    TaskJournal j;
    j.open(path, test_header());
    j.record_ok(0, 1, payload_with(0));
  }
  EXPECT_EQ(read_file(path), before);
  std::remove(path.c_str());
}

// --- Payload round-trips ---

TEST(TaskJournal, HostTraceResultPayloadRoundTrips) {
  HostTraceResult r;
  r.host = 3;
  r.snapshot = 2;
  r.alt_regime = true;
  r.avg_utilization = 0.3125;
  r.queue_drops = 17;
  r.generated_bursts = 42;
  r.events_processed = 123456789;
  r.peak_events_pending = 512;
  r.slab_high_water = 1024;
  r.audit_violations = 1;
  analysis::Burst b;
  b.first_bin = 5;
  b.num_bins = 3;
  b.bytes = 100000;
  b.marked_bytes = 5000;
  b.retx_bytes = 120;
  b.max_active_flows = 9;
  b.peak_queue_packets = 77;
  r.summary.bursts.push_back(b);
  r.summary.trace_seconds = 0.25;

  // Through a real serialize -> dump -> parse -> deserialize cycle.
  const HostTraceResult back =
      host_trace_from_payload(Json::parse(to_journal_payload(r).dump()));
  EXPECT_EQ(back.host, r.host);
  EXPECT_EQ(back.snapshot, r.snapshot);
  EXPECT_EQ(back.alt_regime, r.alt_regime);
  EXPECT_DOUBLE_EQ(back.avg_utilization, r.avg_utilization);
  EXPECT_EQ(back.queue_drops, r.queue_drops);
  EXPECT_EQ(back.generated_bursts, r.generated_bursts);
  EXPECT_EQ(back.events_processed, r.events_processed);
  EXPECT_EQ(back.peak_events_pending, r.peak_events_pending);
  EXPECT_EQ(back.slab_high_water, r.slab_high_water);
  EXPECT_EQ(back.audit_violations, r.audit_violations);
  ASSERT_EQ(back.summary.bursts.size(), 1u);
  EXPECT_EQ(back.summary.bursts[0].bytes, b.bytes);
  EXPECT_EQ(back.summary.bursts[0].peak_queue_packets, b.peak_queue_packets);
  EXPECT_DOUBLE_EQ(back.summary.trace_seconds, r.summary.trace_seconds);
}

TEST(TaskJournal, ResiliencePointPayloadRoundTrips) {
  ResiliencePoint p;
  p.drop_rate = 0.001;
  p.flap_duration = 2_ms;
  p.goodput_rel = 0.875;
  p.recovery_after_flap_ms = 1.5;
  p.mode = DctcpMode::kCollapse;
  p.result.avg_bct_ms = 3.25;
  p.result.max_bct_ms = 9.5;
  p.result.timeouts = 4;
  p.result.fast_retransmits = 11;
  p.result.retransmitted_packets = 23;
  p.result.queue_drops = 7;
  p.result.injected_drops = 19;
  p.result.injected_corruptions = 2;
  p.result.events_processed = 987654;

  const ResiliencePoint back =
      resilience_point_from_payload(Json::parse(to_journal_payload(p).dump()));
  EXPECT_DOUBLE_EQ(back.drop_rate, p.drop_rate);
  EXPECT_EQ(back.flap_duration.ns(), p.flap_duration.ns());
  EXPECT_DOUBLE_EQ(back.goodput_rel, p.goodput_rel);
  EXPECT_DOUBLE_EQ(back.recovery_after_flap_ms, p.recovery_after_flap_ms);
  EXPECT_EQ(back.mode, DctcpMode::kCollapse);
  EXPECT_DOUBLE_EQ(back.result.avg_bct_ms, p.result.avg_bct_ms);
  EXPECT_EQ(back.result.timeouts, p.result.timeouts);
  EXPECT_EQ(back.result.retransmitted_packets, p.result.retransmitted_packets);
  EXPECT_EQ(back.result.injected_drops, p.result.injected_drops);
  EXPECT_EQ(back.result.events_processed, p.result.events_processed);
}

TEST(TaskJournal, ScalingPointPayloadRoundTrips) {
  ScalingPoint p;
  p.degree = 512;
  p.fct_ms = 12.625;
  p.optimal_ms = 3.5;
  p.overhead_pct = 260.71;
  p.completed_flows = 512;
  p.timeouts = 3;
  p.retransmits = 91;
  p.queue_drops = 88;
  p.flow_state_bytes = 1'000'000;
  p.packet_pool_bytes = 2'000'000;
  p.routing_bytes = 300'000;
  p.event_bytes = 40'000;
  p.bytes_per_flow = 6523;
  p.events_processed = 777'777;
  p.audit_violations = 1;
  p.traced_flows = 256;
  p.flow_trace_incomplete = 2;
  p.int_hop_overflows = 5;
  obs::TailAttributionRow row;
  row.pctl = "p99";
  row.flows = 256;
  row.flow.flow = 12345;
  row.flow.fct_ns = 12'625'000;
  row.flow.serialization_ns = 1'000'000;
  row.flow.q_tor_ns = 9'000'000;
  row.flow.rto_wait_ns = 2'000'000;
  row.flow.other_ns = 625'000;
  p.fct_rows.push_back(row);
  // Parallel diagnostics are execution-only and must NOT survive the
  // journal: a resumed point may run under a different --domains.
  p.parallel_domains = 8;
  p.windows = 1000;
  p.packets_bridged = 5000;

  const ScalingPoint back =
      scaling_point_from_payload(Json::parse(to_journal_payload(p).dump()));
  EXPECT_EQ(back.degree, p.degree);
  EXPECT_DOUBLE_EQ(back.fct_ms, p.fct_ms);
  EXPECT_DOUBLE_EQ(back.optimal_ms, p.optimal_ms);
  EXPECT_DOUBLE_EQ(back.overhead_pct, p.overhead_pct);
  EXPECT_EQ(back.completed_flows, p.completed_flows);
  EXPECT_EQ(back.timeouts, p.timeouts);
  EXPECT_EQ(back.retransmits, p.retransmits);
  EXPECT_EQ(back.queue_drops, p.queue_drops);
  EXPECT_EQ(back.flow_state_bytes, p.flow_state_bytes);
  EXPECT_EQ(back.packet_pool_bytes, p.packet_pool_bytes);
  EXPECT_EQ(back.routing_bytes, p.routing_bytes);
  EXPECT_EQ(back.event_bytes, p.event_bytes);
  EXPECT_EQ(back.bytes_per_flow, p.bytes_per_flow);
  EXPECT_EQ(back.events_processed, p.events_processed);
  EXPECT_EQ(back.audit_violations, p.audit_violations);
  EXPECT_EQ(back.traced_flows, p.traced_flows);
  EXPECT_EQ(back.flow_trace_incomplete, p.flow_trace_incomplete);
  EXPECT_EQ(back.int_hop_overflows, p.int_hop_overflows);
  ASSERT_EQ(back.fct_rows.size(), 1u);
  EXPECT_STREQ(back.fct_rows[0].pctl, "p99");  // static-literal mapping
  EXPECT_EQ(back.fct_rows[0].flows, row.flows);
  EXPECT_EQ(back.fct_rows[0].flow.flow, row.flow.flow);
  EXPECT_EQ(back.fct_rows[0].flow.fct_ns, row.flow.fct_ns);
  EXPECT_EQ(back.fct_rows[0].flow.q_tor_ns, row.flow.q_tor_ns);
  EXPECT_EQ(back.fct_rows[0].flow.rto_wait_ns, row.flow.rto_wait_ns);
  EXPECT_EQ(back.fct_rows[0].flow.other_ns, row.flow.other_ns);
  EXPECT_EQ(back.parallel_domains, 0u);  // excluded by design
  EXPECT_EQ(back.windows, 0u);
  EXPECT_EQ(back.packets_bridged, 0u);
}

TEST(TaskJournal, CollateralPointPayloadRoundTrips) {
  CollateralPoint p;
  p.mode = QueueMode::kTrim;
  p.degree = 128;
  p.victim_goodput_gbps = 9.25;
  p.victim_delivered_bytes = 1'000'000'000;
  p.victim_paused_ms = 0.75;
  p.victim_retransmits = 12;
  p.victim_timeouts = 1;
  p.victim_nacks = 34;
  p.incast_avg_bct_ms = 4.5;
  p.incast_max_bct_ms = 8.125;
  p.incast_timeouts = 9;
  p.queue_drops = 100;
  p.trimmed_packets = 5000;
  p.trimmed_bytes = 7'000'000;
  p.pfc_pause_frames = 0;
  p.pfc_resume_frames = 0;
  p.pfc_overflow_drops = 0;
  p.incast_nacks = 4900;
  p.events_processed = 123'123;
  p.audit_violations = 0;
  p.traced_flows = 64;
  p.flow_trace_incomplete = 0;
  p.int_hop_overflows = 2;
  obs::TailAttributionRow row;
  row.pctl = "p999";
  row.flows = 64;
  row.flow.fct_ns = 8'125'000;
  row.flow.nack_recovery_ns = 4'000'000;
  p.fct_rows.push_back(row);

  const CollateralPoint back =
      collateral_point_from_payload(Json::parse(to_journal_payload(p).dump()));
  EXPECT_EQ(back.mode, QueueMode::kTrim);
  EXPECT_EQ(back.degree, p.degree);
  EXPECT_DOUBLE_EQ(back.victim_goodput_gbps, p.victim_goodput_gbps);
  EXPECT_EQ(back.victim_delivered_bytes, p.victim_delivered_bytes);
  EXPECT_DOUBLE_EQ(back.victim_paused_ms, p.victim_paused_ms);
  EXPECT_EQ(back.victim_retransmits, p.victim_retransmits);
  EXPECT_EQ(back.victim_timeouts, p.victim_timeouts);
  EXPECT_EQ(back.victim_nacks, p.victim_nacks);
  EXPECT_DOUBLE_EQ(back.incast_avg_bct_ms, p.incast_avg_bct_ms);
  EXPECT_DOUBLE_EQ(back.incast_max_bct_ms, p.incast_max_bct_ms);
  EXPECT_EQ(back.incast_timeouts, p.incast_timeouts);
  EXPECT_EQ(back.queue_drops, p.queue_drops);
  EXPECT_EQ(back.trimmed_packets, p.trimmed_packets);
  EXPECT_EQ(back.trimmed_bytes, p.trimmed_bytes);
  EXPECT_EQ(back.incast_nacks, p.incast_nacks);
  EXPECT_EQ(back.events_processed, p.events_processed);
  EXPECT_EQ(back.int_hop_overflows, p.int_hop_overflows);
  ASSERT_EQ(back.fct_rows.size(), 1u);
  EXPECT_STREQ(back.fct_rows[0].pctl, "p999");
  EXPECT_EQ(back.fct_rows[0].flow.nack_recovery_ns, row.flow.nack_recovery_ns);
}

TEST(TaskJournalFingerprint, ScalingCoversEngineIdentityNotDomainCount) {
  ScalingConfig a;
  a.degrees = {1, 2, 8};
  a.domains = 2;
  ScalingConfig b = a;
  b.domains = 8;
  // The parallel engine is byte-identical at any N: a journal written at
  // --domains 2 must resume at --domains 8.
  EXPECT_EQ(canonical_config(a), canonical_config(b));
  // ...but the legacy engine is a different deterministic sequence.
  b.domains = 0;
  EXPECT_NE(canonical_config(a), canonical_config(b));
  // Result-determining knobs all move the fingerprint.
  b = a;
  b.degrees = {1, 2, 4};
  EXPECT_NE(canonical_config(a), canonical_config(b));
  b = a;
  b.bytes_per_flow += 1;
  EXPECT_NE(canonical_config(a), canonical_config(b));
  b = a;
  b.fabric.hosts_per_leaf += 1;
  EXPECT_NE(canonical_config(a), canonical_config(b));
  b = a;
  b.seed += 1;
  EXPECT_NE(canonical_config(a), canonical_config(b));
  // Execution knobs must NOT move it: resuming with different parallelism
  // or output paths is the whole point of the journal.
  b = a;
  b.jobs = 7;
  b.sweep.max_attempts = 9;
  EXPECT_EQ(canonical_config(a), canonical_config(b));
}

TEST(TaskJournalFingerprint, CollateralCoversGridAndModeKnobs) {
  CollateralConfig a;
  a.degrees = {64};
  CollateralConfig b = a;
  b.modes = {QueueMode::kPfc};
  EXPECT_NE(canonical_config(a), canonical_config(b));
  b = a;
  b.degrees = {64, 128};
  EXPECT_NE(canonical_config(a), canonical_config(b));
  b = a;
  b.trim_queue_capacity_packets += 1;
  EXPECT_NE(canonical_config(a), canonical_config(b));
  b = a;
  b.pfc.xoff_bytes += 1;
  EXPECT_NE(canonical_config(a), canonical_config(b));
  b = a;
  b.victim_cwnd_cap_bytes += 1;
  EXPECT_NE(canonical_config(a), canonical_config(b));
  b = a;
  b.jobs = 13;
  EXPECT_EQ(canonical_config(a), canonical_config(b));
}

// --- End-to-end: kill mid-sweep, resume, byte-identical results. Suite is
// --- named "SweepJournal" so the TSan leg covers concurrent appends.

FleetConfig journal_fleet(int jobs) {
  FleetConfig cfg;
  cfg.profile = workload::service_by_name("messaging");
  cfg.profile.max_flows = 40;
  cfg.profile.body_median_flows = 20.0;
  cfg.num_hosts = 3;
  cfg.num_snapshots = 2;
  cfg.trace_duration = 40_ms;
  cfg.jobs = jobs;
  return cfg;
}

std::string fleet_results_fingerprint(const std::vector<HostTraceResult>& results) {
  // The deterministic observables a resumed run must reproduce exactly —
  // serialized through the same payload path the journal itself uses.
  std::string all;
  for (const auto& r : results) all += to_journal_payload(r).dump() + "\n";
  return all;
}

TEST(SweepJournalResume, KilledSweepResumesByteIdentical) {
  // Reference: uninterrupted sequential run.
  const auto reference = FleetExperiment{journal_fleet(1)}.run_all();
  const std::string want = fleet_results_fingerprint(reference);

  for (const int jobs : {1, 4}) {
    const std::string path = temp_path("journal_resume_e2e.jsonl");
    JournalHeader header;
    header.command = "fleet";
    header.tasks = 6;
    header.fingerprint = fnv1a(canonical_config(journal_fleet(jobs)));

    // Phase 1: "crash" after three cells — the journal only ever sees three
    // records, then the process is gone (journal destructor = kill point).
    {
      TaskJournal journal;
      journal.open(path, header);
      auto cfg = journal_fleet(jobs);
      cfg.sweep.fail_fast = false;
      std::atomic<int> recorded{0};
      cfg.on_result = [&](std::size_t index, std::uint64_t seed,
                          const HostTraceResult& r) {
        if (recorded.fetch_add(1) < 3) {
          journal.record_ok(index, seed, to_journal_payload(r));
        }
      };
      (void)FleetExperiment{cfg}.run_all();
    }

    // Phase 2: resume. Cells in the journal replay from their payloads;
    // the rest run fresh. Merged output must match the reference exactly.
    {
      TaskJournal journal;
      journal.open(path, header);
      EXPECT_EQ(journal.completed_count(), 3u) << "jobs=" << jobs;
      auto cfg = journal_fleet(jobs);
      std::atomic<int> replayed{0};
      cfg.resume = [&](std::size_t index, HostTraceResult& out) {
        const Json* payload = journal.payload(index);
        if (payload == nullptr) return false;
        out = host_trace_from_payload(*payload);
        replayed.fetch_add(1);
        return true;
      };
      cfg.on_result = [&](std::size_t index, std::uint64_t seed,
                          const HostTraceResult& r) {
        journal.record_ok(index, seed, to_journal_payload(r));
      };
      const auto resumed = FleetExperiment{cfg}.run_all();
      EXPECT_EQ(replayed.load(), 3) << "jobs=" << jobs;
      EXPECT_EQ(fleet_results_fingerprint(resumed), want) << "jobs=" << jobs;
    }

    // Phase 3: the journal is now complete; a further resume replays
    // everything and still matches.
    {
      TaskJournal journal;
      journal.open(path, header);
      EXPECT_EQ(journal.completed_count(), 6u) << "jobs=" << jobs;
      auto cfg = journal_fleet(jobs);
      cfg.resume = [&](std::size_t index, HostTraceResult& out) {
        const Json* payload = journal.payload(index);
        if (payload == nullptr) return false;
        out = host_trace_from_payload(*payload);
        return true;
      };
      const auto replay = FleetExperiment{cfg}.run_all();
      EXPECT_EQ(fleet_results_fingerprint(replay), want) << "jobs=" << jobs;
    }
    std::remove(path.c_str());
  }
}

// The PR 2 smoke fabric at a tiny ladder, on the windowed domain engine —
// the journal must also hold across a --domains change between runs.
ScalingConfig journal_ladder() {
  ScalingConfig cfg;
  cfg.degrees = {1, 2, 8};
  cfg.fabric.num_pods = 2;
  cfg.fabric.leaves_per_pod = 2;
  cfg.fabric.hosts_per_leaf = 8;
  cfg.fabric.aggs_per_pod = 0;
  cfg.fabric.num_spines = 2;
  cfg.bytes_per_flow = 27'000;
  cfg.seed = 11;
  cfg.jobs = 1;
  cfg.domains = 1;
  return cfg;
}

TEST(SweepJournalResume, ScalingLadderResumesByteIdenticalAcrossDomainCounts) {
  const std::string want = scaling_csv(run_scaling_experiment(journal_ladder()));

  const std::string path = temp_path("scaling.journal");
  auto cfg = journal_ladder();
  const JournalHeader header{"scaling", fnv1a(canonical_config(cfg)), cfg.degrees.size()};

  // Phase 1: journal only the first two points — a "crash" before the third.
  {
    TaskJournal journal;
    journal.open(path, header);
    cfg.on_result = [&](std::size_t index, std::uint64_t seed, const ScalingPoint& p) {
      if (index < 2) journal.record_ok(index, seed, to_journal_payload(p));
    };
    (void)run_scaling_experiment(cfg);
  }

  // Phase 2: resume under a *different* domain count. The fingerprint
  // encodes engine identity, not N, so the journal is accepted; the two
  // stored points replay, the third runs fresh, and the merged CSV is
  // byte-identical to the uninterrupted run.
  {
    TaskJournal journal;
    journal.open(path, header);
    ASSERT_EQ(journal.completed_count(), 2u);
    auto resumed_cfg = journal_ladder();
    resumed_cfg.domains = 2;
    std::atomic<int> replayed{0};
    resumed_cfg.resume = [&](std::size_t index, ScalingPoint& out) {
      const Json* payload = journal.payload(index);
      if (payload == nullptr) return false;
      out = scaling_point_from_payload(*payload);
      ++replayed;
      return true;
    };
    resumed_cfg.on_result = [&](std::size_t index, std::uint64_t seed,
                                const ScalingPoint& p) {
      journal.record_ok(index, seed, to_journal_payload(p));
    };
    const auto resumed = run_scaling_experiment(resumed_cfg);
    EXPECT_EQ(replayed.load(), 2);
    EXPECT_EQ(scaling_csv(resumed), want);
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace incast::core
