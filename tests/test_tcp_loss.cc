// Integration tests: TCP loss recovery (fast retransmit, RTO) under
// constrained queues.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "net/topology.h"
#include "tcp/tcp_connection.h"

namespace incast::tcp {
namespace {

using sim::Simulator;
using sim::Time;
using namespace incast::sim::literals;

TcpConfig config_with(CcAlgorithm algo, Time min_rto = 10_ms) {
  TcpConfig c;
  c.cc = algo;
  c.rtt.min_rto = min_rto;
  c.rtt.initial_rto = min_rto;
  return c;
}

net::DumbbellConfig tiny_queue_topo(int senders, std::int64_t queue_packets,
                                    std::int64_t ecn_threshold = 0) {
  net::DumbbellConfig cfg;
  cfg.num_senders = senders;
  cfg.switch_queue.capacity_packets = queue_packets;
  cfg.switch_queue.ecn_threshold_packets = ecn_threshold;
  // 10:1 rate mismatch into the receiver so even a single sender congests
  // the bottleneck queue.
  cfg.receiver_link = sim::Bandwidth::gigabits_per_second(1);
  return cfg;
}

TEST(TcpLoss, RecoversFromTailDropAndDeliversEverything) {
  Simulator sim;
  net::Dumbbell topo{sim, tiny_queue_topo(1, /*queue_packets=*/5)};
  // Reno without ECN slams into the 5-packet queue: drops are inevitable.
  TcpConnection conn{sim, topo.sender(0), topo.receiver(0), 1,
                     config_with(CcAlgorithm::kReno)};

  const std::int64_t total = 2'000'000;
  conn.sender().add_app_data(total);
  sim.run_until(5_s);

  EXPECT_EQ(conn.receiver().rcv_nxt(), total);
  EXPECT_TRUE(conn.sender().all_acked());
  EXPECT_GT(topo.bottleneck_queue().stats().dropped_packets, 0);
  EXPECT_GT(conn.sender().stats().retransmitted_packets, 0);
}

TEST(TcpLoss, FastRetransmitEngagesBeforeRto) {
  Simulator sim;
  net::Dumbbell topo{sim, tiny_queue_topo(1, /*queue_packets=*/8)};
  // Long min RTO: if recovery happened via timeouts the test would be slow
  // and the timeout counter nonzero.
  TcpConnection conn{sim, topo.sender(0), topo.receiver(0), 1,
                     config_with(CcAlgorithm::kReno, /*min_rto=*/1_s)};

  conn.sender().add_app_data(1'000'000);
  sim.run_until(2_s);

  EXPECT_TRUE(conn.sender().all_acked());
  EXPECT_GT(conn.sender().stats().fast_retransmits, 0);
  EXPECT_EQ(conn.sender().stats().timeouts, 0);
}

TEST(TcpLoss, RtoFiresWhenWindowTooSmallForDupacks) {
  // One-packet queue and two competing flows: windows collapse to 1 MSS,
  // so fast retransmit (needing 3 dupacks) cannot engage and RTOs carry
  // recovery — the paper's Mode 3 mechanism.
  Simulator sim;
  net::Dumbbell topo{sim, tiny_queue_topo(2, /*queue_packets=*/1)};
  auto cfg = config_with(CcAlgorithm::kReno, /*min_rto=*/5_ms);
  TcpConnection a{sim, topo.sender(0), topo.receiver(0), 1, cfg};
  TcpConnection b{sim, topo.sender(1), topo.receiver(0), 2, cfg};
  a.sender().add_app_data(300'000);
  b.sender().add_app_data(300'000);
  sim.run_until(10_s);

  EXPECT_TRUE(a.sender().all_acked());
  EXPECT_TRUE(b.sender().all_acked());
  EXPECT_GT(a.sender().stats().timeouts + b.sender().stats().timeouts, 0);
}

TEST(TcpLoss, RetransmittedPacketsAreFlagged) {
  Simulator sim;
  net::Dumbbell topo{sim, tiny_queue_topo(1, 5)};

  // Count retransmit-flagged data packets arriving at the receiver.
  class RetxTap final : public net::IngressTap {
   public:
    void on_ingress(const net::Packet& p, Time) override {
      if (p.is_retransmit) ++retx;
    }
    int retx{0};
  };
  RetxTap tap;
  topo.receiver(0).add_ingress_tap(&tap);

  TcpConnection conn{sim, topo.sender(0), topo.receiver(0), 1,
                     config_with(CcAlgorithm::kReno)};
  conn.sender().add_app_data(2'000'000);
  sim.run_until(5_s);

  EXPECT_TRUE(conn.sender().all_acked());
  EXPECT_GT(tap.retx, 0);
  // The sender's own accounting agrees (receiver may see fewer if some
  // retransmissions were themselves dropped).
  EXPECT_GE(conn.sender().stats().retransmitted_packets, tap.retx);
}

TEST(TcpLoss, EcnAvoidsDropsWhereLossBasedCcCannot) {
  // Same shallow queue, ECN marking enabled: DCTCP backs off before the
  // tail drops; CUBIC (ECN-blind) overruns the queue.
  const std::int64_t total = 3'000'000;

  auto run_with = [&](CcAlgorithm algo) {
    Simulator sim;
    net::Dumbbell topo{sim, tiny_queue_topo(1, /*queue_packets=*/60,
                                            /*ecn_threshold=*/20)};
    TcpConnection conn{sim, topo.sender(0), topo.receiver(0), 1, config_with(algo)};
    conn.sender().add_app_data(total);
    sim.run_until(5_s);
    EXPECT_TRUE(conn.sender().all_acked()) << to_string(algo);
    return topo.bottleneck_queue().stats().dropped_packets;
  };

  EXPECT_EQ(run_with(CcAlgorithm::kDctcp), 0);
  EXPECT_GT(run_with(CcAlgorithm::kCubic), 0);
}

TEST(TcpLoss, ExponentialBackoffUnderBlackout) {
  // A queue of capacity 1 with a competing hog keeps dropping one flow's
  // packets; verify the victim's RTO backoff does not melt down (bounded
  // timeouts within the window) and the flow still completes afterwards.
  Simulator sim;
  net::Dumbbell topo{sim, tiny_queue_topo(2, 1)};
  auto cfg = config_with(CcAlgorithm::kReno, 2_ms);
  TcpConnection hog{sim, topo.sender(0), topo.receiver(0), 1, cfg};
  TcpConnection victim{sim, topo.sender(1), topo.receiver(0), 2, cfg};

  hog.sender().add_app_data(2'000'000);
  victim.sender().add_app_data(100'000);
  sim.run_until(20_s);

  EXPECT_TRUE(hog.sender().all_acked());
  EXPECT_TRUE(victim.sender().all_acked());
  EXPECT_EQ(victim.receiver().rcv_nxt(), 100'000);
}

TEST(TcpLoss, SlowStartAfterIdleResetsWindow) {
  Simulator sim;
  net::Dumbbell topo{sim, net::DumbbellConfig{.num_senders = 1}};
  TcpConfig cfg = config_with(CcAlgorithm::kReno, 1_ms);
  cfg.slow_start_after_idle = true;
  TcpConnection conn{sim, topo.sender(0), topo.receiver(0), 1, cfg};

  conn.sender().add_app_data(5'000'000);
  sim.run();
  const std::int64_t grown = conn.sender().congestion_control().cwnd_bytes();
  EXPECT_GT(grown, 10 * cfg.mss_bytes);

  // Idle far longer than the RTO, then send again: window snaps back to IW.
  sim.run_until(sim.now() + 1_s);
  conn.sender().add_app_data(1'000);
  EXPECT_LE(conn.sender().congestion_control().cwnd_bytes(), 10 * cfg.mss_bytes);
  sim.run();
  EXPECT_TRUE(conn.sender().all_acked());
}

TEST(TcpLoss, NoIdleResetByDefault) {
  // The paper's configuration: cwnd persists across bursts (Section 4.3's
  // divergence depends on this).
  Simulator sim;
  net::Dumbbell topo{sim, net::DumbbellConfig{.num_senders = 1}};
  TcpConfig cfg = config_with(CcAlgorithm::kReno, 1_ms);
  ASSERT_FALSE(cfg.slow_start_after_idle);
  TcpConnection conn{sim, topo.sender(0), topo.receiver(0), 1, cfg};

  conn.sender().add_app_data(5'000'000);
  sim.run();
  const std::int64_t grown = conn.sender().congestion_control().cwnd_bytes();
  sim.run_until(sim.now() + 1_s);
  conn.sender().add_app_data(1'000);
  EXPECT_EQ(conn.sender().congestion_control().cwnd_bytes(), grown);
  sim.run();
}

}  // namespace
}  // namespace incast::tcp
