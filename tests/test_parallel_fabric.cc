// The conservative parallel engine's contracts (sim/parallel_simulator.h,
// net/domain_bridge.h, fabric rack decomposition).
//
// ParallelFabric (unit): the rack-domain assignment's shape — round-robin
// leaves and core switches, hosts following their leaf, lookahead derived
// from the config — plus the failure-injection paths: an inflated lookahead
// must surface as audit[lookahead] (strict aborts, relaxed counts), and the
// barrier-granular event budget must abort with BudgetExceeded.
//
// ParallelFabricDeterminism (experiment): the headline contract. One fabric
// run domain-decomposed across N event queues must produce a byte-identical
// CSV at any N — including N=1, the sequential reference — because windows
// are computed from global state and every event carries a decomposition-
// invariant (time, key) rank. The incast starts all senders at t=0, so the
// ladder is saturated with same-timestamp cross-domain arrivals: byte
// identity here is precisely the tie-break determinism guarantee. The suite
// name matches the TSan CI leg (ctest -R 'Sweep|ParallelFabric') so the
// barrier/mailbox protocol is raced under a real thread sanitizer.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "core/scaling_experiment.h"
#include "fabric/fat_tree.h"
#include "sim/auditor.h"
#include "sim/simulator.h"

namespace incast {
namespace {

// The PR 2 smoke fabric (tests/test_scaling.cc): 2 pods x 2 leaves x 8
// hosts, two-tier over 2 spines. Four racks + two spines gives real
// cross-domain traffic at every domain count from 2 up.
fabric::FatTreeConfig pr2_fabric() {
  fabric::FatTreeConfig cfg;
  cfg.num_pods = 2;
  cfg.leaves_per_pod = 2;
  cfg.hosts_per_leaf = 8;
  cfg.aggs_per_pod = 0;
  cfg.num_spines = 2;
  cfg.ecmp_seed = 42;
  return cfg;
}

core::ScalingConfig small_ladder(int domains) {
  core::ScalingConfig cfg;
  cfg.degrees = {1, 2, 8};
  cfg.fabric = pr2_fabric();
  cfg.bytes_per_flow = 27'000;
  cfg.seed = 11;
  cfg.domains = domains;
  return cfg;
}

TEST(ParallelFabric, RackAssignmentRoundRobinsLeavesAndCore) {
  const fabric::FatTreeConfig cfg = pr2_fabric();  // 4 leaves, 2 spines
  const fabric::DomainAssignment a = fabric::assign_rack_domains(cfg, 3);
  EXPECT_EQ(a.domains, 3);
  EXPECT_EQ(a.leaf_domain, (std::vector<int>{0, 1, 2, 0}));
  EXPECT_TRUE(a.agg_domain.empty());
  EXPECT_EQ(a.spine_domain, (std::vector<int>{0, 1}));
  EXPECT_EQ(a.lookahead, cfg.link_delay);

  // Surplus domains idle rather than fail: 8 domains over 4 racks.
  EXPECT_EQ(fabric::assign_rack_domains(cfg, 8).leaf_domain,
            (std::vector<int>{0, 1, 2, 3}));
  EXPECT_THROW((void)fabric::assign_rack_domains(cfg, 0), std::invalid_argument);
}

TEST(ParallelFabric, DomainBuildTagsEveryHostWithItsLeafDomain) {
  sim::Simulator s0;
  sim::Simulator s1;
  const fabric::FatTreeConfig cfg = pr2_fabric();
  const fabric::DomainAssignment a = fabric::assign_rack_domains(cfg, 2);
  fabric::FatTree tree{{&s0, &s1}, a, cfg};
  for (int h = 0; h < tree.num_hosts(); ++h) {
    EXPECT_EQ(tree.host(h).domain(),
              a.leaf_domain[static_cast<std::size_t>(tree.leaf_of_host(h))])
        << "host " << h;
  }
}

// Inflating the lookahead past the real link delay makes cross-domain
// packets arrive inside completed windows — the exact corruption the
// conservative contract forbids. Strict audit must abort the run with the
// lookahead invariant; relaxed must count it and limp to completion.
TEST(ParallelFabric, InflatedLookaheadAbortsStrictAudit) {
  core::ScalingConfig cfg = small_ladder(2);
  cfg.audit_mode = sim::AuditMode::kStrict;
  cfg.lookahead_override = sim::Time::microseconds(100);  // real delay: 4.5us
  try {
    (void)core::run_scaling_point(cfg, /*degree=*/8, /*seed=*/11, nullptr);
    FAIL() << "expected AuditFailure";
  } catch (const sim::AuditFailure& e) {
    EXPECT_STREQ(e.invariant(), "lookahead");
  }
}

TEST(ParallelFabric, InflatedLookaheadCountsViolationsRelaxed) {
  core::ScalingConfig cfg = small_ladder(2);
  cfg.audit_mode = sim::AuditMode::kRelaxed;
  cfg.lookahead_override = sim::Time::microseconds(100);
  const core::ScalingPoint p =
      core::run_scaling_point(cfg, /*degree=*/8, /*seed=*/11, nullptr);
  EXPECT_GT(p.audit_violations, 0u);
  EXPECT_EQ(p.completed_flows, 8);
}

TEST(ParallelFabric, GlobalEventBudgetAbortsAtBarrier) {
  core::ScalingConfig cfg = small_ladder(2);
  cfg.audit.max_events = 500;  // degree 8 needs far more
  EXPECT_THROW(
      (void)core::run_scaling_point(cfg, /*degree=*/8, /*seed=*/11, nullptr),
      sim::BudgetExceeded);
}

TEST(ParallelFabric, DeadlineCutsThePointShortDeterministically) {
  core::ScalingConfig cfg = small_ladder(2);
  cfg.max_sim_time = sim::Time::microseconds(50);
  const core::ScalingPoint p =
      core::run_scaling_point(cfg, /*degree=*/8, /*seed=*/11, nullptr);
  EXPECT_LT(p.completed_flows, 8);
  EXPECT_DOUBLE_EQ(p.fct_ms, cfg.max_sim_time.ms());
}

TEST(ParallelFabricDeterminism, CsvIsByteIdenticalAcrossDomainCounts) {
  const std::string baseline =
      core::scaling_csv(core::run_scaling_experiment(small_ladder(1)));
  for (const int domains : {2, 3, 8}) {
    const std::string csv =
        core::scaling_csv(core::run_scaling_experiment(small_ladder(domains)));
    EXPECT_EQ(baseline, csv) << "domains=" << domains;
  }
}

// The same contract at point granularity, with the execution diagnostics
// that back it: the window sequence and per-window event histogram are
// computed from global state, so they must match across domain counts even
// though the per-domain event split differs.
TEST(ParallelFabricDeterminism, WindowsAndEventTotalsAreDecompositionInvariant) {
  const core::ScalingConfig one = small_ladder(1);
  const core::ScalingConfig four = small_ladder(4);
  const core::ScalingPoint p1 = core::run_scaling_point(one, 8, 11, nullptr);
  const core::ScalingPoint p4 = core::run_scaling_point(four, 8, 11, nullptr);

  EXPECT_EQ(p1.fct_ms, p4.fct_ms);
  EXPECT_EQ(p1.events_processed, p4.events_processed);
  EXPECT_EQ(p1.windows, p4.windows);
  EXPECT_EQ(p1.window_hist, p4.window_hist);
  EXPECT_EQ(p1.packet_pool_bytes, p4.packet_pool_bytes);
  EXPECT_EQ(p1.event_bytes, p4.event_bytes);
  EXPECT_EQ(p1.audit_violations, 0u);
  EXPECT_EQ(p4.audit_violations, 0u);

  EXPECT_EQ(p1.parallel_domains, 1u);
  EXPECT_EQ(p4.parallel_domains, 4u);
  EXPECT_EQ(p1.packets_bridged, 0u);  // one domain: nothing crosses
  EXPECT_GT(p4.packets_bridged, 0u);  // four racks: the incast must cross
  EXPECT_EQ(p1.events_per_domain.size(), 1u);
  EXPECT_EQ(p4.events_per_domain.size(), 4u);
  std::uint64_t split_total = 0;
  for (const std::uint64_t e : p4.events_per_domain) split_total += e;
  EXPECT_EQ(split_total, p4.events_processed);
}

// Degrees past the host count stack several flows per host and per lane —
// the stress case for per-lane key assignment (a lane collision would
// reorder same-timestamp events and move the CSV).
TEST(ParallelFabricDeterminism, ManyFlowsPerHostStayByteIdentical) {
  core::ScalingConfig cfg = small_ladder(1);
  cfg.degrees = {64};
  const std::string baseline = core::scaling_csv(core::run_scaling_experiment(cfg));
  cfg.domains = 4;
  EXPECT_EQ(baseline, core::scaling_csv(core::run_scaling_experiment(cfg)));
}

}  // namespace
}  // namespace incast
