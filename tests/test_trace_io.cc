// Tests for Millisampler trace CSV serialization.
#include "telemetry/trace_io.h"

#include <gtest/gtest.h>

#include <sstream>

namespace incast::telemetry {
namespace {

std::vector<Millisampler::Bin> sample_bins() {
  std::vector<Millisampler::Bin> bins(3);
  bins[0] = {.bytes = 1'250'000, .marked_bytes = 600'000, .retx_bytes = 0, .active_flows = 212};
  bins[1] = {.bytes = 0, .marked_bytes = 0, .retx_bytes = 0, .active_flows = 0};
  bins[2] = {.bytes = 90'000, .marked_bytes = 0, .retx_bytes = 1'500, .corrupt_bytes = 3'000,
             .active_flows = 7};
  return bins;
}

TEST(TraceIo, RoundTripPreservesEveryField) {
  const auto bins = sample_bins();
  std::stringstream ss;
  write_bins_csv(bins, ss);
  const auto parsed = read_bins_csv(ss);
  ASSERT_EQ(parsed.size(), bins.size());
  for (std::size_t i = 0; i < bins.size(); ++i) {
    EXPECT_EQ(parsed[i].bytes, bins[i].bytes);
    EXPECT_EQ(parsed[i].marked_bytes, bins[i].marked_bytes);
    EXPECT_EQ(parsed[i].retx_bytes, bins[i].retx_bytes);
    EXPECT_EQ(parsed[i].corrupt_bytes, bins[i].corrupt_bytes);
    EXPECT_EQ(parsed[i].active_flows, bins[i].active_flows);
  }
}

TEST(TraceIo, WritesExpectedFormat) {
  std::stringstream ss;
  write_bins_csv(sample_bins(), ss);
  std::string line;
  std::getline(ss, line);
  EXPECT_EQ(line, "bin,bytes,marked_bytes,retx_bytes,corrupt_bytes,active_flows");
  std::getline(ss, line);
  EXPECT_EQ(line, "0,1250000,600000,0,0,212");
}

TEST(TraceIo, ReadsLegacyHeaderWithoutCorruptColumn) {
  // Traces exported before corrupt_bytes existed stay loadable; the missing
  // column reads back as zero.
  std::stringstream ss{
      "bin,bytes,marked_bytes,retx_bytes,active_flows\n"
      "0,1250000,600000,0,212\n"
      "1,90000,0,1500,7\n"};
  const auto parsed = read_bins_csv(ss);
  ASSERT_EQ(parsed.size(), 2u);
  EXPECT_EQ(parsed[0].bytes, 1'250'000);
  EXPECT_EQ(parsed[0].corrupt_bytes, 0);
  EXPECT_EQ(parsed[1].retx_bytes, 1'500);
  EXPECT_EQ(parsed[1].active_flows, 7);
}

TEST(TraceIo, EmptyTraceRoundTrips) {
  std::stringstream ss;
  write_bins_csv({}, ss);
  EXPECT_TRUE(read_bins_csv(ss).empty());
}

TEST(TraceIo, RejectsWrongHeader) {
  std::stringstream ss{"time,bytes\n0,1\n"};
  EXPECT_THROW((void)read_bins_csv(ss), std::runtime_error);
}

TEST(TraceIo, RejectsMissingColumns) {
  std::stringstream ss{"bin,bytes,marked_bytes,retx_bytes,active_flows\n0,1,2,3\n"};
  EXPECT_THROW((void)read_bins_csv(ss), std::runtime_error);
}

TEST(TraceIo, RejectsExtraColumns) {
  std::stringstream ss{"bin,bytes,marked_bytes,retx_bytes,active_flows\n0,1,2,3,4,5\n"};
  EXPECT_THROW((void)read_bins_csv(ss), std::runtime_error);
}

TEST(TraceIo, RejectsNonNumericField) {
  std::stringstream ss{"bin,bytes,marked_bytes,retx_bytes,active_flows\n0,abc,2,3,4\n"};
  EXPECT_THROW((void)read_bins_csv(ss), std::runtime_error);
}

TEST(TraceIo, RejectsNonContiguousIndices) {
  std::stringstream ss{"bin,bytes,marked_bytes,retx_bytes,active_flows\n1,1,2,3,4\n"};
  EXPECT_THROW((void)read_bins_csv(ss), std::runtime_error);
}

TEST(TraceIo, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/trace_io_test.csv";
  ASSERT_TRUE(write_bins_csv_file(sample_bins(), path));
  const auto parsed = read_bins_csv_file(path);
  EXPECT_EQ(parsed.size(), 3u);
  EXPECT_EQ(parsed[2].retx_bytes, 1'500);
  std::remove(path.c_str());
}

TEST(TraceIo, MissingFileThrows) {
  EXPECT_THROW((void)read_bins_csv_file("/nonexistent/path/trace.csv"),
               std::runtime_error);
}

TEST(TraceIo, LiveSamplerRoundTrip) {
  // End to end: fill a sampler, serialize, parse, compare.
  Millisampler s{{.bin_duration = sim::Time::milliseconds(1),
                  .line_rate = sim::Bandwidth::gigabits_per_second(10)}};
  net::Packet p = net::make_data_packet(0, 1, 9, 0, 1000);
  p.ecn = net::Ecn::kCe;
  s.on_ingress(p, sim::Time::microseconds(100));
  s.on_ingress(net::make_data_packet(0, 1, 5, 0, 2000), sim::Time::milliseconds(2.5));
  s.finalize(sim::Time::milliseconds(4));

  std::stringstream ss;
  write_bins_csv(s.bins(), ss);
  const auto parsed = read_bins_csv(ss);
  ASSERT_EQ(parsed.size(), 4u);
  EXPECT_EQ(parsed[0].marked_bytes, 1000 + net::kHeaderBytes);
  EXPECT_EQ(parsed[2].bytes, 2000 + net::kHeaderBytes);
  EXPECT_EQ(parsed[2].active_flows, 1);
  EXPECT_EQ(parsed[3].bytes, 0);
}

}  // namespace
}  // namespace incast::telemetry
