#include "net/host.h"

#include <cassert>
#include <utility>

namespace incast::net {

std::size_t Host::add_nic(sim::Bandwidth bandwidth, sim::Time propagation_delay,
                          const DropTailQueue::Config& queue_config) {
  assert(!has_nic_ && "host already has a NIC");
  nic_port_ = add_port(bandwidth, propagation_delay, queue_config);
  has_nic_ = true;
  return nic_port_;
}

void Host::send(Packet p) {
  assert(has_nic_);
  if (auto* a = INCAST_AUDITOR(sim_)) a->on_bytes_injected(p.size_bytes);
  port(nic_port_).send(std::move(p));
}

void Host::register_flow(FlowId flow, PacketHandler* handler) {
  assert(handler != nullptr);
  flows_[flow] = handler;
}

void Host::unregister_flow(FlowId flow) { flows_.erase(flow); }

void Host::receive(Packet p, std::size_t in_port) {
  if (p.is_ctrl()) [[unlikely]] {
    // PFC pause/resume from the ToR: applied to the NIC and consumed at
    // the MAC layer — the host stack (taps included) never sees it.
    if (auto* a = INCAST_AUDITOR(sim_)) a->on_control_consumed(p.size_bytes);
    ++pfc_frames_received_;
    if (p.ctrl.type == CtrlType::kPfcPause) {
      port(in_port).pause_for(sim::Time::nanoseconds(p.ctrl.pause_ns));
    } else if (p.ctrl.type == CtrlType::kPfcResume) {
      port(in_port).resume();
    }
    return;
  }
  // Delivery counts at the NIC: corrupt and unclaimed arrivals included —
  // the wire delivered them; what the host does next is its business.
  if (auto* a = INCAST_AUDITOR(sim_)) a->on_bytes_delivered(p.size_bytes);
  for (IngressTap* tap : taps_) {
    tap->on_ingress(p, sim_.now());
  }
  if (p.corrupted) {
    ++corrupt_dropped_packets_;
    return;
  }
  const auto it = flows_.find(p.tcp.flow_id);
  if (it == flows_.end()) {
    ++unclaimed_packets_;
    return;
  }
  it->second->handle_packet(std::move(p));
}

}  // namespace incast::net
