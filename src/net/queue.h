// DropTailQueue: a FIFO egress queue with threshold ECN marking.
//
// This is the queue the paper studies: a ToR egress FIFO with capacity 1333
// packets (2 MB) and an ECN marking threshold K. An arriving ECT packet is
// marked CE when the instantaneous occupancy is at or above K — the DCTCP
// marking rule. Arrivals beyond capacity (or beyond the shared-buffer
// dynamic threshold, when a pool is attached) are dropped at the tail.
//
// Two extensions cover the modern-fabric queue disciplines:
//
//   * a DCQCN-style probabilistic marking band (ecn_kmin/kmax): arriving
//     ECT packets are marked with probability ramping 0 -> 1 across
//     [kmin, kmax) occupancy, always at/above kmax. The coin is a hash of
//     the packet uid, so marking stays bit-deterministic with no RNG state;
//   * CompositeQueue (NDP-style packet trimming): when the data queue is
//     full, an arriving data packet is trimmed to its header and queued on
//     a strict-priority header queue instead of being dropped — the
//     receiver learns what was lost and NACKs for an immediate retransmit.
//
// make_queue() builds the discipline a Config names, so every Port in every
// topology can swap disciplines through configuration alone.
#ifndef INCAST_NET_QUEUE_H_
#define INCAST_NET_QUEUE_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "net/packet.h"
#include "net/shared_buffer.h"

namespace incast::net {

// Which queue implementation a Config builds (see make_queue).
enum class QueueDiscipline : std::uint8_t {
  kDropTail = 0,  // classic tail-drop FIFO (the paper's queue)
  kTrimming,      // NDP-style CompositeQueue: trim payload, keep the header
};

[[nodiscard]] const char* to_string(QueueDiscipline d) noexcept;

class DropTailQueue {
 public:
  struct Config {
    // Per-queue capacity limit, in packets. The paper's simulations use
    // 1333 packets (2 MB of MTU-sized frames).
    std::int64_t capacity_packets{1333};
    // Optional additional byte-based cap (how real switches account their
    // buffers; matters when small control packets share the queue with
    // MTU frames). <= 0 disables the byte check.
    std::int64_t capacity_bytes{0};
    // ECN marking threshold K, in packets; <= 0 disables marking.
    std::int64_t ecn_threshold_packets{65};
    // DCQCN-style probabilistic marking band. When ecn_kmax_packets > 0 it
    // replaces the step rule: no marks below kmin, certain marks at/above
    // kmax, and a linear ramp in between, decided by a per-packet hash
    // (deterministic, no RNG state).
    std::int64_t ecn_kmin_packets{0};
    std::int64_t ecn_kmax_packets{0};
    // Discipline this config builds (make_queue): tail-drop or trimming.
    QueueDiscipline discipline{QueueDiscipline::kDropTail};
    // Trimming only: wire size a trimmed header keeps, and the header
    // queue's own capacity — overflow there is a real drop.
    std::int64_t trim_header_bytes{64};
    std::int64_t header_capacity_packets{1000};
  };

  struct Stats {
    std::int64_t enqueued_packets{0};
    std::int64_t dropped_packets{0};
    std::int64_t dropped_bytes{0};
    std::int64_t ecn_marked_packets{0};
    std::int64_t dequeued_packets{0};
    std::int64_t dequeued_bytes{0};
    // Trimming only: packets whose payload was cut, and the wire bytes
    // removed by the cut (original size minus surviving header).
    std::int64_t trimmed_packets{0};
    std::int64_t trimmed_bytes{0};
  };

  explicit DropTailQueue(const Config& config) noexcept : config_{config} {}
  virtual ~DropTailQueue() = default;

  DropTailQueue(const DropTailQueue&) = delete;
  DropTailQueue& operator=(const DropTailQueue&) = delete;

  // Attaches a shared buffer pool; admission then also requires pool memory.
  void attach_pool(SharedBufferPool* pool) noexcept { pool_ = pool; }

  // Admits `p` (marking it CE if the queue is past the ECN threshold) or
  // drops it. Returns true if the packet was enqueued — for a trimming
  // queue that includes the trimmed-to-header case (the stats tell the
  // difference).
  virtual bool enqueue(Packet p);

  // Removes the head-of-line packet; nullopt if empty.
  virtual std::optional<Packet> dequeue();

  [[nodiscard]] bool empty() const noexcept { return count_ == 0; }
  [[nodiscard]] std::int64_t packets() const noexcept { return count_; }
  [[nodiscard]] std::int64_t bytes() const noexcept { return bytes_; }
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }
  [[nodiscard]] const Config& config() const noexcept { return config_; }

  // High watermark (packets) since the last take_watermark() call. This is
  // how production ToRs report queue depth: a per-interval peak, not a time
  // series (Section 3.4).
  [[nodiscard]] std::int64_t peak_packets() const noexcept { return peak_packets_; }
  std::int64_t take_watermark() noexcept {
    const std::int64_t peak = peak_packets_;
    peak_packets_ = packets();
    return peak;
  }

 protected:
  // FIFO storage as a power-of-two-free circular buffer over a plain
  // vector: a deque's block churn costs an allocation per enqueue at
  // Packet granularity, which the allocation-free kernel cannot afford.
  struct Ring {
    std::vector<Packet> slots;
    std::size_t head{0};
    std::size_t count{0};

    [[nodiscard]] bool empty() const noexcept { return count == 0; }
    // Appends, growing (rare; amortized away once the queue has seen its
    // peak depth) when full.
    void push(Packet&& p);
    // Removes and returns the head. Precondition: !empty().
    [[nodiscard]] Packet pop();
  };

  // The configured marking rule's verdict for an ECT packet arriving at
  // `occupancy_packets`: the kmin/kmax ramp when configured, the DCTCP
  // step rule otherwise. Non-ECT packets are never marked.
  [[nodiscard]] bool should_mark(const Packet& p, std::int64_t occupancy_packets) const noexcept;

  void note_peak() noexcept {
    if (count_ > peak_packets_) peak_packets_ = count_;
  }

  Config config_;
  SharedBufferPool* pool_{nullptr};
  Ring ring_;
  // Totals across every internal ring (CompositeQueue adds a header ring),
  // so packets()/bytes() and the residual-bytes audit see the whole queue.
  std::int64_t count_{0};
  std::int64_t bytes_{0};
  std::int64_t peak_packets_{0};
  Stats stats_;
};

// CompositeQueue: the NDP trimming discipline [Handley et al., SIGCOMM 17].
//
// Data packets queue on the base FIFO under the usual caps; when those caps
// (or the shared pool) refuse one, its payload is trimmed and the surviving
// header joins a strict-priority header queue that also carries all
// header-only traffic (ACKs, NACKs, already-trimmed arrivals). Headers are
// not charged to the shared pool — they are what survives congestion, so
// pool exhaustion must not drop them. A trimmed header is CE-marked when
// ECT: trimming is itself a congestion signal, and this lets DCTCP-family
// senders fold it into their usual response.
class CompositeQueue final : public DropTailQueue {
 public:
  explicit CompositeQueue(const Config& config) noexcept : DropTailQueue{config} {}

  bool enqueue(Packet p) override;
  std::optional<Packet> dequeue() override;

  [[nodiscard]] std::int64_t data_packets() const noexcept {
    return static_cast<std::int64_t>(ring_.count);
  }
  [[nodiscard]] std::int64_t header_packets() const noexcept {
    return static_cast<std::int64_t>(header_ring_.count);
  }

 private:
  // Admits onto the header ring; false = header-queue overflow (caller
  // accounts the drop).
  bool enqueue_header(Packet&& p);

  Ring header_ring_;
  std::int64_t data_bytes_{0};  // pool-charged bytes in the data ring only
};

// Builds the queue `config` describes: a trimming CompositeQueue when
// config.discipline == kTrimming, a plain DropTailQueue otherwise.
[[nodiscard]] std::unique_ptr<DropTailQueue> make_queue(const DropTailQueue::Config& config);

}  // namespace incast::net

#endif  // INCAST_NET_QUEUE_H_
