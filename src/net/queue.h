// DropTailQueue: a FIFO egress queue with threshold ECN marking.
//
// This is the queue the paper studies: a ToR egress FIFO with capacity 1333
// packets (2 MB) and an ECN marking threshold K. An arriving ECT packet is
// marked CE when the instantaneous occupancy is at or above K — the DCTCP
// marking rule. Arrivals beyond capacity (or beyond the shared-buffer
// dynamic threshold, when a pool is attached) are dropped at the tail.
#ifndef INCAST_NET_QUEUE_H_
#define INCAST_NET_QUEUE_H_

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "net/packet.h"
#include "net/shared_buffer.h"

namespace incast::net {

class DropTailQueue {
 public:
  struct Config {
    // Per-queue capacity limit, in packets. The paper's simulations use
    // 1333 packets (2 MB of MTU-sized frames).
    std::int64_t capacity_packets{1333};
    // Optional additional byte-based cap (how real switches account their
    // buffers; matters when small control packets share the queue with
    // MTU frames). <= 0 disables the byte check.
    std::int64_t capacity_bytes{0};
    // ECN marking threshold K, in packets; <= 0 disables marking.
    std::int64_t ecn_threshold_packets{65};
  };

  struct Stats {
    std::int64_t enqueued_packets{0};
    std::int64_t dropped_packets{0};
    std::int64_t dropped_bytes{0};
    std::int64_t ecn_marked_packets{0};
    std::int64_t dequeued_packets{0};
    std::int64_t dequeued_bytes{0};
  };

  explicit DropTailQueue(const Config& config) noexcept : config_{config} {}

  // Attaches a shared buffer pool; admission then also requires pool memory.
  void attach_pool(SharedBufferPool* pool) noexcept { pool_ = pool; }

  // Admits `p` (marking it CE if the queue is past the ECN threshold) or
  // drops it. Returns true if the packet was enqueued.
  bool enqueue(Packet p);

  // Removes the head-of-line packet; nullopt if empty.
  std::optional<Packet> dequeue();

  [[nodiscard]] bool empty() const noexcept { return count_ == 0; }
  [[nodiscard]] std::int64_t packets() const noexcept {
    return static_cast<std::int64_t>(count_);
  }
  [[nodiscard]] std::int64_t bytes() const noexcept { return bytes_; }
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }
  [[nodiscard]] const Config& config() const noexcept { return config_; }

  // High watermark (packets) since the last take_watermark() call. This is
  // how production ToRs report queue depth: a per-interval peak, not a time
  // series (Section 3.4).
  [[nodiscard]] std::int64_t peak_packets() const noexcept { return peak_packets_; }
  std::int64_t take_watermark() noexcept {
    const std::int64_t peak = peak_packets_;
    peak_packets_ = packets();
    return peak;
  }

 private:
  // Appends to the ring, growing (rare; amortized away once the queue has
  // seen its peak depth) when full.
  void ring_push(Packet&& p);
  // Removes and returns the head. Precondition: !empty().
  [[nodiscard]] Packet ring_pop();

  Config config_;
  SharedBufferPool* pool_{nullptr};
  // FIFO storage as a power-of-two-free circular buffer over a plain
  // vector: a deque's block churn costs an allocation per enqueue at
  // Packet granularity, which the allocation-free kernel cannot afford.
  std::vector<Packet> ring_;
  std::size_t head_{0};
  std::size_t count_{0};
  std::int64_t bytes_{0};
  std::int64_t peak_packets_{0};
  Stats stats_;
};

}  // namespace incast::net

#endif  // INCAST_NET_QUEUE_H_
