// PacketPool: free-listed Packet storage for in-flight packets.
//
// The delivery path schedules two events per hop (serialization done,
// propagation done). Capturing the ~300-byte Packet inside those closures
// would blow the kernel's inline-capture budget (sim/inline_function.h), so
// a Port parks the packet in its pool and captures just the handle — the
// "pool it, don't capture it" rule from docs/PERFORMANCE.md.
//
// Handles are stable pointers: the pool owns each Packet individually and
// recycles them through a free list, so steady state (pool warmed up to the
// link's bandwidth-delay product) performs zero allocations. Determinism is
// untouched — the pool only recycles storage; which packet goes where is
// decided entirely by the event kernel.
#ifndef INCAST_NET_PACKET_POOL_H_
#define INCAST_NET_PACKET_POOL_H_

#include <cstddef>
#include <memory>
#include <vector>

#include "net/packet.h"

namespace incast::net {

class PacketPool {
 public:
  PacketPool() = default;
  PacketPool(const PacketPool&) = delete;
  PacketPool& operator=(const PacketPool&) = delete;

  // Returns a packet slot, recycled when possible. The contents are
  // whatever the previous occupant left; callers assign before use.
  [[nodiscard]] Packet* acquire() {
    if (!free_.empty()) {
      Packet* p = free_.back();
      free_.pop_back();
      return p;
    }
    storage_.push_back(std::make_unique<Packet>());
    return storage_.back().get();
  }

  // Returns `p` to the free list. `p` must have come from acquire() on this
  // pool and must not be used afterwards.
  void release(Packet* p) { free_.push_back(p); }

  // Packets ever allocated — the peak number simultaneously in flight.
  [[nodiscard]] std::size_t high_water() const noexcept { return storage_.size(); }
  [[nodiscard]] std::size_t in_use() const noexcept {
    return storage_.size() - free_.size();
  }

 private:
  std::vector<std::unique_ptr<Packet>> storage_;
  std::vector<Packet*> free_;
};

}  // namespace incast::net

#endif  // INCAST_NET_PACKET_POOL_H_
