// LinkDirectory: uniform access to a topology's links by name.
//
// Every topology builder (Dumbbell, fabric::FatTree) registers each
// unidirectional link under a "<from>-><to>" name as it wires the network,
// so higher layers — fault injection above all — can address any link in
// any topology the same way, instead of relying on per-topology accessors
// like the dumbbell's bespoke core_link_tx/rx pair. Names use the owning
// node's name on each side, e.g. "tor_s->tor_r" or "p0.l1->s0".
#ifndef INCAST_NET_LINK_DIRECTORY_H_
#define INCAST_NET_LINK_DIRECTORY_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "net/node.h"

namespace incast::net {

class LosslessInputQueue;

class LinkDirectory {
 public:
  // The named link's egress port, or nullptr if no such name is registered.
  [[nodiscard]] Port* find_link(const std::string& name) const;

  // Like find_link, but an unknown name throws std::out_of_range listing
  // the registered names — a typo'd fault profile fails loudly.
  [[nodiscard]] Port& link(const std::string& name) const;

  // All registered link names, in registration (wiring) order.
  [[nodiscard]] const std::vector<std::string>& link_names() const noexcept {
    return names_;
  }

  // Uniform naming for PFC virtual input queues: the VIQ charged by
  // traffic arriving over link "a->b" is "a->b:viq<n>", where n is b's
  // ingress port index for that link. find_viq resolves such a name to the
  // receiving switch's LosslessInputQueue; nullptr when the name is
  // unknown, the index does not match the wiring, or the receiving node is
  // not a PFC-enabled switch.
  [[nodiscard]] const LosslessInputQueue* find_viq(const std::string& viq_name) const;

  // Every VIQ name currently live (duplex-registered links whose receiving
  // node is a PFC-enabled switch), in link registration order.
  [[nodiscard]] std::vector<std::string> viq_names() const;

  // Bytes still buffered anywhere in the topology: queued plus in flight on
  // the wire, summed over every registered link. This is the residual term
  // of the auditor's conservation ledger (sim::Auditor::check_conservation);
  // at teardown, injected == delivered + dropped + residual must hold.
  [[nodiscard]] std::int64_t residual_buffered_bytes() const;

 protected:
  ~LinkDirectory() = default;

  // Registers one unidirectional link. Duplicate names are a builder bug.
  void register_link(std::string name, Port& port);

  // Convenience for full-duplex pairs: registers "a->b" on a's port and
  // "b->a" on b's, matching how connect_duplex wires them.
  void register_duplex(Node& a, std::size_t ap, Node& b, std::size_t bp);

 private:
  // Receiving side of a duplex-registered link, for VIQ resolution.
  struct Ingress {
    Node* node{nullptr};
    std::size_t in_port{0};
  };

  std::vector<std::string> names_;
  std::unordered_map<std::string, Port*> by_name_;
  std::unordered_map<std::string, Ingress> ingress_by_link_;
};

}  // namespace incast::net

#endif  // INCAST_NET_LINK_DIRECTORY_H_
