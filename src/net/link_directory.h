// LinkDirectory: uniform access to a topology's links by name.
//
// Every topology builder (Dumbbell, fabric::FatTree) registers each
// unidirectional link under a "<from>-><to>" name as it wires the network,
// so higher layers — fault injection above all — can address any link in
// any topology the same way, instead of relying on per-topology accessors
// like the dumbbell's bespoke core_link_tx/rx pair. Names use the owning
// node's name on each side, e.g. "tor_s->tor_r" or "p0.l1->s0".
#ifndef INCAST_NET_LINK_DIRECTORY_H_
#define INCAST_NET_LINK_DIRECTORY_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "net/node.h"

namespace incast::net {

class LinkDirectory {
 public:
  // The named link's egress port, or nullptr if no such name is registered.
  [[nodiscard]] Port* find_link(const std::string& name) const;

  // Like find_link, but an unknown name throws std::out_of_range listing
  // the registered names — a typo'd fault profile fails loudly.
  [[nodiscard]] Port& link(const std::string& name) const;

  // All registered link names, in registration (wiring) order.
  [[nodiscard]] const std::vector<std::string>& link_names() const noexcept {
    return names_;
  }

  // Bytes still buffered anywhere in the topology: queued plus in flight on
  // the wire, summed over every registered link. This is the residual term
  // of the auditor's conservation ledger (sim::Auditor::check_conservation);
  // at teardown, injected == delivered + dropped + residual must hold.
  [[nodiscard]] std::int64_t residual_buffered_bytes() const;

 protected:
  ~LinkDirectory() = default;

  // Registers one unidirectional link. Duplicate names are a builder bug.
  void register_link(std::string name, Port& port);

  // Convenience for full-duplex pairs: registers "a->b" on a's port and
  // "b->a" on b's, matching how connect_duplex wires them.
  void register_duplex(Node& a, std::size_t ap, Node& b, std::size_t bp);

 private:
  std::vector<std::string> names_;
  std::unordered_map<std::string, Port*> by_name_;
};

}  // namespace incast::net

#endif  // INCAST_NET_LINK_DIRECTORY_H_
