#include "net/node.h"

#include <cassert>
#include <utility>

namespace incast::net {

void Port::send(Packet p) {
  assert(connected() && "port must be connected before sending");
  if (queue_.enqueue(std::move(p))) {
    maybe_transmit();
  }
}

void Port::maybe_transmit() {
  if (busy_) return;
  auto next = queue_.dequeue();
  if (!next.has_value()) return;

  if (int_stamping_ && next->int_stack.enabled) {
    next->int_stack.push(IntHopRecord{
        .qlen_bytes = queue_.bytes(),
        .tx_bytes = queue_.stats().dequeued_bytes,
        .link_bps = bandwidth_.bps(),
        .timestamp_ns = sim_.now().ns(),
    });
  }

  busy_ = true;
  const sim::Time serialization = bandwidth_.serialization_time(next->size_bytes);
  // Two-phase delivery: the transmitter frees up after serialization, then
  // the packet arrives at the peer one propagation delay later. Packets on
  // the wire are "in flight" inside the event queue, not in any buffer.
  sim_.schedule_in(serialization, [this, p = std::move(*next)]() mutable {
    busy_ = false;
    deliver(std::move(p));
    maybe_transmit();
  });
}

void Port::deliver(Packet p) {
  for (TxTap* tap : tx_taps_) tap->on_transmit(p, sim_.now());
  sim::Time delay = propagation_delay_;
  bool duplicate = false;
  if (hook_ != nullptr) {
    const LinkHook::Verdict v = hook_->on_transmit(p, sim_.now());
    if (v.drop) return;  // lost on the wire; no buffer ever held it
    if (v.corrupt) p.corrupted = true;
    delay += v.extra_delay;
    duplicate = v.duplicate;
  }
  if (duplicate) {
    // Scheduled after the original at the same timestamp, so FIFO
    // tie-breaking delivers original-then-copy.
    Packet copy = p;
    sim_.schedule_in(delay, [this, p = std::move(p)]() mutable {
      peer_->receive(std::move(p), peer_in_port_);
    });
    sim_.schedule_in(delay, [this, p = std::move(copy)]() mutable {
      peer_->receive(std::move(p), peer_in_port_);
    });
    return;
  }
  sim_.schedule_in(delay, [this, p = std::move(p)]() mutable {
    peer_->receive(std::move(p), peer_in_port_);
  });
}

void connect_duplex(Node& a, std::size_t ap, Node& b, std::size_t bp) {
  a.port(ap).connect(b, bp);
  b.port(bp).connect(a, ap);
}

}  // namespace incast::net
