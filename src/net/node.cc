#include "net/node.h"

#include <cassert>
#include <utility>

#include "obs/flow_trace.h"
#include "obs/hub.h"

namespace incast::net {

std::uint64_t Port::next_key() {
  assert(owner_ != nullptr || !sim_.keyed_ordering());
  return owner_ != nullptr ? owner_->next_event_key() : 0;
}

void Port::set_trace_label(const std::string& label) {
  obs::Hub* hub = INCAST_OBS_HUB(sim_);
  if (hub == nullptr || !hub->enabled()) {
    trace_hub_ = nullptr;
    return;
  }
  trace_hub_ = hub;
  drop_event_name_ = label + ".drop";
  mark_event_name_ = label + ".ecn_mark";
  trim_event_name_ = label + ".trim";
  pause_event_name_ = label + ".pfc_pause";
  resume_event_name_ = label + ".pfc_resume";
}

void Port::send(Packet p) {
  assert(connected() && "port must be connected before sending");
  if (flow_tracer_ != nullptr && p.flow_traced) {
    // Stamp admission time and the pause ledger; read back at dequeue to
    // attribute this hop's residency (queue wait vs. PFC pause overlap).
    p.trace_enqueue_ns = sim_.now().ns();
    p.trace_paused_ns = paused_ns();
  }
  const std::int64_t size = p.size_bytes;
  const std::int64_t trims_before = queue_->stats().trimmed_bytes;
  if (trace_hub_ == nullptr) {
    if (queue_->enqueue(std::move(p))) {
      if (auto* a = INCAST_AUDITOR(sim_)) {
        const std::int64_t cut = queue_->stats().trimmed_bytes - trims_before;
        if (cut > 0) a->on_bytes_trimmed(cut);
      }
      maybe_transmit();
    } else if (auto* a = INCAST_AUDITOR(sim_)) {
      a->on_bytes_dropped(size);  // tail-drop at enqueue
    }
    return;
  }

  // Traced path: detect this enqueue's drop/trim/ECN-mark outcome from the
  // queue stats delta and emit an instant on the queue track.
  const bool tracing = trace_hub_->tracing();
  const std::int64_t marks_before = queue_->stats().ecn_marked_packets;
  const FlowId flow = p.tcp.flow_id;
  if (queue_->enqueue(std::move(p))) {
    const std::int64_t cut = queue_->stats().trimmed_bytes - trims_before;
    if (cut > 0) {
      if (auto* a = INCAST_AUDITOR(sim_)) a->on_bytes_trimmed(cut);
      if (tracing) {
        trace_hub_->instant(sim_.now().ns(), obs::TraceCategory::kQueue,
                            trim_event_name_, obs::kQueueTid, "flow", flow, "qlen",
                            queue_->packets());
      }
    } else if (tracing && queue_->stats().ecn_marked_packets > marks_before) {
      trace_hub_->instant(sim_.now().ns(), obs::TraceCategory::kQueue,
                          mark_event_name_, obs::kQueueTid, "flow", flow, "qlen",
                          queue_->packets());
    }
    maybe_transmit();
  } else {
    if (auto* a = INCAST_AUDITOR(sim_)) a->on_bytes_dropped(size);
    if (tracing) {
      trace_hub_->instant(sim_.now().ns(), obs::TraceCategory::kQueue,
                          drop_event_name_, obs::kQueueTid, "flow", flow, "qlen",
                          queue_->packets());
    }
  }
}

void Port::send_control(Packet p) {
  assert(connected() && "port must be connected before sending");
  assert(p.is_ctrl());
  if (auto* a = INCAST_AUDITOR(sim_)) a->on_control_injected(p.size_bytes);
  // Compact the drained prefix before appending, keeping the FIFO bounded
  // by the number of in-flight control frames.
  if (ctrl_head_ > 0 && ctrl_head_ == ctrl_fifo_.size()) {
    ctrl_fifo_.clear();
    ctrl_head_ = 0;
  }
  ctrl_fifo_.push_back(std::move(p));
  maybe_transmit();
}

void Port::pause_for(sim::Time duration) {
  if (!paused_) {
    paused_ = true;
    ++pause_count_;
    pause_started_ns_ = sim_.now().ns();
    if (trace_hub_ != nullptr && trace_hub_->tracing()) {
      trace_hub_->instant(sim_.now().ns(), obs::TraceCategory::kQueue,
                          pause_event_name_, obs::kQueueTid, "pause_ns",
                          duration.ns(), "qlen", queue_->packets());
    }
  }
  // (Re)arm the auto-expiry; a newer pause supersedes any pending one.
  const std::uint64_t epoch = ++pause_epoch_;
  sim_.schedule_in_keyed(duration, next_key(), [this, epoch] {
    if (paused_ && epoch == pause_epoch_) finish_pause();
  }, sim::EventCategory::kNet);
}

void Port::resume() {
  if (!paused_) return;
  finish_pause();
}

void Port::finish_pause() {
  paused_ = false;
  ++pause_epoch_;  // invalidate any pending auto-expiry
  paused_ns_total_ += sim_.now().ns() - pause_started_ns_;
  if (trace_hub_ != nullptr && trace_hub_->tracing()) {
    trace_hub_->instant(sim_.now().ns(), obs::TraceCategory::kQueue,
                        resume_event_name_, obs::kQueueTid, "paused_ns",
                        sim_.now().ns() - pause_started_ns_, "qlen",
                        queue_->packets());
  }
  maybe_transmit();
}

std::int64_t Port::paused_ns() const noexcept {
  std::int64_t total = paused_ns_total_;
  if (paused_) total += sim_.now().ns() - pause_started_ns_;
  return total;
}

void Port::maybe_transmit() {
  if (busy_) return;
  std::optional<Packet> next;
  if (ctrl_head_ < ctrl_fifo_.size()) {
    // Control frames preempt data and ignore the pause state.
    next = std::move(ctrl_fifo_[ctrl_head_]);
    ++ctrl_head_;
    if (ctrl_head_ == ctrl_fifo_.size()) {
      ctrl_fifo_.clear();
      ctrl_head_ = 0;
    }
  } else {
    if (paused_) return;
    next = queue_->dequeue();
    if (!next.has_value()) return;

    if (auto* a = INCAST_AUDITOR(sim_)) {
      a->record_depth("port.queue", queue_->packets(), queue_->bytes());
    }

    if (dequeue_tap_ != nullptr) dequeue_tap_->on_dequeue(*next, sim_.now());

    if (flow_tracer_ != nullptr && next->trace_enqueue_ns >= 0) {
      const std::int64_t wait = sim_.now().ns() - next->trace_enqueue_ns;
      // Pause ledger delta = pause time overlapping this packet's residency
      // (an open pause at enqueue is included by paused_ns() on both reads).
      std::int64_t pause = paused_ns() - next->trace_paused_ns;
      if (pause < 0) pause = 0;
      if (pause > wait) pause = wait;
      flow_tracer_->on_hop(next->tcp.flow_id, trace_tier_, wait - pause, pause,
                           bandwidth_.serialization_time(next->size_bytes).ns(),
                           propagation_delay_.ns());
      next->trace_enqueue_ns = -1;  // consumed; next hop re-stamps
    }

    if (int_stamping_ && next->int_stack.enabled) {
      if (!next->int_stack.push(IntHopRecord{
              .qlen_bytes = queue_->bytes(),
              .tx_bytes = queue_->stats().dequeued_bytes,
              .link_bps = bandwidth_.bps(),
              .timestamp_ns = sim_.now().ns(),
          })) {
        ++int_hop_overflows_;  // stack full: surfaced as net.int.hop_overflow
      }
    }
  }

  busy_ = true;
  const sim::Time serialization = bandwidth_.serialization_time(next->size_bytes);
  // Two-phase delivery: the transmitter frees up after serialization, then
  // the packet arrives at the peer one propagation delay later. Packets on
  // the wire live in the port's pool; the events carry only the handle.
  Packet* p = acquire_pooled();
  *p = std::move(*next);
#if INCAST_AUDIT_ENABLED
  wire_bytes_ += p->size_bytes;
#endif
  sim_.schedule_in_keyed(serialization, next_key(), [this, p] {
    busy_ = false;
    deliver(p);
    maybe_transmit();
  }, sim::EventCategory::kNet);
}

void Port::deliver(Packet* p) {
  for (TxTap* tap : tx_taps_) tap->on_transmit(*p, sim_.now());
  sim::Time delay = propagation_delay_;
  bool duplicate = false;
  if (hook_ != nullptr) {
    const LinkHook::Verdict v = hook_->on_transmit(*p, sim_.now());
    if (v.drop) {  // lost on the wire; no buffer ever held it
#if INCAST_AUDIT_ENABLED
      wire_bytes_ -= p->size_bytes;
      if (auto* a = INCAST_AUDITOR(sim_)) {
        a->on_bytes_dropped(p->size_bytes);
        a->record_depth("port.wire", 0, wire_bytes_);
      }
#endif
      release_pooled(p);
      return;
    }
    if (v.corrupt) p->corrupted = true;
    delay += v.extra_delay;
    duplicate = v.duplicate;
  }
  if (bridge_ != nullptr) {
    // Cross-domain link: propagation happens in the destination domain.
    // The packet leaves this port's pool and wire ledger here; the bridge's
    // ingress ledger owns it until the arrival event fires on the peer's
    // simulator. The (time, key) stamp is assigned now, on the transmit
    // side, so merge order at the destination is exactly the order an
    // intra-domain delivery would have had.
    const sim::Time at = sim_.now() + delay;
    const std::int64_t size = p->size_bytes;
    if (duplicate) {
      // Posted after the original with a later key from the same lane, so
      // the destination still delivers original-then-copy. The copy is a
      // fresh injection at the duplication point (same ledger rule as the
      // intra-domain path).
      Packet copy = *p;
#if INCAST_AUDIT_ENABLED
      if (auto* a = INCAST_AUDITOR(sim_)) a->on_bytes_injected(copy.size_bytes);
#endif
      bridge_->post(src_domain_, dst_domain_, at, next_key(), std::move(*p),
                    peer_, peer_in_port_);
      bridge_->post(src_domain_, dst_domain_, at, next_key(), std::move(copy),
                    peer_, peer_in_port_);
    } else {
      bridge_->post(src_domain_, dst_domain_, at, next_key(), std::move(*p),
                    peer_, peer_in_port_);
    }
#if INCAST_AUDIT_ENABLED
    wire_bytes_ -= size;
    if (auto* a = INCAST_AUDITOR(sim_)) a->record_depth("port.wire", 0, wire_bytes_);
#endif
    release_pooled(p);
    return;
  }
  if (duplicate) {
    // Scheduled after the original at the same timestamp, so FIFO
    // tie-breaking delivers original-then-copy.
    Packet* copy = acquire_pooled();
    *copy = *p;
#if INCAST_AUDIT_ENABLED
    // A duplicated packet is a fresh injection at the duplication point —
    // that keeps the conservation ledger balanced when the copy is later
    // delivered or dropped like any other packet.
    wire_bytes_ += copy->size_bytes;
    if (auto* a = INCAST_AUDITOR(sim_)) a->on_bytes_injected(copy->size_bytes);
#endif
    sim_.schedule_in_keyed(delay, next_key(), [this, p] { arrive(p); },
                           sim::EventCategory::kNet);
    sim_.schedule_in_keyed(delay, next_key(), [this, copy] { arrive(copy); },
                           sim::EventCategory::kNet);
    return;
  }
  sim_.schedule_in_keyed(delay, next_key(), [this, p] { arrive(p); },
                         sim::EventCategory::kNet);
}

void Port::arrive(Packet* p) {
  // Move to the stack and release the slot first: receive() can re-enter
  // this port (a switch forwarding back out, a host ACKing) and acquire it.
  Packet delivered = std::move(*p);
  release_pooled(p);
#if INCAST_AUDIT_ENABLED
  wire_bytes_ -= delivered.size_bytes;
  if (auto* a = INCAST_AUDITOR(sim_)) {
    a->record_depth("port.wire", 0, wire_bytes_);
  }
#endif
  peer_->receive(std::move(delivered), peer_in_port_);
}

void connect_duplex(Node& a, std::size_t ap, Node& b, std::size_t bp) {
  a.port(ap).connect(b, bp);
  b.port(bp).connect(a, ap);
}

}  // namespace incast::net
