// DomainBridge: cross-domain packet transport for the parallel engine.
//
// Under rack decomposition (fabric/fat_tree.h + sim/parallel_simulator.h)
// every link whose endpoints live in different domains routes its
// deliveries through this bridge instead of scheduling on the transmitting
// port's own simulator:
//
//   transmit side (during a window, on the src domain's thread):
//     Port::deliver posts {arrival time, tie-break key, packet, dst node,
//     in-port} to the (src, dst) mailbox — a plain vector append; the
//     mailbox is written by exactly one thread per window and read only at
//     the barrier, so the barrier mutex is the entire synchronization story.
//
//   barrier (coordinator, all domains quiescent):
//     drain_all() moves every entry into the destination domain's event
//     queue as a keyed arrival event. Keys were assigned on the transmit
//     side from the transmitting node's lane, so the destination queue's
//     (time, key) comparator merges cross-domain arrivals into exactly the
//     position an intra-domain delivery would have occupied — no sorting
//     pass, no per-mailbox cursors.
//
//     Conservative contract: every drained entry must arrive at or after
//     the end of the window that just executed. An earlier entry means the
//     configured lookahead overstates some link's propagation delay; the
//     violation is reported to the auditor (strict mode aborts the run) and
//     the delivery is clamped to the destination clock so a relaxed run can
//     limp on — explicitly outside the determinism contract.
//
// The bridge also owns the destination-side packet storage (one ingress
// pool per domain; only that domain's thread touches it between barriers)
// and two ledgers the experiment layer needs: per-domain live-packet
// counters (sampled at barriers for decomposition-invariant pool
// accounting) and in-flight ingress bytes (the bridge's share of the
// conservation residual at teardown).
#ifndef INCAST_NET_DOMAIN_BRIDGE_H_
#define INCAST_NET_DOMAIN_BRIDGE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "net/node.h"
#include "net/packet.h"
#include "net/packet_pool.h"
#include "sim/auditor.h"
#include "sim/domain.h"
#include "sim/simulator.h"
#include "sim/time.h"

namespace incast::net {

class DomainBridge : public MailboxEgress {
 public:
  // `sims[d]` is domain d's simulator; borrowed, must outlive the bridge.
  explicit DomainBridge(std::vector<sim::Simulator*> sims);

  DomainBridge(const DomainBridge&) = delete;
  DomainBridge& operator=(const DomainBridge&) = delete;

  // Wires `nodes` for parallel execution: every port gets its owning
  // domain's live-packet counter, and every port whose peer lives in a
  // different domain gets this bridge as its egress. Call after domains
  // are assigned (Node::set_domain) and topology is fully connected.
  // Returns the number of cross-domain ports wired.
  std::size_t attach(const std::vector<Node*>& nodes);

  // MailboxEgress: transmit-side handoff (src domain's thread).
  void post(int src_domain, int dst_domain, sim::Time at, std::uint64_t key,
            Packet&& p, Node* dst, std::size_t dst_in_port) override;

  // Barrier-time drain of every mailbox into destination event queues.
  // `completed_end` is the exclusive end of the window that just executed;
  // entries earlier than it are lookahead violations, reported to
  // `auditor` (may be null). Runs with all domains quiescent.
  void drain_all(sim::Time completed_end, sim::Auditor* auditor);

  // Per-domain live-packet counter (port pools + ingress pool of that
  // domain), for Port::set_live_counter and barrier sampling.
  [[nodiscard]] std::int64_t* live_counter(int domain) noexcept {
    return &per_domain_[static_cast<std::size_t>(domain)].live_packets;
  }
  // Packets currently alive across all domains (only meaningful at a
  // barrier, when every domain is quiescent).
  [[nodiscard]] std::int64_t live_packets() const noexcept;

  // Bytes inside the bridge (drained into ingress pools, arrival event not
  // yet fired) — the bridge's share of the conservation residual. Mailboxes
  // themselves are always empty at a barrier after drain_all().
  [[nodiscard]] std::int64_t ingress_wire_bytes() const noexcept;

  // Lifetime count of cross-domain packets posted.
  [[nodiscard]] std::uint64_t packets_bridged() const noexcept {
    return grid_.total_posted();
  }

 private:
  struct MailEntry {
    sim::Time at;
    std::uint64_t key;
    Node* dst;
    std::size_t dst_in_port;
    Packet packet;
  };

  // Everything one domain's thread touches on the packet path, padded so
  // two domains' hot counters never share a cache line.
  struct alignas(64) PerDomain {
    std::int64_t live_packets{0};
    std::int64_t ingress_bytes{0};
    PacketPool ingress_pool;
  };

  std::vector<sim::Simulator*> sims_;
  sim::MailboxGrid<MailEntry> grid_;
  std::vector<PerDomain> per_domain_;
};

}  // namespace incast::net

#endif  // INCAST_NET_DOMAIN_BRIDGE_H_
