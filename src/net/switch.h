// Switch: an output-queued switch with static destination-based routing.
//
// On ingress, the switch looks up the egress port for the packet's
// destination node and hands the packet to that port (whose DropTailQueue
// applies ECN marking and tail drop). Optionally, all of a switch's egress
// queues can share one SharedBufferPool, modelling the dynamically shared
// buffers of production ToRs.
#ifndef INCAST_NET_SWITCH_H_
#define INCAST_NET_SWITCH_H_

#include <memory>
#include <unordered_map>

#include "net/node.h"
#include "net/shared_buffer.h"

namespace incast::net {

class Switch : public Node {
 public:
  using Node::Node;

  // Routes packets destined to `dst` out of `out_port`.
  void set_route(NodeId dst, std::size_t out_port) { routes_[dst] = out_port; }

  // Creates a shared buffer pool and attaches it to every *current* port's
  // queue. Call after all ports have been added.
  SharedBufferPool& enable_shared_buffer(const SharedBufferPool::Config& config);

  [[nodiscard]] SharedBufferPool* shared_buffer() noexcept { return pool_.get(); }

  void receive(Packet p, std::size_t in_port) override;

  // Packets that arrived with no matching route (a topology bug).
  [[nodiscard]] std::int64_t unrouted_packets() const noexcept { return unrouted_packets_; }

 private:
  std::unordered_map<NodeId, std::size_t> routes_;
  std::unique_ptr<SharedBufferPool> pool_;
  std::int64_t unrouted_packets_{0};
};

}  // namespace incast::net

#endif  // INCAST_NET_SWITCH_H_
