// Switch: an output-queued switch with destination-based routing and ECMP.
//
// On ingress, the switch looks up the route entry for the packet's
// destination node. A route is a group of one or more egress ports: single-
// port groups forward directly (the classic static route), multi-port groups
// are ECMP groups resolved by a deterministic, seeded flow hash, so a given
// (src, dst, flow) always takes the same member port within a run and the
// whole path assignment is reproducible from the seed. The hash is symmetric
// in (src, dst): a flow's ACKs hash identically to its data, so switches
// with equally-sized groups pick the same member index in both directions.
//
// Routing is flat and allocation-free on the hot path (docs/PERFORMANCE.md):
// set_route()/set_ecmp_route() write straight into a per-destination
// next-hop array indexed by the dense NodeIds the topology builders assign,
// and the per-flow ECMP bookkeeping lives in an open-addressed table that
// only allocates when it grows — steady-state receive() touches no
// node-based container and performs no hashing beyond the flow mix itself.
//
// Egress queues apply ECN marking and tail drop; optionally all of a
// switch's queues can share one SharedBufferPool, modelling the dynamically
// shared buffers of production ToRs.
#ifndef INCAST_NET_SWITCH_H_
#define INCAST_NET_SWITCH_H_

#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "net/node.h"
#include "net/pfc.h"
#include "net/shared_buffer.h"

namespace incast::net {

class Switch : public Node, private DequeueTap {
 public:
  using Node::Node;

  // Routes packets destined to `dst` out of `out_port`.
  void set_route(NodeId dst, std::size_t out_port);

  // Routes packets destined to `dst` across an ECMP group. Member order is
  // part of the route: two switches programmed with their members in the
  // same peer order make symmetric choices for a flow and its ACKs.
  void set_ecmp_route(NodeId dst, std::vector<std::size_t> out_ports);

  // Seed for the ECMP flow hash. Distinct seeds give independent collision
  // patterns; the same seed reproduces the exact path assignment.
  void set_ecmp_seed(std::uint64_t seed) noexcept { ecmp_seed_ = seed; }
  [[nodiscard]] std::uint64_t ecmp_seed() const noexcept { return ecmp_seed_; }

  // The egress port receive() would choose for this (src, dst, flow);
  // nullopt if dst has no route. Pure: consults no per-flow state.
  [[nodiscard]] std::optional<std::size_t> route_port(NodeId src, NodeId dst,
                                                      FlowId flow) const;

  // Pre-sizes the per-flow ECMP table for `flows` distinct flow keys, so a
  // simulation whose fan-in is known up front never grows it mid-run.
  void reserve_flows(std::size_t flows);

  // Creates a shared buffer pool and attaches it to every *current* port's
  // queue. Call after all ports have been added.
  SharedBufferPool& enable_shared_buffer(const SharedBufferPool::Config& config);

  [[nodiscard]] SharedBufferPool* shared_buffer() noexcept { return pool_.get(); }

  // Turns on PFC lossless operation: one LosslessInputQueue per *current*
  // port (the full-duplex wiring convention means in-port index i pairs
  // with egress port i toward the same neighbor), this switch installed as
  // every port's DequeueTap so departures credit the right VIQ, and — when
  // a shared buffer is attached — the VIQ headroom carved out of the pool,
  // as real lossless ToRs reserve it. Call after all ports exist (and
  // after enable_shared_buffer, if used).
  void enable_pfc(const LosslessInputQueue::Config& config);

  [[nodiscard]] bool pfc_enabled() const noexcept { return !viqs_.empty(); }
  // The VIQ accounting for ingress port `i`; nullptr when PFC is off.
  [[nodiscard]] const LosslessInputQueue* viq(std::size_t i) const noexcept {
    return i < viqs_.size() ? &viqs_[i] : nullptr;
  }
  [[nodiscard]] std::size_t num_viqs() const noexcept { return viqs_.size(); }

  void receive(Packet p, std::size_t in_port) override;

  // Packets that arrived with no matching route (a topology bug).
  [[nodiscard]] std::int64_t unrouted_packets() const noexcept { return unrouted_packets_; }
  // Per-destination breakdown of unrouted packets, for loud teardown checks.
  [[nodiscard]] const std::unordered_map<NodeId, std::int64_t>& unrouted_by_dst()
      const noexcept {
    return unrouted_by_dst_;
  }

  // ECMP introspection, fed by traffic through multi-port groups.
  // Distinct flow keys observed per egress port (ACKs and data of one flow
  // share a key, so a bidirectional flow counts once per switch it crosses).
  [[nodiscard]] std::vector<std::int64_t> ecmp_flows_by_port() const;
  // Times a flow key was observed resolving to a different port than before.
  // Zero for a fixed seed and static groups — the path-stability invariant.
  [[nodiscard]] std::int64_t ecmp_path_changes() const noexcept {
    return ecmp_path_changes_;
  }
  // Distinct flow keys observed crossing multi-port groups.
  [[nodiscard]] std::size_t ecmp_flow_count() const noexcept { return flow_count_; }

  // Bytes held by the routing structures (flat next-hop arrays plus the
  // per-flow ECMP table) — this switch's contribution to the experiment
  // bytes-per-flow budget.
  [[nodiscard]] std::size_t routing_bytes() const noexcept;

 private:
  // One destination's slice of route_ports_; count == 0 means unrouted.
  struct RouteRef {
    std::uint32_t offset{0};
    std::uint32_t count{0};
  };

  [[nodiscard]] std::uint64_t flow_key(NodeId src, NodeId dst, FlowId flow) const noexcept;

  // Grows route_ref_ to cover `dst` and points it at a fresh group slice.
  // Re-programming a destination abandons its old slice (construction-time
  // only; topology builders program each (switch, dst) exactly once).
  void store_route(NodeId dst, const std::size_t* ports, std::size_t count);

  // Records `out` as the chosen port for `key` in the open-addressed flow
  // table, bumping ecmp_path_changes_ when a key re-resolves differently.
  void record_flow_choice(std::uint64_t key, std::uint32_t out);
  // Rebuilds the flow table at `slots` capacity (power of two).
  void rehash_flows(std::size_t slots);

  // DequeueTap: a packet left egress port — credit the VIQ it was charged
  // to on arrival (if any).
  void on_dequeue(const Packet& p, sim::Time now) override;
  // Credits `bytes` back to VIQ `viq`, sending the resume frame upstream
  // when the credit crosses XON.
  void credit_viq(std::size_t viq, std::int64_t bytes);
  // Applies an arriving pause/resume control frame to the egress port
  // facing the neighbor that sent it.
  void apply_ctrl(const Packet& p, std::size_t in_port);

  // Flat routing: route_ref_[dst] slices route_ports_ (group members in
  // programmed order). Memory is proportional to the highest routed NodeId,
  // which the topology builders keep dense.
  std::vector<RouteRef> route_ref_;
  std::vector<std::uint32_t> route_ports_;

  std::unique_ptr<SharedBufferPool> pool_;
  std::vector<LosslessInputQueue> viqs_;
  std::uint64_t ecmp_seed_{1};

  // Flow key -> last chosen port, recorded only for multi-port groups.
  // Open-addressed linear probing over parallel arrays; flow_ports_[i] ==
  // kEmptyFlowSlot marks a free slot (keys are already avalanche-mixed, so
  // key & mask is the probe start). Grows by doubling at 50% load — the
  // only allocation the routing path can ever perform.
  static constexpr std::uint32_t kEmptyFlowSlot = 0xffffffffu;
  std::vector<std::uint64_t> flow_keys_;
  std::vector<std::uint32_t> flow_ports_;
  std::size_t flow_count_{0};

  std::int64_t ecmp_path_changes_{0};
  std::int64_t unrouted_packets_{0};
  std::unordered_map<NodeId, std::int64_t> unrouted_by_dst_;
};

// Throws std::runtime_error naming the switch, the offending destination(s),
// and the packet counts if `sw` blackholed any packet. Experiments call this
// at teardown so a routing bug fails the run loudly instead of silently
// reducing traffic.
void check_no_unrouted(const Switch& sw);

// Checks every switch in the collection.
void check_no_unrouted(const std::vector<Switch*>& switches);

}  // namespace incast::net

#endif  // INCAST_NET_SWITCH_H_
