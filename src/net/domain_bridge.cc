#include "net/domain_bridge.h"

#include <cassert>
#include <utility>

namespace incast::net {

DomainBridge::DomainBridge(std::vector<sim::Simulator*> sims)
    : sims_{std::move(sims)},
      grid_{static_cast<int>(sims_.size())},
      per_domain_{sims_.size()} {
  assert(!sims_.empty());
}

std::size_t DomainBridge::attach(const std::vector<Node*>& nodes) {
  std::size_t bridged = 0;
  for (Node* node : nodes) {
    const int dom = node->domain();
    assert(dom >= 0 && dom < grid_.domains());
    for (std::size_t i = 0; i < node->num_ports(); ++i) {
      Port& port = node->port(i);
      port.set_live_counter(live_counter(dom));
      if (port.connected() && port.peer()->domain() != dom) {
        port.set_bridge(this, dom, port.peer()->domain());
        ++bridged;
      }
    }
  }
  return bridged;
}

void DomainBridge::post(int src_domain, int dst_domain, sim::Time at,
                        std::uint64_t key, Packet&& p, Node* dst,
                        std::size_t dst_in_port) {
  grid_.box(src_domain, dst_domain)
      .post(MailEntry{at, key, dst, dst_in_port, std::move(p)});
}

void DomainBridge::drain_all(sim::Time completed_end, sim::Auditor* auditor) {
  const int n = grid_.domains();
  for (int src = 0; src < n; ++src) {
    for (int dst = 0; dst < n; ++dst) {
      sim::DomainMailbox<MailEntry>& box = grid_.box(src, dst);
      if (box.entries().empty()) continue;
      PerDomain& pd = per_domain_[static_cast<std::size_t>(dst)];
      sim::Simulator& dsim = *sims_[static_cast<std::size_t>(dst)];
      for (MailEntry& e : box.entries()) {
        sim::Time at = e.at;
        if (at < completed_end) {
          // Conservative contract broken: this packet should have been
          // delivered inside the window that already executed. Strict
          // audit throws here; relaxed counts it, and we clamp the
          // delivery to the destination clock so the run can limp on
          // (results are then *not* decomposition-invariant).
          if (auditor != nullptr) {
            auditor->report_lookahead(at.ns(), completed_end.ns());
          }
          if (at < dsim.now()) at = dsim.now();
        }
        Packet* p = pd.ingress_pool.acquire();
        *p = std::move(e.packet);
        ++pd.live_packets;
        pd.ingress_bytes += p->size_bytes;
        PerDomain* owner = &pd;
        Node* dst_node = e.dst;
        const std::size_t in_port = e.dst_in_port;
        dsim.schedule_at_keyed(at, e.key, [owner, p, dst_node, in_port] {
          // Mirror of Port::arrive: move to the stack and release the slot
          // first — receive() can re-enter ports of the same domain.
          Packet delivered = std::move(*p);
          owner->ingress_pool.release(p);
          --owner->live_packets;
          owner->ingress_bytes -= delivered.size_bytes;
          dst_node->receive(std::move(delivered), in_port);
        }, sim::EventCategory::kNet);
      }
      box.clear();
    }
  }
}

std::int64_t DomainBridge::live_packets() const noexcept {
  std::int64_t total = 0;
  for (const PerDomain& pd : per_domain_) total += pd.live_packets;
  return total;
}

std::int64_t DomainBridge::ingress_wire_bytes() const noexcept {
  std::int64_t total = 0;
  for (const PerDomain& pd : per_domain_) total += pd.ingress_bytes;
  return total;
}

}  // namespace incast::net
