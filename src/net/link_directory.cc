#include "net/link_directory.h"

#include <cassert>
#include <stdexcept>
#include <utility>

namespace incast::net {

Port* LinkDirectory::find_link(const std::string& name) const {
  const auto it = by_name_.find(name);
  return it == by_name_.end() ? nullptr : it->second;
}

Port& LinkDirectory::link(const std::string& name) const {
  if (Port* port = find_link(name)) return *port;
  std::string msg = "no link named '" + name + "'; registered links:";
  for (const std::string& n : names_) msg += " " + n;
  throw std::out_of_range(msg);
}

std::int64_t LinkDirectory::residual_buffered_bytes() const {
  std::int64_t total = 0;
  for (const auto& [name, port] : by_name_) {
    total += port->queue().bytes() + port->wire_bytes();
  }
  return total;
}

void LinkDirectory::register_link(std::string name, Port& port) {
  const auto [it, inserted] = by_name_.emplace(std::move(name), &port);
  assert(inserted && "duplicate link name");
  (void)inserted;
  names_.push_back(it->first);
}

void LinkDirectory::register_duplex(Node& a, std::size_t ap, Node& b, std::size_t bp) {
  register_link(a.name() + "->" + b.name(), a.port(ap));
  register_link(b.name() + "->" + a.name(), b.port(bp));
}

}  // namespace incast::net
