#include "net/link_directory.h"

#include <cassert>
#include <stdexcept>
#include <utility>

#include "net/switch.h"

namespace incast::net {

Port* LinkDirectory::find_link(const std::string& name) const {
  const auto it = by_name_.find(name);
  return it == by_name_.end() ? nullptr : it->second;
}

Port& LinkDirectory::link(const std::string& name) const {
  if (Port* port = find_link(name)) return *port;
  std::string msg = "no link named '" + name + "'; registered links:";
  for (const std::string& n : names_) msg += " " + n;
  throw std::out_of_range(msg);
}

std::int64_t LinkDirectory::residual_buffered_bytes() const {
  std::int64_t total = 0;
  for (const auto& [name, port] : by_name_) {
    total += port->queue().bytes() + port->wire_bytes();
  }
  return total;
}

void LinkDirectory::register_link(std::string name, Port& port) {
  const auto [it, inserted] = by_name_.emplace(std::move(name), &port);
  assert(inserted && "duplicate link name");
  (void)inserted;
  names_.push_back(it->first);
}

void LinkDirectory::register_duplex(Node& a, std::size_t ap, Node& b, std::size_t bp) {
  register_link(a.name() + "->" + b.name(), a.port(ap));
  register_link(b.name() + "->" + a.name(), b.port(bp));
  ingress_by_link_[a.name() + "->" + b.name()] = Ingress{&b, bp};
  ingress_by_link_[b.name() + "->" + a.name()] = Ingress{&a, ap};
}

const LosslessInputQueue* LinkDirectory::find_viq(const std::string& viq_name) const {
  const std::size_t sep = viq_name.rfind(":viq");
  if (sep == std::string::npos) return nullptr;
  const std::string link = viq_name.substr(0, sep);
  const std::string index_text = viq_name.substr(sep + 4);
  if (index_text.empty()) return nullptr;
  std::size_t index = 0;
  for (const char c : index_text) {
    if (c < '0' || c > '9') return nullptr;
    index = index * 10 + static_cast<std::size_t>(c - '0');
  }
  const auto it = ingress_by_link_.find(link);
  if (it == ingress_by_link_.end() || it->second.in_port != index) return nullptr;
  const auto* sw = dynamic_cast<const Switch*>(it->second.node);
  return sw != nullptr ? sw->viq(index) : nullptr;
}

std::vector<std::string> LinkDirectory::viq_names() const {
  std::vector<std::string> out;
  for (const std::string& name : names_) {
    const auto it = ingress_by_link_.find(name);
    if (it == ingress_by_link_.end()) continue;
    const auto* sw = dynamic_cast<const Switch*>(it->second.node);
    if (sw == nullptr || sw->viq(it->second.in_port) == nullptr) continue;
    out.push_back(name + ":viq" + std::to_string(it->second.in_port));
  }
  return out;
}

}  // namespace incast::net
