#include "net/topology.h"

#include <string>

#include "obs/flow_trace.h"

namespace incast::net {

Dumbbell::Dumbbell(sim::Simulator& sim, const DumbbellConfig& config) : config_{config} {
  NodeId next_id = 0;

  senders_.reserve(static_cast<std::size_t>(config_.num_senders));
  for (int i = 0; i < config_.num_senders; ++i) {
    senders_.push_back(
        std::make_unique<Host>(sim, next_id++, "sender" + std::to_string(i)));
  }
  receivers_.reserve(static_cast<std::size_t>(config_.num_receivers));
  for (int i = 0; i < config_.num_receivers; ++i) {
    receivers_.push_back(
        std::make_unique<Host>(sim, next_id++, "receiver" + std::to_string(i)));
  }
  tor_s_ = std::make_unique<Switch>(sim, next_id++, "tor_s");
  tor_r_ = std::make_unique<Switch>(sim, next_id++, "tor_r");

  // Sender hosts <-> sender ToR.
  for (int i = 0; i < config_.num_senders; ++i) {
    Host& h = *senders_[static_cast<std::size_t>(i)];
    h.add_nic(config_.host_link, config_.link_delay, config_.host_queue);
    const std::size_t tor_port =
        tor_s_->add_port(config_.host_link, config_.link_delay, config_.switch_queue);
    connect_duplex(h, 0, *tor_s_, tor_port);
    register_duplex(h, 0, *tor_s_, tor_port);
    tor_s_->set_route(h.id(), tor_port);
  }

  // Inter-ToR link.
  const std::size_t s_uplink =
      tor_s_->add_port(config_.core_link, config_.link_delay, config_.switch_queue);
  const std::size_t r_uplink =
      tor_r_->add_port(config_.core_link, config_.link_delay, config_.switch_queue);
  connect_duplex(*tor_s_, s_uplink, *tor_r_, r_uplink);
  register_duplex(*tor_s_, s_uplink, *tor_r_, r_uplink);
  s_uplink_port_ = s_uplink;
  r_uplink_port_ = r_uplink;

  // Receiver hosts <-> receiver ToR.
  const sim::Bandwidth rx_link = config_.receiver_link.value_or(config_.host_link);
  receiver_downlink_port_.reserve(static_cast<std::size_t>(config_.num_receivers));
  for (int i = 0; i < config_.num_receivers; ++i) {
    Host& h = *receivers_[static_cast<std::size_t>(i)];
    h.add_nic(rx_link, config_.link_delay, config_.host_queue);
    const std::size_t tor_port =
        tor_r_->add_port(rx_link, config_.link_delay, config_.switch_queue);
    connect_duplex(h, 0, *tor_r_, tor_port);
    register_duplex(h, 0, *tor_r_, tor_port);
    tor_r_->set_route(h.id(), tor_port);
    receiver_downlink_port_.push_back(tor_port);
  }

  // Routes across the core: everything not local goes over the uplink.
  for (const auto& h : receivers_) tor_s_->set_route(h->id(), s_uplink);
  for (const auto& h : senders_) tor_r_->set_route(h->id(), r_uplink);

  if (config_.shared_buffer.has_value()) {
    tor_r_->enable_shared_buffer(*config_.shared_buffer);
  }

  if (config_.pfc.has_value()) {
    tor_s_->enable_pfc(*config_.pfc);
    tor_r_->enable_pfc(*config_.pfc);
  }

  // Switch egress ports stamp INT telemetry onto packets that request it
  // (needed by INT-based CCAs like HPCC; free for everything else). They
  // are also tagged as ToR tier for the flow tracer's per-tier queueing
  // attribution; host NICs below are the host tier.
  for (Switch* sw : {tor_s_.get(), tor_r_.get()}) {
    for (std::size_t i = 0; i < sw->num_ports(); ++i) {
      sw->port(i).set_int_stamping(true);
      sw->port(i).set_trace_tier(obs::HopTier::kTor);
    }
  }
  for (const auto& h : senders_) h->port(0).set_trace_tier(obs::HopTier::kHost);
  for (const auto& h : receivers_) h->port(0).set_trace_tier(obs::HopTier::kHost);
}

DropTailQueue& Dumbbell::bottleneck_queue(int i) {
  return tor_r_->port(receiver_downlink_port_.at(static_cast<std::size_t>(i))).queue();
}

sim::Time Dumbbell::base_rtt(std::int64_t data_bytes) const {
  const std::int64_t ack_bytes = kHeaderBytes;
  // Three links each way; the data packet serializes on each forward link,
  // the ACK on each reverse link.
  const sim::Bandwidth rx_link = config_.receiver_link.value_or(config_.host_link);
  const sim::Time prop = config_.link_delay * 6;
  const sim::Time data_ser = config_.host_link.serialization_time(data_bytes) +
                             config_.core_link.serialization_time(data_bytes) +
                             rx_link.serialization_time(data_bytes);
  const sim::Time ack_ser = config_.host_link.serialization_time(ack_bytes) +
                            config_.core_link.serialization_time(ack_bytes) +
                            rx_link.serialization_time(ack_bytes);
  return prop + data_ser + ack_ser;
}

}  // namespace incast::net
