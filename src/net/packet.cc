#include "net/packet.h"

#include <cstdio>

namespace incast::net {

std::string Packet::to_string() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "pkt{%u->%u flow=%llu seq=%lld ack=%lld len=%lld%s%s%s%s%s}", src, dst,
                static_cast<unsigned long long>(tcp.flow_id), static_cast<long long>(tcp.seq),
                static_cast<long long>(tcp.ack), static_cast<long long>(payload_bytes),
                tcp.has_ack ? " ACK" : "", tcp.syn ? " SYN" : "", tcp.fin ? " FIN" : "",
                tcp.ece ? " ECE" : "", ecn == Ecn::kCe ? " CE" : "");
  return buf;
}

Packet make_data_packet(NodeId src, NodeId dst, FlowId flow, std::int64_t seq,
                        std::int64_t payload_bytes) {
  Packet p;
  p.src = src;
  p.dst = dst;
  p.payload_bytes = payload_bytes;
  p.size_bytes = payload_bytes + kHeaderBytes;
  p.ecn = Ecn::kEct0;  // DCTCP marks all data packets as ECN-capable
  p.tcp.flow_id = flow;
  p.tcp.seq = seq;
  return p;
}

Packet make_ack_packet(NodeId src, NodeId dst, FlowId flow, std::int64_t ack, bool ece) {
  Packet p;
  p.src = src;
  p.dst = dst;
  p.payload_bytes = 0;
  p.size_bytes = kHeaderBytes;
  p.ecn = Ecn::kNotEct;  // pure ACKs are not ECN-capable (standard practice)
  p.tcp.flow_id = flow;
  p.tcp.ack = ack;
  p.tcp.has_ack = true;
  p.tcp.ece = ece;
  return p;
}

Packet make_nack_packet(NodeId src, NodeId dst, FlowId flow, std::int64_t seq, bool ece) {
  Packet p;
  p.src = src;
  p.dst = dst;
  p.payload_bytes = 0;
  p.size_bytes = kHeaderBytes;
  p.ecn = Ecn::kNotEct;
  p.tcp.flow_id = flow;
  p.tcp.seq = seq;
  p.tcp.nack = true;
  p.tcp.ece = ece;
  return p;
}

Packet make_pause_frame(NodeId src, NodeId dst, std::int64_t pause_ns) {
  Packet p;
  p.src = src;
  p.dst = dst;
  p.size_bytes = kPfcFrameBytes;
  p.ctrl.type = CtrlType::kPfcPause;
  p.ctrl.pause_ns = pause_ns;
  return p;
}

Packet make_resume_frame(NodeId src, NodeId dst) {
  Packet p;
  p.src = src;
  p.dst = dst;
  p.size_bytes = kPfcFrameBytes;
  p.ctrl.type = CtrlType::kPfcResume;
  return p;
}

}  // namespace incast::net
