// Topology builders.
//
// Dumbbell reproduces the paper's Section 4 setup: N sender hosts, each on a
// 10 Gbps link to a sender-side ToR, a 100 Gbps inter-ToR link, and one (or
// more) receiver hosts on 10 Gbps downlinks from the receiver-side ToR. The
// incast bottleneck is the receiver ToR's downlink queue. Multiple receivers
// on the same ToR model rack-level buffer contention (Section 3.4) when a
// shared buffer pool is enabled.
#ifndef INCAST_NET_TOPOLOGY_H_
#define INCAST_NET_TOPOLOGY_H_

#include <memory>
#include <optional>
#include <vector>

#include "net/host.h"
#include "net/link_directory.h"
#include "net/switch.h"
#include "sim/simulator.h"
#include "sim/units.h"

namespace incast::net {

struct DumbbellConfig {
  int num_senders{100};
  int num_receivers{1};
  // Host-ToR link rate. The paper uses 10 Gbps for the 10:1 oversubscription
  // against the 100 Gbps inter-ToR link.
  sim::Bandwidth host_link{sim::Bandwidth::gigabits_per_second(10)};
  sim::Bandwidth core_link{sim::Bandwidth::gigabits_per_second(100)};
  // Receiver downlink rate; unset means host_link. Setting it below
  // host_link makes the receiver downlink a bottleneck even for one sender
  // (used by loss-recovery tests and asymmetric-rate experiments).
  std::optional<sim::Bandwidth> receiver_link;
  // Per-link propagation delay. Default yields a ~30 us base RTT over the
  // three-hop path once serialization is included.
  sim::Time link_delay{sim::Time::nanoseconds(4500)};
  // Egress queue config for every switch port (capacity 1333 pkts = 2 MB of
  // MTU frames, ECN mark at 65 pkts — the paper's simulation settings).
  DropTailQueue::Config switch_queue{.capacity_packets = 1333, .ecn_threshold_packets = 65};
  // Host NIC queue: effectively unbounded and unmarked; cwnd limits what a
  // host can have queued locally.
  DropTailQueue::Config host_queue{.capacity_packets = 1'000'000, .ecn_threshold_packets = 0};
  // If set, the receiver-side ToR shares one buffer pool across its egress
  // queues (Dynamic Threshold), as production ToRs do.
  std::optional<SharedBufferPool::Config> shared_buffer;
  // If set, both ToRs run PFC lossless Ethernet: per-ingress virtual input
  // queues that pause the upstream hop (hosts included) at XOFF. Combine
  // with large switch_queue capacities so PFC backpressure, not tail drop,
  // is the binding constraint.
  std::optional<LosslessInputQueue::Config> pfc;
};

class Dumbbell : public LinkDirectory {
 public:
  Dumbbell(sim::Simulator& sim, const DumbbellConfig& config);

  [[nodiscard]] Host& sender(int i) { return *senders_.at(static_cast<std::size_t>(i)); }
  [[nodiscard]] Host& receiver(int i = 0) {
    return *receivers_.at(static_cast<std::size_t>(i));
  }
  [[nodiscard]] Switch& sender_tor() noexcept { return *tor_s_; }
  [[nodiscard]] Switch& receiver_tor() noexcept { return *tor_r_; }

  // The incast bottleneck: receiver ToR's egress queue toward receiver i.
  [[nodiscard]] DropTailQueue& bottleneck_queue(int i = 0);

  // All switches, for teardown checks (check_no_unrouted).
  [[nodiscard]] std::vector<Switch*> switches() { return {tor_s_.get(), tor_r_.get()}; }

  // The inter-ToR link's two directions: tx carries sender->receiver data,
  // rx carries the returning ACKs.
  // Deprecated: prefer the uniform LinkDirectory accessors, which work for
  // any topology — link("tor_s->tor_r") and link("tor_r->tor_s").
  [[nodiscard]] Port& core_link_tx() { return tor_s_->port(s_uplink_port_); }
  [[nodiscard]] Port& core_link_rx() { return tor_r_->port(r_uplink_port_); }

  [[nodiscard]] int num_senders() const noexcept { return config_.num_senders; }
  [[nodiscard]] int num_receivers() const noexcept { return config_.num_receivers; }
  [[nodiscard]] const DumbbellConfig& config() const noexcept { return config_; }

  // Base (unloaded) RTT between a sender and a receiver for an MTU-sized
  // data packet and its pure ACK.
  [[nodiscard]] sim::Time base_rtt(std::int64_t data_bytes = 1500) const;

 private:
  DumbbellConfig config_;
  std::vector<std::unique_ptr<Host>> senders_;
  std::vector<std::unique_ptr<Host>> receivers_;
  std::unique_ptr<Switch> tor_s_;
  std::unique_ptr<Switch> tor_r_;
  // Port index on tor_r_ of the downlink to receiver i.
  std::vector<std::size_t> receiver_downlink_port_;
  // Inter-ToR uplink port indices on each ToR.
  std::size_t s_uplink_port_{0};
  std::size_t r_uplink_port_{0};
};

}  // namespace incast::net

#endif  // INCAST_NET_TOPOLOGY_H_
