// Packet: the unit of data moved by the network simulator.
//
// One struct models the IP fields we need (ECN codepoint) plus a simplified
// TCP header (sequence/ack numbers, flags, ECE/CWR echo bits). Packets are
// plain values: they are moved through queues and links by value, never
// shared, so there is no aliasing to reason about.
#ifndef INCAST_NET_PACKET_H_
#define INCAST_NET_PACKET_H_

#include <array>
#include <cstdint>
#include <string>

#include "sim/time.h"

namespace incast::net {

// Identifies a node (host or switch) in the simulated network.
using NodeId = std::uint32_t;

// Identifies one TCP connection, globally unique across the simulation.
using FlowId = std::uint64_t;

inline constexpr NodeId kInvalidNodeId = static_cast<NodeId>(-1);

// IP ECN field (RFC 3168). Senders mark data packets ECT(0); switches
// escalate ECT packets to CE when congested; non-ECT packets are dropped
// instead of marked.
enum class Ecn : std::uint8_t {
  kNotEct = 0,
  kEct0 = 1,
  kEct1 = 2,
  kCe = 3,
};

[[nodiscard]] constexpr bool is_ect(Ecn e) noexcept { return e != Ecn::kNotEct; }

// A SACK block: one contiguous range of out-of-order bytes the receiver
// holds (RFC 2018). Real TCP fits at most 3-4 blocks in the option space;
// we model the same limit.
struct SackBlock {
  std::int64_t start{0};  // first byte of the range
  std::int64_t end{0};    // one past the last byte

  friend constexpr bool operator==(const SackBlock&, const SackBlock&) = default;
};

inline constexpr int kMaxSackBlocks = 3;

// One hop's in-band network telemetry record (INT), in the style HPCC
// [Li et al., SIGCOMM 2019] and successors rely on. Switch egress ports
// stamp these onto INT-enabled data packets at dequeue; the receiver
// echoes the stack back to the sender on ACKs.
struct IntHopRecord {
  std::int64_t qlen_bytes{0};     // egress queue depth when the packet left
  std::int64_t tx_bytes{0};       // cumulative bytes transmitted by the port
  std::int64_t link_bps{0};       // port line rate
  std::int64_t timestamp_ns{0};   // stamping time

  friend constexpr bool operator==(const IntHopRecord&, const IntHopRecord&) = default;
};

// Sized for the deepest supported path: a 3-tier fat-tree crosses five
// switch egress ports (leaf, agg, spine, agg, leaf) plus margin.
inline constexpr int kMaxIntHops = 6;

// Simplified TCP header. Sequence numbers are 64-bit byte offsets — the
// simulator never transfers enough to wrap 64 bits, which removes wraparound
// from the protocol core (the wrap-safe 32-bit arithmetic used by real TCP
// is provided and tested separately in tcp/sequence.h).
struct TcpHeader {
  FlowId flow_id{0};
  std::int64_t seq{0};  // first payload byte carried by this segment
  std::int64_t ack{0};  // next byte expected by the receiver
  bool syn{false};
  bool fin{false};
  bool has_ack{false};  // ACK flag
  bool ece{false};      // ECN-Echo: receiver -> sender congestion signal
  bool cwr{false};      // Congestion Window Reduced: sender -> receiver
  // NDP-style negative acknowledgment: the receiver saw a trimmed header
  // for the segment starting at `seq` and asks for an immediate
  // retransmission (no RTO involved).
  bool nack{false};
  // SACK option: up to kMaxSackBlocks ranges, most recently changed first.
  std::uint8_t num_sack{0};
  std::array<SackBlock, kMaxSackBlocks> sack{};
};

// MAC-layer control frames (IEEE 802.1Qbb priority flow control). A pause
// frame asks the immediate upstream neighbor to stop transmitting data on
// the reverse direction of the link it arrived on; a resume frame (pause
// with zero quanta, in real PFC) lifts the pause early. Control frames are
// consumed by the neighbor, never forwarded, and bypass egress queues on a
// strict-priority control path — a paused port still emits them.
enum class CtrlType : std::uint8_t { kNone = 0, kPfcPause, kPfcResume };

struct CtrlHeader {
  CtrlType type{CtrlType::kNone};
  // Pause duration (the PFC quanta field, converted to time). The paused
  // port auto-resumes when it expires, so a lost resume frame degrades
  // into a shorter pause instead of a deadlock.
  std::int64_t pause_ns{0};
};

// Wire size charged to a PFC pause/resume frame (minimum Ethernet frame).
inline constexpr std::int64_t kPfcFrameBytes = 64;

// Receiver-driven credit transport messages (Homa/pHost/ExpressPass-style;
// the "receiver-based" class the paper's Section 5 discusses). kRts
// announces demand, kGrant is a credit for one segment, kData carries
// granted bytes.
enum class RdtType : std::uint8_t { kNone = 0, kRts, kGrant, kData };

struct RdtHeader {
  RdtType type{RdtType::kNone};
  std::int64_t offset{0};  // grant/data: first byte; rts: total demand
  std::int64_t length{0};  // grant/data: byte count
};

// INT stack carried by a packet (on data: stamped by switches; on ACKs:
// echoed by the receiver).
struct IntStack {
  bool enabled{false};
  std::uint8_t num_hops{0};
  std::array<IntHopRecord, kMaxIntHops> hops{};

  // Appends one hop record. Returns false when the stack is already full —
  // the record is NOT recorded and the caller must count the overflow
  // (surfaced as the net.int.hop_overflow metric) instead of losing the
  // deepest hops silently.
  [[nodiscard]] bool push(const IntHopRecord& rec) noexcept {
    if (num_hops >= kMaxIntHops) return false;
    hops[num_hops++] = rec;
    return true;
  }
};

struct Packet {
  NodeId src{kInvalidNodeId};
  NodeId dst{kInvalidNodeId};
  std::int64_t size_bytes{0};     // on-the-wire size, headers included
  std::int64_t payload_bytes{0};  // TCP payload carried
  Ecn ecn{Ecn::kNotEct};
  TcpHeader tcp{};
  RdtHeader rdt{};
  CtrlHeader ctrl{};
  IntStack int_stack{};
  // Ingress virtual input queue this packet is charged to at the current
  // PFC-enabled switch (-1 = unaccounted). Re-tagged at every lossless hop;
  // meaningless elsewhere.
  std::int16_t viq{-1};
  // Payload removed by a trimming queue (net::CompositeQueue): only the
  // header survived and the receiver should NACK for the missing bytes.
  bool trimmed{false};
  bool is_retransmit{false};  // set by the sender on retransmitted data
  // Payload mangled in flight (fault injection): the frame arrives but its
  // checksum fails, so the receiving NIC discards it without any protocol
  // reaction — the sender learns about it only through SACK holes or RTO.
  bool corrupted{false};
  // Flow-trace sampling (obs/flow_trace.h): set by the sender on data
  // packets of sampled flows. Ports stamp enqueue time and the pause ledger
  // at admission and read them back at dequeue to attribute per-hop
  // residency. Inert when no FlowTracer is attached — pure data, never
  // consulted by forwarding or protocol logic.
  bool flow_traced{false};
  std::int64_t trace_enqueue_ns{-1};  // -1 = not stamped at this hop
  std::int64_t trace_paused_ns{0};    // port's paused_ns() at enqueue
  sim::Time sent_at{};        // when the sender emitted it (diagnostics)
  std::uint64_t uid{0};       // unique per packet (diagnostics)

  [[nodiscard]] bool is_data() const noexcept { return payload_bytes > 0; }
  [[nodiscard]] bool is_ctrl() const noexcept { return ctrl.type != CtrlType::kNone; }

  [[nodiscard]] std::string to_string() const;
};

// Size of the combined TCP/IP header we charge each packet.
inline constexpr std::int64_t kHeaderBytes = 40;

// Builds a data segment. Wire size = payload + headers.
[[nodiscard]] Packet make_data_packet(NodeId src, NodeId dst, FlowId flow, std::int64_t seq,
                                      std::int64_t payload_bytes);

// Builds a pure ACK (no payload).
[[nodiscard]] Packet make_ack_packet(NodeId src, NodeId dst, FlowId flow, std::int64_t ack,
                                     bool ece);

// Builds an NDP-style NACK asking for the segment at `seq` again. `ece`
// echoes a CE mark observed on the trimmed header.
[[nodiscard]] Packet make_nack_packet(NodeId src, NodeId dst, FlowId flow, std::int64_t seq,
                                      bool ece);

// Builds a PFC pause (pause_ns > 0) or resume (kPfcResume) control frame
// for the hop src -> dst.
[[nodiscard]] Packet make_pause_frame(NodeId src, NodeId dst, std::int64_t pause_ns);
[[nodiscard]] Packet make_resume_frame(NodeId src, NodeId dst);

}  // namespace incast::net

#endif  // INCAST_NET_PACKET_H_
