// SharedBufferPool: a switch-wide packet memory shared across ports.
//
// Production ToRs ("dynamically shared buffers", paper Section 2) let all
// egress queues draw from one memory pool, with each queue's instantaneous
// cap set by the Dynamic Threshold algorithm (Choudhury & Hahne):
//
//   cap(queue) = alpha * (pool_total - pool_used)
//
// The paper stresses that its own ns-3 simulations did NOT model this, and
// that buffer sharing is why production incasts lose packets at flow counts
// where a dedicated per-port buffer would survive (Sections 3.4, 4.1.1).
// Modelling it here lets the fleet experiments produce realistic loss, and
// lets ablation A3 quantify the effect.
#ifndef INCAST_NET_SHARED_BUFFER_H_
#define INCAST_NET_SHARED_BUFFER_H_

#include <cassert>
#include <cstdint>

namespace incast::net {

class SharedBufferPool {
 public:
  struct Config {
    std::int64_t total_bytes{2 * 1024 * 1024};  // typical shallow ToR: a few MB
    double alpha{1.0};                          // Dynamic Threshold aggressiveness
  };

  explicit SharedBufferPool(const Config& config) noexcept : config_{config} {}

  // Asks whether a queue currently holding `queue_bytes` may admit a packet
  // of `packet_bytes`, and reserves the memory if so.
  [[nodiscard]] bool try_reserve(std::int64_t packet_bytes, std::int64_t queue_bytes) noexcept {
    const std::int64_t free_bytes = config_.total_bytes - used_bytes_;
    if (packet_bytes > free_bytes) return false;
    const auto cap = static_cast<std::int64_t>(config_.alpha * static_cast<double>(free_bytes));
    if (queue_bytes + packet_bytes > cap) return false;
    used_bytes_ += packet_bytes;
    return true;
  }

  // Returns memory when a packet leaves its queue.
  void release(std::int64_t packet_bytes) noexcept {
    assert(packet_bytes <= used_bytes_);
    used_bytes_ -= packet_bytes;
  }

  // Models contention from other traffic on the rack (the "rack-level
  // contention" of Section 3.4): bytes pinned by queues we do not simulate.
  void set_external_usage(std::int64_t bytes) noexcept {
    used_bytes_ += bytes - external_bytes_;
    external_bytes_ = bytes;
  }

  [[nodiscard]] std::int64_t used_bytes() const noexcept { return used_bytes_; }
  [[nodiscard]] std::int64_t free_bytes() const noexcept {
    return config_.total_bytes - used_bytes_;
  }
  [[nodiscard]] std::int64_t total_bytes() const noexcept { return config_.total_bytes; }

 private:
  Config config_;
  std::int64_t used_bytes_{0};
  std::int64_t external_bytes_{0};
};

}  // namespace incast::net

#endif  // INCAST_NET_SHARED_BUFFER_H_
