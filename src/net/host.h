// Host: an endhost with one NIC, flow demultiplexing, and telemetry taps.
//
// Hosts deliver arriving packets first to any registered IngressTaps (this
// is where the Millisampler attaches, mirroring its production deployment as
// an eBPF tc filter on the host NIC) and then to the PacketHandler
// registered for the packet's flow (a TCP endpoint).
#ifndef INCAST_NET_HOST_H_
#define INCAST_NET_HOST_H_

#include <unordered_map>
#include <vector>

#include "net/node.h"

namespace incast::net {

// Consumes packets addressed to a flow terminating at this host.
class PacketHandler {
 public:
  virtual ~PacketHandler() = default;
  virtual void handle_packet(Packet p) = 0;
};

// Observes every packet arriving at the host NIC (read-only).
class IngressTap {
 public:
  virtual ~IngressTap() = default;
  virtual void on_ingress(const Packet& p, sim::Time now) = 0;
};

class Host : public Node {
 public:
  using Node::Node;

  // Creates the NIC: an egress port of rate `bandwidth`. A host has exactly
  // one NIC; calling twice is a bug.
  std::size_t add_nic(sim::Bandwidth bandwidth, sim::Time propagation_delay,
                      const DropTailQueue::Config& queue_config);

  // Sends a packet out of the NIC.
  void send(Packet p);

  // Registers `handler` for packets of `flow`. The handler must outlive the
  // registration; unregister before destroying it.
  void register_flow(FlowId flow, PacketHandler* handler);
  void unregister_flow(FlowId flow);

  // Adds a read-only observer of all ingress packets (e.g. Millisampler).
  void add_ingress_tap(IngressTap* tap) { taps_.push_back(tap); }

  void receive(Packet p, std::size_t in_port) override;

  [[nodiscard]] sim::Bandwidth nic_bandwidth() const { return port(nic_port_).bandwidth(); }

  // Packets that arrived for a flow with no registered handler.
  [[nodiscard]] std::int64_t unclaimed_packets() const noexcept { return unclaimed_packets_; }

  // Checksum-failed frames discarded by the NIC — the simulator equivalent
  // of the rx_crc_errors counter real NICs expose. Ingress taps still see
  // these frames (host telemetry can count them); flow handlers never do,
  // so the transport observes pure silent loss.
  [[nodiscard]] std::int64_t corrupt_dropped_packets() const noexcept {
    return corrupt_dropped_packets_;
  }

  // PFC pause/resume frames the NIC consumed (lossless fabrics only).
  [[nodiscard]] std::int64_t pfc_frames_received() const noexcept {
    return pfc_frames_received_;
  }
  // Cumulative time the NIC spent PFC-paused — the host-side HoL-blocking
  // measure the collateral experiment reports.
  [[nodiscard]] std::int64_t nic_paused_ns() const { return port(nic_port_).paused_ns(); }

 private:
  std::size_t nic_port_{0};
  bool has_nic_{false};
  std::unordered_map<FlowId, PacketHandler*> flows_;
  std::vector<IngressTap*> taps_;
  std::int64_t unclaimed_packets_{0};
  std::int64_t corrupt_dropped_packets_{0};
  std::int64_t pfc_frames_received_{0};
};

}  // namespace incast::net

#endif  // INCAST_NET_HOST_H_
