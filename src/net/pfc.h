// LosslessInputQueue: per-ingress PFC accounting (IEEE 802.1Qbb).
//
// A lossless switch tracks, per ingress port, how many bytes of that port's
// traffic are still buffered inside the switch — the "virtual input queue"
// (VIQ). When a VIQ crosses its XOFF threshold the switch sends a pause
// frame upstream; the in-flight bytes that keep arriving until the pause
// takes effect must fit in the VIQ's headroom, or losslessness is violated
// (a headroom overflow drop — a misconfiguration, not normal operation).
// When the VIQ drains below XON the switch sends a resume.
//
// This class is pure accounting: it holds no packets (the bytes live in the
// egress queues / shared pool) and touches no clock. The owning Switch maps
// its Actions onto real pause/resume frames via Port::send_control, and
// credits it from the egress DequeueTap. XOFF > XON gives the hysteresis
// band that keeps pause traffic from oscillating per packet.
#ifndef INCAST_NET_PFC_H_
#define INCAST_NET_PFC_H_

#include <cstdint>

namespace incast::net {

class LosslessInputQueue {
 public:
  struct Config {
    // Pause when the VIQ occupancy reaches this many bytes...
    std::int64_t xoff_bytes{150 * 1024};
    // ...and resume once it has drained back to this many.
    std::int64_t xon_bytes{100 * 1024};
    // Bytes of post-XOFF arrivals the VIQ absorbs (upstream in-flight data
    // plus pause propagation). Arrivals beyond xoff + headroom are dropped
    // — the event PFC is configured to make impossible.
    std::int64_t headroom_bytes{256 * 1024};
    // Duration carried by each pause frame (the PFC quanta field). The
    // paused port auto-resumes when it expires; while the VIQ stays above
    // XOFF, post-expiry arrivals refresh the pause.
    std::int64_t pause_ns{100'000};
  };

  struct Stats {
    std::int64_t pause_frames{0};
    std::int64_t resume_frames{0};
    std::int64_t overflow_dropped_packets{0};
    std::int64_t overflow_dropped_bytes{0};
    std::int64_t peak_bytes{0};
  };

  // What the owning switch must do after an arrival or departure.
  enum class Action : std::uint8_t {
    kNone = 0,
    kSendPause,     // occupancy at/above XOFF: (re)pause upstream
    kSendResume,    // drained below XON while upstream is paused
    kDropOverflow,  // arrival beyond xoff + headroom: not charged, drop it
  };

  explicit LosslessInputQueue(const Config& config) noexcept : config_{config} {}

  // Charges an arriving packet to this VIQ. Returns kSendPause on every
  // charge that leaves the VIQ at/above XOFF — not just the crossing —
  // because any arrival while we believe upstream is paused means the
  // pause expired (or its frame was lost) and must be refreshed.
  Action on_arrival(std::int64_t bytes) noexcept {
    if (bytes_ + bytes > config_.xoff_bytes + config_.headroom_bytes) {
      ++stats_.overflow_dropped_packets;
      stats_.overflow_dropped_bytes += bytes;
      return Action::kDropOverflow;
    }
    bytes_ += bytes;
    if (bytes_ > stats_.peak_bytes) stats_.peak_bytes = bytes_;
    if (bytes_ >= config_.xoff_bytes) {
      paused_upstream_ = true;
      ++stats_.pause_frames;
      return Action::kSendPause;
    }
    return Action::kNone;
  }

  // Credits a departing packet. Returns kSendResume when the drain brings
  // a paused VIQ back under XON.
  Action on_departure(std::int64_t bytes) noexcept {
    bytes_ -= bytes;
    if (paused_upstream_ && bytes_ <= config_.xon_bytes) {
      paused_upstream_ = false;
      ++stats_.resume_frames;
      return Action::kSendResume;
    }
    return Action::kNone;
  }

  [[nodiscard]] std::int64_t bytes() const noexcept { return bytes_; }
  [[nodiscard]] bool paused_upstream() const noexcept { return paused_upstream_; }
  [[nodiscard]] const Config& config() const noexcept { return config_; }
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }

 private:
  Config config_;
  std::int64_t bytes_{0};
  bool paused_upstream_{false};
  Stats stats_;
};

}  // namespace incast::net

#endif  // INCAST_NET_PFC_H_
