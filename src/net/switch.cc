#include "net/switch.h"

#include <utility>

namespace incast::net {

SharedBufferPool& Switch::enable_shared_buffer(const SharedBufferPool::Config& config) {
  pool_ = std::make_unique<SharedBufferPool>(config);
  for (std::size_t i = 0; i < num_ports(); ++i) {
    port(i).queue().attach_pool(pool_.get());
  }
  return *pool_;
}

void Switch::receive(Packet p, std::size_t /*in_port*/) {
  const auto it = routes_.find(p.dst);
  if (it == routes_.end()) {
    ++unrouted_packets_;
    return;
  }
  port(it->second).send(std::move(p));
}

}  // namespace incast::net
