#include "net/switch.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <string>
#include <utility>

namespace incast::net {

namespace {

// SplitMix64 finalizer: a full-avalanche 64-bit mixer with no
// implementation-defined behavior, so path assignment is identical on every
// platform for a given seed.
[[nodiscard]] constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

[[nodiscard]] std::size_t next_pow2(std::size_t n) noexcept {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

void Switch::store_route(NodeId dst, const std::size_t* ports, std::size_t count) {
  assert(count > 0 && "a route needs at least one member");
  assert(dst != kInvalidNodeId && "cannot route to the invalid node id");
  if (static_cast<std::size_t>(dst) >= route_ref_.size()) {
    route_ref_.resize(static_cast<std::size_t>(dst) + 1);
  }
  RouteRef& ref = route_ref_[dst];
  if (ref.count == static_cast<std::uint32_t>(count)) {
    // Same group width: overwrite the existing slice in place.
    for (std::size_t i = 0; i < count; ++i) {
      route_ports_[ref.offset + i] = static_cast<std::uint32_t>(ports[i]);
    }
    return;
  }
  ref.offset = static_cast<std::uint32_t>(route_ports_.size());
  ref.count = static_cast<std::uint32_t>(count);
  for (std::size_t i = 0; i < count; ++i) {
    route_ports_.push_back(static_cast<std::uint32_t>(ports[i]));
  }
}

void Switch::set_route(NodeId dst, std::size_t out_port) {
  store_route(dst, &out_port, 1);
}

void Switch::set_ecmp_route(NodeId dst, std::vector<std::size_t> out_ports) {
  assert(!out_ports.empty() && "an ECMP group needs at least one member");
  store_route(dst, out_ports.data(), out_ports.size());
}

std::uint64_t Switch::flow_key(NodeId src, NodeId dst, FlowId flow) const noexcept {
  // Symmetric in (src, dst): data and its returning ACKs share a key.
  const NodeId lo = src < dst ? src : dst;
  const NodeId hi = src < dst ? dst : src;
  const std::uint64_t pair =
      (static_cast<std::uint64_t>(hi) << 32) | static_cast<std::uint64_t>(lo);
  return mix64(mix64(ecmp_seed_ ^ pair) ^ flow);
}

std::optional<std::size_t> Switch::route_port(NodeId src, NodeId dst, FlowId flow) const {
  if (static_cast<std::size_t>(dst) >= route_ref_.size()) return std::nullopt;
  const RouteRef ref = route_ref_[dst];
  if (ref.count == 0) return std::nullopt;
  if (ref.count == 1) return route_ports_[ref.offset];
  return route_ports_[ref.offset +
                      static_cast<std::size_t>(flow_key(src, dst, flow) % ref.count)];
}

void Switch::reserve_flows(std::size_t flows) {
  // 50% max load: give every expected key an empty partner slot.
  const std::size_t slots = next_pow2(std::max<std::size_t>(flows * 2, 16));
  if (slots > flow_keys_.size()) rehash_flows(slots);
}

void Switch::rehash_flows(std::size_t slots) {
  assert((slots & (slots - 1)) == 0 && "flow table capacity must be a power of two");
  std::vector<std::uint64_t> old_keys = std::move(flow_keys_);
  std::vector<std::uint32_t> old_ports = std::move(flow_ports_);
  flow_keys_.assign(slots, 0);
  flow_ports_.assign(slots, kEmptyFlowSlot);
  const std::size_t mask = slots - 1;
  for (std::size_t i = 0; i < old_ports.size(); ++i) {
    if (old_ports[i] == kEmptyFlowSlot) continue;
    std::size_t j = static_cast<std::size_t>(old_keys[i]) & mask;
    while (flow_ports_[j] != kEmptyFlowSlot) j = (j + 1) & mask;
    flow_keys_[j] = old_keys[i];
    flow_ports_[j] = old_ports[i];
  }
}

void Switch::record_flow_choice(std::uint64_t key, std::uint32_t out) {
  if (flow_keys_.empty()) rehash_flows(16);
  std::size_t mask = flow_keys_.size() - 1;
  std::size_t i = static_cast<std::size_t>(key) & mask;
  while (flow_ports_[i] != kEmptyFlowSlot && flow_keys_[i] != key) {
    i = (i + 1) & mask;
  }
  if (flow_ports_[i] != kEmptyFlowSlot) {
    // Known flow: update only. No growth check here — repeat traffic on a
    // table sitting exactly at the load ceiling must stay allocation-free.
    if (flow_ports_[i] != out) {
      ++ecmp_path_changes_;
      flow_ports_[i] = out;
    }
    return;
  }
  if ((flow_count_ + 1) * 2 > flow_keys_.size()) {
    rehash_flows(flow_keys_.size() * 2);
    mask = flow_keys_.size() - 1;
    i = static_cast<std::size_t>(key) & mask;
    while (flow_ports_[i] != kEmptyFlowSlot) i = (i + 1) & mask;
  }
  flow_keys_[i] = key;
  flow_ports_[i] = out;
  ++flow_count_;
}

std::size_t Switch::routing_bytes() const noexcept {
  return route_ref_.capacity() * sizeof(RouteRef) +
         route_ports_.capacity() * sizeof(std::uint32_t) +
         flow_keys_.capacity() * sizeof(std::uint64_t) +
         flow_ports_.capacity() * sizeof(std::uint32_t);
}

SharedBufferPool& Switch::enable_shared_buffer(const SharedBufferPool::Config& config) {
  pool_ = std::make_unique<SharedBufferPool>(config);
  for (std::size_t i = 0; i < num_ports(); ++i) {
    port(i).queue().attach_pool(pool_.get());
  }
  return *pool_;
}

void Switch::enable_pfc(const LosslessInputQueue::Config& config) {
  assert(viqs_.empty() && "PFC already enabled");
  viqs_.assign(num_ports(), LosslessInputQueue{config});
  for (std::size_t i = 0; i < num_ports(); ++i) {
    port(i).set_dequeue_tap(this);
  }
  if (pool_ != nullptr) {
    // Real lossless ToRs carve PFC headroom out of the shared buffer; the
    // remaining pool is what egress queues compete over. Clamped to half
    // the pool so a misconfigured headroom degrades instead of wedging
    // every queue.
    const std::int64_t reserve =
        std::min(static_cast<std::int64_t>(num_ports()) * config.headroom_bytes,
                 pool_->total_bytes() / 2);
    pool_->set_external_usage(reserve);
  }
}

void Switch::apply_ctrl(const Packet& p, std::size_t in_port) {
  // The duplex wiring convention pairs in-port i with this switch's egress
  // port i toward the same neighbor, so the pause lands exactly on the
  // offending hop — the VIQ property that distinguishes PFC collateral
  // damage from a full-port stall.
  if (p.ctrl.type == CtrlType::kPfcPause) {
    port(in_port).pause_for(sim::Time::nanoseconds(p.ctrl.pause_ns));
  } else if (p.ctrl.type == CtrlType::kPfcResume) {
    port(in_port).resume();
  }
}

void Switch::credit_viq(std::size_t viq, std::int64_t bytes) {
  if (viq >= viqs_.size()) return;
  if (viqs_[viq].on_departure(bytes) == LosslessInputQueue::Action::kSendResume) {
    Port& upstream = port(viq);
    const NodeId peer = upstream.peer() != nullptr ? upstream.peer()->id() : kInvalidNodeId;
    upstream.send_control(make_resume_frame(id(), peer));
  }
}

void Switch::on_dequeue(const Packet& p, sim::Time /*now*/) {
  if (p.viq >= 0) credit_viq(static_cast<std::size_t>(p.viq), p.size_bytes);
}

void Switch::receive(Packet p, std::size_t in_port) {
  if (p.is_ctrl()) [[unlikely]] {
    // MAC control frames are consumed by the immediate neighbor — us.
    if (auto* a = INCAST_AUDITOR(sim_)) a->on_control_consumed(p.size_bytes);
    apply_ctrl(p, in_port);
    return;
  }
  const RouteRef ref = static_cast<std::size_t>(p.dst) < route_ref_.size()
                           ? route_ref_[p.dst]
                           : RouteRef{};
  if (ref.count == 0) [[unlikely]] {
    ++unrouted_packets_;
    ++unrouted_by_dst_[p.dst];
    if (auto* a = INCAST_AUDITOR(sim_)) a->on_bytes_dropped(p.size_bytes);
    return;
  }
  if (!viqs_.empty() && in_port < viqs_.size()) {
    // Lossless ingress accounting: charge the packet to its VIQ and pause
    // upstream when the VIQ saturates. Charged bytes are credited back by
    // on_dequeue when the packet leaves an egress queue (or immediately
    // below, if the egress refuses or trims it).
    switch (viqs_[in_port].on_arrival(p.size_bytes)) {
      case LosslessInputQueue::Action::kDropOverflow:
        // Headroom exhausted — losslessness is violated by configuration.
        if (auto* a = INCAST_AUDITOR(sim_)) a->on_bytes_dropped(p.size_bytes);
        return;
      case LosslessInputQueue::Action::kSendPause: {
        Port& upstream = port(in_port);
        const NodeId peer =
            upstream.peer() != nullptr ? upstream.peer()->id() : kInvalidNodeId;
        upstream.send_control(
            make_pause_frame(id(), peer, viqs_[in_port].config().pause_ns));
        break;
      }
      default: break;
    }
    p.viq = static_cast<std::int16_t>(in_port);
  }
  std::size_t out;
  if (ref.count == 1) {
    // Single-path routes skip hashing and per-flow bookkeeping entirely, so
    // a fabric degenerated to one path costs what the static switch did.
    out = route_ports_[ref.offset];
  } else {
    const std::uint64_t key = flow_key(p.src, p.dst, p.tcp.flow_id);
    out = route_ports_[ref.offset + static_cast<std::size_t>(key % ref.count)];
    record_flow_choice(key, static_cast<std::uint32_t>(out));
  }
  if (viqs_.empty()) {
    port(out).send(std::move(p));
    return;
  }
  // PFC: a packet the egress queue refuses (drops) or trims never reaches
  // on_dequeue with its full size, so the VIQ charge must be unwound here
  // or it leaks and the pause never lifts.
  const std::int16_t viq = p.viq;
  const std::int64_t size = p.size_bytes;
  const DropTailQueue::Stats& egress = port(out).queue().stats();
  const std::int64_t drops_before = egress.dropped_packets;
  const std::int64_t trim_bytes_before = egress.trimmed_bytes;
  port(out).send(std::move(p));
  if (viq >= 0) {
    if (egress.dropped_packets > drops_before) {
      credit_viq(static_cast<std::size_t>(viq), size);
    } else if (egress.trimmed_bytes > trim_bytes_before) {
      credit_viq(static_cast<std::size_t>(viq), egress.trimmed_bytes - trim_bytes_before);
    }
  }
}

std::vector<std::int64_t> Switch::ecmp_flows_by_port() const {
  std::vector<std::int64_t> counts(num_ports(), 0);
  for (std::size_t i = 0; i < flow_ports_.size(); ++i) {
    if (flow_ports_[i] == kEmptyFlowSlot) continue;
    if (flow_ports_[i] < counts.size()) ++counts[flow_ports_[i]];
  }
  return counts;
}

void check_no_unrouted(const Switch& sw) {
  if (sw.unrouted_packets() == 0) return;
  std::vector<std::pair<NodeId, std::int64_t>> by_dst{sw.unrouted_by_dst().begin(),
                                                      sw.unrouted_by_dst().end()};
  std::sort(by_dst.begin(), by_dst.end());
  std::string msg = "switch '" + sw.name() + "' blackholed " +
                    std::to_string(sw.unrouted_packets()) +
                    " packet(s) with no route:";
  for (const auto& [dst, count] : by_dst) {
    msg += " dst=" + std::to_string(dst) + " (" + std::to_string(count) + ")";
  }
  throw std::runtime_error(msg);
}

void check_no_unrouted(const std::vector<Switch*>& switches) {
  for (const Switch* sw : switches) check_no_unrouted(*sw);
}

}  // namespace incast::net
