#include "net/switch.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <string>
#include <utility>

namespace incast::net {

namespace {

// SplitMix64 finalizer: a full-avalanche 64-bit mixer with no
// implementation-defined behavior, so path assignment is identical on every
// platform for a given seed.
[[nodiscard]] constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

}  // namespace

void Switch::set_ecmp_route(NodeId dst, std::vector<std::size_t> out_ports) {
  assert(!out_ports.empty() && "an ECMP group needs at least one member");
  routes_[dst] = RouteEntry{std::move(out_ports)};
}

std::uint64_t Switch::flow_key(NodeId src, NodeId dst, FlowId flow) const noexcept {
  // Symmetric in (src, dst): data and its returning ACKs share a key.
  const NodeId lo = src < dst ? src : dst;
  const NodeId hi = src < dst ? dst : src;
  const std::uint64_t pair =
      (static_cast<std::uint64_t>(hi) << 32) | static_cast<std::uint64_t>(lo);
  return mix64(mix64(ecmp_seed_ ^ pair) ^ flow);
}

std::optional<std::size_t> Switch::route_port(NodeId src, NodeId dst, FlowId flow) const {
  const auto it = routes_.find(dst);
  if (it == routes_.end()) return std::nullopt;
  const std::vector<std::size_t>& ports = it->second.ports;
  if (ports.size() == 1) return ports.front();
  return ports[static_cast<std::size_t>(flow_key(src, dst, flow) % ports.size())];
}

SharedBufferPool& Switch::enable_shared_buffer(const SharedBufferPool::Config& config) {
  pool_ = std::make_unique<SharedBufferPool>(config);
  for (std::size_t i = 0; i < num_ports(); ++i) {
    port(i).queue().attach_pool(pool_.get());
  }
  return *pool_;
}

void Switch::enable_pfc(const LosslessInputQueue::Config& config) {
  assert(viqs_.empty() && "PFC already enabled");
  viqs_.assign(num_ports(), LosslessInputQueue{config});
  for (std::size_t i = 0; i < num_ports(); ++i) {
    port(i).set_dequeue_tap(this);
  }
  if (pool_ != nullptr) {
    // Real lossless ToRs carve PFC headroom out of the shared buffer; the
    // remaining pool is what egress queues compete over. Clamped to half
    // the pool so a misconfigured headroom degrades instead of wedging
    // every queue.
    const std::int64_t reserve =
        std::min(static_cast<std::int64_t>(num_ports()) * config.headroom_bytes,
                 pool_->total_bytes() / 2);
    pool_->set_external_usage(reserve);
  }
}

void Switch::apply_ctrl(const Packet& p, std::size_t in_port) {
  // The duplex wiring convention pairs in-port i with this switch's egress
  // port i toward the same neighbor, so the pause lands exactly on the
  // offending hop — the VIQ property that distinguishes PFC collateral
  // damage from a full-port stall.
  if (p.ctrl.type == CtrlType::kPfcPause) {
    port(in_port).pause_for(sim::Time::nanoseconds(p.ctrl.pause_ns));
  } else if (p.ctrl.type == CtrlType::kPfcResume) {
    port(in_port).resume();
  }
}

void Switch::credit_viq(std::size_t viq, std::int64_t bytes) {
  if (viq >= viqs_.size()) return;
  if (viqs_[viq].on_departure(bytes) == LosslessInputQueue::Action::kSendResume) {
    Port& upstream = port(viq);
    const NodeId peer = upstream.peer() != nullptr ? upstream.peer()->id() : kInvalidNodeId;
    upstream.send_control(make_resume_frame(id(), peer));
  }
}

void Switch::on_dequeue(const Packet& p, sim::Time /*now*/) {
  if (p.viq >= 0) credit_viq(static_cast<std::size_t>(p.viq), p.size_bytes);
}

void Switch::receive(Packet p, std::size_t in_port) {
  if (p.is_ctrl()) [[unlikely]] {
    // MAC control frames are consumed by the immediate neighbor — us.
    if (auto* a = INCAST_AUDITOR(sim_)) a->on_control_consumed(p.size_bytes);
    apply_ctrl(p, in_port);
    return;
  }
  const auto it = routes_.find(p.dst);
  if (it == routes_.end()) {
    ++unrouted_packets_;
    ++unrouted_by_dst_[p.dst];
    if (auto* a = INCAST_AUDITOR(sim_)) a->on_bytes_dropped(p.size_bytes);
    return;
  }
  if (!viqs_.empty() && in_port < viqs_.size()) {
    // Lossless ingress accounting: charge the packet to its VIQ and pause
    // upstream when the VIQ saturates. Charged bytes are credited back by
    // on_dequeue when the packet leaves an egress queue (or immediately
    // below, if the egress refuses or trims it).
    switch (viqs_[in_port].on_arrival(p.size_bytes)) {
      case LosslessInputQueue::Action::kDropOverflow:
        // Headroom exhausted — losslessness is violated by configuration.
        if (auto* a = INCAST_AUDITOR(sim_)) a->on_bytes_dropped(p.size_bytes);
        return;
      case LosslessInputQueue::Action::kSendPause: {
        Port& upstream = port(in_port);
        const NodeId peer =
            upstream.peer() != nullptr ? upstream.peer()->id() : kInvalidNodeId;
        upstream.send_control(
            make_pause_frame(id(), peer, viqs_[in_port].config().pause_ns));
        break;
      }
      default: break;
    }
    p.viq = static_cast<std::int16_t>(in_port);
  }
  const std::vector<std::size_t>& ports = it->second.ports;
  std::size_t out;
  if (ports.size() == 1) {
    // Single-path routes skip hashing and per-flow bookkeeping entirely, so
    // a fabric degenerated to one path costs what the static switch did.
    out = ports.front();
  } else {
    const std::uint64_t key = flow_key(p.src, p.dst, p.tcp.flow_id);
    out = ports[static_cast<std::size_t>(key % ports.size())];
    const auto [pos, inserted] = ecmp_chosen_.try_emplace(key, out);
    if (!inserted && pos->second != out) {
      ++ecmp_path_changes_;
      pos->second = out;
    }
  }
  if (viqs_.empty()) {
    port(out).send(std::move(p));
    return;
  }
  // PFC: a packet the egress queue refuses (drops) or trims never reaches
  // on_dequeue with its full size, so the VIQ charge must be unwound here
  // or it leaks and the pause never lifts.
  const std::int16_t viq = p.viq;
  const std::int64_t size = p.size_bytes;
  const DropTailQueue::Stats& egress = port(out).queue().stats();
  const std::int64_t drops_before = egress.dropped_packets;
  const std::int64_t trim_bytes_before = egress.trimmed_bytes;
  port(out).send(std::move(p));
  if (viq >= 0) {
    if (egress.dropped_packets > drops_before) {
      credit_viq(static_cast<std::size_t>(viq), size);
    } else if (egress.trimmed_bytes > trim_bytes_before) {
      credit_viq(static_cast<std::size_t>(viq), egress.trimmed_bytes - trim_bytes_before);
    }
  }
}

std::vector<std::int64_t> Switch::ecmp_flows_by_port() const {
  std::vector<std::int64_t> counts(num_ports(), 0);
  for (const auto& [key, port_index] : ecmp_chosen_) {
    if (port_index < counts.size()) ++counts[port_index];
  }
  return counts;
}

void check_no_unrouted(const Switch& sw) {
  if (sw.unrouted_packets() == 0) return;
  std::vector<std::pair<NodeId, std::int64_t>> by_dst{sw.unrouted_by_dst().begin(),
                                                      sw.unrouted_by_dst().end()};
  std::sort(by_dst.begin(), by_dst.end());
  std::string msg = "switch '" + sw.name() + "' blackholed " +
                    std::to_string(sw.unrouted_packets()) +
                    " packet(s) with no route:";
  for (const auto& [dst, count] : by_dst) {
    msg += " dst=" + std::to_string(dst) + " (" + std::to_string(count) + ")";
  }
  throw std::runtime_error(msg);
}

void check_no_unrouted(const std::vector<Switch*>& switches) {
  for (const Switch* sw : switches) check_no_unrouted(*sw);
}

}  // namespace incast::net
