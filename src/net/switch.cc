#include "net/switch.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <string>
#include <utility>

namespace incast::net {

namespace {

// SplitMix64 finalizer: a full-avalanche 64-bit mixer with no
// implementation-defined behavior, so path assignment is identical on every
// platform for a given seed.
[[nodiscard]] constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

}  // namespace

void Switch::set_ecmp_route(NodeId dst, std::vector<std::size_t> out_ports) {
  assert(!out_ports.empty() && "an ECMP group needs at least one member");
  routes_[dst] = RouteEntry{std::move(out_ports)};
}

std::uint64_t Switch::flow_key(NodeId src, NodeId dst, FlowId flow) const noexcept {
  // Symmetric in (src, dst): data and its returning ACKs share a key.
  const NodeId lo = src < dst ? src : dst;
  const NodeId hi = src < dst ? dst : src;
  const std::uint64_t pair =
      (static_cast<std::uint64_t>(hi) << 32) | static_cast<std::uint64_t>(lo);
  return mix64(mix64(ecmp_seed_ ^ pair) ^ flow);
}

std::optional<std::size_t> Switch::route_port(NodeId src, NodeId dst, FlowId flow) const {
  const auto it = routes_.find(dst);
  if (it == routes_.end()) return std::nullopt;
  const std::vector<std::size_t>& ports = it->second.ports;
  if (ports.size() == 1) return ports.front();
  return ports[static_cast<std::size_t>(flow_key(src, dst, flow) % ports.size())];
}

SharedBufferPool& Switch::enable_shared_buffer(const SharedBufferPool::Config& config) {
  pool_ = std::make_unique<SharedBufferPool>(config);
  for (std::size_t i = 0; i < num_ports(); ++i) {
    port(i).queue().attach_pool(pool_.get());
  }
  return *pool_;
}

void Switch::receive(Packet p, std::size_t /*in_port*/) {
  const auto it = routes_.find(p.dst);
  if (it == routes_.end()) {
    ++unrouted_packets_;
    ++unrouted_by_dst_[p.dst];
    if (auto* a = INCAST_AUDITOR(sim_)) a->on_bytes_dropped(p.size_bytes);
    return;
  }
  const std::vector<std::size_t>& ports = it->second.ports;
  std::size_t out;
  if (ports.size() == 1) {
    // Single-path routes skip hashing and per-flow bookkeeping entirely, so
    // a fabric degenerated to one path costs what the static switch did.
    out = ports.front();
  } else {
    const std::uint64_t key = flow_key(p.src, p.dst, p.tcp.flow_id);
    out = ports[static_cast<std::size_t>(key % ports.size())];
    const auto [pos, inserted] = ecmp_chosen_.try_emplace(key, out);
    if (!inserted && pos->second != out) {
      ++ecmp_path_changes_;
      pos->second = out;
    }
  }
  port(out).send(std::move(p));
}

std::vector<std::int64_t> Switch::ecmp_flows_by_port() const {
  std::vector<std::int64_t> counts(num_ports(), 0);
  for (const auto& [key, port_index] : ecmp_chosen_) {
    if (port_index < counts.size()) ++counts[port_index];
  }
  return counts;
}

void check_no_unrouted(const Switch& sw) {
  if (sw.unrouted_packets() == 0) return;
  std::vector<std::pair<NodeId, std::int64_t>> by_dst{sw.unrouted_by_dst().begin(),
                                                      sw.unrouted_by_dst().end()};
  std::sort(by_dst.begin(), by_dst.end());
  std::string msg = "switch '" + sw.name() + "' blackholed " +
                    std::to_string(sw.unrouted_packets()) +
                    " packet(s) with no route:";
  for (const auto& [dst, count] : by_dst) {
    msg += " dst=" + std::to_string(dst) + " (" + std::to_string(count) + ")";
  }
  throw std::runtime_error(msg);
}

void check_no_unrouted(const std::vector<Switch*>& switches) {
  for (const Switch* sw : switches) check_no_unrouted(*sw);
}

}  // namespace incast::net
