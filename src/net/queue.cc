#include "net/queue.h"

#include <algorithm>
#include <utility>

namespace incast::net {

namespace {

// SplitMix64 finalizer — the deterministic coin behind probabilistic
// marking. Full avalanche, no implementation-defined behavior, so the
// marking pattern is identical on every platform.
[[nodiscard]] constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

}  // namespace

const char* to_string(QueueDiscipline d) noexcept {
  switch (d) {
    case QueueDiscipline::kDropTail: return "droptail";
    case QueueDiscipline::kTrimming: return "trim";
  }
  return "unknown";
}

bool DropTailQueue::should_mark(const Packet& p, std::int64_t occupancy_packets) const noexcept {
  if (!is_ect(p.ecn)) return false;
  if (config_.ecn_kmax_packets > 0) {
    // DCQCN-style RED band on instantaneous occupancy.
    if (occupancy_packets < config_.ecn_kmin_packets) return false;
    if (occupancy_packets >= config_.ecn_kmax_packets) return true;
    const std::int64_t span =
        std::max<std::int64_t>(1, config_.ecn_kmax_packets - config_.ecn_kmin_packets);
    // Hash the packet uid with the arrival ordinal so repeated uids (or
    // uid 0) still see fresh coins; compare in 64-bit fixed point.
    const std::uint64_t coin =
        mix64(p.uid ^ (static_cast<std::uint64_t>(stats_.enqueued_packets) << 20));
    const std::uint64_t threshold =
        (static_cast<std::uint64_t>(occupancy_packets - config_.ecn_kmin_packets) *
         (~0ULL / static_cast<std::uint64_t>(span)));
    return coin < threshold;
  }
  // DCTCP marking rule: mark the arriving packet when the instantaneous
  // occupancy is already at/above K.
  return config_.ecn_threshold_packets > 0 && occupancy_packets >= config_.ecn_threshold_packets;
}

bool DropTailQueue::enqueue(Packet p) {
  // Check the per-queue caps before touching the pool so that a drop never
  // leaves memory reserved.
  if (count_ >= config_.capacity_packets ||
      (config_.capacity_bytes > 0 && bytes_ + p.size_bytes > config_.capacity_bytes) ||
      (pool_ != nullptr && !pool_->try_reserve(p.size_bytes, bytes_))) {
    ++stats_.dropped_packets;
    stats_.dropped_bytes += p.size_bytes;
    return false;
  }

  if (should_mark(p, count_)) {
    p.ecn = Ecn::kCe;
    ++stats_.ecn_marked_packets;
  }

  bytes_ += p.size_bytes;
  ++count_;
  ring_.push(std::move(p));
  ++stats_.enqueued_packets;
  note_peak();
  return true;
}

std::optional<Packet> DropTailQueue::dequeue() {
  if (empty()) return std::nullopt;
  Packet p = ring_.pop();
  --count_;
  bytes_ -= p.size_bytes;
  if (pool_ != nullptr) pool_->release(p.size_bytes);
  ++stats_.dequeued_packets;
  stats_.dequeued_bytes += p.size_bytes;
  return p;
}

bool CompositeQueue::enqueue(Packet p) {
  const std::int64_t original_bytes = p.size_bytes;

  // Header-only traffic (ACKs, NACKs, headers trimmed upstream) rides the
  // strict-priority header queue directly, NDP-style.
  if (!p.is_data()) {
    if (!enqueue_header(std::move(p))) {
      ++stats_.dropped_packets;
      stats_.dropped_bytes += original_bytes;
      return false;
    }
    return true;
  }

  // Same admission rule as the base queue, but over the data ring only.
  const auto data_count = static_cast<std::int64_t>(ring_.count);
  if (data_count < config_.capacity_packets &&
      (config_.capacity_bytes <= 0 || data_bytes_ + p.size_bytes <= config_.capacity_bytes) &&
      (pool_ == nullptr || pool_->try_reserve(p.size_bytes, data_bytes_))) {
    if (should_mark(p, data_count)) {
      p.ecn = Ecn::kCe;
      ++stats_.ecn_marked_packets;
    }
    data_bytes_ += p.size_bytes;
    bytes_ += p.size_bytes;
    ++count_;
    ring_.push(std::move(p));
    ++stats_.enqueued_packets;
    note_peak();
    return true;
  }

  // Data queue full: trim the payload and keep the header. Never larger
  // than the original frame (a sub-64B original keeps its own size).
  const std::int64_t header_bytes = std::min(config_.trim_header_bytes, p.size_bytes);
  p.size_bytes = header_bytes;
  p.payload_bytes = 0;
  p.trimmed = true;
  if (is_ect(p.ecn)) p.ecn = Ecn::kCe;
  if (!enqueue_header(std::move(p))) {
    // Header queue overflow too: the whole original packet is lost.
    ++stats_.dropped_packets;
    stats_.dropped_bytes += original_bytes;
    return false;
  }
  ++stats_.trimmed_packets;
  stats_.trimmed_bytes += original_bytes - header_bytes;
  return true;
}

bool CompositeQueue::enqueue_header(Packet&& p) {
  if (static_cast<std::int64_t>(header_ring_.count) >= config_.header_capacity_packets) {
    return false;
  }
  bytes_ += p.size_bytes;
  ++count_;
  header_ring_.push(std::move(p));
  ++stats_.enqueued_packets;
  note_peak();
  return true;
}

std::optional<Packet> CompositeQueue::dequeue() {
  const bool from_header = !header_ring_.empty();
  Ring& src = from_header ? header_ring_ : ring_;
  if (src.empty()) return std::nullopt;
  Packet p = src.pop();
  --count_;
  bytes_ -= p.size_bytes;
  if (!from_header) {
    data_bytes_ -= p.size_bytes;
    if (pool_ != nullptr) pool_->release(p.size_bytes);
  }
  ++stats_.dequeued_packets;
  stats_.dequeued_bytes += p.size_bytes;
  return p;
}

std::unique_ptr<DropTailQueue> make_queue(const DropTailQueue::Config& config) {
  if (config.discipline == QueueDiscipline::kTrimming) {
    return std::make_unique<CompositeQueue>(config);
  }
  return std::make_unique<DropTailQueue>(config);
}

void DropTailQueue::Ring::push(Packet&& p) {
  if (count == slots.size()) {
    // Grow by doubling, unwrapping head..tail into the new storage so the
    // occupied region is contiguous from index 0 again.
    std::vector<Packet> bigger;
    bigger.reserve(slots.empty() ? 16 : slots.size() * 2);
    for (std::size_t i = 0; i < count; ++i) {
      bigger.push_back(std::move(slots[(head + i) % slots.size()]));
    }
    bigger.resize(bigger.capacity());
    slots = std::move(bigger);
    head = 0;
  }
  slots[(head + count) % slots.size()] = std::move(p);
  ++count;
}

Packet DropTailQueue::Ring::pop() {
  Packet p = std::move(slots[head]);
  head = (head + 1) % slots.size();
  --count;
  return p;
}

}  // namespace incast::net
