#include "net/queue.h"

#include <utility>

namespace incast::net {

bool DropTailQueue::enqueue(Packet p) {
  // Check the per-queue caps before touching the pool so that a drop never
  // leaves memory reserved.
  if (packets() >= config_.capacity_packets ||
      (config_.capacity_bytes > 0 && bytes_ + p.size_bytes > config_.capacity_bytes) ||
      (pool_ != nullptr && !pool_->try_reserve(p.size_bytes, bytes_))) {
    ++stats_.dropped_packets;
    stats_.dropped_bytes += p.size_bytes;
    return false;
  }

  // DCTCP marking rule: mark the arriving packet when the instantaneous
  // occupancy is already at/above K.
  if (config_.ecn_threshold_packets > 0 && is_ect(p.ecn) &&
      packets() >= config_.ecn_threshold_packets) {
    p.ecn = Ecn::kCe;
    ++stats_.ecn_marked_packets;
  }

  bytes_ += p.size_bytes;
  ring_push(std::move(p));
  ++stats_.enqueued_packets;
  if (packets() > peak_packets_) peak_packets_ = packets();
  return true;
}

std::optional<Packet> DropTailQueue::dequeue() {
  if (empty()) return std::nullopt;
  Packet p = ring_pop();
  bytes_ -= p.size_bytes;
  if (pool_ != nullptr) pool_->release(p.size_bytes);
  ++stats_.dequeued_packets;
  stats_.dequeued_bytes += p.size_bytes;
  return p;
}

void DropTailQueue::ring_push(Packet&& p) {
  if (count_ == ring_.size()) {
    // Grow by doubling, unwrapping head..tail into the new storage so the
    // occupied region is contiguous from index 0 again.
    std::vector<Packet> bigger;
    bigger.reserve(ring_.empty() ? 16 : ring_.size() * 2);
    for (std::size_t i = 0; i < count_; ++i) {
      bigger.push_back(std::move(ring_[(head_ + i) % ring_.size()]));
    }
    bigger.resize(bigger.capacity());
    ring_ = std::move(bigger);
    head_ = 0;
  }
  ring_[(head_ + count_) % ring_.size()] = std::move(p);
  ++count_;
}

Packet DropTailQueue::ring_pop() {
  Packet p = std::move(ring_[head_]);
  head_ = (head_ + 1) % ring_.size();
  --count_;
  return p;
}

}  // namespace incast::net
