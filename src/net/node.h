// Node and Port: devices and their egress interfaces.
//
// A Node is anything with network ports (Host, Switch). A Port is one
// unidirectional egress interface: it owns a DropTailQueue and a transmitter
// that serializes packets at the port's line rate, then delivers them to the
// connected peer after the link's propagation delay. Full-duplex links are
// simply a pair of Ports, one on each endpoint.
#ifndef INCAST_NET_NODE_H_
#define INCAST_NET_NODE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "net/packet.h"
#include "net/packet_pool.h"
#include "net/queue.h"
#include "sim/domain.h"
#include "sim/simulator.h"
#include "sim/stable_arena.h"
#include "sim/units.h"

namespace incast::obs {
class FlowTracer;
class Hub;
enum class HopTier : std::uint8_t;
}  // namespace incast::obs

namespace incast::net {

class Node;

// Intercepts packets at the moment they leave a Port for the wire. The
// fault-injection layer (src/fault) installs these; with no hook installed a
// Port delivers every packet unchanged, on exactly the code path it always
// had. The hook is consulted once per transmitted packet, after
// serialization completes and before propagation is scheduled, so a dropped
// packet still consumed its serialization time (as a real lossy link would).
class LinkHook {
 public:
  virtual ~LinkHook() = default;

  struct Verdict {
    bool drop{false};       // packet vanishes on the wire
    bool corrupt{false};    // delivered, but with a failed checksum
    bool duplicate{false};  // a second copy arrives right after the original
    sim::Time extra_delay{sim::Time::zero()};  // added propagation (reordering)
  };

  virtual Verdict on_transmit(const Packet& p, sim::Time now) = 0;
};

// Read-only observer of every packet a Port transmits, notified when
// serialization completes (the moment the frame hits the wire), before any
// fault hook can drop it — matching real port counters, which count
// transmitted frames whether or not the wire later loses them. This is how
// switch-side telemetry (per-port Millisampler-style byte counters) attaches
// without perturbing the data path.
class TxTap {
 public:
  virtual ~TxTap() = default;
  virtual void on_transmit(const Packet& p, sim::Time now) = 0;
};

// Observes every packet the moment it is pulled off the egress queue for
// serialization (control frames excluded — they never entered the queue).
// This is how a PFC switch credits the ingress virtual input queue a
// departing packet was charged to.
class DequeueTap {
 public:
  virtual ~DequeueTap() = default;
  virtual void on_dequeue(const Packet& p, sim::Time now) = 0;
};

// Egress side of a cross-domain link under the parallel engine: instead of
// scheduling the propagation arrival on its own simulator, a bridged Port
// posts the packet — stamped with its arrival time and decomposition-
// invariant tie-break key — to a mailbox owned by the destination domain
// (net/domain_bridge.h). With no bridge installed (the default, and always
// for intra-domain links), Ports keep the exact historical delivery path.
class MailboxEgress {
 public:
  virtual ~MailboxEgress() = default;
  virtual void post(int src_domain, int dst_domain, sim::Time at,
                    std::uint64_t key, Packet&& p, Node* dst,
                    std::size_t dst_in_port) = 0;
};

class Port {
 public:
  Port(sim::Simulator& sim, sim::Bandwidth bandwidth, sim::Time propagation_delay,
       const DropTailQueue::Config& queue_config)
      : sim_{sim},
        bandwidth_{bandwidth},
        propagation_delay_{propagation_delay},
        queue_{make_queue(queue_config)},
        flow_tracer_{sim.flow_tracer()} {}

  Port(const Port&) = delete;
  Port& operator=(const Port&) = delete;

  // Wires this port's output to `peer`; delivered packets arrive via
  // peer.receive(packet, peer_in_port).
  void connect(Node& peer, std::size_t peer_in_port) noexcept {
    peer_ = &peer;
    peer_in_port_ = peer_in_port;
  }

  [[nodiscard]] bool connected() const noexcept { return peer_ != nullptr; }
  [[nodiscard]] Node* peer() const noexcept { return peer_; }

  // Queues `p` for transmission, starting the transmitter if idle. The
  // queue may ECN-mark, trim, or drop the packet.
  void send(Packet p);

  // Queues a MAC control frame (PFC pause/resume) for transmission on a
  // strict-priority path: control frames bypass the egress queue entirely
  // and are emitted even while the port itself is paused — otherwise a
  // congestion tree could never be torn down.
  void send_control(Packet p);

  // PFC pause of this port's data transmission. pause_for() (re)arms an
  // auto-expiry at now + duration — real PFC quanta time out, which is the
  // deadlock watchdog: a lost resume frame degrades into a shorter pause,
  // never a hang. resume() lifts the pause early (the resume frame case).
  void pause_for(sim::Time duration);
  void resume();
  [[nodiscard]] bool pfc_paused() const noexcept { return paused_; }
  // Times this port entered the paused state.
  [[nodiscard]] std::int64_t pause_count() const noexcept { return pause_count_; }
  // Cumulative time spent paused, including the currently open pause.
  [[nodiscard]] std::int64_t paused_ns() const noexcept;

  [[nodiscard]] DropTailQueue& queue() noexcept { return *queue_; }
  [[nodiscard]] const DropTailQueue& queue() const noexcept { return *queue_; }
  [[nodiscard]] sim::Bandwidth bandwidth() const noexcept { return bandwidth_; }
  [[nodiscard]] sim::Time propagation_delay() const noexcept { return propagation_delay_; }
  [[nodiscard]] bool busy() const noexcept { return busy_; }

  // Switch egress ports stamp INT telemetry onto INT-enabled packets at
  // dequeue (HPCC-style). Off by default; the topology builder enables it
  // on switch ports.
  void set_int_stamping(bool enabled) noexcept { int_stamping_ = enabled; }
  [[nodiscard]] bool int_stamping() const noexcept { return int_stamping_; }

  // Installs (or clears, with nullptr) the link-fault hook for this port's
  // outgoing direction. The hook must outlive the port or be cleared first.
  void set_link_hook(LinkHook* hook) noexcept { hook_ = hook; }
  [[nodiscard]] LinkHook* link_hook() const noexcept { return hook_; }

  // Adds a read-only observer of transmitted packets (e.g. a PortSampler).
  // Taps must outlive the port's traffic.
  void add_tx_tap(TxTap* tap) { tx_taps_.push_back(tap); }

  // Installs (or clears) the dequeue observer. At most one; it must
  // outlive the port's traffic.
  void set_dequeue_tap(DequeueTap* tap) noexcept { dequeue_tap_ = tap; }

  // Which topology tier this port's egress queue belongs to, for the
  // flow tracer's per-tier queueing attribution (obs::HopTier). Builders
  // tag ports once at construction; untagged ports report kUnknown.
  void set_trace_tier(obs::HopTier tier) noexcept { trace_tier_ = tier; }
  [[nodiscard]] obs::HopTier trace_tier() const noexcept { return trace_tier_; }

  // INT hop records that could not be stamped because the packet's stack
  // was already at kMaxIntHops — silent truncation made loud (satellite of
  // the tail-autopsy work; surfaced as the net.int.hop_overflow metric).
  [[nodiscard]] std::int64_t int_hop_overflows() const noexcept {
    return int_hop_overflows_;
  }

  // Names this port for the observability layer: drop and ECN-mark events
  // are then emitted as "<label>.drop" / "<label>.ecn_mark" instants on the
  // queue track. Only labeled ports trace — unlabeled ports keep the exact
  // historical send() path. No-op when the simulator carries no hub.
  void set_trace_label(const std::string& label);

  // Bytes currently in flight on this port (being serialized or
  // propagating) — the wire half of the auditor's residual-bytes walk.
  // Maintained only when the audit hooks are compiled in; always 0 under
  // -DINCAST_AUDIT=OFF.
  [[nodiscard]] std::int64_t wire_bytes() const noexcept { return wire_bytes_; }

  // Peak number of packets simultaneously in flight on this port — the
  // in-flight pool's slot count, for bytes-per-flow accounting.
  [[nodiscard]] std::size_t pool_high_water() const noexcept { return pool_.high_water(); }

  // --- Parallel-engine wiring (net/domain_bridge.h) -----------------------

  // Back-pointer to the owning Node, set by Node::add_port. The parallel
  // engine draws equal-time tie-break keys from the owner's lane.
  void set_owner(Node* owner) noexcept { owner_ = owner; }

  // Points this port's pool accounting at the owning domain's live-packet
  // counter (in-flight packets enter at acquire, leave at release). The
  // counter must be written only from the domain that runs this port.
  void set_live_counter(std::int64_t* counter) noexcept { live_counter_ = counter; }

  // Routes this port's deliveries through a cross-domain mailbox instead of
  // local scheduling. Install only on ports whose peer lives in a different
  // domain; the bridge must outlive the port's traffic.
  void set_bridge(MailboxEgress* bridge, int src_domain, int dst_domain) noexcept {
    bridge_ = bridge;
    src_domain_ = src_domain;
    dst_domain_ = dst_domain;
  }

 private:
  void maybe_transmit();
  // Consults the hook (if any) and schedules the packet's arrival at the
  // peer after propagation. `p` is a pooled handle owned by this port; it
  // is released (or handed to the propagation event) before returning.
  void deliver(Packet* p);
  // Pool acquire/release with the owning domain's live-packet count kept in
  // step (no-cost when no counter is installed — the legacy path).
  [[nodiscard]] Packet* acquire_pooled() {
    if (live_counter_ != nullptr) ++*live_counter_;
    return pool_.acquire();
  }
  void release_pooled(Packet* p) noexcept {
    if (live_counter_ != nullptr) --*live_counter_;
    pool_.release(p);
  }
  // Next equal-time tie-break key from the owning node's lane (defined in
  // node.cc — needs the full Node type).
  [[nodiscard]] std::uint64_t next_key();
  // Fires when a packet finishes propagating: moves it out of the pool and
  // hands it to the peer.
  void arrive(Packet* p);
  // Closes the open pause interval and restarts transmission.
  void finish_pause();

  sim::Simulator& sim_;
  sim::Bandwidth bandwidth_;
  sim::Time propagation_delay_;
  std::unique_ptr<DropTailQueue> queue_;
  // Storage for packets in flight on this port (being serialized or
  // propagating). Closures capture {this, Packet*} — 16 bytes — instead of
  // moving the full struct (INT stack included) through the event kernel.
  PacketPool pool_;
  Node* owner_{nullptr};
  Node* peer_{nullptr};
  std::size_t peer_in_port_{0};
  MailboxEgress* bridge_{nullptr};
  int src_domain_{0};
  int dst_domain_{0};
  std::int64_t* live_counter_{nullptr};
  bool busy_{false};
  bool int_stamping_{false};
  std::int64_t wire_bytes_{0};
  LinkHook* hook_{nullptr};
  std::vector<TxTap*> tx_taps_;
  DequeueTap* dequeue_tap_{nullptr};
  // Pending control frames, strictly ahead of the data queue. Control
  // traffic is rare (state transitions only), so a plain vector FIFO is
  // fine here.
  std::vector<Packet> ctrl_fifo_;
  std::size_t ctrl_head_{0};
  // PFC pause state. The epoch invalidates stale auto-expiry events when a
  // refresh or an early resume supersedes them.
  bool paused_{false};
  std::uint64_t pause_epoch_{0};
  std::int64_t pause_started_ns_{0};
  std::int64_t pause_count_{0};
  std::int64_t paused_ns_total_{0};
  obs::Hub* trace_hub_{nullptr};
  // Cached at construction, like trace_hub_: nullptr (no tracer attached)
  // keeps the per-packet hooks to a single predictable branch.
  obs::FlowTracer* flow_tracer_{nullptr};
  obs::HopTier trace_tier_{};  // zero-initialized = kUnknown
  std::int64_t int_hop_overflows_{0};
  std::string drop_event_name_;
  std::string mark_event_name_;
  std::string trim_event_name_;
  std::string pause_event_name_;
  std::string resume_event_name_;
};

class Node {
 public:
  Node(sim::Simulator& sim, NodeId id, std::string name)
      : sim_{sim}, id_{id}, name_{std::move(name)} {}
  virtual ~Node() = default;

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  // Delivers a packet that finished traversing a link into this node.
  virtual void receive(Packet p, std::size_t in_port) = 0;

  // Adds an egress port. Returns its index.
  std::size_t add_port(sim::Bandwidth bandwidth, sim::Time propagation_delay,
                       const DropTailQueue::Config& queue_config) {
    ports_.emplace_back(sim_, bandwidth, propagation_delay, queue_config);
    ports_[ports_.size() - 1].set_owner(this);
    return ports_.size() - 1;
  }

  [[nodiscard]] Port& port(std::size_t i) { return ports_[i]; }
  [[nodiscard]] const Port& port(std::size_t i) const { return ports_[i]; }
  [[nodiscard]] std::size_t num_ports() const noexcept { return ports_.size(); }

  [[nodiscard]] NodeId id() const noexcept { return id_; }
  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] sim::Simulator& simulator() noexcept { return sim_; }

  // Which parallel-engine domain this node executes in (0 when the run is
  // not decomposed). Assigned once by the topology builder.
  void set_domain(int domain) noexcept { domain_ = domain; }
  [[nodiscard]] int domain() const noexcept { return domain_; }

  // Next equal-time tie-break key from this node's lane (sim/domain.h).
  // Lane = NodeId + 1, so node lanes never collide with the ambient lane;
  // node ids are assigned in deterministic topology-construction order, so
  // keys are decomposition-invariant. Only code executing in this node's
  // domain may call this — lane counters are unsynchronized by design.
  [[nodiscard]] std::uint64_t next_event_key() noexcept {
    return sim::make_event_key(static_cast<std::uint64_t>(id_) + 1, lane_seq_++);
  }

  // Total INT hop-stamp overflows across this node's ports (see
  // Port::int_hop_overflows).
  [[nodiscard]] std::int64_t int_hop_overflows() const noexcept {
    std::int64_t total = 0;
    for (std::size_t i = 0; i < ports_.size(); ++i) total += ports_[i].int_hop_overflows();
    return total;
  }

 protected:
  sim::Simulator& sim_;

 private:
  NodeId id_;
  std::string name_;
  int domain_{0};
  std::uint64_t lane_seq_{0};
  // Ports are address-pinned (their closures capture `this`), so they live
  // in a chunked arena: stable addresses, 8 ports per heap allocation
  // instead of one each, and chunk-local contiguity for the port walks the
  // auditor and telemetry layers do.
  sim::StableChunkArena<Port, 8> ports_;
};

// Connects a full-duplex link: a.port(ap) -> b as b's in-port bp, and
// b.port(bp) -> a as a's in-port ap.
void connect_duplex(Node& a, std::size_t ap, Node& b, std::size_t bp);

}  // namespace incast::net

#endif  // INCAST_NET_NODE_H_
