#include "fault/fault_injector.h"

#include <string>

#include "obs/hub.h"

namespace incast::fault {

const char* to_string(FaultType t) noexcept {
  switch (t) {
    case FaultType::kRandomDrop: return "random-drop";
    case FaultType::kBurstDrop: return "burst-drop";
    case FaultType::kFlapDrop: return "flap-drop";
    case FaultType::kCorrupt: return "corrupt";
    case FaultType::kDuplicate: return "duplicate";
    case FaultType::kReorder: return "reorder";
  }
  return "unknown";
}

void LinkFault::record(sim::Time at, FaultType type, const net::Packet& p) {
  if (hub_ != nullptr) {
    hub_->instant(at.ns(), obs::TraceCategory::kFault,
                  std::string("fault.") + to_string(type), obs::kFaultTid, "flow",
                  p.tcp.flow_id, "retx", p.is_retransmit ? 1 : 0);
  }
  if (!trace_enabled_) return;
  trace_.push_back(FaultEvent{
      .at = at,
      .type = type,
      .packet_uid = p.uid,
      .data = p.is_data(),
      .retransmit = p.is_retransmit,
  });
}

net::LinkHook::Verdict LinkFault::on_transmit(const net::Packet& p, sim::Time now) {
  Verdict v;
  ++counters_.packets_seen;

  // A downed link blackholes unconditionally and consumes no RNG draws, so
  // the probabilistic streams resume exactly where they left off when the
  // link comes back (flaps don't perturb the other fault types).
  if (down_windows_ > 0) {
    ++counters_.flap_drops;
    record(now, FaultType::kFlapDrop, p);
    v.drop = true;
    return v;
  }

  if (config_.ge_enabled()) {
    // Transition once per packet, then apply the new state's loss rate.
    if (ge_bad_) {
      if (rng_.bernoulli(config_.ge_bad_to_good)) ge_bad_ = false;
    } else {
      if (rng_.bernoulli(config_.ge_good_to_bad)) ge_bad_ = true;
    }
    const double loss = ge_bad_ ? config_.ge_drop_bad : config_.ge_drop_good;
    if (loss > 0.0 && rng_.bernoulli(loss)) {
      ++counters_.burst_drops;
      record(now, FaultType::kBurstDrop, p);
      v.drop = true;
      return v;
    }
  }

  if (config_.drop_rate > 0.0 && rng_.bernoulli(config_.drop_rate)) {
    ++counters_.random_drops;
    record(now, FaultType::kRandomDrop, p);
    v.drop = true;
    return v;
  }

  if (config_.corrupt_rate > 0.0 && rng_.bernoulli(config_.corrupt_rate)) {
    ++counters_.corrupted;
    counters_.corrupted_bytes += p.size_bytes;
    record(now, FaultType::kCorrupt, p);
    v.corrupt = true;
  }

  if (config_.duplicate_rate > 0.0 && rng_.bernoulli(config_.duplicate_rate)) {
    ++counters_.duplicated;
    record(now, FaultType::kDuplicate, p);
    v.duplicate = true;
  }

  if (config_.reorder_rate > 0.0 && rng_.bernoulli(config_.reorder_rate)) {
    ++counters_.reordered;
    record(now, FaultType::kReorder, p);
    // (0, max]: always a strictly positive displacement.
    v.extra_delay = config_.reorder_max_delay -
                    rng_.uniform_time(sim::Time::zero(), config_.reorder_max_delay);
  }

  return v;
}

LinkFault& FaultInjector::install(net::Port& port, const LinkFaultConfig& config) {
  links_.push_back(std::make_unique<LinkFault>(config, rng_.fork()));
  LinkFault& link = *links_.back();
  obs::Hub* hub = INCAST_OBS_HUB(sim_);
  if (hub != nullptr && hub->enabled()) link.set_hub(hub);
  port.set_link_hook(&link);
  return link;
}

void FaultInjector::schedule_flap(LinkFault& link, sim::Time down_at, sim::Time duration) {
  if (duration <= sim::Time::zero()) return;
  sim_.schedule_at(down_at, [&link] { link.begin_flap(); }, sim::EventCategory::kFault);
  sim_.schedule_at(down_at + duration, [&link] { link.end_flap(); },
                   sim::EventCategory::kFault);
}

FaultCounters FaultInjector::total() const noexcept {
  FaultCounters sum;
  for (const auto& link : links_) {
    const FaultCounters& c = link->counters();
    sum.packets_seen += c.packets_seen;
    sum.random_drops += c.random_drops;
    sum.burst_drops += c.burst_drops;
    sum.flap_drops += c.flap_drops;
    sum.corrupted += c.corrupted;
    sum.corrupted_bytes += c.corrupted_bytes;
    sum.duplicated += c.duplicated;
    sum.reordered += c.reordered;
  }
  return sum;
}

}  // namespace incast::fault
