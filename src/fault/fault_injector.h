// FaultInjector: deterministic, seeded link-fault injection.
//
// Production incast does not happen on ideal links: fabrics see random
// bit-error loss, bursty loss episodes, link flaps, corrupted frames,
// duplicated and reordered packets. This layer injects all of those at the
// net::Port level (via net::LinkHook) so the TCP stack's recovery machinery
// — SACK, fast retransmit, TLP, RTO exponential backoff — is exercised by
// non-congestion loss that the bottleneck queue never sees.
//
// Determinism is a hard invariant: every probabilistic decision comes from a
// sim::Rng stream forked per installed link, consumed in event order, so a
// seed fully determines which packets are dropped/corrupted/duplicated.
// Disabled fault types consume no draws, and a link that is flapped down
// consumes no draws either, so enabling one fault never perturbs another's
// stream. When no fault is configured, nothing is installed and the
// simulation is bit-for-bit identical to a run without this layer.
#ifndef INCAST_FAULT_FAULT_INJECTOR_H_
#define INCAST_FAULT_FAULT_INJECTOR_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "net/node.h"
#include "sim/random.h"
#include "sim/simulator.h"

namespace incast::obs {
class Hub;
}  // namespace incast::obs

namespace incast::fault {

// Per-link fault parameters. All rates are per-packet probabilities in
// [0, 1]; a zero rate disables that fault type entirely (no RNG draw).
struct LinkFaultConfig {
  // i.i.d. random loss: each packet is independently dropped.
  double drop_rate{0.0};

  // Gilbert-Elliott two-state burst loss. The chain transitions once per
  // packet (good -> bad with probability ge_good_to_bad, bad -> good with
  // ge_bad_to_good), then the packet is dropped with the current state's
  // loss probability. Enabled when ge_good_to_bad > 0.
  double ge_good_to_bad{0.0};
  double ge_bad_to_good{0.1};
  double ge_drop_good{0.0};
  double ge_drop_bad{1.0};

  // Payload corruption: the packet is delivered but flagged corrupted; the
  // receiving NIC discards it silently (no dup-ACKs — recovery must come
  // from SACK holes or RTO).
  double corrupt_rate{0.0};

  // Duplication: a second copy arrives immediately after the original.
  double duplicate_rate{0.0};

  // Bounded reordering: the packet's propagation is stretched by a uniform
  // extra delay in (0, reorder_max_delay], letting later packets overtake.
  double reorder_rate{0.0};
  sim::Time reorder_max_delay{sim::Time::microseconds(50)};

  [[nodiscard]] bool ge_enabled() const noexcept { return ge_good_to_bad > 0.0; }
  [[nodiscard]] bool any_enabled() const noexcept {
    return drop_rate > 0.0 || ge_enabled() || corrupt_rate > 0.0 ||
           duplicate_rate > 0.0 || reorder_rate > 0.0;
  }
};

// One scheduled link outage: the link blackholes every packet in
// [down_at, down_at + duration) and then restores. Overlapping windows
// compose (the link is down while any window covers the current time).
struct FlapWindow {
  sim::Time down_at{};
  sim::Time duration{};
};

enum class FaultType : std::uint8_t {
  kRandomDrop,  // i.i.d. Bernoulli loss
  kBurstDrop,   // Gilbert-Elliott bad-state loss
  kFlapDrop,    // link down (blackhole)
  kCorrupt,
  kDuplicate,
  kReorder,
};

[[nodiscard]] const char* to_string(FaultType t) noexcept;

// Cumulative per-fault-type counters for one link (or summed across links).
// injected_drops() is the figure to compare against DropTailQueue's
// dropped_packets: the two never overlap, so congestion loss and injected
// loss stay separately attributable.
struct FaultCounters {
  std::int64_t packets_seen{0};  // packets that reached the hook
  std::int64_t random_drops{0};
  std::int64_t burst_drops{0};
  std::int64_t flap_drops{0};
  std::int64_t corrupted{0};
  std::int64_t corrupted_bytes{0};  // wire bytes of corrupted frames
  std::int64_t duplicated{0};
  std::int64_t reordered{0};

  [[nodiscard]] std::int64_t injected_drops() const noexcept {
    return random_drops + burst_drops + flap_drops;
  }
};

// One injected fault, recorded in event order. The trace is what the
// determinism tests compare: same seed => identical sequence.
struct FaultEvent {
  sim::Time at{};
  FaultType type{FaultType::kRandomDrop};
  std::uint64_t packet_uid{0};
  bool data{false};        // packet carried TCP payload
  bool retransmit{false};  // packet was a TCP retransmission

  friend bool operator==(const FaultEvent&, const FaultEvent&) = default;
};

// Fault state for one unidirectional link. Normally created through
// FaultInjector::install(), but directly constructible for unit tests that
// drive on_transmit() by hand.
class LinkFault final : public net::LinkHook {
 public:
  LinkFault(const LinkFaultConfig& config, sim::Rng rng) noexcept
      : config_{config}, rng_{rng} {}

  Verdict on_transmit(const net::Packet& p, sim::Time now) override;

  // Flap state, manipulated by FaultInjector::schedule_flap. A counter, not
  // a flag, so overlapping windows compose correctly.
  void begin_flap() noexcept { ++down_windows_; }
  void end_flap() noexcept { --down_windows_; }
  [[nodiscard]] bool link_up() const noexcept { return down_windows_ == 0; }

  [[nodiscard]] bool ge_in_bad_state() const noexcept { return ge_bad_; }
  [[nodiscard]] const FaultCounters& counters() const noexcept { return counters_; }
  [[nodiscard]] const LinkFaultConfig& config() const noexcept { return config_; }

  // Event trace; on by default (one small record per *fault*, not per
  // packet, so the cost is proportional to the damage done).
  void set_trace_enabled(bool enabled) noexcept { trace_enabled_ = enabled; }
  [[nodiscard]] const std::vector<FaultEvent>& trace() const noexcept { return trace_; }

  // Observability: injected faults additionally become "fault.<type>"
  // instants on the fault track. Set by FaultInjector::install().
  void set_hub(obs::Hub* hub) noexcept { hub_ = hub; }

 private:
  void record(sim::Time at, FaultType type, const net::Packet& p);

  LinkFaultConfig config_;
  sim::Rng rng_;
  int down_windows_{0};
  bool ge_bad_{false};
  bool trace_enabled_{true};
  obs::Hub* hub_{nullptr};
  FaultCounters counters_;
  std::vector<FaultEvent> trace_;
};

// Owns the fault state for a set of links and the master RNG stream.
// Install on any net::Port; each installed link forks its own child stream,
// so adding a fault to one link never changes another link's decisions.
class FaultInjector {
 public:
  FaultInjector(sim::Simulator& sim, std::uint64_t seed) noexcept
      : sim_{sim}, rng_{seed} {}

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  // Installs fault behavior on `port`'s outgoing direction. The returned
  // LinkFault is owned by the injector and lives until the injector dies
  // (which must outlive the port's traffic).
  LinkFault& install(net::Port& port, const LinkFaultConfig& config);

  // Schedules a blackhole window on one link direction. Windows may overlap;
  // non-positive durations are ignored. Must be called at (or before) the
  // simulation time `down_at`.
  void schedule_flap(LinkFault& link, sim::Time down_at, sim::Time duration);

  [[nodiscard]] std::size_t num_links() const noexcept { return links_.size(); }
  [[nodiscard]] LinkFault& link(std::size_t i) { return *links_.at(i); }

  // Counters summed over every installed link.
  [[nodiscard]] FaultCounters total() const noexcept;

 private:
  sim::Simulator& sim_;
  sim::Rng rng_;
  std::vector<std::unique_ptr<LinkFault>> links_;
};

}  // namespace incast::fault

#endif  // INCAST_FAULT_FAULT_INJECTOR_H_
