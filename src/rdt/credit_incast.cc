#include "rdt/credit_incast.h"

#include <cassert>

namespace incast::rdt {

CreditIncastDriver::CreditIncastDriver(sim::Simulator& sim, net::Dumbbell& dumbbell,
                                       const Config& config, std::uint64_t seed)
    : sim_{sim}, config_{config}, rng_{seed} {
  assert(config_.num_flows <= dumbbell.num_senders());

  const sim::Bandwidth bottleneck =
      dumbbell.config().receiver_link.value_or(dumbbell.config().host_link);
  demand_per_flow_ = std::max<std::int64_t>(
      bottleneck.bytes_in(config_.burst_duration) / config_.num_flows, 1);

  CreditReceiver::Config rcfg = config_.receiver;
  rcfg.line_rate = bottleneck;
  receiver_ = std::make_unique<CreditReceiver>(sim_, dumbbell.receiver(0), rcfg);
  receiver_->set_on_flow_complete([this](net::FlowId) { on_flow_complete(); });

  senders_.reserve(static_cast<std::size_t>(config_.num_flows));
  for (int i = 0; i < config_.num_flows; ++i) {
    const auto flow = static_cast<net::FlowId>(i) + 1;
    senders_.push_back(std::make_unique<CreditSender>(
        sim_, dumbbell.sender(i), dumbbell.receiver(0).id(), flow, config_.sender));
    receiver_->accept_flow(flow, dumbbell.sender(i).id());
  }
}

void CreditIncastDriver::start() { start_burst(); }

void CreditIncastDriver::start_burst() {
  ++current_burst_;
  flows_done_in_burst_ = 0;
  burst_started_ = sim_.now();
  for (auto& sender : senders_) {
    const sim::Time jitter =
        rng_.uniform_time(sim::Time::zero(), config_.start_jitter_max);
    CreditSender* s = sender.get();
    sim_.schedule_in(jitter, [s, demand = demand_per_flow_] { s->add_app_data(demand); },
                     sim::EventCategory::kWorkload);
  }
}

void CreditIncastDriver::on_flow_complete() {
  ++flows_done_in_burst_;
  if (flows_done_in_burst_ < config_.num_flows) return;

  records_.push_back(BurstRecord{current_burst_, burst_started_, sim_.now()});
  ++completed_bursts_;
  if (completed_bursts_ < config_.num_bursts) {
    sim_.schedule_in(config_.inter_burst_gap, [this] { start_burst(); },
                     sim::EventCategory::kWorkload);
  }
}

std::int64_t CreditIncastDriver::total_rts() const {
  std::int64_t total = 0;
  for (const auto& s : senders_) total += s->rts_sent();
  return total;
}

std::int64_t CreditIncastDriver::total_data_packets() const {
  std::int64_t total = 0;
  for (const auto& s : senders_) total += s->data_packets_sent();
  return total;
}

}  // namespace incast::rdt
