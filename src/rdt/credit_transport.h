// Receiver-driven credit transport ("rdt") — the transport-replacement
// class of incast solutions the paper's Section 5 surveys (ExpressPass,
// pHost, NDP, Homa), distilled to its load-bearing idea:
//
//   the RECEIVER allocates its own downlink. Senders announce demand with
//   a tiny RTS; the receiver issues one credit (grant) per segment, paced
//   at exactly the downlink line rate and round-robin across flows; a
//   sender transmits a segment only when credited.
//
// Because credited data arrives at most at line rate, the ToR downlink
// queue stays at O(1) packets regardless of incast degree — 10,000 flows
// are no harder than 10. The costs are the ones the paper names: this is
// not TCP (deployment), it spends an RTT on RTS/grant signaling, and the
// grant stream consumes reverse-path bandwidth.
//
// Reliability is receiver-driven too: grants carry a deadline, and a grant
// whose data never arrives is simply re-issued. Senders are stateless
// beyond their demand counter — there is no retransmission machinery, no
// RTO, no congestion window.
#ifndef INCAST_RDT_CREDIT_TRANSPORT_H_
#define INCAST_RDT_CREDIT_TRANSPORT_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <unordered_map>
#include <vector>

#include "net/host.h"
#include "sim/random.h"
#include "sim/units.h"

namespace incast::rdt {

// --- Sender ------------------------------------------------------------------

class CreditSender final : public net::PacketHandler {
 public:
  struct Config {
    std::int64_t mss_bytes{1460};
    // Re-announce demand when no grant has arrived for this long. At high
    // incast degree the round-robin inter-grant gap is legitimately long,
    // so retries back off exponentially (with jitter, to avoid the whole
    // incast re-RTSing in lockstep) and reset on any grant.
    sim::Time rts_retry_base{sim::Time::milliseconds(2)};
    sim::Time rts_retry_max{sim::Time::milliseconds(100)};
  };

  CreditSender(sim::Simulator& sim, net::Host& local, net::NodeId receiver,
               net::FlowId flow, const Config& config);
  ~CreditSender() override;

  CreditSender(const CreditSender&) = delete;
  CreditSender& operator=(const CreditSender&) = delete;

  // Extends the flow's demand and announces it to the receiver.
  void add_app_data(std::int64_t bytes);

  // Grants arrive here; each one releases exactly one data segment.
  void handle_packet(net::Packet p) override;

  [[nodiscard]] std::int64_t demand_bytes() const noexcept { return demand_; }
  [[nodiscard]] std::int64_t granted_bytes() const noexcept { return granted_; }
  [[nodiscard]] std::int64_t data_packets_sent() const noexcept { return data_sent_; }
  [[nodiscard]] std::int64_t rts_sent() const noexcept { return rts_sent_; }

 private:
  void send_rts();
  void arm_rts_retry();

  sim::Simulator& sim_;
  net::Host& local_;
  net::NodeId receiver_;
  net::FlowId flow_;
  Config config_;

  std::int64_t demand_{0};
  std::int64_t granted_{0};
  std::int64_t data_sent_{0};
  std::int64_t rts_sent_{0};
  int rts_backoff_{0};
  sim::Rng rng_;
  sim::EventId rts_timer_{sim::kInvalidEventId};
};

// --- Receiver ----------------------------------------------------------------

// One CreditReceiver serves an entire host: it owns the downlink's credit
// budget and schedules all incast flows against it.
class CreditReceiver {
 public:
  struct Config {
    std::int64_t mss_bytes{1460};
    // Downlink rate the grant stream is paced to.
    sim::Bandwidth line_rate{sim::Bandwidth::gigabits_per_second(10)};
    // Pace grants at line_rate * overcommit (1.0 = exactly line rate;
    // slightly above hides grant/data jitter at the cost of tiny queues).
    double overcommit{1.0};
    // A grant unanswered for this long is considered lost and re-issued.
    sim::Time regrant_timeout{sim::Time::milliseconds(1)};
  };

  CreditReceiver(sim::Simulator& sim, net::Host& local, const Config& config);

  CreditReceiver(const CreditReceiver&) = delete;
  CreditReceiver& operator=(const CreditReceiver&) = delete;

  // Wires a flow terminating at this receiver: RTS/data for `flow` arrive
  // here; grants are addressed to `sender`.
  void accept_flow(net::FlowId flow, net::NodeId sender);

  // Invoked whenever a flow's received bytes reach its announced demand.
  void set_on_flow_complete(std::function<void(net::FlowId)> cb) {
    on_flow_complete_ = std::move(cb);
  }

  [[nodiscard]] std::int64_t received_bytes(net::FlowId flow) const;
  [[nodiscard]] std::int64_t total_received_bytes() const noexcept { return total_received_; }
  [[nodiscard]] std::int64_t grants_sent() const noexcept { return grants_sent_; }
  [[nodiscard]] std::int64_t regrants_sent() const noexcept { return regrants_sent_; }

 private:
  struct Range {
    std::int64_t start{0};
    std::int64_t end{0};
  };

  struct FlowState {
    net::NodeId sender{net::kInvalidNodeId};
    std::int64_t demand{0};           // announced total
    std::int64_t next_new_offset{0};  // first never-granted byte
    std::deque<Range> regrant;        // expired grants to re-issue
    std::map<std::int64_t, std::int64_t> received;  // merged [start,end)
    std::int64_t received_bytes{0};
    std::int64_t completed_through{0};  // demand level already reported
  };

  struct OutstandingGrant {
    net::FlowId flow{0};
    Range range{};
    sim::Time deadline{};
  };

  // The per-flow packet handler shim (Host demuxes per flow id).
  class FlowPort final : public net::PacketHandler {
   public:
    FlowPort(CreditReceiver& owner, net::FlowId flow) : owner_{owner}, flow_{flow} {}
    void handle_packet(net::Packet p) override { owner_.on_packet(flow_, std::move(p)); }

   private:
    CreditReceiver& owner_;
    net::FlowId flow_;
  };

  void on_packet(net::FlowId flow, net::Packet p);
  void on_rts(FlowState& state, const net::Packet& p);
  void on_data(net::FlowId flow, FlowState& state, const net::Packet& p);
  [[nodiscard]] bool flow_needs_grant(const FlowState& state) const noexcept;
  void ensure_grant_timer();
  void grant_tick();
  void issue_grant(net::FlowId flow, FlowState& state);
  void expire_outstanding();
  [[nodiscard]] bool range_received(const FlowState& state, const Range& r) const;
  void merge_received(FlowState& state, std::int64_t start, std::int64_t end);

  sim::Simulator& sim_;
  net::Host& local_;
  Config config_;
  sim::Time grant_interval_{};

  std::unordered_map<net::FlowId, FlowState> flows_;
  std::vector<std::unique_ptr<FlowPort>> ports_;
  // Round-robin order over flow ids (stable across runs).
  std::vector<net::FlowId> rr_order_;
  std::size_t rr_cursor_{0};
  std::deque<OutstandingGrant> outstanding_;

  bool timer_armed_{false};
  sim::Time next_grant_at_{sim::Time::zero()};
  std::int64_t grants_sent_{0};
  std::int64_t regrants_sent_{0};
  std::int64_t total_received_{0};
  std::function<void(net::FlowId)> on_flow_complete_;
};

}  // namespace incast::rdt

#endif  // INCAST_RDT_CREDIT_TRANSPORT_H_
