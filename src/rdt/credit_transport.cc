#include "rdt/credit_transport.h"

#include <algorithm>
#include <cassert>

namespace incast::rdt {

namespace {

net::Packet make_control(net::NodeId src, net::NodeId dst, net::FlowId flow,
                         net::RdtType type, std::int64_t offset, std::int64_t length) {
  net::Packet p;
  p.src = src;
  p.dst = dst;
  p.size_bytes = net::kHeaderBytes;
  p.payload_bytes = 0;
  p.tcp.flow_id = flow;
  p.rdt = net::RdtHeader{type, offset, length};
  return p;
}

}  // namespace

// --- CreditSender -------------------------------------------------------------

CreditSender::CreditSender(sim::Simulator& sim, net::Host& local, net::NodeId receiver,
                           net::FlowId flow, const Config& config)
    : sim_{sim},
      local_{local},
      receiver_{receiver},
      flow_{flow},
      config_{config},
      rng_{flow * 0x9E3779B97f4A7C15ULL + 1} {
  local_.register_flow(flow_, this);
}

CreditSender::~CreditSender() {
  local_.unregister_flow(flow_);
  sim_.cancel(rts_timer_);
}

void CreditSender::add_app_data(std::int64_t bytes) {
  assert(bytes >= 0);
  if (bytes == 0) return;
  demand_ += bytes;
  send_rts();
}

void CreditSender::send_rts() {
  local_.send(make_control(local_.id(), receiver_, flow_, net::RdtType::kRts,
                           /*offset=*/demand_, /*length=*/0));
  ++rts_sent_;
  arm_rts_retry();
}

void CreditSender::arm_rts_retry() {
  sim_.cancel(rts_timer_);
  // Exponential backoff with +/-50% jitter: a lost RTS is retried quickly,
  // but a flow merely waiting its round-robin turn quiets down instead of
  // joining a synchronized retry storm.
  sim::Time delay = config_.rts_retry_base;
  for (int i = 0; i < rts_backoff_ && delay < config_.rts_retry_max; ++i) {
    delay = delay * 2.0;
  }
  if (delay > config_.rts_retry_max) delay = config_.rts_retry_max;
  delay = delay * rng_.uniform(0.5, 1.5);
  rts_timer_ = sim_.schedule_in(delay,
                                [this] {
                                  rts_timer_ = sim::kInvalidEventId;
                                  if (granted_ < demand_) {
                                    ++rts_backoff_;
                                    send_rts();
                                  }
                                },
                                sim::EventCategory::kTcp);
}

void CreditSender::handle_packet(net::Packet p) {
  if (p.rdt.type != net::RdtType::kGrant) return;

  // Each grant releases exactly one segment, immediately.
  net::Packet data = net::make_data_packet(local_.id(), receiver_, flow_,
                                           p.rdt.offset, p.rdt.length);
  data.rdt = net::RdtHeader{net::RdtType::kData, p.rdt.offset, p.rdt.length};
  data.sent_at = sim_.now();
  local_.send(std::move(data));
  ++data_sent_;
  granted_ = std::max(granted_, p.rdt.offset + p.rdt.length);

  rts_backoff_ = 0;  // grants are flowing; the receiver clearly knows us
  if (granted_ < demand_) {
    arm_rts_retry();  // keep the RTS watchdog alive while work remains
  } else {
    sim_.cancel(rts_timer_);
    rts_timer_ = sim::kInvalidEventId;
  }
}

// --- CreditReceiver -----------------------------------------------------------

CreditReceiver::CreditReceiver(sim::Simulator& sim, net::Host& local, const Config& config)
    : sim_{sim}, local_{local}, config_{config} {
  const std::int64_t wire_bytes = config_.mss_bytes + net::kHeaderBytes;
  grant_interval_ =
      config_.line_rate.serialization_time(wire_bytes) * (1.0 / config_.overcommit);
}

void CreditReceiver::accept_flow(net::FlowId flow, net::NodeId sender) {
  auto [it, inserted] = flows_.try_emplace(flow);
  if (!inserted) return;
  it->second.sender = sender;
  ports_.push_back(std::make_unique<FlowPort>(*this, flow));
  local_.register_flow(flow, ports_.back().get());
  rr_order_.push_back(flow);
}

std::int64_t CreditReceiver::received_bytes(net::FlowId flow) const {
  const auto it = flows_.find(flow);
  return it == flows_.end() ? 0 : it->second.received_bytes;
}

void CreditReceiver::on_packet(net::FlowId flow, net::Packet p) {
  const auto it = flows_.find(flow);
  if (it == flows_.end()) return;
  switch (p.rdt.type) {
    case net::RdtType::kRts:
      on_rts(it->second, p);
      break;
    case net::RdtType::kData:
      on_data(flow, it->second, p);
      break;
    default:
      break;
  }
}

void CreditReceiver::on_rts(FlowState& state, const net::Packet& p) {
  state.demand = std::max(state.demand, p.rdt.offset);
  if (flow_needs_grant(state)) ensure_grant_timer();
}

void CreditReceiver::on_data(net::FlowId flow, FlowState& state, const net::Packet& p) {
  merge_received(state, p.tcp.seq, p.tcp.seq + p.payload_bytes);

  if (state.received_bytes >= state.demand &&
      state.completed_through < state.demand) {
    state.completed_through = state.demand;
    if (on_flow_complete_) on_flow_complete_(flow);
  }
}

bool CreditReceiver::flow_needs_grant(const FlowState& state) const noexcept {
  return !state.regrant.empty() || state.next_new_offset < state.demand;
}

void CreditReceiver::ensure_grant_timer() {
  if (timer_armed_) return;
  timer_armed_ = true;
  const sim::Time at = std::max(next_grant_at_, sim_.now());
  sim_.schedule_at(at,
                   [this] {
                     timer_armed_ = false;
                     grant_tick();
                   },
                   sim::EventCategory::kTcp);
}

void CreditReceiver::grant_tick() {
  expire_outstanding();

  // Round-robin: find the next flow that can absorb a credit.
  for (std::size_t scanned = 0; scanned < rr_order_.size(); ++scanned) {
    const net::FlowId flow = rr_order_[rr_cursor_];
    rr_cursor_ = (rr_cursor_ + 1) % rr_order_.size();
    auto& state = flows_.at(flow);
    if (!flow_needs_grant(state)) continue;

    issue_grant(flow, state);
    next_grant_at_ = sim_.now() + grant_interval_;
    // More work pending (this or other flows)? Keep the pacer running.
    ensure_grant_timer();
    return;
  }
  // Nothing to grant; outstanding grants may still expire and revive us.
  if (!outstanding_.empty()) {
    next_grant_at_ = std::max(next_grant_at_, outstanding_.front().deadline);
    ensure_grant_timer();
  }
}

void CreditReceiver::issue_grant(net::FlowId flow, FlowState& state) {
  Range r;
  bool is_regrant = false;
  if (!state.regrant.empty()) {
    r = state.regrant.front();
    state.regrant.pop_front();
    is_regrant = true;
    // Clip to one segment; remainder stays queued.
    if (r.end - r.start > config_.mss_bytes) {
      state.regrant.push_front(Range{r.start + config_.mss_bytes, r.end});
      r.end = r.start + config_.mss_bytes;
    }
  } else {
    r.start = state.next_new_offset;
    r.end = std::min(r.start + config_.mss_bytes, state.demand);
    state.next_new_offset = r.end;
  }

  local_.send(make_control(local_.id(), state.sender, flow, net::RdtType::kGrant, r.start,
                           r.end - r.start));
  ++grants_sent_;
  if (is_regrant) ++regrants_sent_;
  outstanding_.push_back(
      OutstandingGrant{flow, r, sim_.now() + config_.regrant_timeout});
}

void CreditReceiver::expire_outstanding() {
  while (!outstanding_.empty() && outstanding_.front().deadline <= sim_.now()) {
    const OutstandingGrant grant = outstanding_.front();
    outstanding_.pop_front();
    auto& state = flows_.at(grant.flow);
    if (!range_received(state, grant.range)) {
      state.regrant.push_back(grant.range);
    }
  }
}

bool CreditReceiver::range_received(const FlowState& state, const Range& r) const {
  auto it = state.received.upper_bound(r.start);
  if (it != state.received.begin()) {
    --it;
    return it->first <= r.start && it->second >= r.end;
  }
  return false;
}

void CreditReceiver::merge_received(FlowState& state, std::int64_t start, std::int64_t end) {
  if (start >= end) return;
  // Count only bytes not previously received (duplicates from spurious
  // regrants must not double-count).
  std::int64_t new_bytes = end - start;
  auto it = state.received.lower_bound(start);
  if (it != state.received.begin()) {
    auto prev = std::prev(it);
    if (prev->second >= start) {
      new_bytes -= std::min(end, prev->second) - start;
      start = prev->first;
      end = std::max(end, prev->second);
      it = state.received.erase(prev);
    }
  }
  while (it != state.received.end() && it->first <= end) {
    const std::int64_t overlap =
        std::max<std::int64_t>(0, std::min(end, it->second) - it->first);
    new_bytes -= overlap;
    end = std::max(end, it->second);
    it = state.received.erase(it);
  }
  state.received.emplace(start, end);
  if (new_bytes > 0) {
    state.received_bytes += new_bytes;
    total_received_ += new_bytes;
  }
}

}  // namespace incast::rdt
