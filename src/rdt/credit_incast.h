// CreditIncastDriver: the Section 4 cyclic incast workload over the
// receiver-driven credit transport, mirroring workload::CyclicIncastDriver
// so the two transports can be compared on identical demand.
#ifndef INCAST_RDT_CREDIT_INCAST_H_
#define INCAST_RDT_CREDIT_INCAST_H_

#include <memory>
#include <vector>

#include "net/topology.h"
#include "rdt/credit_transport.h"
#include "sim/random.h"

namespace incast::rdt {

class CreditIncastDriver {
 public:
  struct Config {
    int num_flows{500};
    int num_bursts{4};
    sim::Time burst_duration{sim::Time::milliseconds(15)};
    sim::Time inter_burst_gap{sim::Time::milliseconds(10)};
    sim::Time start_jitter_max{sim::Time::microseconds(100)};
    CreditReceiver::Config receiver{};
    CreditSender::Config sender{};
  };

  struct BurstRecord {
    int index{0};
    sim::Time started{};
    sim::Time completed{};
    [[nodiscard]] sim::Time completion_time() const noexcept { return completed - started; }
  };

  CreditIncastDriver(sim::Simulator& sim, net::Dumbbell& dumbbell, const Config& config,
                     std::uint64_t seed);

  void start();

  [[nodiscard]] bool finished() const noexcept {
    return completed_bursts_ == config_.num_bursts;
  }
  [[nodiscard]] const std::vector<BurstRecord>& bursts() const noexcept { return records_; }
  [[nodiscard]] std::int64_t demand_per_flow_bytes() const noexcept {
    return demand_per_flow_;
  }
  [[nodiscard]] CreditReceiver& receiver() noexcept { return *receiver_; }
  [[nodiscard]] std::int64_t total_rts() const;
  [[nodiscard]] std::int64_t total_data_packets() const;

 private:
  void start_burst();
  void on_flow_complete();

  sim::Simulator& sim_;
  Config config_;
  sim::Rng rng_;
  std::int64_t demand_per_flow_{0};
  std::unique_ptr<CreditReceiver> receiver_;
  std::vector<std::unique_ptr<CreditSender>> senders_;

  int current_burst_{-1};
  int completed_bursts_{0};
  int flows_done_in_burst_{0};
  sim::Time burst_started_{};
  std::vector<BurstRecord> records_;
};

}  // namespace incast::rdt

#endif  // INCAST_RDT_CREDIT_INCAST_H_
