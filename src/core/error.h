// core::Error — the driver-level error taxonomy.
//
// Everything the CLI can fail on falls into one of four categories, each
// with a documented, stable exit code so scripts and CI can branch on the
// *kind* of failure without parsing stderr:
//
//   kConfig   (exit 2) — the invocation itself is wrong: unknown flag, bad
//                        value, journal/config fingerprint mismatch.
//   kIo       (exit 3) — the config was fine but a file was not: unreadable
//                        trace CSV, unwritable journal or export path.
//   kAudit    (exit 4) — a run-hardening invariant or budget tripped
//                        (sim::AuditFailure / sim::BudgetExceeded are mapped
//                        to this category by the driver's top-level handler).
//   kInternal (exit 5) — everything else: a bug, not an input problem.
//
// Signal-terminated runs exit with the shell convention 128 + signo
// (130 = SIGINT, 143 = SIGTERM).
#ifndef INCAST_CORE_ERROR_H_
#define INCAST_CORE_ERROR_H_

#include <stdexcept>
#include <string>

namespace incast::core {

enum class ErrorCategory { kConfig, kIo, kAudit, kInternal };

[[nodiscard]] const char* to_string(ErrorCategory category) noexcept;

// The process exit code for a category: 2, 3, 4, 5 in declaration order.
[[nodiscard]] int exit_code(ErrorCategory category) noexcept;

class Error : public std::runtime_error {
 public:
  Error(ErrorCategory category, const std::string& message)
      : std::runtime_error{message}, category_{category} {}

  [[nodiscard]] ErrorCategory category() const noexcept { return category_; }

 private:
  ErrorCategory category_;
};

}  // namespace incast::core

#endif  // INCAST_CORE_ERROR_H_
