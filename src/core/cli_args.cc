#include "core/cli_args.h"

#include <charconv>

namespace incast::core {

CliArgs::CliArgs(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    const std::string body = arg.substr(2);
    const std::size_t eq = body.find('=');
    if (eq != std::string::npos) {
      values_[body.substr(0, eq)] = body.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      values_[body] = argv[++i];
    } else {
      values_[body] = "true";  // bare flag
    }
  }
  for (const auto& [key, value] : values_) consumed_[key] = false;
}

std::optional<std::string> CliArgs::get(const std::string& key) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return std::nullopt;
  const_cast<CliArgs*>(this)->consumed_[key] = true;
  return it->second;
}

std::string CliArgs::get_or(const std::string& key, std::string fallback) const {
  return get(key).value_or(std::move(fallback));
}

std::int64_t CliArgs::int_or(const std::string& key, std::int64_t fallback) {
  const auto raw = get(key);
  if (!raw) return fallback;
  std::int64_t value = 0;
  const auto [ptr, ec] = std::from_chars(raw->data(), raw->data() + raw->size(), value);
  if (ec != std::errc{} || ptr != raw->data() + raw->size()) {
    errors_.push_back("--" + key + ": expected an integer, got '" + *raw + "'");
    return fallback;
  }
  return value;
}

double CliArgs::double_or(const std::string& key, double fallback) {
  const auto raw = get(key);
  if (!raw) return fallback;
  double value = 0.0;
  const auto [ptr, ec] = std::from_chars(raw->data(), raw->data() + raw->size(), value);
  if (ec != std::errc{} || ptr != raw->data() + raw->size()) {
    errors_.push_back("--" + key + ": expected a number, got '" + *raw + "'");
    return fallback;
  }
  return value;
}

bool CliArgs::bool_or(const std::string& key, bool fallback) {
  const auto raw = get(key);
  if (!raw) return fallback;
  if (*raw == "true" || *raw == "1" || *raw == "yes" || *raw == "on") return true;
  if (*raw == "false" || *raw == "0" || *raw == "no" || *raw == "off") return false;
  errors_.push_back("--" + key + ": expected a boolean, got '" + *raw + "'");
  return fallback;
}

sim::Time CliArgs::time_or(const std::string& key, sim::Time fallback) {
  const auto raw = get(key);
  if (!raw) return fallback;
  const auto parsed = sim::parse_time(*raw);
  if (!parsed) {
    errors_.push_back("--" + key + ": expected a duration like '15ms', got '" + *raw + "'");
    return fallback;
  }
  return *parsed;
}

sim::Bandwidth CliArgs::bandwidth_or(const std::string& key, sim::Bandwidth fallback) {
  const auto raw = get(key);
  if (!raw) return fallback;
  const auto parsed = sim::parse_bandwidth(*raw);
  if (!parsed) {
    errors_.push_back("--" + key + ": expected a rate like '10Gbps', got '" + *raw + "'");
    return fallback;
  }
  return *parsed;
}

std::int64_t CliArgs::int_or(const std::string& key, std::int64_t fallback,
                             std::int64_t min_value, std::int64_t max_value) {
  const std::int64_t value = int_or(key, fallback);
  if (value < min_value || value > max_value) {
    errors_.push_back("--" + key + ": " + std::to_string(value) + " is out of range [" +
                      std::to_string(min_value) + ", " + std::to_string(max_value) + "]");
    return fallback;
  }
  return value;
}

double CliArgs::double_or(const std::string& key, double fallback, double min_value,
                          double max_value) {
  const double value = double_or(key, fallback);
  if (value < min_value || value > max_value) {
    errors_.push_back("--" + key + ": " + std::to_string(value) + " is out of range [" +
                      std::to_string(min_value) + ", " + std::to_string(max_value) + "]");
    return fallback;
  }
  return value;
}

sim::Time CliArgs::time_or(const std::string& key, sim::Time fallback,
                           sim::Time min_value) {
  const sim::Time value = time_or(key, fallback);
  if (value < min_value) {
    errors_.push_back("--" + key + ": " + value.to_string() + " is below the minimum " +
                      min_value.to_string());
    return fallback;
  }
  return value;
}

bool resolve_parallelism(int jobs_flag, int domains_flag, int hardware_threads,
                         Parallelism& out, std::string& error) {
  if (hardware_threads < 1) hardware_threads = 1;  // hardware_concurrency() may be 0
  if (jobs_flag < 0 || domains_flag < 0) {
    error = "--jobs/--domains: negative values are not a thread count";
    return false;
  }
  const bool jobs_auto = jobs_flag == 0;
  const bool domains_auto = domains_flag == 0;
  out.domains = domains_auto ? hardware_threads : domains_flag;
  out.jobs = jobs_auto ? (hardware_threads / out.domains > 1 ? hardware_threads / out.domains : 1)
                       : jobs_flag;
  if (!jobs_auto && !domains_auto && out.jobs > 1 && out.domains > 1 &&
      static_cast<std::int64_t>(out.jobs) * out.domains > hardware_threads) {
    error = "--jobs " + std::to_string(out.jobs) + " x --domains " +
            std::to_string(out.domains) + " = " + std::to_string(out.jobs * out.domains) +
            " CPU-bound threads oversubscribes this machine's " +
            std::to_string(hardware_threads) +
            " hardware thread(s); set one of them to 0 (auto) or lower the other";
    return false;
  }
  return true;
}

void CliArgs::reject_unknown() {
  for (const auto& key : unused_keys()) {
    errors_.push_back("--" + key + ": unknown flag");
  }
}

std::vector<std::string> CliArgs::unused_keys() const {
  std::vector<std::string> out;
  for (const auto& [key, used] : consumed_) {
    if (!used) out.push_back(key);
  }
  return out;
}

}  // namespace incast::core
