#include "core/json.h"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace incast::core {

namespace {

[[noreturn]] void type_error(const char* wanted) {
  throw std::runtime_error(std::string{"json: value is not "} + wanted);
}

void append_escaped(std::string& out, const std::string& s) {
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);  // UTF-8 bytes pass through untouched
        }
    }
  }
  out.push_back('"');
}

void dump_value(const Json& v, std::string& out);

void dump_double(double d, std::string& out) {
  if (!std::isfinite(d)) {
    // JSON has no Inf/NaN; the journal never stores them, but a defensive
    // null beats emitting an unparseable token.
    out += "null";
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", d);
  out += buf;
  // Ensure a double re-parses as a double, not an int.
  if (out.find_first_of(".eEn", out.size() - std::char_traits<char>::length(buf)) ==
      std::string::npos) {
    out += ".0";
  }
}

void dump_value(const Json& v, std::string& out) {
  if (v.is_null()) {
    out += "null";
  } else if (v.is_bool()) {
    out += v.as_bool() ? "true" : "false";
  } else if (v.is_int()) {
    out += std::to_string(v.as_int());
  } else if (v.is_double()) {
    dump_double(v.as_double(), out);
  } else if (v.is_string()) {
    append_escaped(out, v.as_string());
  } else if (v.is_array()) {
    out.push_back('[');
    bool first = true;
    for (const Json& e : v.as_array()) {
      if (!first) out.push_back(',');
      first = false;
      dump_value(e, out);
    }
    out.push_back(']');
  } else {
    out.push_back('{');
    bool first = true;
    for (const auto& [key, value] : v.as_object()) {
      if (!first) out.push_back(',');
      first = false;
      append_escaped(out, key);
      out.push_back(':');
      dump_value(value, out);
    }
    out.push_back('}');
  }
}

// Recursive-descent parser over a string_view.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_{text} {}

  Json parse_document() {
    Json v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after JSON value");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("json: " + what + " at offset " + std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string{"expected '"} + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  Json parse_value() {
    skip_ws();
    const char c = peek();
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return Json{parse_string()};
      case 't':
        if (consume_literal("true")) return Json{true};
        fail("bad literal");
      case 'f':
        if (consume_literal("false")) return Json{false};
        fail("bad literal");
      case 'n':
        if (consume_literal("null")) return Json{nullptr};
        fail("bad literal");
      default: return parse_number();
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned value = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            value <<= 4;
            if (h >= '0' && h <= '9') value |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') value |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') value |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad \\u escape");
          }
          // We only ever emit \u00XX for control bytes; encode the BMP code
          // point as UTF-8 so round-trips are lossless for what we write.
          if (value < 0x80) {
            out.push_back(static_cast<char>(value));
          } else if (value < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (value >> 6)));
            out.push_back(static_cast<char>(0x80 | (value & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (value >> 12)));
            out.push_back(static_cast<char>(0x80 | ((value >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (value & 0x3F)));
          }
          break;
        }
        default: fail("bad escape");
      }
    }
  }

  Json parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    bool is_double = false;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c >= '0' && c <= '9') {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        if (c == '.' || c == 'e' || c == 'E') is_double = true;
        ++pos_;
      } else {
        break;
      }
    }
    const std::string_view token = text_.substr(start, pos_ - start);
    if (token.empty() || token == "-") fail("bad number");
    if (!is_double) {
      std::int64_t value = 0;
      const auto [ptr, ec] =
          std::from_chars(token.data(), token.data() + token.size(), value);
      if (ec == std::errc{} && ptr == token.data() + token.size()) return Json{value};
      // Out-of-range integer (e.g. a uint64 seed someone wrote by hand):
      // fall through to double.
    }
    double value = 0.0;
    const auto [ptr, ec] = std::from_chars(token.data(), token.data() + token.size(), value);
    if (ec != std::errc{} || ptr != token.data() + token.size()) fail("bad number");
    return Json{value};
  }

  Json parse_array() {
    expect('[');
    Json::Array out;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return Json{std::move(out)};
    }
    for (;;) {
      out.push_back(parse_value());
      skip_ws();
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == ']') {
        ++pos_;
        return Json{std::move(out)};
      }
      fail("expected ',' or ']'");
    }
  }

  Json parse_object() {
    expect('{');
    Json::Object out;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return Json{std::move(out)};
    }
    for (;;) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      out[std::move(key)] = parse_value();
      skip_ws();
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == '}') {
        ++pos_;
        return Json{std::move(out)};
      }
      fail("expected ',' or '}'");
    }
  }

  std::string_view text_;
  std::size_t pos_{0};
};

}  // namespace

bool Json::as_bool() const {
  if (!is_bool()) type_error("a bool");
  return std::get<bool>(value_);
}

std::int64_t Json::as_int() const {
  if (is_int()) return std::get<std::int64_t>(value_);
  if (is_double()) {
    const double d = std::get<double>(value_);
    if (d == static_cast<double>(static_cast<std::int64_t>(d))) {
      return static_cast<std::int64_t>(d);
    }
  }
  type_error("an integer");
}

double Json::as_double() const {
  if (is_double()) return std::get<double>(value_);
  if (is_int()) return static_cast<double>(std::get<std::int64_t>(value_));
  type_error("a number");
}

const std::string& Json::as_string() const {
  if (!is_string()) type_error("a string");
  return std::get<std::string>(value_);
}

const Json::Array& Json::as_array() const {
  if (!is_array()) type_error("an array");
  return std::get<Array>(value_);
}

const Json::Object& Json::as_object() const {
  if (!is_object()) type_error("an object");
  return std::get<Object>(value_);
}

const Json& Json::at(const std::string& key) const {
  const Json* found = find(key);
  if (found == nullptr) throw std::runtime_error("json: missing key '" + key + "'");
  return *found;
}

const Json* Json::find(const std::string& key) const noexcept {
  if (!is_object()) return nullptr;
  const Object& obj = std::get<Object>(value_);
  const auto it = obj.find(key);
  return it == obj.end() ? nullptr : &it->second;
}

std::string Json::dump() const {
  std::string out;
  dump_value(*this, out);
  return out;
}

Json Json::parse(std::string_view text) { return Parser{text}.parse_document(); }

}  // namespace incast::core
