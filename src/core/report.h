// Report: plain-text table / CDF / time-series printers for the benches.
//
// Every bench binary regenerates one of the paper's tables or figures as
// text: tables print aligned columns; "figures" print the underlying series
// (CDF quantiles or time series) in a gnuplot-friendly layout.
#ifndef INCAST_CORE_REPORT_H_
#define INCAST_CORE_REPORT_H_

#include <cstdio>
#include <string>
#include <vector>

#include "analysis/cdf.h"
#include "sim/sweep.h"

namespace incast::core {

// A simple aligned-column table writer.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  // Adds a row; must have as many cells as there are headers.
  void add_row(std::vector<std::string> cells);

  // Renders with columns padded to the widest cell.
  [[nodiscard]] std::string render() const;

  void print(std::FILE* out = stdout) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

// Formats a double with `digits` decimal places.
[[nodiscard]] std::string fmt(double value, int digits = 2);

// Prints one labelled CDF as rows of (percentile, value).
void print_cdf(const std::string& title, const analysis::Cdf& cdf,
               const std::vector<double>& percentiles = {1,  5,  10, 25, 50,
                                                         75, 90, 95, 99, 100},
               std::FILE* out = stdout);

// Prints several CDFs side by side (one column per label) at the given
// percentiles — the layout used for the multi-service figures.
void print_cdf_comparison(const std::string& title, const std::vector<std::string>& labels,
                          const std::vector<analysis::Cdf>& cdfs,
                          const std::vector<double>& percentiles = {1,  5,  10, 25, 50,
                                                                    75, 90, 95, 99, 100},
                          std::FILE* out = stdout);

// Prints a banner for a figure/table reproduction.
void print_header(const std::string& experiment_id, const std::string& caption,
                  std::FILE* out = stdout);

// Prints a parallel sweep's timing: jobs, wall time, aggregate events/sec,
// work-stealing count, and per-task wall-time/events rows (collapsed to a
// min/mean/max summary above `max_task_rows` tasks). Wall times are the one
// deliberately non-deterministic output; everything they describe is not.
void print_sweep_stats(const sim::SweepRunner::RunStats& stats,
                       std::size_t max_task_rows = 32, std::FILE* out = stdout);

}  // namespace incast::core

#endif  // INCAST_CORE_REPORT_H_
