#include "core/report.h"

#include <algorithm>
#include <cassert>

namespace incast::core {

Table::Table(std::vector<std::string> headers) : headers_{std::move(headers)} {}

void Table::add_row(std::vector<std::string> cells) {
  assert(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::render() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  const auto render_row = [&](const std::vector<std::string>& row) {
    std::string line;
    for (std::size_t c = 0; c < row.size(); ++c) {
      line += row[c];
      line.append(widths[c] - row[c].size() + 2, ' ');
    }
    while (!line.empty() && line.back() == ' ') line.pop_back();
    line += '\n';
    return line;
  };

  std::string out = render_row(headers_);
  std::string rule;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    rule.append(widths[c], '-');
    rule.append(2, ' ');
  }
  while (!rule.empty() && rule.back() == ' ') rule.pop_back();
  out += rule + '\n';
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

void Table::print(std::FILE* out) const { std::fputs(render().c_str(), out); }

std::string fmt(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, value);
  return buf;
}

void print_cdf(const std::string& title, const analysis::Cdf& cdf,
               const std::vector<double>& percentiles, std::FILE* out) {
  std::fprintf(out, "%s (n=%zu)\n", title.c_str(), cdf.count());
  Table t{{"pct", "value"}};
  for (const double p : percentiles) {
    t.add_row({fmt(p, p == static_cast<int>(p) ? 0 : 1), fmt(cdf.percentile(p), 2)});
  }
  t.print(out);
}

void print_cdf_comparison(const std::string& title, const std::vector<std::string>& labels,
                          const std::vector<analysis::Cdf>& cdfs,
                          const std::vector<double>& percentiles, std::FILE* out) {
  assert(labels.size() == cdfs.size());
  std::fprintf(out, "%s\n", title.c_str());
  std::vector<std::string> headers{"pct"};
  headers.insert(headers.end(), labels.begin(), labels.end());
  Table t{headers};
  for (const double p : percentiles) {
    std::vector<std::string> row{fmt(p, p == static_cast<int>(p) ? 0 : 1)};
    for (const auto& cdf : cdfs) row.push_back(fmt(cdf.percentile(p), 2));
    t.add_row(std::move(row));
  }
  t.print(out);
  std::string counts = "n:";
  for (std::size_t i = 0; i < cdfs.size(); ++i) {
    counts += " " + labels[i] + "=" + std::to_string(cdfs[i].count());
  }
  std::fprintf(out, "%s\n", counts.c_str());
}

void print_header(const std::string& experiment_id, const std::string& caption,
                  std::FILE* out) {
  std::fprintf(out, "\n================================================================\n");
  std::fprintf(out, "%s — %s\n", experiment_id.c_str(), caption.c_str());
  std::fprintf(out, "================================================================\n");
}

void print_sweep_stats(const sim::SweepRunner::RunStats& stats, std::size_t max_task_rows,
                       std::FILE* out) {
  std::fprintf(out,
               "sweep: %zu task(s) on %d job(s) in %.2f ms — %.0f events/s, %llu steal(s)\n",
               stats.tasks.size(), stats.jobs, stats.wall_ms, stats.events_per_second(),
               static_cast<unsigned long long>(stats.steals));
  if (stats.slab_high_water > 0) {
    std::fprintf(out,
                 "event kernel: peak %llu pending, slab high-water %llu slot(s)\n",
                 static_cast<unsigned long long>(stats.peak_events_pending),
                 static_cast<unsigned long long>(stats.slab_high_water));
  }
  if (stats.peak_rss_bytes > 0) {
    std::fprintf(out, "memory: peak RSS %.1f MiB\n",
                 static_cast<double>(stats.peak_rss_bytes) / (1024.0 * 1024.0));
  }
  if (!stats.failures.empty() || stats.retries > 0 || stats.tasks_not_run > 0) {
    std::fprintf(out,
                 "quarantine: %zu task(s) failed, %llu retr%s, %llu task(s) not run\n",
                 stats.failures.size(),
                 static_cast<unsigned long long>(stats.retries),
                 stats.retries == 1 ? "y" : "ies",
                 static_cast<unsigned long long>(stats.tasks_not_run));
    for (const sim::TaskFailure& f : stats.failures) {
      std::fprintf(out, "  task %zu (seed %llu, %d attempt(s)) [%s]: %s\n", f.index,
                   static_cast<unsigned long long>(f.seed), f.attempts,
                   sim::to_string(f.category), f.message.c_str());
    }
  }
  std::uint64_t categorized = 0;
  for (const std::uint64_t n : stats.events_by_category) categorized += n;
  if (categorized > 0) {
    std::fprintf(out, "events by category:");
    for (std::size_t c = 0; c < sim::kNumEventCategories; ++c) {
      if (stats.events_by_category[c] == 0) continue;
      std::fprintf(out, " %s=%llu", sim::to_string(static_cast<sim::EventCategory>(c)),
                   static_cast<unsigned long long>(stats.events_by_category[c]));
    }
    std::fprintf(out, "\n");
  }
  if (stats.tasks.empty()) return;
  if (stats.tasks.size() <= max_task_rows) {
    Table t{{"task", "worker", "wall", "events"}};
    for (std::size_t i = 0; i < stats.tasks.size(); ++i) {
      const auto& task = stats.tasks[i];
      t.add_row({std::to_string(i), std::to_string(task.worker),
                 fmt(task.wall_ms, 2) + " ms",
                 std::to_string(task.events)});
    }
    t.print(out);
  } else {
    double min_ms = stats.tasks.front().wall_ms, max_ms = min_ms, sum_ms = 0.0;
    for (const auto& task : stats.tasks) {
      min_ms = std::min(min_ms, task.wall_ms);
      max_ms = std::max(max_ms, task.wall_ms);
      sum_ms += task.wall_ms;
    }
    std::fprintf(out, "per-task wall: min %.2f ms, mean %.2f ms, max %.2f ms\n", min_ms,
                 sum_ms / static_cast<double>(stats.tasks.size()), max_ms);
  }
}

}  // namespace incast::core
