#include "core/incast_experiment.h"

#include <algorithm>
#include <cstdio>
#include <memory>
#include <optional>
#include <string>

#include "core/experiment_obs.h"
#include "core/resilience_experiment.h"
#include "obs/flow_trace.h"
#include "obs/hub.h"

namespace incast::core {

namespace {

struct TcpCounters {
  std::int64_t timeouts{0};
  std::int64_t fast_retransmits{0};
  std::int64_t retransmitted_packets{0};
  std::int64_t data_packets_sent{0};
};

TcpCounters sum_counters(const std::vector<tcp::TcpSender*>& senders) {
  TcpCounters c;
  for (const tcp::TcpSender* s : senders) {
    c.timeouts += s->stats().timeouts;
    c.fast_retransmits += s->stats().fast_retransmits;
    c.retransmitted_packets += s->stats().retransmitted_packets;
    c.data_packets_sent += s->stats().data_packets_sent;
  }
  return c;
}

struct QueueCounters {
  std::int64_t drops{0};
  std::int64_t marks{0};
  std::int64_t enqueues{0};
};

QueueCounters queue_counters(const net::DropTailQueue& q) {
  return QueueCounters{q.stats().dropped_packets, q.stats().ecn_marked_packets,
                       q.stats().enqueued_packets};
}

}  // namespace

IncastExperimentResult run_incast_experiment(const IncastExperimentConfig& config) {
  sim::Simulator sim;
  // Attach the hub before any component is built: senders cache the hub
  // pointer in their constructors.
  if (config.hub != nullptr) sim.set_hub(config.hub);

#if INCAST_AUDIT_ENABLED
  // Run-hardening: attach the invariant auditor before any component is
  // built so every hook (dispatch, conservation, TCP bounds) is live from
  // the first event. Relaxed mode only observes — results stay identical.
  std::optional<sim::Auditor> auditor;
  if (config.audit_mode != sim::AuditMode::kOff) {
    sim::Auditor::Config acfg = config.audit;
    acfg.strict = config.audit_mode == sim::AuditMode::kStrict;
    auditor.emplace(acfg);
    sim.set_auditor(&*auditor);
  }
#endif
  // Tail autopsy: like the hub and the auditor, the tracer attaches before
  // topology/sender construction (both cache the pointer). The hub is only
  // a span side channel — breakdowns are identical with or without it.
  std::optional<obs::FlowTracer> flow_tracer;
  if (config.flow_trace) {
    flow_tracer.emplace(
        obs::FlowTracer::Config{config.seed, config.flow_trace_sample_every},
        config.hub);
    sim.set_flow_tracer(&*flow_tracer);
  }
  // Capacity hint: each flow keeps a few timers armed plus its share of
  // packets in flight; the constant floor covers telemetry tickers and the
  // bottleneck queue's worth of delivery events.
  sim.reserve_events(static_cast<std::size_t>(config.num_flows) * 8 + 2048);

  net::DumbbellConfig topo = config.topology;
  topo.num_senders = config.num_flows;
  topo.num_receivers = std::max(topo.num_receivers, 1);
  net::Dumbbell dumbbell{sim, topo};

  workload::CyclicIncastDriver::Config driver_cfg;
  driver_cfg.num_flows = config.num_flows;
  driver_cfg.num_bursts = config.num_bursts;
  driver_cfg.burst_duration = config.burst_duration;
  driver_cfg.inter_burst_gap = config.inter_burst_gap;
  driver_cfg.schedule = config.schedule;
  workload::CyclicIncastDriver driver{sim, dumbbell, config.tcp, driver_cfg, config.seed};

  // Fault layer: constructed only when something is enabled, so a disabled
  // profile is a strict no-op (no hooks installed, no RNG stream created,
  // identical event sequence).
  std::unique_ptr<fault::FaultInjector> injector;
  if (config.faults.enabled()) {
    // Salted so the fault stream is independent of the workload's jitter
    // stream even though both derive from config.seed.
    injector = std::make_unique<fault::FaultInjector>(
        sim, config.seed ^ 0x9E3779B97F4A7C15ULL);
    // The core link's two directions, addressed through the uniform
    // LinkDirectory names (the old core_link_tx/rx accessors are deprecated).
    fault::LinkFault& fwd =
        injector->install(dumbbell.link("tor_s->tor_r"), config.faults.forward);
    fault::LinkFault& rev =
        injector->install(dumbbell.link("tor_r->tor_s"), config.faults.reverse);
    for (const NamedLinkFault& nf : config.faults.links) {
      if (nf.config.any_enabled()) injector->install(dumbbell.link(nf.link), nf.config);
    }
    for (const fault::FlapWindow& w : config.faults.flaps) {
      injector->schedule_flap(fwd, w.down_at, w.duration);
      injector->schedule_flap(rev, w.down_at, w.duration);
    }
  }

  // Experiment-scope observability: label the bottleneck link for tracing
  // and expose its queue (plus fault totals) in the metrics registry.
  ExperimentObserver observer{INCAST_OBS_HUB(sim)};
  const std::string bottleneck_link = "tor_r->" + dumbbell.receiver(0).name();
  if (observer.active()) {
    dumbbell.link(bottleneck_link).set_trace_label(bottleneck_link);
    observer.watch_queue(bottleneck_link, dumbbell.bottleneck_queue());
    observer.watch_simulator(sim);
    if (injector) observer.watch_faults(*injector);
#if INCAST_AUDIT_ENABLED
    if (auditor) observer.watch_auditor(*auditor, sim);
#endif
  }

  telemetry::QueueMonitor::Config qcfg;
  qcfg.sample_every = config.queue_sample_every;
  qcfg.watermark_window = sim::Time::milliseconds(1);
  if (observer.active()) qcfg.trace_label = bottleneck_link;
  telemetry::QueueMonitor qmon{sim, dumbbell.bottleneck_queue(), qcfg};
  if (injector) {
    qmon.set_injected_drop_source(
        [inj = injector.get()] { return inj->total().injected_drops(); });
  }
  qmon.start(config.max_sim_time);

  auto senders = driver.senders();
  std::unique_ptr<telemetry::InflightSampler> inflight;
  if (config.inflight_sample_every > sim::Time::zero()) {
    inflight = std::make_unique<telemetry::InflightSampler>(sim, senders,
                                                            config.inflight_sample_every);
    inflight->start(config.max_sim_time);
  }

  // Counter snapshots frame the measured window: taken when the last
  // discarded burst completes (flows are idle between bursts, so the
  // boundary is clean), or at t=0 when nothing is discarded.
  TcpCounters tcp_at_start = sum_counters(senders);
  QueueCounters q_at_start = queue_counters(dumbbell.bottleneck_queue());
  double cwnd_mean_accum = 0.0;
  double cwnd_max_accum = 0.0;
  int measured_completions = 0;

  driver.set_on_burst_complete([&](int index) {
    if (index == config.discard_bursts - 1) {
      tcp_at_start = sum_counters(senders);
      q_at_start = queue_counters(dumbbell.bottleneck_queue());
    }
    if (index >= config.discard_bursts) {
      double total_mss = 0.0;
      double max_mss = 0.0;
      const auto mss = static_cast<double>(config.tcp.mss_bytes);
      for (const tcp::TcpSender* s : senders) {
        const double w = static_cast<double>(s->effective_cwnd()) / mss;
        total_mss += w;
        max_mss = std::max(max_mss, w);
      }
      cwnd_mean_accum += total_mss / static_cast<double>(senders.size());
      cwnd_max_accum += max_mss;
      ++measured_completions;
    }
    if (driver.finished()) sim.stop();
  });

  driver.start();
  sim.run_until(config.max_sim_time);

  // A switch with no route for a destination silently blackholes traffic —
  // always a topology bug, never a legitimate outcome. Fail loudly, naming
  // the switch and destination.
  net::check_no_unrouted(dumbbell.switches());

#if INCAST_AUDIT_ENABLED
  // Teardown ledger check: every injected byte must now be delivered,
  // dropped, or still buffered in a queue / on a wire somewhere.
  if (auditor) auditor->check_conservation(dumbbell.residual_buffered_bytes());
#endif

  IncastExperimentResult result;

  // Tail autopsy teardown: close the waterfall, split the drain bucket, and
  // hold every completed sampled flow to the conservation invariant.
  if (flow_tracer) {
    result.flow_breakdowns = flow_tracer->finalize(sim.now().ns());
    result.flow_trace_incomplete = flow_tracer->incomplete_flows();
#if INCAST_AUDIT_ENABLED
    if (auditor) {
      for (const obs::FlowBreakdown& f : result.flow_breakdowns) {
        auditor->check_flow_breakdown(f.flow, f.component_sum(), f.fct_ns);
      }
    }
#endif
    result.fct_rows = obs::tail_attribution(result.flow_breakdowns);
  }

  // INT overflow teardown check (see Port::int_hop_overflows): never fatal
  // — deep paths with ACK echo can legitimately exceed the stack — but
  // never silent either.
  for (const net::Switch* sw : dumbbell.switches()) {
    result.int_hop_overflows += sw->int_hop_overflows();
  }
  for (int i = 0; i < dumbbell.num_senders(); ++i) {
    result.int_hop_overflows += dumbbell.sender(i).int_hop_overflows();
  }
  for (int i = 0; i < dumbbell.num_receivers(); ++i) {
    result.int_hop_overflows += dumbbell.receiver(i).int_hop_overflows();
  }
  if (result.int_hop_overflows > 0) {
    std::fprintf(stderr,
                 "warning: %lld INT hop records overflowed the %d-entry stack "
                 "(net.int.hop_overflow); telemetry CCAs saw truncated paths\n",
                 static_cast<long long>(result.int_hop_overflows), net::kMaxIntHops);
  }
  if (observer.active()) {
    observer.hub()->metrics().register_counter(
        "net.int.hop_overflow", [v = result.int_hop_overflows] { return v; });
  }

#if INCAST_AUDIT_ENABLED
  if (auditor) result.audit_violations = auditor->total_violations();
#endif
  result.bursts = driver.bursts();
  result.queue_series = qmon.samples();
  result.queue_offset_step = config.queue_sample_every;
  result.congestion_drops_by_window = qmon.drops_at_window_end();
  result.injected_drops_by_window = qmon.injected_drops_at_window_end();
  result.events_processed = sim.events_processed();
  result.events_by_category = sim.events_by_category();
  result.peak_events_pending = sim.peak_events_pending();
  result.slab_high_water = sim.slab_high_water();

  if (injector) {
    const fault::FaultCounters faults = injector->total();
    result.injected_drops = faults.injected_drops();
    result.injected_flap_drops = faults.flap_drops;
    result.injected_corruptions = faults.corrupted;
    result.injected_duplicates = faults.duplicated;
    result.injected_reorders = faults.reordered;
    for (int i = 0; i < dumbbell.num_receivers(); ++i) {
      result.corrupt_nic_drops += dumbbell.receiver(i).corrupt_dropped_packets();
    }
    for (int i = 0; i < dumbbell.num_senders(); ++i) {
      result.corrupt_nic_drops += dumbbell.sender(i).corrupt_dropped_packets();
    }
  }

  const TcpCounters tcp_end = sum_counters(senders);
  const QueueCounters q_end = queue_counters(dumbbell.bottleneck_queue());
  result.timeouts = tcp_end.timeouts - tcp_at_start.timeouts;
  result.fast_retransmits = tcp_end.fast_retransmits - tcp_at_start.fast_retransmits;
  result.retransmitted_packets =
      tcp_end.retransmitted_packets - tcp_at_start.retransmitted_packets;
  result.data_packets_sent = tcp_end.data_packets_sent - tcp_at_start.data_packets_sent;
  result.queue_drops = q_end.drops - q_at_start.drops;
  result.queue_ecn_marks = q_end.marks - q_at_start.marks;
  result.queue_enqueues = q_end.enqueues - q_at_start.enqueues;

  if (measured_completions > 0) {
    result.end_of_burst_cwnd_mean_mss =
        cwnd_mean_accum / static_cast<double>(measured_completions);
    result.end_of_burst_cwnd_max_mss =
        cwnd_max_accum / static_cast<double>(measured_completions);
  }

  // Per-burst aggregates and the aligned queue-vs-offset series.
  const auto& bursts = result.bursts;
  const auto first_measured = static_cast<std::size_t>(config.discard_bursts);
  if (bursts.size() > first_measured) {
    sim::Time window = sim::Time::zero();
    double bct_total = 0.0;
    for (std::size_t b = first_measured; b < bursts.size(); ++b) {
      const sim::Time bct = bursts[b].completion_time();
      window = std::max(window, bct);
      bct_total += bct.ms();
      result.max_bct_ms = std::max(result.max_bct_ms, bct.ms());
    }
    result.avg_bct_ms = bct_total / static_cast<double>(bursts.size() - first_measured);

    const auto offsets =
        static_cast<std::size_t>(window.ns() / config.queue_sample_every.ns()) + 1;
    std::vector<double> sums(offsets, 0.0);
    std::vector<int> counts(offsets, 0);

    double in_burst_sum = 0.0;
    std::int64_t in_burst_samples = 0;
    std::int64_t peak = 0;

    // queue_series is time-ordered; walk it once per burst window.
    std::size_t cursor = 0;
    for (std::size_t b = first_measured; b < bursts.size(); ++b) {
      const sim::Time start = bursts[b].started;
      const sim::Time end_window = start + window;
      while (cursor < result.queue_series.size() &&
             result.queue_series[cursor].at < start) {
        ++cursor;
      }
      std::size_t i = cursor;
      while (i < result.queue_series.size() && result.queue_series[i].at < end_window) {
        const auto& s = result.queue_series[i];
        const auto offset =
            static_cast<std::size_t>((s.at - start).ns() / config.queue_sample_every.ns());
        if (offset < offsets) {
          sums[offset] += static_cast<double>(s.packets);
          ++counts[offset];
        }
        if (s.at <= bursts[b].completed) {
          in_burst_sum += static_cast<double>(s.packets);
          ++in_burst_samples;
          peak = std::max(peak, s.packets);
        }
        ++i;
      }
    }

    result.mean_queue_by_offset.resize(offsets, 0.0);
    for (std::size_t i = 0; i < offsets; ++i) {
      if (counts[i] > 0) result.mean_queue_by_offset[i] = sums[i] / counts[i];
    }
    if (in_burst_samples > 0) {
      result.avg_queue_packets = in_burst_sum / static_cast<double>(in_burst_samples);
    }
    result.peak_queue_packets = static_cast<double>(peak);
  }

  if (inflight) result.inflight = inflight->snapshots();

  // Close out the observed run while every metric source is still alive:
  // BCT histogram, mode classification, final registry snapshot.
  if (observer.active()) {
    std::vector<double> bct_ms;
    for (std::size_t b = first_measured; b < bursts.size(); ++b) {
      bct_ms.push_back(bursts[b].completion_time().ms());
    }
    observer.finish(sim.now().ns(), bct_ms, to_string(classify_mode(result)));
    // The overflow counter captured a snapshot value; drop it so a reused
    // hub (back-to-back runs) can register it afresh.
    observer.hub()->metrics().unregister_prefix("net.int.");
  }

  return result;
}

}  // namespace incast::core
