#include "core/predictor.h"

#include <algorithm>
#include <cmath>
#include <vector>

namespace incast::core {

void FlowCountPredictor::observe(int flows) {
  history_.push_back(flows);
  while (history_.size() > config_.window_bursts) {
    history_.pop_front();
  }
}

int FlowCountPredictor::predict_percentile(double p) const {
  if (!ready()) return 0;
  std::vector<int> sorted(history_.begin(), history_.end());
  std::sort(sorted.begin(), sorted.end());
  const double rank =
      std::clamp(p, 0.0, 100.0) / 100.0 * static_cast<double>(sorted.size() - 1);
  return sorted[static_cast<std::size_t>(std::lround(rank))];
}

double FlowCountPredictor::predict_mean() const {
  if (!ready()) return 0.0;
  double total = 0.0;
  for (const int v : history_) total += v;
  return total / static_cast<double>(history_.size());
}

std::int64_t suggest_cwnd_cap_bytes(int predicted_flows, std::int64_t bdp_bytes,
                                    std::int64_t ecn_threshold_bytes,
                                    std::int64_t mss_bytes) {
  if (predicted_flows <= 0) return mss_bytes;
  const std::int64_t budget = bdp_bytes + ecn_threshold_bytes;
  return std::max(budget / predicted_flows, mss_bytes);
}

}  // namespace incast::core
