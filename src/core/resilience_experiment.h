// ResilienceExperiment: the Section 4 cyclic incast, run under injected
// link faults.
//
// The paper's safe / degenerate / collapse modes are derived on ideal
// links. This harness asks what production actually faces: how much random
// loss, burst loss, corruption, or link flapping a given operating point
// tolerates before its behavior shifts mode. It runs one fault-free
// baseline, then one run per sweep point (drop rates, then flap durations),
// and reports goodput degradation relative to the baseline, recovery time
// after each flap, and the behavioral mode of every point.
#ifndef INCAST_CORE_RESILIENCE_EXPERIMENT_H_
#define INCAST_CORE_RESILIENCE_EXPERIMENT_H_

#include <functional>
#include <vector>

#include "core/incast_experiment.h"
#include "sim/sweep.h"

namespace incast::core {

// Behavioral classification of one run, mirroring the paper's Section 4
// modes but judged from observed recovery behavior (so a fault-induced
// timeout counts as collapse even when the queue never overflowed —
// that *is* the mode boundary shifting).
enum class DctcpMode {
  kSafe,        // no timeouts, queue oscillates below a standing level
  kDegenerate,  // no timeouts, but a standing queue marks nearly everything
  kCollapse,    // recovery is RTO-bound
};

[[nodiscard]] const char* to_string(DctcpMode m) noexcept;

// Classifies from the two observables that define the modes, so any
// experiment (dumbbell or fabric) can be judged by the same rule.
[[nodiscard]] DctcpMode classify_mode(std::int64_t timeouts, double marked_fraction) noexcept;

[[nodiscard]] DctcpMode classify_mode(const IncastExperimentResult& result);

struct ResiliencePoint {
  double drop_rate{0.0};
  sim::Time flap_duration{sim::Time::zero()};
  IncastExperimentResult result;
  // Baseline avg BCT / this point's avg BCT. Under the equal-demand cyclic
  // workload each burst delivers a fixed byte count, so inverse completion
  // time is goodput; 1.0 = no degradation.
  double goodput_rel{1.0};
  // For flap points: time from link restoration until the burst that was in
  // flight during the flap completes (zero when the flap hit an idle gap).
  double recovery_after_flap_ms{0.0};
  DctcpMode mode{DctcpMode::kSafe};
};

struct ResilienceConfig {
  // Base experiment (flows, CC, queue, schedule, seed ...). Its `faults`
  // field is ignored; each sweep point installs its own profile.
  IncastExperimentConfig base{};

  // Sweep axis 1: i.i.d. drop rates on the inter-ToR data direction. A 0.0
  // entry runs with the fault layer fully disabled and must reproduce the
  // baseline exactly.
  std::vector<double> drop_rates{};

  // Extra per-packet faults applied to every drop-rate point (corruption,
  // duplication, reordering, Gilbert-Elliott knobs). drop_rate inside this
  // template is overridden by the sweep value.
  fault::LinkFaultConfig fault_template{};

  // Sweep axis 2: flap durations; each runs as its own point with the link
  // blackholed (both directions) at flap_at for that duration.
  std::vector<sim::Time> flap_durations{};
  sim::Time flap_at{sim::Time::milliseconds(30)};

  // Worker threads for the sweep points (sim::SweepRunner). Every point is
  // an independent simulation sharing only the immutable base config, so
  // the report is identical for any value. 1 = inline; <= 0 =
  // hardware_concurrency. The baseline always runs first (points need it
  // for goodput normalization) and is never part of the sweep.
  int jobs{1};

  // Fault-isolation policy for the sweep points (sim::SweepRunner::Policy);
  // the baseline ignores it — a baseline failure always aborts, because
  // every point's goodput is normalized against it. seed_of defaults to the
  // shared base seed (points deliberately reuse it; see run()).
  sim::SweepRunner::Policy sweep{};

  // Checkpoint/resume hooks (core::TaskJournal wires these from the CLI).
  // `resume` is consulted before a point runs: return true and fill the
  // point to skip its simulation. `on_result` fires after every freshly-run
  // point, from the worker thread that ran it.
  std::function<bool(std::size_t index, ResiliencePoint& out)> resume{};
  std::function<void(std::size_t index, std::uint64_t seed, const ResiliencePoint&)>
      on_result{};
};

struct ResilienceReport {
  IncastExperimentResult baseline;
  DctcpMode baseline_mode{DctcpMode::kSafe};
  std::vector<ResiliencePoint> points;
  // Wall-time/events stats of the sweep over `points` (baseline excluded).
  sim::SweepRunner::RunStats sweep;
};

// Runs baseline + every sweep point. Deterministic: the same config (seed
// included) produces an identical report.
[[nodiscard]] ResilienceReport run_resilience_experiment(const ResilienceConfig& config);

}  // namespace incast::core

#endif  // INCAST_CORE_RESILIENCE_EXPERIMENT_H_
