#include "core/fabric_experiment.h"

#include <algorithm>
#include <cstdio>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>

#include "core/experiment_obs.h"
#include "fault/fault_injector.h"
#include "obs/flow_trace.h"
#include "obs/hub.h"
#include "telemetry/port_sampler.h"

namespace incast::core {

double VantageTrace::peak_utilization() const {
  const std::int64_t per_bin = line_rate.bytes_in(sim::Time::milliseconds(1));
  if (per_bin <= 0) return 0.0;
  double peak = 0.0;
  for (const auto& b : bins) {
    peak = std::max(peak, static_cast<double>(b.bytes) / static_cast<double>(per_bin));
  }
  return peak;
}

std::int64_t VantageTrace::peak_queue_packets() const {
  std::int64_t peak = 0;
  for (const std::int64_t w : queue_watermarks) peak = std::max(peak, w);
  return peak;
}

namespace {

struct TcpCounters {
  std::int64_t timeouts{0};
  std::int64_t fast_retransmits{0};
  std::int64_t retransmitted_packets{0};
  std::int64_t data_packets_sent{0};
};

TcpCounters sum_counters(const std::vector<tcp::TcpSender*>& senders) {
  TcpCounters c;
  for (const tcp::TcpSender* s : senders) {
    c.timeouts += s->stats().timeouts;
    c.fast_retransmits += s->stats().fast_retransmits;
    c.retransmitted_packets += s->stats().retransmitted_packets;
    c.data_packets_sent += s->stats().data_packets_sent;
  }
  return c;
}

struct QueueCounters {
  std::int64_t drops{0};
  std::int64_t marks{0};
  std::int64_t enqueues{0};
};

QueueCounters queue_counters(const net::DropTailQueue& q) {
  return QueueCounters{q.stats().dropped_packets, q.stats().ecn_marked_packets,
                       q.stats().enqueued_packets};
}

// Chooses the sender hosts: the receiver sits in slot 0 of the last leaf;
// senders fill the other leaves (cross-rack) or the first leaf alone
// (single-rack, the dumbbell's shape).
std::vector<int> place_senders(const fabric::FatTreeConfig& fab, int num_flows,
                               FabricIncastExperimentConfig::Placement placement,
                               int receiver_leaf) {
  const int num_leaves = fab.num_pods * fab.leaves_per_pod;
  if (num_leaves < 2) {
    throw std::invalid_argument(
        "fabric incast needs at least 2 leaves (senders and receiver on "
        "different racks)");
  }
  std::vector<int> senders;
  senders.reserve(static_cast<std::size_t>(num_flows));
  if (placement == FabricIncastExperimentConfig::Placement::kSingleRack) {
    if (num_flows > fab.hosts_per_leaf) {
      throw std::invalid_argument("single-rack placement needs hosts_per_leaf >= flows (" +
                                  std::to_string(num_flows) + " flows, " +
                                  std::to_string(fab.hosts_per_leaf) + " hosts/leaf)");
    }
    for (int i = 0; i < num_flows; ++i) senders.push_back(i);  // leaf 0, slots 0..n
    return senders;
  }
  std::vector<int> other_leaves;
  for (int gl = 0; gl < num_leaves; ++gl) {
    if (gl != receiver_leaf) other_leaves.push_back(gl);
  }
  const auto capacity =
      static_cast<std::int64_t>(other_leaves.size()) * fab.hosts_per_leaf;
  if (num_flows > capacity) {
    throw std::invalid_argument("fabric seats only " + std::to_string(capacity) +
                                " cross-rack senders, " + std::to_string(num_flows) +
                                " requested");
  }
  for (int i = 0; i < num_flows; ++i) {
    const int gl = other_leaves[static_cast<std::size_t>(i) % other_leaves.size()];
    const int slot = i / static_cast<int>(other_leaves.size());
    senders.push_back(gl * fab.hosts_per_leaf + slot);
  }
  return senders;
}

}  // namespace

FabricIncastExperimentResult run_fabric_incast_experiment(
    const FabricIncastExperimentConfig& config) {
  sim::Simulator sim;
  // Attach the hub before any component is built: senders cache the hub
  // pointer in their constructors.
  if (config.hub != nullptr) sim.set_hub(config.hub);
#if INCAST_AUDIT_ENABLED
  std::optional<sim::Auditor> auditor;
  if (config.audit_mode != sim::AuditMode::kOff) {
    sim::Auditor::Config acfg = config.audit;
    acfg.strict = config.audit_mode == sim::AuditMode::kStrict;
    auditor.emplace(acfg);
    sim.set_auditor(&*auditor);
  }
#endif
  // Tail autopsy: attached before topology/sender construction, like the
  // hub and the auditor (all three are cached pointers).
  std::optional<obs::FlowTracer> flow_tracer;
  if (config.flow_trace) {
    flow_tracer.emplace(
        obs::FlowTracer::Config{config.seed, config.flow_trace_sample_every},
        config.hub);
    sim.set_flow_tracer(&*flow_tracer);
  }
  // Capacity hint: per-flow timers plus in-flight packets across the
  // fabric's extra hops (each hop adds serialization + propagation events).
  sim.reserve_events(static_cast<std::size_t>(config.num_flows) * 16 + 4096);
  fabric::FatTree fabric{sim, config.fabric};

  const int receiver_leaf = fabric.num_leaves() - 1;
  const int receiver_host =
      receiver_leaf * config.fabric.hosts_per_leaf;  // slot 0 of the last leaf
  const std::vector<int> sender_hosts =
      place_senders(config.fabric, config.num_flows, config.placement, receiver_leaf);

  workload::CyclicIncastDriver::Endpoints endpoints;
  endpoints.senders.reserve(sender_hosts.size());
  for (const int h : sender_hosts) endpoints.senders.push_back(&fabric.host(h));
  endpoints.receiver = &fabric.host(receiver_host);
  endpoints.bottleneck = config.fabric.host_link;

  workload::CyclicIncastDriver::Config driver_cfg;
  driver_cfg.num_flows = config.num_flows;
  driver_cfg.num_bursts = config.num_bursts;
  driver_cfg.burst_duration = config.burst_duration;
  driver_cfg.inter_burst_gap = config.inter_burst_gap;
  driver_cfg.schedule = config.schedule;
  workload::CyclicIncastDriver driver{sim, endpoints, config.tcp, driver_cfg, config.seed};

  // Fault layer, only when some named link fault is enabled (same salt as
  // the dumbbell experiment, so seeds stay comparable).
  std::unique_ptr<fault::FaultInjector> injector;
  const bool any_fault =
      std::any_of(config.link_faults.begin(), config.link_faults.end(),
                  [](const NamedLinkFault& f) { return f.config.any_enabled(); });
  if (any_fault) {
    injector = std::make_unique<fault::FaultInjector>(
        sim, config.seed ^ 0x9E3779B97F4A7C15ULL);
    for (const NamedLinkFault& nf : config.link_faults) {
      if (nf.config.any_enabled()) injector->install(fabric.link(nf.link), nf.config);
    }
  }

  // Telemetry. Vantage 1: the receiver host NIC (the paper's Millisampler).
  telemetry::Millisampler::Config ms_cfg;
  ms_cfg.bin_duration = config.telemetry_bin;
  ms_cfg.line_rate = config.fabric.host_link;
  telemetry::Millisampler host_sampler{ms_cfg};
  fabric.host(receiver_host).add_ingress_tap(&host_sampler);

  // Vantage 2: every leaf's uplink ports. Vantage 3: the spine-tier egress
  // ports descending toward the receiver leaf.
  // Each in-network vantage pairs a byte-count sampler with a watermark
  // monitor on the same egress queue — the hop's 1 ms peak depth.
  telemetry::QueueMonitor::Config wm_cfg;
  wm_cfg.sample_every = sim::Time::zero();
  wm_cfg.watermark_window = config.telemetry_bin;
  std::vector<std::unique_ptr<telemetry::PortSampler>> leaf_samplers;
  std::vector<std::unique_ptr<telemetry::QueueMonitor>> hop_monitors;
  for (int gl = 0; gl < fabric.num_leaves(); ++gl) {
    const auto names = fabric.leaf_uplink_names(gl);
    const auto ports = fabric.leaf_uplink_ports(gl);
    for (std::size_t i = 0; i < names.size(); ++i) {
      auto sampler = std::make_unique<telemetry::PortSampler>(names[i], ms_cfg);
      sampler->attach(*ports[i]);
      leaf_samplers.push_back(std::move(sampler));
      hop_monitors.push_back(
          std::make_unique<telemetry::QueueMonitor>(sim, ports[i]->queue(), wm_cfg));
    }
  }
  std::vector<std::unique_ptr<telemetry::PortSampler>> spine_samplers;
  for (const std::string& name : fabric.spine_egress_names_toward(receiver_leaf)) {
    auto sampler = std::make_unique<telemetry::PortSampler>(name, ms_cfg);
    net::Port& port = fabric.link(name);
    sampler->attach(port);
    spine_samplers.push_back(std::move(sampler));
    hop_monitors.push_back(
        std::make_unique<telemetry::QueueMonitor>(sim, port.queue(), wm_cfg));
  }
  for (auto& m : hop_monitors) m->start(config.max_sim_time);

  // Experiment-scope observability on the bottleneck hop (the receiver's
  // leaf downlink): trace label, queue metrics, fault totals.
  ExperimentObserver observer{INCAST_OBS_HUB(sim)};
  const std::string bottleneck_link = fabric.downlink_name(receiver_host);
  if (observer.active()) {
    fabric.link(bottleneck_link).set_trace_label(bottleneck_link);
    observer.watch_queue(bottleneck_link, fabric.downlink_queue(receiver_host));
    observer.watch_simulator(sim);
    if (injector) observer.watch_faults(*injector);
#if INCAST_AUDIT_ENABLED
    if (auditor) observer.watch_auditor(*auditor, sim);
#endif
  }

  telemetry::QueueMonitor::Config qcfg;
  qcfg.sample_every = config.queue_sample_every;
  qcfg.watermark_window = sim::Time::milliseconds(1);
  if (observer.active()) qcfg.trace_label = bottleneck_link;
  telemetry::QueueMonitor qmon{sim, fabric.downlink_queue(receiver_host), qcfg};
  qmon.start(config.max_sim_time);

  auto senders = driver.senders();
  TcpCounters tcp_at_start = sum_counters(senders);
  QueueCounters q_at_start = queue_counters(fabric.downlink_queue(receiver_host));

  driver.set_on_burst_complete([&](int index) {
    if (index == config.discard_bursts - 1) {
      tcp_at_start = sum_counters(senders);
      q_at_start = queue_counters(fabric.downlink_queue(receiver_host));
    }
    if (driver.finished()) sim.stop();
  });

  driver.start();
  sim.run_until(config.max_sim_time);

  // Loud teardown: a blackholed packet is a routing bug, not noise.
  net::check_no_unrouted(fabric.switches());
#if INCAST_AUDIT_ENABLED
  if (auditor) auditor->check_conservation(fabric.residual_buffered_bytes());
#endif

  const sim::Time trace_end = sim.now();
  host_sampler.finalize(trace_end);
  for (auto& s : leaf_samplers) s->finalize(trace_end);
  for (auto& s : spine_samplers) s->finalize(trace_end);

  FabricIncastExperimentResult result;

  // Tail autopsy teardown: finalize, conservation-check every breakdown,
  // derive the percentile attribution rows.
  if (flow_tracer) {
    result.flow_breakdowns = flow_tracer->finalize(sim.now().ns());
    result.flow_trace_incomplete = flow_tracer->incomplete_flows();
#if INCAST_AUDIT_ENABLED
    if (auditor) {
      for (const obs::FlowBreakdown& f : result.flow_breakdowns) {
        auditor->check_flow_breakdown(f.flow, f.component_sum(), f.fct_ns);
      }
    }
#endif
    result.fct_rows = obs::tail_attribution(result.flow_breakdowns);
  }

  // INT overflow teardown check — warn, never abort (ACK echo on deep
  // paths can exceed the stack legitimately).
  for (const net::Switch* sw : fabric.switches()) {
    result.int_hop_overflows += sw->int_hop_overflows();
  }
  for (int h = 0; h < fabric.num_hosts(); ++h) {
    result.int_hop_overflows += fabric.host(h).int_hop_overflows();
  }
  if (result.int_hop_overflows > 0) {
    std::fprintf(stderr,
                 "warning: %lld INT hop records overflowed the %d-entry stack "
                 "(net.int.hop_overflow); telemetry CCAs saw truncated paths\n",
                 static_cast<long long>(result.int_hop_overflows), net::kMaxIntHops);
  }

  result.bursts = driver.bursts();
  result.sender_hosts = sender_hosts;
  result.receiver_host = receiver_host;
  result.queue_series = qmon.samples();
  result.events_processed = sim.events_processed();
  result.events_by_category = sim.events_by_category();
  result.peak_events_pending = sim.peak_events_pending();
  result.slab_high_water = sim.slab_high_water();
#if INCAST_AUDIT_ENABLED
  if (auditor) result.audit_violations = auditor->total_violations();
#endif
  if (injector) result.injected_drops = injector->total().injected_drops();

  const TcpCounters tcp_end = sum_counters(senders);
  const QueueCounters q_end = queue_counters(fabric.downlink_queue(receiver_host));
  result.timeouts = tcp_end.timeouts - tcp_at_start.timeouts;
  result.fast_retransmits = tcp_end.fast_retransmits - tcp_at_start.fast_retransmits;
  result.retransmitted_packets =
      tcp_end.retransmitted_packets - tcp_at_start.retransmitted_packets;
  result.data_packets_sent = tcp_end.data_packets_sent - tcp_at_start.data_packets_sent;
  result.queue_drops = q_end.drops - q_at_start.drops;
  result.queue_ecn_marks = q_end.marks - q_at_start.marks;
  result.queue_enqueues = q_end.enqueues - q_at_start.enqueues;
  result.mode = classify_mode(result.timeouts, result.marked_fraction());

  // Per-burst aggregates and in-burst queue statistics over measured bursts.
  const auto first_measured = static_cast<std::size_t>(config.discard_bursts);
  if (result.bursts.size() > first_measured) {
    double bct_total = 0.0;
    for (std::size_t b = first_measured; b < result.bursts.size(); ++b) {
      const double bct = result.bursts[b].completion_time().ms();
      bct_total += bct;
      result.max_bct_ms = std::max(result.max_bct_ms, bct);
    }
    result.avg_bct_ms =
        bct_total / static_cast<double>(result.bursts.size() - first_measured);

    double in_burst_sum = 0.0;
    std::int64_t in_burst_samples = 0;
    std::int64_t peak = 0;
    std::size_t cursor = 0;
    for (std::size_t b = first_measured; b < result.bursts.size(); ++b) {
      const sim::Time start = result.bursts[b].started;
      const sim::Time end = result.bursts[b].completed;
      while (cursor < result.queue_series.size() &&
             result.queue_series[cursor].at < start) {
        ++cursor;
      }
      std::size_t i = cursor;
      while (i < result.queue_series.size() && result.queue_series[i].at <= end) {
        in_burst_sum += static_cast<double>(result.queue_series[i].packets);
        ++in_burst_samples;
        peak = std::max(peak, result.queue_series[i].packets);
        ++i;
      }
    }
    if (in_burst_samples > 0) {
      result.avg_queue_packets = in_burst_sum / static_cast<double>(in_burst_samples);
    }
    result.peak_queue_packets = static_cast<double>(peak);
  }

  // Vantage traces: host, then leaf uplinks, then spine tier. The host
  // vantage's queue is the receiver downlink — the bottleneck monitor.
  result.vantages.push_back(VantageTrace{"host", fabric.host(receiver_host).name(),
                                         config.fabric.host_link, host_sampler.bins(),
                                         qmon.watermarks()});
  std::size_t hop = 0;
  for (const auto& s : leaf_samplers) {
    result.vantages.push_back(VantageTrace{"leaf", s->name(),
                                           s->sampler().config().line_rate, s->bins(),
                                           hop_monitors[hop++]->watermarks()});
  }
  for (const auto& s : spine_samplers) {
    result.vantages.push_back(VantageTrace{"spine", s->name(),
                                           s->sampler().config().line_rate, s->bins(),
                                           hop_monitors[hop++]->watermarks()});
  }

  // ECMP spread and path stability.
  for (int gl = 0; gl < fabric.num_leaves(); ++gl) {
    const auto by_port = fabric.leaf(gl).ecmp_flows_by_port();
    FabricIncastExperimentResult::LeafEcmpSpread spread;
    spread.global_leaf = gl;
    for (const std::size_t idx : fabric.leaf_uplink_port_indices(gl)) {
      spread.flows_by_uplink.push_back(by_port.at(idx));
    }
    result.leaf_ecmp.push_back(std::move(spread));
  }
  for (net::Switch* sw : fabric.switches()) {
    result.ecmp_path_changes += sw->ecmp_path_changes();
  }

  // Close out the observed run while every metric source is still alive.
  if (observer.active()) {
    observer.hub()->metrics().register_counter(
        "net.int.hop_overflow", [v = result.int_hop_overflows] { return v; });
    std::vector<double> bct_ms;
    for (std::size_t b = first_measured; b < result.bursts.size(); ++b) {
      bct_ms.push_back(result.bursts[b].completion_time().ms());
    }
    observer.finish(sim.now().ns(), bct_ms, to_string(result.mode));
    observer.hub()->metrics().unregister_prefix("net.int.");
  }

  return result;
}

FabricIncastExperimentConfig dumbbell_equivalent_config(
    const IncastExperimentConfig& base) {
  FabricIncastExperimentConfig cfg;
  cfg.num_flows = base.num_flows;
  cfg.placement = FabricIncastExperimentConfig::Placement::kSingleRack;
  cfg.fabric.num_pods = 1;
  cfg.fabric.leaves_per_pod = 2;
  cfg.fabric.hosts_per_leaf = base.num_flows;
  cfg.fabric.aggs_per_pod = 0;
  cfg.fabric.num_spines = 1;
  cfg.fabric.host_link = base.topology.host_link;
  cfg.fabric.leaf_uplink = base.topology.core_link;
  cfg.fabric.link_delay = base.topology.link_delay;
  cfg.fabric.switch_queue = base.topology.switch_queue;
  cfg.fabric.host_queue = base.topology.host_queue;
  cfg.fabric.shared_buffer = base.topology.shared_buffer;
  cfg.tcp = base.tcp;
  cfg.burst_duration = base.burst_duration;
  cfg.num_bursts = base.num_bursts;
  cfg.discard_bursts = base.discard_bursts;
  cfg.inter_burst_gap = base.inter_burst_gap;
  cfg.schedule = base.schedule;
  cfg.queue_sample_every = base.queue_sample_every;
  cfg.max_sim_time = base.max_sim_time;
  cfg.seed = base.seed;
  return cfg;
}

}  // namespace incast::core
