// FabricIncastExperiment: the cyclic incast run across a multi-tier Clos
// fabric instead of the Section 4 dumbbell.
//
// Senders are placed across racks (round-robin over every leaf except the
// receiver's) or on a single rack (the dumbbell's shape), and the same
// cyclic burst workload drives them toward one receiver. Beyond the
// dumbbell's receiver-NIC view, the run samples Millisampler-style 1 ms
// byte counters at three vantage points — the receiver host NIC, every
// leaf's uplinks, and the spine ports descending toward the receiver — so
// burst visibility can be compared across tiers, and it reports each leaf's
// ECMP flow spread so uplink collisions are measurable.
//
// With 1 pod, 2 leaves, 1 spine and the leaf uplink at the dumbbell's core
// rate (see dumbbell_equivalent_config), the fabric degenerates to the
// dumbbell and must reproduce its safe/degenerate/collapse mode
// classification — the equivalence tests pin that down.
#ifndef INCAST_CORE_FABRIC_EXPERIMENT_H_
#define INCAST_CORE_FABRIC_EXPERIMENT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/incast_experiment.h"
#include "core/resilience_experiment.h"
#include "fabric/fat_tree.h"
#include "tcp/tcp_config.h"
#include "telemetry/millisampler.h"
#include "telemetry/queue_monitor.h"
#include "workload/cyclic_incast.h"

namespace incast::core {

struct FabricIncastExperimentConfig {
  int num_flows{96};

  // kCrossRack spreads senders round-robin over every leaf except the
  // receiver's; kSingleRack packs them onto one leaf (the dumbbell shape).
  enum class Placement { kCrossRack, kSingleRack };
  Placement placement{Placement::kCrossRack};

  fabric::FatTreeConfig fabric{};
  tcp::TcpConfig tcp{};

  sim::Time burst_duration{sim::Time::milliseconds(15)};
  int num_bursts{4};
  int discard_bursts{1};
  sim::Time inter_burst_gap{sim::Time::milliseconds(10)};
  workload::BurstSchedule schedule{workload::BurstSchedule::kAfterCompletion};

  // Bottleneck (receiver downlink) queue time-series sampling period.
  sim::Time queue_sample_every{sim::Time::microseconds(10)};
  // Bin width for every Millisampler-style vantage trace.
  sim::Time telemetry_bin{sim::Time::milliseconds(1)};
  sim::Time max_sim_time{sim::Time::seconds(30)};

  // Faults on arbitrary named fabric links (LinkDirectory names).
  std::vector<NamedLinkFault> link_faults{};

  // Borrowed observability hub; nullptr = unobserved run (see
  // IncastExperimentConfig::hub).
  obs::Hub* hub{nullptr};

  // Run-hardening (see IncastExperimentConfig::audit_mode).
  sim::AuditMode audit_mode{sim::AuditMode::kRelaxed};
  sim::Auditor::Config audit{};

  // Tail autopsy (see IncastExperimentConfig::flow_trace).
  bool flow_trace{false};
  std::uint64_t flow_trace_sample_every{1};

  std::uint64_t seed{1};
};

// One Millisampler-format trace collected at a vantage point.
struct VantageTrace {
  std::string tier;  // "host" | "leaf" | "agg-spine" (per fabric tier)
  std::string name;  // host node name or LinkDirectory link name
  sim::Bandwidth line_rate{};
  std::vector<telemetry::Millisampler::Bin> bins;
  // Windowed (1 ms) high watermarks of the egress queue feeding this
  // vantage — production-style per-hop queue depth. For the host vantage
  // this is the receiver's leaf downlink (the bottleneck) queue.
  std::vector<std::int64_t> queue_watermarks;

  // Peak single-bin utilization — the burst's visibility at this vantage.
  [[nodiscard]] double peak_utilization() const;
  // Peak queue depth over the whole run at this hop.
  [[nodiscard]] std::int64_t peak_queue_packets() const;
};

struct FabricIncastExperimentResult {
  std::vector<workload::CyclicIncastDriver::BurstRecord> bursts;

  // Placement actually used (global host indices).
  std::vector<int> sender_hosts;
  int receiver_host{0};

  // Aggregates over measured (non-discarded) bursts.
  double avg_bct_ms{0.0};
  double max_bct_ms{0.0};
  double avg_queue_packets{0.0};
  double peak_queue_packets{0.0};

  // Bottleneck-queue and TCP counters, measured-window deltas.
  std::int64_t queue_drops{0};
  std::int64_t queue_ecn_marks{0};
  std::int64_t queue_enqueues{0};
  std::int64_t timeouts{0};
  std::int64_t fast_retransmits{0};
  std::int64_t retransmitted_packets{0};
  std::int64_t data_packets_sent{0};

  // Whole-run fault counters (zero when no fault is configured).
  std::int64_t injected_drops{0};

  DctcpMode mode{DctcpMode::kSafe};

  // Bottleneck (receiver downlink) queue time series.
  std::vector<telemetry::QueueMonitor::Sample> queue_series;

  // Host, leaf and spine vantage traces, in that tier order.
  std::vector<VantageTrace> vantages;

  // ECMP spread: distinct flow keys per uplink of each leaf (uplink order =
  // ECMP member order), plus the fabric-wide path-change count (always zero
  // for a fixed seed — the stability invariant).
  struct LeafEcmpSpread {
    int global_leaf{0};
    std::vector<std::int64_t> flows_by_uplink;
  };
  std::vector<LeafEcmpSpread> leaf_ecmp;
  std::int64_t ecmp_path_changes{0};

  std::uint64_t events_processed{0};
  sim::EventCategoryCounts events_by_category{};
  // Event-kernel footprint (sim/event_queue.h): peak pending heap depth and
  // callback-slab high-water mark.
  std::uint64_t peak_events_pending{0};
  std::uint64_t slab_high_water{0};

  // Auditor invariant violations observed during the run (0 when auditing
  // is off or compiled out).
  std::uint64_t audit_violations{0};

  // Tail autopsy (see IncastExperimentResult): per-flow breakdowns,
  // percentile attribution rows, flows cut mid-period by max_sim_time.
  std::vector<obs::FlowBreakdown> flow_breakdowns;
  std::vector<obs::TailAttributionRow> fct_rows;
  std::uint64_t flow_trace_incomplete{0};

  // INT hop-stamp overflows across all fabric ports (see
  // IncastExperimentResult::int_hop_overflows).
  std::int64_t int_hop_overflows{0};

  [[nodiscard]] double marked_fraction() const noexcept {
    return queue_enqueues > 0
               ? static_cast<double>(queue_ecn_marks) / static_cast<double>(queue_enqueues)
               : 0.0;
  }
};

// Runs one fabric experiment to completion (or max_sim_time). Throws
// std::invalid_argument if the fabric cannot seat num_flows senders plus
// the receiver under the requested placement, and std::runtime_error if any
// switch blackholed a packet (a routing bug).
[[nodiscard]] FabricIncastExperimentResult run_fabric_incast_experiment(
    const FabricIncastExperimentConfig& config);

// The fat-tree that degenerates to the Section 4 dumbbell: 1 pod, 2 leaves
// (senders on one, receiver on the other), 1 spine, no aggs, leaf uplinks
// at the dumbbell's core rate. Copies the workload, TCP and queue settings
// from `base` so mode classification is directly comparable.
[[nodiscard]] FabricIncastExperimentConfig dumbbell_equivalent_config(
    const IncastExperimentConfig& base);

}  // namespace incast::core

#endif  // INCAST_CORE_FABRIC_EXPERIMENT_H_
