// core::chaos — seeded random-config fuzzing under the strict auditor.
//
// Generates K pseudo-random (but fully deterministic in the seed) incast
// configurations spanning the CLI's knob space — congestion control, flow
// counts, queue/ECN geometry, burst shape, fault injection, fleet service
// traces — and runs each under AuditMode::kStrict with an event budget. Any
// invariant violation (conservation, negative depth, time going backwards,
// cwnd/RTO bounds, livelock) or budget blowout surfaces as a quarantined
// TaskFailure instead of a silent wrong number. CI runs a fixed seed every
// push; the knob space is the fuzz corpus and the auditor is the oracle.
#ifndef INCAST_CORE_CHAOS_H_
#define INCAST_CORE_CHAOS_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/sweep.h"

namespace incast::core {

struct ChaosRunResult {
  std::string description;  // one line: kind + the knobs that define the run
  std::uint64_t seed{0};
  std::uint64_t events_processed{0};
};

struct ChaosConfig {
  std::uint64_t seed{7};
  int num_configs{25};
  // Workers for the sweep (each generated config is an independent
  // simulation). Same determinism contract as every other sweep.
  int jobs{1};
  // Strict-auditor budgets per generated run: a pathological config must
  // fail fast (BudgetExceeded -> quarantined), not hang CI.
  std::uint64_t max_events_per_run{20'000'000};
  double max_wall_ms_per_run{0.0};
  std::atomic<bool>* cancel{nullptr};

  // Checkpoint/resume hooks, same shape as the other experiments.
  std::function<bool(std::size_t index, ChaosRunResult& out)> resume{};
  std::function<void(std::size_t index, std::uint64_t seed, const ChaosRunResult&)>
      on_result{};
  std::function<void(const sim::TaskFailure&)> on_failure{};
};

struct ChaosReport {
  std::vector<ChaosRunResult> runs;  // failed/skipped runs keep an empty description
  sim::SweepRunner::RunStats sweep;
};

// The per-index derived seed (exposed so the CLI can journal it and tests
// can pin expectations): derive_task_seed(config.seed, index).
[[nodiscard]] std::uint64_t chaos_run_seed(const ChaosConfig& config,
                                           std::size_t index) noexcept;

// Runs every generated config under quarantine (never fail-fast: the whole
// point is a full accounting of which configs broke which invariant).
[[nodiscard]] ChaosReport run_chaos(const ChaosConfig& config);

}  // namespace incast::core

#endif  // INCAST_CORE_CHAOS_H_
