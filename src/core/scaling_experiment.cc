#include "core/scaling_experiment.h"

#include <algorithm>
#include <cstdio>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>

#include "core/experiment_obs.h"
#include "net/domain_bridge.h"
#include "net/packet.h"
#include "obs/flow_trace.h"
#include "obs/hub.h"
#include "obs/metrics.h"
#include "sim/parallel_simulator.h"
#include "sim/stable_arena.h"
#include "tcp/tcp_connection.h"

namespace incast::core {

namespace {

// Wire bytes one flow puts on the receiver's downlink: payload plus one
// 40-byte header per MSS-sized segment (the last segment's header included).
[[nodiscard]] std::int64_t wire_bytes_per_flow(std::int64_t payload,
                                               std::int64_t mss) noexcept {
  const std::int64_t segments = (payload + mss - 1) / mss;
  return payload + segments * net::kHeaderBytes;
}

// One incast degree on the conservative parallel engine (config.domains >=
// 1; see docs/PARALLELISM.md). The topology, flows, routing, and seeding
// are identical to the legacy path — what changes is execution:
//
//   * each domain runs its own Simulator in keyed (decomposition-invariant)
//     event order, so results are byte-identical at any domain count;
//     domains == 1 is the sequential reference of that contract;
//   * stop detection is barrier-granular: after the last flow completes,
//     the in-flight window still finishes everywhere, so events_processed
//     includes that window's tail — identically at every N;
//   * packet_pool_bytes / event_bytes are barrier-sampled peaks (max over
//     windows of live packets / pending events) instead of per-port and
//     per-slab high-water marks, because those are decomposition artifacts;
//     the barrier-state peaks are N-invariant by construction.
ScalingPoint run_scaling_point_parallel(const ScalingConfig& config, int degree,
                                        std::uint64_t seed, obs::Hub* hub) {
  if (config.flow_trace) {
    throw std::invalid_argument{
        "flow_trace is not supported with domains >= 1: the tracer shards "
        "per-domain and its sampling would not be decomposition-invariant"};
  }

  ScalingPoint point;
  point.degree = degree;
  const int n = config.domains;
  point.parallel_domains = static_cast<std::uint64_t>(n);

  // One simulator per domain, keyed ordering enabled before anything
  // schedules. No hub is attached to any domain simulator: component-level
  // tracing callbacks are not thread-safe across domains, so domain runs
  // expose run-level observability only (registered further down).
  std::vector<std::unique_ptr<sim::Simulator>> sims;
  std::vector<sim::Simulator*> sim_ptrs;
  sims.reserve(static_cast<std::size_t>(n));
  sim_ptrs.reserve(static_cast<std::size_t>(n));
  for (int d = 0; d < n; ++d) {
    sims.push_back(std::make_unique<sim::Simulator>());
    sims.back()->enable_keyed_ordering();
    sims.back()->reserve_events(static_cast<std::size_t>(degree) * 8 /
                                    static_cast<std::size_t>(n) +
                                4096);
    sim_ptrs.push_back(sims.back().get());
  }

#if INCAST_AUDIT_ENABLED
  // One auditor per domain (hot-path hooks must not share cache lines),
  // merged into a coordinator-side auditor at teardown. Per-domain event
  // budgets are disabled — the global budget is enforced at barriers, where
  // the total is well-defined.
  std::vector<std::unique_ptr<sim::Auditor>> domain_auditors;
  std::optional<sim::Auditor> merged;
  if (config.audit_mode != sim::AuditMode::kOff) {
    sim::Auditor::Config acfg = config.audit;
    acfg.strict = config.audit_mode == sim::AuditMode::kStrict;
    acfg.max_events = 0;
    for (int d = 0; d < n; ++d) {
      domain_auditors.push_back(std::make_unique<sim::Auditor>(acfg));
      sim_ptrs[static_cast<std::size_t>(d)]->set_auditor(domain_auditors.back().get());
    }
    sim::Auditor::Config mcfg = acfg;
    mcfg.max_wall_ms = 0.0;
    mcfg.cancel = nullptr;
    merged.emplace(mcfg);
  }
  sim::Auditor* drain_auditor = merged ? &*merged : nullptr;
#else
  sim::Auditor* drain_auditor = nullptr;
#endif

  fabric::FatTreeConfig fcfg = config.fabric;
  fcfg.ecmp_seed = seed;
  fabric::DomainAssignment assignment = fabric::assign_rack_domains(fcfg, n);
  if (config.lookahead_override > sim::Time::zero()) {
    assignment.lookahead = config.lookahead_override;
  }
  fabric::FatTree tree{sim_ptrs, assignment, fcfg};

  const std::vector<net::Switch*> switches = tree.switches();
  for (net::Switch* sw : switches) {
    sw->reserve_flows(static_cast<std::size_t>(degree));
  }

  net::DomainBridge bridge{sim_ptrs};
  bridge.attach(tree.nodes());

  const int num_hosts = tree.num_hosts();
  const int receiver = num_hosts - config.fabric.hosts_per_leaf;
  const int sender_pool = num_hosts - 1;

  // Completion tracking without cross-domain writes: every sender bumps its
  // own domain's padded slot; the coordinator sums them at barriers. The
  // run's FCT is the max last-ack time over slots — the same instant the
  // legacy engine observes when the final on_all_acked fires.
  struct alignas(64) CompletionSlot {
    int completed{0};
    std::int64_t last_ack_ns{0};
  };
  std::vector<CompletionSlot> slots(static_cast<std::size_t>(n));

  sim::StableChunkArena<tcp::TcpConnection, 8> connections;
  for (int f = 0; f < degree; ++f) {
    const int slot = f % sender_pool;
    const int sender_host = slot < receiver ? slot : slot + 1;
    net::Host& sender = tree.host(sender_host);
    tcp::TcpConnection& conn = connections.emplace_back(
        sender, tree.host(receiver), static_cast<net::FlowId>(f) + 1, config.tcp);
    CompletionSlot* cs = &slots[static_cast<std::size_t>(sender.domain())];
    sim::Simulator* ssim = sim_ptrs[static_cast<std::size_t>(sender.domain())];
    conn.sender().set_on_all_acked([cs, ssim] {
      ++cs->completed;
      const std::int64_t now_ns = ssim->now().ns();
      if (now_ns > cs->last_ack_ns) cs->last_ack_ns = now_ns;
    });
  }

  // All flows start at t=0, scheduled from this (still single) thread.
  for (std::size_t i = 0; i < connections.size(); ++i) {
    connections[i].sender().add_app_data(config.bytes_per_flow);
  }

  std::uint64_t peak_live_packets = 0;
  std::uint64_t peak_events_pending = 0;
  const auto sample = [&] {
    const std::int64_t live = bridge.live_packets();
    if (live > 0 && static_cast<std::uint64_t>(live) > peak_live_packets) {
      peak_live_packets = static_cast<std::uint64_t>(live);
    }
    std::uint64_t pending = 0;
    for (sim::Simulator* s : sim_ptrs) pending += s->events_pending();
    if (pending > peak_events_pending) peak_events_pending = pending;
  };
  sample();  // the t=0 state counts too

  const std::uint64_t max_events = config.audit.max_events;
  sim::ParallelSimulator::Hooks hooks;
  hooks.drain = [&bridge, drain_auditor](sim::Time completed_end) {
    bridge.drain_all(completed_end, drain_auditor);
  };
  hooks.sample = sample;
  hooks.should_stop = [&] {
    if (max_events > 0) {
      std::uint64_t total = 0;
      for (sim::Simulator* s : sim_ptrs) total += s->events_processed();
      if (total > max_events) {
        throw sim::BudgetExceeded{"event budget " + std::to_string(max_events) +
                                  " exhausted across " + std::to_string(n) +
                                  " domains"};
      }
    }
    int completed = 0;
    for (const CompletionSlot& s : slots) completed += s.completed;
    return completed == degree;
  };

  sim::ParallelSimulator engine{
      sim_ptrs,
      sim::ParallelSimulator::Config{.lookahead = assignment.lookahead,
                                     .deadline = config.max_sim_time},
      std::move(hooks)};
  const sim::ParallelSimulator::Stats stats = engine.run();

  net::check_no_unrouted(switches);
#if INCAST_AUDIT_ENABLED
  if (merged) {
    for (const std::unique_ptr<sim::Auditor>& a : domain_auditors) {
      merged->merge_from(*a);
    }
    merged->check_conservation(tree.residual_buffered_bytes() +
                               bridge.ingress_wire_bytes());
    point.audit_violations = merged->total_violations();
  }
#endif

  int completed = 0;
  std::int64_t last_ack_ns = 0;
  for (const CompletionSlot& s : slots) {
    completed += s.completed;
    if (s.last_ack_ns > last_ack_ns) last_ack_ns = s.last_ack_ns;
  }
  point.completed_flows = completed;
  const std::int64_t end_ns =
      stats.stopped ? last_ack_ns : config.max_sim_time.ns();
  point.fct_ms = sim::Time::nanoseconds(end_ns).ms();
  const std::int64_t total_wire_bytes =
      static_cast<std::int64_t>(degree) *
      wire_bytes_per_flow(config.bytes_per_flow, config.tcp.mss_bytes);
  point.optimal_ms =
      (tree.base_rtt() + config.fabric.host_link.serialization_time(total_wire_bytes))
          .ms();
  if (point.optimal_ms > 0.0) {
    point.overhead_pct = (point.fct_ms / point.optimal_ms - 1.0) * 100.0;
  }

  for (std::size_t i = 0; i < connections.size(); ++i) {
    const tcp::TcpSender::Stats& s = connections[i].sender().stats();
    point.timeouts += s.timeouts;
    point.retransmits += s.retransmitted_packets;
  }

  point.flow_state_bytes = connections.bytes();
  for (net::Switch* sw : switches) {
    point.routing_bytes += sw->routing_bytes();
    point.int_hop_overflows += sw->int_hop_overflows();
    for (std::size_t i = 0; i < sw->num_ports(); ++i) {
      point.queue_drops += sw->port(i).queue().stats().dropped_packets;
    }
  }
  for (int h = 0; h < num_hosts; ++h) {
    point.int_hop_overflows += tree.host(h).int_hop_overflows();
  }
  if (point.int_hop_overflows > 0) {
    std::fprintf(stderr,
                 "warning: %lld INT hop records overflowed the %d-entry stack "
                 "(net.int.hop_overflow); telemetry CCAs saw truncated paths\n",
                 static_cast<long long>(point.int_hop_overflows),
                 net::kMaxIntHops);
  }
  point.packet_pool_bytes = peak_live_packets * sizeof(net::Packet);
  point.event_bytes = peak_events_pending * sim::EventQueue::slot_bytes();
  point.bytes_per_flow = (point.flow_state_bytes + point.packet_pool_bytes +
                          point.routing_bytes + point.event_bytes) /
                         static_cast<std::uint64_t>(degree);

  std::uint64_t total_events = 0;
  for (sim::Simulator* s : sim_ptrs) total_events += s->events_processed();
  point.events_processed = total_events;

  point.windows = stats.windows;
  point.packets_bridged = bridge.packets_bridged();
  point.barrier_stall_ns = stats.barrier_stall_ns;
  point.events_per_domain = stats.events_per_domain;
  point.window_hist = stats.window_hist;

  // Run-level observability. Everything registered here is N-invariant
  // (simulation results, not execution diagnostics), so --metrics-out is
  // byte-identical at any --domains value.
  ExperimentObserver observer{hub};
  if (observer.active()) {
    observer.watch_queue(tree.downlink_name(receiver), tree.downlink_queue(receiver));
    obs::MetricsRegistry& metrics = observer.hub()->metrics();
    metrics.register_gauge("scaling.fct_ms", [&point] { return point.fct_ms; });
    metrics.register_gauge("scaling.overhead_pct",
                           [&point] { return point.overhead_pct; });
    metrics.register_gauge("scaling.bytes_per_flow", [&point] {
      return static_cast<double>(point.bytes_per_flow);
    });
    metrics.register_gauge("scaling.flow_state_bytes", [&point] {
      return static_cast<double>(point.flow_state_bytes);
    });
    metrics.register_gauge("scaling.packet_pool_bytes", [&point] {
      return static_cast<double>(point.packet_pool_bytes);
    });
    metrics.register_gauge("scaling.routing_bytes", [&point] {
      return static_cast<double>(point.routing_bytes);
    });
    metrics.register_gauge("scaling.event_bytes", [&point] {
      return static_cast<double>(point.event_bytes);
    });
    metrics.register_gauge("parallel.windows", [&point] {
      return static_cast<double>(point.windows);
    });
    metrics.register_counter("net.int.hop_overflow",
                             [v = point.int_hop_overflows] { return v; });
    observer.finish(end_ns, {point.fct_ms}, nullptr);
    metrics.unregister_prefix("scaling.");
    metrics.unregister_prefix("parallel.");
    metrics.unregister_prefix("net.int.");
  }

  return point;
}

}  // namespace

ScalingPoint run_scaling_point(const ScalingConfig& config, int degree,
                               std::uint64_t seed, obs::Hub* hub) {
  if (config.domains >= 1) {
    return run_scaling_point_parallel(config, degree, seed, hub);
  }

  ScalingPoint point;
  point.degree = degree;

  sim::Simulator sim;
  if (hub != nullptr) sim.set_hub(hub);

#if INCAST_AUDIT_ENABLED
  std::optional<sim::Auditor> auditor;
  if (config.audit_mode != sim::AuditMode::kOff) {
    sim::Auditor::Config acfg = config.audit;
    acfg.strict = config.audit_mode == sim::AuditMode::kStrict;
    auditor.emplace(acfg);
    sim.set_auditor(&*auditor);
  }
#endif

  // Tail autopsy: attach before any component constructs, so every port and
  // sender caches the tracer pointer. Sampling hashes with the *base* seed
  // (not this point's derived seed) so the same flow ids are traced at
  // every degree.
  std::optional<obs::FlowTracer> flow_tracer;
  if (config.flow_trace) {
    flow_tracer.emplace(
        obs::FlowTracer::Config{config.seed, config.flow_trace_sample_every},
        hub);
    sim.set_flow_tracer(&*flow_tracer);
  }

  sim.reserve_events(static_cast<std::size_t>(degree) * 8 + 4096);

  fabric::FatTreeConfig fcfg = config.fabric;
  fcfg.ecmp_seed = seed;
  fabric::FatTree tree{sim, fcfg};

  // Pre-size every switch's ECMP flow table past its 50% load ceiling: at
  // most `degree` symmetric flow keys transit any one switch, so the whole
  // routing path runs allocation-free in steady state.
  const std::vector<net::Switch*> switches = tree.switches();
  for (net::Switch* sw : switches) {
    sw->reserve_flows(static_cast<std::size_t>(degree));
  }

  // Receiver: slot 0 of the last leaf — maximally remote from sender 0, so
  // every flow crosses the spine tier. Senders round-robin over the other
  // hosts; degrees above num_hosts - 1 stack multiple flows per host.
  const int num_hosts = tree.num_hosts();
  const int receiver = num_hosts - config.fabric.hosts_per_leaf;
  const int sender_pool = num_hosts - 1;

  sim::StableChunkArena<tcp::TcpConnection, 8> connections;
  int completed = 0;
  for (int f = 0; f < degree; ++f) {
    const int slot = f % sender_pool;
    const int sender_host = slot < receiver ? slot : slot + 1;
    tcp::TcpConnection& conn = connections.emplace_back(
        sim, tree.host(sender_host), tree.host(receiver),
        static_cast<net::FlowId>(f) + 1, config.tcp);
    conn.sender().set_on_all_acked([&sim, &completed, degree] {
      if (++completed == degree) sim.stop();
    });
  }

  // Experiment-scope observability on the bottleneck downlink.
  ExperimentObserver observer{INCAST_OBS_HUB(sim)};
  const std::string bottleneck_link = tree.downlink_name(receiver);
  if (observer.active()) {
    observer.watch_queue(bottleneck_link, tree.downlink_queue(receiver));
    observer.watch_simulator(sim);
#if INCAST_AUDIT_ENABLED
    if (auditor) observer.watch_auditor(*auditor, sim);
#endif
  }

  // All flows start at t=0 — the incast in its purest form.
  for (std::size_t i = 0; i < connections.size(); ++i) {
    connections[i].sender().add_app_data(config.bytes_per_flow);
  }

  sim.run_until(config.max_sim_time);

  net::check_no_unrouted(switches);
#if INCAST_AUDIT_ENABLED
  if (auditor) auditor->check_conservation(tree.residual_buffered_bytes());
#endif

  // Tail autopsy teardown: finalize sampled breakdowns, conservation-check
  // each one, aggregate into percentile rows. Full per-flow breakdowns are
  // discarded here — at degree 8000 keeping them for every point would
  // defeat the memory budget this experiment exists to measure.
  if (flow_tracer) {
    const std::vector<obs::FlowBreakdown> breakdowns =
        flow_tracer->finalize(sim.now().ns());
    point.traced_flows = breakdowns.size();
    point.flow_trace_incomplete = flow_tracer->incomplete_flows();
#if INCAST_AUDIT_ENABLED
    if (auditor) {
      for (const obs::FlowBreakdown& f : breakdowns) {
        auditor->check_flow_breakdown(f.flow, f.component_sum(), f.fct_ns);
      }
    }
#endif
    point.fct_rows = obs::tail_attribution(breakdowns);
  }
#if INCAST_AUDIT_ENABLED
  if (auditor) point.audit_violations = auditor->total_violations();
#endif

  point.completed_flows = completed;
  point.fct_ms = sim.now().ms();
  const std::int64_t total_wire_bytes =
      static_cast<std::int64_t>(degree) *
      wire_bytes_per_flow(config.bytes_per_flow, config.tcp.mss_bytes);
  point.optimal_ms =
      (tree.base_rtt() + config.fabric.host_link.serialization_time(total_wire_bytes))
          .ms();
  if (point.optimal_ms > 0.0) {
    point.overhead_pct = (point.fct_ms / point.optimal_ms - 1.0) * 100.0;
  }

  for (std::size_t i = 0; i < connections.size(); ++i) {
    const tcp::TcpSender::Stats& s = connections[i].sender().stats();
    point.timeouts += s.timeouts;
    point.retransmits += s.retransmitted_packets;
  }

  // Deterministic memory decomposition (sizeof-based, never RSS).
  point.flow_state_bytes = connections.bytes();
  for (net::Switch* sw : switches) {
    point.routing_bytes += sw->routing_bytes();
    point.int_hop_overflows += sw->int_hop_overflows();
    for (std::size_t i = 0; i < sw->num_ports(); ++i) {
      point.queue_drops += sw->port(i).queue().stats().dropped_packets;
      point.packet_pool_bytes += sw->port(i).pool_high_water() * sizeof(net::Packet);
    }
  }
  for (int h = 0; h < num_hosts; ++h) {
    net::Host& host = tree.host(h);
    point.int_hop_overflows += host.int_hop_overflows();
    for (std::size_t i = 0; i < host.num_ports(); ++i) {
      point.packet_pool_bytes += host.port(i).pool_high_water() * sizeof(net::Packet);
    }
  }
  if (point.int_hop_overflows > 0) {
    std::fprintf(stderr,
                 "warning: %lld INT hop records overflowed the %d-entry stack "
                 "(net.int.hop_overflow); telemetry CCAs saw truncated paths\n",
                 static_cast<long long>(point.int_hop_overflows),
                 net::kMaxIntHops);
  }
  point.event_bytes = static_cast<std::uint64_t>(sim.slab_high_water()) *
                      sim::EventQueue::slot_bytes();
  point.bytes_per_flow = (point.flow_state_bytes + point.packet_pool_bytes +
                          point.routing_bytes + point.event_bytes) /
                         static_cast<std::uint64_t>(degree);

  point.events_processed = sim.events_processed();

  if (observer.active()) {
    // Surface the budget decomposition in the final metrics snapshot, then
    // unregister so a reused hub does not accumulate stale sources.
    obs::MetricsRegistry& metrics = observer.hub()->metrics();
    metrics.register_gauge("scaling.fct_ms", [&point] { return point.fct_ms; });
    metrics.register_gauge("scaling.overhead_pct",
                           [&point] { return point.overhead_pct; });
    metrics.register_gauge("scaling.bytes_per_flow", [&point] {
      return static_cast<double>(point.bytes_per_flow);
    });
    metrics.register_gauge("scaling.flow_state_bytes", [&point] {
      return static_cast<double>(point.flow_state_bytes);
    });
    metrics.register_gauge("scaling.packet_pool_bytes", [&point] {
      return static_cast<double>(point.packet_pool_bytes);
    });
    metrics.register_gauge("scaling.routing_bytes", [&point] {
      return static_cast<double>(point.routing_bytes);
    });
    metrics.register_gauge("scaling.event_bytes", [&point] {
      return static_cast<double>(point.event_bytes);
    });
    metrics.register_counter("net.int.hop_overflow",
                             [v = point.int_hop_overflows] { return v; });
    observer.finish(sim.now().ns(), {point.fct_ms}, nullptr);
    metrics.unregister_prefix("scaling.");
    metrics.unregister_prefix("net.int.");
  }

  return point;
}

ScalingReport run_scaling_experiment(const ScalingConfig& config) {
  const std::size_t n = config.degrees.size();
  ScalingReport report;

  sim::SweepRunner runner{config.jobs};
  sim::SweepRunner::Policy policy = config.sweep;
  policy.seed_of = [&config](std::size_t index) {
    return sim::derive_task_seed(config.seed, index);
  };
  runner.set_policy(std::move(policy));

  report.points = runner.run<ScalingPoint>(
      n, [&config](std::size_t index, sim::SweepRunner::TaskStats& stats) {
        const int degree = config.degrees[index];
        const std::uint64_t seed = sim::derive_task_seed(config.seed, index);
        // Journal resume: a point completed by a prior interrupted run is
        // replayed from its payload instead of re-simulated.
        if (config.resume) {
          ScalingPoint cached;
          if (config.resume(index, cached)) {
            stats.events = cached.events_processed;
            return cached;
          }
        }
        // Only point 0 is observed: worker threads must not share the hub,
        // and pinning it to a fixed point keeps trace/metrics output
        // byte-identical at any --jobs value.
        obs::Hub* hub = index == 0 ? config.hub : nullptr;
        ScalingPoint point = run_scaling_point(config, degree, seed, hub);
        stats.events = point.events_processed;
        if (config.on_result) config.on_result(index, seed, point);
        return point;
      });
  report.sweep = runner.last_run();
  return report;
}

std::string scaling_csv(const ScalingReport& report) {
  std::string out =
      "degree,fct_ms,optimal_ms,overhead_pct,completed,timeouts,retx,drops,"
      "flow_state_bytes,packet_pool_bytes,routing_bytes,event_bytes,"
      "bytes_per_flow,events,audit_violations\n";
  char buf[512];
  for (const ScalingPoint& p : report.points) {
    std::snprintf(buf, sizeof(buf),
                  "%d,%.4f,%.4f,%.2f,%d,%lld,%lld,%lld,%llu,%llu,%llu,%llu,%llu,"
                  "%llu,%llu\n",
                  p.degree, p.fct_ms, p.optimal_ms, p.overhead_pct, p.completed_flows,
                  static_cast<long long>(p.timeouts),
                  static_cast<long long>(p.retransmits),
                  static_cast<long long>(p.queue_drops),
                  static_cast<unsigned long long>(p.flow_state_bytes),
                  static_cast<unsigned long long>(p.packet_pool_bytes),
                  static_cast<unsigned long long>(p.routing_bytes),
                  static_cast<unsigned long long>(p.event_bytes),
                  static_cast<unsigned long long>(p.bytes_per_flow),
                  static_cast<unsigned long long>(p.events_processed),
                  static_cast<unsigned long long>(p.audit_violations));
    out += buf;
  }
  return out;
}

std::string scaling_fct_csv(const ScalingReport& report) {
  std::string out = obs::fct_breakdown_csv_header();
  for (const ScalingPoint& p : report.points) {
    obs::append_fct_breakdown_csv(out, "scaling", p.degree, p.fct_rows);
  }
  return out;
}

}  // namespace incast::core
