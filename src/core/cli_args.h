// CliArgs: a minimal command-line parser for the driver tool.
//
// Accepts "--key value", "--key=value", and bare "--flag" forms; everything
// else is positional. Typed getters record malformed values instead of
// aborting, so the caller can print all problems at once.
#ifndef INCAST_CORE_CLI_ARGS_H_
#define INCAST_CORE_CLI_ARGS_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "sim/parse.h"

namespace incast::core {

class CliArgs {
 public:
  CliArgs(int argc, const char* const* argv);

  [[nodiscard]] bool has(const std::string& key) const { return values_.count(key) > 0; }
  [[nodiscard]] std::optional<std::string> get(const std::string& key) const;
  [[nodiscard]] std::string get_or(const std::string& key, std::string fallback) const;

  // Typed getters; parse failures are appended to errors().
  [[nodiscard]] std::int64_t int_or(const std::string& key, std::int64_t fallback);
  [[nodiscard]] double double_or(const std::string& key, double fallback);
  [[nodiscard]] bool bool_or(const std::string& key, bool fallback);
  [[nodiscard]] sim::Time time_or(const std::string& key, sim::Time fallback);
  [[nodiscard]] sim::Bandwidth bandwidth_or(const std::string& key,
                                            sim::Bandwidth fallback);

  // Range-checked variants: a well-formed but out-of-range value (negative
  // duration, zero flows, probability above 1, ...) is rejected with a
  // clear error instead of being silently accepted.
  [[nodiscard]] std::int64_t int_or(const std::string& key, std::int64_t fallback,
                                    std::int64_t min_value, std::int64_t max_value);
  [[nodiscard]] double double_or(const std::string& key, double fallback,
                                 double min_value, double max_value);
  [[nodiscard]] sim::Time time_or(const std::string& key, sim::Time fallback,
                                  sim::Time min_value);

  [[nodiscard]] const std::vector<std::string>& positional() const noexcept {
    return positional_;
  }
  [[nodiscard]] const std::vector<std::string>& errors() const noexcept { return errors_; }

  // Keys that were supplied but never read by any getter — typo detection.
  [[nodiscard]] std::vector<std::string> unused_keys() const;

  // Turns every unused key into an error. Strict CLIs call this after
  // reading all their flags, so an unknown --flag fails the invocation
  // instead of being silently ignored.
  void reject_unknown();

 private:
  std::map<std::string, std::string> values_;
  std::map<std::string, bool> consumed_;
  std::vector<std::string> positional_;
  std::vector<std::string> errors_;
};

// The resolved --jobs x --domains pair: sweep workers times engine threads
// per point. Both are >= 1 after resolution.
struct Parallelism {
  int jobs{1};
  int domains{1};
};

// Resolves the two parallelism flags against the machine. 0 means "auto"
// for either: auto domains takes every hardware thread; auto jobs takes
// whatever the domain count leaves over (at least 1), so the common
// `--domains N` invocation never oversubscribes by accident. Explicit
// oversubscription — both flags given, both above 1, and their product
// beyond `hardware_threads` — is rejected with a diagnostic in `error`
// (the CLI exits 2, the bad-invocation code): every simulation thread is
// CPU-bound, so thread thrash only slows the run down and a typo like
// `--jobs 64 --domains 64` should fail loudly, not quietly crawl.
[[nodiscard]] bool resolve_parallelism(int jobs_flag, int domains_flag,
                                       int hardware_threads, Parallelism& out,
                                       std::string& error);

}  // namespace incast::core

#endif  // INCAST_CORE_CLI_ARGS_H_
