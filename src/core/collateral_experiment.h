// CollateralExperiment: the "collateral damage" scenario family — one
// long-lived victim flow sharing the fabric with a large incast.
//
// Reproduces the htsim NDP collateral-damage experiment on the paper's
// dumbbell: receiver 0 is the incast sink (64-500 flows, cyclic bursts),
// receiver 1 the sink of a single persistent victim flow from a host on the
// same sender-side ToR. The victim never touches the incast's bottleneck
// downlink — any throughput it loses is collateral from the shared hops.
//
// Four queue modes tell four different stories at the same operating point:
//
//  * kDropTail  — drop-tail + ECN (the paper's baseline). The victim loses
//    only what burst-onset overshoot steals at the shared core uplink.
//  * kPfc      — PFC lossless Ethernet + DCQCN. Nothing is dropped, but
//    the congestion tree grows backwards: the incast fills the receiver
//    ToR's VIQ, pauses the core link, fills the sender ToR's VIQs, and
//    pauses every host — victim included. Head-of-line blocking makes the
//    victim's loss rate zero and its throughput worst of all four.
//  * kTrim     — NDP-style packet trimming. Overflow cuts payloads instead
//    of dropping packets; receivers NACK trimmed headers and senders
//    retransmit in one RTT. The victim sees brief trims at burst onset and
//    recovers immediately.
//  * kCredit   — the rdt:: receiver-driven credit transport for the incast.
//    Credit pacing never overfills the fabric, so the victim runs at line
//    rate; this is the "what if we fixed incast at the source" bound.
//
// Every point is an independent simulation; the (mode x degree) grid runs
// on a SweepRunner, so results are byte-identical at any --jobs value.
#ifndef INCAST_CORE_COLLATERAL_EXPERIMENT_H_
#define INCAST_CORE_COLLATERAL_EXPERIMENT_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "net/pfc.h"
#include "net/topology.h"
#include "obs/flow_trace.h"
#include "sim/auditor.h"
#include "sim/sweep.h"
#include "tcp/tcp_config.h"

namespace incast::obs {
class Hub;
}  // namespace incast::obs

namespace incast::core {

enum class QueueMode { kDropTail, kPfc, kTrim, kCredit };

[[nodiscard]] const char* to_string(QueueMode mode) noexcept;
// Parses "droptail" | "pfc" | "trim" | "credit"; false on anything else.
[[nodiscard]] bool parse_queue_mode(const std::string& name, QueueMode& out) noexcept;

struct CollateralConfig {
  // The sweep grid: every (mode, degree) pair is one simulation point,
  // mode-major (all degrees of modes[0] first).
  std::vector<QueueMode> modes{QueueMode::kDropTail, QueueMode::kPfc, QueueMode::kTrim,
                               QueueMode::kCredit};
  std::vector<int> degrees{64};  // incast fan-in (paper range: 64-500)

  // Incast workload (mirrors the Section 4 cyclic incast).
  int num_bursts{4};
  sim::Time burst_duration{sim::Time::milliseconds(15)};
  sim::Time inter_burst_gap{sim::Time::milliseconds(10)};

  // Topology template. num_senders/num_receivers are overridden per point
  // (degree + 1 senders, 2 receivers); switch_queue is reshaped per mode.
  // The inter-ToR link defaults to 20 Gbps — tighter than the incast
  // dumbbell's 100 Gbps — so the hop the victim shares with the incast
  // behaves like the colliding core paths of the htsim fat-tree scenario:
  // burst-onset overshoot transits a contended shared link instead of
  // vanishing into 10x headroom.
  net::DumbbellConfig topology{.core_link = sim::Bandwidth::gigabits_per_second(20)};

  // Drop-tail queue shape, used by kDropTail and kCredit (and as the ECN
  // threshold source for every mode).
  int queue_capacity_packets{1333};
  int ecn_threshold_packets{65};

  // Optional receiver-ToR dynamically shared buffer (Dynamic Threshold),
  // applied to every mode but kPfc (lossless headroom is dedicated, not
  // pooled). Off by default: a pool small enough to pressure the incast
  // caps its queue below the ECN threshold and turns the baseline into an
  // RTO storm, which muddies the mode comparison. Enable it to study
  // Section 3.4 rack-level buffer contention on top of the scenario.
  std::int64_t shared_buffer_bytes{0};
  double shared_buffer_alpha{1.0};

  // kPfc: the VIQ thresholds, plus an effectively-unbounded egress queue so
  // PFC backpressure — not tail drop — is the binding constraint.
  net::LosslessInputQueue::Config pfc{};
  int pfc_queue_capacity_packets{100'000};

  // kTrim: data-queue capacity of the trimming CompositeQueue. Shallower
  // than the drop-tail buffer — trimming is what makes small queues viable
  // — but with enough ECN headroom (mark at 65, trim at 400) that DCTCP
  // sees marks before payloads start getting cut. True NDP runs ~8-packet
  // queues, but only because its receiver pulls pace every packet; a
  // window sender with that little headroom trims constantly.
  int trim_queue_capacity_packets{400};

  // Victim socket-buffer bound: caps the victim's cwnd so the long-lived
  // flow can't grow its window without bound on an idle path (which would
  // eventually trip the auditor's cwnd sanity bound). ~128 KB is several
  // base-path BDPs — never the limiting factor at 10 Gbps / ~30 us, but a
  // finite in-flight ceiling. 0 = uncapped.
  std::int64_t victim_cwnd_cap_bytes{128 * 1024};

  // Congestion control: `cc` drives kDropTail/kTrim/kCredit's victim;
  // kPfc uses `pfc_cc` (DCQCN — the production lossless pairing). The
  // victim always runs the same CCA as the incast it shares links with.
  tcp::TcpConfig tcp{};
  tcp::CcAlgorithm pfc_cc{tcp::CcAlgorithm::kDcqcn};

  sim::Time max_sim_time{sim::Time::seconds(30)};

  // Sweep execution (sim::SweepRunner): 1 = inline, <= 0 = all hardware
  // threads. Results are ordered by point index regardless.
  int jobs{1};
  sim::SweepRunner::Policy sweep{};

  // Observability: only point 0 attaches the hub (worker threads must not
  // share it), so trace/metrics output is byte-identical at any --jobs.
  obs::Hub* hub{nullptr};

  sim::AuditMode audit_mode{sim::AuditMode::kRelaxed};
  sim::Auditor::Config audit{};

  // Tail autopsy (see IncastExperimentConfig::flow_trace). The sampling
  // hash uses the *base* seed, so the same flow ids are sampled at every
  // grid point and breakdowns stay comparable across modes/degrees.
  bool flow_trace{false};
  std::uint64_t flow_trace_sample_every{1};

  // Checkpoint/resume hooks (core::TaskJournal wires these from the CLI).
  // `resume` is consulted before a point runs: return true and fill the
  // point to skip its simulation. `on_result` fires after every freshly-run
  // point.
  std::function<bool(std::size_t index, struct CollateralPoint& out)> resume{};
  std::function<void(std::size_t index, std::uint64_t seed,
                     const struct CollateralPoint& point)>
      on_result{};

  std::uint64_t seed{1};
};

// One (mode, degree) simulation outcome.
struct CollateralPoint {
  QueueMode mode{QueueMode::kDropTail};
  int degree{0};

  // The victim flow (the headline number: htsim ordering is
  // trim ~ credit > droptail > pfc).
  double victim_goodput_gbps{0.0};
  std::int64_t victim_delivered_bytes{0};
  double victim_paused_ms{0.0};  // NIC time paused by PFC (HoL blocking)
  std::int64_t victim_retransmits{0};
  std::int64_t victim_timeouts{0};
  std::int64_t victim_nacks{0};  // trim NACKs the victim receiver sent

  // The incast's own completion behaviour (FCT of the measured bursts).
  double incast_avg_bct_ms{0.0};
  double incast_max_bct_ms{0.0};
  std::int64_t incast_timeouts{0};

  // Fabric-wide mechanism counters, summed over every switch port / VIQ.
  std::int64_t queue_drops{0};
  std::int64_t trimmed_packets{0};
  std::int64_t trimmed_bytes{0};
  std::int64_t pfc_pause_frames{0};
  std::int64_t pfc_resume_frames{0};
  std::int64_t pfc_overflow_drops{0};
  std::int64_t incast_nacks{0};

  std::uint64_t events_processed{0};
  std::uint64_t audit_violations{0};

  // Tail autopsy (empty unless flow_trace): p50/p99/p999 attribution rows.
  // Every underlying breakdown was conservation-checked by the auditor
  // before aggregation (audit_violations counts any failures).
  std::vector<obs::TailAttributionRow> fct_rows;
  std::uint64_t traced_flows{0};          // completed sampled flows
  std::uint64_t flow_trace_incomplete{0}; // cut by max_sim_time

  // INT hop-stamp overflows across all ports of this point's topology.
  std::int64_t int_hop_overflows{0};
};

struct CollateralReport {
  std::vector<CollateralPoint> points;  // mode-major grid order
  sim::SweepRunner::RunStats sweep;
};

// Runs one point standalone (used by the sweep and by tests that pin a
// single scenario). `hub` may be nullptr.
[[nodiscard]] CollateralPoint run_collateral_point(const CollateralConfig& config,
                                                   QueueMode mode, int degree,
                                                   std::uint64_t seed, obs::Hub* hub);

// Runs the whole (mode x degree) grid. Deterministic: the same config
// (seed included) produces an identical report at any `jobs`.
[[nodiscard]] CollateralReport run_collateral_experiment(const CollateralConfig& config);

// One CSV row per point, fixed column order and formatting — the artifact
// the determinism suite byte-compares across --jobs values.
[[nodiscard]] std::string collateral_csv(const CollateralReport& report);

// fct_breakdown.csv over the grid: one row per (point, percentile), in
// point order. Byte-identical at any --jobs value; empty rows for points
// without traced flows are simply omitted.
[[nodiscard]] std::string collateral_fct_csv(const CollateralReport& report);

}  // namespace incast::core

#endif  // INCAST_CORE_COLLATERAL_EXPERIMENT_H_
