#include "core/chaos.h"

#include <algorithm>
#include <cstdio>

#include "core/fleet_experiment.h"
#include "core/incast_experiment.h"
#include "sim/random.h"
#include "workload/service_profile.h"

namespace incast::core {

namespace {

constexpr tcp::CcAlgorithm kAllCc[] = {
    tcp::CcAlgorithm::kDctcp, tcp::CcAlgorithm::kReno,  tcp::CcAlgorithm::kRenoEcn,
    tcp::CcAlgorithm::kCubic, tcp::CcAlgorithm::kSwift, tcp::CcAlgorithm::kHpcc,
};

const char* cc_name(tcp::CcAlgorithm cc) noexcept {
  switch (cc) {
    case tcp::CcAlgorithm::kDctcp: return "dctcp";
    case tcp::CcAlgorithm::kReno: return "reno";
    case tcp::CcAlgorithm::kRenoEcn: return "reno-ecn";
    case tcp::CcAlgorithm::kCubic: return "cubic";
    case tcp::CcAlgorithm::kSwift: return "swift";
    case tcp::CcAlgorithm::kHpcc: return "hpcc";
    case tcp::CcAlgorithm::kDcqcn: return "dcqcn";
  }
  return "?";
}

std::string describe(const char* kind, const std::string& detail) {
  return std::string{kind} + " " + detail;
}

// A randomized Section 4 burst, optionally with randomized link faults.
// Every knob is drawn in a fixed order so the config is a pure function of
// the seed.
ChaosRunResult chaos_burst(const ChaosConfig& config, std::uint64_t seed, bool faulty) {
  sim::Rng rng{seed ^ 0xB0157EED};
  IncastExperimentConfig cfg;
  cfg.seed = seed;
  cfg.num_flows = static_cast<int>(rng.uniform_int(8, 300));
  cfg.burst_duration = sim::Time::milliseconds(static_cast<double>(rng.uniform_int(1, 8)));
  cfg.num_bursts = static_cast<int>(rng.uniform_int(2, 3));
  cfg.discard_bursts = 1;
  cfg.inter_burst_gap = rng.uniform_time(sim::Time::zero(), sim::Time::milliseconds(5));
  cfg.schedule = rng.bernoulli(0.5) ? workload::BurstSchedule::kAfterCompletion
                                    : workload::BurstSchedule::kFixedPeriod;
  cfg.tcp.cc = kAllCc[rng.uniform_int(0, 5)];
  cfg.tcp.int_telemetry = cfg.tcp.cc == tcp::CcAlgorithm::kHpcc;
  cfg.tcp.rtt.min_rto = rng.uniform_time(sim::Time::milliseconds(1), sim::Time::milliseconds(200));
  cfg.tcp.tail_loss_probe = rng.bernoulli(0.3);
  if (rng.bernoulli(0.3)) {
    cfg.tcp.cwnd_cap_bytes = rng.uniform_int(4, 64) * cfg.tcp.mss_bytes;
  }
  const std::int64_t queue = rng.uniform_int(100, 2000);
  cfg.topology.switch_queue.capacity_packets = queue;
  cfg.topology.switch_queue.ecn_threshold_packets =
      std::max<std::int64_t>(1, static_cast<std::int64_t>(
                                    static_cast<double>(queue) * rng.uniform(0.05, 0.8)));
  cfg.max_sim_time = sim::Time::seconds(10);

  // Queue-discipline mix: drop-tail, NDP trimming, PFC lossless (2:1:1).
  // Trimming and PFC exercise the auditor's trimmed-byte and control-frame
  // ledgers; PFC draws randomized XOFF/XON/headroom so hysteresis corners
  // (tight thresholds, scarce headroom) get fuzzed too.
  const std::int64_t qmode = rng.uniform_int(0, 3);
  const char* qmode_name = "droptail";
  if (qmode == 2) {
    cfg.topology.switch_queue.discipline = net::QueueDiscipline::kTrimming;
    qmode_name = "trim";
  } else if (qmode == 3) {
    net::LosslessInputQueue::Config pfc;
    pfc.xoff_bytes = rng.uniform_int(32, 256) * 1024;
    pfc.xon_bytes = pfc.xoff_bytes - rng.uniform_int(8, 64) * 1024;
    if (pfc.xon_bytes < 1024) pfc.xon_bytes = 1024;
    pfc.headroom_bytes = rng.uniform_int(128, 512) * 1024;
    cfg.topology.pfc = pfc;
    // PFC backpressure, not tail drop, should be the binding constraint.
    cfg.topology.switch_queue.capacity_packets = 100'000;
    if (rng.bernoulli(0.5)) cfg.tcp.cc = tcp::CcAlgorithm::kDcqcn;
    qmode_name = "pfc";
  }

  std::string faults;
  if (faulty) {
    cfg.faults.forward.drop_rate = rng.bernoulli(0.7) ? rng.uniform(0.0, 0.03) : 0.0;
    cfg.faults.forward.corrupt_rate = rng.bernoulli(0.4) ? rng.uniform(0.0, 0.01) : 0.0;
    cfg.faults.forward.duplicate_rate = rng.bernoulli(0.4) ? rng.uniform(0.0, 0.01) : 0.0;
    cfg.faults.forward.reorder_rate = rng.bernoulli(0.3) ? rng.uniform(0.0, 0.01) : 0.0;
    if (rng.bernoulli(0.3)) {
      cfg.faults.forward.ge_good_to_bad = rng.uniform(0.0, 0.01);
      cfg.faults.forward.ge_bad_to_good = rng.uniform(0.05, 0.5);
    }
    cfg.faults.reverse.drop_rate = rng.bernoulli(0.3) ? rng.uniform(0.0, 0.01) : 0.0;
    if (rng.bernoulli(0.3)) {
      const sim::Time at = rng.uniform_time(sim::Time::milliseconds(2), sim::Time::milliseconds(8));
      const sim::Time dur =
          rng.uniform_time(sim::Time::microseconds(500), sim::Time::milliseconds(3));
      cfg.faults.flaps.push_back(fault::FlapWindow{at, dur});
    }
    char buf[128];
    std::snprintf(buf, sizeof(buf), " drop=%.4f corrupt=%.4f dup=%.4f reorder=%.4f flaps=%zu",
                  cfg.faults.forward.drop_rate, cfg.faults.forward.corrupt_rate,
                  cfg.faults.forward.duplicate_rate, cfg.faults.forward.reorder_rate,
                  cfg.faults.flaps.size());
    faults = buf;
  }

  cfg.audit_mode = sim::AuditMode::kStrict;
  cfg.audit.max_events = config.max_events_per_run;
  cfg.audit.max_wall_ms = config.max_wall_ms_per_run;
  cfg.audit.cancel = config.cancel;

  char buf[192];
  std::snprintf(buf, sizeof(buf),
                "cc=%s qmode=%s flows=%d dur=%lldus queue=%lld ecn=%lld bursts=%d%s",
                cc_name(cfg.tcp.cc), qmode_name, cfg.num_flows,
                static_cast<long long>(cfg.burst_duration.ns() / 1000),
                static_cast<long long>(queue),
                static_cast<long long>(cfg.topology.switch_queue.ecn_threshold_packets),
                cfg.num_bursts, faults.c_str());

  const IncastExperimentResult result = run_incast_experiment(cfg);
  ChaosRunResult out;
  out.description = describe(faulty ? "faulty-burst" : "burst", buf);
  out.seed = seed;
  out.events_processed = result.events_processed;
  return out;
}

// A randomized short fleet trace: service-profile workload, shared-buffer
// contention, the whole Section 3 pipeline — under the strict auditor.
ChaosRunResult chaos_fleet(const ChaosConfig& config, std::uint64_t seed) {
  sim::Rng rng{seed ^ 0xF1EE7C05};
  const auto& catalog = workload::service_catalog();
  FleetConfig cfg;
  cfg.profile = catalog[static_cast<std::size_t>(
      rng.uniform_int(0, static_cast<std::int64_t>(catalog.size()) - 1))];
  // Clamp the heavyweight profiles so a chaos run stays sub-second.
  cfg.profile.max_flows = std::min(cfg.profile.max_flows, 80);
  cfg.profile.body_median_flows = std::min(cfg.profile.body_median_flows, 40.0);
  cfg.num_hosts = 1;
  cfg.num_snapshots = 1;
  cfg.trace_duration = sim::Time::milliseconds(static_cast<double>(rng.uniform_int(20, 80)));
  cfg.base_seed = seed;
  cfg.tcp.cc = tcp::CcAlgorithm::kDctcp;
  cfg.tcp.rtt.min_rto = sim::Time::milliseconds(static_cast<double>(rng.uniform_int(1, 200)));
  const std::int64_t mode_draw = rng.uniform_int(0, 2);
  cfg.contention_mode = mode_draw == 0   ? FleetConfig::ContentionMode::kNone
                        : mode_draw == 1 ? FleetConfig::ContentionMode::kModeled
                                         : FleetConfig::ContentionMode::kNeighbor;
  cfg.audit_mode = sim::AuditMode::kStrict;
  cfg.audit.max_events = config.max_events_per_run;
  cfg.audit.max_wall_ms = config.max_wall_ms_per_run;
  cfg.audit.cancel = config.cancel;

  char buf[160];
  std::snprintf(buf, sizeof(buf), "service=%s trace=%lldms contention=%lld max_flows=%d",
                cfg.profile.name.c_str(),
                static_cast<long long>(cfg.trace_duration.ns() / 1'000'000),
                static_cast<long long>(mode_draw), cfg.profile.max_flows);

  const FleetExperiment exp{cfg};
  const HostTraceResult result = exp.run_host_trace(0, 0);
  ChaosRunResult out;
  out.description = describe("fleet", buf);
  out.seed = seed;
  out.events_processed = result.events_processed;
  return out;
}

}  // namespace

std::uint64_t chaos_run_seed(const ChaosConfig& config, std::size_t index) noexcept {
  return sim::derive_task_seed(config.seed, index);
}

ChaosReport run_chaos(const ChaosConfig& config) {
  ChaosReport report;
  sim::SweepRunner runner{config.jobs};
  sim::SweepRunner::Policy policy;
  policy.fail_fast = false;  // collect every broken config, never abort the fuzz
  policy.max_attempts = 1;   // a violation is deterministic; retrying hides nothing
  policy.cancel = config.cancel;
  policy.seed_of = [&config](std::size_t index) { return chaos_run_seed(config, index); };
  policy.on_failure = config.on_failure;
  runner.set_policy(std::move(policy));

  report.runs = runner.run<ChaosRunResult>(
      static_cast<std::size_t>(config.num_configs),
      [&config](std::size_t index, sim::SweepRunner::TaskStats& stats) {
        if (config.resume) {
          ChaosRunResult cached;
          if (config.resume(index, cached)) {
            stats.events = cached.events_processed;
            return cached;
          }
        }
        const std::uint64_t seed = chaos_run_seed(config, index);
        // Kind mix: plain bursts, faulty bursts, fleet traces (1:2:1).
        sim::Rng kind_rng{seed};
        const std::int64_t kind = kind_rng.uniform_int(0, 3);
        ChaosRunResult result = kind == 3 ? chaos_fleet(config, seed)
                                          : chaos_burst(config, seed, kind >= 1);
        stats.events = result.events_processed;
        if (config.on_result) config.on_result(index, seed, result);
        return result;
      });
  report.sweep = runner.last_run();
  return report;
}

}  // namespace incast::core
