// IncastExperiment: the Section 4 simulation harness.
//
// Builds the paper's dumbbell (N x 10 Gbps senders, 100 Gbps inter-ToR,
// one 10 Gbps receiver; RTT ~30 us; bottleneck queue 1333 packets with ECN
// marking at 65), runs a configurable number of cyclic incast bursts, and
// reports queue dynamics, burst completion times, and TCP-level outcomes.
// Following the paper, the first burst (dominated by slow start) is
// discarded and statistics cover the remaining bursts.
#ifndef INCAST_CORE_INCAST_EXPERIMENT_H_
#define INCAST_CORE_INCAST_EXPERIMENT_H_

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "fault/fault_injector.h"
#include "net/topology.h"
#include "obs/flow_trace.h"
#include "sim/auditor.h"
#include "sim/event_category.h"
#include "tcp/tcp_config.h"
#include "telemetry/inflight_sampler.h"
#include "telemetry/queue_monitor.h"
#include "workload/cyclic_incast.h"

namespace incast::obs {
class Hub;
}  // namespace incast::obs

namespace incast::core {

// Faults on one link addressed by its LinkDirectory name, so a profile can
// target any link in any topology ("tor_s->tor_r" in the dumbbell,
// "p0.l1->s0" in a fat-tree, ...).
struct NamedLinkFault {
  std::string link;
  fault::LinkFaultConfig config{};
};

// Fault injection for the whole run. The forward/reverse fields apply to
// the dumbbell's inter-ToR link (data and ACK directions); `links` applies
// to arbitrary named links of the topology and works for any fabric. Flaps
// blackhole both core directions (a real link flap kills the full duplex
// pair). When nothing is enabled the fault layer is never constructed and
// the run is bit-for-bit identical to one without it.
struct FaultProfile {
  fault::LinkFaultConfig forward{};  // data direction (sender ToR -> receiver ToR)
  fault::LinkFaultConfig reverse{};  // ACK direction
  std::vector<NamedLinkFault> links{};
  std::vector<fault::FlapWindow> flaps{};

  [[nodiscard]] bool enabled() const noexcept {
    return forward.any_enabled() || reverse.any_enabled() || !flaps.empty() ||
           std::any_of(links.begin(), links.end(),
                       [](const NamedLinkFault& f) { return f.config.any_enabled(); });
  }
};

struct IncastExperimentConfig {
  int num_flows{100};
  sim::Time burst_duration{sim::Time::milliseconds(15)};
  int num_bursts{11};
  int discard_bursts{1};
  sim::Time inter_burst_gap{sim::Time::milliseconds(10)};
  // Completion gating keeps burst 0's slow-start losses from contaminating
  // the measured bursts (the paper discards burst 0 for the same reason);
  // kFixedPeriod is available to study pile-up dynamics.
  workload::BurstSchedule schedule{workload::BurstSchedule::kAfterCompletion};

  net::DumbbellConfig topology{};  // num_senders is overridden by num_flows
  tcp::TcpConfig tcp{};

  // Bottleneck queue time-series sampling period (Figures 5 and 6).
  sim::Time queue_sample_every{sim::Time::microseconds(10)};
  // Per-flow in-flight sampling (Figure 7); zero disables.
  sim::Time inflight_sample_every{sim::Time::zero()};

  // Hard wall for the simulation; generous enough for Mode 3 timeouts.
  sim::Time max_sim_time{sim::Time::seconds(30)};

  // Link faults on the inter-ToR link; disabled by default (strict no-op).
  FaultProfile faults{};

  // Borrowed observability hub. When set, the run attaches it to the
  // simulator before any component is built (senders and queues register
  // metrics and trace into it), labels the bottleneck link for tracing, and
  // snapshots the metrics registry at end of run. nullptr = unobserved run,
  // byte-identical to the pre-observability behavior.
  obs::Hub* hub{nullptr};

  // Run-hardening (see sim/auditor.h): kRelaxed (default) counts invariant
  // violations into the result without perturbing the run; kStrict aborts
  // on the first violation; kOff attaches no auditor. `audit` carries the
  // bounds, execution budgets and cancellation flag; its strict field is
  // overridden from audit_mode. A no-op under -DINCAST_AUDIT=OFF.
  sim::AuditMode audit_mode{sim::AuditMode::kRelaxed};
  sim::Auditor::Config audit{};

  // Tail autopsy (obs/flow_trace.h): attach a FlowTracer and decompose each
  // sampled flow's FCT into serialization/propagation/per-tier queueing/
  // stall classes. Sampling hashes (flow id, seed) so the decision is
  // deterministic and jobs-invariant; 1 traces every flow. Disabled runs
  // are byte-identical to pre-tracer behavior.
  bool flow_trace{false};
  std::uint64_t flow_trace_sample_every{1};

  std::uint64_t seed{1};
};

struct IncastExperimentResult {
  // Every burst, in order (index 0 .. num_bursts-1).
  std::vector<workload::CyclicIncastDriver::BurstRecord> bursts;

  // Bottleneck-queue time series over the whole run.
  std::vector<telemetry::QueueMonitor::Sample> queue_series;

  // Queue length vs time-since-burst-start, averaged over the measured
  // (non-discarded) bursts — the Figure 5/6 series. Entry i is the mean
  // queue depth at offset i * queue_sample_every.
  std::vector<double> mean_queue_by_offset;
  sim::Time queue_offset_step{};

  // Per-flow in-flight snapshots (Figure 7); empty unless enabled.
  std::vector<telemetry::InflightSampler::Snapshot> inflight;

  // Aggregates over measured bursts.
  double avg_bct_ms{0.0};
  double max_bct_ms{0.0};
  double avg_queue_packets{0.0};   // time-average during measured bursts
  double peak_queue_packets{0.0};  // max during measured bursts

  // Bottleneck queue and TCP counters, measured-window deltas.
  std::int64_t queue_drops{0};
  std::int64_t queue_ecn_marks{0};
  std::int64_t queue_enqueues{0};
  std::int64_t timeouts{0};
  std::int64_t fast_retransmits{0};
  std::int64_t retransmitted_packets{0};
  std::int64_t data_packets_sent{0};

  // Congestion-window census at the end of each measured burst (Section
  // 4.3: stragglers ramping up between bursts).
  double end_of_burst_cwnd_mean_mss{0.0};
  double end_of_burst_cwnd_max_mss{0.0};

  // Fault-layer counters, whole-run totals (all zero when faults are
  // disabled). Injected drops and congestion drops (queue_drops above) are
  // disjoint by construction: an injected drop never entered a queue's
  // accounting, so loss stays attributable.
  std::int64_t injected_drops{0};        // random + burst + flap drops on links
  std::int64_t injected_flap_drops{0};   // subset of injected_drops from flaps
  std::int64_t injected_corruptions{0};  // frames mangled in flight
  std::int64_t injected_duplicates{0};
  std::int64_t injected_reorders{0};
  std::int64_t corrupt_nic_drops{0};     // mangled frames discarded at host NICs

  // Injected-vs-congestion drop series per watermark window (from
  // QueueMonitor), for offline attribution.
  std::vector<std::int64_t> congestion_drops_by_window;
  std::vector<std::int64_t> injected_drops_by_window;

  // Total events the simulator dispatched — the determinism fingerprint
  // (two runs with the same seed must agree exactly) — and its breakdown by
  // event category (always collected; the self-profiler's cheap half).
  std::uint64_t events_processed{0};
  sim::EventCategoryCounts events_by_category{};
  // Event-kernel footprint: peak pending heap depth and callback-slab
  // high-water mark (how many events were ever scheduled concurrently).
  std::uint64_t peak_events_pending{0};
  std::uint64_t slab_high_water{0};

  // Total auditor invariant violations observed during the run (always 0
  // in strict mode — the first one aborts — and under -DINCAST_AUDIT=OFF
  // or audit_mode kOff).
  std::uint64_t audit_violations{0};

  // Tail autopsy (empty unless config.flow_trace): exact per-flow FCT
  // decompositions for completed sampled flows, the p50/p99/p999
  // attribution rows derived from them, and how many sampled flows the
  // sim-time wall cut mid-period.
  std::vector<obs::FlowBreakdown> flow_breakdowns;
  std::vector<obs::TailAttributionRow> fct_rows;
  std::uint64_t flow_trace_incomplete{0};

  // INT hop-stamp overflows across all ports (packets whose INT stack was
  // full at a stamping hop). Nonzero means telemetry-driven CCAs saw a
  // truncated path — surfaced as the net.int.hop_overflow metric and a
  // teardown warning instead of being dropped silently.
  std::int64_t int_hop_overflows{0};

  [[nodiscard]] double marked_fraction() const noexcept {
    return queue_enqueues > 0
               ? static_cast<double>(queue_ecn_marks) / static_cast<double>(queue_enqueues)
               : 0.0;
  }
  [[nodiscard]] double retransmit_fraction() const noexcept {
    return data_packets_sent > 0 ? static_cast<double>(retransmitted_packets) /
                                       static_cast<double>(data_packets_sent)
                                 : 0.0;
  }
};

// Runs one experiment to completion (or max_sim_time).
[[nodiscard]] IncastExperimentResult run_incast_experiment(const IncastExperimentConfig& config);

}  // namespace incast::core

#endif  // INCAST_CORE_INCAST_EXPERIMENT_H_
