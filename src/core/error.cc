#include "core/error.h"

namespace incast::core {

const char* to_string(ErrorCategory category) noexcept {
  switch (category) {
    case ErrorCategory::kConfig: return "config";
    case ErrorCategory::kIo: return "io";
    case ErrorCategory::kAudit: return "audit";
    case ErrorCategory::kInternal: return "internal";
  }
  return "unknown";
}

int exit_code(ErrorCategory category) noexcept {
  switch (category) {
    case ErrorCategory::kConfig: return 2;
    case ErrorCategory::kIo: return 3;
    case ErrorCategory::kAudit: return 4;
    case ErrorCategory::kInternal: return 5;
  }
  return 5;
}

}  // namespace incast::core
