// FlowCountPredictor: forecast a service's incast degree from history.
//
// Section 3.3's finding — per-service flow-count distributions are stable
// over hours and across hosts — implies hosts can *predict* the scale of
// the next incast instead of reacting to it. This predictor maintains a
// sliding window of observed per-burst flow counts and forecasts any
// percentile of the next burst's flow count. Section 5.1's "guardrail"
// proposal uses the p99 forecast to cap cwnd so that even the worst-case
// incast fits the switch buffer (see suggest_cwnd_cap_bytes).
#ifndef INCAST_CORE_PREDICTOR_H_
#define INCAST_CORE_PREDICTOR_H_

#include <cstddef>
#include <cstdint>
#include <deque>

#include "sim/units.h"

namespace incast::core {

class FlowCountPredictor {
 public:
  struct Config {
    std::size_t window_bursts{1000};  // history size
    std::size_t min_history{20};      // below this, no prediction
  };

  FlowCountPredictor() = default;
  explicit FlowCountPredictor(Config config) : config_{config} {}

  // Records the flow count of an observed burst.
  void observe(int flows);

  [[nodiscard]] bool ready() const noexcept {
    return history_.size() >= config_.min_history;
  }
  [[nodiscard]] std::size_t history_size() const noexcept { return history_.size(); }

  // Forecast of the given percentile of the next burst's flow count.
  // Returns 0 if not ready.
  [[nodiscard]] int predict_percentile(double p) const;
  [[nodiscard]] int predict_p99() const { return predict_percentile(99); }
  [[nodiscard]] double predict_mean() const;

 private:
  Config config_;
  std::deque<int> history_;
};

// The guardrail: a per-flow cwnd cap such that `predicted_flows` flows at
// the cap fill exactly the path BDP plus the ECN marking threshold — i.e.
// the worst-case incast converges at the marking point instead of
// overshooting it. Floors at 1 MSS (the window cannot go lower anyway).
[[nodiscard]] std::int64_t suggest_cwnd_cap_bytes(int predicted_flows,
                                                  std::int64_t bdp_bytes,
                                                  std::int64_t ecn_threshold_bytes,
                                                  std::int64_t mss_bytes);

}  // namespace incast::core

#endif  // INCAST_CORE_PREDICTOR_H_
