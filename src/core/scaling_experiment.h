// IncastScalingExperiment: the 1 -> 8000-sender incast-degree curve.
//
// Reproduces the htsim incast_scaling sweep on a 432-host three-tier
// fat-tree (12 pods x 6 leaves x 6 hosts, 6 aggs/pod, 36 spines): N senders
// each push one fixed-size transfer (default 270 kB) to a single receiver,
// all starting at t=0. The headline series is FCT overhead versus incast
// degree — the completion time of the last flow, normalized by the optimal
// FCT (one base RTT plus the time the receiver's downlink needs to
// serialize every byte of the incast, headers included):
//
//   overhead% = (FCT / optimal - 1) * 100
//
// A perfectly scheduled transport holds the curve near zero at every
// degree; timeout-driven recovery makes it explode past the point where the
// aggregate burst overwhelms the bottleneck buffer (paper Section 4).
//
// The experiment doubles as the repo's memory-budget probe. Each point
// reports a deterministic bytes-per-flow decomposition of the dominant
// state at peak:
//
//   * flow_state_bytes  — the TcpConnection arena (sender + receiver state)
//   * packet_pool_bytes — peak pooled in-flight packets across every port
//   * routing_bytes     — flat route tables + ECMP flow tables, all switches
//   * event_bytes       — the event-kernel slab at its high-water mark
//
// These are sizeof-based counters, not RSS, so they are byte-identical at
// any --jobs value and feed the CSV; the process-wide peak RSS (which is
// not deterministic) rides along in SweepRunner::RunStats::peak_rss_bytes
// and the obs:: metrics snapshot instead.
//
// Every degree is an independent simulation on a SweepRunner; the CSV is
// byte-identical regardless of thread count.
#ifndef INCAST_CORE_SCALING_EXPERIMENT_H_
#define INCAST_CORE_SCALING_EXPERIMENT_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "fabric/fat_tree.h"
#include "obs/flow_trace.h"
#include "sim/auditor.h"
#include "sim/domain.h"
#include "sim/sweep.h"
#include "tcp/tcp_config.h"

namespace incast::obs {
class Hub;
}  // namespace incast::obs

namespace incast::core {

struct ScalingConfig {
  // Incast degrees to sweep, one simulation point each. The default ladder
  // spans the full htsim range; CI runs a {64, 512, 2000} subset.
  std::vector<int> degrees{1,   2,   4,    8,    16,   32,   64,  128,
                           256, 512, 1024, 2000, 4000, 8000};

  // The fabric. Defaults to the 432-host three-tier Clos the paper's
  // Section 3 fleet measurements come from. Senders are assigned round-robin
  // over every host except the receiver (slot 0 of the last leaf), so a
  // degree above num_hosts - 1 puts multiple flows on the same host — the
  // htsim convention for degrees past the host count.
  fabric::FatTreeConfig fabric{.num_pods = 12,
                               .leaves_per_pod = 6,
                               .hosts_per_leaf = 6,
                               .aggs_per_pod = 6,
                               .num_spines = 36};

  // Per-flow transfer size (htsim incast_scaling: 270000 bytes).
  std::int64_t bytes_per_flow{270'000};

  tcp::TcpConfig tcp{};

  // Safety stop for points where recovery stalls outright.
  sim::Time max_sim_time{sim::Time::seconds(120)};

  // Sweep execution (sim::SweepRunner): 1 = inline, <= 0 = all hardware
  // threads. Results are ordered by degree index regardless.
  int jobs{1};
  sim::SweepRunner::Policy sweep{};

  // Intra-run parallelism (conservative rack-domain decomposition, see
  // docs/PARALLELISM.md). 0 — the default — runs the legacy single-queue
  // engine, byte-identical to every release before the parallel engine
  // existed. N >= 1 runs the windowed domain engine with N domains; its
  // results are byte-identical at any N (domains=1 is the sequential
  // reference of that contract), but are a *different* deterministic
  // sequence than the legacy engine, whose equal-time tie-break is global
  // insertion order — an ordering no decomposition can reproduce.
  int domains{0};

  // Test hook: overrides the conservative lookahead derived from the
  // fabric (the minimum inter-domain propagation delay). Zero = derive.
  // Inflating it past the real link delay manufactures lookahead
  // violations, which is how the audit path is exercised.
  sim::Time lookahead_override{sim::Time::zero()};

  // Journal checkpoint/resume (core/task_journal.h). resume(index, out)
  // returns true and fills `out` when a prior run already completed this
  // point; on_result(index, seed, point) records a freshly computed one.
  std::function<bool(std::size_t, struct ScalingPoint&)> resume;
  std::function<void(std::size_t, std::uint64_t, const struct ScalingPoint&)> on_result;

  // Observability: only point 0 attaches the hub (worker threads must not
  // share it), so trace/metrics output is byte-identical at any --jobs.
  obs::Hub* hub{nullptr};

  sim::AuditMode audit_mode{sim::AuditMode::kRelaxed};
  sim::Auditor::Config audit{};

  // Tail autopsy (see IncastExperimentConfig::flow_trace). The sampling
  // hash uses the *base* seed, so the same flow ids are sampled at every
  // degree and attribution rows stay comparable along the ladder. At the
  // 8000-sender end, sample_every keeps the breakdown footprint bounded.
  bool flow_trace{false};
  std::uint64_t flow_trace_sample_every{1};

  // Base seed; each point derives its own via derive_task_seed and uses it
  // as the fabric's ECMP seed, so every degree sees an independent (but
  // reproducible) path-collision pattern.
  std::uint64_t seed{1};
};

// One incast-degree simulation outcome.
struct ScalingPoint {
  int degree{0};

  double fct_ms{0.0};       // completion time of the last flow
  double optimal_ms{0.0};   // base RTT + bottleneck serialization of all bytes
  double overhead_pct{0.0}; // (fct / optimal - 1) * 100
  int completed_flows{0};   // < degree when max_sim_time cut the point short

  std::int64_t timeouts{0};
  std::int64_t retransmits{0};
  std::int64_t queue_drops{0};

  // Deterministic memory decomposition at peak (see file comment).
  std::uint64_t flow_state_bytes{0};
  std::uint64_t packet_pool_bytes{0};
  std::uint64_t routing_bytes{0};
  std::uint64_t event_bytes{0};
  std::uint64_t bytes_per_flow{0};  // sum of the four, / degree

  std::uint64_t events_processed{0};
  std::uint64_t audit_violations{0};

  // Tail autopsy (empty unless flow_trace): p50/p99/p999 attribution rows.
  // Every underlying breakdown was conservation-checked by the auditor
  // before aggregation (audit_violations counts any failures).
  std::vector<obs::TailAttributionRow> fct_rows;
  std::uint64_t traced_flows{0};          // completed sampled flows
  std::uint64_t flow_trace_incomplete{0}; // cut by max_sim_time

  // INT hop-stamp overflows across all ports of this point's fabric.
  std::int64_t int_hop_overflows{0};

  // Parallel-engine execution diagnostics (all zero/empty on the legacy
  // engine). `windows` and `window_hist` are N-invariant; the rest describe
  // the decomposition / thread schedule (`packets_bridged` is 0 at
  // domains=1 and grows with the cut) and are deliberately excluded from
  // the determinism contract — which is why none of these appear in
  // scaling_csv (they print as a stdout footer instead).
  std::uint64_t parallel_domains{0};
  std::uint64_t windows{0};                      // conservative windows executed
  std::uint64_t packets_bridged{0};              // cross-domain mailbox handoffs
  std::uint64_t barrier_stall_ns{0};             // summed worker wait (wall)
  std::vector<std::uint64_t> events_per_domain;  // dispatch counts, domain order
  // log2-bucketed events-per-window histogram (bucket 0 = empty window).
  std::array<std::uint64_t, sim::kWindowHistBuckets> window_hist{};
};

struct ScalingReport {
  std::vector<ScalingPoint> points;  // degree order
  sim::SweepRunner::RunStats sweep;
};

// Runs one degree standalone (used by the sweep and by tests that pin a
// single point). `hub` may be nullptr.
[[nodiscard]] ScalingPoint run_scaling_point(const ScalingConfig& config, int degree,
                                             std::uint64_t seed, obs::Hub* hub);

// Runs the whole degree ladder. Deterministic: the same config (seed
// included) produces an identical report at any `jobs`.
[[nodiscard]] ScalingReport run_scaling_experiment(const ScalingConfig& config);

// One CSV row per point, fixed column order and formatting — the artifact
// the determinism suite byte-compares across --jobs values.
[[nodiscard]] std::string scaling_csv(const ScalingReport& report);

// fct_breakdown.csv over the ladder: one row per (degree, percentile), in
// degree order, mode label "scaling". Byte-identical at any --jobs value;
// degrees without traced flows are simply omitted.
[[nodiscard]] std::string scaling_fct_csv(const ScalingReport& report);

}  // namespace incast::core

#endif  // INCAST_CORE_SCALING_EXPERIMENT_H_
