// core::TaskJournal — crash-safe checkpoint/resume for sweep subcommands.
//
// A journal is an append-only JSONL file: a header line identifying the
// command and a fingerprint of its full configuration, then one record per
// finished sweep task. A killed run (crash, SIGINT, SIGTERM, OOM) leaves a
// valid journal — at worst one truncated trailing line, which the loader
// tolerates — and rerunning the same command with the same --journal path
// resumes by skipping every task already recorded, replaying its stored
// result instead. Because every simulation is deterministic in (config,
// seed), the merged output is byte-identical to an uninterrupted run.
//
//   header:  {"command":"fleet","fingerprint":"<u64>","journal":
//             "incast-task-journal","tasks":N,"version":1}
//   ok:      {"payload":{...},"seed":"<u64>","status":"ok","task":i}
//   fail:    {"attempts":k,"category":"audit","message":"...",
//             "status":"fail","task":i}
//
// Failed tasks are deliberately *not* treated as completed: a resume run
// retries them (transient failures — OOM, wall budgets on a loaded machine —
// are exactly what resume is for). Fingerprints cover every
// result-determining knob and exclude execution knobs (--jobs, --retries,
// --fail-fast, --journal, output paths), so changing parallelism between
// runs is fine while changing the experiment refuses loudly (core::Error,
// category kConfig) instead of merging incompatible results.
#ifndef INCAST_CORE_TASK_JOURNAL_H_
#define INCAST_CORE_TASK_JOURNAL_H_

#include <cstdint>
#include <cstdio>
#include <map>
#include <mutex>
#include <string>
#include <string_view>

#include "core/collateral_experiment.h"
#include "core/fleet_experiment.h"
#include "core/json.h"
#include "core/resilience_experiment.h"
#include "core/scaling_experiment.h"
#include "sim/sweep.h"

namespace incast::core {

// FNV-1a over bytes; the journal's config fingerprint hash.
[[nodiscard]] std::uint64_t fnv1a(std::string_view bytes) noexcept;

// Canonical config strings: every result-determining field in a fixed
// order, doubles via %.17g, times in integer nanoseconds. Execution knobs
// (jobs, hub, sweep policy, journal/export paths, test hooks) are excluded
// by design — see the header comment.
[[nodiscard]] std::string canonical_config(const FleetConfig& config);
[[nodiscard]] std::string canonical_config(const ResilienceConfig& config);
// scaling: `domains` enters only as engine=0|1 (legacy vs parallel) — the
// parallel engine is byte-identical at any N, so a journal written at
// --domains 8 resumes cleanly at --domains 2, while switching engines
// (whose equal-time tie-breaks differ) refuses like any config change.
[[nodiscard]] std::string canonical_config(const ScalingConfig& config);
[[nodiscard]] std::string canonical_config(const CollateralConfig& config);

struct JournalHeader {
  std::string command;           // "fleet" | "faults" | "chaos"
  std::uint64_t fingerprint{0};  // fnv1a(canonical_config(...))
  std::uint64_t tasks{0};        // sweep size, a cheap second fingerprint
};

class TaskJournal {
 public:
  TaskJournal() = default;
  ~TaskJournal();
  TaskJournal(const TaskJournal&) = delete;
  TaskJournal& operator=(const TaskJournal&) = delete;

  // Opens `path` for append, first loading any records a previous run left
  // behind. Throws core::Error — kConfig when the existing header does not
  // match `header` (different command, config, or sweep size), kIo when the
  // file exists but is unreadable/corrupt beyond a truncated final line, or
  // cannot be created.
  void open(const std::string& path, const JournalHeader& header);

  [[nodiscard]] bool active() const noexcept { return out_ != nullptr; }
  [[nodiscard]] const std::string& path() const noexcept { return path_; }

  // Completed (status "ok") tasks loaded at open().
  [[nodiscard]] std::size_t completed_count() const noexcept { return payloads_.size(); }
  [[nodiscard]] bool completed(std::size_t index) const noexcept;
  // The stored payload, or nullptr when the task is not completed.
  [[nodiscard]] const Json* payload(std::size_t index) const noexcept;

  // Append one record and flush (so a kill -9 right after loses nothing).
  // Thread-safe: sweep workers record from their own threads. record_ok on
  // an already-completed index is a no-op (a deliberately re-run task, e.g.
  // the observed cell, does not grow the journal on every resume).
  void record_ok(std::size_t index, std::uint64_t seed, const Json& payload);
  void record_failure(const sim::TaskFailure& failure);

 private:
  void append_line(const std::string& line);

  std::FILE* out_{nullptr};
  std::string path_;
  std::map<std::size_t, Json> payloads_;
  std::mutex mu_;
};

// Payload (de)serialization for the journaled subcommands. Payloads carry
// every field the CLI reports or aggregates; deliberately excluded are the
// bulky per-bin/per-sample series (bins, queue watermarks) — the one cell
// whose series the CLI exports (fleet cell 0; the faults baseline) is
// always re-run on resume, which reproduces them exactly.
[[nodiscard]] Json to_journal_payload(const HostTraceResult& result);
[[nodiscard]] HostTraceResult host_trace_from_payload(const Json& payload);

[[nodiscard]] Json to_journal_payload(const ResiliencePoint& point);
[[nodiscard]] ResiliencePoint resilience_point_from_payload(const Json& payload);

// Scaling/collateral payloads carry every CSV column plus the tail-autopsy
// percentile rows. The parallel-engine execution diagnostics (windows,
// per-domain event splits, barrier stalls) are deliberately not journaled:
// they describe how a run executed, not what it simulated, and a resumed
// point may legitimately run under a different --domains value.
[[nodiscard]] Json to_journal_payload(const ScalingPoint& point);
[[nodiscard]] ScalingPoint scaling_point_from_payload(const Json& payload);

[[nodiscard]] Json to_journal_payload(const CollateralPoint& point);
[[nodiscard]] CollateralPoint collateral_point_from_payload(const Json& payload);

}  // namespace incast::core

#endif  // INCAST_CORE_TASK_JOURNAL_H_
