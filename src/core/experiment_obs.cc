#include "core/experiment_obs.h"

#include <cstring>

#include <string>

#include "fault/fault_injector.h"
#include "net/queue.h"
#include "net/switch.h"
#include "obs/hub.h"
#include "sim/auditor.h"
#include "sim/simulator.h"

namespace incast::core {

ExperimentObserver::ExperimentObserver(obs::Hub* hub)
    : hub_{hub != nullptr && hub->enabled() ? hub : nullptr} {}

ExperimentObserver::~ExperimentObserver() {
  if (hub_ == nullptr) return;
  hub_->metrics().unregister_prefix("net.queue.");
  hub_->metrics().unregister_prefix("fault.injected.");
  hub_->metrics().unregister_prefix("core.incast.");
  hub_->metrics().unregister_prefix("sim.events.");
  hub_->metrics().unregister_prefix("sim.audit.");
  hub_->metrics().unregister_prefix("net.pfc.");
}

void ExperimentObserver::watch_simulator(const sim::Simulator& sim) {
  if (hub_ == nullptr) return;
  auto& m = hub_->metrics();
  m.register_counter("sim.events.processed", [&sim] {
    return static_cast<std::int64_t>(sim.events_processed());
  });
  m.register_counter("sim.events.peak_pending", [&sim] {
    return static_cast<std::int64_t>(sim.peak_events_pending());
  });
  m.register_counter("sim.events.slab_high_water", [&sim] {
    return static_cast<std::int64_t>(sim.slab_high_water());
  });
}

void ExperimentObserver::watch_queue(const std::string& link_name,
                                     const net::DropTailQueue& queue) {
  if (hub_ == nullptr) return;
  const std::string prefix = "net.queue." + link_name + ".";
  auto& m = hub_->metrics();
  m.register_counter(prefix + "drops", [&queue] { return queue.stats().dropped_packets; });
  m.register_counter(prefix + "ecn_marks",
                     [&queue] { return queue.stats().ecn_marked_packets; });
  m.register_counter(prefix + "enqueued",
                     [&queue] { return queue.stats().enqueued_packets; });
}

void ExperimentObserver::watch_faults(const fault::FaultInjector& injector) {
  if (hub_ == nullptr) return;
  auto& m = hub_->metrics();
  m.register_counter("fault.injected.drops",
                     [&injector] { return injector.total().injected_drops(); });
  m.register_counter("fault.injected.corrupt_bytes",
                     [&injector] { return injector.total().corrupted_bytes; });
  m.register_counter("fault.injected.corruptions",
                     [&injector] { return injector.total().corrupted; });
  m.register_counter("fault.injected.duplicates",
                     [&injector] { return injector.total().duplicated; });
  m.register_counter("fault.injected.reorders",
                     [&injector] { return injector.total().reordered; });
}

void ExperimentObserver::watch_pfc(const std::string& name, const net::Switch& sw) {
  if (hub_ == nullptr || sw.num_viqs() == 0) return;
  const std::string prefix = "net.pfc." + name + ".";
  auto& m = hub_->metrics();
  m.register_counter(prefix + "pause_frames", [&sw] {
    std::int64_t total = 0;
    for (std::size_t i = 0; i < sw.num_viqs(); ++i) {
      if (const auto* viq = sw.viq(i)) total += viq->stats().pause_frames;
    }
    return total;
  });
  m.register_counter(prefix + "resume_frames", [&sw] {
    std::int64_t total = 0;
    for (std::size_t i = 0; i < sw.num_viqs(); ++i) {
      if (const auto* viq = sw.viq(i)) total += viq->stats().resume_frames;
    }
    return total;
  });
  m.register_counter(prefix + "overflow_drops", [&sw] {
    std::int64_t total = 0;
    for (std::size_t i = 0; i < sw.num_viqs(); ++i) {
      if (const auto* viq = sw.viq(i)) total += viq->stats().overflow_dropped_packets;
    }
    return total;
  });
  m.register_counter(prefix + "paused_ns", [&sw] {
    std::int64_t total = 0;
    for (std::size_t i = 0; i < sw.num_ports(); ++i) {
      total += sw.port(i).paused_ns();
    }
    return total;
  });
}

void ExperimentObserver::watch_auditor(sim::Auditor& auditor, const sim::Simulator& sim) {
  if (hub_ == nullptr) return;
  auto& m = hub_->metrics();
  m.register_counter("sim.audit.violations", [&auditor] {
    return static_cast<std::int64_t>(auditor.total_violations());
  });
  for (std::size_t i = 0; i < sim::kNumAuditInvariants; ++i) {
    const auto inv = static_cast<sim::AuditInvariant>(i);
    m.register_counter(std::string{"sim.audit.violations."} + sim::to_string(inv),
                       [&auditor, inv] {
                         return static_cast<std::int64_t>(auditor.violations(inv));
                       });
  }
  m.register_counter("sim.audit.injected_bytes",
                     [&auditor] { return auditor.injected_bytes(); });
  m.register_counter("sim.audit.delivered_bytes",
                     [&auditor] { return auditor.delivered_bytes(); });
  m.register_counter("sim.audit.dropped_bytes",
                     [&auditor] { return auditor.dropped_bytes(); });
  m.register_counter("sim.audit.trimmed_bytes",
                     [&auditor] { return auditor.trimmed_bytes(); });
  m.register_counter("sim.audit.control_injected_bytes",
                     [&auditor] { return auditor.control_injected_bytes(); });
  m.register_counter("sim.audit.control_consumed_bytes",
                     [&auditor] { return auditor.control_consumed_bytes(); });

  // Violations are exactly the anomalies the flight recorder exists for:
  // dump the ring on every one, strict or relaxed. The sink runs before
  // strict mode throws, so the dump always lands.
  obs::Hub* hub = hub_;
  auditor.set_violation_sink([hub, &sim](const sim::Auditor::Violation& v) {
    hub->recorder().force_dump(sim.now().ns(),
                               std::string{"audit:"} + sim::to_string(v.invariant) +
                                   ": " + v.detail);
  });
}

void ExperimentObserver::finish(std::int64_t at_ns, const std::vector<double>& bct_ms,
                                const char* mode) {
  if (hub_ == nullptr) return;
  if (!bct_ms.empty()) {
    obs::Histogram& h = hub_->metrics().register_histogram(
        "core.incast.bct_ms",
        {1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0, 1000.0});
    for (const double v : bct_ms) h.record(v);
  }
  if (mode != nullptr && std::strcmp(mode, "safe") != 0) {
    hub_->notify_mode_shift(at_ns, "safe", mode);
  }
  hub_->capture_metrics(at_ns);
}

}  // namespace incast::core
