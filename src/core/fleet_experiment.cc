#include "core/fleet_experiment.h"

#include <algorithm>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>

#include "core/experiment_obs.h"
#include "net/topology.h"
#include "obs/hub.h"
#include "telemetry/queue_monitor.h"
#include "workload/fleet_traffic.h"

namespace incast::core {

std::uint64_t FleetExperiment::trace_seed(int host, int snapshot) const noexcept {
  // Fold the service name into the base (different services must diverge
  // even at the same base_seed), then splitmix64-derive by grid-cell index.
  // The derivation depends only on (base, cell index), so a trace's seed is
  // the same whether it runs alone, sequentially, or on any thread of a
  // parallel sweep.
  std::uint64_t base = config_.base_seed;
  for (const char c : config_.profile.name) {
    base = base * 0x100000001b3ULL + static_cast<std::uint64_t>(c);
  }
  const auto index = static_cast<std::uint64_t>(snapshot) *
                         static_cast<std::uint64_t>(config_.num_hosts) +
                     static_cast<std::uint64_t>(host);
  return sim::derive_task_seed(base, index);
}

HostTraceResult FleetExperiment::run_host_trace(int host, int snapshot) const {
  sim::Simulator sim;
  // The hub observes exactly one deterministic cell of the sweep grid, so
  // trace/metrics output is independent of --jobs. Attached before any
  // component is built (senders cache the hub pointer in their ctors).
  if (config_.hub != nullptr && host == 0 && snapshot == 0) sim.set_hub(config_.hub);
  if (config_.profile_event_loop) sim.set_profiling(true);

#if INCAST_AUDIT_ENABLED
  std::optional<sim::Auditor> auditor;
  if (config_.audit_mode != sim::AuditMode::kOff) {
    sim::Auditor::Config acfg = config_.audit;
    acfg.strict = config_.audit_mode == sim::AuditMode::kStrict;
    auditor.emplace(acfg);
    sim.set_auditor(&*auditor);
  }
#endif
  const workload::ServiceProfile& profile = config_.profile;
  // Capacity hint: the generator keeps at most max_flows concurrent flows
  // (hosts x flows in the sweep sense), each with timers and in-flight data.
  sim.reserve_events(static_cast<std::size_t>(std::max(profile.max_flows, 1)) * 8 + 2048);

  const bool neighbor = config_.contention_mode == FleetConfig::ContentionMode::kNeighbor;

  net::DumbbellConfig topo;
  topo.num_senders = profile.max_flows;
  topo.num_receivers = neighbor ? 2 : 1;
  topo.host_link = config_.nic_rate;
  topo.switch_queue.capacity_packets = config_.queue_capacity_packets;
  topo.switch_queue.ecn_threshold_packets = std::max<std::int64_t>(
      static_cast<std::int64_t>(config_.ecn_threshold_fraction *
                                static_cast<double>(config_.queue_capacity_packets)),
      1);
  // alpha = 2: a lone queue may take up to 2/3 of the pool (~1333 packets),
  // but a rack neighbor's usage squeezes that cap hard — which is how
  // contention turns p99 incasts into the paper's rare loss events.
  topo.shared_buffer = net::SharedBufferPool::Config{config_.shared_pool_bytes, 2.0};
  net::Dumbbell dumbbell{sim, topo};

  const std::uint64_t seed = trace_seed(host, snapshot);

  workload::FleetTrafficGen::Config gen_cfg;
  gen_cfg.profile = profile;
  gen_cfg.alt_regime = profile.alt_median_flows > 0.0 &&
                       (snapshot / std::max(config_.regime_block_snapshots, 1)) % 2 == 1;
  gen_cfg.host_factor = workload::host_factor(profile, host);
  workload::FleetTrafficGen gen{sim, dumbbell, config_.tcp, gen_cfg, seed};

  telemetry::Millisampler sampler{{sim::Time::milliseconds(1), config_.nic_rate}};
  dumbbell.receiver(0).add_ingress_tap(&sampler);

  ExperimentObserver observer{INCAST_OBS_HUB(sim)};
  const std::string bottleneck_link = "tor_r->" + dumbbell.receiver(0).name();
  if (observer.active()) {
    dumbbell.link(bottleneck_link).set_trace_label(bottleneck_link);
    observer.watch_queue(bottleneck_link, dumbbell.bottleneck_queue());
    observer.watch_simulator(sim);
#if INCAST_AUDIT_ENABLED
    if (auditor) observer.watch_auditor(*auditor, sim);
#endif
  }

  telemetry::QueueMonitor::Config qcfg;
  qcfg.sample_every = sim::Time::zero();
  qcfg.watermark_window = sim::Time::milliseconds(1);
  if (observer.active()) qcfg.trace_label = bottleneck_link;
  telemetry::QueueMonitor qmon{sim, dumbbell.bottleneck_queue(), qcfg};

  // Rack-level contention: either the cheap modeled pool pressure, or a
  // real neighbor receiver running the same service on this rack.
  std::unique_ptr<workload::RackContention> contention;
  std::unique_ptr<workload::FleetTrafficGen> neighbor_gen;
  if (config_.contention_mode == FleetConfig::ContentionMode::kModeled) {
    contention = std::make_unique<workload::RackContention>(
        sim, *dumbbell.receiver_tor().shared_buffer(), config_.contention, seed ^ 0xC0117E17);
  } else if (neighbor) {
    workload::FleetTrafficGen::Config ncfg;
    ncfg.profile = profile;
    ncfg.alt_regime = gen_cfg.alt_regime;
    // A different (deterministic) host of the same service.
    ncfg.host_factor = workload::host_factor(profile, host + 1000);
    ncfg.receiver_index = 1;
    ncfg.flow_id_base = static_cast<net::FlowId>(profile.max_flows) + 1;
    neighbor_gen = std::make_unique<workload::FleetTrafficGen>(sim, dumbbell, config_.tcp,
                                                               ncfg, seed ^ 0x4E1687B0);
  }

  const sim::Time until = config_.trace_duration;
  qmon.start(until);
  if (contention) contention->start(until);
  if (neighbor_gen) neighbor_gen->start(until);
  gen.start(until);

  // Let in-flight bursts drain a little past the trace end so their packets
  // are not lost to the accounting, but close the sampler exactly at the
  // trace boundary as the production tool does.
  sim.run_until(until + sim::Time::milliseconds(50));
  sampler.finalize(until);
  net::check_no_unrouted(dumbbell.switches());
#if INCAST_AUDIT_ENABLED
  if (auditor) auditor->check_conservation(dumbbell.residual_buffered_bytes());
#endif

  HostTraceResult result;
#if INCAST_AUDIT_ENABLED
  if (auditor) result.audit_violations = auditor->total_violations();
#endif
  result.host = host;
  result.snapshot = snapshot;
  result.alt_regime = gen_cfg.alt_regime;
  result.avg_utilization = sampler.average_utilization();
  result.queue_drops = dumbbell.bottleneck_queue().stats().dropped_packets;
  result.generated_bursts = static_cast<std::int64_t>(gen.burst_log().size());

  const analysis::BurstDetector detector{config_.detector};
  result.summary.trace_seconds = config_.trace_duration.sec();
  result.summary.bursts = detector.detect(sampler, qmon.watermarks());

  result.queue_watermarks = qmon.watermarks();
  if (keep_bins_) {
    result.bins = sampler.bins();
  }
  result.events_processed = sim.events_processed();
  result.events_by_category = sim.events_by_category();
  result.wall_ns_by_category = sim.wall_ns_by_category();
  result.peak_events_pending = sim.peak_events_pending();
  result.slab_high_water = sim.slab_high_water();

  // Snapshot the registry while the traffic generator's senders are alive.
  if (observer.active()) observer.finish(sim.now().ns(), {}, "safe");
  return result;
}

std::vector<HostTraceResult> FleetExperiment::run_all() const {
  const auto n = static_cast<std::size_t>(config_.num_hosts) *
                 static_cast<std::size_t>(config_.num_snapshots);
  sim::SweepRunner runner{config_.jobs};
  sim::SweepRunner::Policy policy = config_.sweep;
  if (!policy.seed_of) {
    policy.seed_of = [this](std::size_t index) {
      const int snapshot = static_cast<int>(index) / config_.num_hosts;
      const int host = static_cast<int>(index) % config_.num_hosts;
      return trace_seed(host, snapshot);
    };
  }
  runner.set_policy(std::move(policy));
  auto results = runner.run<HostTraceResult>(
      n, [this](std::size_t index, sim::SweepRunner::TaskStats& stats) {
        const int snapshot = static_cast<int>(index) / config_.num_hosts;
        const int host = static_cast<int>(index) % config_.num_hosts;
        if (config_.resume) {
          HostTraceResult cached;
          if (config_.resume(index, cached)) {
            stats.events = cached.events_processed;
            stats.events_by_category = cached.events_by_category;
            stats.peak_events_pending = cached.peak_events_pending;
            stats.slab_high_water = cached.slab_high_water;
            return cached;
          }
        }
        if (static_cast<int>(index) == config_.fail_cell_for_test) {
          throw std::runtime_error{"forced failure (fail_cell_for_test) at cell " +
                                   std::to_string(index)};
        }
        HostTraceResult r = run_host_trace(host, snapshot);
        stats.events = r.events_processed;
        stats.events_by_category = r.events_by_category;
        stats.peak_events_pending = r.peak_events_pending;
        stats.slab_high_water = r.slab_high_water;
        if (config_.on_result) config_.on_result(index, trace_seed(host, snapshot), r);
        return r;
      });
  last_sweep_ = runner.last_run();
  return results;
}

}  // namespace incast::core
