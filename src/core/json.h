// core::Json — a minimal JSON value for the task journal and metrics-style
// outputs. Deliberately tiny: objects are sorted maps (so serialization is
// deterministic), numbers are either int64 or double (doubles round-trip
// via %.17g), and there is no Unicode transcoding beyond \uXXXX pass-through
// of the escapes we emit. This is a journal format we both write and read —
// not a general-purpose JSON library.
#ifndef INCAST_CORE_JSON_H_
#define INCAST_CORE_JSON_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

namespace incast::core {

class Json {
 public:
  using Array = std::vector<Json>;
  using Object = std::map<std::string, Json>;

  Json() noexcept : value_{nullptr} {}
  Json(std::nullptr_t) noexcept : value_{nullptr} {}
  Json(bool b) noexcept : value_{b} {}
  Json(std::int64_t i) noexcept : value_{i} {}
  Json(int i) noexcept : value_{static_cast<std::int64_t>(i)} {}
  Json(std::uint64_t u) : value_{static_cast<std::int64_t>(u)} {}
  Json(double d) noexcept : value_{d} {}
  Json(std::string s) : value_{std::move(s)} {}
  Json(const char* s) : value_{std::string{s}} {}
  Json(Array a) : value_{std::move(a)} {}
  Json(Object o) : value_{std::move(o)} {}

  [[nodiscard]] bool is_null() const noexcept {
    return std::holds_alternative<std::nullptr_t>(value_);
  }
  [[nodiscard]] bool is_bool() const noexcept { return std::holds_alternative<bool>(value_); }
  [[nodiscard]] bool is_int() const noexcept {
    return std::holds_alternative<std::int64_t>(value_);
  }
  [[nodiscard]] bool is_double() const noexcept {
    return std::holds_alternative<double>(value_);
  }
  [[nodiscard]] bool is_number() const noexcept { return is_int() || is_double(); }
  [[nodiscard]] bool is_string() const noexcept {
    return std::holds_alternative<std::string>(value_);
  }
  [[nodiscard]] bool is_array() const noexcept { return std::holds_alternative<Array>(value_); }
  [[nodiscard]] bool is_object() const noexcept {
    return std::holds_alternative<Object>(value_);
  }

  // Checked accessors: throw std::runtime_error on a type mismatch (the
  // journal loader catches and reports a malformed record).
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] std::int64_t as_int() const;    // accepts an integral double
  [[nodiscard]] double as_double() const;       // accepts an int
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const Array& as_array() const;
  [[nodiscard]] const Object& as_object() const;

  // Object field lookup; throws when this is not an object or the key is
  // absent. `find` is the non-throwing variant (nullptr when absent).
  [[nodiscard]] const Json& at(const std::string& key) const;
  [[nodiscard]] const Json* find(const std::string& key) const noexcept;

  // Compact single-line serialization (the journal is one JSON value per
  // line, so the output never contains a raw newline).
  [[nodiscard]] std::string dump() const;

  // Parses exactly one JSON value (surrounding whitespace allowed; trailing
  // garbage is an error). Throws std::runtime_error with a byte offset.
  [[nodiscard]] static Json parse(std::string_view text);

 private:
  std::variant<std::nullptr_t, bool, std::int64_t, double, std::string, Array, Object> value_;
};

}  // namespace incast::core

#endif  // INCAST_CORE_JSON_H_
