#include "core/resilience_experiment.h"

#include <algorithm>

namespace incast::core {

const char* to_string(DctcpMode m) noexcept {
  switch (m) {
    case DctcpMode::kSafe: return "safe";
    case DctcpMode::kDegenerate: return "degenerate";
    case DctcpMode::kCollapse: return "collapse";
  }
  return "unknown";
}

DctcpMode classify_mode(std::int64_t timeouts, double marked_fraction) noexcept {
  // Collapse is defined by its recovery mechanism, not its cause: once RTOs
  // carry recovery, completion time is governed by min_rto regardless of
  // whether the loss was congestion or injected.
  if (timeouts > 0) return DctcpMode::kCollapse;
  // The degenerate point's signature is a standing queue above the marking
  // threshold: essentially every packet is CE-marked.
  if (marked_fraction > 0.8) return DctcpMode::kDegenerate;
  return DctcpMode::kSafe;
}

DctcpMode classify_mode(const IncastExperimentResult& result) {
  return classify_mode(result.timeouts, result.marked_fraction());
}

namespace {

double relative_goodput(const IncastExperimentResult& baseline,
                        const IncastExperimentResult& point) {
  if (baseline.avg_bct_ms <= 0.0 || point.avg_bct_ms <= 0.0) return 0.0;
  return baseline.avg_bct_ms / point.avg_bct_ms;
}

double recovery_after_flap_ms(const IncastExperimentResult& result, sim::Time flap_end) {
  // The burst in flight when the link came back: its remaining completion
  // time is the recovery cost of the flap.
  for (const auto& b : result.bursts) {
    if (b.started <= flap_end && b.completed >= flap_end) {
      return (b.completed - flap_end).ms();
    }
  }
  return 0.0;
}

}  // namespace

ResilienceReport run_resilience_experiment(const ResilienceConfig& config) {
  ResilienceReport report;

  IncastExperimentConfig baseline_cfg = config.base;
  baseline_cfg.faults = FaultProfile{};
  report.baseline = run_incast_experiment(baseline_cfg);
  report.baseline_mode = classify_mode(report.baseline);

  for (const double drop_rate : config.drop_rates) {
    IncastExperimentConfig cfg = config.base;
    cfg.faults = FaultProfile{};
    cfg.faults.forward = config.fault_template;
    cfg.faults.forward.drop_rate = drop_rate;

    ResiliencePoint point;
    point.drop_rate = drop_rate;
    point.result = run_incast_experiment(cfg);
    point.goodput_rel = relative_goodput(report.baseline, point.result);
    point.mode = classify_mode(point.result);
    report.points.push_back(std::move(point));
  }

  for (const sim::Time duration : config.flap_durations) {
    IncastExperimentConfig cfg = config.base;
    cfg.faults = FaultProfile{};
    if (duration > sim::Time::zero()) {
      cfg.faults.flaps.push_back(fault::FlapWindow{config.flap_at, duration});
    }

    ResiliencePoint point;
    point.flap_duration = duration;
    point.result = run_incast_experiment(cfg);
    point.goodput_rel = relative_goodput(report.baseline, point.result);
    point.recovery_after_flap_ms =
        duration > sim::Time::zero()
            ? recovery_after_flap_ms(point.result, config.flap_at + duration)
            : 0.0;
    point.mode = classify_mode(point.result);
    report.points.push_back(std::move(point));
  }

  return report;
}

}  // namespace incast::core
