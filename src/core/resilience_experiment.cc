#include "core/resilience_experiment.h"

#include <algorithm>

namespace incast::core {

const char* to_string(DctcpMode m) noexcept {
  switch (m) {
    case DctcpMode::kSafe: return "safe";
    case DctcpMode::kDegenerate: return "degenerate";
    case DctcpMode::kCollapse: return "collapse";
  }
  return "unknown";
}

DctcpMode classify_mode(std::int64_t timeouts, double marked_fraction) noexcept {
  // Collapse is defined by its recovery mechanism, not its cause: once RTOs
  // carry recovery, completion time is governed by min_rto regardless of
  // whether the loss was congestion or injected.
  if (timeouts > 0) return DctcpMode::kCollapse;
  // The degenerate point's signature is a standing queue above the marking
  // threshold: essentially every packet is CE-marked.
  if (marked_fraction > 0.8) return DctcpMode::kDegenerate;
  return DctcpMode::kSafe;
}

DctcpMode classify_mode(const IncastExperimentResult& result) {
  return classify_mode(result.timeouts, result.marked_fraction());
}

namespace {

double relative_goodput(const IncastExperimentResult& baseline,
                        const IncastExperimentResult& point) {
  if (baseline.avg_bct_ms <= 0.0 || point.avg_bct_ms <= 0.0) return 0.0;
  return baseline.avg_bct_ms / point.avg_bct_ms;
}

double recovery_after_flap_ms(const IncastExperimentResult& result, sim::Time flap_end) {
  // The burst in flight when the link came back: its remaining completion
  // time is the recovery cost of the flap.
  for (const auto& b : result.bursts) {
    if (b.started <= flap_end && b.completed >= flap_end) {
      return (b.completed - flap_end).ms();
    }
  }
  return 0.0;
}

}  // namespace

ResilienceReport run_resilience_experiment(const ResilienceConfig& config) {
  ResilienceReport report;

  IncastExperimentConfig baseline_cfg = config.base;
  baseline_cfg.faults = FaultProfile{};
  report.baseline = run_incast_experiment(baseline_cfg);
  report.baseline_mode = classify_mode(report.baseline);

  // Materialize every sweep point's config up front (drop-rate axis first,
  // then flaps — the historical report order), then run them as independent
  // tasks. Each point deliberately reuses the base seed: the sweep isolates
  // the effect of the fault profile, not seed variance.
  std::vector<ResiliencePoint> skeletons;
  for (const double drop_rate : config.drop_rates) {
    ResiliencePoint point;
    point.drop_rate = drop_rate;
    skeletons.push_back(point);
  }
  for (const sim::Time duration : config.flap_durations) {
    ResiliencePoint point;
    point.flap_duration = duration;
    skeletons.push_back(point);
  }

  sim::SweepRunner runner{config.jobs};
  sim::SweepRunner::Policy policy = config.sweep;
  if (!policy.seed_of) {
    policy.seed_of = [seed = config.base.seed](std::size_t) { return seed; };
  }
  runner.set_policy(std::move(policy));
  report.points = runner.run<ResiliencePoint>(
      skeletons.size(), [&](std::size_t index, sim::SweepRunner::TaskStats& stats) {
        ResiliencePoint point = skeletons[index];
        if (config.resume && config.resume(index, point)) {
          stats.events = point.result.events_processed;
          stats.events_by_category = point.result.events_by_category;
          stats.peak_events_pending = point.result.peak_events_pending;
          stats.slab_high_water = point.result.slab_high_water;
          return point;
        }
        IncastExperimentConfig cfg = config.base;
        cfg.faults = FaultProfile{};
        // Only the baseline is observed: sweep points run concurrently and
        // may not share the (single-threaded) hub; nulling it also keeps
        // the report identical for every jobs value.
        cfg.hub = nullptr;
        if (index < config.drop_rates.size()) {
          cfg.faults.forward = config.fault_template;
          cfg.faults.forward.drop_rate = point.drop_rate;
        } else if (point.flap_duration > sim::Time::zero()) {
          cfg.faults.flaps.push_back(
              fault::FlapWindow{config.flap_at, point.flap_duration});
        }

        point.result = run_incast_experiment(cfg);
        stats.events = point.result.events_processed;
        stats.events_by_category = point.result.events_by_category;
        stats.peak_events_pending = point.result.peak_events_pending;
        stats.slab_high_water = point.result.slab_high_water;
        point.goodput_rel = relative_goodput(report.baseline, point.result);
        if (point.flap_duration > sim::Time::zero()) {
          point.recovery_after_flap_ms = recovery_after_flap_ms(
              point.result, config.flap_at + point.flap_duration);
        }
        point.mode = classify_mode(point.result);
        if (config.on_result) config.on_result(index, config.base.seed, point);
        return point;
      });
  report.sweep = runner.last_run();

  return report;
}

}  // namespace incast::core
