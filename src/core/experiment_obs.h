// ExperimentObserver: the experiment-scope half of the observability spine.
//
// Components (senders, queues, fault hooks) register their own metrics when
// a hub is attached to the simulator; this class adds the run-level pieces
// an experiment owns — bottleneck-queue counters under the LinkDirectory
// link name, fault-injection totals, the burst-completion-time histogram,
// and the end-of-run metrics snapshot — and unregisters them on scope exit
// so a hub can be reused across runs.
//
// Constructed from the simulator's hub pointer; with no hub (or a disabled
// one) every method is a no-op and the experiment runs exactly as before.
#ifndef INCAST_CORE_EXPERIMENT_OBS_H_
#define INCAST_CORE_EXPERIMENT_OBS_H_

#include <cstdint>
#include <string>
#include <vector>

namespace incast::net {
class DropTailQueue;
class Switch;
}  // namespace incast::net

namespace incast::fault {
class FaultInjector;
}  // namespace incast::fault

namespace incast::obs {
class Hub;
}  // namespace incast::obs

namespace incast::sim {
class Auditor;
class Simulator;
}  // namespace incast::sim

namespace incast::core {

class ExperimentObserver {
 public:
  explicit ExperimentObserver(obs::Hub* hub);
  ~ExperimentObserver();

  ExperimentObserver(const ExperimentObserver&) = delete;
  ExperimentObserver& operator=(const ExperimentObserver&) = delete;

  [[nodiscard]] bool active() const noexcept { return hub_ != nullptr; }
  [[nodiscard]] obs::Hub* hub() const noexcept { return hub_; }

  // Registers net.queue.<link_name>.{drops,ecn_marks,enqueued} pull sources
  // reading `queue`'s cumulative stats. The queue must outlive this object.
  void watch_queue(const std::string& link_name, const net::DropTailQueue& queue);

  // Registers sim.events.{processed,peak_pending,slab_high_water} pull
  // sources reading the event kernel's dispatch count and memory footprint.
  // The simulator must outlive this object.
  void watch_simulator(const sim::Simulator& sim);

  // Registers fault.injected.{drops,corrupt_bytes,corruptions,duplicates,
  // reorders} totals across every installed link fault. The injector must
  // outlive this object.
  void watch_faults(const fault::FaultInjector& injector);

  // Registers net.pfc.<name>.{pause_frames,resume_frames,overflow_drops,
  // paused_ns} pull sources summing the switch's VIQ counters (pauses this
  // switch *sent*) and its egress ports' paused time (pauses it *obeyed*).
  // No-op for a switch without PFC enabled. The switch must outlive this
  // object.
  void watch_pfc(const std::string& name, const net::Switch& sw);

  // Registers sim.audit.{violations,violations.<invariant>,injected_bytes,
  // delivered_bytes,dropped_bytes,trimmed_bytes,control_injected_bytes,
  // control_consumed_bytes} pull sources reading the run-hardening
  // auditor's counters, and routes every violation into the flight recorder
  // as a forced dump (relaxed mode included — a violation is exactly the
  // anomaly the recorder exists for). The auditor must outlive this object.
  void watch_auditor(sim::Auditor& auditor, const sim::Simulator& sim);

  // End-of-run bookkeeping, called while every metric source is still
  // alive: records measured burst completion times into the
  // core.incast.bct_ms histogram (skipped when empty), reports a non-"safe"
  // goodput-mode classification as a mode shift (which can trip the flight
  // recorder), and snapshots the whole registry into the hub.
  void finish(std::int64_t at_ns, const std::vector<double>& bct_ms, const char* mode);

 private:
  obs::Hub* hub_{nullptr};
};

}  // namespace incast::core

#endif  // INCAST_CORE_EXPERIMENT_OBS_H_
