#include "core/collateral_experiment.h"

#include <algorithm>
#include <cstdio>
#include <memory>
#include <optional>

#include "core/experiment_obs.h"
#include "obs/hub.h"
#include "rdt/credit_incast.h"
#include "workload/cyclic_incast.h"

namespace incast::core {

namespace {

// The victim's flow id. Its endpoints are dedicated hosts, so collision
// with the incast's per-host flow ids is impossible; a distinctive value
// keeps it recognizable in traces and audit messages.
constexpr net::FlowId kVictimFlow = 999'999;

// Effectively-infinite application stream for the victim: it must still be
// sending when the last incast burst completes.
constexpr std::int64_t kVictimStreamBytes = 1'000'000'000'000;

// Shapes the dumbbell for one queue mode. Sender `degree` is the victim,
// receivers are {0: incast sink, 1: victim sink} — the rdt credit driver is
// hardwired to receiver 0, so the incast keeps that slot in every mode.
net::DumbbellConfig make_topology(const CollateralConfig& config, QueueMode mode,
                                  int degree) {
  net::DumbbellConfig topo = config.topology;
  topo.num_senders = degree + 1;
  topo.num_receivers = 2;
  topo.switch_queue.ecn_threshold_packets = config.ecn_threshold_packets;
  topo.switch_queue.discipline = net::QueueDiscipline::kDropTail;
  topo.pfc.reset();
  topo.shared_buffer.reset();
  // The receiver ToR's dynamically shared buffer is what turns an incast
  // into collateral damage for drop-tail (paper Sections 3.4, 4.1.1): the
  // burst-onset overshoot exhausts the pool and the victim's egress queue
  // is refused memory. Trimming charges only data packets (headers always
  // survive), credit pacing never fills it, so the same pool tells all
  // three stories. PFC keeps dedicated deep buffers instead — lossless
  // headroom is provisioned, not pooled, and its failure mode is the pause
  // congestion tree rather than buffer theft.
  if (mode != QueueMode::kPfc && config.shared_buffer_bytes > 0) {
    topo.shared_buffer = net::SharedBufferPool::Config{
        .total_bytes = config.shared_buffer_bytes, .alpha = config.shared_buffer_alpha};
  }
  switch (mode) {
    case QueueMode::kDropTail:
    case QueueMode::kCredit:
      topo.switch_queue.capacity_packets = config.queue_capacity_packets;
      break;
    case QueueMode::kPfc:
      topo.switch_queue.capacity_packets = config.pfc_queue_capacity_packets;
      topo.pfc = config.pfc;
      break;
    case QueueMode::kTrim:
      topo.switch_queue.capacity_packets = config.trim_queue_capacity_packets;
      topo.switch_queue.discipline = net::QueueDiscipline::kTrimming;
      break;
  }
  return topo;
}

// Polls an rdt credit incast for completion (it exposes no callback).
struct CreditFinishPoller {
  sim::Simulator* sim{nullptr};
  rdt::CreditIncastDriver* driver{nullptr};

  void arm() {
    sim->schedule_in(sim::Time::milliseconds(1),
                     [this] {
                       if (driver->finished()) {
                         sim->stop();
                       } else {
                         arm();
                       }
                     },
                     sim::EventCategory::kWorkload);
  }
};

template <typename Records>
void burst_aggregates(const Records& records, CollateralPoint& point) {
  if (records.empty()) return;
  double total = 0.0;
  for (const auto& b : records) {
    const double bct = b.completion_time().ms();
    total += bct;
    point.incast_max_bct_ms = std::max(point.incast_max_bct_ms, bct);
  }
  point.incast_avg_bct_ms = total / static_cast<double>(records.size());
}

void collect_fabric_counters(net::Dumbbell& dumbbell, CollateralPoint& point) {
  for (net::Switch* sw : dumbbell.switches()) {
    for (std::size_t i = 0; i < sw->num_ports(); ++i) {
      const auto& qs = sw->port(i).queue().stats();
      point.queue_drops += qs.dropped_packets;
      point.trimmed_packets += qs.trimmed_packets;
      point.trimmed_bytes += qs.trimmed_bytes;
    }
    for (std::size_t i = 0; i < sw->num_viqs(); ++i) {
      const net::LosslessInputQueue* viq = sw->viq(i);
      if (viq == nullptr) continue;
      point.pfc_pause_frames += viq->stats().pause_frames;
      point.pfc_resume_frames += viq->stats().resume_frames;
      point.pfc_overflow_drops += viq->stats().overflow_dropped_packets;
    }
  }
}

}  // namespace

const char* to_string(QueueMode mode) noexcept {
  switch (mode) {
    case QueueMode::kDropTail:
      return "droptail";
    case QueueMode::kPfc:
      return "pfc";
    case QueueMode::kTrim:
      return "trim";
    case QueueMode::kCredit:
      return "credit";
  }
  return "unknown";
}

bool parse_queue_mode(const std::string& name, QueueMode& out) noexcept {
  if (name == "droptail") {
    out = QueueMode::kDropTail;
  } else if (name == "pfc") {
    out = QueueMode::kPfc;
  } else if (name == "trim") {
    out = QueueMode::kTrim;
  } else if (name == "credit") {
    out = QueueMode::kCredit;
  } else {
    return false;
  }
  return true;
}

CollateralPoint run_collateral_point(const CollateralConfig& config, QueueMode mode,
                                     int degree, std::uint64_t seed, obs::Hub* hub) {
  CollateralPoint point;
  point.mode = mode;
  point.degree = degree;

  sim::Simulator sim;
  if (hub != nullptr) sim.set_hub(hub);

#if INCAST_AUDIT_ENABLED
  std::optional<sim::Auditor> auditor;
  if (config.audit_mode != sim::AuditMode::kOff) {
    sim::Auditor::Config acfg = config.audit;
    acfg.strict = config.audit_mode == sim::AuditMode::kStrict;
    auditor.emplace(acfg);
    sim.set_auditor(&*auditor);
  }
#endif
  // Tail autopsy: attached before topology/sender construction. Seeded
  // with the *base* config seed (not the per-point derived seed) so every
  // grid point samples the same flow ids.
  std::optional<obs::FlowTracer> flow_tracer;
  if (config.flow_trace) {
    flow_tracer.emplace(
        obs::FlowTracer::Config{config.seed, config.flow_trace_sample_every}, hub);
    sim.set_flow_tracer(&*flow_tracer);
  }
  sim.reserve_events(static_cast<std::size_t>(degree) * 8 + 4096);

  net::Dumbbell dumbbell{sim, make_topology(config, mode, degree)};

  tcp::TcpConfig tcp = config.tcp;
  tcp.cc = mode == QueueMode::kPfc ? config.pfc_cc : config.tcp.cc;
  tcp.int_telemetry = tcp.cc == tcp::CcAlgorithm::kHpcc;

  // The victim: one persistent flow, victim host -> receiver 1, running the
  // same CCA as the incast it shares the sender ToR and core link with. Its
  // cwnd is capped (a finite socket buffer): a long-lived flow on an
  // otherwise-idle path would grow cwnd without bound, tripping the
  // auditor's cwnd sanity bound on long runs, and no real sender keeps
  // gigabytes in flight.
  tcp::TcpConfig victim_tcp = tcp;
  if (config.victim_cwnd_cap_bytes > 0) {
    victim_tcp.cwnd_cap_bytes = config.victim_cwnd_cap_bytes;
  }
  tcp::TcpConnection victim{sim, dumbbell.sender(degree), dumbbell.receiver(1),
                            kVictimFlow, victim_tcp};

  // The incast: senders 0..degree-1 -> receiver 0, cyclic bursts.
  std::unique_ptr<workload::CyclicIncastDriver> tcp_incast;
  std::unique_ptr<rdt::CreditIncastDriver> credit_incast;
  CreditFinishPoller poller;

  if (mode == QueueMode::kCredit) {
    rdt::CreditIncastDriver::Config ccfg;
    ccfg.num_flows = degree;
    ccfg.num_bursts = config.num_bursts;
    ccfg.burst_duration = config.burst_duration;
    ccfg.inter_burst_gap = config.inter_burst_gap;
    credit_incast = std::make_unique<rdt::CreditIncastDriver>(sim, dumbbell, ccfg, seed);
  } else {
    workload::CyclicIncastDriver::Endpoints ep;
    ep.senders.reserve(static_cast<std::size_t>(degree));
    for (int i = 0; i < degree; ++i) ep.senders.push_back(&dumbbell.sender(i));
    ep.receiver = &dumbbell.receiver(0);
    ep.bottleneck =
        dumbbell.config().receiver_link.value_or(dumbbell.config().host_link);

    workload::CyclicIncastDriver::Config dcfg;
    dcfg.num_flows = degree;
    dcfg.num_bursts = config.num_bursts;
    dcfg.burst_duration = config.burst_duration;
    dcfg.inter_burst_gap = config.inter_burst_gap;
    tcp_incast =
        std::make_unique<workload::CyclicIncastDriver>(sim, ep, tcp, dcfg, seed);
    tcp_incast->set_on_burst_complete([&](int) {
      if (tcp_incast->finished()) sim.stop();
    });
  }

  // Experiment-scope observability: the incast bottleneck queue plus the
  // new lossless/trimming instrumentation (pause counters, trimmed bytes).
  ExperimentObserver observer{INCAST_OBS_HUB(sim)};
  const std::string bottleneck_link = "tor_r->" + dumbbell.receiver(0).name();
  if (observer.active()) {
    dumbbell.link(bottleneck_link).set_trace_label(bottleneck_link);
    observer.watch_queue(bottleneck_link, dumbbell.bottleneck_queue(0));
    observer.watch_simulator(sim);
    observer.watch_pfc("tor_s", dumbbell.sender_tor());
    observer.watch_pfc("tor_r", dumbbell.receiver_tor());
#if INCAST_AUDIT_ENABLED
    if (auditor) observer.watch_auditor(*auditor, sim);
#endif
  }

  victim.sender().add_app_data(kVictimStreamBytes);
  if (credit_incast != nullptr) {
    credit_incast->start();
    poller = CreditFinishPoller{&sim, credit_incast.get()};
    poller.arm();
  } else {
    tcp_incast->start();
  }

  sim.run_until(config.max_sim_time);

  net::check_no_unrouted(dumbbell.switches());
#if INCAST_AUDIT_ENABLED
  if (auditor) auditor->check_conservation(dumbbell.residual_buffered_bytes());
#endif

  // Tail autopsy teardown: finalize, conservation-check every breakdown,
  // then keep only the percentile rows (the grid can trace many flows).
  if (flow_tracer) {
    const std::vector<obs::FlowBreakdown> breakdowns =
        flow_tracer->finalize(sim.now().ns());
    point.traced_flows = breakdowns.size();
    point.flow_trace_incomplete = flow_tracer->incomplete_flows();
#if INCAST_AUDIT_ENABLED
    if (auditor) {
      for (const obs::FlowBreakdown& f : breakdowns) {
        auditor->check_flow_breakdown(f.flow, f.component_sum(), f.fct_ns);
      }
    }
#endif
    point.fct_rows = obs::tail_attribution(breakdowns);
  }

  // INT overflow teardown check (warn-only; see Port::int_hop_overflows).
  for (const net::Switch* sw : dumbbell.switches()) {
    point.int_hop_overflows += sw->int_hop_overflows();
  }
  for (int i = 0; i < dumbbell.num_senders(); ++i) {
    point.int_hop_overflows += dumbbell.sender(i).int_hop_overflows();
  }
  for (int i = 0; i < dumbbell.num_receivers(); ++i) {
    point.int_hop_overflows += dumbbell.receiver(i).int_hop_overflows();
  }
  if (point.int_hop_overflows > 0) {
    std::fprintf(stderr,
                 "warning: %lld INT hop records overflowed the %d-entry stack "
                 "(net.int.hop_overflow); telemetry CCAs saw truncated paths\n",
                 static_cast<long long>(point.int_hop_overflows), net::kMaxIntHops);
  }

#if INCAST_AUDIT_ENABLED
  if (auditor) point.audit_violations = auditor->total_violations();
#endif

  const double elapsed_s = sim.now().sec();
  point.victim_delivered_bytes = victim.receiver().rcv_nxt();
  if (elapsed_s > 0.0) {
    point.victim_goodput_gbps =
        static_cast<double>(point.victim_delivered_bytes) * 8.0 / elapsed_s / 1e9;
  }
  point.victim_paused_ms =
      static_cast<double>(dumbbell.sender(degree).nic_paused_ns()) / 1e6;
  point.victim_retransmits = victim.sender().stats().retransmitted_packets;
  point.victim_timeouts = victim.sender().stats().timeouts;
  point.victim_nacks = victim.receiver().stats().nacks_sent;

  if (tcp_incast != nullptr) {
    burst_aggregates(tcp_incast->bursts(), point);
    for (const tcp::TcpSender* s : tcp_incast->senders()) {
      point.incast_timeouts += s->stats().timeouts;
    }
    for (int i = 0; i < degree; ++i) {
      point.incast_nacks += tcp_incast->connection(i).receiver().stats().nacks_sent;
    }
  } else {
    burst_aggregates(credit_incast->bursts(), point);
  }
  collect_fabric_counters(dumbbell, point);
  point.events_processed = sim.events_processed();

  if (observer.active()) {
    std::vector<double> bct_ms;
    bct_ms.reserve(static_cast<std::size_t>(config.num_bursts));
    if (tcp_incast != nullptr) {
      for (const auto& b : tcp_incast->bursts()) bct_ms.push_back(b.completion_time().ms());
    } else {
      for (const auto& b : credit_incast->bursts()) {
        bct_ms.push_back(b.completion_time().ms());
      }
    }
    observer.finish(sim.now().ns(), bct_ms, nullptr);
  }

  return point;
}

CollateralReport run_collateral_experiment(const CollateralConfig& config) {
  const std::size_t n = config.modes.size() * config.degrees.size();
  CollateralReport report;

  sim::SweepRunner runner{config.jobs};
  sim::SweepRunner::Policy policy = config.sweep;
  policy.seed_of = [&config](std::size_t index) {
    return sim::derive_task_seed(config.seed, index);
  };
  runner.set_policy(std::move(policy));

  report.points = runner.run<CollateralPoint>(n, [&config](std::size_t index,
                                                           sim::SweepRunner::TaskStats&
                                                               stats) {
    const QueueMode mode = config.modes[index / config.degrees.size()];
    const int degree = config.degrees[index % config.degrees.size()];
    const std::uint64_t seed = sim::derive_task_seed(config.seed, index);
    // Journal resume: a point completed by a prior interrupted run is
    // replayed from its payload instead of re-simulated.
    if (config.resume) {
      CollateralPoint cached;
      if (config.resume(index, cached)) {
        stats.events = cached.events_processed;
        return cached;
      }
    }
    // Only point 0 is observed: worker threads must not share the hub, and
    // pinning it to a fixed point keeps trace/metrics output byte-identical
    // at any --jobs value.
    obs::Hub* hub = index == 0 ? config.hub : nullptr;
    CollateralPoint point = run_collateral_point(config, mode, degree, seed, hub);
    stats.events = point.events_processed;
    if (config.on_result) config.on_result(index, seed, point);
    return point;
  });
  report.sweep = runner.last_run();
  return report;
}

std::string collateral_csv(const CollateralReport& report) {
  std::string out =
      "mode,degree,victim_gbps,victim_paused_ms,victim_retx,victim_timeouts,"
      "victim_nacks,incast_avg_bct_ms,incast_max_bct_ms,incast_timeouts,drops,"
      "trimmed_packets,trimmed_bytes,pause_frames,resume_frames,overflow_drops,"
      "incast_nacks,audit_violations\n";
  char buf[512];
  for (const CollateralPoint& p : report.points) {
    std::snprintf(buf, sizeof(buf),
                  "%s,%d,%.4f,%.3f,%lld,%lld,%lld,%.3f,%.3f,%lld,%lld,%lld,%lld,"
                  "%lld,%lld,%lld,%lld,%llu\n",
                  to_string(p.mode), p.degree, p.victim_goodput_gbps, p.victim_paused_ms,
                  static_cast<long long>(p.victim_retransmits),
                  static_cast<long long>(p.victim_timeouts),
                  static_cast<long long>(p.victim_nacks), p.incast_avg_bct_ms,
                  p.incast_max_bct_ms, static_cast<long long>(p.incast_timeouts),
                  static_cast<long long>(p.queue_drops),
                  static_cast<long long>(p.trimmed_packets),
                  static_cast<long long>(p.trimmed_bytes),
                  static_cast<long long>(p.pfc_pause_frames),
                  static_cast<long long>(p.pfc_resume_frames),
                  static_cast<long long>(p.pfc_overflow_drops),
                  static_cast<long long>(p.incast_nacks),
                  static_cast<unsigned long long>(p.audit_violations));
    out += buf;
  }
  return out;
}

std::string collateral_fct_csv(const CollateralReport& report) {
  std::string out = obs::fct_breakdown_csv_header();
  for (const CollateralPoint& p : report.points) {
    obs::append_fct_breakdown_csv(out, to_string(p.mode), p.degree, p.fct_rows);
  }
  return out;
}

}  // namespace incast::core
